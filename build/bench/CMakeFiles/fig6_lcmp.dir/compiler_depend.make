# Empty compiler generated dependencies file for fig6_lcmp.
# This may be replaced when dependencies are built.
