file(REMOVE_RECURSE
  "CMakeFiles/fig6_lcmp.dir/fig6_lcmp.cc.o"
  "CMakeFiles/fig6_lcmp.dir/fig6_lcmp.cc.o.d"
  "fig6_lcmp"
  "fig6_lcmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lcmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
