file(REMOVE_RECURSE
  "CMakeFiles/fig7_linesize.dir/fig7_linesize.cc.o"
  "CMakeFiles/fig7_linesize.dir/fig7_linesize.cc.o.d"
  "fig7_linesize"
  "fig7_linesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_linesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
