# Empty dependencies file for fig7_linesize.
# This may be replaced when dependencies are built.
