file(REMOVE_RECURSE
  "CMakeFiles/microbench_mips.dir/microbench_mips.cc.o"
  "CMakeFiles/microbench_mips.dir/microbench_mips.cc.o.d"
  "microbench_mips"
  "microbench_mips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_mips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
