# Empty dependencies file for microbench_mips.
# This may be replaced when dependencies are built.
