file(REMOVE_RECURSE
  "CMakeFiles/projection_dramcache.dir/projection_dramcache.cc.o"
  "CMakeFiles/projection_dramcache.dir/projection_dramcache.cc.o.d"
  "projection_dramcache"
  "projection_dramcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_dramcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
