# Empty compiler generated dependencies file for projection_dramcache.
# This may be replaced when dependencies are built.
