file(REMOVE_RECURSE
  "CMakeFiles/projection_128core.dir/projection_128core.cc.o"
  "CMakeFiles/projection_128core.dir/projection_128core.cc.o.d"
  "projection_128core"
  "projection_128core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_128core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
