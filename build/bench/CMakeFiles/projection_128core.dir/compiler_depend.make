# Empty compiler generated dependencies file for projection_128core.
# This may be replaced when dependencies are built.
