file(REMOVE_RECURSE
  "CMakeFiles/fig8_prefetch.dir/fig8_prefetch.cc.o"
  "CMakeFiles/fig8_prefetch.dir/fig8_prefetch.cc.o.d"
  "fig8_prefetch"
  "fig8_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
