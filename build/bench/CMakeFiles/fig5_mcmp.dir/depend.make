# Empty dependencies file for fig5_mcmp.
# This may be replaced when dependencies are built.
