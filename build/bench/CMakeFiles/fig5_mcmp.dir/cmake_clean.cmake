file(REMOVE_RECURSE
  "CMakeFiles/fig5_mcmp.dir/fig5_mcmp.cc.o"
  "CMakeFiles/fig5_mcmp.dir/fig5_mcmp.cc.o.d"
  "fig5_mcmp"
  "fig5_mcmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mcmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
