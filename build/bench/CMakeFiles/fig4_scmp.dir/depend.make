# Empty dependencies file for fig4_scmp.
# This may be replaced when dependencies are built.
