file(REMOVE_RECURSE
  "CMakeFiles/fig4_scmp.dir/fig4_scmp.cc.o"
  "CMakeFiles/fig4_scmp.dir/fig4_scmp.cc.o.d"
  "fig4_scmp"
  "fig4_scmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_scmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
