file(REMOVE_RECURSE
  "libcosim.a"
)
