
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/csv.cc" "src/CMakeFiles/cosim.dir/base/csv.cc.o" "gcc" "src/CMakeFiles/cosim.dir/base/csv.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/cosim.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/cosim.dir/base/logging.cc.o.d"
  "/root/repo/src/base/random.cc" "src/CMakeFiles/cosim.dir/base/random.cc.o" "gcc" "src/CMakeFiles/cosim.dir/base/random.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/cosim.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/cosim.dir/base/stats.cc.o.d"
  "/root/repo/src/base/str.cc" "src/CMakeFiles/cosim.dir/base/str.cc.o" "gcc" "src/CMakeFiles/cosim.dir/base/str.cc.o.d"
  "/root/repo/src/base/table.cc" "src/CMakeFiles/cosim.dir/base/table.cc.o" "gcc" "src/CMakeFiles/cosim.dir/base/table.cc.o.d"
  "/root/repo/src/base/units.cc" "src/CMakeFiles/cosim.dir/base/units.cc.o" "gcc" "src/CMakeFiles/cosim.dir/base/units.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/cosim.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/cosim.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/cosim.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/cosim.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/cosim.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/cosim.dir/cache/replacement.cc.o.d"
  "/root/repo/src/cache/sweep_bank.cc" "src/CMakeFiles/cosim.dir/cache/sweep_bank.cc.o" "gcc" "src/CMakeFiles/cosim.dir/cache/sweep_bank.cc.o.d"
  "/root/repo/src/core/cosim.cc" "src/CMakeFiles/cosim.dir/core/cosim.cc.o" "gcc" "src/CMakeFiles/cosim.dir/core/cosim.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/cosim.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/cosim.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/results.cc" "src/CMakeFiles/cosim.dir/core/results.cc.o" "gcc" "src/CMakeFiles/cosim.dir/core/results.cc.o.d"
  "/root/repo/src/dragonhead/address_filter.cc" "src/CMakeFiles/cosim.dir/dragonhead/address_filter.cc.o" "gcc" "src/CMakeFiles/cosim.dir/dragonhead/address_filter.cc.o.d"
  "/root/repo/src/dragonhead/cache_controller.cc" "src/CMakeFiles/cosim.dir/dragonhead/cache_controller.cc.o" "gcc" "src/CMakeFiles/cosim.dir/dragonhead/cache_controller.cc.o.d"
  "/root/repo/src/dragonhead/control_block.cc" "src/CMakeFiles/cosim.dir/dragonhead/control_block.cc.o" "gcc" "src/CMakeFiles/cosim.dir/dragonhead/control_block.cc.o.d"
  "/root/repo/src/dragonhead/dragonhead.cc" "src/CMakeFiles/cosim.dir/dragonhead/dragonhead.cc.o" "gcc" "src/CMakeFiles/cosim.dir/dragonhead/dragonhead.cc.o.d"
  "/root/repo/src/dragonhead/fsb_messages.cc" "src/CMakeFiles/cosim.dir/dragonhead/fsb_messages.cc.o" "gcc" "src/CMakeFiles/cosim.dir/dragonhead/fsb_messages.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/cosim.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/cosim.dir/harness/report.cc.o.d"
  "/root/repo/src/harness/sweep_runner.cc" "src/CMakeFiles/cosim.dir/harness/sweep_runner.cc.o" "gcc" "src/CMakeFiles/cosim.dir/harness/sweep_runner.cc.o.d"
  "/root/repo/src/mem/address_space.cc" "src/CMakeFiles/cosim.dir/mem/address_space.cc.o" "gcc" "src/CMakeFiles/cosim.dir/mem/address_space.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/cosim.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/cosim.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/fsb.cc" "src/CMakeFiles/cosim.dir/mem/fsb.cc.o" "gcc" "src/CMakeFiles/cosim.dir/mem/fsb.cc.o.d"
  "/root/repo/src/prefetch/stream_prefetcher.cc" "src/CMakeFiles/cosim.dir/prefetch/stream_prefetcher.cc.o" "gcc" "src/CMakeFiles/cosim.dir/prefetch/stream_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/stride_prefetcher.cc" "src/CMakeFiles/cosim.dir/prefetch/stride_prefetcher.cc.o" "gcc" "src/CMakeFiles/cosim.dir/prefetch/stride_prefetcher.cc.o.d"
  "/root/repo/src/softsdv/core_context.cc" "src/CMakeFiles/cosim.dir/softsdv/core_context.cc.o" "gcc" "src/CMakeFiles/cosim.dir/softsdv/core_context.cc.o.d"
  "/root/repo/src/softsdv/cpu_model.cc" "src/CMakeFiles/cosim.dir/softsdv/cpu_model.cc.o" "gcc" "src/CMakeFiles/cosim.dir/softsdv/cpu_model.cc.o.d"
  "/root/repo/src/softsdv/dex_scheduler.cc" "src/CMakeFiles/cosim.dir/softsdv/dex_scheduler.cc.o" "gcc" "src/CMakeFiles/cosim.dir/softsdv/dex_scheduler.cc.o.d"
  "/root/repo/src/softsdv/virtual_platform.cc" "src/CMakeFiles/cosim.dir/softsdv/virtual_platform.cc.o" "gcc" "src/CMakeFiles/cosim.dir/softsdv/virtual_platform.cc.o.d"
  "/root/repo/src/trace/reuse_profiler.cc" "src/CMakeFiles/cosim.dir/trace/reuse_profiler.cc.o" "gcc" "src/CMakeFiles/cosim.dir/trace/reuse_profiler.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/cosim.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/cosim.dir/trace/trace.cc.o.d"
  "/root/repo/src/workloads/data/synth.cc" "src/CMakeFiles/cosim.dir/workloads/data/synth.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/data/synth.cc.o.d"
  "/root/repo/src/workloads/data/video.cc" "src/CMakeFiles/cosim.dir/workloads/data/video.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/data/video.cc.o.d"
  "/root/repo/src/workloads/fimi.cc" "src/CMakeFiles/cosim.dir/workloads/fimi.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/fimi.cc.o.d"
  "/root/repo/src/workloads/fp_tree.cc" "src/CMakeFiles/cosim.dir/workloads/fp_tree.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/fp_tree.cc.o.d"
  "/root/repo/src/workloads/mds.cc" "src/CMakeFiles/cosim.dir/workloads/mds.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/mds.cc.o.d"
  "/root/repo/src/workloads/plsa.cc" "src/CMakeFiles/cosim.dir/workloads/plsa.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/plsa.cc.o.d"
  "/root/repo/src/workloads/rsearch.cc" "src/CMakeFiles/cosim.dir/workloads/rsearch.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/rsearch.cc.o.d"
  "/root/repo/src/workloads/shot.cc" "src/CMakeFiles/cosim.dir/workloads/shot.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/shot.cc.o.d"
  "/root/repo/src/workloads/snp.cc" "src/CMakeFiles/cosim.dir/workloads/snp.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/snp.cc.o.d"
  "/root/repo/src/workloads/svm_rfe.cc" "src/CMakeFiles/cosim.dir/workloads/svm_rfe.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/svm_rfe.cc.o.d"
  "/root/repo/src/workloads/viewtype.cc" "src/CMakeFiles/cosim.dir/workloads/viewtype.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/viewtype.cc.o.d"
  "/root/repo/src/workloads/workload_factory.cc" "src/CMakeFiles/cosim.dir/workloads/workload_factory.cc.o" "gcc" "src/CMakeFiles/cosim.dir/workloads/workload_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
