# Empty compiler generated dependencies file for cosim.
# This may be replaced when dependencies are built.
