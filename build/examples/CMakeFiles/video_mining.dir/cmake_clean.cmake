file(REMOVE_RECURSE
  "CMakeFiles/video_mining.dir/video_mining.cpp.o"
  "CMakeFiles/video_mining.dir/video_mining.cpp.o.d"
  "video_mining"
  "video_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
