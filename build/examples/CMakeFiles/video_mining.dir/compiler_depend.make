# Empty compiler generated dependencies file for video_mining.
# This may be replaced when dependencies are built.
