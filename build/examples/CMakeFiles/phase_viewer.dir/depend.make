# Empty dependencies file for phase_viewer.
# This may be replaced when dependencies are built.
