file(REMOVE_RECURSE
  "CMakeFiles/phase_viewer.dir/phase_viewer.cpp.o"
  "CMakeFiles/phase_viewer.dir/phase_viewer.cpp.o.d"
  "phase_viewer"
  "phase_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
