file(REMOVE_RECURSE
  "CMakeFiles/working_set_profile.dir/working_set_profile.cpp.o"
  "CMakeFiles/working_set_profile.dir/working_set_profile.cpp.o.d"
  "working_set_profile"
  "working_set_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/working_set_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
