# Empty dependencies file for working_set_profile.
# This may be replaced when dependencies are built.
