# Empty dependencies file for test_sim_array.
# This may be replaced when dependencies are built.
