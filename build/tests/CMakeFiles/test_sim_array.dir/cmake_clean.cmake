file(REMOVE_RECURSE
  "CMakeFiles/test_sim_array.dir/test_sim_array.cc.o"
  "CMakeFiles/test_sim_array.dir/test_sim_array.cc.o.d"
  "test_sim_array"
  "test_sim_array.pdb"
  "test_sim_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
