file(REMOVE_RECURSE
  "CMakeFiles/test_dragonhead.dir/test_dragonhead.cc.o"
  "CMakeFiles/test_dragonhead.dir/test_dragonhead.cc.o.d"
  "test_dragonhead"
  "test_dragonhead.pdb"
  "test_dragonhead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dragonhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
