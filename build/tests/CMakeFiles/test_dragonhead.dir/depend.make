# Empty dependencies file for test_dragonhead.
# This may be replaced when dependencies are built.
