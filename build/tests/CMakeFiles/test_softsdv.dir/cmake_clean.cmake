file(REMOVE_RECURSE
  "CMakeFiles/test_softsdv.dir/test_softsdv.cc.o"
  "CMakeFiles/test_softsdv.dir/test_softsdv.cc.o.d"
  "test_softsdv"
  "test_softsdv.pdb"
  "test_softsdv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softsdv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
