# Empty compiler generated dependencies file for test_softsdv.
# This may be replaced when dependencies are built.
