file(REMOVE_RECURSE
  "CMakeFiles/test_fptree.dir/test_fptree.cc.o"
  "CMakeFiles/test_fptree.dir/test_fptree.cc.o.d"
  "test_fptree"
  "test_fptree.pdb"
  "test_fptree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fptree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
