# Empty compiler generated dependencies file for test_reuse_profiler.
# This may be replaced when dependencies are built.
