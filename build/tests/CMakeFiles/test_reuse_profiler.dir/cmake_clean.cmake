file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_profiler.dir/test_reuse_profiler.cc.o"
  "CMakeFiles/test_reuse_profiler.dir/test_reuse_profiler.cc.o.d"
  "test_reuse_profiler"
  "test_reuse_profiler.pdb"
  "test_reuse_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
