# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_dragonhead[1]_include.cmake")
include("/root/repo/build/tests/test_softsdv[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cosim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_fptree[1]_include.cmake")
include("/root/repo/build/tests/test_sim_array[1]_include.cmake")
include("/root/repo/build/tests/test_reuse_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_params[1]_include.cmake")
