/**
 * @file
 * cosim-lint: repo-specific static checks the compilers cannot express.
 *
 * A self-contained token/line-level linter enforcing the project's
 * determinism and hygiene rules (see DESIGN.md "Static analysis"):
 *
 *   Determinism (simulation code only -- anything here can silently
 *   break replay/parallel bit-identity):
 *     no-rand            rand()/srand()/drand48() etc.
 *     no-time            time()/gettimeofday()/localtime()/clock()
 *     no-system-clock    std::chrono::system_clock (steady_clock is fine)
 *     no-random-device   std::random_device (base/random.hh Rng is the
 *                        one sanctioned randomness source)
 *     unordered-iteration  range-for over a container declared
 *                        std::unordered_* in the same file: iteration
 *                        order is host-dependent, so it must never feed
 *                        serialization or output
 *
 *   Library hygiene:
 *     no-raw-new         raw `new` (use make_unique/containers)
 *     no-raw-delete      raw `delete` (`= delete` declarations are fine)
 *     no-printf          printf-family in library code (harness/CLIs
 *                        excepted; logging.cc carries allow-file)
 *     no-raw-ofstream    std::ofstream in library code outside
 *                        src/base/: artifact writers must go through
 *                        AtomicFile (base/atomic_file.hh) so a failed
 *                        or interrupted run never leaves a truncated
 *                        file behind
 *     metric-name        obs::metrics counter()/histogram() literal
 *                        names must match [a-z][a-z0-9_.]* and appear
 *                        once per file: the registry panics on bad or
 *                        duplicate names at runtime, so catch them at
 *                        review time (record sites hold one static
 *                        handle; see src/obs/metrics.hh)
 *     fsb-direct-issue   fsb->issue()/fsb_->issue() inside src/softsdv/
 *                        outside the DEX merge path: guest-visible
 *                        traffic must reach the bus through the slot's
 *                        TxnSink recorder so --dex-threads sharding
 *                        stays bit-identical (the merge loop in
 *                        dex_scheduler.cc carries the one allow)
 *     plan-atomic-write  std::ofstream/fopen in a src/ file that
 *                        mentions the "cosim-plan/" schema: sampling
 *                        plan writers must go through AtomicFile so a
 *                        failed run never leaves a torn plan for a
 *                        later --plan sweep to consume
 *     interval-wallclock steady_clock/system_clock/time()/
 *                        clock_gettime() in a src/trace/ file that
 *                        mentions SamplingPlan/PlanInterval: interval
 *                        selection must be a pure function of the
 *                        sample series and the seed, or the same
 *                        profiling run stops reproducing the same plan
 *                        (host timing for sampled passes lives in
 *                        core/cosim.cc, outside the selection code)
 *
 *   Mechanical (fixable with --fix):
 *     header-guard       .hh guards must be COSIM_<PATH>_HH
 *     include-hygiene    project headers use "quotes", no ../ paths
 *     trailing-whitespace
 *
 * Suppressions: `// cosim-lint: allow(<rule>)` on the offending line or
 * the line just above it; `// cosim-lint: allow-file(<rule>)` anywhere
 * in a file suppresses the rule file-wide. Rules are chosen per
 * repo-relative directory by ruleSetFor().
 *
 * The linting core is a pure function over (path, content) so the test
 * suite can drive every rule against embedded fixture snippets; all
 * file-system walking lives in main.cc.
 */

#ifndef COSIM_TOOLS_COSIM_LINT_LINTER_HH
#define COSIM_TOOLS_COSIM_LINT_LINTER_HH

#include <string>
#include <vector>

namespace cosim_lint {

/** One reported violation. */
struct Finding
{
    std::string file; ///< repo-relative path
    int line = 0;     ///< 1-based
    std::string rule;
    std::string message;

    /** The machine-readable "file:line: rule: message" form. */
    std::string format() const;
};

/** Which rule groups apply to a file (see ruleSetFor). */
struct RuleSet
{
    bool determinism = false; ///< no-rand/-time/-system-clock/... group
    bool noRawNewDelete = false;
    bool noPrintf = false;
    bool noRawOfstream = false;
    bool metricName = false;
    bool fsbDirectIssue = false; ///< DEX delivery discipline (softsdv/)
    bool planAtomicWrite = false; ///< plan writers use AtomicFile (src/)
    bool intervalWallclock = false; ///< pure interval selection (trace/)
    bool headerGuard = true;
    bool includeHygiene = true;
    bool trailingWhitespace = true;
};

/** Every rule name, in stable reporting order. */
std::vector<std::string> allRules();

/**
 * Rule set for a repo-relative path ("src/cache/cache.cc",
 * "tests/test_base.cc"). Simulation directories get the determinism
 * group; all of src/ except the CLI-facing harness gets the library
 * rules; tests/bench/examples/tools only the mechanical hygiene.
 */
RuleSet ruleSetFor(const std::string& rel_path);

/** Canonical include guard for a header path: "src/obs/json.hh" ->
 * "COSIM_OBS_JSON_HH" (the leading "src/" is dropped, other top-level
 * directories keep their name). */
std::string canonicalGuard(const std::string& rel_path);

/** Lint @p content as repo-relative @p rel_path under @p rules. */
std::vector<Finding> lintContent(const std::string& rel_path,
                                 const std::string& content,
                                 const RuleSet& rules);

/**
 * Apply the mechanical fixes (header-guard, include-hygiene,
 * trailing-whitespace) and return the rewritten content; non-fixable
 * rules are untouched. fix(fix(x)) == fix(x).
 */
std::string fixContent(const std::string& rel_path,
                       const std::string& content, const RuleSet& rules);

} // namespace cosim_lint

#endif // COSIM_TOOLS_COSIM_LINT_LINTER_HH
