#include "tools/cosim_lint/linter.hh"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>

namespace cosim_lint {

namespace {

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string& s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitLines(const std::string& content)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= content.size()) {
        std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            if (start < content.size())
                lines.push_back(content.substr(start));
            break;
        }
        lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

/**
 * Blank out comments and string/char literal *contents* (structure and
 * line breaks preserved), so the token rules never fire on prose or
 * quoted text. Handles //, multi-line block comments, escape sequences,
 * and R"delim(...)delim" raw strings.
 */
std::string
stripCommentsAndStrings(const std::string& in)
{
    std::string out = in;
    enum class State { Code, Line, Block, Str, Chr, Raw };
    State state = State::Code;
    std::string rawEnd; // ")delim\"" terminator of the active raw string
    for (std::size_t i = 0; i < in.size(); ++i) {
        char c = in[i];
        char next = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::Line;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::Block;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                bool raw = i > 0 && in[i - 1] == 'R' &&
                           (i < 2 || !isIdentChar(in[i - 2]));
                if (raw) {
                    std::size_t open = in.find('(', i + 1);
                    if (open == std::string::npos)
                        return out; // malformed; nothing more to do
                    rawEnd = ")" + in.substr(i + 1, open - i - 1) + "\"";
                    for (std::size_t j = i; j <= open; ++j)
                        out[j] = ' ';
                    i = open;
                    state = State::Raw;
                } else {
                    state = State::Str;
                }
            } else if (c == '\'') {
                state = State::Chr;
            }
            break;
          case State::Line:
            if (c == '\n')
                state = State::Code;
            else
                out[i] = ' ';
            break;
          case State::Block:
            if (c == '*' && next == '/') {
                out[i] = out[i + 1] = ' ';
                ++i;
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Str:
          case State::Chr:
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == (state == State::Str ? '"' : '\'')) {
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Raw:
            if (c == ')' && in.compare(i, rawEnd.size(), rawEnd) == 0) {
                for (std::size_t j = 0; j < rawEnd.size(); ++j)
                    out[i + j] = ' ';
                i += rawEnd.size() - 1;
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

/** @p name appears at @p pos as a full word (':' before is allowed so
 * std::rand still matches; 'x_rand' / 'operand' do not). */
bool
wordBoundaryAt(const std::string& line, std::size_t pos,
               std::size_t len)
{
    if (pos > 0 && isIdentChar(line[pos - 1]))
        return false;
    std::size_t end = pos + len;
    return end >= line.size() || !isIdentChar(line[end]);
}

/** True when @p name occurs as a word in @p line. */
bool
containsWord(const std::string& line, const std::string& name)
{
    std::size_t pos = 0;
    while ((pos = line.find(name, pos)) != std::string::npos) {
        if (wordBoundaryAt(line, pos, name.size()))
            return true;
        ++pos;
    }
    return false;
}

/** True when @p name occurs as a word followed by '(' (a call). Writes
 * the match position for context checks. */
bool
containsCall(const std::string& line, const std::string& name,
             std::size_t* match_pos = nullptr)
{
    std::size_t pos = 0;
    while ((pos = line.find(name, pos)) != std::string::npos) {
        if (wordBoundaryAt(line, pos, name.size())) {
            std::size_t after = pos + name.size();
            while (after < line.size() &&
                   (line[after] == ' ' || line[after] == '\t'))
                ++after;
            if (after < line.size() && line[after] == '(') {
                if (match_pos)
                    *match_pos = pos;
                return true;
            }
        }
        ++pos;
    }
    return false;
}

/** Per-file suppression state parsed from `cosim-lint:` directives. */
struct Suppressions
{
    std::set<std::string> fileWide;
    /** rule -> 1-based lines where it is allowed. */
    std::set<std::pair<std::string, int>> lines;

    bool
    allows(const std::string& rule, int line) const
    {
        return fileWide.count(rule) > 0 ||
               lines.count({rule, line}) > 0;
    }
};

void
parseDirectiveList(const std::string& text, std::size_t open_paren,
                   int line_no, bool file_wide, Suppressions* out)
{
    std::size_t close = text.find(')', open_paren);
    if (close == std::string::npos)
        return;
    std::string inner = text.substr(open_paren + 1,
                                    close - open_paren - 1);
    std::stringstream ss(inner);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
        rule = trim(rule);
        if (rule.empty())
            continue;
        if (file_wide) {
            out->fileWide.insert(rule);
        } else {
            // A directive covers its own line and the one below, so it
            // can sit at the end of the offending line or just above.
            out->lines.insert({rule, line_no});
            out->lines.insert({rule, line_no + 1});
        }
    }
}

Suppressions
parseSuppressions(const std::vector<std::string>& raw_lines)
{
    Suppressions sup;
    const std::string kTag = "cosim-lint:";
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
        const std::string& line = raw_lines[i];
        std::size_t tag = line.find(kTag);
        if (tag == std::string::npos)
            continue;
        std::size_t cursor = tag + kTag.size();
        std::size_t allow_file = line.find("allow-file(", cursor);
        std::size_t allow = line.find("allow(", cursor);
        int n = static_cast<int>(i) + 1;
        if (allow_file != std::string::npos) {
            parseDirectiveList(line, allow_file + 10, n, true, &sup);
        } else if (allow != std::string::npos) {
            parseDirectiveList(line, allow + 5, n, false, &sup);
        }
    }
    return sup;
}

/** Names declared as std::unordered_{map,set,multimap,multiset} fields
 * or locals anywhere in the file (template args may span lines). */
std::set<std::string>
unorderedContainerNames(const std::string& code)
{
    std::set<std::string> names;
    static const char* kTypes[] = {"unordered_map", "unordered_set",
                                   "unordered_multimap",
                                   "unordered_multiset"};
    for (const char* type : kTypes) {
        std::size_t pos = 0;
        while ((pos = code.find(type, pos)) != std::string::npos) {
            std::size_t after = pos + std::string(type).size();
            pos = after;
            if (after >= code.size() || code[after] != '<')
                continue;
            // Find the matching '>' of the template argument list.
            int depth = 0;
            std::size_t i = after;
            for (; i < code.size(); ++i) {
                if (code[i] == '<')
                    ++depth;
                else if (code[i] == '>' && --depth == 0)
                    break;
            }
            if (i >= code.size())
                continue;
            // Skip whitespace / ref / ptr, then read the identifier.
            ++i;
            while (i < code.size() &&
                   (std::isspace(static_cast<unsigned char>(code[i])) ||
                    code[i] == '&' || code[i] == '*'))
                ++i;
            std::string name;
            while (i < code.size() && isIdentChar(code[i]))
                name += code[i++];
            if (!name.empty() && name != "const")
                names.insert(name);
        }
    }
    return names;
}

/** One obs::metrics registration whose name is a string literal. */
struct MetricRegistration
{
    int line = 0; ///< 1-based line the name literal sits on
    std::string name;
};

/** True when @p name matches the metrics naming contract
 * [a-z][a-z0-9_.]* (see src/obs/metrics.hh). */
bool
isValidMetricName(const std::string& name)
{
    if (name.empty() || name[0] < 'a' || name[0] > 'z')
        return false;
    for (char c : name) {
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_' || c == '.'))
            return false;
    }
    return true;
}

/**
 * Every counter("...")/histogram("...") registration whose first
 * argument is a string literal (possibly on the line after the call).
 * @p code is the comment/string-stripped text, which preserves offsets,
 * so the literal's characters are read back from @p content.
 * Declarations and calls with computed names have no literal after the
 * '(' and are skipped.
 */
std::vector<MetricRegistration>
metricRegistrations(const std::string& content, const std::string& code)
{
    std::vector<MetricRegistration> regs;
    for (const char* fn : {"counter", "histogram"}) {
        const std::size_t len = std::string(fn).size();
        std::size_t pos = 0;
        while ((pos = code.find(fn, pos)) != std::string::npos) {
            const std::size_t start = pos;
            pos += len;
            if (start > 0 && isIdentChar(code[start - 1]))
                continue;
            std::size_t i = start + len;
            while (i < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[i])))
                ++i;
            if (i >= code.size() || code[i] != '(')
                continue;
            ++i;
            while (i < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[i])))
                ++i;
            if (i >= code.size() || code[i] != '"')
                continue;
            std::size_t close = content.find('"', i + 1);
            if (close == std::string::npos)
                continue;
            MetricRegistration reg;
            reg.name = content.substr(i + 1, close - i - 1);
            reg.line = 1 + static_cast<int>(
                               std::count(code.begin(),
                                          code.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  i),
                                          '\n'));
            regs.push_back(std::move(reg));
        }
    }
    std::sort(regs.begin(), regs.end(),
              [](const MetricRegistration& a,
                 const MetricRegistration& b) { return a.line < b.line; });
    return regs;
}

/** The identifier the range expression of a range-for ends with, or ""
 * if @p line has no range-for. */
std::string
rangeForTarget(const std::string& line)
{
    std::size_t pos = 0;
    while ((pos = line.find("for", pos)) != std::string::npos) {
        if (!wordBoundaryAt(line, pos, 3)) {
            ++pos;
            continue;
        }
        std::size_t open = line.find('(', pos + 3);
        if (open == std::string::npos)
            return "";
        int depth = 0;
        std::size_t close = open;
        for (; close < line.size(); ++close) {
            if (line[close] == '(')
                ++depth;
            else if (line[close] == ')' && --depth == 0)
                break;
        }
        std::string inner = line.substr(
            open + 1,
            (close < line.size() ? close : line.size()) - open - 1);
        // The range-for ':' -- skip every "::" scope operator.
        std::size_t colon = std::string::npos;
        for (std::size_t i = 0; i < inner.size(); ++i) {
            if (inner[i] != ':')
                continue;
            if (i + 1 < inner.size() && inner[i + 1] == ':') {
                ++i;
                continue;
            }
            if (i > 0 && inner[i - 1] == ':')
                continue;
            colon = i;
            break;
        }
        if (colon == std::string::npos) {
            pos = close;
            continue;
        }
        std::string range = trim(inner.substr(colon + 1));
        // Strip a trailing call/index so "m.items()" -> "items".
        while (!range.empty() && !isIdentChar(range.back()))
            range.pop_back();
        std::size_t b = range.size();
        while (b > 0 && isIdentChar(range[b - 1]))
            --b;
        return range.substr(b);
    }
    return "";
}

struct CallRule
{
    const char* rule;
    const char* name;
    const char* message;
};

const CallRule kDeterminismCalls[] = {
    {"no-rand", "rand", "libc rand() is nondeterministic across hosts; "
                        "use cosim::Rng (base/random.hh)"},
    {"no-rand", "srand", "seed state hidden in libc; use cosim::Rng"},
    {"no-rand", "drand48", "use cosim::Rng (base/random.hh)"},
    {"no-rand", "lrand48", "use cosim::Rng (base/random.hh)"},
    {"no-rand", "mrand48", "use cosim::Rng (base/random.hh)"},
    {"no-time", "time", "wall-clock time() in simulation code breaks "
                        "replay bit-identity"},
    {"no-time", "gettimeofday", "wall-clock in simulation code breaks "
                                "replay bit-identity"},
    {"no-time", "clock_gettime", "wall-clock in simulation code breaks "
                                 "replay bit-identity"},
    {"no-time", "localtime", "calendar time in simulation code breaks "
                             "replay bit-identity"},
    {"no-time", "gmtime", "calendar time in simulation code breaks "
                          "replay bit-identity"},
};

// Stream-output calls only: snprintf/vsnprintf into a caller buffer is
// deterministic string formatting, not the bypass-the-logging-layer
// hazard this rule exists for.
const CallRule kPrintfCalls[] = {
    {"no-printf", "printf", ""},   {"no-printf", "fprintf", ""},
    {"no-printf", "vprintf", ""},  {"no-printf", "vfprintf", ""},
    {"no-printf", "puts", ""},     {"no-printf", "fputs", ""},
    {"no-printf", "putchar", ""},
};

bool
isHeaderPath(const std::string& rel_path)
{
    return endsWith(rel_path, ".hh") || endsWith(rel_path, ".hpp");
}

const char* kProjectIncludeDirs[] = {
    "base/",   "cache/",   "core/",     "dragonhead/", "harness/",
    "mem/",    "obs/",     "prefetch/", "softsdv/",    "trace/",
    "workloads/", "tools/", "tests/",
};

bool
isProjectIncludePath(const std::string& path)
{
    for (const char* dir : kProjectIncludeDirs) {
        if (startsWith(path, dir))
            return true;
    }
    return false;
}

/** Parsed "#include <x>" / "#include \"x\"" line, or empty path. */
struct IncludeLine
{
    std::string path;
    bool angled = false;
};

IncludeLine
parseInclude(const std::string& line)
{
    IncludeLine inc;
    std::string t = trim(line);
    if (!startsWith(t, "#"))
        return inc;
    t = trim(t.substr(1));
    if (!startsWith(t, "include"))
        return inc;
    t = trim(t.substr(7));
    if (t.size() < 2)
        return inc;
    char open = t[0];
    char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0')
        return inc;
    std::size_t end = t.find(close, 1);
    if (end == std::string::npos)
        return inc;
    inc.path = t.substr(1, end - 1);
    inc.angled = open == '<';
    return inc;
}

/** 0-based indexes of the `#ifndef` and following `#define` guard
 * lines, or (-1, -1); also reports the guard name found. */
void
findGuardLines(const std::vector<std::string>& code_lines,
               int* ifndef_line, int* define_line, std::string* name)
{
    *ifndef_line = *define_line = -1;
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
        std::string t = trim(code_lines[i]);
        if (t.empty())
            continue;
        if (startsWith(t, "#ifndef ")) {
            std::string g = trim(t.substr(8));
            if (*ifndef_line < 0) {
                *ifndef_line = static_cast<int>(i);
                *name = g;
            }
        } else if (startsWith(t, "#define ") && *ifndef_line >= 0) {
            *define_line = static_cast<int>(i);
            return;
        } else if (!startsWith(t, "#")) {
            // First real code before any guard: no guard.
            return;
        }
    }
}

} // namespace

std::string
Finding::format() const
{
    return file + ":" + std::to_string(line) + ": " + rule + ": " +
           message;
}

std::vector<std::string>
allRules()
{
    return {"no-rand",        "no-time",
            "no-system-clock", "no-random-device",
            "unordered-iteration", "no-raw-new",
            "no-raw-delete",  "no-printf",
            "no-raw-ofstream", "metric-name",
            "fsb-direct-issue", "plan-atomic-write",
            "interval-wallclock", "header-guard",
            "include-hygiene", "trailing-whitespace"};
}

RuleSet
ruleSetFor(const std::string& rel_path)
{
    RuleSet rs; // mechanical hygiene applies everywhere
    if (!startsWith(rel_path, "src/"))
        return rs;

    rs.noRawNewDelete = true;
    // The harness is the CLI-facing reporting layer: banners and figure
    // tables go to stdout by design.
    rs.noPrintf = !startsWith(rel_path, "src/harness/");
    // Artifact writers must go through AtomicFile so an interrupted run
    // never leaves a truncated file; base/ holds AtomicFile itself.
    rs.noRawOfstream = !startsWith(rel_path, "src/base/");
    // Metric names panic at runtime when malformed or duplicated;
    // tests register deliberately bad names, so src/ only.
    rs.metricName = true;
    // Guest-visible bus traffic from softsdv/ must flow through the
    // slot's TxnSink recorder; only the DEX merge loop delivers onto
    // the real FrontSideBus (and carries the one allow). A stray
    // direct issue would silently break --dex-threads bit-identity.
    rs.fsbDirectIssue = startsWith(rel_path, "src/softsdv/");
    // Sampling-plan writers anywhere in src/ must write atomically
    // (the rule itself only fires in files mentioning the schema).
    rs.planAtomicWrite = true;
    // Interval selection must be a pure function of the sample series:
    // no host clock of any kind, steady or otherwise.
    rs.intervalWallclock = startsWith(rel_path, "src/trace/");

    // Simulation code: anything whose behaviour feeds simulated state,
    // results, or serialized output. base/ (host utilities, and the
    // sanctioned PRNG itself) and obs/ (host-side wall-clock profiling)
    // are exempt from the determinism group.
    static const char* kSimDirs[] = {
        "src/softsdv/", "src/dragonhead/", "src/cache/", "src/mem/",
        "src/trace/",   "src/core/",       "src/workloads/",
        "src/prefetch/",
    };
    for (const char* dir : kSimDirs) {
        if (startsWith(rel_path, dir)) {
            rs.determinism = true;
            break;
        }
    }
    return rs;
}

std::string
canonicalGuard(const std::string& rel_path)
{
    std::string path = rel_path;
    if (startsWith(path, "src/"))
        path = path.substr(4);
    std::string guard = "COSIM_";
    for (char c : path) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    return guard;
}

std::vector<Finding>
lintContent(const std::string& rel_path, const std::string& content,
            const RuleSet& rules)
{
    std::vector<Finding> findings;
    const std::vector<std::string> raw = splitLines(content);
    const std::string code_text = stripCommentsAndStrings(content);
    const std::vector<std::string> code = splitLines(code_text);
    const Suppressions sup = parseSuppressions(raw);

    auto report = [&](const std::string& rule, int line,
                      const std::string& message) {
        if (!sup.allows(rule, line))
            findings.push_back(Finding{rel_path, line, rule, message});
    };

    const std::set<std::string> unordered_names =
        rules.determinism ? unorderedContainerNames(code_text)
                          : std::set<std::string>{};

    // The sampled-simulation rules fire only in files that are in the
    // business: plan writers name the "cosim-plan/" schema (in string
    // literals, so the raw content is searched), interval selectors
    // name the plan types in code.
    const bool writes_plans =
        rules.planAtomicWrite &&
        content.find("cosim-plan/") != std::string::npos;
    const bool selects_intervals =
        rules.intervalWallclock &&
        (containsWord(code_text, "SamplingPlan") ||
         containsWord(code_text, "PlanInterval"));

    for (std::size_t i = 0; i < code.size(); ++i) {
        const std::string& line = code[i];
        const int n = static_cast<int>(i) + 1;
        // Parse the include path from the raw line: a quoted include is
        // a string literal, so the stripped line has it blanked out.
        // Gating on the stripped line still opening with '#' keeps
        // directives inside comments or raw strings from counting.
        const IncludeLine inc = startsWith(trim(line), "#") &&
                                        i < raw.size()
                                    ? parseInclude(raw[i])
                                    : IncludeLine{};

        if (rules.determinism && inc.path.empty()) {
            for (const CallRule& r : kDeterminismCalls) {
                if (containsCall(line, r.name))
                    report(r.rule, n, r.message);
            }
            if (containsWord(line, "system_clock"))
                report("no-system-clock", n,
                       "std::chrono::system_clock is wall-clock; use "
                       "steady_clock for host timing, simulated time "
                       "for model behaviour");
            if (containsWord(line, "random_device"))
                report("no-random-device", n,
                       "std::random_device is host entropy; cosim::Rng "
                       "(base/random.hh) is the only sanctioned "
                       "randomness source");
            if (!unordered_names.empty()) {
                std::string target = rangeForTarget(line);
                if (!target.empty() && unordered_names.count(target)) {
                    report("unordered-iteration", n,
                           "iterating '" + target +
                               "' (std::unordered_*) has host-dependent "
                               "order; sort or use an ordered container "
                               "before results/serialization");
                }
            }
        }

        if (rules.noRawNewDelete && inc.path.empty()) {
            if (containsWord(line, "new"))
                report("no-raw-new", n,
                       "raw new in library code; use std::make_unique "
                       "or a container");
            std::size_t pos = 0;
            while ((pos = line.find("delete", pos)) !=
                   std::string::npos) {
                if (wordBoundaryAt(line, pos, 6)) {
                    std::string before = trim(line.substr(0, pos));
                    if (before.empty() || before.back() != '=') {
                        report("no-raw-delete", n,
                               "raw delete in library code; use "
                               "std::unique_ptr ownership");
                        break;
                    }
                }
                pos += 6;
            }
        }

        if (rules.noPrintf) {
            for (const CallRule& r : kPrintfCalls) {
                if (containsCall(line, r.name)) {
                    report("no-printf", n,
                           std::string(r.name) +
                               "() in library code; use the "
                               "base/logging.hh macros or return "
                               "strings to the caller");
                    break;
                }
            }
        }

        if (rules.fsbDirectIssue && inc.path.empty() &&
            (line.find("fsb_->issue") != std::string::npos ||
             line.find("fsb->issue") != std::string::npos)) {
            report("fsb-direct-issue", n,
                   "direct FrontSideBus issue from softsdv/; record "
                   "into the slot's TxnSink and let the DEX merge "
                   "path (dex_scheduler.cc) deliver it, or sharded "
                   "execution loses bit-identity");
        }

        if (writes_plans && inc.path.empty() &&
            (containsWord(line, "ofstream") ||
             containsCall(line, "fopen"))) {
            report("plan-atomic-write", n,
                   "raw file I/O in a sampling-plan writer; plans must "
                   "go through AtomicFile / writeFileAtomic "
                   "(base/atomic_file.hh) so a failed run never leaves "
                   "a torn cosim-plan file for --plan to consume");
        }

        if (selects_intervals && inc.path.empty()) {
            const bool clock_type =
                containsWord(line, "steady_clock") ||
                containsWord(line, "system_clock");
            if (clock_type || containsCall(line, "time") ||
                containsCall(line, "clock_gettime")) {
                report("interval-wallclock", n,
                       "host clock in interval-selection code; plan "
                       "generation must be a pure function of the "
                       "sample series and the seed (time sampled "
                       "passes in core/cosim.cc instead)");
            }
        }

        if (rules.noRawOfstream && inc.path.empty() &&
            containsWord(line, "ofstream")) {
            report("no-raw-ofstream", n,
                   "raw std::ofstream in library code; write artifacts "
                   "through AtomicFile / writeFileAtomic "
                   "(base/atomic_file.hh) so failures never leave a "
                   "truncated file");
        }

        if (rules.includeHygiene) {
            if (!inc.path.empty()) {
                if (inc.angled && isProjectIncludePath(inc.path)) {
                    report("include-hygiene", n,
                           "project header '" + inc.path +
                               "' included with <>; use \"quotes\"");
                } else if (startsWith(inc.path, "../")) {
                    report("include-hygiene", n,
                           "relative include '" + inc.path +
                               "'; include repo-root-relative paths");
                }
            }
        }

        if (rules.trailingWhitespace && i < raw.size() &&
            !raw[i].empty()) {
            char last = raw[i].back();
            if (last == ' ' || last == '\t')
                report("trailing-whitespace", n, "trailing whitespace");
        }
    }

    if (rules.metricName) {
        std::map<std::string, int> first_seen;
        for (const MetricRegistration& reg :
             metricRegistrations(content, code_text)) {
            if (!isValidMetricName(reg.name)) {
                report("metric-name", reg.line,
                       "metric name \"" + reg.name +
                           "\" violates [a-z][a-z0-9_.]*; the metrics "
                           "registry panics on malformed names "
                           "(src/obs/metrics.hh)");
                continue;
            }
            auto ins = first_seen.emplace(reg.name, reg.line);
            if (!ins.second) {
                report("metric-name", reg.line,
                       "metric \"" + reg.name +
                           "\" registered more than once in this file "
                           "(first at line " +
                           std::to_string(ins.first->second) +
                           "); record sites must hold one static "
                           "handle");
            }
        }
    }

    if (rules.headerGuard && isHeaderPath(rel_path)) {
        const std::string want = canonicalGuard(rel_path);
        int ifndef_line = -1, define_line = -1;
        std::string have;
        findGuardLines(code, &ifndef_line, &define_line, &have);
        if (ifndef_line < 0 || define_line < 0) {
            if (!sup.allows("header-guard", 1))
                findings.push_back(Finding{
                    rel_path, 1, "header-guard",
                    "missing include guard; expected #ifndef " + want});
        } else if (have != want) {
            report("header-guard", ifndef_line + 1,
                   "include guard '" + have + "' should be '" + want +
                       "'");
        }
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding& a, const Finding& b) {
                         return a.line < b.line;
                     });
    return findings;
}

std::string
fixContent(const std::string& rel_path, const std::string& content,
           const RuleSet& rules)
{
    std::vector<std::string> raw = splitLines(content);
    const std::string code_text = stripCommentsAndStrings(content);
    std::vector<std::string> code = splitLines(code_text);
    const Suppressions sup = parseSuppressions(raw);
    const bool ends_with_newline =
        !content.empty() && content.back() == '\n';

    if (rules.trailingWhitespace) {
        for (std::size_t i = 0; i < raw.size(); ++i) {
            int n = static_cast<int>(i) + 1;
            if (sup.allows("trailing-whitespace", n))
                continue;
            std::size_t e = raw[i].find_last_not_of(" \t");
            if (e == std::string::npos)
                raw[i].clear();
            else if (e + 1 < raw[i].size())
                raw[i].resize(e + 1);
        }
    }

    if (rules.includeHygiene) {
        for (std::size_t i = 0; i < raw.size() && i < code.size(); ++i) {
            int n = static_cast<int>(i) + 1;
            if (sup.allows("include-hygiene", n))
                continue;
            IncludeLine inc = parseInclude(code[i]);
            if (inc.path.empty() || !inc.angled ||
                !isProjectIncludePath(inc.path))
                continue;
            std::size_t open = raw[i].find('<');
            std::size_t close = raw[i].find('>', open);
            if (open == std::string::npos || close == std::string::npos)
                continue;
            raw[i] = raw[i].substr(0, open) + "\"" + inc.path + "\"" +
                     raw[i].substr(close + 1);
        }
    }

    if (rules.headerGuard && isHeaderPath(rel_path) &&
        !sup.allows("header-guard", 1)) {
        const std::string want = canonicalGuard(rel_path);
        int ifndef_line = -1, define_line = -1;
        std::string have;
        findGuardLines(code, &ifndef_line, &define_line, &have);
        if (ifndef_line >= 0 && define_line >= 0 && have != want &&
            !sup.allows("header-guard", ifndef_line + 1)) {
            raw[ifndef_line] = "#ifndef " + want;
            raw[define_line] = "#define " + want;
            // Rename the closing "#endif // GUARD" comment if present.
            for (std::size_t i = raw.size(); i-- > 0;) {
                std::string t = trim(code[i]);
                if (startsWith(t, "#endif")) {
                    raw[i] = "#endif // " + want;
                    break;
                }
                if (!t.empty())
                    break;
            }
        }
    }

    std::string out;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        out += raw[i];
        if (i + 1 < raw.size() || ends_with_newline)
            out += '\n';
    }
    return out;
}

} // namespace cosim_lint
