/**
 * @file
 * cosim_lint command-line driver: file walking and I/O around the pure
 * linting core in linter.cc.
 *
 *   cosim_lint [--root=<dir>] file...     lint specific files
 *   cosim_lint [--root=<dir>] --check-all lint src/ tools/ tests/
 *                                         bench/ examples/
 *   cosim_lint --fix ...                  rewrite mechanical findings
 *                                         (header guards, include
 *                                         style, trailing whitespace)
 *   cosim_lint --list-rules               print every rule name
 *
 * Findings go to stdout as "file:line: rule: message". Exit status: 0
 * clean, 1 findings (or files --fix could not fully fix), 2 usage/IO
 * error.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cosim_lint/linter.hh"

namespace fs = std::filesystem;

namespace {

bool
readFile(const fs::path& path, std::string* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return in.good() || in.eof();
}

bool
writeFile(const fs::path& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << content;
    return out.good();
}

bool
lintableExtension(const fs::path& path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp";
}

/** @p path relative to @p root with '/' separators, or the generic
 * path unchanged when it is not under root. */
std::string
relativeTo(const fs::path& root, const fs::path& path)
{
    std::error_code ec;
    fs::path rel = fs::relative(path, root, ec);
    if (ec || rel.empty() || *rel.begin() == "..")
        return path.generic_string();
    return rel.generic_string();
}

struct Options
{
    bool fix = false;
    bool checkAll = false;
    bool listRules = false;
    std::string root = ".";
    std::vector<std::string> files;
};

int
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root=<dir>] [--fix] (--check-all | file...)\n"
        "       %s --list-rules\n",
        argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--fix") {
            opts.fix = true;
        } else if (arg == "--check-all") {
            opts.checkAll = true;
        } else if (arg == "--list-rules") {
            opts.listRules = true;
        } else if (arg.rfind("--root=", 0) == 0) {
            opts.root = arg.substr(7);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            return usage(argv[0]);
        } else {
            opts.files.push_back(arg);
        }
    }

    if (opts.listRules) {
        for (const std::string& rule : cosim_lint::allRules())
            std::printf("%s\n", rule.c_str());
        return 0;
    }
    if (!opts.checkAll && opts.files.empty())
        return usage(argv[0]);

    const fs::path root(opts.root);
    std::vector<fs::path> targets;
    if (opts.checkAll) {
        static const char* kTrees[] = {"src", "tools", "tests", "bench",
                                       "examples"};
        for (const char* tree : kTrees) {
            fs::path dir = root / tree;
            if (!fs::exists(dir))
                continue;
            for (const auto& entry :
                 fs::recursive_directory_iterator(dir)) {
                if (entry.is_regular_file() &&
                    lintableExtension(entry.path()))
                    targets.push_back(entry.path());
            }
        }
        std::sort(targets.begin(), targets.end());
    }
    for (const std::string& f : opts.files)
        targets.emplace_back(f);

    int total_findings = 0;
    int io_errors = 0;
    std::size_t files_checked = 0;
    std::size_t files_fixed = 0;

    for (const fs::path& path : targets) {
        std::string content;
        if (!readFile(path, &content)) {
            std::fprintf(stderr, "cosim_lint: cannot read '%s'\n",
                         path.string().c_str());
            ++io_errors;
            continue;
        }
        const std::string rel = relativeTo(root, path);
        const cosim_lint::RuleSet rules = cosim_lint::ruleSetFor(rel);
        ++files_checked;

        if (opts.fix) {
            std::string fixed =
                cosim_lint::fixContent(rel, content, rules);
            if (fixed != content) {
                if (!writeFile(path, fixed)) {
                    std::fprintf(stderr,
                                 "cosim_lint: cannot write '%s'\n",
                                 path.string().c_str());
                    ++io_errors;
                    continue;
                }
                ++files_fixed;
                content = std::move(fixed);
            }
        }

        for (const cosim_lint::Finding& f :
             cosim_lint::lintContent(rel, content, rules)) {
            std::printf("%s\n", f.format().c_str());
            ++total_findings;
        }
    }

    if (io_errors > 0)
        return 2;
    if (opts.fix)
        std::fprintf(stderr, "cosim_lint: %zu file(s) checked, %zu "
                             "fixed, %d finding(s) remain\n",
                     files_checked, files_fixed, total_findings);
    else
        std::fprintf(stderr, "cosim_lint: %zu file(s) checked, %d "
                             "finding(s)\n",
                     files_checked, total_findings);
    return total_findings > 0 ? 1 : 0;
}
