#include "tools/cosim_analyze/lock_order.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace cosim_analyze {

namespace {

// -------------------------------------------------------------------
// Stage one: extraction.
// -------------------------------------------------------------------

/** Code-token view helpers (kept local; rules.cc has its own copy). */
struct CV
{
    const TokenStream& ts;
    std::size_t size() const { return ts.code.size(); }
    const Token& at(std::size_t i) const { return ts.codeTok(i); }
    bool
    isPunct(std::size_t i, const char* t) const
    {
        return i < size() && at(i).isPunct(t);
    }
    bool
    isIdent(std::size_t i, const char* t) const
    {
        return i < size() && at(i).isIdent(t);
    }
};

/**
 * Member-call names that are standard-library vocabulary. A call
 * `x.store(0)` is almost always std::atomic, not some project class
 * that happens to have a unique `store` method -- resolving such
 * names by bare-name uniqueness manufactures false lock edges, so
 * they are never recorded as cross-TU calls.
 */
bool
isStdVocabulary(const std::string& s)
{
    static const std::set<std::string> kStd = {
        "store",   "load",       "exchange",   "fetch_add",
        "fetch_sub", "push_back", "emplace_back", "pop_back",
        "push",    "pop",        "front",      "back",
        "begin",   "end",        "rbegin",     "rend",
        "size",    "empty",      "clear",      "insert",
        "erase",   "find",       "count",      "at",
        "data",    "reserve",    "resize",     "get",
        "reset",   "release",    "swap",       "str",
        "c_str",   "substr",     "append",     "emplace",
        "wait",    "notify_one", "notify_all", "lock",
        "unlock",  "try_lock",   "tryLock",    "join",
        "detach",  "top",        "first",      "second",
    };
    return kStd.count(s) > 0;
}

bool
isKeywordNotAName(const std::string& s)
{
    static const std::set<std::string> kw = {
        "if",     "for",    "while",  "switch",   "catch",
        "return", "sizeof", "static_assert",      "alignof",
        "decltype", "new",  "delete", "throw",    "assert",
    };
    return kw.count(s) > 0;
}

/** Code index of the ')' matching the '(' at @p open, or npos. */
std::size_t
matchParen(const CV& cv, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < cv.size(); ++i) {
        if (cv.isPunct(i, "("))
            ++depth;
        else if (cv.isPunct(i, ")") && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/**
 * Parse one lock-naming expression from code tokens [@p i, @p end):
 * `mutex_`, `shard.mutex`, `this->mutex_`, `other.mutex_`. @p cls is
 * the enclosing class (used when the expression is a bare member or
 * explicit `this->`).
 */
LockRef
parseLockExpr(const CV& cv, std::size_t i, std::size_t end,
              const std::string& cls)
{
    LockRef ref;
    std::vector<std::string> parts;
    for (std::size_t j = i; j < end; ++j) {
        const Token& t = cv.at(j);
        if (t.kind == TokKind::Ident)
            parts.push_back(t.text);
        ref.raw += t.text;
    }
    if (parts.empty())
        return ref;
    if (parts.size() == 1) {
        // Bare member (or local/namespace-scope mutex): resolve
        // against the enclosing class first.
        ref.cls = cls;
        ref.member = parts[0];
    } else if (parts[0] == "this") {
        ref.cls = cls;
        ref.member = parts.back();
    } else {
        // obj.member / obj->member: the declaring class is whatever
        // uniquely declares `member`, resolved in stage two.
        ref.member = parts.back();
    }
    return ref;
}

/** One entry of the held-locks stack. */
struct Held
{
    LockRef ref;
    int depth; ///< brace depth the guard lives at
};

struct Extractor
{
    const CV cv;
    FileFacts* out;

    // Class/namespace context: name pushed at its '{' depth.
    struct Scope
    {
        std::string cls; ///< "" for namespaces and plain blocks
        int depth;
    };
    std::vector<Scope> scopes;
    int depth = 0;

    std::string
    currentClass() const
    {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            if (!it->cls.empty())
                return it->cls;
        }
        return "";
    }

    // Pending class/struct head: set at the keyword, pushed at '{',
    // dropped at ';' (forward declaration).
    std::string pendingClass;
    bool havePendingClass = false;

    void
    run()
    {
        for (std::size_t i = 0; i < cv.size();)
            i = step(i);
    }

    std::size_t
    step(std::size_t i)
    {
        const Token& t = cv.at(i);

        if (t.isPunct("{")) {
            ++depth;
            if (havePendingClass) {
                scopes.push_back({pendingClass, depth});
                havePendingClass = false;
            }
            return i + 1;
        }
        if (t.isPunct("}")) {
            while (!scopes.empty() && scopes.back().depth == depth)
                scopes.pop_back();
            --depth;
            return i + 1;
        }
        if (t.isPunct(";")) {
            havePendingClass = false;
            return i + 1;
        }

        if (t.isIdent("class") || t.isIdent("struct")) {
            // Name is the last identifier of the head chain
            // (`struct StatsRegistry::Shard` -> Shard). An enum class
            // is not a scope we care about, but pushing its name is
            // harmless (it holds no mutexes or functions).
            std::size_t j = i + 1;
            std::string name;
            while (j < cv.size() &&
                   (cv.at(j).kind == TokKind::Ident ||
                    cv.isPunct(j, "::"))) {
                if (cv.at(j).kind == TokKind::Ident &&
                    cv.at(j).text != "alignas" &&
                    cv.at(j).text != "final")
                    name = cv.at(j).text;
                ++j;
            }
            if (!name.empty()) {
                pendingClass = name;
                havePendingClass = true;
            }
            return i + 1;
        }

        // Mutex member / variable: [cosim::] Mutex name ;
        if (t.isIdent("Mutex") && i + 1 < cv.size() &&
            cv.at(i + 1).kind == TokKind::Ident &&
            cv.isPunct(i + 2, ";")) {
            out->mutexes.push_back(MutexDecl{
                currentClass(), cv.at(i + 1).text, cv.at(i + 1).line});
            return i + 3;
        }

        // Function definition or annotated declaration.
        if (t.kind == TokKind::Ident && !isKeywordNotAName(t.text) &&
            cv.isPunct(i + 1, "(")) {
            std::size_t consumed = tryFunction(i);
            if (consumed != std::string::npos)
                return consumed;
        }
        return i + 1;
    }

    /**
     * Try to read a function at code index @p i (Ident followed by
     * '('). Returns the index to resume at, or npos when this is not
     * a function definition / annotated declaration.
     */
    std::size_t
    tryFunction(std::size_t i)
    {
        // Qualified name: look back across `Cls ::` chains.
        std::string cls = currentClass();
        std::string name = cv.at(i).text;
        if (i >= 2 && cv.isPunct(i - 1, "::") &&
            cv.at(i - 2).kind == TokKind::Ident)
            cls = cv.at(i - 2).text;
        // An initializer like `int x = foo();` is not a definition:
        // the '=' right before the (possibly qualified) name gives it
        // away, as does a '.'/'->' member call.
        std::size_t before = i;
        if (i >= 2 && cv.isPunct(i - 1, "::"))
            before = i - 2;
        if (before > 0 && (cv.isPunct(before - 1, "=") ||
                           cv.isPunct(before - 1, ".") ||
                           cv.isPunct(before - 1, "->") ||
                           cv.isPunct(before - 1, "(") ||
                           cv.isPunct(before - 1, ",") ||
                           cv.isIdent(before - 1, "return")))
            return std::string::npos;

        std::size_t close = matchParen(cv, i + 1);
        if (close == std::string::npos)
            return std::string::npos;

        // Scan the qualifier tail: const/noexcept/override/REQUIRES/
        // ACQUIRE/RELEASE/... until '{' (definition), ';'
        // (declaration), or something that says "not a function".
        FuncLockFacts fn;
        fn.qname = cls.empty() ? name : cls + "::" + name;
        fn.line = cv.at(i).line;
        bool annotated = false;
        std::size_t j = close + 1;
        while (j < cv.size()) {
            const Token& q = cv.at(j);
            if (q.isPunct("{") || q.isPunct(";"))
                break;
            if (q.kind == TokKind::Ident &&
                (q.text == "REQUIRES" || q.text == "ACQUIRE" ||
                 q.text == "ACQUIRE_SHARED" ||
                 q.text == "REQUIRES_SHARED" ||
                 q.text == "EXCLUDES" || q.text == "RELEASE" ||
                 q.text == "NO_THREAD_SAFETY_ANALYSIS") &&
                cv.isPunct(j + 1, "(")) {
                std::size_t aclose = matchParen(cv, j + 1);
                if (aclose == std::string::npos)
                    return std::string::npos;
                if (q.text == "REQUIRES" || q.text == "ACQUIRE") {
                    // Comma-separated lock expressions.
                    std::size_t arg = j + 2;
                    for (std::size_t k = j + 2; k <= aclose; ++k) {
                        if (cv.isPunct(k, ",") || k == aclose) {
                            if (k > arg) {
                                LockRef ref = parseLockExpr(cv, arg, k,
                                                            cls);
                                if (!ref.raw.empty()) {
                                    if (q.text == "REQUIRES")
                                        fn.requiresLocks.push_back(ref);
                                    else
                                        fn.acquireLocks.push_back(ref);
                                }
                            }
                            arg = k + 1;
                        }
                    }
                    annotated = true;
                }
                j = aclose + 1;
                continue;
            }
            if (q.kind == TokKind::Ident &&
                (q.text == "const" || q.text == "noexcept" ||
                 q.text == "override" || q.text == "final")) {
                ++j;
                continue;
            }
            // Member init list, trailing return, or not a function at
            // all (`x(3), y(4)` in an initializer list). Give up on
            // everything except a ':' init list, which we skip to the
            // '{' of.
            if (q.isPunct(":")) {
                while (j < cv.size() && !cv.isPunct(j, "{") &&
                       !cv.isPunct(j, ";"))
                    ++j;
                continue;
            }
            return std::string::npos;
        }
        if (j >= cv.size())
            return std::string::npos;

        if (cv.isPunct(j, ";")) {
            // Declaration: only interesting when annotated (headers
            // carry REQUIRES/ACQUIRE; the .cc body usually does not).
            if (annotated)
                out->funcs.push_back(std::move(fn));
            return j + 1;
        }

        // Definition body.
        std::size_t end = analyzeBody(j, &fn);
        out->funcs.push_back(std::move(fn));
        return end;
    }

    /** Walk the body starting at its '{' (code index @p open); fills
     * @p fn and returns the index just past the matching '}'. */
    std::size_t
    analyzeBody(std::size_t open, FuncLockFacts* fn)
    {
        const std::string cls =
            fn->qname.find("::") != std::string::npos
                ? fn->qname.substr(0, fn->qname.find("::"))
                : currentClass();
        std::vector<Held> held;
        for (const LockRef& r : fn->requiresLocks)
            held.push_back({r, 0}); // held for the whole body
        int bdepth = 0;
        std::size_t i = open;
        for (; i < cv.size(); ++i) {
            const Token& t = cv.at(i);
            if (t.isPunct("{")) {
                ++bdepth;
                continue;
            }
            if (t.isPunct("}")) {
                --bdepth;
                while (!held.empty() && held.back().depth > bdepth)
                    held.pop_back();
                if (bdepth == 0) {
                    ++i;
                    break;
                }
                continue;
            }

            // LockGuard g(expr);  (cosim:: qualifier already skipped
            // by keying on the Ident itself)
            if (t.isIdent("LockGuard") && i + 1 < cv.size() &&
                cv.at(i + 1).kind == TokKind::Ident &&
                cv.isPunct(i + 2, "(")) {
                std::size_t close = matchParen(cv, i + 2);
                if (close == std::string::npos)
                    continue;
                LockRef ref =
                    parseLockExpr(cv, i + 3, close, cls);
                if (!ref.raw.empty()) {
                    for (const Held& h : held)
                        fn->edges.push_back(
                            LockEdge{h.ref, ref, t.line});
                    fn->acquires.push_back({ref, t.line});
                    held.push_back({ref, bdepth});
                }
                i = close;
                continue;
            }

            // Call sites (only meaningful while a lock is held, or to
            // functions that themselves acquire -- stage two decides).
            if (t.kind == TokKind::Ident &&
                !isKeywordNotAName(t.text) && cv.isPunct(i + 1, "(") &&
                t.text != "LockGuard") {
                LockCall call;
                call.line = t.line;
                if (i >= 2 && cv.isPunct(i - 1, "::") &&
                    cv.at(i - 2).kind == TokKind::Ident) {
                    call.callee = cv.at(i - 2).text + "::" + t.text;
                } else if (i >= 1 && (cv.isPunct(i - 1, ".") ||
                                      cv.isPunct(i - 1, "->"))) {
                    if (isStdVocabulary(t.text))
                        continue; // std container/atomic method
                    call.callee = t.text; // member of some object
                } else {
                    call.callee = cls.empty()
                                      ? t.text
                                      : cls + "::" + t.text;
                }
                for (const Held& h : held)
                    call.held.push_back(h.ref);
                fn->calls.push_back(std::move(call));
            }
        }
        return i;
    }
};

// -------------------------------------------------------------------
// Stage two: resolution, call-graph closure, cycle detection.
// -------------------------------------------------------------------

/** Where one acquisition-order edge was observed. */
struct GlobalEdge
{
    std::string from, to; ///< resolved lock ids
    std::string file;
    int line = 0;
};

struct Resolver
{
    // member name -> set of classes declaring a Mutex of that name.
    std::map<std::string, std::set<std::string>> byMember;

    void
    index(const std::vector<FileFacts>& files)
    {
        for (const FileFacts& ff : files) {
            for (const MutexDecl& m : ff.mutexes)
                byMember[m.member].insert(m.cls);
        }
    }

    /** Global identity of @p ref observed in @p file. */
    std::string
    resolve(const LockRef& ref, const std::string& file) const
    {
        auto it = byMember.find(ref.member);
        if (!ref.member.empty() && it != byMember.end()) {
            if (!ref.cls.empty() && it->second.count(ref.cls))
                return ref.cls + "::" + ref.member;
            if (it->second.size() == 1) {
                const std::string& cls = *it->second.begin();
                return cls.empty() ? ref.member
                                   : cls + "::" + ref.member;
            }
        }
        if (!ref.cls.empty() && !ref.member.empty())
            return ref.cls + "::" + ref.member; // trust the context
        // Unresolvable: keep it file-local, keyed on the full source
        // expression, so unrelated locks that happen to share a member
        // spelling (a.mutex_ vs b.mutex_ with two declaring classes)
        // never merge into false cycles.
        return file + "#" + (ref.raw.empty() ? ref.member : ref.raw);
    }
};

} // namespace

void
extractLockFacts(const TokenStream& ts, FileFacts* out)
{
    Extractor ex{CV{ts}, out, {}, 0, {}, false};
    ex.run();
}

std::vector<Finding>
checkLockOrder(const std::vector<FileFacts>& files,
               const std::vector<AllowEntry>& allows,
               std::vector<bool>* used_allows)
{
    std::vector<Finding> findings;

    Resolver rs;
    rs.index(files);

    // Merge function summaries across TUs by qualified name; remember
    // which file each body lives in for edge provenance.
    struct FnInfo
    {
        std::set<std::string> acquiresAll; ///< resolved, transitive
        std::vector<std::pair<LockRef, int>> acquires;
        std::vector<LockEdge> edges;
        std::vector<LockCall> calls;
        std::string file;
    };
    std::map<std::string, FnInfo> fns;
    std::map<std::string, std::set<std::string>> byBareName;
    for (const FileFacts& ff : files) {
        for (const FuncLockFacts& f : ff.funcs) {
            FnInfo& info = fns[f.qname];
            for (const auto& [ref, line] : f.acquires) {
                info.acquires.push_back({ref, line});
                info.acquiresAll.insert(rs.resolve(ref, ff.path));
            }
            for (const LockRef& ref : f.acquireLocks)
                info.acquiresAll.insert(rs.resolve(ref, ff.path));
            for (const LockEdge& e : f.edges)
                info.edges.push_back(e);
            for (const LockCall& c : f.calls)
                info.calls.push_back(c);
            if (!f.edges.empty() || !f.calls.empty() ||
                info.file.empty())
                info.file = ff.path;
            const std::size_t sep = f.qname.rfind("::");
            byBareName[sep == std::string::npos
                           ? f.qname
                           : f.qname.substr(sep + 2)]
                .insert(f.qname);
        }
    }

    // Resolve a call-site name to a summarized function: exact qname
    // first, then unique bare name (member calls through an object).
    auto resolveCallee = [&](const std::string& callee)
        -> const FnInfo* {
        auto it = fns.find(callee);
        if (it != fns.end())
            return &it->second;
        const std::size_t sep = callee.rfind("::");
        const std::string bare =
            sep == std::string::npos ? callee : callee.substr(sep + 2);
        auto bn = byBareName.find(bare);
        if (bn != byBareName.end() && bn->second.size() == 1)
            return &fns.at(*bn->second.begin());
        return nullptr;
    };

    // Transitive closure of acquiresAll over the call graph.
    for (bool changed = true; changed;) {
        changed = false;
        for (auto& [qname, info] : fns) {
            for (const LockCall& c : info.calls) {
                const FnInfo* callee = resolveCallee(c.callee);
                if (!callee || callee == &info)
                    continue;
                for (const std::string& l : callee->acquiresAll)
                    changed |= info.acquiresAll.insert(l).second;
            }
        }
    }

    // Global acquisition-order edges: direct nesting plus
    // call-while-holding into anything the callee may acquire.
    std::vector<GlobalEdge> edges;
    std::map<std::string, const FileFacts*> byPath;
    for (const FileFacts& ff : files)
        byPath[ff.path] = &ff;
    for (const auto& [qname, info] : fns) {
        for (const LockEdge& e : info.edges)
            edges.push_back(GlobalEdge{rs.resolve(e.from, info.file),
                                       rs.resolve(e.to, info.file),
                                       info.file, e.line});
        for (const LockCall& c : info.calls) {
            if (c.held.empty())
                continue;
            const FnInfo* callee = resolveCallee(c.callee);
            if (!callee || callee == &info)
                continue;
            for (const std::string& to : callee->acquiresAll) {
                for (const LockRef& h : c.held)
                    edges.push_back(
                        GlobalEdge{rs.resolve(h, info.file), to,
                                   info.file, c.line});
            }
        }
    }

    auto edgeAllowed = [&](const std::string& from,
                           const std::string& to) {
        bool hit = false;
        for (std::size_t i = 0; i < allows.size(); ++i) {
            if (allows[i].pass == "lock-order" &&
                allows[i].from == from && allows[i].to == to) {
                (*used_allows)[i] = true;
                hit = true;
            }
        }
        return hit;
    };
    auto suppressed = [&](const GlobalEdge& e) {
        auto it = byPath.find(e.file);
        return it != byPath.end() &&
               it->second->suppressions.allows("lock-order-cycle",
                                               e.line);
    };

    // Adjacency with one representative site per (from, to).
    std::map<std::string, std::map<std::string, const GlobalEdge*>> adj;
    for (const GlobalEdge& e : edges) {
        auto& slot = adj[e.from][e.to];
        if (slot == nullptr)
            slot = &e;
    }

    // Self-edges first: re-acquiring a held non-recursive mutex
    // deadlocks on its own.
    std::set<std::string> reported_self;
    for (const GlobalEdge& e : edges) {
        if (e.from != e.to || !reported_self.insert(e.from).second)
            continue;
        if (edgeAllowed(e.from, e.to) || suppressed(e))
            continue;
        findings.push_back(Finding{
            e.file, e.line, "lock-order-cycle",
            "'" + e.from + "' acquired while already held "
            "(cosim::Mutex is non-recursive): self-deadlock"});
    }

    // Proper cycles via DFS over distinct locks.
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    std::set<std::set<std::string>> seen;
    std::function<void(const std::string&)> visit =
        [&](const std::string& node) {
            color[node] = 1;
            stack.push_back(node);
            auto it = adj.find(node);
            if (it != adj.end()) {
                for (const auto& [next, edge] : it->second) {
                    if (next == node)
                        continue; // self-edges handled above
                    if (color[next] == 1) {
                        auto at = std::find(stack.begin(), stack.end(),
                                            next);
                        std::vector<std::string> cycle(at,
                                                       stack.end());
                        std::set<std::string> key(cycle.begin(),
                                                  cycle.end());
                        if (!seen.insert(key).second)
                            continue;
                        bool excused = suppressed(*edge);
                        std::string chain;
                        for (std::size_t k = 0; k < cycle.size();
                             ++k) {
                            const std::string& a = cycle[k];
                            const std::string& b =
                                cycle[(k + 1) % cycle.size()];
                            excused |= edgeAllowed(a, b);
                            chain += a + " -> ";
                        }
                        chain += next;
                        if (!excused)
                            findings.push_back(Finding{
                                edge->file, edge->line,
                                "lock-order-cycle",
                                "lock acquisition cycle: " + chain +
                                    "; a thread holding one side "
                                    "while another holds the other "
                                    "deadlocks"});
                    } else if (color[next] == 0) {
                        visit(next);
                    }
                }
            }
            stack.pop_back();
            color[node] = 2;
        };
    for (const auto& [node, _] : adj) {
        if (color[node] == 0)
            visit(node);
    }

    return findings;
}

} // namespace cosim_analyze
