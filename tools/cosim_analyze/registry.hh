/**
 * @file
 * Identifier registries (project pass).
 *
 * Four classes of stringly-typed identifiers flow through the
 * simulator's artifacts and tooling, and each must be declared in a
 * committed manifest under tools/registries/ so renames are reviewed
 * and tools (postmortem triage, sweep dashboards, fault campaigns)
 * can rely on the full universe of names:
 *
 *   - fault sites     COSIM_FAULT_POINT("x") / faultPending("x"),
 *                     fault_sites.txt, charset [a-z][a-z0-9_.]*,
 *                     declared at exactly one code site;
 *   - metric names    obs::metrics counter("x")/histogram("x"),
 *                     metrics.txt, registered exactly once
 *                     project-wide (per-file charset is the
 *                     metric-name rule);
 *   - stats keys      stats::Group .add("x"), stats_keys.txt,
 *                     charset [a-z][a-z0-9_]* (names recur across
 *                     groups by design: cache.l1 and cache.l2 both
 *                     have "misses");
 *   - schema strings  "cosim-<kind>/<version>" artifact headers,
 *                     schemas.txt (extracted as substrings: they are
 *                     embedded in longer literals).
 *
 * Declaration sites are counted in src/ (schemas also in bench/ and
 * examples/); tests deliberately register junk names and are out of
 * scope. A manifest entry with no remaining site is reported as
 * stale, so the manifests never rot.
 */

#ifndef COSIM_TOOLS_COSIM_ANALYZE_REGISTRY_HH
#define COSIM_TOOLS_COSIM_ANALYZE_REGISTRY_HH

#include <map>
#include <string>
#include <vector>

#include "tools/cosim_analyze/facts.hh"
#include "tools/cosim_analyze/lexer.hh"

namespace cosim_analyze {

/** One parsed tools/registries/<name>.txt manifest. */
struct RegistryFile
{
    std::string path; ///< repo-relative, for findings
    std::map<std::string, int> entries; ///< name -> 1-based line
};

/** The four manifests. */
struct Registries
{
    RegistryFile faultSites, metrics, statsKeys, schemas;
};

/** Parse manifest @p content ('#' comments and blanks skipped). */
RegistryFile parseRegistry(const std::string& rel_path,
                           const std::string& content);

/** Render a manifest body for --write-registries: sorted names under
 * a generated header comment. */
std::string formatRegistry(const std::string& title,
                           const std::vector<std::string>& names);

/** Harvest identifier declarations from @p ts into @p out (appends
 * to out->idents); @p rel_path decides which kinds are in scope. */
void extractIdentDecls(const std::string& rel_path,
                       const TokenStream& ts, FileFacts* out);

/** Check every declaration against the manifests and the manifests
 * against the declarations. */
std::vector<Finding> checkRegistries(const std::vector<FileFacts>& files,
                                     const Registries& regs);

} // namespace cosim_analyze

#endif // COSIM_TOOLS_COSIM_ANALYZE_REGISTRY_HH
