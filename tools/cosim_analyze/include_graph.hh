/**
 * @file
 * Include-graph layering gate (project pass).
 *
 * The repo's module dependency structure is a declared DAG:
 *
 *   base(0) < mem(1) < cache(2) < prefetch(3) < dragonhead(4)
 *           < softsdv(5) < trace(6) < workloads(7) < core(8)
 *           < harness(9)
 *
 * with `obs` as the side channel: importable from every module, but
 * itself importing only `base`. A module may include headers of any
 * strictly lower-ranked module (and its own). Every other edge is a
 * `layer-violation` unless `tools/cosim_analyze/analysis.allow` carries
 * a justified `layering from -> to` entry for it.
 *
 * Independently of ranks, the pass builds the file-level include graph
 * across every analyzed file (src/, tools/, tests/, ...) and reports
 * any cyclic #include chain as `include-cycle` -- ranks catch bad
 * architecture, the cycle check catches headers that cannot compile
 * standalone.
 */

#ifndef COSIM_TOOLS_COSIM_ANALYZE_INCLUDE_GRAPH_HH
#define COSIM_TOOLS_COSIM_ANALYZE_INCLUDE_GRAPH_HH

#include <string>
#include <vector>

#include "tools/cosim_analyze/facts.hh"

namespace cosim_analyze {

/** Module name ("mem", "obs") of a src/ path; "" when the file is not
 * under src/ and therefore outside the layering gate. */
std::string moduleOf(const std::string& rel_path);

/** Rank in the layering order; -1 for unknown modules and "obs"
 * (which is special-cased, not ranked). */
int moduleRank(const std::string& module);

/**
 * Run the layering gate and the include-cycle check over all files.
 * @p allows holds the parsed analysis.allow entries; entries consumed
 * by this pass get their index marked in @p used_allows (same size as
 * @p allows) so the caller can flag stale ones.
 */
std::vector<Finding> checkIncludeGraph(
    const std::vector<FileFacts>& files,
    const std::vector<AllowEntry>& allows,
    std::vector<bool>* used_allows);

} // namespace cosim_analyze

#endif // COSIM_TOOLS_COSIM_ANALYZE_INCLUDE_GRAPH_HH
