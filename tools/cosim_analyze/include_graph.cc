#include "tools/cosim_analyze/include_graph.hh"

#include <algorithm>
#include <map>
#include <set>

namespace cosim_analyze {

namespace {

struct ModuleRank
{
    const char* module;
    int rank;
};

// The declared layering DAG. Strictly ordered: an edge is legal only
// when the including module ranks strictly above the included one.
// "obs" is deliberately absent -- it is the observability side channel,
// importable from everywhere but importing only base.
const ModuleRank kRanks[] = {
    {"base", 0},      {"mem", 1},   {"cache", 2}, {"prefetch", 3},
    {"dragonhead", 4}, {"softsdv", 5}, {"trace", 6}, {"workloads", 7},
    {"core", 8},      {"harness", 9},
};

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

/** Module of an include path, which is written repo-root-relative
 * without the src/ prefix ("mem/dram.hh" -> "mem"). */
std::string
includeModule(const std::string& inc_path)
{
    std::size_t slash = inc_path.find('/');
    if (slash == std::string::npos)
        return "";
    std::string mod = inc_path.substr(0, slash);
    if (mod == "obs")
        return mod;
    for (const ModuleRank& mr : kRanks) {
        if (mod == mr.module)
            return mod;
    }
    return "";
}

/** Resolve an include path to the repo-relative path of an analyzed
 * file, or "" when the include is external (<vector>, system). */
std::string
resolveInclude(const std::string& inc_path,
               const std::set<std::string>& known)
{
    if (known.count(inc_path))
        return inc_path; // tools/..., tests/... are included as-is
    const std::string with_src = "src/" + inc_path;
    if (known.count(with_src))
        return with_src;
    return "";
}

/** DFS state for include-cycle detection. */
struct CycleFinder
{
    const std::map<std::string,
                   std::vector<std::pair<std::string, int>>>& graph;
    std::map<std::string, int> color; // 0 white, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::set<std::vector<std::string>> seen_cycles;
    std::vector<Finding>* findings;

    void
    visit(const std::string& node)
    {
        color[node] = 1;
        stack.push_back(node);
        auto it = graph.find(node);
        if (it != graph.end()) {
            for (const auto& [next, line] : it->second) {
                int c = color[next];
                if (c == 1)
                    report(next, node, line);
                else if (c == 0)
                    visit(next);
            }
        }
        stack.pop_back();
        color[node] = 2;
    }

    void
    report(const std::string& back_to, const std::string& from,
           int line)
    {
        // Cycle is the stack suffix starting at back_to.
        auto at = std::find(stack.begin(), stack.end(), back_to);
        std::vector<std::string> cycle(at, stack.end());
        std::vector<std::string> key = cycle;
        std::sort(key.begin(), key.end());
        if (!seen_cycles.insert(key).second)
            return; // same cycle reached from another entry point
        std::string chain;
        for (const std::string& f : cycle)
            chain += f + " -> ";
        chain += back_to;
        findings->push_back(Finding{
            from, line, "include-cycle",
            "cyclic #include chain: " + chain});
    }
};

} // namespace

std::string
moduleOf(const std::string& rel_path)
{
    if (!startsWith(rel_path, "src/"))
        return "";
    std::size_t slash = rel_path.find('/', 4);
    if (slash == std::string::npos)
        return "";
    return rel_path.substr(4, slash - 4);
}

int
moduleRank(const std::string& module)
{
    for (const ModuleRank& mr : kRanks) {
        if (module == mr.module)
            return mr.rank;
    }
    return -1;
}

std::vector<Finding>
checkIncludeGraph(const std::vector<FileFacts>& files,
                  const std::vector<AllowEntry>& allows,
                  std::vector<bool>* used_allows)
{
    std::vector<Finding> findings;

    auto allowed = [&](const std::string& from,
                       const std::string& to) {
        bool hit = false;
        for (std::size_t i = 0; i < allows.size(); ++i) {
            if (allows[i].pass == "layering" &&
                allows[i].from == from && allows[i].to == to) {
                (*used_allows)[i] = true;
                hit = true; // keep scanning: mark every matching entry
            }
        }
        return hit;
    };

    // --- Layering gate over src/ module edges. ---
    for (const FileFacts& ff : files) {
        const std::string from = moduleOf(ff.path);
        if (from.empty())
            continue;
        const int from_rank = moduleRank(from);
        for (const IncludeFact& inc : ff.includes) {
            const std::string to = includeModule(inc.path);
            if (to.empty() || to == from)
                continue;
            bool ok;
            if (from == "obs") {
                ok = to == "base"; // obs imports only base
            } else if (to == "obs") {
                ok = true; // obs is importable from everywhere
            } else {
                ok = from_rank > moduleRank(to);
            }
            if (ok || allowed(from, to))
                continue;
            if (ff.suppressions.allows("layer-violation", inc.line))
                continue;
            findings.push_back(Finding{
                ff.path, inc.line, "layer-violation",
                "module '" + from + "' may not include '" + inc.path +
                    "' (module '" + to +
                    "'): the layering order is base < mem < cache < "
                    "prefetch < dragonhead < softsdv < trace < "
                    "workloads < core < harness, obs importable by "
                    "all; add a justified entry to "
                    "tools/cosim_analyze/analysis.allow if this edge "
                    "is intended"});
        }
    }

    // --- File-level include cycles, across every analyzed file. ---
    std::set<std::string> known;
    for (const FileFacts& ff : files)
        known.insert(ff.path);
    std::map<std::string, std::vector<std::pair<std::string, int>>>
        graph;
    for (const FileFacts& ff : files) {
        auto& out = graph[ff.path];
        for (const IncludeFact& inc : ff.includes) {
            const std::string to = resolveInclude(inc.path, known);
            if (!to.empty() && to != ff.path)
                out.push_back({to, inc.line});
        }
    }
    CycleFinder cf{graph, {}, {}, {}, &findings};
    for (const FileFacts& ff : files) {
        if (cf.color[ff.path] == 0)
            cf.visit(ff.path);
    }

    return findings;
}

} // namespace cosim_analyze
