#include "tools/cosim_analyze/lexer.hh"

#include <cctype>

namespace cosim_analyze {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isDigit(char c)
{
    return c >= '0' && c <= '9';
}

/** Lexer cursor over the raw content, tracking the current line. */
struct Cursor
{
    const std::string& s;
    std::size_t i = 0;
    int line = 1;

    bool done() const { return i >= s.size(); }
    char cur() const { return i < s.size() ? s[i] : '\0'; }
    char peek(std::size_t n = 1) const
    {
        return i + n < s.size() ? s[i + n] : '\0';
    }

    void
    advance()
    {
        if (s[i] == '\n')
            ++line;
        ++i;
    }
};

/** Consume a // or block comment starting at the cursor. */
Token
lexComment(Cursor& c)
{
    Token t{TokKind::Comment, "", c.line, false};
    std::size_t start = c.i;
    if (c.peek() == '/') { // line comment
        while (!c.done() && c.cur() != '\n')
            c.advance();
    } else { // block comment
        c.advance();
        c.advance();
        while (!c.done()) {
            if (c.cur() == '*' && c.peek() == '/') {
                c.advance();
                c.advance();
                break;
            }
            c.advance();
        }
    }
    t.text = c.s.substr(start, c.i - start);
    return t;
}

/** Consume a quoted literal; @p quote is '"' or '\''. The returned
 * token text holds the contents without the quotes. */
Token
lexQuoted(Cursor& c, char quote)
{
    Token t{quote == '"' ? TokKind::String : TokKind::CharLit, "",
            c.line, false};
    c.advance(); // opening quote
    std::string out;
    while (!c.done()) {
        char ch = c.cur();
        if (ch == '\\') {
            out += ch;
            c.advance();
            if (!c.done()) {
                out += c.cur();
                c.advance();
            }
            continue;
        }
        if (ch == quote) {
            c.advance();
            break;
        }
        if (ch == '\n')
            break; // unterminated: stop at end of line
        out += ch;
        c.advance();
    }
    t.text = out;
    return t;
}

/** Consume R"delim( ... )delim"; cursor sits on the '"'. */
Token
lexRawString(Cursor& c)
{
    Token t{TokKind::String, "", c.line, true};
    c.advance(); // opening quote
    std::string delim;
    while (!c.done() && c.cur() != '(' && c.cur() != '\n') {
        delim += c.cur();
        c.advance();
    }
    if (c.cur() != '(') // malformed raw string: bail with what we have
        return t;
    c.advance();
    const std::string terminator = ")" + delim + "\"";
    std::string out;
    while (!c.done()) {
        if (c.cur() == ')' &&
            c.s.compare(c.i, terminator.size(), terminator) == 0) {
            for (std::size_t k = 0; k < terminator.size(); ++k)
                c.advance();
            break;
        }
        out += c.cur();
        c.advance();
    }
    t.text = out;
    return t;
}

/** Consume a pp-number: digits, idents chars, '.', digit separators,
 * and sign characters following an exponent letter. */
Token
lexNumber(Cursor& c)
{
    Token t{TokKind::Number, "", c.line, false};
    std::string out;
    while (!c.done()) {
        char ch = c.cur();
        if (isIdentChar(ch) || ch == '.' || ch == '\'') {
            out += ch;
            c.advance();
            if ((ch == 'e' || ch == 'E' || ch == 'p' || ch == 'P') &&
                (c.cur() == '+' || c.cur() == '-')) {
                out += c.cur();
                c.advance();
            }
        } else {
            break;
        }
    }
    t.text = out;
    return t;
}

/**
 * Consume a whole preprocessor logical line starting at '#'.
 * Backslash continuations are folded in; a trailing // comment ends
 * the directive (the comment is lexed separately); block comments
 * inside are replaced with one space.
 */
Token
lexDirective(Cursor& c)
{
    Token t{TokKind::Directive, "", c.line, false};
    std::string out;
    while (!c.done()) {
        char ch = c.cur();
        if (ch == '\n')
            break;
        if (ch == '\\' && c.peek() == '\n') {
            c.advance();
            c.advance();
            out += ' ';
            continue;
        }
        if (ch == '/' && c.peek() == '/')
            break; // let the main loop lex the comment
        if (ch == '/' && c.peek() == '*') {
            lexComment(c); // discard; structure only
            out += ' ';
            continue;
        }
        if (ch == '"') {
            // Keep quoted include paths verbatim (escapes are not
            // meaningful inside an include path).
            out += ch;
            c.advance();
            while (!c.done() && c.cur() != '"' && c.cur() != '\n') {
                out += c.cur();
                c.advance();
            }
            if (c.cur() == '"') {
                out += '"';
                c.advance();
            }
            continue;
        }
        out += ch;
        c.advance();
    }
    t.text = out;
    return t;
}

} // namespace

TokenStream
lex(const std::string& content)
{
    TokenStream ts;
    Cursor c{content};
    bool at_line_start = true; // only whitespace seen on this line
    while (!c.done()) {
        char ch = c.cur();
        if (ch == '\n') {
            c.advance();
            at_line_start = true;
            continue;
        }
        if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' ||
            ch == '\f') {
            c.advance();
            continue;
        }
        if (ch == '/' && (c.peek() == '/' || c.peek() == '*')) {
            ts.tokens.push_back(lexComment(c));
            // A block comment does not end the "start of line" state:
            // `  /* x */ #include` is still a directive line.
            continue;
        }
        if (ch == '#' && at_line_start) {
            ts.tokens.push_back(lexDirective(c));
            continue;
        }
        at_line_start = false;
        if (isIdentStart(ch)) {
            Token t{TokKind::Ident, "", c.line, false};
            std::string name;
            while (!c.done() && isIdentChar(c.cur())) {
                name += c.cur();
                c.advance();
            }
            // Literal prefixes: R"..., u8R"..., L"...", u'x', ...
            if (c.cur() == '"') {
                const bool raw = name == "R" || name == "u8R" ||
                                 name == "uR" || name == "UR" ||
                                 name == "LR";
                const bool plain = name == "u8" || name == "u" ||
                                   name == "U" || name == "L";
                if (raw) {
                    ts.tokens.push_back(lexRawString(c));
                    ts.code.push_back(ts.tokens.size() - 1);
                    continue;
                }
                if (plain) {
                    ts.tokens.push_back(lexQuoted(c, '"'));
                    ts.code.push_back(ts.tokens.size() - 1);
                    continue;
                }
            } else if (c.cur() == '\'' &&
                       (name == "u8" || name == "u" || name == "U" ||
                        name == "L")) {
                ts.tokens.push_back(lexQuoted(c, '\''));
                ts.code.push_back(ts.tokens.size() - 1);
                continue;
            }
            t.text = std::move(name);
            ts.tokens.push_back(std::move(t));
            ts.code.push_back(ts.tokens.size() - 1);
            continue;
        }
        if (isDigit(ch) || (ch == '.' && isDigit(c.peek()))) {
            ts.tokens.push_back(lexNumber(c));
            ts.code.push_back(ts.tokens.size() - 1);
            continue;
        }
        if (ch == '"') {
            ts.tokens.push_back(lexQuoted(c, '"'));
            ts.code.push_back(ts.tokens.size() - 1);
            continue;
        }
        if (ch == '\'') {
            ts.tokens.push_back(lexQuoted(c, '\''));
            ts.code.push_back(ts.tokens.size() - 1);
            continue;
        }
        // Punctuation; fuse "::" and "->" only.
        Token t{TokKind::Punct, "", c.line, false};
        if (ch == ':' && c.peek() == ':') {
            t.text = "::";
            c.advance();
            c.advance();
        } else if (ch == '-' && c.peek() == '>') {
            t.text = "->";
            c.advance();
            c.advance();
        } else {
            t.text = std::string(1, ch);
            c.advance();
        }
        ts.tokens.push_back(std::move(t));
        ts.code.push_back(ts.tokens.size() - 1);
    }
    return ts;
}

std::string
directiveKeyword(const std::string& directive_text)
{
    std::size_t i = 0;
    while (i < directive_text.size() && directive_text[i] != '#')
        ++i;
    if (i == directive_text.size())
        return "";
    ++i;
    while (i < directive_text.size() &&
           (directive_text[i] == ' ' || directive_text[i] == '\t'))
        ++i;
    std::string word;
    while (i < directive_text.size() &&
           isIdentChar(directive_text[i]))
        word += directive_text[i++];
    return word;
}

IncludePath
parseIncludeDirective(const std::string& directive_text)
{
    IncludePath inc;
    if (directiveKeyword(directive_text) != "include" &&
        directiveKeyword(directive_text) != "include_next")
        return inc;
    std::size_t open = directive_text.find_first_of("<\"",
                                                    directive_text
                                                        .find("include"));
    if (open == std::string::npos)
        return inc;
    char close = directive_text[open] == '<' ? '>' : '"';
    std::size_t end = directive_text.find(close, open + 1);
    if (end == std::string::npos)
        return inc;
    inc.path = directive_text.substr(open + 1, end - open - 1);
    inc.angled = directive_text[open] == '<';
    return inc;
}

} // namespace cosim_analyze
