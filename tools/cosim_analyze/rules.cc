#include "tools/cosim_analyze/rules.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

namespace cosim_analyze {

namespace {

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
trim(const std::string& s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitLines(const std::string& content)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= content.size()) {
        std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            if (start < content.size())
                lines.push_back(content.substr(start));
            break;
        }
        lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

bool
isHeaderPath(const std::string& rel_path)
{
    return endsWith(rel_path, ".hh") || endsWith(rel_path, ".hpp");
}

const char* kProjectIncludeDirs[] = {
    "base/",   "cache/",   "core/",     "dragonhead/", "harness/",
    "mem/",    "obs/",     "prefetch/", "softsdv/",    "trace/",
    "workloads/", "tools/", "tests/",
};

bool
isProjectIncludePath(const std::string& path)
{
    for (const char* dir : kProjectIncludeDirs) {
        if (startsWith(path, dir))
            return true;
    }
    return false;
}

/** The rule table: name, description, per-file or project pass. */
struct RuleInfo
{
    const char* name;
    const char* description;
};

const RuleInfo kRules[] = {
    // Determinism (simulation directories).
    {"no-rand", "libc rand()/srand()/drand48() in simulation code; "
                "cosim::Rng (base/random.hh) is the sanctioned source"},
    {"no-time", "wall-clock time()/gettimeofday()/clock_gettime() in "
                "simulation code breaks replay bit-identity"},
    {"no-system-clock", "std::chrono::system_clock in simulation code; "
                        "use steady_clock for host timing"},
    {"no-random-device", "std::random_device is host entropy; use "
                         "cosim::Rng (base/random.hh)"},
    {"unordered-iteration", "range-for over std::unordered_* has "
                            "host-dependent order"},
    // Library hygiene.
    {"no-raw-new", "raw new in library code; use std::make_unique or a "
                   "container"},
    {"no-raw-delete", "raw delete in library code; use std::unique_ptr "
                      "ownership"},
    {"no-printf", "printf-family output in library code; use "
                  "base/logging.hh or return strings"},
    {"no-raw-ofstream", "std::ofstream in library code; artifacts go "
                        "through AtomicFile (base/atomic_file.hh)"},
    {"metric-name", "obs::metrics names must match [a-z][a-z0-9_.]* and "
                    "register once per file"},
    {"fsb-direct-issue", "direct FrontSideBus issue from softsdv/; "
                         "deliver through the slot's TxnSink and the "
                         "DEX merge path"},
    {"plan-atomic-write", "sampling-plan writers must use AtomicFile so "
                          "a failed run never leaves a torn plan"},
    {"journal-atomic-append", "sweep-journal records must go through "
                              "DurableAppendFile so a crash can only "
                              "tear the final line"},
    {"interval-wallclock", "host clock in interval-selection code; plan "
                           "generation must be pure in the sample "
                           "series and seed"},
    // Mechanical.
    {"header-guard", "header guards must be COSIM_<PATH>_HH (fixable "
                     "with --fix)"},
    {"include-hygiene", "project headers use \"quotes\" and repo-root-"
                        "relative paths (fixable with --fix)"},
    {"trailing-whitespace", "trailing whitespace (fixable with --fix)"},
    // Project passes (cross-TU).
    {"layer-violation", "#include edge violates the declared module "
                        "layering DAG (see tools/cosim_analyze/"
                        "analysis.allow for justified exceptions)"},
    {"include-cycle", "cyclic #include chain between project headers"},
    {"lock-order-cycle", "cycle in the global lock-acquisition graph: "
                         "a potential static deadlock"},
    {"unregistered-fault-site", "COSIM_FAULT_POINT/faultPending site "
                                "not listed in tools/registries/"
                                "fault_sites.txt"},
    {"duplicate-fault-site", "fault site string declared at more than "
                             "one code site"},
    {"fault-site-name", "fault site must match [a-z][a-z0-9_.]*"},
    {"unregistered-metric", "obs::metrics name not listed in "
                            "tools/registries/metrics.txt"},
    {"duplicate-metric", "metric name registered at more than one code "
                         "site project-wide"},
    {"unregistered-stat-key", "stats::Group key not listed in "
                              "tools/registries/stats_keys.txt"},
    {"stat-key-name", "stats::Group key must match [a-z][a-z0-9_]*"},
    {"unregistered-schema", "artifact schema string not listed in "
                            "tools/registries/schemas.txt"},
    {"stale-registry-entry", "registry manifest entry with no "
                             "remaining code site"},
    {"allowlist-hygiene", "analysis.allow entry is malformed, lacks a "
                          "justification, or no longer matches any "
                          "finding"},
};

struct CallRule
{
    const char* rule;
    const char* name;
    const char* message;
};

const CallRule kDeterminismCalls[] = {
    {"no-rand", "rand", "libc rand() is nondeterministic across hosts; "
                        "use cosim::Rng (base/random.hh)"},
    {"no-rand", "srand", "seed state hidden in libc; use cosim::Rng"},
    {"no-rand", "drand48", "use cosim::Rng (base/random.hh)"},
    {"no-rand", "lrand48", "use cosim::Rng (base/random.hh)"},
    {"no-rand", "mrand48", "use cosim::Rng (base/random.hh)"},
    {"no-time", "time", "wall-clock time() in simulation code breaks "
                        "replay bit-identity"},
    {"no-time", "gettimeofday", "wall-clock in simulation code breaks "
                                "replay bit-identity"},
    {"no-time", "clock_gettime", "wall-clock in simulation code breaks "
                                 "replay bit-identity"},
    {"no-time", "localtime", "calendar time in simulation code breaks "
                             "replay bit-identity"},
    {"no-time", "gmtime", "calendar time in simulation code breaks "
                          "replay bit-identity"},
};

// Stream-output calls only: snprintf/vsnprintf into a caller buffer is
// deterministic string formatting, not the bypass-the-logging-layer
// hazard this rule exists for.
const CallRule kPrintfCalls[] = {
    {"no-printf", "printf", ""},   {"no-printf", "fprintf", ""},
    {"no-printf", "vprintf", ""},  {"no-printf", "vfprintf", ""},
    {"no-printf", "puts", ""},     {"no-printf", "fputs", ""},
    {"no-printf", "putchar", ""},
};

/** Walker over the code-token view with bounds-safe neighbors. */
struct CodeView
{
    const TokenStream& ts;

    std::size_t size() const { return ts.code.size(); }
    const Token& at(std::size_t i) const { return ts.codeTok(i); }

    /** True when code token @p i exists and equals (kind, text). */
    bool
    is(std::size_t i, TokKind kind, const char* text) const
    {
        return i < size() && at(i).is(kind, text);
    }

    bool
    isPunct(std::size_t i, const char* text) const
    {
        return is(i, TokKind::Punct, text);
    }
};

/**
 * True when code token @p i is a call of @p name: Ident(name) with
 * '(' next. A preceding "::" qualifier is allowed (std::rand is still
 * rand); a preceding '.'/'->' is a member call of some other class'
 * method and does not match.
 */
bool
isCallOf(const CodeView& cv, std::size_t i, const char* name)
{
    if (!cv.at(i).isIdent(name))
        return false;
    if (!cv.isPunct(i + 1, "("))
        return false;
    if (i > 0 && (cv.isPunct(i - 1, ".") || cv.isPunct(i - 1, "->")))
        return false;
    return true;
}

/** True when code token @p i is a plain use of identifier @p name
 * (member access through '.'/'->' still counts: tv.time is not a use
 * of ::time, but rules like no-system-clock key on the type name). */
bool
isIdentUse(const CodeView& cv, std::size_t i, const char* name)
{
    return cv.at(i).isIdent(name);
}

/** Skip a balanced template argument list: code index of the matching
 * '>' for the '<' at @p open, or npos. */
std::size_t
matchAngle(const CodeView& cv, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < cv.size(); ++i) {
        if (cv.isPunct(i, "<"))
            ++depth;
        else if (cv.isPunct(i, ">") && --depth == 0)
            return i;
        else if (cv.isPunct(i, ";")) // statement ended: not a template
            return std::string::npos;
    }
    return std::string::npos;
}

/** Code index of the ')' matching the '(' at @p open, or npos. */
std::size_t
matchParen(const CodeView& cv, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < cv.size(); ++i) {
        if (cv.isPunct(i, "("))
            ++depth;
        else if (cv.isPunct(i, ")") && --depth == 0)
            return i;
    }
    return std::string::npos;
}

/** Names declared as std::unordered_{map,set,...} variables/fields. */
std::set<std::string>
unorderedContainerNames(const CodeView& cv)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < cv.size(); ++i) {
        const Token& t = cv.at(i);
        if (t.kind != TokKind::Ident ||
            !startsWith(t.text, "unordered_"))
            continue;
        if (t.text != "unordered_map" && t.text != "unordered_set" &&
            t.text != "unordered_multimap" &&
            t.text != "unordered_multiset")
            continue;
        if (!cv.isPunct(i + 1, "<"))
            continue;
        std::size_t close = matchAngle(cv, i + 1);
        if (close == std::string::npos)
            continue;
        std::size_t j = close + 1;
        while (j < cv.size() &&
               (cv.isPunct(j, "&") || cv.isPunct(j, "*") ||
                cv.is(j, TokKind::Ident, "const")))
            ++j;
        if (j < cv.size() && cv.at(j).kind == TokKind::Ident)
            names.insert(cv.at(j).text);
    }
    return names;
}

/** One obs::metrics registration whose name is a string literal. */
struct MetricRegistration
{
    int line = 0; ///< line the name literal sits on
    std::string name;
};

bool
isValidMetricName(const std::string& name)
{
    if (name.empty() || name[0] < 'a' || name[0] > 'z')
        return false;
    for (char c : name) {
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_' || c == '.'))
            return false;
    }
    return true;
}

/** Every counter("...")/histogram("...") whose first argument is a
 * string literal. Declarations and computed names have no String
 * token right after the '(' and are skipped. */
std::vector<MetricRegistration>
metricRegistrations(const CodeView& cv)
{
    std::vector<MetricRegistration> regs;
    for (std::size_t i = 0; i < cv.size(); ++i) {
        const Token& t = cv.at(i);
        if (t.kind != TokKind::Ident ||
            (t.text != "counter" && t.text != "histogram"))
            continue;
        if (!cv.isPunct(i + 1, "("))
            continue;
        if (i + 2 < cv.size() && cv.at(i + 2).kind == TokKind::String)
            regs.push_back({cv.at(i + 2).line, cv.at(i + 2).text});
    }
    return regs;
}

void
parseDirectiveList(const std::string& text, std::size_t open_paren,
                   int line_no, bool file_wide, Suppressions* out)
{
    std::size_t close = text.find(')', open_paren);
    if (close == std::string::npos)
        return;
    std::string inner =
        text.substr(open_paren + 1, close - open_paren - 1);
    std::stringstream ss(inner);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
        rule = trim(rule);
        if (rule.empty())
            continue;
        if (file_wide) {
            out->fileWide.insert(rule);
        } else {
            // A directive covers its own line and the one below, so it
            // can sit at the end of the offending line or just above.
            out->lines.insert({rule, line_no});
            out->lines.insert({rule, line_no + 1});
        }
    }
}

} // namespace

std::string
Finding::format() const
{
    return file + ":" + std::to_string(line) + ": " + rule + ": " +
           message;
}

std::vector<std::string>
allRules()
{
    std::vector<std::string> out;
    for (const RuleInfo& r : kRules)
        out.push_back(r.name);
    return out;
}

std::string
ruleDescription(const std::string& rule)
{
    for (const RuleInfo& r : kRules) {
        if (rule == r.name)
            return r.description;
    }
    return "";
}

RuleSet
ruleSetFor(const std::string& rel_path)
{
    RuleSet rs; // mechanical hygiene applies everywhere
    if (!startsWith(rel_path, "src/"))
        return rs;

    rs.noRawNewDelete = true;
    // The harness is the CLI-facing reporting layer: banners and figure
    // tables go to stdout by design.
    rs.noPrintf = !startsWith(rel_path, "src/harness/");
    // Artifact writers must go through AtomicFile so an interrupted run
    // never leaves a truncated file; base/ holds AtomicFile itself.
    rs.noRawOfstream = !startsWith(rel_path, "src/base/");
    // Metric names panic at runtime when malformed or duplicated;
    // tests register deliberately bad names, so src/ only.
    rs.metricName = true;
    // Guest-visible bus traffic from softsdv/ must flow through the
    // slot's TxnSink recorder; only the DEX merge loop delivers onto
    // the real FrontSideBus (and carries the one allow). A stray
    // direct issue would silently break --dex-threads bit-identity.
    rs.fsbDirectIssue = startsWith(rel_path, "src/softsdv/");
    // Sampling-plan writers anywhere in src/ must write atomically
    // (the rule itself only fires in files mentioning the schema).
    rs.planAtomicWrite = true;
    // Journal writers must append durably. src/ only: tests forge
    // corrupt journals with raw I/O on purpose, and the inspector
    // merely reads them.
    rs.journalAtomicAppend = startsWith(rel_path, "src/");
    // Interval selection must be a pure function of the sample series:
    // no host clock of any kind, steady or otherwise.
    rs.intervalWallclock = startsWith(rel_path, "src/trace/");

    // Simulation code: anything whose behaviour feeds simulated state,
    // results, or serialized output. base/ (host utilities, and the
    // sanctioned PRNG itself) and obs/ (host-side wall-clock profiling)
    // are exempt from the determinism group.
    static const char* kSimDirs[] = {
        "src/softsdv/", "src/dragonhead/", "src/cache/", "src/mem/",
        "src/trace/",   "src/core/",       "src/workloads/",
        "src/prefetch/",
    };
    for (const char* dir : kSimDirs) {
        if (startsWith(rel_path, dir)) {
            rs.determinism = true;
            break;
        }
    }
    return rs;
}

std::string
canonicalGuard(const std::string& rel_path)
{
    std::string path = rel_path;
    if (startsWith(path, "src/"))
        path = path.substr(4);
    std::string guard = "COSIM_";
    for (char c : path) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    return guard;
}

Suppressions
parseSuppressions(const TokenStream& ts)
{
    Suppressions sup;
    static const char* kTags[] = {"cosim-analyze:", "cosim-lint:"};
    for (const Token& tok : ts.tokens) {
        if (tok.kind != TokKind::Comment)
            continue;
        for (const char* tag : kTags) {
            std::size_t pos = 0;
            while ((pos = tok.text.find(tag, pos)) !=
                   std::string::npos) {
                // Line of the directive inside a multi-line comment.
                int line = tok.line +
                           static_cast<int>(std::count(
                               tok.text.begin(),
                               tok.text.begin() +
                                   static_cast<std::ptrdiff_t>(pos),
                               '\n'));
                std::size_t cursor = pos + std::string(tag).size();
                std::size_t allow_file =
                    tok.text.find("allow-file(", cursor);
                std::size_t allow = tok.text.find("allow(", cursor);
                if (allow_file != std::string::npos) {
                    parseDirectiveList(tok.text, allow_file + 10, line,
                                       true, &sup);
                } else if (allow != std::string::npos) {
                    parseDirectiveList(tok.text, allow + 5, line,
                                       false, &sup);
                }
                pos = cursor;
            }
        }
    }
    return sup;
}

std::vector<Finding>
lintTokens(const std::string& rel_path, const std::string& content,
           const TokenStream& ts, const RuleSet& rules,
           const Suppressions& sup)
{
    std::vector<Finding> findings;
    const CodeView cv{ts};

    auto report = [&](const std::string& rule, int line,
                      const std::string& message) {
        if (!sup.allows(rule, line))
            findings.push_back(Finding{rel_path, line, rule, message});
    };

    const std::set<std::string> unordered_names =
        rules.determinism ? unorderedContainerNames(cv)
                          : std::set<std::string>{};

    // The sampled-simulation rules fire only in files that are in the
    // business: plan writers name the "cosim-plan/" schema anywhere in
    // the file (string literal or prose), interval selectors name the
    // plan types in code.
    const bool writes_plans =
        rules.planAtomicWrite &&
        content.find("cosim-plan/") != std::string::npos;
    // Same gate for the write-ahead journal: the rule fires only in
    // files that name its schema.
    const bool writes_journal =
        rules.journalAtomicAppend &&
        content.find("cosim-journal/") != std::string::npos;
    bool selects_intervals = false;
    if (rules.intervalWallclock) {
        for (std::size_t i = 0; i < cv.size(); ++i) {
            if (isIdentUse(cv, i, "SamplingPlan") ||
                isIdentUse(cv, i, "PlanInterval")) {
                selects_intervals = true;
                break;
            }
        }
    }

    for (std::size_t i = 0; i < cv.size(); ++i) {
        const Token& t = cv.at(i);
        const int n = t.line;

        if (rules.determinism) {
            for (const CallRule& r : kDeterminismCalls) {
                if (isCallOf(cv, i, r.name))
                    report(r.rule, n, r.message);
            }
            if (isIdentUse(cv, i, "system_clock"))
                report("no-system-clock", n,
                       "std::chrono::system_clock is wall-clock; use "
                       "steady_clock for host timing, simulated time "
                       "for model behaviour");
            if (isIdentUse(cv, i, "random_device"))
                report("no-random-device", n,
                       "std::random_device is host entropy; cosim::Rng "
                       "(base/random.hh) is the only sanctioned "
                       "randomness source");
            if (!unordered_names.empty() && t.isIdent("for") &&
                cv.isPunct(i + 1, "(")) {
                std::size_t close = matchParen(cv, i + 1);
                if (close != std::string::npos) {
                    // Find the range-for ':' at paren depth 1, then
                    // take the last identifier of the range expression
                    // ("m.items()" -> items).
                    std::size_t colon = std::string::npos;
                    int depth = 0;
                    for (std::size_t j = i + 1; j < close; ++j) {
                        if (cv.isPunct(j, "("))
                            ++depth;
                        else if (cv.isPunct(j, ")"))
                            --depth;
                        else if (depth == 1 && cv.isPunct(j, ":")) {
                            colon = j;
                            break;
                        }
                    }
                    if (colon != std::string::npos) {
                        std::string target;
                        for (std::size_t j = colon + 1; j < close; ++j) {
                            if (cv.at(j).kind == TokKind::Ident)
                                target = cv.at(j).text;
                        }
                        if (!target.empty() &&
                            unordered_names.count(target)) {
                            report("unordered-iteration", n,
                                   "iterating '" + target +
                                       "' (std::unordered_*) has "
                                       "host-dependent order; sort or "
                                       "use an ordered container "
                                       "before results/serialization");
                        }
                    }
                }
            }
        }

        if (rules.noRawNewDelete) {
            if (t.isIdent("new"))
                report("no-raw-new", n,
                       "raw new in library code; use std::make_unique "
                       "or a container");
            if (t.isIdent("delete") &&
                !(i > 0 && cv.isPunct(i - 1, "=")))
                report("no-raw-delete", n,
                       "raw delete in library code; use "
                       "std::unique_ptr ownership");
        }

        if (rules.noPrintf) {
            for (const CallRule& r : kPrintfCalls) {
                if (isCallOf(cv, i, r.name)) {
                    report("no-printf", n,
                           std::string(r.name) +
                               "() in library code; use the "
                               "base/logging.hh macros or return "
                               "strings to the caller");
                    break;
                }
            }
        }

        if (rules.fsbDirectIssue &&
            (t.isIdent("fsb") || t.isIdent("fsb_")) &&
            cv.isPunct(i + 1, "->") && cv.is(i + 2, TokKind::Ident,
                                             "issue") &&
            cv.isPunct(i + 3, "(")) {
            report("fsb-direct-issue", n,
                   "direct FrontSideBus issue from softsdv/; record "
                   "into the slot's TxnSink and let the DEX merge "
                   "path (dex_scheduler.cc) deliver it, or sharded "
                   "execution loses bit-identity");
        }

        if (writes_plans &&
            (isIdentUse(cv, i, "ofstream") || isCallOf(cv, i, "fopen"))) {
            report("plan-atomic-write", n,
                   "raw file I/O in a sampling-plan writer; plans must "
                   "go through AtomicFile / writeFileAtomic "
                   "(base/atomic_file.hh) so a failed run never leaves "
                   "a torn cosim-plan file for --plan to consume");
        }

        if (writes_journal &&
            (isIdentUse(cv, i, "ofstream") || isCallOf(cv, i, "fopen") ||
             isIdentUse(cv, i, "AppendFile"))) {
            report("journal-atomic-append", n,
                   "raw file I/O in a sweep-journal writer; records "
                   "must go through DurableAppendFile "
                   "(base/atomic_file.hh) -- O_APPEND, one write() "
                   "per record, fdatasync -- so a crash can only "
                   "tear the final line, which --resume discards");
        }

        if (selects_intervals &&
            (isIdentUse(cv, i, "steady_clock") ||
             isIdentUse(cv, i, "system_clock") ||
             isCallOf(cv, i, "time") ||
             isCallOf(cv, i, "clock_gettime"))) {
            report("interval-wallclock", n,
                   "host clock in interval-selection code; plan "
                   "generation must be a pure function of the "
                   "sample series and the seed (time sampled "
                   "passes in core/cosim.cc instead)");
        }

        if (rules.noRawOfstream && isIdentUse(cv, i, "ofstream")) {
            report("no-raw-ofstream", n,
                   "raw std::ofstream in library code; write artifacts "
                   "through AtomicFile / writeFileAtomic "
                   "(base/atomic_file.hh) so failures never leave a "
                   "truncated file");
        }
    }

    if (rules.includeHygiene) {
        for (const Token& tok : ts.tokens) {
            if (tok.kind != TokKind::Directive)
                continue;
            IncludePath inc = parseIncludeDirective(tok.text);
            if (inc.path.empty())
                continue;
            if (inc.angled && isProjectIncludePath(inc.path)) {
                report("include-hygiene", tok.line,
                       "project header '" + inc.path +
                           "' included with <>; use \"quotes\"");
            } else if (startsWith(inc.path, "../")) {
                report("include-hygiene", tok.line,
                       "relative include '" + inc.path +
                           "'; include repo-root-relative paths");
            }
        }
    }

    if (rules.trailingWhitespace) {
        const std::vector<std::string> raw = splitLines(content);
        for (std::size_t i = 0; i < raw.size(); ++i) {
            if (raw[i].empty())
                continue;
            char last = raw[i].back();
            if (last == ' ' || last == '\t')
                report("trailing-whitespace", static_cast<int>(i) + 1,
                       "trailing whitespace");
        }
    }

    if (rules.metricName) {
        std::map<std::string, int> first_seen;
        for (const MetricRegistration& reg : metricRegistrations(cv)) {
            if (!isValidMetricName(reg.name)) {
                report("metric-name", reg.line,
                       "metric name \"" + reg.name +
                           "\" violates [a-z][a-z0-9_.]*; the metrics "
                           "registry panics on malformed names "
                           "(src/obs/metrics.hh)");
                continue;
            }
            auto ins = first_seen.emplace(reg.name, reg.line);
            if (!ins.second) {
                report("metric-name", reg.line,
                       "metric \"" + reg.name +
                           "\" registered more than once in this file "
                           "(first at line " +
                           std::to_string(ins.first->second) +
                           "); record sites must hold one static "
                           "handle");
            }
        }
    }

    if (rules.headerGuard && isHeaderPath(rel_path)) {
        const std::string want = canonicalGuard(rel_path);
        int ifndef_line = -1;
        bool have_define = false;
        std::string have;
        for (const Token& tok : ts.tokens) {
            if (tok.kind == TokKind::Comment)
                continue;
            if (tok.kind != TokKind::Directive)
                break; // first real code before any guard
            const std::string kw = directiveKeyword(tok.text);
            if (kw == "ifndef" && ifndef_line < 0) {
                std::size_t at = tok.text.find("ifndef");
                have = trim(tok.text.substr(at + 6));
                ifndef_line = tok.line;
            } else if (kw == "define" && ifndef_line >= 0) {
                have_define = true;
                break;
            }
        }
        if (ifndef_line < 0 || !have_define) {
            if (!sup.allows("header-guard", 1))
                findings.push_back(Finding{
                    rel_path, 1, "header-guard",
                    "missing include guard; expected #ifndef " + want});
        } else if (have != want) {
            report("header-guard", ifndef_line,
                   "include guard '" + have + "' should be '" + want +
                       "'");
        }
    }

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding& a, const Finding& b) {
                         return a.line < b.line;
                     });
    return findings;
}

std::vector<Finding>
lintContent(const std::string& rel_path, const std::string& content,
            const RuleSet& rules)
{
    const TokenStream ts = lex(content);
    return lintTokens(rel_path, content, ts, rules,
                      parseSuppressions(ts));
}

// ---------------------------------------------------------------------
// Mechanical fixing. Line-oriented by nature (the fixes preserve the
// file byte-for-byte outside the touched spans); comment/string spans
// are identified through the lexer so a guard-looking line inside a
// raw string is never rewritten.
// ---------------------------------------------------------------------

namespace {

/** Line-based include parse used by the fixer. */
struct IncludeLine
{
    std::string path;
    bool angled = false;
};

IncludeLine
parseIncludeLine(const std::string& line)
{
    IncludeLine inc;
    std::string t = trim(line);
    if (!startsWith(t, "#"))
        return inc;
    t = trim(t.substr(1));
    if (!startsWith(t, "include"))
        return inc;
    t = trim(t.substr(7));
    if (t.size() < 2)
        return inc;
    char open = t[0];
    char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0')
        return inc;
    std::size_t end = t.find(close, 1);
    if (end == std::string::npos)
        return inc;
    inc.path = t.substr(1, end - 1);
    inc.angled = open == '<';
    return inc;
}

} // namespace

std::string
fixContent(const std::string& rel_path, const std::string& content,
           const RuleSet& rules)
{
    std::vector<std::string> raw = splitLines(content);
    const TokenStream ts = lex(content);
    const Suppressions sup = parseSuppressions(ts);
    const bool ends_with_newline =
        !content.empty() && content.back() == '\n';

    // 1-based lines that hold a Directive token (so the include and
    // guard fixes never touch directive-looking text inside comments
    // or raw strings).
    std::set<int> directive_lines;
    for (const Token& tok : ts.tokens) {
        if (tok.kind == TokKind::Directive)
            directive_lines.insert(tok.line);
    }

    if (rules.trailingWhitespace) {
        for (std::size_t i = 0; i < raw.size(); ++i) {
            int n = static_cast<int>(i) + 1;
            if (sup.allows("trailing-whitespace", n))
                continue;
            std::size_t e = raw[i].find_last_not_of(" \t");
            if (e == std::string::npos)
                raw[i].clear();
            else if (e + 1 < raw[i].size())
                raw[i].resize(e + 1);
        }
    }

    if (rules.includeHygiene) {
        for (std::size_t i = 0; i < raw.size(); ++i) {
            int n = static_cast<int>(i) + 1;
            if (sup.allows("include-hygiene", n) ||
                directive_lines.count(n) == 0)
                continue;
            IncludeLine inc = parseIncludeLine(raw[i]);
            if (inc.path.empty() || !inc.angled ||
                !isProjectIncludePath(inc.path))
                continue;
            std::size_t open = raw[i].find('<');
            std::size_t close = raw[i].find('>', open);
            if (open == std::string::npos || close == std::string::npos)
                continue;
            raw[i] = raw[i].substr(0, open) + "\"" + inc.path + "\"" +
                     raw[i].substr(close + 1);
        }
    }

    if (rules.headerGuard && isHeaderPath(rel_path) &&
        !sup.allows("header-guard", 1)) {
        const std::string want = canonicalGuard(rel_path);
        int ifndef_line = -1, define_line = -1, endif_line = -1;
        std::string have;
        for (const Token& tok : ts.tokens) {
            if (tok.kind == TokKind::Comment)
                continue;
            if (tok.kind != TokKind::Directive)
                break;
            const std::string kw = directiveKeyword(tok.text);
            if (kw == "ifndef" && ifndef_line < 0) {
                std::size_t at = tok.text.find("ifndef");
                have = trim(tok.text.substr(at + 6));
                ifndef_line = tok.line;
            } else if (kw == "define" && ifndef_line >= 0) {
                define_line = tok.line;
                break;
            }
        }
        // The matching #endif is the last directive in the file.
        for (const Token& tok : ts.tokens) {
            if (tok.kind == TokKind::Directive &&
                directiveKeyword(tok.text) == "endif")
                endif_line = tok.line;
        }
        if (ifndef_line > 0 && define_line > 0 && have != want &&
            !sup.allows("header-guard", ifndef_line)) {
            raw[static_cast<std::size_t>(ifndef_line) - 1] =
                "#ifndef " + want;
            raw[static_cast<std::size_t>(define_line) - 1] =
                "#define " + want;
            if (endif_line > 0)
                raw[static_cast<std::size_t>(endif_line) - 1] =
                    "#endif // " + want;
        }
    }

    std::string out;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        out += raw[i];
        if (i + 1 < raw.size() || ends_with_newline)
            out += '\n';
    }
    return out;
}

} // namespace cosim_analyze
