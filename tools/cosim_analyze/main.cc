/**
 * @file
 * cosim_analyze -- cross-TU static analysis for the cosim tree.
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "tools/cosim_analyze/analyzer.hh"
#include "tools/cosim_analyze/rules.hh"

namespace {

void
usage()
{
    std::printf(
        "usage: cosim_analyze [options]\n"
        "\n"
        "  --check-all          analyze src/ tools/ tests/ bench/ "
        "examples/\n"
        "  --root=DIR           tree root (default: .)\n"
        "  --fix                apply mechanical fixes "
        "(header-guard,\n"
        "                       include-hygiene, "
        "trailing-whitespace)\n"
        "  --cache=FILE         incremental per-file fact cache "
        "(content-\n"
        "                       hash keyed; safe to delete any "
        "time)\n"
        "  --sarif=FILE         write findings as SARIF 2.1.0\n"
        "  --baseline=FILE      filter findings whose fingerprint "
        "is listed\n"
        "  --write-baseline     rewrite --baseline from current "
        "findings\n"
        "  --write-registries   regenerate tools/registries/*.txt "
        "from code\n"
        "  --list-rules         print every rule with its "
        "description\n");
}

bool
flagValue(const char* arg, const char* name, std::string* out)
{
    std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        *out = arg + n + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cosim_analyze;

    AnalyzeOptions opts;
    bool check_all = false;
    bool list_rules = false;
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--check-all") == 0)
            check_all = true;
        else if (std::strcmp(a, "--fix") == 0)
            opts.fix = true;
        else if (std::strcmp(a, "--write-baseline") == 0)
            opts.writeBaseline = true;
        else if (std::strcmp(a, "--write-registries") == 0)
            opts.writeRegistries = true;
        else if (std::strcmp(a, "--list-rules") == 0)
            list_rules = true;
        else if (flagValue(a, "--root", &opts.root) ||
                 flagValue(a, "--cache", &opts.cachePath) ||
                 flagValue(a, "--sarif", &opts.sarifPath) ||
                 flagValue(a, "--baseline", &opts.baselinePath)) {
            // handled
        } else {
            std::fprintf(stderr, "cosim_analyze: unknown argument "
                                 "'%s'\n", a);
            usage();
            return 2;
        }
    }

    if (list_rules) {
        for (const std::string& r : allRules())
            std::printf("%-24s %s\n", r.c_str(),
                        ruleDescription(r).c_str());
        return 0;
    }
    if (!check_all && !opts.fix && !opts.writeRegistries &&
        !opts.writeBaseline) {
        usage();
        return 2;
    }

    const AnalyzeResult res = analyzeTree(opts);
    for (const std::string& e : res.errors)
        std::fprintf(stderr, "cosim_analyze: %s\n", e.c_str());
    for (const FingerprintedFinding& f : res.findings)
        std::printf("%s\n", f.finding.format().c_str());
    std::fprintf(stderr,
                 "cosim_analyze: %d files, %d cache hits, %zu "
                 "findings (%zu baselined)\n",
                 res.filesScanned, res.cacheHits,
                 res.findings.size(), res.baselined.size());
    if (res.ioError)
        return 2;
    return res.findings.empty() ? 0 : 1;
}
