/**
 * @file
 * A real C++ token lexer for cosim_analyze.
 *
 * Replaces the line-regex core the old cosim_lint used: rules and the
 * cross-TU passes operate on a token stream in which comments, string
 * literals (including raw strings), character literals, numbers, and
 * preprocessor directives are first-class token kinds. Text inside a
 * string or a comment can therefore never look like code to a rule,
 * and rules that *want* literal contents (metric names, schema
 * strings) read them from String tokens instead of re-parsing lines.
 *
 * The lexer is deliberately not a preprocessor: macros are not
 * expanded, and a directive is captured as one Directive token holding
 * the whole logical line (backslash continuations folded in). That is
 * exactly the right granularity for include extraction and header
 * guard checking, and it keeps the lexer a pure function of the file
 * contents.
 *
 * Multi-character punctuation: only "::" and "->" are fused, because
 * rules key on them (qualified names, member dereference). "<<"/">>"
 * are two tokens each so template-argument scanning can count '<'/'>'
 * without shift-operator special cases.
 */

#ifndef COSIM_TOOLS_COSIM_ANALYZE_LEXER_HH
#define COSIM_TOOLS_COSIM_ANALYZE_LEXER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace cosim_analyze {

enum class TokKind {
    Ident,     ///< identifiers and keywords (no keyword table needed)
    Number,    ///< numeric literal, pp-number granularity
    String,    ///< string literal; text holds the *contents*
    CharLit,   ///< character literal; text holds the contents
    Punct,     ///< punctuation; "::" and "->" fused, rest single char
    Comment,   ///< // or block comment; text holds the full comment
    Directive, ///< whole preprocessor logical line, '#' included
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 1;          ///< 1-based line the token starts on
    bool rawString = false; ///< String came from an R"(...)"

    bool
    is(TokKind k, const char* t) const
    {
        return kind == k && text == t;
    }

    bool isIdent(const char* t) const { return is(TokKind::Ident, t); }
    bool isPunct(const char* t) const { return is(TokKind::Punct, t); }
};

/**
 * The lexed file. `tokens` holds everything, in order, comments
 * included; `code` holds indexes into `tokens` of the non-comment,
 * non-directive tokens, which is the view almost every rule walks.
 */
struct TokenStream
{
    std::vector<Token> tokens;
    std::vector<std::size_t> code; ///< indexes of code tokens

    const Token&
    codeTok(std::size_t i) const
    {
        return tokens[code[i]];
    }

    std::size_t codeSize() const { return code.size(); }
};

/** Lex @p content. Total function: malformed input (unterminated
 * literal or comment) yields a best-effort tail token, never a
 * failure, so the analyzer can still report on broken files. */
TokenStream lex(const std::string& content);

/** Directive keyword of a Directive token's text: "#  include <x>"
 * -> "include". Empty when the '#' stands alone. */
std::string directiveKeyword(const std::string& directive_text);

/** Parsed #include path, empty when @p directive_text is not an
 * include. */
struct IncludePath
{
    std::string path;
    bool angled = false;
};
IncludePath parseIncludeDirective(const std::string& directive_text);

} // namespace cosim_analyze

#endif // COSIM_TOOLS_COSIM_ANALYZE_LEXER_HH
