#include "tools/cosim_analyze/analyzer.hh"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "tools/cosim_analyze/include_graph.hh"
#include "tools/cosim_analyze/lock_order.hh"
#include "tools/cosim_analyze/registry.hh"
#include "tools/cosim_analyze/rules.hh"

namespace fs = std::filesystem;

namespace cosim_analyze {

namespace {

// Bump when the FileFacts serialization or any per-file rule changes
// meaning: stale cache entries then miss instead of lying.
const char* kCacheHeader = "cosim-analyze-cache/3";
const char* kEntrySep = "%%";

std::string
trim(const std::string& s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitLines(const std::string& content)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= content.size()) {
        std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos) {
            if (start < content.size())
                lines.push_back(content.substr(start));
            break;
        }
        lines.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::vector<std::string>
splitTabs(const std::string& line)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
readFile(const fs::path& p, std::string* out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
writeFile(const fs::path& p, const std::string& content)
{
    std::error_code ec;
    fs::create_directories(p.parent_path(), ec);
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

std::string
lockRefFields(const LockRef& r)
{
    return r.cls + "\t" + r.member + "\t" + r.raw;
}

/** LockRef from fields f[at], f[at+1], f[at+2]; caller checks size. */
LockRef
lockRefFrom(const std::vector<std::string>& f, std::size_t at)
{
    LockRef r;
    r.cls = f[at];
    r.member = f[at + 1];
    r.raw = f[at + 2];
    return r;
}

} // namespace

std::string
contentHash(const std::string& content)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (char c : content) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    static const char* hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = hex[h & 0xf];
        h >>= 4;
    }
    return out;
}

FileFacts
extractFileFacts(const std::string& rel_path,
                 const std::string& content)
{
    FileFacts ff;
    ff.path = rel_path;
    const TokenStream ts = lex(content);
    ff.suppressions = parseSuppressions(ts);
    ff.findings = lintTokens(rel_path, content, ts,
                             ruleSetFor(rel_path), ff.suppressions);
    for (const Token& tok : ts.tokens) {
        if (tok.kind != TokKind::Directive)
            continue;
        IncludePath inc = parseIncludeDirective(tok.text);
        if (!inc.path.empty())
            ff.includes.push_back(
                IncludeFact{tok.line, inc.path, inc.angled});
    }
    extractIdentDecls(rel_path, ts, &ff);
    extractLockFacts(ts, &ff);
    return ff;
}

std::string
serializeFileFacts(const FileFacts& ff,
                   const std::string& content_hash)
{
    std::string out;
    out += "E\t" + content_hash + "\t" + ff.path + "\n";
    for (const Finding& f : ff.findings)
        out += "f\t" + std::to_string(f.line) + "\t" + f.rule + "\t" +
               f.message + "\n";
    for (const std::string& r : ff.suppressions.fileWide)
        out += "sw\t" + r + "\n";
    for (const auto& [rule, line] : ff.suppressions.lines)
        out += "sl\t" + rule + "\t" + std::to_string(line) + "\n";
    for (const IncludeFact& i : ff.includes)
        out += "i\t" + std::to_string(i.line) + "\t" +
               (i.angled ? std::string("1") : std::string("0")) +
               "\t" + i.path + "\n";
    for (const IdentDecl& d : ff.idents)
        out += "d\t" + std::to_string(static_cast<int>(d.kind)) +
               "\t" + std::to_string(d.line) + "\t" + d.name + "\n";
    for (const MutexDecl& m : ff.mutexes)
        out += "m\t" + std::to_string(m.line) + "\t" + m.cls + "\t" +
               m.member + "\n";
    for (const FuncLockFacts& fn : ff.funcs) {
        out += "F\t" + std::to_string(fn.line) + "\t" + fn.qname +
               "\n";
        for (const LockRef& r : fn.requiresLocks)
            out += "R\t" + lockRefFields(r) + "\n";
        for (const LockRef& r : fn.acquireLocks)
            out += "A\t" + lockRefFields(r) + "\n";
        for (const auto& [r, line] : fn.acquires)
            out += "Q\t" + std::to_string(line) + "\t" +
                   lockRefFields(r) + "\n";
        for (const LockEdge& e : fn.edges)
            out += "G\t" + std::to_string(e.line) + "\t" +
                   lockRefFields(e.from) + "\t" +
                   lockRefFields(e.to) + "\n";
        for (const LockCall& c : fn.calls) {
            out += "C\t" + std::to_string(c.line) + "\t" + c.callee;
            for (const LockRef& h : c.held)
                out += "\t" + lockRefFields(h);
            out += "\n";
        }
    }
    return out;
}

bool
deserializeFileFacts(const std::string& blob,
                     const std::string& expect_hash, FileFacts* out)
{
    FileFacts ff;
    FuncLockFacts* fn = nullptr;
    bool sawHeader = false;
    for (const std::string& line : splitLines(blob)) {
        if (line.empty())
            continue;
        const std::vector<std::string> f = splitTabs(line);
        const std::string& k = f[0];
        if (k == "E") {
            if (f.size() != 3 || f[1] != expect_hash)
                return false;
            ff.path = f[2];
            sawHeader = true;
        } else if (k == "f" && f.size() >= 4) {
            // Message is everything after the third tab (it may
            // legitimately contain no tabs, but be safe).
            std::string msg = f[3];
            for (std::size_t j = 4; j < f.size(); ++j)
                msg += "\t" + f[j];
            ff.findings.push_back(
                Finding{ff.path, std::stoi(f[1]), f[2], msg});
        } else if (k == "sw" && f.size() == 2) {
            ff.suppressions.fileWide.insert(f[1]);
        } else if (k == "sl" && f.size() == 3) {
            ff.suppressions.lines.insert({f[1], std::stoi(f[2])});
        } else if (k == "i" && f.size() == 4) {
            ff.includes.push_back(
                IncludeFact{std::stoi(f[1]), f[3], f[2] == "1"});
        } else if (k == "d" && f.size() == 4) {
            ff.idents.push_back(
                IdentDecl{static_cast<IdentDecl::Kind>(std::stoi(f[1])),
                          std::stoi(f[2]), f[3]});
        } else if (k == "m" && f.size() == 4) {
            ff.mutexes.push_back(
                MutexDecl{f[2], f[3], std::stoi(f[1])});
        } else if (k == "F" && f.size() == 3) {
            ff.funcs.push_back(FuncLockFacts{});
            fn = &ff.funcs.back();
            fn->line = std::stoi(f[1]);
            fn->qname = f[2];
        } else if (k == "R" && f.size() == 4 && fn) {
            fn->requiresLocks.push_back(lockRefFrom(f, 1));
        } else if (k == "A" && f.size() == 4 && fn) {
            fn->acquireLocks.push_back(lockRefFrom(f, 1));
        } else if (k == "Q" && f.size() == 5 && fn) {
            fn->acquires.push_back(
                {lockRefFrom(f, 2), std::stoi(f[1])});
        } else if (k == "G" && f.size() == 8 && fn) {
            fn->edges.push_back(LockEdge{lockRefFrom(f, 2),
                                         lockRefFrom(f, 5),
                                         std::stoi(f[1])});
        } else if (k == "C" && f.size() >= 3 && fn) {
            LockCall c;
            c.line = std::stoi(f[1]);
            c.callee = f[2];
            for (std::size_t j = 3; j + 3 <= f.size(); j += 3)
                c.held.push_back(lockRefFrom(f, j));
            fn->calls.push_back(std::move(c));
        } else {
            return false; // unknown or malformed row
        }
    }
    if (!sawHeader)
        return false;
    *out = std::move(ff);
    return true;
}

std::vector<AllowEntry>
parseAllowFile(const std::string& rel_path, const std::string& content,
               std::vector<Finding>* findings)
{
    std::vector<AllowEntry> out;
    const std::vector<std::string> lines = splitLines(content);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const int n = static_cast<int>(i) + 1;
        const std::string l = trim(lines[i]);
        if (l.empty() || l[0] == '#')
            continue;
        auto bad = [&](const std::string& why) {
            findings->push_back(Finding{
                rel_path, n, "allowlist-hygiene",
                why + "; expected '<pass> <from> -> <to>: "
                      "<justification>' with pass in {layering, "
                      "lock-order}"});
        };
        std::size_t sp = l.find(' ');
        std::size_t arrow = l.find(" -> ");
        // The separator is the first ':' after the arrow that is not
        // part of a "::" scope operator -- lock-order endpoints are
        // spelled Class::member.
        std::size_t colon = std::string::npos;
        if (arrow != std::string::npos) {
            for (std::size_t p = arrow + 4;
                 (p = l.find(':', p)) != std::string::npos;) {
                if (p + 1 < l.size() && l[p + 1] == ':') {
                    p += 2;
                    continue;
                }
                colon = p;
                break;
            }
        }
        if (sp == std::string::npos || arrow == std::string::npos ||
            colon == std::string::npos || sp > arrow) {
            bad("malformed allowlist entry");
            continue;
        }
        AllowEntry e;
        e.line = n;
        e.pass = l.substr(0, sp);
        e.from = trim(l.substr(sp + 1, arrow - sp - 1));
        e.to = trim(l.substr(arrow + 4, colon - arrow - 4));
        e.justification = trim(l.substr(colon + 1));
        if (e.pass != "layering" && e.pass != "lock-order") {
            bad("unknown pass '" + e.pass + "'");
            continue;
        }
        if (e.from.empty() || e.to.empty()) {
            bad("empty endpoint");
            continue;
        }
        if (e.justification.empty()) {
            bad("allowlist entry without a justification");
            continue;
        }
        out.push_back(std::move(e));
    }
    return out;
}

namespace {

/** Deterministic list of analyzable sources under @p root. */
std::vector<std::string>
collectSources(const fs::path& root)
{
    static const char* kDirs[] = {"src", "tools", "tests", "bench",
                                  "examples"};
    static const char* kExts[] = {".cc", ".hh", ".cpp", ".hpp"};
    std::vector<std::string> out;
    for (const char* dir : kDirs) {
        const fs::path base = root / dir;
        std::error_code ec;
        if (!fs::is_directory(base, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(base, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (!it->is_regular_file(ec))
                continue;
            const std::string rel =
                fs::relative(it->path(), root, ec).generic_string();
            // Seeded-violation fixture trees are analyzed with
            // --root pointed at the fixture, never as part of the
            // repo run.
            if (rel.find("analyze_fixtures/") != std::string::npos)
                continue;
            const std::string ext = it->path().extension().string();
            for (const char* e : kExts) {
                if (ext == e) {
                    out.push_back(rel);
                    break;
                }
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

/** The incremental cache: entry blobs keyed by "hash path". */
std::map<std::string, std::string>
loadCache(const fs::path& path)
{
    std::map<std::string, std::string> cache;
    std::string content;
    if (!readFile(path, &content))
        return cache;
    const std::vector<std::string> lines = splitLines(content);
    if (lines.empty() || lines[0] != kCacheHeader)
        return cache;
    std::string blob, key;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        if (lines[i] == kEntrySep) {
            if (!key.empty())
                cache[key] = blob;
            blob.clear();
            key.clear();
            continue;
        }
        if (blob.empty() && lines[i].size() > 2 &&
            lines[i][0] == 'E') {
            const std::vector<std::string> f = splitTabs(lines[i]);
            if (f.size() == 3)
                key = f[1] + " " + f[2];
        }
        blob += lines[i] + "\n";
    }
    if (!key.empty())
        cache[key] = blob;
    return cache;
}

} // namespace

AnalyzeResult
analyzeTree(const AnalyzeOptions& opts)
{
    AnalyzeResult res;
    const fs::path root = opts.root;
    auto resolve = [&](const std::string& p) {
        return fs::path(p).is_absolute() ? fs::path(p) : root / p;
    };

    std::map<std::string, std::string> cache;
    if (!opts.cachePath.empty())
        cache = loadCache(resolve(opts.cachePath));
    std::map<std::string, std::string> new_cache;

    // ---- Stage one: per-file facts (cached). ----
    std::vector<FileFacts> files;
    std::map<std::string, std::string> contents;
    for (const std::string& rel : collectSources(root)) {
        std::string content;
        if (!readFile(root / rel, &content)) {
            res.errors.push_back("cannot read " + rel);
            res.ioError = true;
            continue;
        }
        if (opts.fix) {
            const std::string fixed =
                fixContent(rel, content, ruleSetFor(rel));
            if (fixed != content) {
                if (!writeFile(root / rel, fixed)) {
                    res.errors.push_back("cannot write " + rel);
                    res.ioError = true;
                } else {
                    content = fixed;
                }
            }
        }
        ++res.filesScanned;
        const std::string hash = contentHash(content);
        const std::string key = hash + " " + rel;
        FileFacts ff;
        auto hit = cache.find(key);
        if (hit != cache.end() &&
            deserializeFileFacts(hit->second, hash, &ff) &&
            ff.path == rel) {
            ++res.cacheHits;
        } else {
            ff = extractFileFacts(rel, content);
        }
        new_cache[key] = serializeFileFacts(ff, hash);
        contents[rel] = std::move(content);
        files.push_back(std::move(ff));
    }

    // ---- Allowlist. ----
    std::vector<Finding> findings;
    const std::string allow_rel = "tools/cosim_analyze/analysis.allow";
    std::vector<AllowEntry> allows;
    {
        std::string content;
        if (readFile(root / allow_rel, &content)) {
            allows = parseAllowFile(allow_rel, content, &findings);
            contents[allow_rel] = std::move(content);
        }
    }
    std::vector<bool> used_allows(allows.size(), false);

    // ---- Per-file findings. ----
    for (const FileFacts& ff : files)
        findings.insert(findings.end(), ff.findings.begin(),
                        ff.findings.end());

    // ---- Project passes. ----
    {
        std::vector<Finding> f =
            checkIncludeGraph(files, allows, &used_allows);
        findings.insert(findings.end(), f.begin(), f.end());
    }
    {
        std::vector<Finding> f =
            checkLockOrder(files, allows, &used_allows);
        findings.insert(findings.end(), f.begin(), f.end());
    }
    {
        Registries regs;
        struct
        {
            RegistryFile* reg;
            const char* rel;
            const char* title;
            IdentDecl::Kind kind;
        } tables[] = {
            {&regs.faultSites, "tools/registries/fault_sites.txt",
             "Fault-injection sites (COSIM_FAULT_POINT/faultPending)",
             IdentDecl::FaultSite},
            {&regs.metrics, "tools/registries/metrics.txt",
             "obs::metrics counter/histogram names",
             IdentDecl::Metric},
            {&regs.statsKeys, "tools/registries/stats_keys.txt",
             "stats::Group keys", IdentDecl::StatKey},
            {&regs.schemas, "tools/registries/schemas.txt",
             "Artifact schema strings", IdentDecl::Schema},
        };
        if (opts.writeRegistries) {
            for (auto& t : tables) {
                std::vector<std::string> names;
                for (const FileFacts& ff : files) {
                    for (const IdentDecl& d : ff.idents) {
                        if (d.kind == t.kind)
                            names.push_back(d.name);
                    }
                }
                const std::string body =
                    formatRegistry(t.title, names);
                if (!writeFile(root / t.rel, body)) {
                    res.errors.push_back(std::string("cannot write ") +
                                         t.rel);
                    res.ioError = true;
                }
            }
        }
        for (auto& t : tables) {
            std::string content;
            if (readFile(root / t.rel, &content)) {
                *t.reg = parseRegistry(t.rel, content);
                contents[t.rel] = std::move(content);
            } else {
                t.reg->path = t.rel;
            }
        }
        std::vector<Finding> f = checkRegistries(files, regs);
        findings.insert(findings.end(), f.begin(), f.end());
    }
    for (std::size_t i = 0; i < allows.size(); ++i) {
        if (!used_allows[i])
            findings.push_back(Finding{
                allow_rel, allows[i].line, "allowlist-hygiene",
                "allowlist entry '" + allows[i].pass + " " +
                    allows[i].from + " -> " + allows[i].to +
                    "' no longer matches any finding; remove it"});
    }

    // ---- Fingerprints and baseline. ----
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    std::map<std::string, int> occurrence;
    std::vector<FingerprintedFinding> all;
    for (const Finding& f : findings) {
        std::string line_text;
        auto it = contents.find(f.file);
        if (it != contents.end()) {
            const std::vector<std::string> lines =
                splitLines(it->second);
            if (f.line >= 1 &&
                static_cast<std::size_t>(f.line) <= lines.size())
                line_text =
                    lines[static_cast<std::size_t>(f.line) - 1];
        }
        const std::string bucket =
            f.file + "|" + f.rule + "|" + trim(line_text);
        const int occ = occurrence[bucket]++;
        all.push_back(FingerprintedFinding{
            f, fingerprintOf(f, line_text, occ)});
    }

    std::set<std::string> baseline;
    if (!opts.baselinePath.empty()) {
        std::string content;
        if (readFile(resolve(opts.baselinePath), &content))
            baseline = parseBaseline(content);
    }
    for (FingerprintedFinding& ff : all) {
        if (baseline.count(ff.fingerprint))
            res.baselined.push_back(std::move(ff));
        else
            res.findings.push_back(std::move(ff));
    }

    if (opts.writeBaseline && !opts.baselinePath.empty()) {
        std::vector<FingerprintedFinding> everything = res.findings;
        everything.insert(everything.end(), res.baselined.begin(),
                          res.baselined.end());
        if (!writeFile(resolve(opts.baselinePath),
                       formatBaseline(everything))) {
            res.errors.push_back("cannot write baseline " +
                                 opts.baselinePath);
            res.ioError = true;
        }
    }

    if (!opts.sarifPath.empty()) {
        if (!writeFile(resolve(opts.sarifPath),
                       toSarif(res.findings))) {
            res.errors.push_back("cannot write SARIF " +
                                 opts.sarifPath);
            res.ioError = true;
        }
    }

    if (!opts.cachePath.empty()) {
        std::string blob = std::string(kCacheHeader) + "\n";
        for (const auto& [key, entry] : new_cache) {
            blob += entry;
            blob += kEntrySep;
            blob += "\n";
        }
        if (!writeFile(resolve(opts.cachePath), blob)) {
            res.errors.push_back("cannot write cache " +
                                 opts.cachePath);
            res.ioError = true;
        }
    }

    return res;
}

} // namespace cosim_analyze
