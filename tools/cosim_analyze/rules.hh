/**
 * @file
 * Per-file rules of cosim_analyze, evaluated over the token stream
 * from lexer.hh, plus the rule table shared with the project passes.
 *
 * The per-file rules are the old cosim_lint rule set ported onto the
 * lexer (see DESIGN.md "Cross-TU static analysis" for the full table
 * and rationale): determinism rules in simulation directories, library
 * hygiene in src/, FSB delivery discipline in softsdv/, sampled-plan
 * purity in trace/, and the mechanical rules everywhere. Because the
 * rules walk tokens, text inside comments and string literals can
 * never trigger them -- a log message mentioning `rand(` is just a
 * String token.
 *
 * The project passes (include_graph.hh, lock_order.hh, registry.hh)
 * contribute the cross-TU rules; allRules()/ruleDescription() cover
 * both kinds so `--list-rules` is the complete self-description.
 */

#ifndef COSIM_TOOLS_COSIM_ANALYZE_RULES_HH
#define COSIM_TOOLS_COSIM_ANALYZE_RULES_HH

#include <string>
#include <vector>

#include "tools/cosim_analyze/facts.hh"
#include "tools/cosim_analyze/lexer.hh"

namespace cosim_analyze {

/** Every rule name (per-file and project passes), in stable order. */
std::vector<std::string> allRules();

/** One-line description of @p rule; empty for unknown rules. */
std::string ruleDescription(const std::string& rule);

/**
 * Rule set for a repo-relative path ("src/cache/cache.cc",
 * "tests/test_base.cc"). Simulation directories get the determinism
 * group; all of src/ except the CLI-facing harness gets the library
 * rules; tests/bench/examples/tools only the mechanical hygiene.
 */
RuleSet ruleSetFor(const std::string& rel_path);

/** Canonical include guard for a header path: "src/obs/json.hh" ->
 * "COSIM_OBS_JSON_HH" (the leading "src/" is dropped, other top-level
 * directories keep their name). */
std::string canonicalGuard(const std::string& rel_path);

/** Suppressions from the stream's comment tokens. */
Suppressions parseSuppressions(const TokenStream& ts);

/** Per-file findings for @p ts lexed from (@p rel_path, @p content)
 * under @p rules, with @p sup already applied. @p content is needed
 * for the trailing-whitespace rule only. */
std::vector<Finding> lintTokens(const std::string& rel_path,
                                const std::string& content,
                                const TokenStream& ts,
                                const RuleSet& rules,
                                const Suppressions& sup);

/** Convenience: lex + suppressions + lintTokens. */
std::vector<Finding> lintContent(const std::string& rel_path,
                                 const std::string& content,
                                 const RuleSet& rules);

/**
 * Apply the mechanical fixes (header-guard, include-hygiene,
 * trailing-whitespace) and return the rewritten content; non-fixable
 * rules are untouched. fix(fix(x)) == fix(x).
 */
std::string fixContent(const std::string& rel_path,
                       const std::string& content, const RuleSet& rules);

} // namespace cosim_analyze

#endif // COSIM_TOOLS_COSIM_ANALYZE_RULES_HH
