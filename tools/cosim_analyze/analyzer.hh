/**
 * @file
 * The cosim_analyze driver: per-file fact extraction (stage one, with
 * the content-hash incremental cache), the project passes (stage
 * two), the justification-carrying allowlist, and the fingerprint
 * baseline.
 *
 * Stage one is a pure function of one file's bytes, so its result is
 * cached keyed on (content hash, cache format version): a warm run
 * over an unchanged tree lexes nothing. Stage two always re-runs --
 * the cross-TU passes are cheap once the facts exist, and caching
 * them would make the cache key the whole tree.
 */

#ifndef COSIM_TOOLS_COSIM_ANALYZE_ANALYZER_HH
#define COSIM_TOOLS_COSIM_ANALYZE_ANALYZER_HH

#include <string>
#include <vector>

#include "tools/cosim_analyze/facts.hh"
#include "tools/cosim_analyze/sarif.hh"

namespace cosim_analyze {

/** Stage one for one file: lex once, run the per-file rules, extract
 * the facts the project passes need. Pure. */
FileFacts extractFileFacts(const std::string& rel_path,
                           const std::string& content);

/** Serialize stage-one facts for the incremental cache. */
std::string serializeFileFacts(const FileFacts& ff,
                               const std::string& content_hash);

/** Parse one cached entry; returns false on any mismatch (treat as a
 * cache miss -- the format carries a version stamp). */
bool deserializeFileFacts(const std::string& blob,
                          const std::string& expect_hash,
                          FileFacts* out);

/** FNV-1a content hash as 16 hex digits. */
std::string contentHash(const std::string& content);

/** Parse tools/cosim_analyze/analysis.allow. Lines look like
 *   layering core -> trace: replay drivers feed the core loop
 *   lock-order A::m_ -> B::m_: B is only reached from A's shard
 * Malformed or justification-less lines produce allowlist-hygiene
 * findings (appended to @p findings). */
std::vector<AllowEntry> parseAllowFile(const std::string& rel_path,
                                       const std::string& content,
                                       std::vector<Finding>* findings);

struct AnalyzeOptions
{
    std::string root = ".";
    bool fix = false;              ///< apply mechanical fixes first
    std::string cachePath;         ///< "" disables the cache
    std::string baselinePath;      ///< "" disables the baseline
    std::string sarifPath;         ///< "" disables SARIF output
    bool writeRegistries = false;  ///< regenerate tools/registries/
    bool writeBaseline = false;    ///< rewrite the baseline file
};

struct AnalyzeResult
{
    std::vector<FingerprintedFinding> findings;  ///< to report
    std::vector<FingerprintedFinding> baselined; ///< known, filtered
    int filesScanned = 0;
    int cacheHits = 0;
    bool ioError = false;
    std::vector<std::string> errors;
};

/** Run the whole analysis over the tree at opts.root. */
AnalyzeResult analyzeTree(const AnalyzeOptions& opts);

} // namespace cosim_analyze

#endif // COSIM_TOOLS_COSIM_ANALYZE_ANALYZER_HH
