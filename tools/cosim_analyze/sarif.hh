/**
 * @file
 * SARIF 2.1.0 rendering and the finding-fingerprint baseline.
 *
 * Fingerprints are stable across unrelated edits: FNV-1a over
 * (file | rule | trimmed text of the flagged line | occurrence index
 * among identical tuples), so renumbering lines does not churn the
 * baseline but changing the flagged code does. The same fingerprint
 * feeds SARIF `partialFingerprints` (for code-scanning dedup) and the
 * plain-text baseline file consumed by `--baseline`.
 */

#ifndef COSIM_TOOLS_COSIM_ANALYZE_SARIF_HH
#define COSIM_TOOLS_COSIM_ANALYZE_SARIF_HH

#include <set>
#include <string>
#include <vector>

#include "tools/cosim_analyze/facts.hh"

namespace cosim_analyze {

/** A finding paired with its stable fingerprint. */
struct FingerprintedFinding
{
    Finding finding;
    std::string fingerprint; ///< 16 hex digits
};

/** FNV-1a fingerprint; @p line_text is the raw source line the
 * finding anchors to and @p occurrence disambiguates identical
 * (file, rule, line-text) tuples. */
std::string fingerprintOf(const Finding& f,
                          const std::string& line_text,
                          int occurrence);

/** Render a complete SARIF 2.1.0 document (one run, one result per
 * finding, a rule table covering every known rule). */
std::string toSarif(const std::vector<FingerprintedFinding>& findings);

/** Parse a baseline file: one fingerprint per line, '#' comments. */
std::set<std::string> parseBaseline(const std::string& content);

/** Render a baseline file for --write-baseline. */
std::string formatBaseline(
    const std::vector<FingerprintedFinding>& findings);

} // namespace cosim_analyze

#endif // COSIM_TOOLS_COSIM_ANALYZE_SARIF_HH
