/**
 * @file
 * Lock-order analyzer (project pass).
 *
 * Stage one (`extractLockFacts`) walks one file's token stream and
 * harvests: every `Mutex` member declaration with its enclosing class,
 * and a per-function summary -- locks named in `REQUIRES()` /
 * `ACQUIRE()` annotations, every `LockGuard` site with the locks
 * already held there (tracked through brace scopes), and every call
 * made while holding a lock.
 *
 * Stage two (`checkLockOrder`) resolves each lock reference to a
 * global identity ("StatsRegistry::mutex_"), using class context
 * first, then uniqueness of the member name across every declaring
 * class, falling back to a file-local identity so unrelated locks
 * never alias. Function summaries are merged across TUs by qualified
 * name (header declarations carry the annotations, .cc files the
 * bodies), transitive acquisition closes over the call graph, and the
 * resulting global acquisition-order graph must be acyclic: any cycle
 * -- including a self-edge, i.e. re-acquiring a held non-recursive
 * mutex -- is a potential static deadlock, reported as
 * `lock-order-cycle` unless `analysis.allow` carries a justified
 * `lock-order a -> b` entry for one of its edges.
 */

#ifndef COSIM_TOOLS_COSIM_ANALYZE_LOCK_ORDER_HH
#define COSIM_TOOLS_COSIM_ANALYZE_LOCK_ORDER_HH

#include <vector>

#include "tools/cosim_analyze/facts.hh"
#include "tools/cosim_analyze/lexer.hh"

namespace cosim_analyze {

/** Harvest mutex declarations and function lock summaries from @p ts
 * into @p out (appends to out->mutexes / out->funcs). */
void extractLockFacts(const TokenStream& ts, FileFacts* out);

/** Run the cross-TU lock-order pass. Consumed @p allows entries are
 * marked in @p used_allows (same size). */
std::vector<Finding> checkLockOrder(
    const std::vector<FileFacts>& files,
    const std::vector<AllowEntry>& allows,
    std::vector<bool>* used_allows);

} // namespace cosim_analyze

#endif // COSIM_TOOLS_COSIM_ANALYZE_LOCK_ORDER_HH
