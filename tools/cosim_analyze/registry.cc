#include "tools/cosim_analyze/registry.hh"

#include <algorithm>
#include <map>

namespace cosim_analyze {

namespace {

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
validName(const std::string& name, bool allow_dot)
{
    if (name.empty() || name[0] < 'a' || name[0] > 'z')
        return false;
    for (char c : name) {
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_' || (allow_dot && c == '.')))
            return false;
    }
    return true;
}

/** Every "cosim-<kind>/<version>" substring of @p text. */
std::vector<std::string>
schemaStrings(const std::string& text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = text.find("cosim-", pos)) != std::string::npos) {
        std::size_t i = pos + 6;
        while (i < text.size() &&
               ((text[i] >= 'a' && text[i] <= 'z') || text[i] == '-'))
            ++i;
        if (i < text.size() && text[i] == '/' && i > pos + 6) {
            std::size_t v = i + 1;
            while (v < text.size() && text[v] >= '0' && text[v] <= '9')
                ++v;
            if (v > i + 1) {
                out.push_back(text.substr(pos, v - pos));
                pos = v;
                continue;
            }
        }
        pos = pos + 6;
    }
    return out;
}

struct DeclSite
{
    const FileFacts* file;
    const IdentDecl* decl;
};

void
checkClass(const std::vector<DeclSite>& sites, const RegistryFile& reg,
           const char* unregistered_rule, const char* charset_rule,
           const char* duplicate_rule, bool allow_dot,
           std::vector<Finding>* findings,
           std::map<std::string, bool>* seen_names)
{
    std::map<std::string, const DeclSite*> first;
    for (const DeclSite& s : sites) {
        const std::string& name = s.decl->name;
        (*seen_names)[name] = true;
        auto report = [&](const char* rule, const std::string& msg) {
            if (!s.file->suppressions.allows(rule, s.decl->line))
                findings->push_back(Finding{s.file->path,
                                            s.decl->line, rule, msg});
        };
        if (charset_rule && !validName(name, allow_dot)) {
            report(charset_rule,
                   "\"" + name + "\" violates [a-z][a-z0-9_" +
                       (allow_dot ? "." : "") + "]*");
            continue;
        }
        if (reg.entries.find(name) == reg.entries.end())
            report(unregistered_rule,
                   "\"" + name + "\" is not declared in " + reg.path +
                       "; add it there (or run cosim_analyze "
                       "--write-registries)");
        if (duplicate_rule) {
            auto ins = first.emplace(name, &s);
            if (!ins.second)
                report(duplicate_rule,
                       "\"" + name + "\" already declared at " +
                           ins.first->second->file->path + ":" +
                           std::to_string(
                               ins.first->second->decl->line) +
                           "; identifier declarations must be unique");
        }
    }
}

} // namespace

RegistryFile
parseRegistry(const std::string& rel_path, const std::string& content)
{
    RegistryFile reg;
    reg.path = rel_path;
    int line = 0;
    std::size_t start = 0;
    while (start <= content.size()) {
        ++line;
        std::size_t nl = content.find('\n', start);
        std::string l =
            nl == std::string::npos
                ? content.substr(start)
                : content.substr(start, nl - start);
        std::size_t b = l.find_first_not_of(" \t\r");
        if (b != std::string::npos && l[b] != '#') {
            std::size_t e = l.find_last_not_of(" \t\r");
            reg.entries.emplace(l.substr(b, e - b + 1), line);
        }
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }
    return reg;
}

std::string
formatRegistry(const std::string& title,
               const std::vector<std::string>& names)
{
    std::vector<std::string> sorted = names;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()),
                 sorted.end());
    std::string out = "# " + title + "\n";
    out += "# Maintained by cosim_analyze --write-registries; every\n";
    out += "# entry must have a live code site (stale entries are\n";
    out += "# reported as stale-registry-entry).\n";
    for (const std::string& n : sorted)
        out += n + "\n";
    return out;
}

void
extractIdentDecls(const std::string& rel_path, const TokenStream& ts,
                  FileFacts* out)
{
    const bool in_src = startsWith(rel_path, "src/");
    const bool schema_scope = in_src ||
                              startsWith(rel_path, "bench/") ||
                              startsWith(rel_path, "examples/");
    if (!schema_scope)
        return;

    for (std::size_t i = 0; i < ts.codeSize(); ++i) {
        const Token& t = ts.codeTok(i);

        if (t.kind == TokKind::String) {
            for (const std::string& schema : schemaStrings(t.text))
                out->idents.push_back(
                    IdentDecl{IdentDecl::Schema, t.line, schema});
            continue;
        }
        if (!in_src || t.kind != TokKind::Ident)
            continue;

        auto stringArg = [&](std::size_t call) -> const Token* {
            if (call + 1 < ts.codeSize() &&
                ts.codeTok(call + 1).isPunct("(") &&
                call + 2 < ts.codeSize() &&
                ts.codeTok(call + 2).kind == TokKind::String)
                return &ts.codeTok(call + 2);
            return nullptr;
        };

        if (t.text == "COSIM_FAULT_POINT" || t.text == "faultPending") {
            // The definitions in base/fault.hh take `site` as a
            // parameter; only literal-argument call sites declare.
            if (const Token* arg = stringArg(i))
                out->idents.push_back(IdentDecl{IdentDecl::FaultSite,
                                                arg->line, arg->text});
        } else if (t.text == "counter" || t.text == "histogram") {
            if (const Token* arg = stringArg(i))
                out->idents.push_back(IdentDecl{IdentDecl::Metric,
                                                arg->line, arg->text});
        } else if (t.text == "add" && i > 0 &&
                   (ts.codeTok(i - 1).isPunct(".") ||
                    ts.codeTok(i - 1).isPunct("->"))) {
            if (const Token* arg = stringArg(i))
                out->idents.push_back(IdentDecl{IdentDecl::StatKey,
                                                arg->line, arg->text});
        }
    }
}

std::vector<Finding>
checkRegistries(const std::vector<FileFacts>& files,
                const Registries& regs)
{
    std::vector<Finding> findings;

    std::vector<DeclSite> faults, metrics, stats, schemas;
    for (const FileFacts& ff : files) {
        for (const IdentDecl& d : ff.idents) {
            switch (d.kind) {
              case IdentDecl::FaultSite:
                faults.push_back({&ff, &d});
                break;
              case IdentDecl::Metric:
                metrics.push_back({&ff, &d});
                break;
              case IdentDecl::StatKey:
                stats.push_back({&ff, &d});
                break;
              case IdentDecl::Schema:
                schemas.push_back({&ff, &d});
                break;
            }
        }
    }

    std::map<std::string, bool> seen_faults, seen_metrics, seen_stats,
        seen_schemas;
    checkClass(faults, regs.faultSites, "unregistered-fault-site",
               "fault-site-name", "duplicate-fault-site",
               /*allow_dot=*/true, &findings, &seen_faults);
    // Metric charset is the per-file metric-name rule; here the
    // project-wide concerns: membership and global uniqueness.
    checkClass(metrics, regs.metrics, "unregistered-metric", nullptr,
               "duplicate-metric", /*allow_dot=*/true, &findings,
               &seen_metrics);
    checkClass(stats, regs.statsKeys, "unregistered-stat-key",
               "stat-key-name", nullptr, /*allow_dot=*/false,
               &findings, &seen_stats);
    checkClass(schemas, regs.schemas, "unregistered-schema", nullptr,
               nullptr, /*allow_dot=*/true, &findings, &seen_schemas);

    auto stale = [&](const RegistryFile& reg,
                     const std::map<std::string, bool>& seen) {
        for (const auto& [name, line] : reg.entries) {
            if (seen.find(name) == seen.end())
                findings.push_back(Finding{
                    reg.path, line, "stale-registry-entry",
                    "\"" + name +
                        "\" has no remaining code site; remove it "
                        "(or run cosim_analyze --write-registries)"});
        }
    };
    stale(regs.faultSites, seen_faults);
    stale(regs.metrics, seen_metrics);
    stale(regs.statsKeys, seen_stats);
    stale(regs.schemas, seen_schemas);

    return findings;
}

} // namespace cosim_analyze
