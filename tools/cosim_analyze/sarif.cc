#include "tools/cosim_analyze/sarif.hh"

#include <cstdint>

#include "tools/cosim_analyze/rules.hh"

namespace cosim_analyze {

namespace {

std::string
trim(const std::string& s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::uint64_t
fnv1a(const std::string& s, std::uint64_t h)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

std::string
fingerprintOf(const Finding& f, const std::string& line_text,
              int occurrence)
{
    std::uint64_t h = 14695981039346656037ULL;
    h = fnv1a(f.file, h);
    h = fnv1a("|", h);
    h = fnv1a(f.rule, h);
    h = fnv1a("|", h);
    h = fnv1a(trim(line_text), h);
    h = fnv1a("|", h);
    h = fnv1a(std::to_string(occurrence), h);
    static const char* hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = hex[h & 0xf];
        h >>= 4;
    }
    return out;
}

std::string
toSarif(const std::vector<FingerprintedFinding>& findings)
{
    std::string out;
    out += "{\n";
    out += "  \"$schema\": \"https://raw.githubusercontent.com/oasis-"
           "tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n";
    out += "  \"version\": \"2.1.0\",\n";
    out += "  \"runs\": [\n";
    out += "    {\n";
    out += "      \"tool\": {\n";
    out += "        \"driver\": {\n";
    out += "          \"name\": \"cosim_analyze\",\n";
    out += "          \"informationUri\": "
           "\"https://example.invalid/cosim/tools/cosim_analyze\",\n";
    out += "          \"rules\": [\n";
    const std::vector<std::string> rules = allRules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out += "            {\"id\": \"" + jsonEscape(rules[i]) +
               "\", \"shortDescription\": {\"text\": \"" +
               jsonEscape(ruleDescription(rules[i])) + "\"}}";
        out += i + 1 < rules.size() ? ",\n" : "\n";
    }
    out += "          ]\n";
    out += "        }\n";
    out += "      },\n";
    out += "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i].finding;
        out += "        {\n";
        out += "          \"ruleId\": \"" + jsonEscape(f.rule) +
               "\",\n";
        out += "          \"level\": \"error\",\n";
        out += "          \"message\": {\"text\": \"" +
               jsonEscape(f.message) + "\"},\n";
        out += "          \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"" +
               jsonEscape(f.file) +
               "\"}, \"region\": {\"startLine\": " +
               std::to_string(f.line > 0 ? f.line : 1) + "}}}],\n";
        out += "          \"partialFingerprints\": "
               "{\"cosimAnalyze/v1\": \"" +
               jsonEscape(findings[i].fingerprint) + "\"}\n";
        out += i + 1 < findings.size() ? "        },\n"
                                       : "        }\n";
    }
    out += "      ]\n";
    out += "    }\n";
    out += "  ]\n";
    out += "}\n";
    return out;
}

std::set<std::string>
parseBaseline(const std::string& content)
{
    std::set<std::string> out;
    std::size_t start = 0;
    while (start <= content.size()) {
        std::size_t nl = content.find('\n', start);
        std::string l = nl == std::string::npos
                            ? content.substr(start)
                            : content.substr(start, nl - start);
        l = trim(l);
        if (!l.empty() && l[0] != '#')
            out.insert(l);
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }
    return out;
}

std::string
formatBaseline(const std::vector<FingerprintedFinding>& findings)
{
    std::string out =
        "# cosim_analyze baseline: accepted pre-existing findings.\n"
        "# One fingerprint per line; regenerate with "
        "--write-baseline.\n";
    std::set<std::string> prints;
    for (const FingerprintedFinding& f : findings)
        prints.insert(f.fingerprint);
    for (const std::string& p : prints)
        out += p + "\n";
    return out;
}

} // namespace cosim_analyze
