/**
 * @file
 * Shared data model of cosim_analyze: findings, per-directory rule
 * sets, suppressions, and the per-file fact records the cross-TU
 * passes consume.
 *
 * Analysis is split into two stages. Stage one is per-file and pure:
 * `extractFileFacts(path, content)` lexes the file once, runs every
 * per-file rule, and extracts the facts project passes need (include
 * edges, identifier declaration sites, mutex members, per-function
 * lock behaviour). Stage two runs over the whole collection of
 * `FileFacts`: the include-layer gate, the lock-order analyzer, and
 * the identifier registries. Because a `FileFacts` depends only on
 * one file's content, it is the unit of the content-hash incremental
 * cache (analyzer.cc).
 */

#ifndef COSIM_TOOLS_COSIM_ANALYZE_FACTS_HH
#define COSIM_TOOLS_COSIM_ANALYZE_FACTS_HH

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace cosim_analyze {

/** One reported violation. */
struct Finding
{
    std::string file; ///< repo-relative path
    int line = 0;     ///< 1-based
    std::string rule;
    std::string message;

    /** The machine-readable "file:line: rule: message" form. */
    std::string format() const;

    bool
    operator==(const Finding& o) const
    {
        return file == o.file && line == o.line && rule == o.rule &&
               message == o.message;
    }
};

/** Which per-file rule groups apply to a file (see ruleSetFor). */
struct RuleSet
{
    bool determinism = false; ///< no-rand/-time/-system-clock/... group
    bool noRawNewDelete = false;
    bool noPrintf = false;
    bool noRawOfstream = false;
    bool metricName = false;
    bool fsbDirectIssue = false; ///< DEX delivery discipline (softsdv/)
    bool planAtomicWrite = false; ///< plan writers use AtomicFile (src/)
    bool journalAtomicAppend = false; ///< journal writers use the
                                      ///< durable append helper (src/)
    bool intervalWallclock = false; ///< pure interval selection (trace/)
    bool headerGuard = true;
    bool includeHygiene = true;
    bool trailingWhitespace = true;
};

/**
 * Per-file suppression state parsed from `cosim-analyze:` directives
 * in comments (`cosim-lint:` is accepted as a legacy alias). A
 * line-level allow covers its own line and the next; allow-file
 * covers the whole file. Project-pass findings anchored at a line in
 * the file honor the same suppressions.
 */
struct Suppressions
{
    std::set<std::string> fileWide;
    std::set<std::pair<std::string, int>> lines; ///< (rule, 1-based)

    bool
    allows(const std::string& rule, int line) const
    {
        return fileWide.count(rule) > 0 || lines.count({rule, line}) > 0;
    }
};

/** One `#include` in the file. */
struct IncludeFact
{
    int line = 0;
    std::string path;
    bool angled = false;
};

/** One registerable-identifier declaration site (registry pass). */
struct IdentDecl
{
    enum Kind { FaultSite, Metric, StatKey, Schema };
    Kind kind = FaultSite;
    int line = 0;
    std::string name;
};

/** A `cosim::Mutex` member (or namespace-scope mutex: empty cls). */
struct MutexDecl
{
    std::string cls;    ///< innermost class name, "" at namespace scope
    std::string member; ///< field / variable name
    int line = 0;
};

/**
 * How one lock acquisition site names its mutex. Resolution to a
 * global lock id happens in the lock-order pass, which can see every
 * file's MutexDecls:
 *   - cls + member: "mutex_" inside a method of `cls` (the class may
 *     be declared in another TU -- the header);
 *   - member only:  "shard.mutex" -- resolved by unique declaring
 *     class across the project;
 *   - raw only:     an expression the extractor could not classify;
 *     treated as file-local.
 */
struct LockRef
{
    std::string cls;
    std::string member;
    std::string raw; ///< always set: the source expression text

    bool
    operator==(const LockRef& o) const
    {
        return cls == o.cls && member == o.member && raw == o.raw;
    }
};

/** Direct nested acquisition inside one function: from is held when
 * to is acquired. */
struct LockEdge
{
    LockRef from, to;
    int line = 0;
};

/** A call site with the locks held at that point. */
struct LockCall
{
    std::string callee; ///< "Class::name" or bare "name"
    std::vector<LockRef> held;
    int line = 0;
};

/** Lock-relevant summary of one function definition. */
struct FuncLockFacts
{
    std::string qname; ///< "Class::name" or "name", last 2 components
    int line = 0;
    std::vector<LockRef> requiresLocks; ///< REQUIRES() at the def site
    std::vector<LockRef> acquireLocks;  ///< ACQUIRE() at the def site
    std::vector<std::pair<LockRef, int>> acquires; ///< LockGuard sites
    std::vector<LockEdge> edges;
    std::vector<LockCall> calls;
};

/** Everything stage one learned about one file. */
struct FileFacts
{
    std::string path; ///< repo-relative
    std::vector<Finding> findings; ///< per-file rule findings
    Suppressions suppressions;
    std::vector<IncludeFact> includes;
    std::vector<IdentDecl> idents;
    std::vector<MutexDecl> mutexes;
    std::vector<FuncLockFacts> funcs;
};

/** One justified exception consumed by a project pass. Lines look
 * like `layering core -> trace: replay drivers feed the core loop`. */
struct AllowEntry
{
    std::string pass; ///< "layering" or "lock-order"
    std::string from, to;
    std::string justification;
    int line = 0; ///< in the allow file
};

} // namespace cosim_analyze

#endif // COSIM_TOOLS_COSIM_ANALYZE_FACTS_HH
