/**
 * @file
 * cosim-inspect: pretty-print and validate sweep artifacts.
 *
 * Every sweep run writes a machine-readable `run.json` next to its
 * figure CSVs (configuration, source revision, per-workload results,
 * the CB 500 us MPKI series, host timing). This tool renders one for
 * humans: a summary header, a per-workload table, and a sparkline of
 * each workload's MPKI series.
 *
 * The telemetry subcommands validate the live-observability artifacts
 * (CI runs them against faulted sweeps; see DESIGN.md "Telemetry"):
 *
 *   cosim_inspect <run.json>              pretty-print a run manifest
 *   cosim_inspect progress <file.jsonl>   heartbeat/progress stream:
 *                                         every line parses, seq is
 *                                         dense from 0, required fields
 *   cosim_inspect metrics <file.om>       OpenMetrics export: sample
 *                                         shapes, cumulative histogram
 *                                         buckets, trailing # EOF
 *   cosim_inspect postmortem <file.json>  crash flight record: schema,
 *                                         fault sites, thread events
 *   cosim_inspect plan <file.plan.json>   sampling plan: cosim-plan/1
 *                                         schema and structural
 *                                         invariants (SamplingPlan)
 *   cosim_inspect journal <file.jsonl>    sweep write-ahead journal:
 *                                         cosim-journal/1 schema, dense
 *                                         seq, per-cell state machine,
 *                                         no cell left unfinished
 *   cosim_inspect diff-run <a> <b>        compare two run manifests
 *                                         after dropping host timing
 *                                         and the resume block (the
 *                                         crash-and-resume CI gate)
 *   cosim_inspect sampling <run.json> <tolerances.json> [baseline.json]
 *                          [--min-speedup=<x>]
 *                                         gate a sampled run's per-
 *                                         metric relative error against
 *                                         the tolerance file; with a
 *                                         full-run baseline manifest,
 *                                         print the wall-clock speedup
 *                                         (and fail below the optional
 *                                         --min-speedup bound)
 *
 * Exit status: 0 valid, 1 invalid or unreadable, 2 usage.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/sweep_journal.hh"
#include "obs/json.hh"
#include "obs/run_manifest.hh"
#include "trace/phase_cluster.hh"

using namespace cosim;
using obs::json::Value;

namespace {

double
numberOr(const Value* v, double fallback)
{
    return v != nullptr && v->isNumber() ? v->num : fallback;
}

std::string
stringOr(const Value* v, const std::string& fallback)
{
    return v != nullptr && v->isString() ? v->str : fallback;
}

std::string
sparkline(const std::vector<double>& values, std::size_t width)
{
    static const char* levels[] = {"▁", "▂", "▃",
                                   "▄", "▅", "▆",
                                   "▇", "█"};
    double max_v = 0.0;
    for (double v : values)
        max_v = std::max(max_v, v);
    if (max_v <= 0.0 || values.empty())
        return std::string();

    std::string out;
    std::size_t n = std::min(width, values.size());
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t lo = col * values.size() / n;
        std::size_t hi = std::max(lo + 1, (col + 1) * values.size() / n);
        double sum = 0.0;
        for (std::size_t k = lo; k < hi && k < values.size(); ++k)
            sum += values[k];
        double v = sum / static_cast<double>(hi - lo);
        auto idx = static_cast<std::size_t>(7.0 * v / max_v);
        out += levels[std::min<std::size_t>(idx, 7)];
    }
    return out;
}

std::vector<double>
numberList(const Value* v)
{
    std::vector<double> out;
    if (v == nullptr || !v->isArray())
        return out;
    for (const Value& e : v->arr) {
        if (e.isNumber())
            out.push_back(e.num);
    }
    return out;
}

/** The whole file, or empty with *ok=false when unreadable. */
std::string
readAll(const char* path, bool* ok)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cosim_inspect: cannot open '%s'\n", path);
        *ok = false;
        return std::string();
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    *ok = true;
    return buf.str();
}

std::vector<std::string>
splitLines(const std::string& text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

/**
 * Validate a heartbeat/progress stream (obs/progress.hh): every line
 * is one JSON object carrying seq/t_us/event, seq densely numbered
 * from 0, t_us never moving backwards. Prints an event census.
 */
int
inspectProgress(const char* path)
{
    bool ok = false;
    const std::string text = readAll(path, &ok);
    if (!ok)
        return 1;

    int bad = 0;
    double prev_t = -1.0;
    std::size_t expected_seq = 0;
    std::map<std::string, int> census;
    const std::vector<std::string> lines = splitLines(text);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].empty())
            continue;
        Value ev;
        std::string error;
        if (!obs::json::parse(lines[i], ev, &error)) {
            std::fprintf(stderr, "%s:%zu: bad JSON: %s\n", path, i + 1,
                         error.c_str());
            ++bad;
            continue;
        }
        const Value* seq = ev.find("seq");
        const Value* t_us = ev.find("t_us");
        const Value* event = ev.find("event");
        if (seq == nullptr || !seq->isNumber() || t_us == nullptr ||
            !t_us->isNumber() || event == nullptr ||
            !event->isString()) {
            std::fprintf(stderr,
                         "%s:%zu: missing seq/t_us/event fields\n",
                         path, i + 1);
            ++bad;
            continue;
        }
        if (seq->num != static_cast<double>(expected_seq)) {
            std::fprintf(stderr,
                         "%s:%zu: seq %.0f, expected %zu (stream must "
                         "be densely numbered from 0)\n",
                         path, i + 1, seq->num, expected_seq);
            ++bad;
        }
        ++expected_seq;
        if (t_us->num < prev_t) {
            std::fprintf(stderr,
                         "%s:%zu: t_us %.0f moved backwards\n", path,
                         i + 1, t_us->num);
            ++bad;
        }
        prev_t = t_us->num;
        ++census[event->str];
    }

    if (expected_seq == 0) {
        std::fprintf(stderr, "%s: no events\n", path);
        return 1;
    }
    std::printf("%s: %zu event(s)\n", path, expected_seq);
    for (const auto& kv : census)
        std::printf("  %-14s %d\n", kv.first.c_str(), kv.second);
    return bad == 0 ? 0 : 1;
}

/**
 * Validate an OpenMetrics export (obs/metrics.hh renderOpenMetrics):
 * cosim_-prefixed sample names, histogram buckets cumulative with
 * _count equal to the +Inf bucket, and the mandatory trailing # EOF.
 */
int
inspectMetrics(const char* path)
{
    bool ok = false;
    const std::string text = readAll(path, &ok);
    if (!ok)
        return 1;

    int bad = 0;
    int samples = 0;
    bool saw_eof = false;
    // Per histogram: last _bucket value (cumulativity) and the +Inf
    // bucket value (must equal _count).
    std::map<std::string, double> last_bucket;
    std::map<std::string, double> inf_bucket;
    const std::vector<std::string> lines = splitLines(text);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& line = lines[i];
        if (line.empty())
            continue;
        if (saw_eof) {
            std::fprintf(stderr, "%s:%zu: content after # EOF\n", path,
                         i + 1);
            ++bad;
            break;
        }
        if (line[0] == '#') {
            if (line == "# EOF")
                saw_eof = true;
            else if (line.rfind("# TYPE ", 0) != 0 &&
                     line.rfind("# HELP ", 0) != 0 &&
                     line.rfind("# UNIT ", 0) != 0) {
                std::fprintf(stderr, "%s:%zu: unknown comment form\n",
                             path, i + 1);
                ++bad;
            }
            continue;
        }
        std::size_t name_end = line.find_first_of("{ ");
        std::size_t sp = line.rfind(' ');
        if (name_end == std::string::npos || sp == std::string::npos ||
            sp == line.size() - 1) {
            std::fprintf(stderr, "%s:%zu: malformed sample line\n",
                         path, i + 1);
            ++bad;
            continue;
        }
        std::string name = line.substr(0, name_end);
        if (name.rfind("cosim_", 0) != 0) {
            std::fprintf(stderr,
                         "%s:%zu: sample '%s' lacks the cosim_ "
                         "prefix\n",
                         path, i + 1, name.c_str());
            ++bad;
        }
        double value = 0.0;
        try {
            value = std::stod(line.substr(sp + 1));
        } catch (...) {
            std::fprintf(stderr, "%s:%zu: non-numeric sample value\n",
                         path, i + 1);
            ++bad;
            continue;
        }
        ++samples;

        const std::string kBucket = "_bucket";
        if (name.size() > kBucket.size() &&
            name.compare(name.size() - kBucket.size(), kBucket.size(),
                         kBucket) == 0) {
            std::string base =
                name.substr(0, name.size() - kBucket.size());
            auto it = last_bucket.find(base);
            if (it != last_bucket.end() && value < it->second) {
                std::fprintf(stderr,
                             "%s:%zu: histogram '%s' buckets are not "
                             "cumulative\n",
                             path, i + 1, base.c_str());
                ++bad;
            }
            last_bucket[base] = value;
            if (line.find("le=\"+Inf\"") != std::string::npos)
                inf_bucket[base] = value;
        }
        const std::string kCount = "_count";
        if (name.size() > kCount.size() &&
            name.compare(name.size() - kCount.size(), kCount.size(),
                         kCount) == 0) {
            std::string base =
                name.substr(0, name.size() - kCount.size());
            auto inf = inf_bucket.find(base);
            if (inf != inf_bucket.end() && inf->second != value) {
                std::fprintf(stderr,
                             "%s:%zu: histogram '%s' _count %.0f != "
                             "+Inf bucket %.0f\n",
                             path, i + 1, base.c_str(), value,
                             inf->second);
                ++bad;
            }
        }
    }
    if (!saw_eof) {
        std::fprintf(stderr, "%s: missing trailing # EOF\n", path);
        ++bad;
    }
    if (samples == 0) {
        std::fprintf(stderr, "%s: no samples\n", path);
        return 1;
    }
    std::printf("%s: %d sample(s), %zu histogram(s)\n", path, samples,
                last_bucket.size());
    return bad == 0 ? 0 : 1;
}

/**
 * Validate a crash flight record (obs/postmortem.hh): the
 * cosim-postmortem/1 schema with its fault-site report and per-thread
 * event history. Prints the failure summary CI greps for.
 */
int
inspectPostmortem(const char* path)
{
    bool ok = false;
    const std::string text = readAll(path, &ok);
    if (!ok)
        return 1;

    Value doc;
    std::string error;
    if (!obs::json::parse(text, doc, &error)) {
        std::fprintf(stderr, "cosim_inspect: %s: %s\n", path,
                     error.c_str());
        return 1;
    }

    int bad = 0;
    const Value* schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->str != "cosim-postmortem/1") {
        std::fprintf(stderr, "%s: schema is not cosim-postmortem/1\n",
                     path);
        ++bad;
    }
    const Value* reason = doc.find("reason");
    if (reason == nullptr || !reason->isString() ||
        reason->str.empty()) {
        std::fprintf(stderr, "%s: missing reason\n", path);
        ++bad;
    }
    const Value* t_us = doc.find("t_us");
    if (t_us == nullptr || !t_us->isNumber()) {
        std::fprintf(stderr, "%s: missing t_us\n", path);
        ++bad;
    }

    std::printf("%s: %s", path,
                stringOr(reason, "(no reason)").c_str());
    std::string cell = stringOr(doc.find("cell"), "");
    if (!cell.empty())
        std::printf(", cell %s attempt %.0f", cell.c_str(),
                    numberOr(doc.find("attempt"), 0.0));
    std::printf("\n");
    std::string err_text = stringOr(doc.find("error"), "");
    if (!err_text.empty())
        std::printf("  error: %s\n", err_text.c_str());

    const Value* sites = doc.find("fault_sites");
    if (sites != nullptr && sites->isArray()) {
        for (const Value& s : sites->arr) {
            if (s.find("site") == nullptr ||
                !s.find("site")->isString()) {
                std::fprintf(stderr,
                             "%s: fault_sites entry lacks a site\n",
                             path);
                ++bad;
                continue;
            }
            std::printf("  fault %s: armed %.0f, fired %.0f "
                        "(%.0f hits)\n",
                        s.find("site")->str.c_str(),
                        numberOr(s.find("armed"), 0.0),
                        numberOr(s.find("fired"), 0.0),
                        numberOr(s.find("hits"), 0.0));
        }
    }

    const Value* threads = doc.find("threads");
    if (threads == nullptr || !threads->isArray()) {
        std::fprintf(stderr, "%s: missing threads array\n", path);
        ++bad;
    } else {
        for (const Value& t : threads->arr) {
            const Value* label = t.find("label");
            const Value* events = t.find("events");
            if (label == nullptr || !label->isString() ||
                events == nullptr || !events->isArray()) {
                std::fprintf(stderr,
                             "%s: thread entry lacks label/events\n",
                             path);
                ++bad;
                continue;
            }
            double prev_seq = -1.0;
            for (const Value& e : events->arr) {
                const Value* seq = e.find("seq");
                const Value* kind = e.find("kind");
                if (seq == nullptr || !seq->isNumber() ||
                    kind == nullptr || !kind->isString()) {
                    std::fprintf(stderr,
                                 "%s: thread '%s' event lacks "
                                 "seq/kind\n",
                                 path, label->str.c_str());
                    ++bad;
                    break;
                }
                if (seq->num <= prev_seq) {
                    std::fprintf(stderr,
                                 "%s: thread '%s' events out of "
                                 "order\n",
                                 path, label->str.c_str());
                    ++bad;
                    break;
                }
                prev_seq = seq->num;
            }
            std::printf("  thread %-18s %zu event(s)\n",
                        label->str.c_str(), events->arr.size());
        }
    }
    return bad == 0 ? 0 : 1;
}

/**
 * Validate a sampling plan (trace/phase_cluster.hh): the cosim-plan/1
 * schema plus SamplingPlan::validate()'s structural invariants (ordered
 * unique windows in range, normalized weights, positive geometry).
 * Prints the summary a plan consumer would see.
 */
int
inspectPlan(const char* path)
{
    SamplingPlan plan;
    std::string error;
    if (!SamplingPlan::load(path, plan, &error)) {
        std::fprintf(stderr, "cosim_inspect: %s: %s\n", path,
                     error.c_str());
        return 1;
    }

    std::printf("%s: %s, seed %llu\n", path, plan.workload.c_str(),
                static_cast<unsigned long long>(plan.seed));
    std::printf("  %zu interval(s) over %llu windows "
                "(%.0fus @ %.1fGHz), %llu warm-up, coverage %.1f%%\n",
                plan.intervals.size(),
                static_cast<unsigned long long>(plan.totalWindows),
                plan.samplePeriodUs, plan.coreFreqGhz,
                static_cast<unsigned long long>(plan.warmupWindows),
                100.0 * plan.coverage());
    for (const PlanInterval& iv : plan.intervals) {
        std::printf("  phase %llu: window %6llu, %llu window(s), "
                    "weight %.4f, inst weight %.4f\n",
                    static_cast<unsigned long long>(iv.phase),
                    static_cast<unsigned long long>(iv.window),
                    static_cast<unsigned long long>(iv.windows),
                    iv.weight, iv.instWeight);
    }
    return 0;
}

/**
 * The tolerance for (workload, metric) under a cosim-sampling-
 * tolerances/1 document: the most specific of a per-workload override,
 * a per-metric bound, and the document default (0.05 when absent).
 */
double
toleranceFor(const Value& doc, const std::string& workload,
             const char* metric)
{
    const Value* workloads = doc.find("workloads");
    if (workloads != nullptr) {
        const Value* w = workloads->find(workload.c_str());
        if (w != nullptr) {
            const Value* m = w->find(metric);
            if (m != nullptr && m->isNumber())
                return m->num;
        }
    }
    const Value* metrics = doc.find("metrics");
    if (metrics != nullptr) {
        const Value* m = metrics->find(metric);
        if (m != nullptr && m->isNumber())
            return m->num;
    }
    return numberOr(doc.find("default"), 0.05);
}

/**
 * Gate a sampled run: every workload's sampling.error metrics in
 * @p run_path must be within the bounds of @p tol_path (the CI
 * accuracy gate). With @p baseline_path (a full-run manifest of the
 * same figure), also prints the wall-clock speedup. Exit 1 when any
 * bound is exceeded, a workload lacks an error record, or the run is
 * not a sampled run.
 */
int
inspectSampling(const char* run_path, const char* tol_path,
                const char* baseline_path, double min_speedup)
{
    bool ok = false;
    const std::string run_text = readAll(run_path, &ok);
    if (!ok)
        return 1;
    const std::string tol_text = readAll(tol_path, &ok);
    if (!ok)
        return 1;

    Value run;
    Value tol;
    std::string error;
    if (!obs::json::parse(run_text, run, &error)) {
        std::fprintf(stderr, "cosim_inspect: %s: %s\n", run_path,
                     error.c_str());
        return 1;
    }
    if (!obs::json::parse(tol_text, tol, &error)) {
        std::fprintf(stderr, "cosim_inspect: %s: %s\n", tol_path,
                     error.c_str());
        return 1;
    }
    const std::string tol_schema = stringOr(tol.find("schema"), "?");
    if (tol_schema != "cosim-sampling-tolerances/1") {
        std::fprintf(stderr,
                     "%s: schema '%s' is not "
                     "cosim-sampling-tolerances/1\n",
                     tol_path, tol_schema.c_str());
        return 1;
    }

    const Value* workloads = run.find("workloads");
    if (workloads == nullptr || !workloads->isArray() ||
        workloads->arr.empty()) {
        std::fprintf(stderr, "%s: no workload entries\n", run_path);
        return 1;
    }

    // The gated metrics: the estimator's per-instruction rates plus
    // the DRAM traffic proxy (absolute LLC miss count error).
    static const char* kMetrics[] = {"cpi", "mpki", "apki", "dram"};

    int bad = 0;
    int gated = 0;
    std::printf("%-10s %8s %8s %8s %8s  coverage\n", "workload",
                "cpi", "mpki", "apki", "dram");
    for (const Value& w : workloads->arr) {
        const std::string name = stringOr(w.find("name"), "?");
        const Value* sampling = w.find("sampling");
        if (sampling == nullptr) {
            std::fprintf(stderr,
                         "%s: workload '%s' has no sampling record "
                         "(not a --cells=sampled run?)\n",
                         run_path, name.c_str());
            ++bad;
            continue;
        }
        const Value* err = sampling->find("error");
        if (err == nullptr) {
            std::fprintf(stderr,
                         "%s: workload '%s' has no error record "
                         "(sampled run without a full-run "
                         "reference)\n",
                         run_path, name.c_str());
            ++bad;
            continue;
        }
        std::printf("%-10s", name.c_str());
        for (const char* metric : kMetrics) {
            const double e = numberOr(err->find(metric), 0.0);
            const double bound = toleranceFor(tol, name, metric);
            const bool over = e > bound;
            std::printf(" %6.2f%%%s", 100.0 * e, over ? "!" : " ");
            ++gated;
            if (over) {
                std::fprintf(stderr,
                             "%s: %s %s error %.2f%% exceeds "
                             "tolerance %.2f%%\n",
                             run_path, name.c_str(), metric,
                             100.0 * e, 100.0 * bound);
                ++bad;
            }
        }
        std::printf("  %5.1f%%\n",
                    100.0 * numberOr(sampling->find("coverage"), 0.0));
    }

    if (baseline_path != nullptr) {
        const std::string base_text = readAll(baseline_path, &ok);
        if (!ok)
            return 1;
        Value base;
        if (!obs::json::parse(base_text, base, &error)) {
            std::fprintf(stderr, "cosim_inspect: %s: %s\n",
                         baseline_path, error.c_str());
            return 1;
        }
        const Value* run_host = run.find("host");
        const Value* base_host = base.find("host");
        const double sampled_wall =
            run_host ? numberOr(run_host->find("wall_seconds"), 0.0)
                     : 0.0;
        const double full_wall =
            base_host ? numberOr(base_host->find("wall_seconds"), 0.0)
                      : 0.0;
        if (sampled_wall <= 0.0 || full_wall <= 0.0) {
            std::fprintf(stderr,
                         "%s/%s: missing host.wall_seconds, cannot "
                         "compute speedup\n",
                         run_path, baseline_path);
            ++bad;
        } else {
            const double speedup = full_wall / sampled_wall;
            if (min_speedup > 0.0) {
                std::printf("speedup: %.2fx (full %.3fs vs sampled "
                            "%.3fs, bound %.2fx)\n",
                            speedup, full_wall, sampled_wall,
                            min_speedup);
                if (speedup < min_speedup) {
                    std::fprintf(stderr,
                                 "%s: speedup %.2fx below bound "
                                 "%.2fx\n",
                                 run_path, speedup, min_speedup);
                    ++bad;
                }
            } else {
                std::printf("speedup: %.2fx (full %.3fs vs sampled "
                            "%.3fs)\n",
                            speedup, full_wall, sampled_wall);
            }
        }
    }

    if (bad == 0)
        std::printf("sampling gate: %d metric(s) within tolerance\n",
                    gated);
    return bad == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------
// Crash-safe sweeps: journal validation, normalized run comparison.
// ---------------------------------------------------------------------

/** u64-ish field: JSON number (counts) or decimal string (digests). */
bool
journalU64(const Value& rec, const char* key, std::string* out)
{
    const Value* v = rec.find(key);
    if (v == nullptr)
        return false;
    if (v->isNumber()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v->num);
        *out = buf;
        return true;
    }
    if (v->isString() && !v->str.empty()) {
        for (char c : v->str) {
            if (c < '0' || c > '9')
                return false;
        }
        *out = v->str;
        return true;
    }
    return false;
}

/**
 * Validate a sweep write-ahead journal (harness/sweep_journal.hh):
 * record 0 is a `sweep_plan` carrying the cosim-journal/1 schema; seq
 * is dense from 0; every event carries its required fields; each
 * cell's records follow the planned -> running -> done/failed state
 * machine (resumes may re-plan a cell). A torn final line (no trailing
 * newline) is noted and ignored -- WAL semantics say the interrupted
 * append never happened -- but a cell left in "running" is an error:
 * the sweep crashed and was never resumed.
 */
int
inspectJournal(const char* path)
{
    bool ok = false;
    const std::string text = readAll(path, &ok);
    if (!ok)
        return 1;

    int bad = 0;
    auto complain = [&](std::size_t lineno, const char* what) {
        std::fprintf(stderr, "%s:%zu: %s\n", path, lineno, what);
        ++bad;
    };

    const bool torn = !text.empty() && text.back() != '\n';
    std::vector<std::string> lines = splitLines(text);
    if (torn && !lines.empty()) {
        std::printf("note: torn final line ignored (interrupted "
                    "append)\n");
        lines.pop_back();
    }

    std::size_t expected_seq = 0;
    std::string figure = "?";
    std::string digest = "?";
    std::size_t planned_cells = 0;
    bool saw_plan = false;
    bool saw_sweep_done = false;
    // Latest state per cell, journal order.
    std::vector<std::pair<std::string, std::string>> cells;
    auto stateOf = [&](const std::string& name) -> std::string& {
        for (auto& entry : cells) {
            if (entry.first == name)
                return entry.second;
        }
        cells.emplace_back(name, std::string());
        return cells.back().second;
    };

    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::size_t lineno = i + 1;
        if (lines[i].empty()) {
            complain(lineno, "empty record");
            continue;
        }
        Value rec;
        std::string jerr;
        if (!obs::json::parse(lines[i], rec, &jerr) || !rec.isObject()) {
            complain(lineno, ("bad JSON: " + jerr).c_str());
            continue;
        }
        const Value* seq = rec.find("seq");
        const Value* t_us = rec.find("t_us");
        const Value* event = rec.find("event");
        if (seq == nullptr || !seq->isNumber() || t_us == nullptr ||
            !t_us->isNumber() || event == nullptr ||
            !event->isString()) {
            complain(lineno, "missing seq/t_us/event fields");
            continue;
        }
        if (seq->num != static_cast<double>(expected_seq)) {
            complain(lineno,
                     "seq not dense (journal must number records "
                     "densely from 0, across resumes)");
        }
        ++expected_seq;
        const std::string& ev = event->str;
        if (i == 0 && ev != "sweep_plan") {
            complain(lineno, "first record must be sweep_plan");
        }

        std::string cell_name;
        const Value* cell = rec.find("cell");
        if (cell != nullptr && cell->isString())
            cell_name = cell->str;

        if (ev == "sweep_plan") {
            const std::string schema =
                stringOr(rec.find("schema"), "?");
            if (schema != kJournalSchema) {
                complain(lineno,
                         ("unsupported schema '" + schema + "'").c_str());
            }
            if (saw_plan)
                complain(lineno, "duplicate sweep_plan");
            saw_plan = true;
            figure = stringOr(rec.find("figure"), "?");
            const Value* n = rec.find("cells");
            if (!journalU64(rec, "config_digest", &digest))
                complain(lineno, "missing config_digest");
            if (n == nullptr || !n->isNumber())
                complain(lineno, "missing cells count");
            else
                planned_cells = static_cast<std::size_t>(n->num);
        } else if (ev == "planned") {
            if (cell_name.empty()) {
                complain(lineno, "planned without cell");
                continue;
            }
            stateOf(cell_name) = "planned";
        } else if (ev == "running") {
            const Value* attempt = rec.find("attempt");
            const Value* pid = rec.find("pid");
            if (cell_name.empty() || attempt == nullptr ||
                !attempt->isNumber() || attempt->num < 1 ||
                pid == nullptr || !pid->isNumber() || pid->num < 0) {
                complain(lineno, "running needs cell, attempt >= 1 and "
                                 "pid >= 0 (0 = in-process)");
                continue;
            }
            std::string& state = stateOf(cell_name);
            if (state != "planned" && state != "running") {
                complain(lineno,
                         "running without a preceding planned record");
            }
            state = "running";
        } else if (ev == "done" || ev == "failed") {
            const Value* attempts = rec.find("attempts");
            bool fields_ok = !cell_name.empty() && attempts != nullptr &&
                             attempts->isNumber() && attempts->num >= 1;
            if (ev == "done") {
                std::string u64;
                const Value* artifact = rec.find("artifact");
                fields_ok = fields_ok && artifact != nullptr &&
                            artifact->isString() &&
                            journalU64(rec, "bytes", &u64) &&
                            journalU64(rec, "digest", &u64);
            } else {
                const Value* error = rec.find("error");
                const Value* kind = rec.find("exit_kind");
                const Value* code = rec.find("exit_code");
                fields_ok =
                    fields_ok && error != nullptr && error->isString() &&
                    kind != nullptr && kind->isString() &&
                    (kind->str == "error" || kind->str == "exit" ||
                     kind->str == "signal" || kind->str == "timeout") &&
                    code != nullptr && code->isNumber();
            }
            if (!fields_ok) {
                complain(lineno, ev == "done"
                                     ? "incomplete done record (cell, "
                                       "attempts, artifact, bytes, "
                                       "digest)"
                                     : "incomplete failed record (cell, "
                                       "attempts, error, exit_kind, "
                                       "exit_code)");
                continue;
            }
            std::string& state = stateOf(cell_name);
            if (state != "running") {
                complain(lineno, ev == "done"
                                     ? "done without a running record"
                                     : "failed without a running record");
            }
            state = ev;
        } else if (ev == "resume_skip") {
            if (cell_name.empty()) {
                complain(lineno, "resume_skip without cell");
                continue;
            }
            std::string& state = stateOf(cell_name);
            if (state != "done" && state != "skipped") {
                complain(lineno, "resume_skip for a cell never recorded "
                                 "done");
            }
            state = "skipped";
        } else if (ev == "resume") {
            std::string u64;
            if (!journalU64(rec, "skipped", &u64) ||
                !journalU64(rec, "rerun", &u64))
                complain(lineno, "resume needs skipped and rerun");
        } else if (ev == "sweep_done") {
            std::string u64;
            if (!journalU64(rec, "ok", &u64) ||
                !journalU64(rec, "failed", &u64))
                complain(lineno, "sweep_done needs ok and failed");
            saw_sweep_done = true;
        } else {
            complain(lineno, ("unknown event '" + ev + "'").c_str());
        }
    }

    if (!saw_plan) {
        std::fprintf(stderr, "%s: no sweep_plan record\n", path);
        return 1;
    }

    std::size_t n_done = 0, n_failed = 0, n_skipped = 0, n_stale = 0;
    for (const auto& entry : cells) {
        if (entry.second == "done")
            ++n_done;
        else if (entry.second == "failed")
            ++n_failed;
        else if (entry.second == "skipped")
            ++n_skipped;
        else
            ++n_stale;
    }
    // A cell left planned/running means the sweep died and nothing
    // resumed it -- exactly what the journal exists to surface.
    for (const auto& entry : cells) {
        if (entry.second == "running" || entry.second == "planned") {
            std::fprintf(stderr,
                         "%s: cell '%s' left '%s' -- interrupted sweep "
                         "(resume it with --resume=%s)\n",
                         path, entry.first.c_str(),
                         entry.second.c_str(), path);
            ++bad;
        }
    }

    std::printf("%s: %zu record(s), figure %s, config digest %s\n",
                path, expected_seq, figure.c_str(), digest.c_str());
    std::printf("  cells: %zu planned, %zu done, %zu failed, "
                "%zu resume-skipped, %zu unfinished%s\n",
                planned_cells, n_done, n_failed, n_skipped, n_stale,
                saw_sweep_done ? "" : " (no sweep_done record)");
    return bad == 0 ? 0 : 1;
}

/** Keys dropped by the diff-run normalization, per enclosing object. */
void
normalizeErase(Value& obj, const char* const* keys, std::size_t n)
{
    if (!obj.isObject())
        return;
    for (std::size_t i = 0; i < obj.obj.size();) {
        bool drop = false;
        for (std::size_t k = 0; k < n; ++k)
            drop = drop || obj.obj[i].first == keys[k];
        if (drop)
            obj.obj.erase(obj.obj.begin() +
                          static_cast<std::ptrdiff_t>(i));
        else
            ++i;
    }
}

/**
 * Strip the fields of a run manifest that legitimately differ between
 * two runs of the same sweep configuration: host timing (wall seconds,
 * MIPS, speedup, profiler phases, stream encode/decode seconds) and
 * the resume block. Everything else -- results, series, verification,
 * statuses, stream byte/txn counts -- must match exactly.
 */
void
normalizeRun(Value& doc)
{
    static const char* kTop[] = {"resume"};
    static const char* kHost[] = {"sim_mips", "wall_seconds", "speedup",
                                  "phases"};
    static const char* kStream[] = {"seconds"};
    static const char* kWorkload[] = {"host_seconds", "sim_mips"};
    normalizeErase(doc, kTop, 1);
    for (auto& member : doc.obj) {
        if (member.first == "host") {
            normalizeErase(member.second, kHost, 4);
        } else if (member.first == "stream") {
            for (auto& sub : member.second.obj) {
                if (sub.first == "capture" || sub.first == "replay")
                    normalizeErase(sub.second, kStream, 1);
            }
        } else if (member.first == "workloads" &&
                   member.second.isArray()) {
            for (Value& w : member.second.arr)
                normalizeErase(w, kWorkload, 2);
        }
    }
}

/** Render a scalar Value for a diff message. */
std::string
briefValue(const Value& v)
{
    switch (v.type) {
      case Value::Type::Null: return "null";
      case Value::Type::Bool: return v.boolean ? "true" : "false";
      case Value::Type::Number: return obs::json::number(v.num);
      case Value::Type::String: return "\"" + v.str + "\"";
      case Value::Type::Array:
        return "[" + std::to_string(v.arr.size()) + " elements]";
      case Value::Type::Object:
        return "{" + std::to_string(v.obj.size()) + " members}";
    }
    return "?";
}

/** Structural comparison; reports every mismatch with its JSON path. */
void
diffValues(const std::string& where, const Value& a, const Value& b,
           int* bad)
{
    if (a.type != b.type) {
        std::fprintf(stderr, "  %s: %s vs %s\n", where.c_str(),
                     briefValue(a).c_str(), briefValue(b).c_str());
        ++*bad;
        return;
    }
    switch (a.type) {
      case Value::Type::Array:
        if (a.arr.size() != b.arr.size()) {
            std::fprintf(stderr, "  %s: %zu vs %zu elements\n",
                         where.c_str(), a.arr.size(), b.arr.size());
            ++*bad;
            return;
        }
        for (std::size_t i = 0; i < a.arr.size(); ++i) {
            diffValues(where + "[" + std::to_string(i) + "]", a.arr[i],
                       b.arr[i], bad);
        }
        return;
      case Value::Type::Object: {
        // Key order is part of the serialization; our own exporter is
        // deterministic, so compare in order.
        if (a.obj.size() != b.obj.size()) {
            std::fprintf(stderr, "  %s: %zu vs %zu members\n",
                         where.c_str(), a.obj.size(), b.obj.size());
            ++*bad;
            return;
        }
        for (std::size_t i = 0; i < a.obj.size(); ++i) {
            if (a.obj[i].first != b.obj[i].first) {
                std::fprintf(stderr, "  %s: key '%s' vs '%s'\n",
                             where.c_str(), a.obj[i].first.c_str(),
                             b.obj[i].first.c_str());
                ++*bad;
                continue;
            }
            diffValues(where + "." + a.obj[i].first, a.obj[i].second,
                       b.obj[i].second, bad);
        }
        return;
      }
      default:
        if (a.boolean != b.boolean || a.num != b.num || a.str != b.str) {
            std::fprintf(stderr, "  %s: %s vs %s\n", where.c_str(),
                         briefValue(a).c_str(), briefValue(b).c_str());
            ++*bad;
        }
        return;
    }
}

/**
 * Compare two run manifests after normalization (see normalizeRun):
 * the crash-and-resume CI gate uses this to assert a resumed sweep
 * reproduced its uninterrupted baseline exactly, host timing aside.
 */
int
inspectDiffRun(const char* path_a, const char* path_b)
{
    Value docs[2];
    const char* paths[2] = {path_a, path_b};
    for (int i = 0; i < 2; ++i) {
        bool ok = false;
        const std::string text = readAll(paths[i], &ok);
        if (!ok)
            return 1;
        std::string error;
        if (!obs::json::parse(text, docs[i], &error)) {
            std::fprintf(stderr, "cosim_inspect: %s: %s\n", paths[i],
                         error.c_str());
            return 1;
        }
        normalizeRun(docs[i]);
    }
    int bad = 0;
    diffValues("run", docs[0], docs[1], &bad);
    if (bad != 0) {
        std::fprintf(stderr,
                     "diff-run: %d difference(s) between %s and %s "
                     "(host timing and resume fields already "
                     "ignored)\n",
                     bad, path_a, path_b);
        return 1;
    }
    std::printf("diff-run: %s and %s describe the same run (host "
                "timing aside)\n",
                path_a, path_b);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc == 3) {
        const std::string cmd = argv[1];
        if (cmd == "progress")
            return inspectProgress(argv[2]);
        if (cmd == "metrics")
            return inspectMetrics(argv[2]);
        if (cmd == "postmortem")
            return inspectPostmortem(argv[2]);
        if (cmd == "plan")
            return inspectPlan(argv[2]);
        if (cmd == "journal")
            return inspectJournal(argv[2]);
    }
    if (argc == 4 && std::string(argv[1]) == "diff-run")
        return inspectDiffRun(argv[2], argv[3]);
    if (argc >= 4 && argc <= 6) {
        const std::string cmd = argv[1];
        if (cmd == "sampling") {
            const char* baseline = nullptr;
            double min_speedup = 0.0;
            bool args_ok = true;
            for (int i = 4; i < argc; ++i) {
                const std::string arg = argv[i];
                const std::string flag = "--min-speedup=";
                if (arg.compare(0, flag.size(), flag) == 0) {
                    min_speedup =
                        std::strtod(arg.c_str() + flag.size(), nullptr);
                    if (min_speedup <= 0.0) {
                        std::fprintf(stderr,
                                     "cosim_inspect: bad %s\n",
                                     arg.c_str());
                        args_ok = false;
                    }
                } else if (baseline == nullptr) {
                    baseline = argv[i];
                } else {
                    args_ok = false;
                }
            }
            if (args_ok) {
                return inspectSampling(argv[2], argv[3], baseline,
                                       min_speedup);
            }
        }
    }
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: cosim_inspect <run.json>\n"
                     "       cosim_inspect progress <file.jsonl>\n"
                     "       cosim_inspect metrics <file.om>\n"
                     "       cosim_inspect postmortem <file.json>\n"
                     "       cosim_inspect plan <file.plan.json>\n"
                     "       cosim_inspect journal <sweep.journal."
                     "jsonl>\n"
                     "       cosim_inspect diff-run <run.json> "
                     "<run.json>\n"
                     "       cosim_inspect sampling <run.json> "
                     "<tolerances.json> [baseline run.json]\n"
                     "                     [--min-speedup=<x>]\n");
        return 2;
    }

    bool read_ok = false;
    const std::string text = readAll(argv[1], &read_ok);
    if (!read_ok)
        return 1;

    Value doc;
    std::string error;
    if (!obs::json::parse(text, doc, &error)) {
        std::fprintf(stderr, "cosim_inspect: %s: %s\n", argv[1],
                     error.c_str());
        return 1;
    }

    std::string schema = stringOr(doc.find("schema"), "?");
    if (schema != obs::kManifestSchema) {
        std::fprintf(stderr,
                     "warn: schema '%s' (this tool understands '%s'); "
                     "printing anyway\n",
                     schema.c_str(), obs::kManifestSchema);
    }

    const Value* platform = doc.find("platform");
    const Value* config = doc.find("config");
    std::printf("%s\n", stringOr(doc.find("figure"), "(unnamed run)")
                            .c_str());
    std::printf("  revision %s, platform %s (%g cores), scale %g, "
                "seed %g\n",
                stringOr(doc.find("git"), "?").c_str(),
                platform ? stringOr(platform->find("name"), "?").c_str()
                         : "?",
                platform ? numberOr(platform->find("cores"), 0) : 0,
                config ? numberOr(config->find("scale"), 0) : 0,
                config ? numberOr(config->find("seed"), 0) : 0);

    if (config != nullptr) {
        const Value* ticks = config->find("ticks");
        if (ticks != nullptr && ticks->isArray()) {
            std::printf("  sweep:");
            for (const Value& t : ticks->arr)
                std::printf(" %s", t.isString() ? t.str.c_str() : "?");
            std::printf("\n");
        }
    }

    const Value* host = doc.find("host");
    if (host != nullptr) {
        std::printf("  host: %.1f simulated MIPS overall\n",
                    numberOr(host->find("sim_mips"), 0.0));
        const Value* phases = host->find("phases");
        if (phases != nullptr && phases->isArray()) {
            for (const Value& p : phases->arr) {
                std::printf("    %-16s %8.3fs  %6.0f calls\n",
                            stringOr(p.find("name"), "?").c_str(),
                            numberOr(p.find("seconds"), 0.0),
                            numberOr(p.find("calls"), 0.0));
            }
        }
    }

    const Value* stream = doc.find("stream");
    if (stream != nullptr) {
        const Value* capture = stream->find("capture");
        const Value* replay = stream->find("replay");
        std::printf("  cells: %s, %g guest execution(s)\n",
                    stringOr(stream->find("cells"), "combined").c_str(),
                    numberOr(stream->find("guest_executions"), 0.0));
        if (capture != nullptr &&
            numberOr(capture->find("txns"), 0.0) > 0.0) {
            std::printf("  capture: %.0f txns, %.0f bytes, %.3fs "
                        "encoding\n",
                        numberOr(capture->find("txns"), 0.0),
                        numberOr(capture->find("bytes"), 0.0),
                        numberOr(capture->find("seconds"), 0.0));
        }
        if (replay != nullptr &&
            numberOr(replay->find("txns"), 0.0) > 0.0) {
            std::printf("  replay: %.0f txns, %.0f bytes, %.3fs\n",
                        numberOr(replay->find("txns"), 0.0),
                        numberOr(replay->find("bytes"), 0.0),
                        numberOr(replay->find("seconds"), 0.0));
        }
    }

    const Value* workloads = doc.find("workloads");
    if (workloads == nullptr || !workloads->isArray() ||
        workloads->arr.empty()) {
        std::printf("  (no workload entries)\n");
        return 0;
    }

    std::printf("\n  %-10s %10s %9s %7s %5s  mpki per config\n",
                "workload", "insts", "host(s)", "MIPS", "ok?");
    for (const Value& w : workloads->arr) {
        std::string line;
        for (double m : numberList(w.find("mpki_per_config"))) {
            char cell[16];
            std::snprintf(cell, sizeof(cell), " %.2f", m);
            line += cell;
        }
        const Value* verified = w.find("verified");
        std::printf("  %-10s %9.1fM %9.2f %7.1f %5s %s\n",
                    stringOr(w.find("name"), "?").c_str(),
                    numberOr(w.find("insts"), 0.0) / 1e6,
                    numberOr(w.find("host_seconds"), 0.0),
                    numberOr(w.find("sim_mips"), 0.0),
                    verified && verified->isBool()
                        ? (verified->boolean ? "yes" : "NO")
                        : "?",
                    line.c_str());
        std::string replayed = stringOr(w.find("replayed_from"), "");
        if (!replayed.empty())
            std::printf("  %-10s replayed from %s\n", "",
                        replayed.c_str());
    }

    std::printf("\n  500us MPKI series (first config):\n");
    for (const Value& w : workloads->arr) {
        const Value* series = w.find("mpki_series");
        std::vector<double> mpki =
            series ? numberList(series->find("mpki"))
                   : std::vector<double>();
        if (mpki.empty()) {
            std::printf("    %-10s (none)\n",
                        stringOr(w.find("name"), "?").c_str());
            continue;
        }
        double peak = *std::max_element(mpki.begin(), mpki.end());
        std::printf("    %-10s %s peak %.2f (%zu windows)\n",
                    stringOr(w.find("name"), "?").c_str(),
                    sparkline(mpki, 48).c_str(), peak, mpki.size());
    }
    return 0;
}
