/**
 * @file
 * cosim-inspect: pretty-print a run manifest.
 *
 * Every sweep run writes a machine-readable `run.json` next to its
 * figure CSVs (configuration, source revision, per-workload results,
 * the CB 500 us MPKI series, host timing). This tool renders one for
 * humans: a summary header, a per-workload table, and a sparkline of
 * each workload's MPKI series.
 *
 * Usage: cosim_inspect <run.json>
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/run_manifest.hh"

using namespace cosim;
using obs::json::Value;

namespace {

double
numberOr(const Value* v, double fallback)
{
    return v != nullptr && v->isNumber() ? v->num : fallback;
}

std::string
stringOr(const Value* v, const std::string& fallback)
{
    return v != nullptr && v->isString() ? v->str : fallback;
}

std::string
sparkline(const std::vector<double>& values, std::size_t width)
{
    static const char* levels[] = {"▁", "▂", "▃",
                                   "▄", "▅", "▆",
                                   "▇", "█"};
    double max_v = 0.0;
    for (double v : values)
        max_v = std::max(max_v, v);
    if (max_v <= 0.0 || values.empty())
        return std::string();

    std::string out;
    std::size_t n = std::min(width, values.size());
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t lo = col * values.size() / n;
        std::size_t hi = std::max(lo + 1, (col + 1) * values.size() / n);
        double sum = 0.0;
        for (std::size_t k = lo; k < hi && k < values.size(); ++k)
            sum += values[k];
        double v = sum / static_cast<double>(hi - lo);
        auto idx = static_cast<std::size_t>(7.0 * v / max_v);
        out += levels[std::min<std::size_t>(idx, 7)];
    }
    return out;
}

std::vector<double>
numberList(const Value* v)
{
    std::vector<double> out;
    if (v == nullptr || !v->isArray())
        return out;
    for (const Value& e : v->arr) {
        if (e.isNumber())
            out.push_back(e.num);
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: cosim_inspect <run.json>\n");
        return 2;
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "cosim_inspect: cannot open '%s'\n",
                     argv[1]);
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Value doc;
    std::string error;
    if (!obs::json::parse(buf.str(), doc, &error)) {
        std::fprintf(stderr, "cosim_inspect: %s: %s\n", argv[1],
                     error.c_str());
        return 1;
    }

    std::string schema = stringOr(doc.find("schema"), "?");
    if (schema != obs::kManifestSchema) {
        std::fprintf(stderr,
                     "warn: schema '%s' (this tool understands '%s'); "
                     "printing anyway\n",
                     schema.c_str(), obs::kManifestSchema);
    }

    const Value* platform = doc.find("platform");
    const Value* config = doc.find("config");
    std::printf("%s\n", stringOr(doc.find("figure"), "(unnamed run)")
                            .c_str());
    std::printf("  revision %s, platform %s (%g cores), scale %g, "
                "seed %g\n",
                stringOr(doc.find("git"), "?").c_str(),
                platform ? stringOr(platform->find("name"), "?").c_str()
                         : "?",
                platform ? numberOr(platform->find("cores"), 0) : 0,
                config ? numberOr(config->find("scale"), 0) : 0,
                config ? numberOr(config->find("seed"), 0) : 0);

    if (config != nullptr) {
        const Value* ticks = config->find("ticks");
        if (ticks != nullptr && ticks->isArray()) {
            std::printf("  sweep:");
            for (const Value& t : ticks->arr)
                std::printf(" %s", t.isString() ? t.str.c_str() : "?");
            std::printf("\n");
        }
    }

    const Value* host = doc.find("host");
    if (host != nullptr) {
        std::printf("  host: %.1f simulated MIPS overall\n",
                    numberOr(host->find("sim_mips"), 0.0));
        const Value* phases = host->find("phases");
        if (phases != nullptr && phases->isArray()) {
            for (const Value& p : phases->arr) {
                std::printf("    %-16s %8.3fs  %6.0f calls\n",
                            stringOr(p.find("name"), "?").c_str(),
                            numberOr(p.find("seconds"), 0.0),
                            numberOr(p.find("calls"), 0.0));
            }
        }
    }

    const Value* stream = doc.find("stream");
    if (stream != nullptr) {
        const Value* capture = stream->find("capture");
        const Value* replay = stream->find("replay");
        std::printf("  cells: %s, %g guest execution(s)\n",
                    stringOr(stream->find("cells"), "combined").c_str(),
                    numberOr(stream->find("guest_executions"), 0.0));
        if (capture != nullptr &&
            numberOr(capture->find("txns"), 0.0) > 0.0) {
            std::printf("  capture: %.0f txns, %.0f bytes, %.3fs "
                        "encoding\n",
                        numberOr(capture->find("txns"), 0.0),
                        numberOr(capture->find("bytes"), 0.0),
                        numberOr(capture->find("seconds"), 0.0));
        }
        if (replay != nullptr &&
            numberOr(replay->find("txns"), 0.0) > 0.0) {
            std::printf("  replay: %.0f txns, %.0f bytes, %.3fs\n",
                        numberOr(replay->find("txns"), 0.0),
                        numberOr(replay->find("bytes"), 0.0),
                        numberOr(replay->find("seconds"), 0.0));
        }
    }

    const Value* workloads = doc.find("workloads");
    if (workloads == nullptr || !workloads->isArray() ||
        workloads->arr.empty()) {
        std::printf("  (no workload entries)\n");
        return 0;
    }

    std::printf("\n  %-10s %10s %9s %7s %5s  mpki per config\n",
                "workload", "insts", "host(s)", "MIPS", "ok?");
    for (const Value& w : workloads->arr) {
        std::string line;
        for (double m : numberList(w.find("mpki_per_config"))) {
            char cell[16];
            std::snprintf(cell, sizeof(cell), " %.2f", m);
            line += cell;
        }
        const Value* verified = w.find("verified");
        std::printf("  %-10s %9.1fM %9.2f %7.1f %5s %s\n",
                    stringOr(w.find("name"), "?").c_str(),
                    numberOr(w.find("insts"), 0.0) / 1e6,
                    numberOr(w.find("host_seconds"), 0.0),
                    numberOr(w.find("sim_mips"), 0.0),
                    verified && verified->isBool()
                        ? (verified->boolean ? "yes" : "NO")
                        : "?",
                    line.c_str());
        std::string replayed = stringOr(w.find("replayed_from"), "");
        if (!replayed.empty())
            std::printf("  %-10s replayed from %s\n", "",
                        replayed.c_str());
    }

    std::printf("\n  500us MPKI series (first config):\n");
    for (const Value& w : workloads->arr) {
        const Value* series = w.find("mpki_series");
        std::vector<double> mpki =
            series ? numberList(series->find("mpki"))
                   : std::vector<double>();
        if (mpki.empty()) {
            std::printf("    %-10s (none)\n",
                        stringOr(w.find("name"), "?").c_str());
            continue;
        }
        double peak = *std::max_element(mpki.begin(), mpki.end());
        std::printf("    %-10s %s peak %.2f (%zu windows)\n",
                    stringOr(w.find("name"), "?").c_str(),
                    sparkline(mpki, 48).c_str(), peak, mpki.size());
    }
    return 0;
}
