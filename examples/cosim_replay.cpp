/**
 * @file
 * cosim-replay: work with recorded FSB streams and their golden digests.
 *
 * The sweep benches record front-side-bus streams (--capture) and
 * per-workload stream digests (--digest); this tool is everything CI and
 * humans need around those artifacts:
 *
 *   info <stream.fsb>...           validate streams, print their headers
 *   digest <stream.fsb>...         print a digest manifest for streams
 *   diff <a.fsb> <b.fsb>           first-divergence comparison
 *   replay <stream.fsb>            feed a stream through one emulated
 *                                  LLC (--llc-mb=N, --line=N) and print
 *                                  its results
 *   check-golden <golden> <fresh>  compare digest manifests; explains
 *                                  how to regenerate on mismatch
 *   update-golden <golden> <fresh> install a fresh manifest as golden
 *   compare-mips <fresh> <base>    compare BENCH_mips.json files
 *                                  (serial, parallel and sampled-replay
 *                                  throughput); exit 3 when sim MIPS
 *                                  regressed > threshold (default 15%)
 *
 * Exit codes: 0 success, 1 mismatch/corruption, 2 usage, 3 performance
 * regression (compare-mips only).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/atomic_file.hh"
#include "base/str.hh"
#include "base/units.hh"
#include "core/experiment.hh"
#include "obs/json.hh"
#include "trace/fsb_capture.hh"
#include "trace/fsb_replay.hh"

using namespace cosim;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: cosim_replay <command> [args]\n"
        "  info <stream.fsb>...            validate + print stream headers\n"
        "  digest <stream.fsb>...          print a digest manifest\n"
        "  diff <a.fsb> <b.fsb>            compare two streams\n"
        "  replay <stream.fsb> [--llc-mb=<n>] [--line=<bytes>]\n"
        "                                  replay through one emulated LLC\n"
        "  check-golden <golden.digest> <fresh.digest>\n"
        "                                  gate fresh digests against golden\n"
        "  update-golden <golden.digest> <fresh.digest>\n"
        "                                  install fresh digests as golden\n"
        "  compare-mips <fresh.json> <baseline.json> [--max-regress=<frac>]\n"
        "                                  gate BENCH_mips.json throughput\n"
        "                                  (default threshold 0.15)\n");
    return 2;
}

int
cmdInfo(const std::vector<std::string>& files)
{
    int rc = 0;
    for (const std::string& path : files) {
        FsbStreamInfo info;
        std::string error;
        if (!probeFsbStream(path, info, &error)) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
            rc = 1;
            continue;
        }
        std::printf("%s\n", path.c_str());
        std::printf("  workload %s on %s (%u cores), scale %g, seed %llu\n",
                    info.meta.workload.c_str(), info.meta.platform.c_str(),
                    info.meta.nCores, info.meta.scale,
                    static_cast<unsigned long long>(info.meta.seed));
        std::printf("  captured run: %llu insts, verified=%s\n",
                    static_cast<unsigned long long>(info.meta.totalInsts),
                    info.meta.verified ? "yes" : "NO");
        std::printf("  %llu txns in %llu bytes (%.2f bytes/txn), digest "
                    "%s\n",
                    static_cast<unsigned long long>(info.txns),
                    static_cast<unsigned long long>(info.fileBytes),
                    info.txns > 0 ? static_cast<double>(info.fileBytes) /
                                        static_cast<double>(info.txns)
                                  : 0.0,
                    formatFsbDigest(info.digest).c_str());
    }
    return rc;
}

int
cmdDigest(const std::vector<std::string>& files)
{
    DigestManifest manifest;
    for (const std::string& path : files) {
        FsbStreamInfo info;
        std::string error;
        if (!probeFsbStream(path, info, &error)) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
            return 1;
        }
        manifest.add(info.meta.workload, info.txns, info.digest);
    }
    std::fputs(manifest.toText().c_str(), stdout);
    return 0;
}

int
cmdDiff(const std::string& a_path, const std::string& b_path)
{
    std::vector<BusTransaction> a, b;
    FsbStreamMeta a_meta, b_meta;
    std::string error;
    if (!loadFsbStream(a_path, a, a_meta, &error)) {
        std::fprintf(stderr, "%s: %s\n", a_path.c_str(), error.c_str());
        return 1;
    }
    if (!loadFsbStream(b_path, b, b_meta, &error)) {
        std::fprintf(stderr, "%s: %s\n", b_path.c_str(), error.c_str());
        return 1;
    }

    if (a_meta.workload != b_meta.workload) {
        std::printf("headers differ: workload '%s' vs '%s'\n",
                    a_meta.workload.c_str(), b_meta.workload.c_str());
    }
    std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        const BusTransaction& ta = a[i];
        const BusTransaction& tb = b[i];
        if (ta.addr == tb.addr && ta.size == tb.size &&
            ta.kind == tb.kind && ta.core == tb.core) {
            continue;
        }
        std::printf("streams diverge at txn %zu:\n"
                    "  %s: addr=0x%llx size=%u kind=%u core=%u\n"
                    "  %s: addr=0x%llx size=%u kind=%u core=%u\n",
                    i, a_path.c_str(),
                    static_cast<unsigned long long>(ta.addr), ta.size,
                    static_cast<unsigned>(ta.kind), ta.core,
                    b_path.c_str(),
                    static_cast<unsigned long long>(tb.addr), tb.size,
                    static_cast<unsigned>(tb.kind), tb.core);
        return 1;
    }
    if (a.size() != b.size()) {
        std::printf("streams diverge: %zu vs %zu txns (identical common "
                    "prefix)\n", a.size(), b.size());
        return 1;
    }
    std::printf("streams identical: %zu txns\n", a.size());
    return 0;
}

int
cmdReplay(const std::vector<std::string>& args)
{
    std::string path;
    std::uint64_t llc_mb = 32;
    std::uint32_t line = 64;
    for (const std::string& arg : args) {
        if (startsWith(arg, "--llc-mb=")) {
            llc_mb = std::strtoull(arg.c_str() + 9, nullptr, 10);
        } else if (startsWith(arg, "--line=")) {
            line = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
        } else if (!startsWith(arg, "--") && path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty() || llc_mb == 0 || line == 0)
        return usage();

    Dragonhead emulator(presets::llcConfig(llc_mb << 20, line));
    FrontSideBus bus;
    bus.attach(&emulator);

    ReplayDriver driver;
    ReplayResult rr = driver.replayFile(path, bus);
    if (!rr.ok) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), rr.error.c_str());
        return 1;
    }

    LlcResults llc = emulator.results();
    std::printf("%s: workload %s, %llu txns in %llu chunks, digest %s\n",
                path.c_str(), rr.meta.workload.c_str(),
                static_cast<unsigned long long>(rr.txns),
                static_cast<unsigned long long>(rr.chunks),
                formatFsbDigest(rr.digest).c_str());
    std::printf("  replayed in %.3fs (%.1f Mtxn/s)\n", rr.seconds,
                rr.seconds > 0.0
                    ? static_cast<double>(rr.txns) / 1e6 / rr.seconds
                    : 0.0);
    std::printf("  %s LLC, %s lines: %llu accesses, %llu misses, "
                "MPKI %.3f\n",
                formatSize(llc_mb << 20).c_str(),
                formatSize(line).c_str(),
                static_cast<unsigned long long>(llc.accesses),
                static_cast<unsigned long long>(llc.misses), llc.mpki());
    return 0;
}

int
cmdCheckGolden(const std::string& golden_path, const std::string& fresh_path)
{
    DigestManifest golden, fresh;
    std::string error;
    if (!DigestManifest::load(golden_path, golden, &error)) {
        std::fprintf(stderr, "%s: %s\n", golden_path.c_str(),
                     error.c_str());
        return 1;
    }
    if (!DigestManifest::load(fresh_path, fresh, &error)) {
        std::fprintf(stderr, "%s: %s\n", fresh_path.c_str(),
                     error.c_str());
        return 1;
    }

    std::string report;
    if (DigestManifest::compare(golden, fresh, report)) {
        std::printf("golden digests match (%zu workloads): %s\n",
                    golden.entries.size(), golden_path.c_str());
        return 0;
    }
    std::fprintf(
        stderr,
        "golden FSB stream digests changed (%s):\n%s\n"
        "The bus transaction stream is not what the committed baseline "
        "recorded.\nIf this is an unintended behaviour change, fix it. "
        "If the change is\nintentional (workload, cache or bus behaviour "
        "updated on purpose),\nregenerate the baseline and commit it:\n"
        "    <bench> --quick --digest=fresh.digest\n"
        "    cosim_replay update-golden %s fresh.digest\n",
        golden_path.c_str(), report.c_str(), golden_path.c_str());
    return 1;
}

int
cmdUpdateGolden(const std::string& golden_path,
                const std::string& fresh_path)
{
    DigestManifest fresh;
    std::string error;
    if (!DigestManifest::load(fresh_path, fresh, &error)) {
        std::fprintf(stderr, "%s: %s\n", fresh_path.c_str(),
                     error.c_str());
        return 1;
    }
    try {
        fresh.writeFile(golden_path);
    } catch (const IoError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    std::printf("updated %s (%zu workloads)\n", golden_path.c_str(),
                fresh.entries.size());
    return 0;
}

/** Pull "<section>.sim_mips" out of a BENCH_mips.json document. */
bool
benchMips(const obs::json::Value& doc, const char* section, double& out)
{
    const obs::json::Value* s = doc.find(section);
    if (s == nullptr)
        return false;
    const obs::json::Value* v = s->find("sim_mips");
    if (v == nullptr || !v->isNumber())
        return false;
    out = v->num;
    return true;
}

bool
loadJson(const std::string& path, obs::json::Value& doc)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!obs::json::parse(buf.str(), doc, &error)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
        return false;
    }
    return true;
}

int
cmdCompareMips(const std::vector<std::string>& args)
{
    std::string fresh_path, base_path;
    double max_regress = 0.15;
    for (const std::string& arg : args) {
        if (startsWith(arg, "--max-regress=")) {
            max_regress = std::strtod(arg.c_str() + 14, nullptr);
        } else if (!startsWith(arg, "--") && fresh_path.empty()) {
            fresh_path = arg;
        } else if (!startsWith(arg, "--") && base_path.empty()) {
            base_path = arg;
        } else {
            return usage();
        }
    }
    if (fresh_path.empty() || base_path.empty())
        return usage();

    obs::json::Value fresh, base;
    if (!loadJson(fresh_path, fresh) || !loadJson(base_path, base))
        return 1;

    int rc = 0;
    for (const char* section : {"serial", "parallel", "sampled"}) {
        double f = 0.0, b = 0.0;
        if (!benchMips(fresh, section, f) ||
            !benchMips(base, section, b) || b <= 0.0) {
            std::printf("%-8s (no comparable sim_mips)\n", section);
            continue;
        }
        double change = (f - b) / b;
        std::printf("%-8s %8.1f MIPS vs baseline %8.1f  (%+.1f%%)\n",
                    section, f, b, 100.0 * change);
        if (change < -max_regress) {
            std::fprintf(stderr,
                         "%s sim MIPS regressed %.1f%% against %s "
                         "(threshold %.0f%%)\n",
                         section, -100.0 * change, base_path.c_str(),
                         100.0 * max_regress);
            rc = 3;
        }
    }
    return rc;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    if (cmd == "info" && !args.empty())
        return cmdInfo(args);
    if (cmd == "digest" && !args.empty())
        return cmdDigest(args);
    if (cmd == "diff" && args.size() == 2)
        return cmdDiff(args[0], args[1]);
    if (cmd == "replay" && !args.empty())
        return cmdReplay(args);
    if (cmd == "check-golden" && args.size() == 2)
        return cmdCheckGolden(args[0], args[1]);
    if (cmd == "update-golden" && args.size() == 2)
        return cmdUpdateGolden(args[0], args[1]);
    if (cmd == "compare-mips" && args.size() >= 2)
        return cmdCompareMips(args);
    return usage();
}
