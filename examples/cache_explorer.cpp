/**
 * @file
 * Cache design-space explorer: run any workload on any CMP scale against
 * a custom set of LLC configurations, all emulated simultaneously from
 * one execution.
 *
 * Usage:
 *   cache_explorer [--workload=FIMI] [--cores=8] [--scale=0.2]
 *                  [--line=64] [--assoc=16] [--repl=lru]
 *                  [--sizes=4MB,16MB,64MB]
 */

#include <cstdio>
#include <cstdlib>

#include "base/str.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    std::string workload_name = "FIMI";
    unsigned cores = 8;
    double scale = 0.2;
    std::uint32_t line = 64;
    std::uint32_t assoc = 16;
    ReplPolicy repl = ReplPolicy::LRU;
    std::vector<std::uint64_t> sizes = {4 * MiB, 16 * MiB, 64 * MiB};

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (startsWith(arg, "--workload="))
            workload_name = arg.substr(11);
        else if (startsWith(arg, "--cores="))
            cores = static_cast<unsigned>(std::atoi(arg.c_str() + 8));
        else if (startsWith(arg, "--scale="))
            scale = std::strtod(arg.c_str() + 8, nullptr);
        else if (startsWith(arg, "--line="))
            line = static_cast<std::uint32_t>(std::atoi(arg.c_str() + 7));
        else if (startsWith(arg, "--assoc="))
            assoc = static_cast<std::uint32_t>(std::atoi(arg.c_str() + 8));
        else if (startsWith(arg, "--repl="))
            repl = parseReplPolicy(arg.substr(7));
        else if (startsWith(arg, "--sizes=")) {
            sizes.clear();
            for (const std::string& s : split(arg.substr(8), ','))
                sizes.push_back(parseSize(trim(s)));
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 1;
        }
    }

    CoSimParams params;
    params.platform = presets::cmpPlatform("explorer", cores);
    for (std::uint64_t size : sizes) {
        DragonheadParams dh = presets::llcConfig(size, line);
        dh.llc.assoc = assoc;
        dh.llc.repl = repl;
        params.emulators.push_back(dh);
    }
    CoSimulation cosim(params);

    auto workload = createWorkload(workload_name, scale);
    WorkloadConfig cfg;
    cfg.nThreads = cores;
    cfg.scale = scale;

    std::printf("running %s on %u cores (scale %.3g), %zu LLC configs, "
                "%u-way %s, %uB lines...\n",
                workload->name().c_str(), cores, scale, sizes.size(),
                assoc, toString(repl), line);
    RunResult r = cosim.run(*workload, cfg);

    TableWriter table("LLC design points -- one execution, emulated "
                      "simultaneously");
    table.setHeader({"LLC size", "accesses", "misses", "miss rate",
                     "MPKI"});
    for (unsigned e = 0; e < cosim.nEmulators(); ++e) {
        LlcResults llc = cosim.emulator(e).results();
        table.addRow({formatSize(sizes[e]),
                      std::to_string(llc.accesses),
                      std::to_string(llc.misses),
                      formatFixed(100.0 * llc.missRate(), 2) + "%",
                      formatFixed(llc.mpki(), 3)});
    }
    std::printf("\n%s\n", table.renderAscii().c_str());
    std::printf("%.1f M instructions, %.1f MIPS, verified=%s\n",
                static_cast<double>(r.totalInsts) / 1e6, r.simMips(),
                r.verified ? "yes" : "NO");
    return 0;
}
