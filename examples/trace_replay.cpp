/**
 * @file
 * Trace capture and offline replay: record the regulated bus stream of
 * a live co-simulation once, persist it, then replay slices of it
 * against new cache configurations without re-running the workload --
 * the "choose representative regions for detailed simulation" use the
 * paper motivates.
 *
 * Usage: trace_replay [workload] [scale]     (default PLSA 0.2)
 */

#include <cstdio>
#include <cstdlib>

#include "base/str.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "trace/trace.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    std::string name = argc > 1 ? argv[1] : "PLSA";
    double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.2;
    std::string path = "/tmp/cosim_example_trace.bin";

    // --- capture ---
    CoSimParams params;
    params.platform = presets::scmp();
    CoSimulation cosim(params); // no emulators; we only capture
    TraceCapture capture;
    cosim.platform().fsb().attach(&capture);

    auto workload = createWorkload(name, scale);
    WorkloadConfig cfg;
    cfg.nThreads = 8;
    cfg.scale = scale;
    RunResult r = cosim.run(*workload, cfg);
    cosim.platform().fsb().detach(&capture);

    capture.save(path);
    std::printf("captured %zu bus transactions from a %s run "
                "(%.1fM insts) -> %s\n", capture.records().size(),
                workload->name().c_str(),
                static_cast<double>(r.totalInsts) / 1e6, path.c_str());

    // --- offline replay against three LLC configurations ---
    auto records = loadTrace(path);
    TableWriter table("offline replay of the captured stream");
    table.setHeader({"LLC", "region", "accesses", "misses", "miss rate"});

    for (std::uint64_t mb : {2, 8, 32}) {
        // Whole trace...
        Dragonhead full(presets::llcConfig(mb * MiB, 64));
        replayTrace(records, full);
        LlcResults lr = full.results();
        table.addRow({formatSize(mb * MiB), "full",
                      std::to_string(lr.accesses),
                      std::to_string(lr.misses),
                      formatFixed(100.0 * lr.missRate(), 2) + "%"});

        // ...and just a representative middle slice.
        Dragonhead slice(presets::llcConfig(mb * MiB, 64));
        // Slices keep the leading Start/SetCoreId messages meaningful by
        // replaying from the beginning but only a third of the records.
        replayTrace(records, slice, 0, records.size() / 3);
        LlcResults sr = slice.results();
        table.addRow({formatSize(mb * MiB), "first 1/3",
                      std::to_string(sr.accesses),
                      std::to_string(sr.misses),
                      formatFixed(100.0 * sr.missRate(), 2) + "%"});
    }
    std::printf("\n%s\n", table.renderAscii().c_str());
    std::remove(path.c_str());
    return 0;
}
