/**
 * @file
 * Phase viewer: what run-to-completion co-simulation buys you.
 *
 * Section 1 argues that simulating applications to completion "supports
 * changing application phase behavior and also helps choose
 * representative regions". This example runs a workload end to end and
 * renders the Dragonhead control block's live 500 us sample series --
 * the real-time MPKI the host computer polled off the board -- three
 * ways: a one-line sparkline, an ASCII strip chart, and (optionally) a
 * CSV of the raw windows for external plotting.
 *
 * Usage: phase_viewer [workload] [scale] [--csv=<file>]
 *        (default FIMI 0.2)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/csv.hh"
#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

namespace {

/** Compress the full series into a width-character unicode sparkline. */
std::string
sparkline(const std::vector<Sample>& samples, std::size_t width)
{
    static const char* levels[] = {"▁", "▂", "▃",
                                   "▄", "▅", "▆",
                                   "▇", "█"};
    double max_mpki = 0.0;
    for (const Sample& s : samples)
        max_mpki = std::max(max_mpki, s.mpki());
    if (max_mpki <= 0.0)
        return std::string();

    std::string out;
    std::size_t n = std::min(width, samples.size());
    for (std::size_t col = 0; col < n; ++col) {
        // Average the windows that map onto this column.
        std::size_t lo = col * samples.size() / n;
        std::size_t hi = std::max(lo + 1, (col + 1) * samples.size() / n);
        InstCount insts = 0;
        std::uint64_t misses = 0;
        for (std::size_t k = lo; k < hi && k < samples.size(); ++k) {
            insts += samples[k].insts;
            misses += samples[k].misses;
        }
        double mpki = insts ? 1000.0 * static_cast<double>(misses) /
                                  static_cast<double>(insts)
                            : 0.0;
        auto idx = static_cast<std::size_t>(7.0 * mpki / max_mpki);
        out += levels[std::min<std::size_t>(idx, 7)];
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string name = "FIMI";
    double scale = 0.2;
    std::string csv_path;

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--csv=", 0) == 0) {
            csv_path = arg.substr(6);
        } else if (positional == 0) {
            name = arg;
            ++positional;
        } else {
            scale = std::strtod(arg.c_str(), nullptr);
            ++positional;
        }
    }

    CoSimParams params;
    params.platform = presets::scmp();
    params.emulators.push_back(presets::llcConfig(8 * MiB, 64));
    CoSimulation cosim(params);

    auto workload = createWorkload(name, scale);
    WorkloadConfig cfg;
    cfg.nThreads = 8;
    cfg.scale = scale;
    std::printf("running %s to completion on SCMP (8MB LLC)...\n\n",
                workload->name().c_str());
    RunResult r = cosim.run(*workload, cfg);

    const auto& samples = cosim.emulator(0).samples();
    if (samples.empty()) {
        std::printf("run too short for a 500us sample window\n");
        return 0;
    }

    double max_mpki = 0.0;
    for (const Sample& s : samples)
        max_mpki = std::max(max_mpki, s.mpki());

    std::printf("%zu samples of 500us emulated time; peak %.2f MPKI\n",
                samples.size(), max_mpki);
    std::printf("  mpki %s\n\n", sparkline(samples, 64).c_str());
    std::printf("  time(ms) |0 %*s%.1f| MPKI\n", 48, "", max_mpki);

    // Compress to at most 64 rows so long runs stay readable.
    std::size_t stride = std::max<std::size_t>(1, samples.size() / 64);
    for (std::size_t i = 0; i < samples.size(); i += stride) {
        double mpki = 0.0;
        InstCount insts = 0;
        std::uint64_t misses = 0;
        for (std::size_t k = i;
             k < std::min(samples.size(), i + stride); ++k) {
            insts += samples[k].insts;
            misses += samples[k].misses;
        }
        mpki = insts ? 1000.0 * static_cast<double>(misses) /
                           static_cast<double>(insts)
                     : 0.0;
        int bar = max_mpki > 0.0
            ? static_cast<int>(50.0 * mpki / max_mpki)
            : 0;
        std::printf("  %8.2f |%-*s| %7.2f\n", samples[i].timeUs / 1000.0,
                    50, std::string(static_cast<std::size_t>(bar),
                                    '#').c_str(),
                    mpki);
    }

    if (!csv_path.empty()) {
        CsvWriter csv(csv_path);
        csv.writeRow({"time_us", "insts", "cycles", "accesses", "misses",
                      "mpki"});
        for (const Sample& s : samples) {
            char buf[6][32];
            std::snprintf(buf[0], sizeof(buf[0]), "%.3f", s.timeUs);
            std::snprintf(buf[1], sizeof(buf[1]), "%llu",
                          static_cast<unsigned long long>(s.insts));
            std::snprintf(buf[2], sizeof(buf[2]), "%llu",
                          static_cast<unsigned long long>(s.cycles));
            std::snprintf(buf[3], sizeof(buf[3]), "%llu",
                          static_cast<unsigned long long>(s.accesses));
            std::snprintf(buf[4], sizeof(buf[4]), "%llu",
                          static_cast<unsigned long long>(s.misses));
            std::snprintf(buf[5], sizeof(buf[5]), "%.4f", s.mpki());
            csv.writeRow({buf[0], buf[1], buf[2], buf[3], buf[4],
                          buf[5]});
        }
        std::printf("\nsample series CSV: %s\n", csv_path.c_str());
    }

    std::printf("\n%s: %.1fM insts, verified=%s\n",
                workload->name().c_str(),
                static_cast<double>(r.totalInsts) / 1e6,
                r.verified ? "yes" : "NO");
    std::printf("(FIMI's three phases -- first scan, serial tree build, "
                "parallel mining --\n show up as distinct MPKI bands.)\n");
    return 0;
}
