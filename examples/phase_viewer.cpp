/**
 * @file
 * Phase viewer: what run-to-completion co-simulation buys you.
 *
 * Section 1 argues that simulating applications to completion "supports
 * changing application phase behavior and also helps choose
 * representative regions". This example runs a workload end to end and
 * prints the Dragonhead control block's 500 us sample series -- the
 * real-time MPKI the host computer polled off the board -- as an ASCII
 * strip chart, making the workload's phases visible.
 *
 * Usage: phase_viewer [workload] [scale]     (default FIMI 0.2)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    std::string name = argc > 1 ? argv[1] : "FIMI";
    double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.2;

    CoSimParams params;
    params.platform = presets::scmp();
    params.emulators.push_back(presets::llcConfig(8 * MiB, 64));
    CoSimulation cosim(params);

    auto workload = createWorkload(name, scale);
    WorkloadConfig cfg;
    cfg.nThreads = 8;
    cfg.scale = scale;
    std::printf("running %s to completion on SCMP (8MB LLC)...\n\n",
                workload->name().c_str());
    RunResult r = cosim.run(*workload, cfg);

    const auto& samples = cosim.emulator(0).samples();
    if (samples.empty()) {
        std::printf("run too short for a 500us sample window\n");
        return 0;
    }

    double max_mpki = 0.0;
    for (const Sample& s : samples)
        max_mpki = std::max(max_mpki, s.mpki());

    std::printf("%zu samples of 500us emulated time; peak %.2f MPKI\n\n",
                samples.size(), max_mpki);
    std::printf("  time(ms) |0 %*s%.1f| MPKI\n", 48, "", max_mpki);

    // Compress to at most 64 rows so long runs stay readable.
    std::size_t stride = std::max<std::size_t>(1, samples.size() / 64);
    for (std::size_t i = 0; i < samples.size(); i += stride) {
        double mpki = 0.0;
        InstCount insts = 0;
        std::uint64_t misses = 0;
        for (std::size_t k = i;
             k < std::min(samples.size(), i + stride); ++k) {
            insts += samples[k].insts;
            misses += samples[k].misses;
        }
        mpki = insts ? 1000.0 * static_cast<double>(misses) /
                           static_cast<double>(insts)
                     : 0.0;
        int bar = max_mpki > 0.0
            ? static_cast<int>(50.0 * mpki / max_mpki)
            : 0;
        std::printf("  %8.2f |%-*s| %7.2f\n", samples[i].timeUs / 1000.0,
                    50, std::string(static_cast<std::size_t>(bar),
                                    '#').c_str(),
                    mpki);
    }

    std::printf("\n%s: %.1fM insts, verified=%s\n",
                workload->name().c_str(),
                static_cast<double>(r.totalInsts) / 1e6,
                r.verified ? "yes" : "NO");
    std::printf("(FIMI's three phases -- first scan, serial tree build, "
                "parallel mining --\n show up as distinct MPKI bands.)\n");
    return 0;
}
