/**
 * @file
 * Video mining end to end: run the SHOT (cut detection) and VIEWTYPE
 * (view classification) workloads on the synthesized clip, print what
 * they mined, and compare their memory behaviour -- the two workloads
 * whose per-thread private working sets make LLC demand scale linearly
 * with the core count (Figures 4-6).
 *
 * Usage: video_mining [n_threads] [scale]     (default 4 threads, 0.2)
 */

#include <cstdio>
#include <cstdlib>

#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "workloads/shot.hh"
#include "workloads/viewtype.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    unsigned threads = argc > 1
        ? static_cast<unsigned>(std::atoi(argv[1]))
        : 4;
    double scale = argc > 2 ? std::strtod(argv[2], nullptr) : 0.2;

    CoSimParams params;
    params.platform = presets::cmpPlatform("video", threads);
    params.emulators.push_back(presets::llcConfig(8 * MiB, 64));
    CoSimulation cosim(params);

    WorkloadConfig cfg;
    cfg.nThreads = threads;
    cfg.scale = scale;

    // --- SHOT: cut detection ---
    ShotWorkload shot(ShotParams::scaled(scale));
    std::printf("SHOT: detecting cuts in a %ux%u clip of %u frames on "
                "%u threads...\n", shot.params().video.width,
                shot.params().video.height, shot.params().video.nFrames,
                threads);
    RunResult rs = cosim.run(shot, cfg);

    std::printf("  cuts detected at frames:");
    for (unsigned f : shot.detectedCuts())
        std::printf(" %u", f);
    std::printf("\n  ground truth          :");
    for (unsigned f : shot.expectedCuts())
        std::printf(" %u", f);
    std::printf("\n  verified=%s, LLC MPKI %.2f, %.1fM insts\n\n",
                rs.verified ? "yes" : "NO",
                cosim.emulator(0).results().mpki(),
                static_cast<double>(rs.totalInsts) / 1e6);

    // --- VIEWTYPE: view classification ---
    ViewtypeWorkload view(ViewtypeParams::scaled(scale));
    std::printf("VIEWTYPE: classifying %u key frames...\n",
                view.params().nKeyframes);
    RunResult rv = cosim.run(view, cfg);

    unsigned shown = std::min(16u, view.params().nKeyframes);
    for (unsigned k = 0; k < shown; ++k) {
        std::printf("  keyframe %2u: %-11s (planted: %s)\n", k,
                    synth::toString(view.classified()[k]),
                    synth::toString(view.plantedView(k)));
    }
    if (shown < view.params().nKeyframes)
        std::printf("  ... (%u more)\n",
                    view.params().nKeyframes - shown);
    std::printf("  accuracy %.0f%%, verified=%s, LLC MPKI %.2f\n\n",
                100.0 * view.accuracy(), rv.verified ? "yes" : "NO",
                cosim.emulator(0).results().mpki());

    std::printf("Both workloads keep ~per-thread-private frame buffers, "
                "so try more threads:\n  their aggregate working set -- "
                "and the LLC miss rate -- grows with the core\n  count, "
                "unlike the shared-structure workloads (SNP, MDS, "
                "SVM-RFE).\n");
    return (rs.verified && rv.verified) ? 0 : 1;
}
