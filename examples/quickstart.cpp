/**
 * @file
 * Quickstart: assemble a co-simulation (8-core virtual platform + one
 * Dragonhead cache emulator), run the FIMI frequent-itemset workload to
 * completion, and read the emulator's results -- the minimal end-to-end
 * use of the library.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

int
main()
{
    // 1. Describe the platform: the paper's small-scale CMP (8 cores,
    //    private 32 KB L1s, DEX time-slice scheduling).
    CoSimParams params;
    params.platform = presets::scmp();

    // 2. Attach a Dragonhead emulating a 16 MB shared LLC with 64 B
    //    lines (the board supported 1 MB - 256 MB, 64 B - 4 KB, LRU).
    params.emulators.push_back(presets::llcConfig(16 * MiB, 64));

    CoSimulation cosim(params);

    // 3. Pick a workload. 0.2 x the default input keeps this example
    //    snappy; pass 1.0 for the paper-shaped run.
    auto workload = createWorkload("FIMI", 0.2);

    WorkloadConfig cfg;
    cfg.nThreads = 8;
    cfg.seed = 42;

    // 4. Run to completion. The workload really mines itemsets; every
    //    one of its memory accesses flowed through the private L1s onto
    //    the bus, where the emulator snooped it.
    RunResult result = cosim.run(*workload, cfg);

    std::printf("workload        : %s (%s)\n", result.workload.c_str(),
                result.verified ? "verified" : "FAILED VERIFY");
    std::printf("instructions    : %.1f M retired on %u cores\n",
                static_cast<double>(result.totalInsts) / 1e6,
                result.nThreads);
    std::printf("simulation speed: %.1f MIPS (the paper's rig: 30-50)\n",
                result.simMips());
    std::printf("footprint       : %.1f MB simulated\n",
                static_cast<double>(result.footprintBytes) / (1 << 20));

    const Dragonhead& dh = cosim.emulator(0);
    LlcResults llc = dh.results();
    std::printf("\nDragonhead (16MB LLC, 64B lines, LRU, 4 CC slices)\n");
    std::printf("  LLC accesses  : %llu\n",
                static_cast<unsigned long long>(llc.accesses));
    std::printf("  LLC misses    : %llu (%.2f%% miss rate)\n",
                static_cast<unsigned long long>(llc.misses),
                100.0 * llc.missRate());
    std::printf("  MPKI          : %.3f misses / 1000 instructions\n",
                llc.mpki());
    std::printf("  500us samples : %zu collected\n", dh.samples().size());

    std::printf("\nPer-core LLC traffic:\n");
    for (CoreId c = 0; c < 8; ++c) {
        CoreCounters cc = dh.coreResults(c);
        std::printf("  core %u: %8llu accesses, %8llu misses\n", c,
                    static_cast<unsigned long long>(cc.accesses),
                    static_cast<unsigned long long>(cc.misses));
    }
    return result.verified ? 0 : 1;
}
