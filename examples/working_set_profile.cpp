/**
 * @file
 * Configuration-independent working-set analysis: attach the
 * reuse-distance profiler to the bus, run a workload once, and print
 * the full LRU miss-ratio-vs-capacity curve -- the envelope of an
 * entire Figure-4 sweep from a single pass, in the spirit of the
 * configuration-independent analysis (Abandah & Davidson) the paper's
 * related work cites.
 *
 * Usage: working_set_profile [workload] [threads] [scale]
 *        (default FIMI 8 0.2)
 */

#include <cstdio>
#include <cstdlib>

#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "trace/reuse_profiler.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    std::string name = argc > 1 ? argv[1] : "FIMI";
    unsigned threads = argc > 2
        ? static_cast<unsigned>(std::atoi(argv[2]))
        : 8;
    double scale = argc > 3 ? std::strtod(argv[3], nullptr) : 0.2;

    CoSimParams params;
    params.platform = presets::cmpPlatform("profile", threads);
    CoSimulation cosim(params);

    ReuseDistanceProfiler profiler(64, 1 << 23);
    cosim.platform().fsb().attach(&profiler);

    auto workload = createWorkload(name, scale);
    WorkloadConfig cfg;
    cfg.nThreads = threads;
    cfg.scale = scale;
    std::printf("profiling %s (%u threads, scale %.3g) -- one pass, "
                "every capacity...\n\n", workload->name().c_str(),
                threads, scale);
    RunResult r = cosim.run(*workload, cfg);
    cosim.platform().fsb().detach(&profiler);

    std::printf("beyond-L1 line accesses : %llu%s\n",
                static_cast<unsigned long long>(profiler.accesses()),
                profiler.saturated() ? " (profiling budget reached)"
                                     : "");
    std::printf("distinct lines touched  : %llu (%.1f MB footprint)\n",
                static_cast<unsigned long long>(
                    profiler.footprintLines()),
                static_cast<double>(profiler.footprintLines()) * 64.0 /
                    (1 << 20));
    double floor = profiler.accesses()
        ? static_cast<double>(profiler.coldAccesses()) /
              static_cast<double>(profiler.accesses())
        : 0.0;
    std::printf("cold-miss floor         : %.2f%%\n\n", 100.0 * floor);

    std::printf("  LRU capacity | miss ratio\n");
    std::printf("  -------------+-----------\n");
    for (std::uint64_t cap_kb = 64; cap_kb <= 512 * 1024; cap_kb *= 4) {
        std::uint64_t lines = cap_kb * 1024 / 64;
        double mr = profiler.missRatioAt(lines);
        int bar = static_cast<int>(40.0 * mr);
        std::printf("  %9s | %6.2f%% %s\n",
                    formatSize(cap_kb * 1024).c_str(), 100.0 * mr,
                    std::string(static_cast<std::size_t>(bar),
                                '#').c_str());
    }

    std::uint64_t ws = profiler.workingSetLines(0.02);
    std::printf("\nworking set estimate    : %s (capacity where the "
                "curve meets the cold floor)\n",
                formatSize(ws * 64).c_str());
    std::printf("run verified=%s, %.1fM insts\n",
                r.verified ? "yes" : "NO",
                static_cast<double>(r.totalInsts) / 1e6);
    return 0;
}
