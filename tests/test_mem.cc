/**
 * @file
 * Tests for the memory-side substrate: allocator, bus, DRAM model.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "mem/dram.hh"
#include "mem/fsb.hh"
#include "test_util.hh"

namespace cosim {
namespace {

// ------------------------------------------------------------- allocator

TEST(SimAllocator, RegionsDoNotOverlap)
{
    SimAllocator alloc;
    Addr a = alloc.allocate("a", 100, 64);
    Addr b = alloc.allocate("b", 4096, 64);
    Addr c = alloc.allocate("c", 1, 64);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(c, b + 4096);
    EXPECT_GE(a, SimAllocator::workloadBase);
}

TEST(SimAllocator, AlignmentHonored)
{
    SimAllocator alloc;
    alloc.allocate("pad", 3, 64);
    Addr b = alloc.allocate("aligned", 64, 4096);
    EXPECT_EQ(b % 4096, 0u);
}

TEST(SimAllocator, FootprintAndRegions)
{
    SimAllocator alloc;
    alloc.allocate("x", 1000);
    alloc.allocate("y", 24);
    EXPECT_EQ(alloc.footprint(), 1024u);
    ASSERT_EQ(alloc.regions().size(), 2u);
    EXPECT_EQ(alloc.regions()[0].name, "x");
    EXPECT_EQ(alloc.regions()[1].size, 24u);
}

TEST(SimAllocator, FindRegion)
{
    SimAllocator alloc;
    Addr a = alloc.allocate("x", 128);
    Addr b = alloc.allocate("y", 128);
    const SimRegion* r = alloc.findRegion(a + 64);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->name, "x");
    EXPECT_EQ(alloc.findRegion(b + 127)->name, "y");
    EXPECT_EQ(alloc.findRegion(b + 128), nullptr);
    EXPECT_EQ(alloc.findRegion(0), nullptr);
}

TEST(SimAllocator, ResetRestarts)
{
    SimAllocator alloc;
    Addr a1 = alloc.allocate("x", 64);
    alloc.reset();
    EXPECT_EQ(alloc.footprint(), 0u);
    EXPECT_TRUE(alloc.regions().empty());
    Addr a2 = alloc.allocate("x", 64);
    EXPECT_EQ(a1, a2);
}

// ------------------------------------------------------------------- fsb

TEST(Fsb, BroadcastsToAllSnoopersInOrder)
{
    FrontSideBus bus;
    test::CountingSnooper s1;
    test::CountingSnooper s2;
    bus.attach(&s1);
    bus.attach(&s2);

    BusTransaction txn;
    txn.addr = 0x40;
    txn.size = 64;
    txn.kind = TxnKind::ReadLine;
    txn.core = 3;
    bus.issue(txn);

    EXPECT_EQ(s1.total, 1u);
    EXPECT_EQ(s2.total, 1u);
    EXPECT_EQ(s1.last.core, 3u);

    bus.detach(&s1);
    bus.issue(txn);
    EXPECT_EQ(s1.total, 1u);
    EXPECT_EQ(s2.total, 2u);
}

TEST(Fsb, TrafficStatistics)
{
    FrontSideBus bus;
    BusTransaction rd{0x0, 64, TxnKind::ReadLine, 0};
    BusTransaction wr{0x40, 64, TxnKind::WriteLine, 0};
    BusTransaction pf{0x80, 64, TxnKind::Prefetch, 0};
    BusTransaction msg{0x0, 0, TxnKind::Message, invalidCoreId};
    bus.issue(rd);
    bus.issue(rd);
    bus.issue(wr);
    bus.issue(pf);
    bus.issue(msg);

    EXPECT_EQ(bus.txnCount(), 5u);
    EXPECT_EQ(bus.readCount(), 2u);
    EXPECT_EQ(bus.writeCount(), 1u);
    EXPECT_EQ(bus.prefetchCount(), 1u);
    EXPECT_EQ(bus.messageCount(), 1u);
    EXPECT_EQ(bus.dataBytes(), 4u * 64u);

    bus.resetStats();
    EXPECT_EQ(bus.txnCount(), 0u);
}

TEST(Fsb, ToStringNames)
{
    EXPECT_STREQ(toString(TxnKind::ReadLine), "read-line");
    EXPECT_STREQ(toString(TxnKind::Message), "message");
    EXPECT_STREQ(toString(AccessType::Write), "write");
}

// ------------------------------------------------------------------ dram

TEST(Dram, UnloadedLatencyIsBase)
{
    DramModel dram;
    EXPECT_EQ(dram.demandLatency(), dram.params().baseLatency);
    EXPECT_DOUBLE_EQ(dram.prefetchAdmitFraction(), 1.0);
}

TEST(Dram, LowUtilizationKeepsLatencyNearBase)
{
    DramParams p;
    p.baseLatency = 100;
    p.peakBytesPerCycle = 2.0;
    DramModel dram(p);

    dram.addDemandTraffic(200); // 200 bytes over 1000 cycles: rho = 0.1
    dram.endRound(1000);
    EXPECT_NEAR(dram.lastUtilization(), 0.1, 1e-9);
    EXPECT_LT(dram.demandLatency(), 110u);
    EXPECT_DOUBLE_EQ(dram.prefetchAdmitFraction(), 1.0);
}

TEST(Dram, SaturationInflatesLatencyAndDropsPrefetches)
{
    DramParams p;
    p.baseLatency = 100;
    p.peakBytesPerCycle = 1.0;
    p.maxLatencyInflation = 6.0;
    DramModel dram(p);

    dram.addDemandTraffic(5000); // rho = 5 over 1000 cycles
    dram.endRound(1000);
    EXPECT_DOUBLE_EQ(dram.lastUtilization(), 1.0);
    EXPECT_EQ(dram.demandLatency(), 600u);
    EXPECT_DOUBLE_EQ(dram.prefetchAdmitFraction(), 0.0);
}

TEST(Dram, ThrottleWindowRampsAdmission)
{
    DramParams p;
    p.baseLatency = 100;
    p.peakBytesPerCycle = 1.0;
    p.prefetchThrottleStart = 0.5;
    p.prefetchThrottleFull = 0.9;
    DramModel dram(p);

    dram.addDemandTraffic(700); // rho = 0.7 -> halfway in the window
    dram.endRound(1000);
    EXPECT_NEAR(dram.prefetchAdmitFraction(), 0.5, 1e-9);
}

TEST(Dram, LatencyIsMonotonicInUtilization)
{
    DramParams p;
    p.baseLatency = 100;
    p.peakBytesPerCycle = 1.0;
    Cycles prev = 0;
    for (int load = 1; load <= 9; ++load) {
        DramModel dram(p);
        dram.addDemandTraffic(static_cast<std::uint64_t>(load) * 100);
        dram.endRound(1000);
        EXPECT_GE(dram.demandLatency(), prev);
        prev = dram.demandLatency();
    }
}

TEST(Dram, RoundsAreIndependentAndTotalsAccumulate)
{
    DramModel dram;
    dram.addDemandTraffic(1000);
    dram.addPrefetchTraffic(500);
    dram.endRound(100);
    dram.endRound(100); // empty round
    EXPECT_DOUBLE_EQ(dram.lastUtilization(), 0.0);
    EXPECT_EQ(dram.totalDemandBytes(), 1000u);
    EXPECT_EQ(dram.totalPrefetchBytes(), 500u);

    dram.reset();
    EXPECT_EQ(dram.totalDemandBytes(), 0u);
    EXPECT_EQ(dram.demandLatency(), dram.params().baseLatency);
}

TEST(Dram, ZeroCycleRoundIsSafe)
{
    DramModel dram;
    dram.addDemandTraffic(123456);
    dram.endRound(0);
    EXPECT_EQ(dram.demandLatency(), dram.params().baseLatency);
}

} // namespace
} // namespace cosim
