/**
 * @file
 * End-to-end crash-safety tests against the real fig4 binary (path
 * injected as COSIM_FIG4_BIN): process isolation must not change a
 * byte of the figure CSV, a crashing cell must not damage its
 * siblings, and a SIGKILLed sweep must resume to byte-identical
 * results re-running only its unfinished cells. These are the same
 * properties the CI chaos job gates; here they run at tiny scale.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "base/subprocess.hh"
#include "harness/sweep_journal.hh"
#include "obs/json.hh"

namespace cosim {
namespace {

const char* kWorkloads = "--workloads=PLSA,SNP";
const char* kScale = "--scale=0.02";

std::string
scratchDir(const std::string& name)
{
    std::string dir = testing::TempDir() + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return body;
}

/** Run the fig4 bench to completion with the given extra flags. */
SubprocessResult
runFig4(const std::string& out_dir, std::vector<std::string> extra)
{
    SubprocessOptions opts;
    opts.argv = {COSIM_FIG4_BIN, kScale, kWorkloads,
                 "--out=" + out_dir};
    for (std::string& arg : extra)
        opts.argv.push_back(std::move(arg));
    return runSubprocess(opts);
}

/** The baseline CSV (no isolation, no faults), computed per out dir. */
std::string
baselineCsv(const std::string& name)
{
    const std::string dir = scratchDir(name);
    SubprocessResult r = runFig4(dir, {});
    EXPECT_TRUE(r.ok()) << r.describe() << "\n" << r.stderrTail;
    return readFile(dir + "/fig4_scmp.csv");
}

TEST(CrashSafe, IsolatedSweepMatchesInProcessByteForByte)
{
    const std::string base = baselineCsv("crash_safe_base_a");
    ASSERT_FALSE(base.empty());

    const std::string dir = scratchDir("crash_safe_iso");
    SubprocessResult r = runFig4(dir, {"--isolate-cells"});
    ASSERT_TRUE(r.ok()) << r.describe() << "\n" << r.stderrTail;
    EXPECT_EQ(readFile(dir + "/fig4_scmp.csv"), base);

    // The journal records a clean sweep: every cell done, none stale.
    JournalState state;
    std::string error;
    ASSERT_TRUE(JournalState::load(dir + "/sweep.journal.jsonl",
                                   &state, &error))
        << error;
    ASSERT_EQ(state.cells.size(), 2u);
    for (const auto& cell : state.cells)
        EXPECT_EQ(cell.second.state, "done") << cell.first;
}

TEST(CrashSafe, CrashedCellLeavesSiblingRowsByteIdentical)
{
    const std::string base = baselineCsv("crash_safe_base_b");
    const std::string dir = scratchDir("crash_safe_crash");
    SubprocessResult r =
        runFig4(dir, {"--isolate-cells", "--keep-going",
                      "--faults=cell.proc.crash:nth=1"});
    // --keep-going finishes the sweep despite the crashed cell.
    ASSERT_TRUE(r.ok()) << r.describe() << "\n" << r.stderrTail;

    // Row-by-row: the crashed cell (PLSA, the first spawn) reports
    // failed; every other row is byte-identical to the fault-free run.
    std::istringstream got(readFile(dir + "/fig4_scmp.csv"));
    std::istringstream want(base);
    std::string got_line;
    std::string want_line;
    std::size_t rows = 0;
    while (std::getline(want, want_line)) {
        ASSERT_TRUE(std::getline(got, got_line));
        if (want_line.compare(0, 5, "PLSA,") == 0) {
            EXPECT_NE(got_line.find("failed"), std::string::npos)
                << got_line;
        } else {
            EXPECT_EQ(got_line, want_line);
        }
        ++rows;
    }
    EXPECT_FALSE(std::getline(got, got_line)); // no extra rows
    EXPECT_GE(rows, 3u);                       // header + 2 workloads

    JournalState state;
    std::string error;
    ASSERT_TRUE(JournalState::load(dir + "/sweep.journal.jsonl",
                                   &state, &error))
        << error;
    const JournalCell* plsa = state.find("PLSA");
    ASSERT_NE(plsa, nullptr);
    EXPECT_EQ(plsa->state, "failed");
    EXPECT_NE(plsa->error.find("SIGSEGV"), std::string::npos)
        << plsa->error;
    const JournalCell* snp = state.find("SNP");
    ASSERT_NE(snp, nullptr);
    EXPECT_EQ(snp->state, "done");
}

TEST(CrashSafe, SigkilledSweepResumesByteIdentical)
{
    const std::string base = baselineCsv("crash_safe_base_c");
    const std::string dir = scratchDir("crash_safe_resume");
    const std::string journal = dir + "/sweep.journal.jsonl";
    std::remove(journal.c_str());

    // Start the sweep, wait for the first cell's durable "done"
    // record, then SIGKILL the whole sweep parent -- the worst
    // interruption point short of a power cut.
    std::vector<std::string> argv = {COSIM_FIG4_BIN, kScale, kWorkloads,
                                     "--out=" + dir, "--isolate-cells"};
    std::vector<char*> cargv;
    for (std::string& arg : argv)
        cargv.push_back(arg.data());
    cargv.push_back(nullptr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        ::_exit(127);
    }
    bool saw_done = false;
    for (int i = 0; i < 3000 && !saw_done; ++i) {
        saw_done = readFile(journal).find("\"event\":\"done\"") !=
                   std::string::npos;
        if (!saw_done)
            ::usleep(10 * 1000);
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    ASSERT_TRUE(saw_done) << "sweep never journaled a done cell";

    // The interrupted journal must already load cleanly, with the
    // in-flight cell left "running" (that is the resume work list).
    JournalState before;
    std::string error;
    ASSERT_TRUE(JournalState::load(journal, &before, &error)) << error;

    SubprocessResult r =
        runFig4(dir, {"--isolate-cells", "--resume=" + journal});
    ASSERT_TRUE(r.ok()) << r.describe() << "\n" << r.stderrTail;

    // Byte-identical figure, and the manifest records the resume.
    EXPECT_EQ(readFile(dir + "/fig4_scmp.csv"), base);
    obs::json::Value doc;
    ASSERT_TRUE(obs::json::parse(readFile(dir + "/run.json"), doc,
                                 &error))
        << error;
    const obs::json::Value* resume = doc.find("resume");
    ASSERT_NE(resume, nullptr);
    EXPECT_TRUE(resume->find("resumed")->boolean);
    EXPECT_GE(resume->find("skipped")->num, 1.0);

    // The healed journal: dense numbering across the gap, every cell
    // finished (done or verified-skipped), nothing left running, and
    // no stray atomic-write temporaries anywhere in the out dir.
    JournalState after;
    ASSERT_TRUE(JournalState::load(journal, &after, &error)) << error;
    EXPECT_GT(after.nextSeq, before.nextSeq);
    ASSERT_EQ(after.cells.size(), 2u);
    for (const auto& cell : after.cells) {
        EXPECT_TRUE(cell.second.state == "done" ||
                    cell.second.state == "skipped")
            << cell.first << " left " << cell.second.state;
    }
}

} // namespace
} // namespace cosim
