/**
 * @file
 * Thread-safety-analysis regression fixture: this file MUST NOT compile
 * under `clang++ -Wthread-safety -Werror=thread-safety-analysis`.
 *
 * It calls a REQUIRES(mutex_)-annotated helper without holding the
 * mutex -- the bug class the annotation on HostProfiler::phase()
 * (src/obs/host_profiler.hh) exists to reject; the class below mirrors
 * that shape. The ctest entry builds this target with WILL_FAIL, so
 * the analysis regressing to silence shows up as a test failure.
 *
 * If this file ever starts compiling cleanly, the annotations have
 * stopped doing their job -- do not "fix" this file by adding a lock.
 */

#include <map>
#include <string>

#include "base/annotations.hh"
#include "base/mutex.hh"

namespace {

// Shaped like HostProfiler: a locked public recording API over a
// REQUIRES-annotated private accessor that callers must not reach
// without the lock.
class Profiler
{
  public:
    void record(const std::string& name, double ms)
    {
        cosim::LockGuard lock(mutex_);
        total(name) += ms;
    }

    // BUG (deliberate): calls total() -- REQUIRES(mutex_) -- without
    // acquiring mutex_ first.
    double peek(const std::string& name)
    {
        return total(name);
    }

  private:
    double& total(const std::string& name) REQUIRES(mutex_)
    {
        return totals_[name];
    }

    cosim::Mutex mutex_;
    std::map<std::string, double> totals_ GUARDED_BY(mutex_);
};

} // namespace

int
main()
{
    Profiler profiler;
    profiler.record("softsdv.step", 1.5);
    return profiler.peek("softsdv.step") > 0 ? 0 : 1;
}
