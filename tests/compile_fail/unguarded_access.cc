/**
 * @file
 * Thread-safety-analysis regression fixture: this file MUST NOT compile
 * under `clang++ -Wthread-safety -Werror=thread-safety-analysis`.
 *
 * It reads a GUARDED_BY field without holding the mutex -- the exact
 * bug class the annotations in src/obs/stats_registry.hh exist to
 * reject. The ctest entry (see compile_fail/CMakeLists.txt) builds this
 * target with WILL_FAIL, so the analysis regressing to silence shows up
 * as a test failure, not a quiet loss of coverage.
 *
 * If this file ever starts compiling cleanly, the annotations have
 * stopped doing their job -- do not "fix" this file by adding a lock.
 */

#include <deque>
#include <string>

#include "base/annotations.hh"
#include "base/mutex.hh"

namespace {

// Shaped like StatsRegistry: a mutex-guarded container behind an
// accessor that is supposed to lock.
class Registry
{
  public:
    void add(const std::string& name)
    {
        cosim::LockGuard lock(mutex_);
        names_.push_back(name);
    }

    // BUG (deliberate): reads names_ without mutex_ held.
    std::size_t count() const { return names_.size(); }

  private:
    mutable cosim::Mutex mutex_;
    std::deque<std::string> names_ GUARDED_BY(mutex_);
};

} // namespace

int
main()
{
    Registry registry;
    registry.add("fsb.transactions");
    return registry.count() == 1 ? 0 : 1;
}
