/**
 * @file
 * Unit tests for the FP-tree substrate (independent of the FIMI
 * workload driver).
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "mem/address_space.hh"
#include "softsdv/cpu_model.hh"
#include "softsdv/core_context.hh"
#include "workloads/fp_tree.hh"

namespace cosim {
namespace {

class FpTreeTest : public ::testing::Test
{
  protected:
    FpTreeTest()
        : cpu_(0, cpuParams(), &dram_, nullptr), ctx_(&cpu_)
    {
        tree_.init(alloc_, "t", 1024, 16);
    }

    static CpuParams
    cpuParams()
    {
        CpuParams p;
        p.baseCpi = 1.0;
        p.caches.l1 = {"l1", 1024, 64, 2, ReplPolicy::LRU};
        p.caches.hasL2 = false;
        p.useDramLatency = false;
        p.emitFsbTraffic = false;
        return p;
    }

    void
    insert(std::initializer_list<std::uint16_t> items,
           std::uint32_t count = 1)
    {
        std::vector<std::uint16_t> v(items);
        ASSERT_TRUE(tree_.insert(ctx_, v.data(), v.size(), count));
    }

    SimAllocator alloc_;
    DramModel dram_;
    CpuModel cpu_;
    CoreContext ctx_;
    FpTree tree_;
};

TEST_F(FpTreeTest, EmptyTreeHasOnlyRoot)
{
    EXPECT_EQ(tree_.nodesUsed(), 1u);
    EXPECT_EQ(tree_.hostHeader(3), FpTree::nil);
    EXPECT_EQ(tree_.hostChainSupport(3), 0u);
}

TEST_F(FpTreeTest, SharedPrefixesShareNodes)
{
    insert({1, 2, 3});
    insert({1, 2, 4});
    insert({1, 2, 3});
    // root + 1 + 2 + 3 + 4 = 5 nodes; the {1,2} prefix is shared.
    EXPECT_EQ(tree_.nodesUsed(), 5u);
    EXPECT_EQ(tree_.hostChainSupport(1), 3u);
    EXPECT_EQ(tree_.hostChainSupport(2), 3u);
    EXPECT_EQ(tree_.hostChainSupport(3), 2u);
    EXPECT_EQ(tree_.hostChainSupport(4), 1u);
}

TEST_F(FpTreeTest, DivergentPathsMakeSeparateNodesAndChains)
{
    insert({1, 3});
    insert({2, 3});
    // Two distinct "3" nodes under different parents...
    EXPECT_EQ(tree_.nodesUsed(), 5u);
    // ...linked into one node-link chain carrying the total support.
    EXPECT_EQ(tree_.hostChainSupport(3), 2u);
    std::uint32_t head = tree_.hostHeader(3);
    ASSERT_NE(head, FpTree::nil);
    EXPECT_NE(tree_.hostNode(head).nodeLink, FpTree::nil);
}

TEST_F(FpTreeTest, CountsCarryMultiplicity)
{
    insert({5, 6}, 7);
    insert({5}, 2);
    EXPECT_EQ(tree_.hostChainSupport(5), 9u);
    EXPECT_EQ(tree_.hostChainSupport(6), 7u);
}

TEST_F(FpTreeTest, ParentPointersReachRoot)
{
    insert({1, 2, 3});
    std::uint32_t node = tree_.hostHeader(3);
    ASSERT_NE(node, FpTree::nil);
    EXPECT_EQ(tree_.hostNode(node).item, 3);
    std::uint32_t up = tree_.hostNode(node).parent;
    EXPECT_EQ(tree_.hostNode(up).item, 2);
    up = tree_.hostNode(up).parent;
    EXPECT_EQ(tree_.hostNode(up).item, 1);
    EXPECT_EQ(tree_.hostNode(up).parent, 0u); // the root
}

TEST_F(FpTreeTest, MoveToFrontPromotesRevisitedChild)
{
    insert({1});
    insert({2});
    insert({3});
    // Head of the root's child list is now 3 (inserted last).
    EXPECT_EQ(tree_.hostNode(tree_.hostNode(0).firstChild).item, 3);
    insert({1}); // revisit: move-to-front must promote it
    EXPECT_EQ(tree_.hostNode(tree_.hostNode(0).firstChild).item, 1);
    EXPECT_EQ(tree_.hostChainSupport(1), 2u);
    // No nodes were duplicated by the splice.
    EXPECT_EQ(tree_.nodesUsed(), 4u);
}

TEST_F(FpTreeTest, MoveToFrontPreservesAllSiblings)
{
    insert({1});
    insert({2});
    insert({3});
    insert({2}); // promote the middle sibling
    std::vector<std::uint16_t> seen;
    std::uint32_t child = tree_.hostNode(0).firstChild;
    while (child != FpTree::nil) {
        seen.push_back(tree_.hostNode(child).item);
        child = tree_.hostNode(child).nextSibling;
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<std::uint16_t>{1, 2, 3}));
}

TEST_F(FpTreeTest, CapacityExhaustionReturnsFalse)
{
    SimAllocator alloc;
    FpTree tiny;
    tiny.init(alloc, "tiny", 3, 16); // root + 2 nodes
    std::uint16_t path[] = {1, 2, 3};
    EXPECT_FALSE(tiny.insert(ctx_, path, 3, 1));
    // The two nodes that fit were installed before the pool ran dry.
    EXPECT_EQ(tiny.nodesUsed(), 3u);
}

TEST_F(FpTreeTest, ResetClearsEverything)
{
    insert({1, 2});
    tree_.reset(ctx_);
    EXPECT_EQ(tree_.nodesUsed(), 1u);
    EXPECT_EQ(tree_.hostHeader(1), FpTree::nil);
    EXPECT_EQ(tree_.hostNode(0).firstChild, FpTree::nil);
    insert({4});
    EXPECT_EQ(tree_.hostChainSupport(4), 1u);
}

TEST_F(FpTreeTest, UsedBytesTracksNodes)
{
    std::uint64_t before = tree_.usedBytes();
    insert({1, 2, 3, 4});
    EXPECT_EQ(tree_.usedBytes(), before + 4 * sizeof(FpNode));
}

TEST_F(FpTreeTest, InsertGeneratesInstrumentedTraffic)
{
    InstCount before = cpu_.insts();
    insert({1, 2, 3});
    EXPECT_GT(cpu_.insts(), before);
    EXPECT_GT(cpu_.memInsts(), 0u);
}

} // namespace
} // namespace cosim
