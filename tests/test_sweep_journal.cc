/**
 * @file
 * Tests for the sweep write-ahead journal (harness/sweep_journal.hh):
 * append/load round-trip, WAL torn-tail semantics (ignored on load,
 * validBytes marks the repair point), dense-seq enforcement, resume
 * numbering across the gap, the journal.write.fail degradation, FNV
 * fingerprinting, and the DurableAppendFile helper itself.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "base/atomic_file.hh"
#include "base/fault.hh"
#include "harness/sweep_journal.hh"

namespace cosim {
namespace {

std::string
scratch(const std::string& name)
{
    std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return body;
}

// ------------------------------------------------------------- FNV-1a64

TEST(Fnv1a64, MatchesTheReferenceVectors)
{
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(DigestFileFnv, HashesFileBytesAndReportsSize)
{
    const std::string path = scratch("journal_digest.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "foobar";
    }
    std::uint64_t digest = 0;
    std::uint64_t bytes = 0;
    ASSERT_TRUE(digestFileFnv(path, &digest, &bytes));
    EXPECT_EQ(digest, 0x85944171f73967e8ull);
    EXPECT_EQ(bytes, 6u);
    EXPECT_FALSE(digestFileFnv(path + ".absent", &digest, &bytes));
    std::remove(path.c_str());
}

// ----------------------------------------------------- DurableAppendFile

TEST(DurableAppendFile, AppendsLinesAndResumesWithoutTruncating)
{
    const std::string path = scratch("durable_append.jsonl");
    {
        DurableAppendFile f(path, /*truncate=*/true);
        EXPECT_TRUE(f.appendLine("one"));
        EXPECT_TRUE(f.appendLine("two"));
    }
    {
        DurableAppendFile f(path, /*truncate=*/false);
        EXPECT_TRUE(f.appendLine("three"));
    }
    EXPECT_EQ(readFile(path), "one\ntwo\nthree\n");
    {
        DurableAppendFile f(path, /*truncate=*/true);
        EXPECT_TRUE(f.appendLine("fresh"));
    }
    EXPECT_EQ(readFile(path), "fresh\n");
    std::remove(path.c_str());
}

// ------------------------------------------------- journal round-trip

TEST(SweepJournal, RoundTripsEveryRecordKind)
{
    const std::string path = scratch("journal_roundtrip.jsonl");
    const std::uint64_t digest = 0xdeadbeefcafef00dull;
    {
        SweepJournal j(path);
        j.sweepPlan("fig4", 0xfeedfacefeedfaceull, 2);
        j.cellPlanned("PLSA");
        j.cellRunning("PLSA", 1, 1234);
        j.cellDone("PLSA", 1, "/tmp/PLSA.cell.json", 123, digest);
        j.cellPlanned("SNP");
        j.cellRunning("SNP", 1, 0);
        JournalExit how;
        how.kind = "signal";
        how.code = 11;
        j.cellFailed("SNP", 2, "killed by SIGSEGV", how);
        j.sweepDone(1, 1);
        EXPECT_TRUE(j.healthy());
    }

    JournalState state;
    std::string error;
    ASSERT_TRUE(JournalState::load(path, &state, &error)) << error;
    EXPECT_EQ(state.figure, "fig4");
    // 64-bit digests survive exactly (decimal strings, not doubles).
    EXPECT_EQ(state.configDigest, 0xfeedfacefeedfaceull);
    EXPECT_EQ(state.nextSeq, 8u);
    EXPECT_EQ(state.validBytes, readFile(path).size());
    ASSERT_EQ(state.cells.size(), 2u);

    const JournalCell* plsa = state.find("PLSA");
    ASSERT_NE(plsa, nullptr);
    EXPECT_EQ(plsa->state, "done");
    EXPECT_EQ(plsa->attempts, 1u);
    EXPECT_EQ(plsa->artifact, "/tmp/PLSA.cell.json");
    EXPECT_EQ(plsa->artifactBytes, 123u);
    EXPECT_EQ(plsa->artifactDigest, digest);

    const JournalCell* snp = state.find("SNP");
    ASSERT_NE(snp, nullptr);
    EXPECT_EQ(snp->state, "failed");
    EXPECT_EQ(snp->attempts, 2u);
    EXPECT_EQ(snp->error, "killed by SIGSEGV");
    EXPECT_EQ(state.find("absent"), nullptr);
    std::remove(path.c_str());
}

TEST(SweepJournal, ResumeContinuesDenseNumberingAcrossTheGap)
{
    const std::string path = scratch("journal_resume.jsonl");
    {
        SweepJournal j(path);
        j.sweepPlan("fig4", 7, 2);
        j.cellPlanned("PLSA");
        j.cellRunning("PLSA", 1, 41);
    }
    JournalState before;
    ASSERT_TRUE(JournalState::load(path, &before, nullptr));
    EXPECT_EQ(before.nextSeq, 3u);
    // An interrupted cell is left "running": exactly what a resume
    // must re-run.
    EXPECT_EQ(before.find("PLSA")->state, "running");

    {
        SweepJournal j(path, before.nextSeq);
        j.resumed(0, 2);
        j.resumeSkip("PLSA");
    }
    JournalState after;
    std::string error;
    ASSERT_TRUE(JournalState::load(path, &after, &error)) << error;
    EXPECT_EQ(after.nextSeq, 5u);
    EXPECT_EQ(after.find("PLSA")->state, "skipped");
    std::remove(path.c_str());
}

TEST(SweepJournal, ResumeSkipPreservesTheDoneArtifactFields)
{
    const std::string path = scratch("journal_skip_fields.jsonl");
    {
        SweepJournal j(path);
        j.sweepPlan("fig4", 7, 1);
        j.cellPlanned("PLSA");
        j.cellRunning("PLSA", 1, 41);
        j.cellDone("PLSA", 1, "/tmp/a.json", 9, 0xffffffffffffffffull);
        j.resumeSkip("PLSA");
    }
    JournalState state;
    ASSERT_TRUE(JournalState::load(path, &state, nullptr));
    const JournalCell* cell = state.find("PLSA");
    ASSERT_NE(cell, nullptr);
    // A twice-resumed sweep still verifies the artifact from the skip
    // record's cell entry, so done's fields must survive the skip.
    EXPECT_EQ(cell->state, "skipped");
    EXPECT_EQ(cell->artifact, "/tmp/a.json");
    EXPECT_EQ(cell->artifactBytes, 9u);
    EXPECT_EQ(cell->artifactDigest, 0xffffffffffffffffull);
    std::remove(path.c_str());
}

// ------------------------------------------------- WAL load semantics

TEST(SweepJournal, TornFinalLineIsIgnoredAndValidBytesMarksTheRepair)
{
    const std::string path = scratch("journal_torn.jsonl");
    {
        SweepJournal j(path);
        j.sweepPlan("fig4", 7, 1);
        j.cellPlanned("PLSA");
    }
    const std::string intact = readFile(path);
    {
        // Simulate the append a crash interrupted: half a record, no
        // trailing newline.
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "{\"seq\":2,\"t_us\":123,\"ev";
    }
    JournalState state;
    std::string error;
    ASSERT_TRUE(JournalState::load(path, &state, &error)) << error;
    EXPECT_EQ(state.nextSeq, 2u);
    EXPECT_EQ(state.find("PLSA")->state, "planned");
    // validBytes points at the end of the last complete line: exactly
    // where a resume truncates before appending.
    EXPECT_EQ(state.validBytes, intact.size());
    std::remove(path.c_str());
}

TEST(SweepJournal, MalformedInteriorRecordsAreHardErrors)
{
    const std::string path = scratch("journal_corrupt.jsonl");
    {
        SweepJournal j(path);
        j.sweepPlan("fig4", 7, 1);
    }
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "not json at all\n";
        out << "{\"seq\":2,\"t_us\":1,\"event\":\"planned\","
               "\"cell\":\"PLSA\"}\n";
    }
    JournalState state;
    std::string error;
    EXPECT_FALSE(JournalState::load(path, &state, &error));
    EXPECT_NE(error.find(":2:"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(SweepJournal, NonDenseSeqIsRejected)
{
    const std::string path = scratch("journal_sparse.jsonl");
    {
        SweepJournal j(path);
        j.sweepPlan("fig4", 7, 1);
    }
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "{\"seq\":5,\"t_us\":1,\"event\":\"planned\","
               "\"cell\":\"PLSA\"}\n";
    }
    JournalState state;
    std::string error;
    EXPECT_FALSE(JournalState::load(path, &state, &error));
    EXPECT_NE(error.find("seq not dense"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(SweepJournal, MissingPlanRecordIsRejected)
{
    const std::string path = scratch("journal_noplan.jsonl");
    {
        std::ofstream out(path, std::ios::binary);
        out << "{\"seq\":0,\"t_us\":1,\"event\":\"planned\","
               "\"cell\":\"PLSA\"}\n";
    }
    JournalState state;
    std::string error;
    EXPECT_FALSE(JournalState::load(path, &state, &error));
    EXPECT_NE(error.find("sweep_plan"), std::string::npos) << error;
    std::remove(path.c_str());
}

// ------------------------------------------------- failure discipline

TEST(SweepJournal, InjectedWriteFailureDegradesWithoutThrowing)
{
    const std::string path = scratch("journal_fault.jsonl");
    SweepJournal j(path);
    {
        ScopedFaultPlan plan("journal.write.fail:nth=2");
        j.sweepPlan("fig4", 7, 1); // hit 1: survives
        EXPECT_TRUE(j.healthy());
        j.cellPlanned("PLSA");     // hit 2: fires, journal shuts off
        EXPECT_FALSE(j.healthy());
        j.cellRunning("PLSA", 1, 0); // silently dropped, no throw
        EXPECT_FALSE(j.healthy());
    }

    // The record that failed (and everything after) never reached the
    // file; what did reach it is still a valid journal prefix.
    JournalState state;
    std::string error;
    ASSERT_TRUE(JournalState::load(path, &state, &error)) << error;
    EXPECT_EQ(state.nextSeq, 1u);
    EXPECT_TRUE(state.cells.empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace cosim
