/**
 * @file
 * Unit and property tests for the cache model and replacement policies.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/random.hh"
#include "base/units.hh"
#include "cache/cache.hh"
#include "cache/sweep_bank.hh"

namespace cosim {
namespace {

CacheParams
smallCache(std::uint64_t size = 1024, std::uint32_t line = 64,
           std::uint32_t assoc = 2, ReplPolicy repl = ReplPolicy::LRU)
{
    CacheParams p;
    p.name = "test";
    p.size = size;
    p.lineSize = line;
    p.assoc = assoc;
    p.repl = repl;
    return p;
}

TEST(Cache, GeometryDerivation)
{
    Cache c(smallCache(32 * KiB, 64, 8));
    EXPECT_EQ(c.params().sets(), 64u);
    EXPECT_EQ(c.lineAddr(0x12345), 0x12340u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    auto first = c.access(0x100, false);
    EXPECT_FALSE(first.hit);
    auto second = c.access(0x13f, false); // same 64B line
    EXPECT_TRUE(second.hit);
    auto third = c.access(0x140, false); // next line
    EXPECT_FALSE(third.hit);
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_EQ(c.stats().hits(), 1u);
}

TEST(Cache, ReadWriteCounters)
{
    Cache c(smallCache());
    c.access(0x0, false);
    c.access(0x0, true);
    c.access(0x40, true);
    EXPECT_EQ(c.stats().reads, 1u);
    EXPECT_EQ(c.stats().writes, 2u);
    EXPECT_EQ(c.stats().readMisses, 1u);
    EXPECT_EQ(c.stats().writeMisses, 1u);
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way, set 0: lines at stride sets*64.
    CacheParams p = smallCache(1024, 64, 2); // 8 sets
    Cache c(p);
    Addr stride = 8 * 64;
    c.access(0 * stride, false);
    c.access(1 * stride, false);
    c.access(0 * stride, false); // refresh line 0
    auto out = c.access(2 * stride, false);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddr, 1 * stride); // LRU victim is line 1
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(stride));
    EXPECT_TRUE(c.probe(2 * stride));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    CacheParams p = smallCache(1024, 64, 2);
    Cache c(p);
    Addr stride = 8 * 64;
    c.access(0, true); // dirty
    c.access(stride, false);
    auto out = c.access(2 * stride, false); // evicts dirty line 0
    EXPECT_TRUE(out.evicted);
    EXPECT_TRUE(out.evictedDirty);
    EXPECT_EQ(out.victimAddr, 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, VictimAddressReconstruction)
{
    CacheParams p = smallCache(4096, 64, 1); // direct-mapped, 64 sets
    Cache c(p);
    Addr a = 0x7f3240; // arbitrary
    c.access(a, true);
    Addr conflicting = a + 64 * 64; // same set, different tag
    auto out = c.access(conflicting, false);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.victimAddr, c.lineAddr(a));
}

TEST(Cache, InvalidateAndFlush)
{
    Cache c(smallCache());
    c.access(0x80, true);
    EXPECT_TRUE(c.probe(0x80));
    EXPECT_TRUE(c.invalidate(0x80)); // was dirty
    EXPECT_FALSE(c.probe(0x80));
    EXPECT_FALSE(c.invalidate(0x80)); // already gone

    c.access(0x100, false);
    c.access(0x200, false);
    EXPECT_GT(c.linesValid(), 0u);
    c.flush();
    EXPECT_EQ(c.linesValid(), 0u);
}

TEST(Cache, PrefetchFillSemantics)
{
    Cache c(smallCache());
    EXPECT_TRUE(c.prefetchFill(0x1000));
    EXPECT_FALSE(c.prefetchFill(0x1000)); // already present
    EXPECT_EQ(c.stats().prefetchFills, 1u);

    auto out = c.access(0x1000, false);
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(out.firstHitOnPrefetch);
    EXPECT_EQ(c.stats().usefulPrefetches, 1u);

    auto again = c.access(0x1000, false);
    EXPECT_TRUE(again.hit);
    EXPECT_FALSE(again.firstHitOnPrefetch); // flag consumed
    EXPECT_EQ(c.stats().usefulPrefetches, 1u);
}

TEST(Cache, FullyAssociativeHoldsExactlyItsCapacity)
{
    CacheParams p = smallCache(16 * 64, 64, 16); // 1 set, 16 ways
    Cache c(p);
    for (Addr a = 0; a < 16 * 64; a += 64)
        c.access(a, false);
    EXPECT_EQ(c.linesValid(), 16u);
    for (Addr a = 0; a < 16 * 64; a += 64)
        EXPECT_TRUE(c.access(a, false).hit);
    c.access(16 * 64, false);
    EXPECT_EQ(c.linesValid(), 16u); // one line replaced, not grown
}

TEST(Cache, StatsReset)
{
    Cache c(smallCache());
    c.access(0, false);
    c.resetStats();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_TRUE(c.probe(0)); // contents survive a stats reset
}

// --------------------------------------------------- LRU stack property

/**
 * The inclusion (stack) property of LRU: for caches with the same line
 * size and set count, a cache with larger associativity never misses
 * more. We check the stronger same-stream comparison across a range of
 * associativities using a shared random-ish trace.
 */
class LruStackProperty : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(LruStackProperty, MoreWaysNeverMoreMisses)
{
    std::uint32_t small_ways = GetParam();
    std::uint32_t big_ways = small_ways * 2;
    const std::uint32_t sets = 16;

    CacheParams small_p = smallCache(
        static_cast<std::uint64_t>(sets) * 64 * small_ways, 64,
        small_ways);
    CacheParams big_p = smallCache(
        static_cast<std::uint64_t>(sets) * 64 * big_ways, 64, big_ways);
    Cache small_c(small_p);
    Cache big_c(big_p);

    Rng rng(31 + small_ways);
    for (int i = 0; i < 20000; ++i) {
        // Mix of streaming and hot-set reuse.
        Addr a = (rng.nextBool(0.5) ? rng.nextBounded(64)
                                    : rng.nextBounded(4096)) *
                 64;
        small_c.access(a, rng.nextBool(0.3));
        big_c.access(a, false);
    }
    EXPECT_LE(big_c.stats().misses, small_c.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Associativities, LruStackProperty,
                         ::testing::Values(1, 2, 4, 8));

/**
 * LRU inclusion across cache *sizes* (same line, same associativity
 * scaling by sets is not stack-inclusive in general, so we compare
 * fully-associative caches where LRU inclusion is exact).
 */
TEST(CacheProperty, FullyAssociativeLruInclusion)
{
    CacheParams small_p = smallCache(8 * 64, 64, 8);   // 8 lines
    CacheParams big_p = smallCache(32 * 64, 64, 32);   // 32 lines
    Cache small_c(small_p);
    Cache big_c(big_p);

    Rng rng(97);
    for (int i = 0; i < 30000; ++i) {
        Addr a = rng.nextBounded(64) * 64;
        auto s = small_c.access(a, false);
        auto b = big_c.access(a, false);
        // Inclusion: whatever hits in the small cache hits in the big.
        if (s.hit) {
            EXPECT_TRUE(b.hit);
        }
    }
    EXPECT_LE(big_c.stats().misses, small_c.stats().misses);
}

// ----------------------------------------------- replacement policies

class ReplPolicySuite : public ::testing::TestWithParam<ReplPolicy>
{};

TEST_P(ReplPolicySuite, CachePlaysATraceWithoutGrowing)
{
    CacheParams p = smallCache(4 * KiB, 64, 4, GetParam());
    Cache c(p);
    Rng rng(5);
    for (int i = 0; i < 50000; ++i)
        c.access(rng.nextBounded(1 << 20), rng.nextBool(0.3));
    EXPECT_LE(c.linesValid(), p.size / p.lineSize);
    EXPECT_EQ(c.stats().accesses, 50000u);
    EXPECT_GT(c.stats().misses, 0u);
}

TEST_P(ReplPolicySuite, HotSetStaysResident)
{
    // A working set equal to the cache size must mostly hit once warm,
    // under every policy, when accessed round-robin... except Random and
    // FIFO-with-streaming can thrash; so only check it stays functional
    // and the miss rate is below the cold-miss-only streaming case.
    CacheParams p = smallCache(4 * KiB, 64, 4, GetParam());
    Cache c(p);
    const int lines = 64; // exactly the cache capacity
    for (int pass = 0; pass < 50; ++pass)
        for (int l = 0; l < lines; ++l)
            c.access(static_cast<Addr>(l) * 64, false);
    double mr = c.stats().missRate();
    if (GetParam() == ReplPolicy::LRU || GetParam() == ReplPolicy::FIFO) {
        // Round-robin over a set-balanced working set is the friendly
        // case: only cold misses.
        EXPECT_NEAR(mr, 64.0 / (50.0 * 64.0), 1e-9);
    } else {
        EXPECT_LT(mr, 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ReplPolicySuite,
    ::testing::Values(ReplPolicy::LRU, ReplPolicy::FIFO,
                      ReplPolicy::Random, ReplPolicy::TreePLRU,
                      ReplPolicy::NRU),
    [](const ::testing::TestParamInfo<ReplPolicy>& info) {
        return std::string(toString(info.param));
    });

TEST(Replacement, ParseNames)
{
    EXPECT_EQ(parseReplPolicy("lru"), ReplPolicy::LRU);
    EXPECT_EQ(parseReplPolicy("LRU"), ReplPolicy::LRU);
    EXPECT_EQ(parseReplPolicy("fifo"), ReplPolicy::FIFO);
    EXPECT_EQ(parseReplPolicy("plru"), ReplPolicy::TreePLRU);
    EXPECT_EQ(parseReplPolicy("nru"), ReplPolicy::NRU);
    EXPECT_EQ(parseReplPolicy("random"), ReplPolicy::Random);
}

TEST(Replacement, TreePlruNeverVictimizesMostRecent)
{
    // Tree-PLRU approximates LRU; its guaranteed property is that the
    // victim never sits on the most recently touched way's tree path.
    auto state = ReplacementState::create(ReplPolicy::TreePLRU, 1, 8);
    for (std::uint32_t w = 0; w < 8; ++w)
        state->fill(0, w);
    for (std::uint32_t w = 0; w < 8; ++w) {
        state->touch(0, w);
        EXPECT_NE(state->victim(0), w);
    }
}

TEST(Replacement, TreePlruRoundRobinTouchCyclesVictims)
{
    auto state = ReplacementState::create(ReplPolicy::TreePLRU, 1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        state->fill(0, w);
    // After filling 0..3 in order, the stale half is the low one.
    EXPECT_EQ(state->victim(0), 0u);
}

TEST(Replacement, LruExactOrder)
{
    auto state = ReplacementState::create(ReplPolicy::LRU, 1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        state->fill(0, w);
    state->touch(0, 0); // order now 1, 2, 3, 0
    EXPECT_EQ(state->victim(0), 1u);
    state->touch(0, 1);
    EXPECT_EQ(state->victim(0), 2u);
}

TEST(Replacement, FifoIgnoresTouches)
{
    auto state = ReplacementState::create(ReplPolicy::FIFO, 1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        state->fill(0, w);
    state->touch(0, 0);
    state->touch(0, 0);
    EXPECT_EQ(state->victim(0), 0u); // oldest fill regardless of touches
}

TEST(Replacement, NruFindsUnreferenced)
{
    auto state = ReplacementState::create(ReplPolicy::NRU, 1, 4);
    state->fill(0, 0);
    state->fill(0, 1);
    EXPECT_EQ(state->victim(0), 2u); // first never-referenced way
}

// ------------------------------------------------------------ sweep bank

TEST(SweepBank, MatchesIndividualCaches)
{
    CacheSweepBank bank;
    std::vector<CacheParams> configs = {
        smallCache(1 * KiB, 64, 2), smallCache(4 * KiB, 64, 4),
        smallCache(16 * KiB, 128, 8)};
    for (const auto& cfg : configs)
        bank.addConfig(cfg);

    std::vector<Cache> solo;
    for (const auto& cfg : configs)
        solo.emplace_back(cfg);

    Rng rng(41);
    for (int i = 0; i < 30000; ++i) {
        Addr a = rng.nextBounded(1 << 16);
        bool w = rng.nextBool(0.25);
        bank.access(a, w);
        for (auto& c : solo)
            c.access(a, w);
    }

    auto misses = bank.missCounts();
    ASSERT_EQ(misses.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
        EXPECT_EQ(misses[i], solo[i].stats().misses);
        EXPECT_DOUBLE_EQ(bank.missRates()[i], solo[i].stats().missRate());
    }
}

TEST(SweepBank, BiggerCachesMissLess)
{
    CacheSweepBank bank;
    for (std::uint64_t kb : {1, 2, 4, 8, 16})
        bank.addConfig(smallCache(kb * KiB, 64, 4));
    Rng rng(43);
    for (int i = 0; i < 50000; ++i)
        bank.access(rng.nextBounded(12 * KiB), false);
    auto misses = bank.missCounts();
    for (std::size_t i = 1; i < misses.size(); ++i)
        EXPECT_LE(misses[i], misses[i - 1]);
    // 16 KB fully captures the 12 KB working set: only cold misses.
    EXPECT_EQ(misses.back(), 12 * KiB / 64);
}

TEST(SweepBank, ResetStats)
{
    CacheSweepBank bank;
    bank.addConfig(smallCache());
    bank.access(0, false);
    EXPECT_EQ(bank.missCounts()[0], 1u);
    bank.resetStats();
    EXPECT_EQ(bank.missCounts()[0], 0u);
}

} // namespace
} // namespace cosim
