/**
 * @file
 * Tests for the SoftSDV side: CPU model, DEX scheduler, virtual
 * platform.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "dragonhead/fsb_messages.hh"
#include "softsdv/virtual_platform.hh"
#include "test_util.hh"

namespace cosim {
namespace {

CpuParams
timingCpu()
{
    CpuParams p;
    p.baseCpi = 1.0;
    p.caches.l1 = {"l1", 1 * KiB, 64, 2, ReplPolicy::LRU};
    p.caches.hasL2 = true;
    p.caches.l2 = {"l2", 8 * KiB, 64, 4, ReplPolicy::LRU};
    p.l2HitLatency = 10;
    p.useDramLatency = true;
    p.emitFsbTraffic = false;
    return p;
}

CpuParams
cosimCpu()
{
    CpuParams p;
    p.baseCpi = 1.0;
    p.caches.l1 = {"l1", 1 * KiB, 64, 2, ReplPolicy::LRU};
    p.caches.hasL2 = false;
    p.useDramLatency = false;
    p.beyondLatency = 50;
    p.emitFsbTraffic = true;
    return p;
}

// ------------------------------------------------------------- cpu model

TEST(CpuModel, InstructionAccounting)
{
    DramModel dram;
    CpuModel cpu(0, timingCpu(), &dram, nullptr);

    cpu.dataAccess(0x1000, 8, false);
    cpu.dataAccess(0x2000, 4, true);
    cpu.dataAccess(0x3000, 32, false); // 4 loads
    cpu.computeOps(10);

    EXPECT_EQ(cpu.insts(), 1u + 1u + 4u + 10u);
    EXPECT_EQ(cpu.memInsts(), 6u);
    EXPECT_EQ(cpu.loads(), 5u);
    EXPECT_EQ(cpu.stores(), 1u);
}

TEST(CpuModel, TimingChargesMissLatencies)
{
    DramParams dp;
    dp.baseLatency = 200;
    DramModel dram(dp);
    CpuParams p = timingCpu();
    CpuModel cpu(0, p, &dram, nullptr);

    cpu.dataAccess(0x1000, 8, false); // cold: L1 miss, L2 miss -> memory
    Cycles after_miss = cpu.cycles();
    EXPECT_GE(after_miss, 200u);

    cpu.dataAccess(0x1000, 8, false); // L1 hit: base CPI only
    EXPECT_EQ(cpu.cycles(), after_miss + 1);
}

TEST(CpuModel, L2HitCostsL2Latency)
{
    DramModel dram;
    CpuParams p = timingCpu();
    CpuModel cpu(0, p, &dram, nullptr);

    cpu.dataAccess(0x0, 8, false); // miss to memory; fills L1+L2
    // Evict from tiny L1 (2-way, 8 sets) with two same-set lines.
    cpu.dataAccess(8 * 64, 8, false);
    cpu.dataAccess(16 * 64, 8, false);
    Cycles before = cpu.cycles();
    cpu.dataAccess(0x0, 8, false); // L1 miss, L2 hit
    EXPECT_EQ(cpu.cycles(), before + 1 + p.l2HitLatency);
}

TEST(CpuModel, StraddlingAccessTouchesBothLines)
{
    DramModel dram;
    CpuModel cpu(0, timingCpu(), &dram, nullptr);
    cpu.dataAccess(0x103c, 8, false); // crosses the 0x1040 boundary
    EXPECT_EQ(cpu.caches().l1().stats().accesses, 2u);
    EXPECT_EQ(cpu.insts(), 1u);
}

TEST(CpuModel, CosimModeEmitsFsbTraffic)
{
    FrontSideBus bus;
    test::CountingSnooper snoop;
    bus.attach(&snoop);
    CpuModel cpu(0, cosimCpu(), nullptr, &bus);

    cpu.dataAccess(0x1000, 8, false); // miss -> ReadLine
    cpu.dataAccess(0x1008, 8, false); // hit -> nothing
    EXPECT_EQ(snoop.reads, 1u);
    EXPECT_EQ(snoop.total, 1u);
    EXPECT_EQ(snoop.last.addr, 0x1000u);
    EXPECT_EQ(snoop.last.size, 64u);
}

TEST(CpuModel, DirtyEvictionEmitsWriteLine)
{
    FrontSideBus bus;
    test::CountingSnooper snoop;
    bus.attach(&snoop);
    CpuModel cpu(0, cosimCpu(), nullptr, &bus);

    cpu.dataAccess(0x0, 8, true); // dirty line 0 (WriteLine fill)
    // Conflict it out of the 2-way set.
    cpu.dataAccess(8 * 64, 8, false);
    cpu.dataAccess(16 * 64, 8, false);
    EXPECT_GE(snoop.writes, 2u); // the write-miss fill + the writeback
}

TEST(CpuModel, PrefetcherCoversStream)
{
    DramParams dp;
    dp.baseLatency = 300;
    DramModel dram(dp);
    CpuParams p = timingCpu();
    p.prefetchEnabled = true;
    CpuModel with_pf(0, p, &dram, nullptr);

    DramModel dram2(dp);
    CpuParams p2 = timingCpu();
    CpuModel without(0, p2, &dram2, nullptr);

    for (Addr a = 0; a < 256 * KiB; a += 8) {
        with_pf.dataAccess(a, 8, false);
        without.dataAccess(a, 8, false);
    }
    EXPECT_GT(with_pf.prefetchStats().installed, 0u);
    EXPECT_GT(with_pf.caches().l2().stats().usefulPrefetches, 100u);
    // Same instruction count, fewer cycles with the prefetcher.
    EXPECT_EQ(with_pf.insts(), without.insts());
    EXPECT_LT(with_pf.cycles(), without.cycles());
}

TEST(CpuModel, ResetClearsEverything)
{
    DramModel dram;
    CpuModel cpu(0, timingCpu(), &dram, nullptr);
    cpu.dataAccess(0x0, 8, true);
    cpu.computeOps(5);
    cpu.reset();
    EXPECT_EQ(cpu.insts(), 0u);
    EXPECT_EQ(cpu.cycles(), 0u);
    EXPECT_EQ(cpu.caches().l1().linesValid(), 0u);
    EXPECT_EQ(cpu.caches().l1().stats().accesses, 0u);
}

// --------------------------------------------------------- dex scheduler

TEST(DexScheduler, RunsAllTasksToCompletion)
{
    DramModel dram;
    FrontSideBus bus;
    std::vector<std::unique_ptr<CpuModel>> cpus;
    for (unsigned i = 0; i < 4; ++i)
        cpus.push_back(
            std::make_unique<CpuModel>(i, cosimCpu(), &dram, &bus));

    SimAllocator alloc;
    test::LoopWorkload wl(4 * KiB, 3);
    WorkloadConfig cfg;
    cfg.nThreads = 4;
    wl.setUp(cfg, alloc);

    std::vector<std::unique_ptr<ThreadTask>> tasks;
    std::vector<CoreSlot> slots(4);
    for (unsigned i = 0; i < 4; ++i) {
        tasks.push_back(wl.createThread(i));
        slots[i].cpu = cpus[i].get();
        slots[i].task = tasks[i].get();
    }

    DexParams dp;
    dp.quantumInsts = 500;
    DexScheduler sched(dp, &bus, &dram);
    sched.run(slots);

    EXPECT_TRUE(wl.verify());
    EXPECT_GT(sched.rounds(), 1u);
    EXPECT_GE(sched.slices(), 4u);
    for (const auto& cpu : cpus)
        EXPECT_GT(cpu->insts(), 0u);
}

TEST(DexScheduler, EmitsMessageProtocol)
{
    DramModel dram;
    FrontSideBus bus;
    test::CountingSnooper snoop;
    bus.attach(&snoop);

    CpuModel cpu(0, cosimCpu(), &dram, &bus);
    SimAllocator alloc;
    test::LoopWorkload wl(1 * KiB, 1);
    WorkloadConfig cfg;
    cfg.nThreads = 1;
    wl.setUp(cfg, alloc);
    auto task = wl.createThread(0);

    std::vector<CoreSlot> slots(1);
    slots[0].cpu = &cpu;
    slots[0].task = task.get();

    DexParams dp;
    dp.quantumInsts = 100;
    DexScheduler sched(dp, &bus, &dram);
    sched.run(slots);

    // Start + Stop + 3 messages per slice (core-id, insts, cycles).
    EXPECT_EQ(snoop.messages, 2 + 3 * sched.slices());
}

TEST(DexScheduler, MessagesCarryExactInstructionCounts)
{
    DramModel dram;
    FrontSideBus bus;

    // Decode the InstRetired stream and compare against the CPU total.
    class InstSumSnooper : public BusSnooper
    {
      public:
        void
        observe(const BusTransaction& txn) override
        {
            if (txn.kind != TxnKind::Message)
                return;
            msg::Message m = msg::decode(txn.addr);
            if (m.type == msg::Type::InstRetired)
                total += m.payload;
        }
        std::uint64_t total = 0;
    } snoop;
    bus.attach(&snoop);

    CpuModel cpu(0, cosimCpu(), &dram, &bus);
    SimAllocator alloc;
    test::LoopWorkload wl(2 * KiB, 2);
    WorkloadConfig cfg;
    cfg.nThreads = 1;
    wl.setUp(cfg, alloc);
    auto task = wl.createThread(0);

    std::vector<CoreSlot> slots(1);
    slots[0].cpu = &cpu;
    slots[0].task = task.get();
    DexParams dp;
    dp.quantumInsts = 300;
    DexScheduler sched(dp, &bus, &dram);
    sched.run(slots);

    EXPECT_EQ(snoop.total, cpu.insts());
}

// ------------------------------------------------------ virtual platform

PlatformParams
testPlatform(unsigned cores)
{
    PlatformParams p;
    p.name = "test";
    p.nCores = cores;
    p.cpu = cosimCpu();
    p.dex.quantumInsts = 1000;
    return p;
}

TEST(VirtualPlatform, RunsAndAggregates)
{
    VirtualPlatform vp(testPlatform(4));
    test::LoopWorkload wl(8 * KiB, 2);
    WorkloadConfig cfg;
    cfg.nThreads = 4;
    RunResult r = vp.run(wl, cfg);

    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.nThreads, 4u);
    EXPECT_GT(r.totalInsts, 4u * 2u * 1024u); // 4 threads x 2 passes
    EXPECT_GT(r.memInsts, 0u);
    EXPECT_EQ(r.loads + r.stores, r.memInsts);
    EXPECT_GT(r.maxCoreCycles, 0u);
    EXPECT_GE(r.totalCycles, r.maxCoreCycles);
    EXPECT_GT(r.l1.accesses, 0u);
    EXPECT_GT(r.footprintBytes, 4u * 8u * 1024u - 1u);
    EXPECT_GT(r.simMips(), 0.0);
}

TEST(VirtualPlatform, SymmetricThreadsBalance)
{
    VirtualPlatform vp(testPlatform(2));
    test::LoopWorkload wl(4 * KiB, 4);
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    vp.run(wl, cfg);
    // Identical per-thread work: instruction counts match exactly.
    EXPECT_EQ(vp.cpu(0).insts(), vp.cpu(1).insts());
}

TEST(VirtualPlatform, ReuseAcrossRunsIsClean)
{
    VirtualPlatform vp(testPlatform(2));
    test::LoopWorkload wl(4 * KiB, 2);
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    RunResult r1 = vp.run(wl, cfg);
    RunResult r2 = vp.run(wl, cfg);
    EXPECT_EQ(r1.totalInsts, r2.totalInsts);
    EXPECT_EQ(r1.l1.misses, r2.l1.misses);
    EXPECT_EQ(r1.maxCoreCycles, r2.maxCoreCycles);
}

TEST(VirtualPlatform, DerivedMetrics)
{
    RunResult r;
    r.totalInsts = 1000;
    r.memInsts = 500;
    r.loads = 400;
    r.totalCycles = 2000;
    r.maxCoreCycles = 1000;
    r.l1.accesses = 500;
    r.l1.misses = 50;
    r.l2.misses = 5;
    EXPECT_DOUBLE_EQ(r.ipc(), 0.5);
    EXPECT_DOUBLE_EQ(r.parallelIpc(), 1.0);
    EXPECT_DOUBLE_EQ(r.memInstPercent(), 50.0);
    EXPECT_DOUBLE_EQ(r.memReadPercent(), 40.0);
    EXPECT_DOUBLE_EQ(r.l1AccessesPerKiloInst(), 500.0);
    EXPECT_DOUBLE_EQ(r.l1MissesPerKiloInst(), 50.0);
    EXPECT_DOUBLE_EQ(r.l2MissesPerKiloInst(), 5.0);
}

TEST(CoreContext, YieldFlagLifecycle)
{
    DramModel dram;
    CpuModel cpu(0, cosimCpu(), &dram, nullptr);
    CoreContext ctx(&cpu);
    EXPECT_FALSE(ctx.yielded());
    ctx.yield();
    EXPECT_TRUE(ctx.yielded());
    ctx.clearYield();
    EXPECT_FALSE(ctx.yielded());
    EXPECT_EQ(ctx.coreId(), 0u);
}

} // namespace
} // namespace cosim
