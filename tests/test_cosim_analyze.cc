/**
 * @file
 * Unit tests for the cosim_analyze core.
 *
 * Coverage, in order: the token lexer (comments, strings, raw
 * strings, directives, line numbers); every per-file rule on a
 * minimal bad fixture and its idiomatic good twin (ported from the
 * old cosim_lint tests and now immune to strings/comments by
 * construction); suppressions (new `cosim-analyze:` tag and the
 * legacy `cosim-lint:` alias); rule-set selection; --fix; the
 * cross-TU project passes (layering, include cycles, lock order,
 * registries, allowlist hygiene) driven through in-memory file sets;
 * a table-driven corpus that the suite asserts covers EVERY rule
 * --list-rules reports; and the SARIF/baseline/cache plumbing.
 *
 * Fixtures are embedded strings analyzed through the pure
 * entry points, so the tests never touch the file system.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/cosim_analyze/analyzer.hh"
#include "tools/cosim_analyze/include_graph.hh"
#include "tools/cosim_analyze/lexer.hh"
#include "tools/cosim_analyze/lock_order.hh"
#include "tools/cosim_analyze/registry.hh"
#include "tools/cosim_analyze/rules.hh"
#include "tools/cosim_analyze/sarif.hh"

namespace cosim_analyze {
namespace {

using FileSet = std::vector<std::pair<std::string, std::string>>;

/** All findings for @p content analyzed as @p rel_path. */
std::vector<Finding>
lint(const std::string& rel_path, const std::string& content)
{
    return lintContent(rel_path, content, ruleSetFor(rel_path));
}

/** The rule names found, in reporting order. */
std::vector<std::string>
rulesHit(const std::string& rel_path, const std::string& content)
{
    std::vector<std::string> out;
    for (const Finding& f : lint(rel_path, content))
        out.push_back(f.rule);
    return out;
}

bool
hasRule(const std::vector<std::string>& rules, const std::string& rule)
{
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

/**
 * In-memory mirror of analyzeTree's stage two: per-file findings plus
 * every project pass, with optional analysis.allow content and
 * registry manifests ("metrics", "fault_sites", "stats_keys",
 * "schemas" keys).
 */
std::vector<Finding>
analyzeSet(const FileSet& fileset, const std::string& allow_content = "",
           const std::map<std::string, std::string>& manifests = {})
{
    std::vector<FileFacts> files;
    std::vector<Finding> findings;
    for (const auto& [path, content] : fileset) {
        files.push_back(extractFileFacts(path, content));
        findings.insert(findings.end(), files.back().findings.begin(),
                        files.back().findings.end());
    }
    std::vector<AllowEntry> allows = parseAllowFile(
        "tools/cosim_analyze/analysis.allow", allow_content, &findings);
    std::vector<bool> used(allows.size(), false);
    {
        auto f = checkIncludeGraph(files, allows, &used);
        findings.insert(findings.end(), f.begin(), f.end());
    }
    {
        auto f = checkLockOrder(files, allows, &used);
        findings.insert(findings.end(), f.begin(), f.end());
    }
    Registries regs;
    auto man = [&](const char* key, const char* file) {
        auto it = manifests.find(key);
        return parseRegistry(std::string("tools/registries/") + file,
                             it == manifests.end() ? "" : it->second);
    };
    regs.faultSites = man("fault_sites", "fault_sites.txt");
    regs.metrics = man("metrics", "metrics.txt");
    regs.statsKeys = man("stats_keys", "stats_keys.txt");
    regs.schemas = man("schemas", "schemas.txt");
    {
        auto f = checkRegistries(files, regs);
        findings.insert(findings.end(), f.begin(), f.end());
    }
    for (std::size_t i = 0; i < allows.size(); ++i) {
        if (!used[i])
            findings.push_back(
                Finding{"tools/cosim_analyze/analysis.allow",
                        allows[i].line, "allowlist-hygiene",
                        "unused allowlist entry"});
    }
    return findings;
}

std::vector<std::string>
setRules(const FileSet& fileset, const std::string& allow = "",
         const std::map<std::string, std::string>& manifests = {})
{
    std::vector<std::string> out;
    for (const Finding& f : analyzeSet(fileset, allow, manifests))
        out.push_back(f.rule);
    return out;
}

// ---------------------------------------------------------------------
// The lexer.
// ---------------------------------------------------------------------

TEST(AnalyzeLexer, ClassifiesTokenKinds)
{
    TokenStream ts = lex("int x = 42; // done\n\"str\" 'c'\n");
    ASSERT_GE(ts.tokens.size(), 8u);
    EXPECT_TRUE(ts.tokens[0].isIdent("int"));
    EXPECT_TRUE(ts.tokens[1].isIdent("x"));
    EXPECT_TRUE(ts.tokens[2].isPunct("="));
    EXPECT_EQ(ts.tokens[3].kind, TokKind::Number);
    EXPECT_EQ(ts.tokens[3].text, "42");
    EXPECT_EQ(ts.tokens[5].kind, TokKind::Comment);
    // String/char token text is the *contents*, quotes stripped.
    EXPECT_EQ(ts.tokens[6].kind, TokKind::String);
    EXPECT_EQ(ts.tokens[6].text, "str");
    EXPECT_EQ(ts.tokens[6].line, 2);
    EXPECT_EQ(ts.tokens[7].kind, TokKind::CharLit);
}

TEST(AnalyzeLexer, CodeViewSkipsCommentsAndDirectives)
{
    TokenStream ts = lex("#include <vector>\n"
                         "// comment\n"
                         "int x; /* block */ int y;\n");
    ASSERT_EQ(ts.codeSize(), 6u);
    EXPECT_TRUE(ts.codeTok(0).isIdent("int"));
    EXPECT_TRUE(ts.codeTok(3).isIdent("int"));
}

TEST(AnalyzeLexer, RawStringsSwallowEverything)
{
    TokenStream ts =
        lex("auto s = R\"(rand(); time(nullptr); \" // )\";\n"
            "int after = 0;\n");
    bool found = false;
    for (const Token& t : ts.tokens) {
        if (t.kind == TokKind::String) {
            EXPECT_TRUE(t.rawString);
            EXPECT_EQ(t.text, "rand(); time(nullptr); \" // ");
            found = true;
        }
        // Nothing inside the raw string leaked out as an Ident.
        EXPECT_FALSE(t.isIdent("rand"));
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(ts.tokens.back().isPunct(";"));
}

TEST(AnalyzeLexer, CustomDelimiterRawString)
{
    TokenStream ts = lex("auto s = R\"xy(a )\" b)xy\";\n");
    ASSERT_GE(ts.codeSize(), 4u);
    EXPECT_EQ(ts.codeTok(3).kind, TokKind::String);
    EXPECT_EQ(ts.codeTok(3).text, "a )\" b");
}

TEST(AnalyzeLexer, DirectivesAreWholeLogicalLines)
{
    TokenStream ts = lex("#define LONG(a, b) \\\n    ((a) + (b))\n"
                         "int x;\n");
    ASSERT_GE(ts.tokens.size(), 1u);
    EXPECT_EQ(ts.tokens[0].kind, TokKind::Directive);
    EXPECT_EQ(directiveKeyword(ts.tokens[0].text), "define");
    // Continuation folded; the body is part of the directive token.
    EXPECT_NE(ts.tokens[0].text.find("(a) + (b)"), std::string::npos);
    EXPECT_TRUE(ts.tokens[1].isIdent("int"));
    EXPECT_EQ(ts.tokens[1].line, 3);
}

TEST(AnalyzeLexer, HashInsideCodeIsNotADirective)
{
    TokenStream ts = lex("int a = x # y;\n"); // not valid C++, still lexes
    for (const Token& t : ts.tokens)
        EXPECT_NE(t.kind, TokKind::Directive);
}

TEST(AnalyzeLexer, FusesScopeAndArrowOnly)
{
    TokenStream ts = lex("a::b->c << d\n");
    ASSERT_EQ(ts.codeSize(), 8u);
    EXPECT_TRUE(ts.codeTok(1).isPunct("::"));
    EXPECT_TRUE(ts.codeTok(3).isPunct("->"));
    // "<<" stays two tokens so template scans can count '<'.
    EXPECT_TRUE(ts.codeTok(5).isPunct("<"));
}

TEST(AnalyzeLexer, ParsesIncludeDirectives)
{
    IncludePath inc =
        parseIncludeDirective("#  include \"mem/dram.hh\"");
    EXPECT_EQ(inc.path, "mem/dram.hh");
    EXPECT_FALSE(inc.angled);
    inc = parseIncludeDirective("#include <vector>");
    EXPECT_EQ(inc.path, "vector");
    EXPECT_TRUE(inc.angled);
    EXPECT_TRUE(parseIncludeDirective("#define X 1").path.empty());
}

// ---------------------------------------------------------------------
// Determinism rules (simulation directories).
// ---------------------------------------------------------------------

TEST(AnalyzeDeterminism, RandFamilyFlaggedInSimCode)
{
    EXPECT_TRUE(hasRule(rulesHit("src/cache/x.cc",
                                 "int f() { return rand(); }\n"),
                        "no-rand"));
    EXPECT_TRUE(hasRule(rulesHit("src/dragonhead/x.cc",
                                 "void g() { srand(1); }\n"),
                        "no-rand"));
    EXPECT_TRUE(hasRule(rulesHit("src/mem/x.cc",
                                 "double d = drand48();\n"),
                        "no-rand"));
    // std::rand through the scope operator is still rand.
    EXPECT_TRUE(hasRule(rulesHit("src/trace/x.cc",
                                 "int v = std::rand();\n"),
                        "no-rand"));
}

TEST(AnalyzeDeterminism, IdentifiersContainingRandAreNotFlagged)
{
    // Substrings must not match: operand, random-looking member names.
    EXPECT_TRUE(rulesHit("src/cache/x.cc",
                         "int operand = 3;\n"
                         "int myrand(int brand) { return brand; }\n")
                    .empty());
}

TEST(AnalyzeDeterminism, MemberCallsNamedLikeLibcAreNotFlagged)
{
    // Token context the line-regex core could not see: obj.time() is
    // some object's method, not ::time().
    EXPECT_TRUE(rulesHit("src/cache/x.cc",
                         "int f(Clock& c) { return c.time(); }\n")
                    .empty());
    EXPECT_TRUE(rulesHit("src/cache/x.cc",
                         "int g(Rng* r) { return r->rand(); }\n")
                    .empty());
}

TEST(AnalyzeDeterminism, WallClockFlaggedInSimCode)
{
    EXPECT_TRUE(hasRule(rulesHit("src/core/x.cc",
                                 "long t = time(nullptr);\n"),
                        "no-time"));
    EXPECT_TRUE(hasRule(rulesHit("src/softsdv/x.cc",
                                 "gettimeofday(&tv, nullptr);\n"),
                        "no-time"));
    EXPECT_TRUE(hasRule(
        rulesHit("src/workloads/x.cc",
                 "auto n = std::chrono::system_clock::now();\n"),
        "no-system-clock"));
    // steady_clock is the sanctioned monotonic clock.
    EXPECT_TRUE(
        rulesHit("src/workloads/x.cc",
                 "auto n = std::chrono::steady_clock::now();\n")
            .empty());
}

TEST(AnalyzeDeterminism, RandomDeviceFlagged)
{
    EXPECT_TRUE(hasRule(rulesHit("src/prefetch/x.cc",
                                 "std::random_device rd;\n"),
                        "no-random-device"));
}

TEST(AnalyzeDeterminism, UnorderedIterationFlagged)
{
    const std::string code =
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> table;\n"
        "int sum() {\n"
        "    int s = 0;\n"
        "    for (const auto& kv : table)\n"
        "        s += kv.second;\n"
        "    return s;\n"
        "}\n";
    auto findings = lint("src/cache/x.cc", code);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-iteration");
    EXPECT_EQ(findings[0].line, 5);
}

TEST(AnalyzeDeterminism, NestedTemplateArgsStillResolveContainerName)
{
    const std::string code =
        "std::unordered_map<int, std::vector<std::pair<int, int>>> m;\n"
        "void f() {\n"
        "    for (auto& kv : m) { (void)kv; }\n"
        "}\n";
    EXPECT_TRUE(hasRule(rulesHit("src/cache/x.cc", code),
                        "unordered-iteration"));
}

TEST(AnalyzeDeterminism, OrderedIterationNotFlagged)
{
    const std::string code =
        "#include <map>\n"
        "std::map<int, int> table;\n"
        "int sum() {\n"
        "    int s = 0;\n"
        "    for (const auto& kv : table)\n"
        "        s += kv.second;\n"
        "    return s;\n"
        "}\n";
    EXPECT_TRUE(lint("src/cache/x.cc", code).empty());
}

TEST(AnalyzeDeterminism, CommentsStringsAndIncludesExempt)
{
    // The tokens appear only in prose, literals, or #include lines;
    // none of them can perturb simulation behaviour.
    const std::string code =
        "#include <ctime>\n"
        "// rand() would break replay here\n"
        "/* time(nullptr) too */\n"
        "const char* kMsg = \"called rand()\";\n";
    EXPECT_TRUE(lint("src/cache/x.cc", code).empty());
}

TEST(AnalyzeDeterminism, RawStringsExempt)
{
    // The regression the lexer port pins: a raw-string usage message
    // mentioning rand( / ofstream / system_clock is prose, not code.
    const std::string code =
        "const char* kHelp = R\"(seed with rand();\n"
        "write std::ofstream logs; read system_clock)\";\n";
    EXPECT_TRUE(lint("src/cache/x.cc", code).empty());
}

TEST(AnalyzeDeterminism, NotAppliedOutsideSimDirs)
{
    // tests/ and src/harness/ may use wall-clock time freely.
    EXPECT_TRUE(rulesHit("tests/x.cc", "long t = time(nullptr);\n")
                    .empty());
    EXPECT_TRUE(
        rulesHit("src/harness/x.cc", "long t = time(nullptr);\n")
            .empty());
}

// ---------------------------------------------------------------------
// Library hygiene rules.
// ---------------------------------------------------------------------

TEST(AnalyzeHygiene, RawNewDeleteFlaggedInLibraryCode)
{
    EXPECT_TRUE(hasRule(rulesHit("src/obs/x.cc",
                                 "int* p = new int(3);\n"),
                        "no-raw-new"));
    EXPECT_TRUE(hasRule(rulesHit("src/obs/x.cc", "delete ptr;\n"),
                        "no-raw-delete"));
}

TEST(AnalyzeHygiene, DeletedFunctionsAreNotRawDelete)
{
    EXPECT_TRUE(
        rulesHit("src/obs/x.cc",
                 "struct S { S(const S&) = delete; };\n")
            .empty());
}

TEST(AnalyzeHygiene, PrintfFlaggedInLibraryButNotHarness)
{
    const std::string code = "void f() { printf(\"x\"); }\n";
    EXPECT_TRUE(hasRule(rulesHit("src/base/x.cc", code), "no-printf"));
    EXPECT_TRUE(rulesHit("src/harness/x.cc", code).empty());
    EXPECT_TRUE(rulesHit("tools/cosim_analyze/x.cc", code).empty());
}

TEST(AnalyzeHygiene, SnprintfIsDeterministicFormattingNotOutput)
{
    EXPECT_TRUE(
        rulesHit("src/base/x.cc",
                 "void f(char* b) { snprintf(b, 8, \"x\"); }\n")
            .empty());
}

TEST(AnalyzeHygiene, IncludeOfNewHeaderIsNotRawNew)
{
    EXPECT_TRUE(rulesHit("src/base/x.cc", "#include <new>\n").empty());
}

TEST(AnalyzeHygiene, RawOfstreamFlaggedOutsideBase)
{
    const std::string code =
        "void f() { std::ofstream out(\"x.csv\"); }\n";
    EXPECT_TRUE(hasRule(rulesHit("src/obs/x.cc", code),
                        "no-raw-ofstream"));
    EXPECT_TRUE(hasRule(rulesHit("src/trace/x.cc", code),
                        "no-raw-ofstream"));
    // base/ holds AtomicFile itself; non-src trees are CLI/test code.
    EXPECT_TRUE(rulesHit("src/base/x.cc", code).empty());
    EXPECT_TRUE(rulesHit("tools/cosim_analyze/x.cc", code).empty());
    EXPECT_TRUE(rulesHit("tests/x.cc", code).empty());
}

TEST(AnalyzeHygiene, OfstreamInCommentsAndIncludesNotFlagged)
{
    EXPECT_TRUE(rulesHit("src/obs/x.cc",
                         "#include <fstream>\n"
                         "// the old std::ofstream path is gone\n"
                         "int myofstream = 0;\n")
                    .empty());
}

// ---------------------------------------------------------------------
// FSB delivery discipline (src/softsdv/ only).
// ---------------------------------------------------------------------

TEST(AnalyzeFsbIssue, DirectIssueFlaggedInSoftsdv)
{
    EXPECT_TRUE(hasRule(rulesHit("src/softsdv/cpu_model.cc",
                                 "void f() { fsb_->issue(txn); }\n"),
                        "fsb-direct-issue"));
    EXPECT_TRUE(hasRule(rulesHit("src/softsdv/x.cc",
                                 "void g(FrontSideBus* fsb) { "
                                 "fsb->issue(t); }\n"),
                        "fsb-direct-issue"));
}

TEST(AnalyzeFsbIssue, OtherTreesAndRecorderCallsAreFine)
{
    // The rule is softsdv/'s delivery discipline, not a repo-wide ban:
    // the bus's own code, tests and the harness issue directly.
    const std::string code = "void f() { fsb_->issue(txn); }\n";
    EXPECT_FALSE(hasRule(rulesHit("src/mem/fsb.cc", code),
                         "fsb-direct-issue"));
    EXPECT_FALSE(hasRule(rulesHit("tests/x.cc", code),
                         "fsb-direct-issue"));
    // Recording into the slot's sink is the sanctioned path.
    EXPECT_FALSE(hasRule(rulesHit("src/softsdv/x.cc",
                                  "void f() { sink_->issue(txn); }\n"),
                         "fsb-direct-issue"));
}

TEST(AnalyzeFsbIssue, MergePathAllowSuppresses)
{
    EXPECT_FALSE(hasRule(
        rulesHit("src/softsdv/dex_scheduler.cc",
                 "// cosim-analyze: allow(fsb-direct-issue)\n"
                 "void merge() { fsb_->issue(txn); }\n"),
        "fsb-direct-issue"));
}

// ---------------------------------------------------------------------
// Sampled-simulation rules (plan writers, interval selection).
// ---------------------------------------------------------------------

TEST(AnalyzeSampledPlan, RawIoFlaggedInPlanWriters)
{
    // A file that names the plan schema is a plan writer; its file I/O
    // must go through AtomicFile.
    EXPECT_TRUE(hasRule(
        rulesHit("src/trace/x.cc",
                 "const char* kSchema = \"cosim-plan/1\";\n"
                 "void save() { std::ofstream out(path_); }\n"),
        "plan-atomic-write"));
    EXPECT_TRUE(hasRule(
        rulesHit("src/harness/x.cc",
                 "const char* kSchema = \"cosim-plan/1\";\n"
                 "void save() { std::FILE* f = std::fopen(p, \"w\"); }\n"),
        "plan-atomic-write"));
}

TEST(AnalyzeSampledPlan, FilesOutsideThePlanBusinessAreFine)
{
    // ofstream without the schema mention is no-raw-ofstream's
    // business, not this rule's.
    EXPECT_FALSE(hasRule(
        rulesHit("src/trace/x.cc",
                 "void save() { std::ofstream out(path_); }\n"),
        "plan-atomic-write"));
    // Non-src trees (tests write fixture plans however they like).
    EXPECT_FALSE(hasRule(
        rulesHit("tests/x.cc",
                 "const char* kSchema = \"cosim-plan/1\";\n"
                 "void save() { std::ofstream out(path_); }\n"),
        "plan-atomic-write"));
}

TEST(AnalyzeJournalAppend, RawIoFlaggedInJournalWriters)
{
    // A file that names the journal schema is a journal writer; its
    // records must go through DurableAppendFile.
    EXPECT_TRUE(hasRule(
        rulesHit("src/harness/x.cc",
                 "const char* kSchema = \"cosim-journal/1\";\n"
                 "void log() { std::ofstream out(path_); }\n"),
        "journal-atomic-append"));
    EXPECT_TRUE(hasRule(
        rulesHit("src/harness/x.cc",
                 "const char* kSchema = \"cosim-journal/1\";\n"
                 "void log() { std::FILE* f = std::fopen(p, \"a\"); }\n"),
        "journal-atomic-append"));
    // The plain (truncating, unsynced) appender is exactly the bug the
    // rule exists to catch.
    EXPECT_TRUE(hasRule(
        rulesHit("src/harness/x.cc",
                 "const char* kSchema = \"cosim-journal/1\";\n"
                 "AppendFile file_(path_);\n"),
        "journal-atomic-append"));
}

TEST(AnalyzeJournalAppend, DurableAppendAndOutsidersAreFine)
{
    // The blessed helper is a different identifier, not a match.
    EXPECT_FALSE(hasRule(
        rulesHit("src/harness/x.cc",
                 "const char* kSchema = \"cosim-journal/1\";\n"
                 "DurableAppendFile file_(path_);\n"),
        "journal-atomic-append"));
    // ofstream without the schema mention is no-raw-ofstream's
    // business, not this rule's.
    EXPECT_FALSE(hasRule(
        rulesHit("src/harness/x.cc",
                 "void log() { std::ofstream out(path_); }\n"),
        "journal-atomic-append"));
    // Non-src trees: tests forge corrupt journals with raw I/O on
    // purpose, and the inspector merely reads them.
    EXPECT_FALSE(hasRule(
        rulesHit("tests/x.cc",
                 "const char* kSchema = \"cosim-journal/1\";\n"
                 "void forge() { std::ofstream out(path_); }\n"),
        "journal-atomic-append"));
}

TEST(AnalyzeIntervalWallclock, HostClockFlaggedInSelectionCode)
{
    // steady_clock passes the determinism group but still breaks plan
    // reproducibility inside interval-selection code.
    EXPECT_TRUE(hasRule(
        rulesHit("src/trace/x.cc",
                 "void pick(SamplingPlan& plan) {\n"
                 "    auto t0 = std::chrono::steady_clock::now();\n"
                 "}\n"),
        "interval-wallclock"));
    EXPECT_TRUE(hasRule(
        rulesHit("src/trace/x.cc",
                 "void f(const PlanInterval& iv) { time(nullptr); }\n"),
        "interval-wallclock"));
}

TEST(AnalyzeIntervalWallclock, TimingOutsideSelectionCodeIsFine)
{
    // trace/ files with no interval selection time their own passes
    // (fsb_replay.cc, fsb_capture.cc).
    EXPECT_FALSE(hasRule(
        rulesHit("src/trace/x.cc",
                 "auto t0 = std::chrono::steady_clock::now();\n"),
        "interval-wallclock"));
    // core/cosim.cc times the sampled pass around the selection code;
    // the rule is scoped to src/trace/.
    EXPECT_FALSE(hasRule(
        rulesHit("src/core/x.cc",
                 "void f(const SamplingPlan& p) {\n"
                 "    auto t0 = std::chrono::steady_clock::now();\n"
                 "}\n"),
        "interval-wallclock"));
}

// ---------------------------------------------------------------------
// Metric-name rule (obs::metrics registrations).
// ---------------------------------------------------------------------

TEST(AnalyzeMetricName, WellFormedRegistrationsPass)
{
    EXPECT_TRUE(
        rulesHit("src/mem/x.cc",
                 "static const obs::metrics::Counter c =\n"
                 "    obs::metrics::counter(\"fsb.batch_txns\",\n"
                 "                          \"txns per batch\");\n"
                 "static const obs::metrics::Histogram h =\n"
                 "    obs::metrics::histogram(\n"
                 "        \"mem.miss_latency_cycles\", \"miss lat\");\n")
            .empty());
}

TEST(AnalyzeMetricName, MalformedNamesFlagged)
{
    for (const char* bad :
         {"Bad.Name", "1starts.with.digit", "has-dash", "_lead"}) {
        auto findings =
            lint("src/core/x.cc",
                 std::string("auto c = obs::metrics::counter(\"") + bad +
                     "\", \"help\");\n");
        ASSERT_EQ(findings.size(), 1u) << bad;
        EXPECT_EQ(findings[0].rule, "metric-name") << bad;
        EXPECT_NE(findings[0].message.find("[a-z][a-z0-9_.]*"),
                  std::string::npos);
    }
}

TEST(AnalyzeMetricName, NameOnTheLineAfterTheCallIsStillChecked)
{
    // Registration sites wrap: the literal often lands on the line
    // after counter(/histogram(. The finding points at the literal.
    auto findings = lint("src/harness/x.cc",
                         "auto h = obs::metrics::histogram(\n"
                         "    \"Sweep.Cell_Wall_Ms\", \"wall ms\");\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "metric-name");
    EXPECT_EQ(findings[0].line, 2);
}

TEST(AnalyzeMetricName, DuplicateRegistrationInOneFileFlagged)
{
    auto findings =
        lint("src/mem/x.cc",
             "auto a = obs::metrics::counter(\"bus.reads\", \"r\");\n"
             "auto b = obs::metrics::counter(\"bus.reads\", \"r\");\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "metric-name");
    EXPECT_EQ(findings[0].line, 2);
    EXPECT_NE(findings[0].message.find("more than once"),
              std::string::npos);
}

TEST(AnalyzeMetricName, ComputedNamesAndDeclarationsIgnored)
{
    // Non-literal first args can't be checked statically; declarations
    // of the registration API itself have a type, not a literal.
    EXPECT_TRUE(
        rulesHit("src/obs/x.hh",
                 "#ifndef COSIM_OBS_X_HH\n"
                 "#define COSIM_OBS_X_HH\n"
                 "Counter counter(const std::string& name,\n"
                 "                const std::string& help);\n"
                 "#endif // COSIM_OBS_X_HH\n")
            .empty());
    EXPECT_TRUE(rulesHit("src/core/x.cc",
                         "auto c = obs::metrics::counter(name(), h);\n")
                    .empty());
}

TEST(AnalyzeMetricName, OnlySrcTreesAreChecked)
{
    // Tests register deliberately bad names in death tests.
    EXPECT_TRUE(
        rulesHit("tests/test_metrics.cc",
                 "auto c = obs::metrics::counter(\"Bad.Name\", \"\");\n")
            .empty());
}

TEST(AnalyzeMetricName, AllowSuppresses)
{
    EXPECT_TRUE(
        rulesHit("src/core/x.cc",
                 "// cosim-analyze: allow(metric-name)\n"
                 "auto c = obs::metrics::counter(\"Legacy.Name\", "
                 "\"h\");\n")
            .empty());
}

// ---------------------------------------------------------------------
// Mechanical rules.
// ---------------------------------------------------------------------

TEST(AnalyzeMechanical, HeaderGuardMustBeCanonical)
{
    const std::string bad = "#ifndef WRONG_HH\n#define WRONG_HH\n"
                            "#endif // WRONG_HH\n";
    auto findings = lint("src/obs/widget.hh", bad);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "header-guard");

    const std::string good =
        "#ifndef COSIM_OBS_WIDGET_HH\n#define COSIM_OBS_WIDGET_HH\n"
        "#endif // COSIM_OBS_WIDGET_HH\n";
    EXPECT_TRUE(lint("src/obs/widget.hh", good).empty());
}

TEST(AnalyzeMechanical, CanonicalGuardDropsSrcKeepsOtherTrees)
{
    EXPECT_EQ(canonicalGuard("src/obs/json.hh"), "COSIM_OBS_JSON_HH");
    EXPECT_EQ(canonicalGuard("tests/test_util.hh"),
              "COSIM_TESTS_TEST_UTIL_HH");
    EXPECT_EQ(canonicalGuard("tools/cosim_analyze/lexer.hh"),
              "COSIM_TOOLS_COSIM_ANALYZE_LEXER_HH");
}

TEST(AnalyzeMechanical, GuardLookingLinesInsideCommentsIgnored)
{
    // A commented-out guard is not a guard; the real (wrong) one is.
    const std::string code = "/*\n"
                             "#ifndef COSIM_OBS_WIDGET_HH\n"
                             "*/\n"
                             "#ifndef WRONG_HH\n"
                             "#define WRONG_HH\n"
                             "#endif // WRONG_HH\n";
    auto findings = lint("src/obs/widget.hh", code);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "header-guard");
    EXPECT_EQ(findings[0].line, 4);
}

TEST(AnalyzeMechanical, ProjectIncludesUseQuotes)
{
    EXPECT_TRUE(hasRule(rulesHit("src/mem/x.cc",
                                 "#include <cache/cache.hh>\n"),
                        "include-hygiene"));
    EXPECT_TRUE(hasRule(rulesHit("src/mem/x.cc",
                                 "#include \"../cache/cache.hh\"\n"),
                        "include-hygiene"));
    // System and project-quoted includes are fine.
    EXPECT_TRUE(rulesHit("src/mem/x.cc",
                         "#include <vector>\n"
                         "#include \"cache/cache.hh\"\n")
                    .empty());
}

TEST(AnalyzeMechanical, TrailingWhitespaceFlagged)
{
    auto findings = lint("src/mem/x.cc", "int x;  \nint y;\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "trailing-whitespace");
    EXPECT_EQ(findings[0].line, 1);
}

// ---------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------

TEST(AnalyzeSuppression, SameLineAllow)
{
    EXPECT_TRUE(
        lint("src/cache/x.cc",
             "long t = time(nullptr); // cosim-analyze: allow(no-time)\n")
            .empty());
}

TEST(AnalyzeSuppression, PrecedingLineAllow)
{
    EXPECT_TRUE(lint("src/cache/x.cc",
                     "// cosim-analyze: allow(no-time)\n"
                     "long t = time(nullptr);\n")
                    .empty());
}

TEST(AnalyzeSuppression, LegacyLintTagStillHonored)
{
    // Pre-rename suppressions in the tree keep working.
    EXPECT_TRUE(lint("src/cache/x.cc",
                     "// cosim-lint: allow(no-time)\n"
                     "long t = time(nullptr);\n")
                    .empty());
}

TEST(AnalyzeSuppression, AllowDoesNotLeakToLaterLines)
{
    auto findings = lint("src/cache/x.cc",
                         "// cosim-analyze: allow(no-time)\n"
                         "long t = time(nullptr);\n"
                         "long u = time(nullptr);\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 3);
}

TEST(AnalyzeSuppression, AllowIsRuleSpecific)
{
    // allow(no-rand) must not silence the no-time finding.
    auto rules = rulesHit(
        "src/cache/x.cc",
        "long t = time(nullptr); // cosim-analyze: allow(no-rand)\n");
    EXPECT_TRUE(hasRule(rules, "no-time"));
}

TEST(AnalyzeSuppression, AllowFileCoversWholeFile)
{
    EXPECT_TRUE(lint("src/cache/x.cc",
                     "// cosim-analyze: allow-file(no-time)\n"
                     "long t = time(nullptr);\n"
                     "long u = time(nullptr);\n")
                    .empty());
}

TEST(AnalyzeSuppression, DirectiveInsideBlockCommentCountsItsLine)
{
    // The allow sits on line 2 of a multi-line comment and must cover
    // lines 2-3, not the comment's first line.
    EXPECT_TRUE(lint("src/cache/x.cc",
                     "/* reasons\n"
                     "   cosim-analyze: allow(no-time) */\n"
                     "long t = time(nullptr);\n")
                    .empty());
}

// ---------------------------------------------------------------------
// Rule-set selection.
// ---------------------------------------------------------------------

TEST(AnalyzeRuleSets, SimulationDirsGetDeterminism)
{
    for (const char* dir : {"softsdv", "dragonhead", "cache", "mem",
                            "trace", "core", "workloads", "prefetch"}) {
        RuleSet rules =
            ruleSetFor(std::string("src/") + dir + "/x.cc");
        EXPECT_TRUE(rules.determinism) << dir;
        EXPECT_TRUE(rules.noRawNewDelete) << dir;
    }
}

TEST(AnalyzeRuleSets, BaseAndObsAreLibraryNotSimulation)
{
    // base/ and obs/ host the timing/profiling utilities, so wall-clock
    // reads are legitimate there; library hygiene still applies.
    for (const char* path : {"src/base/x.cc", "src/obs/x.cc"}) {
        RuleSet rules = ruleSetFor(path);
        EXPECT_FALSE(rules.determinism) << path;
        EXPECT_TRUE(rules.noRawNewDelete) << path;
        EXPECT_TRUE(rules.noPrintf) << path;
    }
    EXPECT_FALSE(ruleSetFor("src/base/x.cc").noRawOfstream);
    EXPECT_TRUE(ruleSetFor("src/obs/x.cc").noRawOfstream);
}

TEST(AnalyzeRuleSets, HarnessAndNonSrcTreesAreMechanicalOnly)
{
    for (const char* path :
         {"src/harness/x.cc", "tests/x.cc", "bench/x.cc",
          "examples/x.cc", "tools/cosim_analyze/x.cc"}) {
        RuleSet rules = ruleSetFor(path);
        EXPECT_FALSE(rules.determinism) << path;
        EXPECT_FALSE(rules.noPrintf) << path;
        EXPECT_TRUE(rules.headerGuard) << path;
        EXPECT_TRUE(rules.trailingWhitespace) << path;
    }
}

// ---------------------------------------------------------------------
// Fixing.
// ---------------------------------------------------------------------

TEST(AnalyzeFix, RewritesGuardIncludesAndWhitespace)
{
    const std::string before = "#ifndef WRONG_HH\n"
                               "#define WRONG_HH\n"
                               "#include <cache/cache.hh>\n"
                               "int x;  \n"
                               "#endif // WRONG_HH\n";
    const RuleSet rules = ruleSetFor("src/cache/probe.hh");
    const std::string after =
        fixContent("src/cache/probe.hh", before, rules);
    EXPECT_EQ(after, "#ifndef COSIM_CACHE_PROBE_HH\n"
                     "#define COSIM_CACHE_PROBE_HH\n"
                     "#include \"cache/cache.hh\"\n"
                     "int x;\n"
                     "#endif // COSIM_CACHE_PROBE_HH\n");
    EXPECT_TRUE(lint("src/cache/probe.hh", after).empty());
}

TEST(AnalyzeFix, IsIdempotent)
{
    const std::string before = "#ifndef WRONG_HH\n"
                               "#define WRONG_HH\n"
                               "#include <mem/dram.hh>\n"
                               "#endif\n";
    const RuleSet rules = ruleSetFor("src/mem/probe.hh");
    const std::string once =
        fixContent("src/mem/probe.hh", before, rules);
    EXPECT_EQ(fixContent("src/mem/probe.hh", once, rules), once);
}

TEST(AnalyzeFix, DoesNotTouchNonMechanicalFindings)
{
    const std::string before = "long t = time(nullptr);\n";
    const RuleSet rules = ruleSetFor("src/cache/x.cc");
    EXPECT_EQ(fixContent("src/cache/x.cc", before, rules), before);
}

TEST(AnalyzeFix, DoesNotRewriteDirectiveLookingTextInRawStrings)
{
    // An include-looking line inside a raw string is data.
    const std::string before =
        "const char* kDoc = R\"(\n"
        "#include <cache/cache.hh>\n"
        ")\";\n";
    const RuleSet rules = ruleSetFor("src/cache/x.cc");
    EXPECT_EQ(fixContent("src/cache/x.cc", before, rules), before);
}

TEST(AnalyzeFindings, FormatIsFileLineRuleMessage)
{
    auto findings = lint("src/cache/x.cc", "int v = rand();\n");
    ASSERT_EQ(findings.size(), 1u);
    const std::string text = findings[0].format();
    EXPECT_EQ(text.rfind("src/cache/x.cc:1: no-rand: ", 0), 0u) << text;
}

// ---------------------------------------------------------------------
// Project passes: the table-driven corpus. Each case names the rule it
// exercises, a bad file set that must fire it and a good twin that
// must not; a final test asserts the corpus plus the per-file tests
// above cover every rule --list-rules reports.
// ---------------------------------------------------------------------

struct CorpusCase
{
    const char* rule;
    FileSet bad;
    FileSet good;
    std::string allow = {};                            ///< for both sets
    std::map<std::string, std::string> manifests = {}; ///< bad set
    /** Manifests for the good set; empty means "same as the bad
     * set's" (the registry cases need the twin to differ). */
    std::map<std::string, std::string> goodManifests = {};
};

const char* kGuardedHeaderA =
    "#ifndef COSIM_MEM_UP_HH\n#define COSIM_MEM_UP_HH\n"
    "#include \"core/cosim.hh\"\n#endif // COSIM_MEM_UP_HH\n";

std::vector<CorpusCase>
corpus()
{
    std::vector<CorpusCase> cases;

    cases.push_back(
        {"layer-violation",
         {{"src/mem/up.hh", kGuardedHeaderA}},
         {{"src/core/down.hh",
           "#ifndef COSIM_CORE_DOWN_HH\n#define COSIM_CORE_DOWN_HH\n"
           "#include \"mem/dram.hh\"\n#endif // COSIM_CORE_DOWN_HH\n"}},
         "",
         {}});

    // obs is special-cased on both sides of the gate.
    cases.push_back(
        {"layer-violation",
         {{"src/obs/peek.hh",
           "#ifndef COSIM_OBS_PEEK_HH\n#define COSIM_OBS_PEEK_HH\n"
           "#include \"mem/dram.hh\"\n#endif // COSIM_OBS_PEEK_HH\n"}},
         {{"src/mem/instrumented.hh",
           "#ifndef COSIM_MEM_INSTRUMENTED_HH\n"
           "#define COSIM_MEM_INSTRUMENTED_HH\n"
           "#include \"obs/metrics.hh\"\n"
           "#include \"base/logging.hh\"\n"
           "#endif // COSIM_MEM_INSTRUMENTED_HH\n"}},
         "",
         {}});

    cases.push_back(
        {"include-cycle",
         {{"src/base/ring_a.hh",
           "#ifndef COSIM_BASE_RING_A_HH\n#define COSIM_BASE_RING_A_HH\n"
           "#include \"base/ring_b.hh\"\n#endif // COSIM_BASE_RING_A_HH\n"},
          {"src/base/ring_b.hh",
           "#ifndef COSIM_BASE_RING_B_HH\n#define COSIM_BASE_RING_B_HH\n"
           "#include \"base/ring_a.hh\"\n#endif // COSIM_BASE_RING_B_HH\n"}},
         {{"src/base/chain_a.hh",
           "#ifndef COSIM_BASE_CHAIN_A_HH\n#define COSIM_BASE_CHAIN_A_HH\n"
           "#include \"base/chain_b.hh\"\n#endif // COSIM_BASE_CHAIN_A_HH\n"},
          {"src/base/chain_b.hh",
           "#ifndef COSIM_BASE_CHAIN_B_HH\n#define COSIM_BASE_CHAIN_B_HH\n"
           "#endif // COSIM_BASE_CHAIN_B_HH\n"}},
         "",
         {}});

    const char* lock_cycle_bad =
        "struct Left { Mutex leftMutex_; };\n"
        "struct Right { Mutex rightMutex_; };\n"
        "void ab(Left& l, Right& r) {\n"
        "    LockGuard a(l.leftMutex_);\n"
        "    LockGuard b(r.rightMutex_);\n"
        "}\n"
        "void ba(Left& l, Right& r) {\n"
        "    LockGuard a(r.rightMutex_);\n"
        "    LockGuard b(l.leftMutex_);\n"
        "}\n";
    const char* lock_cycle_good =
        "struct Left { Mutex leftMutex_; };\n"
        "struct Right { Mutex rightMutex_; };\n"
        "void ab(Left& l, Right& r) {\n"
        "    LockGuard a(l.leftMutex_);\n"
        "    LockGuard b(r.rightMutex_);\n"
        "}\n"
        "void ab2(Left& l, Right& r) {\n"
        "    LockGuard a(l.leftMutex_);\n"
        "    LockGuard b(r.rightMutex_);\n"
        "}\n";
    cases.push_back({"lock-order-cycle",
                     {{"src/base/two_orders.cc", lock_cycle_bad}},
                     {{"src/base/one_order.cc", lock_cycle_good}},
                     "",
                     {}});

    // Cross-TU variant: the cycle only exists through a call made
    // while holding a lock, with the callee defined in another file.
    cases.push_back(
        {"lock-order-cycle",
         {{"src/base/holder.cc",
           "struct Holder { Mutex holderMutex_; };\n"
           "void takeOther();\n"
           "void outer(Holder& h) {\n"
           "    LockGuard g(h.holderMutex_);\n"
           "    takeOther();\n"
           "}\n"},
          {"src/base/other.cc",
           "struct Other { Mutex otherMutex_; };\n"
           "struct Holder;\n"
           "void backIn(Holder& h);\n"
           "void takeOther() {\n"
           "    Other o;\n"
           "    LockGuard g(o.otherMutex_);\n"
           "    backIn(held_);\n"
           "}\n"
           "void backIn(Holder& h) {\n"
           "    LockGuard g(h.holderMutex_);\n"
           "}\n"}},
         {{"src/base/callee_no_lock.cc",
           "struct Holder { Mutex holderMutex_; };\n"
           "void logOnly();\n"
           "void outer(Holder& h) {\n"
           "    LockGuard g(h.holderMutex_);\n"
           "    logOnly();\n"
           "}\n"
           "void logOnly() { int x = 0; (void)x; }\n"}},
         "",
         {}});

    cases.push_back(
        {"unregistered-fault-site",
         {{"src/mem/f.cc", "void f() { COSIM_FAULT_POINT(\"mem.oops\"); }\n"}},
         {{"src/mem/f.cc", "void f() { COSIM_FAULT_POINT(\"mem.oops\"); }\n"}},
         "",
         {{"fault_sites", "mem.oops\n"}}});
    cases.back().bad[0].second =
        "void f() { COSIM_FAULT_POINT(\"mem.unlisted\"); }\n";

    cases.push_back(
        {"duplicate-fault-site",
         {{"src/mem/f1.cc", "void f() { COSIM_FAULT_POINT(\"dup.site\"); }\n"},
          {"src/mem/f2.cc", "void g() { faultPending(\"dup.site\"); }\n"}},
         {{"src/mem/f1.cc", "void f() { COSIM_FAULT_POINT(\"dup.site\"); }\n"}},
         "",
         {{"fault_sites", "dup.site\n"}}});

    cases.push_back(
        {"fault-site-name",
         {{"src/mem/f.cc", "void f() { COSIM_FAULT_POINT(\"Bad.Site\"); }\n"}},
         {{"src/mem/f.cc", "void f() { COSIM_FAULT_POINT(\"good.site\"); }\n"}},
         "",
         {{"fault_sites", "Bad.Site\ngood.site\n"}}});

    cases.push_back(
        {"unregistered-metric",
         {{"src/mem/m.cc",
           "auto c = obs::metrics::counter(\"mem.unlisted\", \"h\");\n"}},
         {{"src/mem/m.cc",
           "auto c = obs::metrics::counter(\"mem.listed\", \"h\");\n"}},
         "",
         {{"metrics", "mem.listed\n"}}});

    cases.push_back(
        {"duplicate-metric",
         {{"src/mem/m1.cc",
           "auto c = obs::metrics::counter(\"dup.metric\", \"h\");\n"},
          {"src/core/m2.cc",
           "auto c = obs::metrics::counter(\"dup.metric\", \"h\");\n"}},
         {{"src/mem/m1.cc",
           "auto c = obs::metrics::counter(\"dup.metric\", \"h\");\n"}},
         "",
         {{"metrics", "dup.metric\n"}}});

    cases.push_back(
        {"unregistered-stat-key",
         {{"src/cache/s.cc",
           "void f(stats::Group& g) { g.add(\"unlisted_key\"); }\n"}},
         {{"src/cache/s.cc",
           "void f(stats::Group& g) { g.add(\"listed_key\"); }\n"}},
         "",
         {{"stats_keys", "listed_key\n"}}});

    cases.push_back(
        {"stat-key-name",
         {{"src/cache/s.cc",
           "void f(stats::Group& g) { g.add(\"BadKey\"); }\n"}},
         {{"src/cache/s.cc",
           "void f(stats::Group& g) { g.add(\"good_key\"); }\n"}},
         "",
         {{"stats_keys", "BadKey\ngood_key\n"}}});

    cases.push_back(
        {"unregistered-schema",
         {{"src/trace/w.cc",
           "const char* kHeader = \"# cosim-widget-dump/2\\n\";\n"}},
         {{"src/trace/w.cc",
           "const char* kHeader = \"# cosim-widget-dump/2\\n\";\n"}},
         "",
         {},
         {{"schemas", "cosim-widget-dump/2\n"}}});

    cases.push_back(
        {"stale-registry-entry",
         {{"src/mem/m.cc",
           "auto c = obs::metrics::counter(\"mem.live\", \"h\");\n"}},
         {{"src/mem/m.cc",
           "auto c = obs::metrics::counter(\"mem.live\", \"h\");\n"}},
         "",
         {{"metrics", "mem.live\nmem.ghost\n"}},
         {{"metrics", "mem.live\n"}}});

    cases.push_back(
        {"allowlist-hygiene",
         // Unused and justification-less entries both fire.
         {{"src/base/empty.cc", "int x = 0;\n"}},
         {{"src/mem/up.hh", kGuardedHeaderA}},
         "layering mem -> core: replay shim, scheduled for removal\n",
         {}});

    return cases;
}

TEST(AnalyzeCorpus, EveryBadSetFiresItsRuleEveryGoodSetDoesNot)
{
    for (const CorpusCase& c : corpus()) {
        const std::map<std::string, std::string>& good_manifests =
            c.goodManifests.empty() ? c.manifests : c.goodManifests;
        EXPECT_TRUE(hasRule(setRules(c.bad, c.allow, c.manifests),
                            c.rule))
            << "corpus bad set failed to fire " << c.rule;
        EXPECT_FALSE(hasRule(setRules(c.good, c.allow, good_manifests),
                             c.rule))
            << "corpus good set wrongly fired " << c.rule;
    }
}

TEST(AnalyzeCorpus, LayeringAllowlistEntryExcusesTheEdge)
{
    const FileSet bad = {{"src/mem/up.hh", kGuardedHeaderA}};
    EXPECT_TRUE(hasRule(setRules(bad), "layer-violation"));
    auto rules = setRules(
        bad, "layering mem -> core: replay shim, scheduled for removal\n");
    EXPECT_FALSE(hasRule(rules, "layer-violation"));
    // The entry matched, so no unused-entry hygiene finding either.
    EXPECT_FALSE(hasRule(rules, "allowlist-hygiene"));
}

TEST(AnalyzeCorpus, MalformedAllowEntriesFlagged)
{
    std::vector<Finding> findings;
    auto entries = parseAllowFile("tools/cosim_analyze/analysis.allow",
                                  "layering mem -> core\n"      // no just.
                                  "teleport a -> b: because\n"  // bad pass
                                  "layering mem core: text\n",  // no arrow
                                  &findings);
    EXPECT_TRUE(entries.empty());
    ASSERT_EQ(findings.size(), 3u);
    for (const Finding& f : findings)
        EXPECT_EQ(f.rule, "allowlist-hygiene");
}

TEST(AnalyzeCorpus, WellFormedAllowEntryParses)
{
    std::vector<Finding> findings;
    auto entries = parseAllowFile(
        "tools/cosim_analyze/analysis.allow",
        "# comment\n"
        "lock-order A::m_ -> B::n_: B is only reachable from A\n",
        &findings);
    EXPECT_TRUE(findings.empty());
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].pass, "lock-order");
    EXPECT_EQ(entries[0].from, "A::m_");
    EXPECT_EQ(entries[0].to, "B::n_");
    EXPECT_EQ(entries[0].justification, "B is only reachable from A");
    EXPECT_EQ(entries[0].line, 2);
}

TEST(AnalyzeLockOrder, SelfDeadlockReported)
{
    const FileSet files = {
        {"src/base/self.cc",
         "struct Widget { Mutex widgetMutex_; };\n"
         "void inner(Widget& w) { LockGuard g(w.widgetMutex_); }\n"
         "void outer(Widget& w) {\n"
         "    LockGuard g(w.widgetMutex_);\n"
         "    inner(w);\n"
         "}\n"}};
    auto rules = setRules(files);
    EXPECT_TRUE(hasRule(rules, "lock-order-cycle"));
}

TEST(AnalyzeLockOrder, RequiresAnnotationMeansHeldNotReacquired)
{
    // A REQUIRES callee does not re-acquire: no self-deadlock.
    const FileSet files = {
        {"src/base/annotated.cc",
         "struct Widget { Mutex widgetMutex_; };\n"
         "void inner(Widget& w) REQUIRES(w.widgetMutex_);\n"
         "void inner(Widget& w) { int x = 0; (void)x; }\n"
         "void outer(Widget& w) {\n"
         "    LockGuard g(w.widgetMutex_);\n"
         "    inner(w);\n"
         "}\n"}};
    EXPECT_FALSE(hasRule(setRules(files), "lock-order-cycle"));
}

TEST(AnalyzeLockOrder, ScopeEndsReleaseTheGuard)
{
    // The two guards live in sibling scopes: never held together.
    const FileSet files = {
        {"src/base/scoped.cc",
         "struct Pair { Mutex firstMutex_; Mutex secondMutex_; };\n"
         "void f(Pair& p) {\n"
         "    { LockGuard a(p.firstMutex_); }\n"
         "    { LockGuard b(p.secondMutex_); }\n"
         "}\n"
         "void g(Pair& p) {\n"
         "    { LockGuard a(p.secondMutex_); }\n"
         "    { LockGuard b(p.firstMutex_); }\n"
         "}\n"}};
    EXPECT_FALSE(hasRule(setRules(files), "lock-order-cycle"));
}

TEST(AnalyzeLockOrder, SharedMemberNamesStayFileLocal)
{
    // Both classes name their mutex "mutex_": the resolver must not
    // merge them into one lock (which would fabricate a self-cycle).
    const FileSet files = {
        {"src/base/ambiguous.cc",
         "struct A { Mutex mutex_; };\n"
         "struct B { Mutex mutex_; };\n"
         "void f(A& a, B& b) {\n"
         "    LockGuard ga(a.mutex_);\n"
         "    LockGuard gb(b.mutex_);\n"
         "}\n"}};
    EXPECT_FALSE(hasRule(setRules(files), "lock-order-cycle"));
}

TEST(AnalyzeIncludeGraph, ModuleRanksMatchTheDeclaredOrder)
{
    EXPECT_EQ(moduleOf("src/mem/dram.cc"), "mem");
    EXPECT_EQ(moduleOf("tests/x.cc"), "");
    EXPECT_LT(moduleRank("base"), moduleRank("mem"));
    EXPECT_LT(moduleRank("mem"), moduleRank("cache"));
    EXPECT_LT(moduleRank("cache"), moduleRank("prefetch"));
    EXPECT_LT(moduleRank("prefetch"), moduleRank("dragonhead"));
    EXPECT_LT(moduleRank("dragonhead"), moduleRank("softsdv"));
    EXPECT_LT(moduleRank("softsdv"), moduleRank("trace"));
    EXPECT_LT(moduleRank("trace"), moduleRank("workloads"));
    EXPECT_LT(moduleRank("workloads"), moduleRank("core"));
    EXPECT_LT(moduleRank("core"), moduleRank("harness"));
    EXPECT_EQ(moduleRank("obs"), -1); // special-cased, not ranked
}

// ---------------------------------------------------------------------
// --list-rules completeness: every rule has a description, and every
// rule is exercised by this suite (per-file tests above or the corpus).
// ---------------------------------------------------------------------

TEST(AnalyzeRuleTable, EveryRuleHasADescription)
{
    auto all = allRules();
    EXPECT_GE(all.size(), 29u);
    std::set<std::string> unique(all.begin(), all.end());
    EXPECT_EQ(unique.size(), all.size()) << "duplicate rule names";
    for (const std::string& r : all)
        EXPECT_FALSE(ruleDescription(r).empty()) << r;
    EXPECT_TRUE(ruleDescription("no-such-rule").empty());
}

TEST(AnalyzeRuleTable, SuiteCoversEveryRule)
{
    // Rules exercised by dedicated per-file tests above.
    std::set<std::string> covered = {
        "no-rand",        "no-time",         "no-system-clock",
        "no-random-device", "unordered-iteration", "no-raw-new",
        "no-raw-delete",  "no-printf",       "no-raw-ofstream",
        "metric-name",    "fsb-direct-issue", "plan-atomic-write",
        "journal-atomic-append",
        "interval-wallclock", "header-guard", "include-hygiene",
        "trailing-whitespace",
    };
    for (const CorpusCase& c : corpus())
        covered.insert(c.rule);
    for (const std::string& r : allRules())
        EXPECT_TRUE(covered.count(r) > 0)
            << "rule '" << r
            << "' is listed by --list-rules but exercised by no test";
}

// ---------------------------------------------------------------------
// SARIF, fingerprints, baseline, cache serialization.
// ---------------------------------------------------------------------

TEST(AnalyzeSarif, FingerprintsAreStableAndLineInsensitive)
{
    Finding f{"src/cache/x.cc", 10, "no-rand", "msg"};
    const std::string a = fingerprintOf(f, "  int v = rand();", 0);
    Finding g = f;
    g.line = 99; // same code moved down the file
    EXPECT_EQ(fingerprintOf(g, "int v = rand();  ", 0), a);
    EXPECT_NE(fingerprintOf(f, "int w = rand();", 0), a);
    EXPECT_NE(fingerprintOf(f, "  int v = rand();", 1), a);
    EXPECT_EQ(a.size(), 16u);
}

TEST(AnalyzeSarif, DocumentShapeAndEscaping)
{
    FingerprintedFinding ff;
    ff.finding = Finding{"src/mem/x.cc", 3, "no-raw-ofstream",
                         "say \"quoted\"\n"};
    ff.fingerprint = "deadbeefdeadbeef";
    const std::string doc = toSarif({ff});
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(doc.find("\"ruleId\": \"no-raw-ofstream\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"startLine\": 3"), std::string::npos);
    EXPECT_NE(doc.find("say \\\"quoted\\\"\\n"), std::string::npos);
    EXPECT_NE(doc.find("deadbeefdeadbeef"), std::string::npos);
    // The rule table self-describes every rule.
    for (const std::string& r : allRules())
        EXPECT_NE(doc.find("\"id\": \"" + r + "\""), std::string::npos)
            << r;
}

TEST(AnalyzeSarif, BaselineRoundTrips)
{
    FingerprintedFinding a, b;
    a.fingerprint = "0123456789abcdef";
    b.fingerprint = "fedcba9876543210";
    const std::string body = formatBaseline({a, b});
    auto parsed = parseBaseline(body);
    EXPECT_EQ(parsed.size(), 2u);
    EXPECT_TRUE(parsed.count(a.fingerprint));
    EXPECT_TRUE(parsed.count(b.fingerprint));
    EXPECT_TRUE(parseBaseline("# only comments\n\n").empty());
}

TEST(AnalyzeCache, FileFactsSurviveSerialization)
{
    const std::string content =
        "#include \"base/mutex.hh\"\n"
        "struct Gadget { Mutex gadgetMutex_; };\n"
        "auto c = obs::metrics::counter(\"mem.cached\", \"h\");\n"
        "void f(Gadget& g) {\n"
        "    LockGuard l(g.gadgetMutex_);\n"
        "    helper(g); // cosim-analyze: allow(no-time)\n"
        "}\n"
        "long t = time(nullptr);\n";
    const FileFacts ff = extractFileFacts("src/mem/x.cc", content);
    const std::string hash = contentHash(content);
    const std::string blob = serializeFileFacts(ff, hash);

    FileFacts back;
    ASSERT_TRUE(deserializeFileFacts(blob, hash, &back));
    EXPECT_EQ(back.path, ff.path);
    EXPECT_EQ(back.findings, ff.findings);
    EXPECT_EQ(back.includes.size(), ff.includes.size());
    EXPECT_EQ(back.idents.size(), ff.idents.size());
    ASSERT_EQ(back.mutexes.size(), ff.mutexes.size());
    EXPECT_EQ(back.mutexes[0].cls, "Gadget");
    EXPECT_EQ(back.mutexes[0].member, "gadgetMutex_");
    ASSERT_EQ(back.funcs.size(), ff.funcs.size());
    EXPECT_EQ(back.suppressions.fileWide, ff.suppressions.fileWide);
    EXPECT_EQ(back.suppressions.lines, ff.suppressions.lines);

    // A different content hash is a miss, not a lie.
    FileFacts miss;
    EXPECT_FALSE(deserializeFileFacts(blob, "0000000000000000", &miss));
    EXPECT_FALSE(deserializeFileFacts("garbage\n", hash, &miss));
}

TEST(AnalyzeCache, ContentHashIsStable)
{
    EXPECT_EQ(contentHash("abc"), contentHash("abc"));
    EXPECT_NE(contentHash("abc"), contentHash("abd"));
    EXPECT_EQ(contentHash("").size(), 16u);
}

} // namespace
} // namespace cosim_analyze
