/**
 * @file
 * Shared test helpers: a tiny configurable guest workload and a
 * transaction-counting bus snooper.
 */

#ifndef COSIM_TESTS_TEST_UTIL_HH
#define COSIM_TESTS_TEST_UTIL_HH

#include <vector>

#include "mem/fsb.hh"
#include "softsdv/guest.hh"
#include "workloads/sim_array.hh"

namespace cosim {
namespace test {

/**
 * A loop workload for driving the platform in tests, 8 bytes per load
 * with one compute op per load; deterministic and trivially verifiable.
 * Private mode: each thread sweeps its own `arrayBytes` array `passes`
 * times (working set scales with threads). Shared mode: the threads
 * partition one `arrayBytes` array (fixed total work and working set,
 * like the paper's shared-structure workloads).
 */
class LoopWorkload : public Workload
{
  public:
    LoopWorkload(std::size_t array_bytes, unsigned passes,
                 bool shared_array = false)
        : arrayBytes_(array_bytes), passes_(passes), shared_(shared_array)
    {}

    std::string name() const override { return "loop"; }
    std::string description() const override { return "test loop"; }

    void
    setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override
    {
        nThreads_ = cfg.nThreads;
        arrays_.clear();
        unsigned n_arrays = shared_ ? 1 : cfg.nThreads;
        arrays_.resize(n_arrays);
        for (unsigned i = 0; i < n_arrays; ++i) {
            arrays_[i].init(alloc, "loop.array" + std::to_string(i),
                            arrayBytes_ / 8);
            for (std::size_t k = 0; k < arrays_[i].size(); ++k)
                arrays_[i].host(k) = k;
        }
        sums_.assign(cfg.nThreads, 0);
        std::size_t n = arrays_[0].size();
        sliceLo_.assign(cfg.nThreads, 0);
        sliceHi_.assign(cfg.nThreads, n);
        if (shared_) {
            for (unsigned t = 0; t < cfg.nThreads; ++t) {
                sliceLo_[t] = n * t / cfg.nThreads;
                sliceHi_[t] = n * (t + 1) / cfg.nThreads;
            }
        }
    }

    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;

    bool
    verify() override
    {
        // Every thread must have accumulated its exact arithmetic sum.
        for (unsigned t = 0; t < nThreads_; ++t) {
            std::uint64_t expected = 0;
            for (std::size_t k = sliceLo_[t]; k < sliceHi_[t]; ++k)
                expected += k;
            expected *= passes_;
            if (sums_[t] != expected)
                return false;
        }
        return true;
    }

    std::uint64_t sum(unsigned tid) const { return sums_[tid]; }

  private:
    friend class LoopTask;

    std::size_t arrayBytes_;
    unsigned passes_;
    bool shared_;
    unsigned nThreads_ = 1;
    std::vector<SimArray<std::uint64_t>> arrays_;
    std::vector<std::uint64_t> sums_;
    std::vector<std::size_t> sliceLo_;
    std::vector<std::size_t> sliceHi_;
};

class LoopTask : public ThreadTask
{
  public:
    LoopTask(LoopWorkload& wl, unsigned tid) : wl_(wl), tid_(tid) {}

    // Reads from the (possibly shared) array are stable and each
    // thread only writes its own sums_[tid] slot, so concurrent
    // quanta cannot observe each other.
    bool parallelStepSafe() const override { return true; }

    bool
    step(CoreContext& ctx) override
    {
        auto& arr = wl_.arrays_[wl_.shared_ ? 0 : tid_];
        std::size_t lo = wl_.sliceLo_[tid_];
        std::size_t hi = wl_.sliceHi_[tid_];
        if (pos_ < lo)
            pos_ = lo;
        std::size_t chunk = std::min<std::size_t>(256, hi - pos_);
        for (std::size_t k = 0; k < chunk; ++k)
            wl_.sums_[tid_] += arr.read(ctx, pos_ + k);
        ctx.compute(chunk);
        pos_ += chunk;
        if (pos_ >= hi) {
            pos_ = lo;
            ++pass_;
        }
        return pass_ < wl_.passes_;
    }

  private:
    LoopWorkload& wl_;
    unsigned tid_;
    std::size_t pos_ = 0;
    unsigned pass_ = 0;
};

inline std::unique_ptr<ThreadTask>
LoopWorkload::createThread(unsigned tid)
{
    return std::make_unique<LoopTask>(*this, tid);
}

/** Counts the transactions it observes, by kind. */
class CountingSnooper : public BusSnooper
{
  public:
    void
    observe(const BusTransaction& txn) override
    {
        ++total;
        switch (txn.kind) {
          case TxnKind::ReadLine:
            ++reads;
            break;
          case TxnKind::WriteLine:
            ++writes;
            break;
          case TxnKind::Prefetch:
            ++prefetches;
            break;
          case TxnKind::Message:
            ++messages;
            break;
        }
        last = txn;
    }

    std::uint64_t total = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t messages = 0;
    BusTransaction last{};
};

} // namespace test
} // namespace cosim

#endif // COSIM_TESTS_TEST_UTIL_HH
