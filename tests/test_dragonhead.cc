/**
 * @file
 * Tests for the Dragonhead emulator blocks: message protocol, address
 * filter, cache controllers, control block, and the assembled board.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "base/units.hh"
#include "dragonhead/dragonhead.hh"
#include "mem/address_space.hh"

namespace cosim {
namespace {

// ----------------------------------------------------------- messages

class MessageRoundTrip : public ::testing::TestWithParam<msg::Type>
{};

TEST_P(MessageRoundTrip, EncodeDecode)
{
    const std::uint64_t payloads[] = {0, 1, 12345, msg::maxPayload};
    for (std::uint64_t payload : payloads) {
        Addr a = msg::encodeAddr(GetParam(), payload);
        EXPECT_TRUE(msg::isMessageAddr(a));
        msg::Message m = msg::decode(a);
        EXPECT_EQ(m.type, GetParam());
        EXPECT_EQ(m.payload, payload);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, MessageRoundTrip,
    ::testing::Values(msg::Type::StartEmulation, msg::Type::StopEmulation,
                      msg::Type::SetCoreId, msg::Type::InstRetired,
                      msg::Type::CyclesCompleted),
    [](const ::testing::TestParamInfo<msg::Type>& info) {
        std::string n = msg::toString(info.param);
        for (char& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Messages, OrdinaryAddressesAreNotMessages)
{
    EXPECT_FALSE(msg::isMessageAddr(0x1000));
    EXPECT_FALSE(msg::isMessageAddr(0xffff'ffffull));
    EXPECT_FALSE(msg::isMessageAddr(SimAllocator::workloadBase));
}

TEST(Messages, EncodeWrapsInMessageTxn)
{
    BusTransaction txn = msg::encode(msg::Type::SetCoreId, 7);
    EXPECT_EQ(txn.kind, TxnKind::Message);
    EXPECT_EQ(msg::decode(txn.addr).payload, 7u);
}

// ------------------------------------------------------- address filter

BusTransaction
demand(Addr a, CoreId core = 0, TxnKind kind = TxnKind::ReadLine)
{
    BusTransaction txn;
    txn.addr = a;
    txn.size = 64;
    txn.kind = kind;
    txn.core = core;
    return txn;
}

TEST(AddressFilter, DropsOutsideEmulationWindow)
{
    AddressFilter af;
    CoreId core = 0;
    msg::Message m{};
    EXPECT_EQ(af.process(demand(0x1000), core, m), FilterAction::Dropped);
    EXPECT_FALSE(af.emulating());

    af.process(msg::encode(msg::Type::StartEmulation, 0), core, m);
    EXPECT_TRUE(af.emulating());
    EXPECT_EQ(af.process(demand(0x1000), core, m), FilterAction::Forward);

    af.process(msg::encode(msg::Type::StopEmulation, 0), core, m);
    EXPECT_EQ(af.process(demand(0x1000), core, m), FilterAction::Dropped);
}

TEST(AddressFilter, TracksCurrentCore)
{
    AddressFilter af;
    CoreId core = 99;
    msg::Message m{};
    af.process(msg::encode(msg::Type::StartEmulation, 0), core, m);
    af.process(msg::encode(msg::Type::SetCoreId, 5), core, m);
    af.process(demand(0x40), core, m);
    EXPECT_EQ(core, 5u);
    af.process(msg::encode(msg::Type::SetCoreId, 11), core, m);
    af.process(demand(0x80), core, m);
    EXPECT_EQ(core, 11u);
}

TEST(AddressFilter, StatsAndReset)
{
    AddressFilter af;
    CoreId core = 0;
    msg::Message m{};
    af.process(demand(0x40), core, m);  // dropped
    af.process(msg::encode(msg::Type::StartEmulation, 0), core, m);
    af.process(demand(0x40), core, m);  // forwarded
    EXPECT_EQ(af.stats().observed, 3u);
    EXPECT_EQ(af.stats().dropped, 1u);
    EXPECT_EQ(af.stats().messages, 1u);
    EXPECT_EQ(af.stats().forwarded, 1u);

    af.reset();
    EXPECT_FALSE(af.emulating());
    EXPECT_EQ(af.stats().observed, 0u);
}

// ------------------------------------------------------ cache controller

TEST(CacheController, PerCoreAttribution)
{
    CacheParams slice{"cc0", 4 * KiB, 64, 4, ReplPolicy::LRU};
    CacheController cc(0, slice, 8);

    EXPECT_FALSE(cc.handleDemand(0x0, false, 2));  // miss
    EXPECT_TRUE(cc.handleDemand(0x0, false, 2));   // hit
    EXPECT_FALSE(cc.handleDemand(0x40, true, 5));  // miss

    EXPECT_EQ(cc.coreCounters(2).accesses, 2u);
    EXPECT_EQ(cc.coreCounters(2).misses, 1u);
    EXPECT_EQ(cc.coreCounters(5).accesses, 1u);
    EXPECT_EQ(cc.coreCounters(5).misses, 1u);
    EXPECT_EQ(cc.stats().accesses, 3u);

    cc.reset();
    EXPECT_EQ(cc.coreCounters(2).accesses, 0u);
    EXPECT_EQ(cc.stats().accesses, 0u);
}

// --------------------------------------------------------- control block

TEST(ControlBlock, InstructionAndCycleTotals)
{
    ControlBlockParams p;
    p.samplePeriodUs = 500;
    p.coreFreqGhz = 1.0; // 500k cycles per window
    ControlBlock cb(p);

    cb.onMessage({msg::Type::StartEmulation, 0});
    cb.onMessage({msg::Type::InstRetired, 1000});
    cb.onMessage({msg::Type::CyclesCompleted, 2000});
    cb.onMessage({msg::Type::InstRetired, 500});
    cb.onMessage({msg::Type::CyclesCompleted, 700});
    EXPECT_EQ(cb.totalInsts(), 1500u);
    EXPECT_EQ(cb.totalCycles(), 2700u);
}

TEST(ControlBlock, ClosesWindowsEvery500us)
{
    ControlBlockParams p;
    p.samplePeriodUs = 500;
    p.coreFreqGhz = 1.0; // 500,000 cycles per window
    ControlBlock cb(p);

    cb.onMessage({msg::Type::StartEmulation, 0});
    for (int i = 0; i < 10; ++i) {
        cb.onMessage({msg::Type::InstRetired, 100000});
        cb.onMessage({msg::Type::CyclesCompleted, 250000});
    }
    // 2.5M cycles -> 5 closed windows of 500k cycles each.
    ASSERT_EQ(cb.samples().size(), 5u);
    for (const Sample& s : cb.samples()) {
        EXPECT_EQ(s.cycles, 500000u);
        EXPECT_EQ(s.insts, 200000u);
    }
    EXPECT_DOUBLE_EQ(cb.samples()[0].timeUs, 500.0);
    EXPECT_DOUBLE_EQ(cb.samples()[4].timeUs, 2500.0);
}

TEST(ControlBlock, StopFlushesPartialWindow)
{
    ControlBlockParams p;
    p.samplePeriodUs = 500;
    p.coreFreqGhz = 1.0;
    ControlBlock cb(p);

    cb.onMessage({msg::Type::StartEmulation, 0});
    cb.onMessage({msg::Type::InstRetired, 42});
    cb.onMessage({msg::Type::CyclesCompleted, 100});
    cb.onMessage({msg::Type::StopEmulation, 0});
    ASSERT_EQ(cb.samples().size(), 1u);
    EXPECT_EQ(cb.samples()[0].insts, 42u);
    EXPECT_EQ(cb.samples()[0].cycles, 100u);
    EXPECT_GT(cb.samples()[0].timeUs, 0.0);
}

TEST(ControlBlock, FlushAfterFullWindowsStampsShortTail)
{
    ControlBlockParams p;
    p.samplePeriodUs = 500;
    p.coreFreqGhz = 1.0; // 500,000 cycles per window, 1000 cycles per us
    ControlBlock cb(p);

    cb.onMessage({msg::Type::StartEmulation, 0});
    // Two full windows plus a 125,000-cycle (125 us) tail.
    cb.onMessage({msg::Type::InstRetired, 900000});
    cb.onMessage({msg::Type::CyclesCompleted, 1125000});
    ASSERT_EQ(cb.samples().size(), 2u);

    cb.onMessage({msg::Type::StopEmulation, 0});
    ASSERT_EQ(cb.samples().size(), 3u);
    const Sample& tail = cb.samples().back();
    EXPECT_EQ(tail.cycles, 125000u);
    // The short window's timestamp continues from the last full window:
    // 2 * 500 us + 125,000 cycles / 1000 cycles-per-us.
    EXPECT_DOUBLE_EQ(tail.timeUs, 1125.0);
    // Instructions not covered by the closed windows land in the tail.
    EXPECT_EQ(tail.insts,
              900000u - cb.samples()[0].insts - cb.samples()[1].insts);

    // A second flush with no new activity must not add an empty sample.
    cb.onMessage({msg::Type::StopEmulation, 0});
    EXPECT_EQ(cb.samples().size(), 3u);
}

TEST(ControlBlock, SampleMpki)
{
    Sample s;
    s.insts = 2000;
    s.misses = 5;
    EXPECT_DOUBLE_EQ(s.mpki(), 2.5);
    Sample zero;
    EXPECT_DOUBLE_EQ(zero.mpki(), 0.0);
}

// ------------------------------------------------------------ dragonhead

DragonheadParams
testBoard(std::uint64_t llc_size = 64 * KiB, unsigned slices = 4)
{
    DragonheadParams p;
    p.llc = {"llc", llc_size, 64, 4, ReplPolicy::LRU};
    p.nSlices = slices;
    p.maxCores = 8;
    p.cb.samplePeriodUs = 500;
    p.cb.coreFreqGhz = 1.0;
    return p;
}

TEST(Dragonhead, IgnoresTrafficOutsideWindow)
{
    Dragonhead dh(testBoard());
    dh.observe(demand(0x1000));
    EXPECT_EQ(dh.results().accesses, 0u);
}

TEST(Dragonhead, EmulatesWithinWindow)
{
    Dragonhead dh(testBoard());
    dh.observe(msg::encode(msg::Type::StartEmulation, 0));
    dh.observe(msg::encode(msg::Type::SetCoreId, 1));
    dh.observe(demand(0x1000));
    dh.observe(demand(0x1000));
    dh.observe(msg::encode(msg::Type::InstRetired, 1000));
    dh.observe(msg::encode(msg::Type::StopEmulation, 0));

    LlcResults r = dh.results();
    EXPECT_EQ(r.accesses, 2u);
    EXPECT_EQ(r.misses, 1u);
    EXPECT_EQ(r.insts, 1000u);
    EXPECT_DOUBLE_EQ(r.mpki(), 1.0);
    EXPECT_DOUBLE_EQ(r.missRate(), 0.5);

    CoreCounters cc = dh.coreResults(1);
    EXPECT_EQ(cc.accesses, 2u);
    EXPECT_EQ(cc.misses, 1u);
}

TEST(Dragonhead, SlicedBoardMatchesMonolithicCache)
{
    // An address-interleaved 4-slice LLC must behave exactly like a
    // monolithic cache whose index interleaves the same way; we verify
    // against a 1-slice board, whose slice *is* a monolithic cache.
    Dragonhead sliced(testBoard(64 * KiB, 4));
    Dragonhead mono(testBoard(64 * KiB, 1));

    auto start = msg::encode(msg::Type::StartEmulation, 0);
    sliced.observe(start);
    mono.observe(start);

    Rng rng(77);
    for (int i = 0; i < 80000; ++i) {
        BusTransaction txn = demand(rng.nextBounded(256 * KiB));
        sliced.observe(txn);
        mono.observe(txn);
    }
    // Interleaving redistributes the sets, so per-access outcomes can
    // differ; with a uniform stream the totals must agree closely.
    double s = static_cast<double>(sliced.results().misses);
    double m = static_cast<double>(mono.results().misses);
    EXPECT_NEAR(s / m, 1.0, 0.05);
    EXPECT_EQ(sliced.results().accesses, mono.results().accesses);
}

TEST(Dragonhead, SliceSelectionCoversAllControllers)
{
    Dragonhead dh(testBoard());
    dh.observe(msg::encode(msg::Type::StartEmulation, 0));
    for (Addr a = 0; a < 64 * 64; a += 64)
        dh.observe(demand(a));
    for (unsigned s = 0; s < dh.nSlices(); ++s)
        EXPECT_EQ(dh.slice(s).stats().accesses, 16u);
}

TEST(Dragonhead, WriteLineInstallsDirtyLines)
{
    Dragonhead dh(testBoard(1 * KiB, 1));
    dh.observe(msg::encode(msg::Type::StartEmulation, 0));
    dh.observe(demand(0x0, 0, TxnKind::WriteLine));
    // Fill the set until the dirty line is evicted.
    for (Addr a = 0; a < 16 * KiB; a += 64)
        dh.observe(demand(a));
    EXPECT_GT(dh.slice(0).stats().writebacks, 0u);
}

TEST(Dragonhead, PerCorePartitioningIsolatesCores)
{
    DragonheadParams p = testBoard(64 * KiB, 4);
    p.partitioning = LlcPartitioning::PerCore;
    Dragonhead dh(p);
    dh.observe(msg::encode(msg::Type::StartEmulation, 0));

    // Core 0 warms a working set into its private partition.
    dh.observe(msg::encode(msg::Type::SetCoreId, 0));
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 8 * KiB; a += 64)
            dh.observe(demand(a, 0));
    // Pass 2 hits: the 8 KB set fits the 16 KB partition.
    EXPECT_EQ(dh.coreResults(0).misses, 8 * KiB / 64);

    // Core 1 touching the same addresses gets no benefit from core 0's
    // partition: private means cold again.
    dh.observe(msg::encode(msg::Type::SetCoreId, 1));
    for (Addr a = 0; a < 8 * KiB; a += 64)
        dh.observe(demand(a, 1));
    EXPECT_EQ(dh.coreResults(1).misses, 8 * KiB / 64);

    // All of core 1's traffic landed in slice 1.
    EXPECT_EQ(dh.slice(1).stats().accesses, 8 * KiB / 64);
    EXPECT_EQ(dh.slice(2).stats().accesses, 0u);
}

TEST(Dragonhead, SharedLlcLetsCoresReuseEachOther)
{
    // Contrast with the interleaved (shared) organization: core 1 hits
    // on the lines core 0 fetched.
    Dragonhead dh(testBoard(64 * KiB, 4));
    dh.observe(msg::encode(msg::Type::StartEmulation, 0));
    dh.observe(msg::encode(msg::Type::SetCoreId, 0));
    for (Addr a = 0; a < 8 * KiB; a += 64)
        dh.observe(demand(a, 0));
    dh.observe(msg::encode(msg::Type::SetCoreId, 1));
    for (Addr a = 0; a < 8 * KiB; a += 64)
        dh.observe(demand(a, 1));
    EXPECT_EQ(dh.coreResults(1).misses, 0u);
}

TEST(Dragonhead, ResetClearsEverything)
{
    Dragonhead dh(testBoard());
    dh.observe(msg::encode(msg::Type::StartEmulation, 0));
    dh.observe(demand(0x40));
    dh.observe(msg::encode(msg::Type::InstRetired, 10));
    dh.reset();
    EXPECT_EQ(dh.results().accesses, 0u);
    EXPECT_EQ(dh.results().insts, 0u);
    EXPECT_FALSE(dh.addressFilter().emulating());
}

TEST(Dragonhead, SamplesAppearOverEmulatedTime)
{
    Dragonhead dh(testBoard());
    dh.observe(msg::encode(msg::Type::StartEmulation, 0));
    for (int i = 0; i < 4; ++i) {
        dh.observe(demand(static_cast<Addr>(i) * 64));
        dh.observe(msg::encode(msg::Type::InstRetired, 1000));
        dh.observe(msg::encode(msg::Type::CyclesCompleted, 300000));
    }
    dh.observe(msg::encode(msg::Type::StopEmulation, 0));
    // 1.2M cycles at 1 GHz = 1200 us -> 2 full windows + partial flush.
    ASSERT_EQ(dh.samples().size(), 3u);
    std::uint64_t insts = 0;
    std::uint64_t accesses = 0;
    for (const Sample& s : dh.samples()) {
        insts += s.insts;
        accesses += s.accesses;
    }
    EXPECT_EQ(insts, 4000u);
    EXPECT_EQ(accesses, 4u);
}

} // namespace
} // namespace cosim
