/**
 * @file
 * Tests for base/flight_recorder.hh and the postmortem.json renderer
 * built on top of it (obs/postmortem.hh): per-thread rings, wrap at
 * capacity, thread labels, the enable gate, and the rendered JSON.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "base/flight_recorder.hh"
#include "obs/json.hh"
#include "obs/postmortem.hh"

namespace cosim {
namespace {

using obs::json::Value;

/**
 * The dump whose label is @p label; nullptr when absent. reset()
 * clears rings but keeps them registered, so tests match by label
 * instead of asserting dump counts.
 */
const FlightRecorder::ThreadDump*
dumpLabeled(const std::vector<FlightRecorder::ThreadDump>& dumps,
            const std::string& label)
{
    for (const FlightRecorder::ThreadDump& d : dumps) {
        if (d.label == label)
            return &d;
    }
    return nullptr;
}

/** Reset before and after: the recorder is process-wide state. */
class FlightRecorderTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        FlightRecorder::reset();
        FlightRecorder::setEnabled(true);
    }
    void TearDown() override
    {
        FlightRecorder::setEnabled(true);
        FlightRecorder::reset();
    }
};

TEST_F(FlightRecorderTest, NotesAppearInOrderWithPayloads)
{
    FlightRecorder::setThreadLabel("test/main");
    FlightRecorder::note(FrKind::Mark, "unit.start");
    FlightRecorder::note(FrKind::ChunkPublished, "fsb", 64, 1);
    FlightRecorder::note(FrKind::ChunkEmulated, "fsb", 64, 1);

    std::vector<FlightRecorder::ThreadDump> dumps =
        FlightRecorder::dumpAll();
    const FlightRecorder::ThreadDump* d =
        dumpLabeled(dumps, "test/main");
    ASSERT_NE(d, nullptr);
    ASSERT_EQ(d->events.size(), 3u);
    EXPECT_EQ(d->events[0].kind, FrKind::Mark);
    EXPECT_STREQ(d->events[0].site, "unit.start");
    EXPECT_EQ(d->events[1].kind, FrKind::ChunkPublished);
    EXPECT_EQ(d->events[1].a, 64u);
    EXPECT_EQ(d->events[1].b, 1u);
    // Sequence numbers are global and increase in record order.
    EXPECT_LT(d->events[0].seq, d->events[1].seq);
    EXPECT_LT(d->events[1].seq, d->events[2].seq);
    // Timestamps come from the shared host clock, oldest first.
    EXPECT_LE(d->events[0].tUs, d->events[2].tUs);
}

TEST_F(FlightRecorderTest, RingKeepsOnlyTheNewestEvents)
{
    FlightRecorder::setThreadLabel("test/wrap");
    const std::size_t n = FlightRecorder::kEventsPerThread + 40;
    for (std::size_t i = 0; i < n; ++i)
        FlightRecorder::note(FrKind::Mark, "wrap.test", i);

    std::vector<FlightRecorder::ThreadDump> dumps =
        FlightRecorder::dumpAll();
    const FlightRecorder::ThreadDump* d =
        dumpLabeled(dumps, "test/wrap");
    ASSERT_NE(d, nullptr);
    const std::vector<FrEvent>& ev = d->events;
    ASSERT_EQ(ev.size(), FlightRecorder::kEventsPerThread);
    // The oldest retained event is the 41st recorded; the newest is
    // the last.
    EXPECT_EQ(ev.front().a, 40u);
    EXPECT_EQ(ev.back().a, n - 1);
    for (std::size_t i = 1; i < ev.size(); ++i)
        EXPECT_EQ(ev[i].seq, ev[i - 1].seq + 1);
}

TEST_F(FlightRecorderTest, EachThreadGetsItsOwnRing)
{
    FlightRecorder::setThreadLabel("test/main");
    FlightRecorder::note(FrKind::Mark, "main.event");
    std::thread worker([] {
        FlightRecorder::setThreadLabel("test/worker");
        FlightRecorder::note(FrKind::WorkerDied, "emu", 3);
    });
    worker.join();

    // Exited threads' rings survive in the dump.
    std::vector<FlightRecorder::ThreadDump> dumps =
        FlightRecorder::dumpAll();
    const FlightRecorder::ThreadDump* main_dump =
        dumpLabeled(dumps, "test/main");
    const FlightRecorder::ThreadDump* worker_dump =
        dumpLabeled(dumps, "test/worker");
    ASSERT_NE(main_dump, nullptr);
    ASSERT_EQ(main_dump->events.size(), 1u);
    EXPECT_EQ(main_dump->events[0].kind, FrKind::Mark);
    ASSERT_NE(worker_dump, nullptr);
    ASSERT_EQ(worker_dump->events.size(), 1u);
    EXPECT_EQ(worker_dump->events[0].kind, FrKind::WorkerDied);
    EXPECT_EQ(worker_dump->events[0].a, 3u);
}

TEST_F(FlightRecorderTest, DisabledNotesRecordNothing)
{
    FlightRecorder::setEnabled(false);
    EXPECT_FALSE(FlightRecorder::enabled());
    FlightRecorder::note(FrKind::Mark, "while.disabled");
    FlightRecorder::setEnabled(true);
    std::vector<FlightRecorder::ThreadDump> dumps =
        FlightRecorder::dumpAll();
    for (const FlightRecorder::ThreadDump& d : dumps)
        EXPECT_TRUE(d.events.empty());
}

TEST_F(FlightRecorderTest, KindNamesAreStableLowerCase)
{
    EXPECT_STREQ(frKindName(FrKind::Mark), "mark");
    EXPECT_STREQ(frKindName(FrKind::ChunkPublished), "chunk_published");
    EXPECT_STREQ(frKindName(FrKind::ChunkEmulated), "chunk_emulated");
    EXPECT_STREQ(frKindName(FrKind::WorkerDied), "worker_died");
    EXPECT_STREQ(frKindName(FrKind::FaultFired), "fault_fired");
    EXPECT_STREQ(frKindName(FrKind::CellAttempt), "cell_attempt");
    EXPECT_STREQ(frKindName(FrKind::CellDone), "cell_done");
}

// ------------------------------------------------- postmortem rendering

TEST_F(FlightRecorderTest, RenderPostmortemEmbedsTheThreadHistory)
{
    FlightRecorder::setThreadLabel("cell/PLSA");
    FlightRecorder::note(FrKind::CellAttempt, "sweep.cell", 1, 0);
    FlightRecorder::note(FrKind::ChunkPublished, "fsb", 64, 0);

    obs::PostmortemInfo info;
    info.reason = "cell_failed";
    info.cell = "PLSA";
    info.attempt = 2;
    info.error = "injected fault at 'cell.throw' (hit 1)";
    std::string body = obs::renderPostmortem(info);

    Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(body, doc, &error)) << error << body;
    const Value* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "cosim-postmortem/1");
    EXPECT_EQ(doc.find("reason")->str, "cell_failed");
    EXPECT_EQ(doc.find("cell")->str, "PLSA");
    EXPECT_DOUBLE_EQ(doc.find("attempt")->num, 2.0);
    EXPECT_NE(doc.find("error")->str.find("cell.throw"),
              std::string::npos);

    const Value* threads = doc.find("threads");
    ASSERT_NE(threads, nullptr);
    ASSERT_TRUE(threads->isArray());
    bool saw_cell_thread = false;
    for (const Value& t : threads->arr) {
        const Value* label = t.find("label");
        if (label != nullptr && label->str == "cell/PLSA") {
            saw_cell_thread = true;
            const Value* events = t.find("events");
            ASSERT_NE(events, nullptr);
            ASSERT_GE(events->size(), 2u);
            EXPECT_EQ(events->arr[0].find("kind")->str, "cell_attempt");
            EXPECT_EQ(events->arr[1].find("kind")->str,
                      "chunk_published");
        }
    }
    EXPECT_TRUE(saw_cell_thread);
}

} // namespace
} // namespace cosim
