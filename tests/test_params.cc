/**
 * @file
 * Parameter-validation and input-scaling tests: bad configurations must
 * be rejected loudly (fatal/panic reach the log handler), and scaled()
 * inputs must shrink data while preserving structural invariants.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "base/logging.hh"
#include "base/units.hh"
#include "cache/cache.hh"
#include "dragonhead/dragonhead.hh"
#include "softsdv/dex_scheduler.hh"
#include "workloads/fimi.hh"
#include "workloads/mds.hh"
#include "workloads/plsa.hh"
#include "workloads/rsearch.hh"
#include "workloads/shot.hh"
#include "workloads/snp.hh"
#include "workloads/svm_rfe.hh"
#include "workloads/viewtype.hh"

namespace cosim {
namespace {

void
throwingHandler(LogLevel level, const std::string& msg)
{
    if (level == LogLevel::Panic || level == LogLevel::Fatal)
        throw std::runtime_error(msg);
}

class ParamValidation : public ::testing::Test
{
  protected:
    void SetUp() override { prev_ = setLogHandler(throwingHandler); }
    void TearDown() override { setLogHandler(prev_); }
    LogHandler prev_ = nullptr;
};

TEST_F(ParamValidation, CacheRejectsBadGeometry)
{
    CacheParams p{"bad", 1000, 64, 4, ReplPolicy::LRU};
    EXPECT_THROW(Cache c(p), std::runtime_error); // not divisible

    CacheParams p2{"bad", 1024, 48, 4, ReplPolicy::LRU};
    EXPECT_THROW(Cache c(p2), std::runtime_error); // non-pow2 line

    CacheParams p3{"bad", 3 * 64 * 4, 64, 4, ReplPolicy::LRU};
    EXPECT_THROW(Cache c(p3), std::runtime_error); // 3 sets
}

TEST_F(ParamValidation, TreePlruNeedsPowerOfTwoWays)
{
    EXPECT_THROW(ReplacementState::create(ReplPolicy::TreePLRU, 4, 3),
                 std::runtime_error);
    EXPECT_NO_THROW(ReplacementState::create(ReplPolicy::TreePLRU, 4, 4));
}

TEST_F(ParamValidation, ReplPolicyParseRejectsUnknown)
{
    EXPECT_THROW(parseReplPolicy("mru"), std::runtime_error);
}

TEST_F(ParamValidation, DragonheadRejectsIndivisibleSlices)
{
    DragonheadParams p;
    p.llc = {"llc", 3 * MiB, 64, 16, ReplPolicy::LRU};
    p.nSlices = 4; // 3 MB not divisible by 4 into pow2 sets
    EXPECT_THROW(Dragonhead dh(p), std::runtime_error);

    p.nSlices = 3; // not a power of two
    EXPECT_THROW(Dragonhead dh(p), std::runtime_error);
}

TEST_F(ParamValidation, MessagePayloadMustFit40Bits)
{
    EXPECT_THROW(msg::encodeAddr(msg::Type::InstRetired,
                                 msg::maxPayload + 1),
                 std::runtime_error);
    EXPECT_NO_THROW(msg::encodeAddr(msg::Type::InstRetired,
                                    msg::maxPayload));
}

TEST_F(ParamValidation, DexQuantumMustBeNonzero)
{
    DexParams dp;
    dp.quantumInsts = 0;
    EXPECT_THROW(DexScheduler s(dp, nullptr, nullptr),
                 std::runtime_error);
}

TEST_F(ParamValidation, WorkloadCtorsRejectNonsense)
{
    SnpParams snp;
    snp.hotVars = snp.nVars + 1;
    EXPECT_THROW(SnpWorkload wl(snp), std::runtime_error);

    PlsaParams plsa;
    plsa.seqLen = 1000; // not a multiple of blockWidth
    EXPECT_THROW(PlsaWorkload wl(plsa), std::runtime_error);

    RsearchParams rs;
    rs.band = rs.window + 1;
    EXPECT_THROW(RsearchWorkload wl(rs), std::runtime_error);

    FimiParams fimi;
    fimi.minSupport = 0;
    EXPECT_THROW(FimiWorkload wl(fimi), std::runtime_error);

    MdsParams mds;
    mds.summaryLength = mds.nSentences + 1;
    EXPECT_THROW(MdsWorkload wl(mds), std::runtime_error);

    ShotParams shot;
    shot.video.nFrames = 1;
    EXPECT_THROW(ShotWorkload wl(shot), std::runtime_error);

    ViewtypeParams vt;
    vt.nKeyframes = 0;
    EXPECT_THROW(ViewtypeWorkload wl(vt), std::runtime_error);
}

TEST_F(ParamValidation, ScaledRejectsNonPositive)
{
    EXPECT_THROW(SnpParams::scaled(0.0), std::runtime_error);
    EXPECT_THROW(MdsParams::scaled(-1.0), std::runtime_error);
}

// ---------------------------------------------------------- scaled()

TEST(ScaledInputs, ShrinkMonotonically)
{
    EXPECT_LT(SnpParams::scaled(0.1).nSamples,
              SnpParams::scaled(1.0).nSamples);
    EXPECT_LT(SvmRfeParams::scaled(0.1).nGenes,
              SvmRfeParams::scaled(1.0).nGenes);
    EXPECT_LT(MdsParams::scaled(0.1).nnzPerRow,
              MdsParams::scaled(1.0).nnzPerRow);
    EXPECT_LT(PlsaParams::scaled(0.1).seqLen,
              PlsaParams::scaled(1.0).seqLen);
    EXPECT_LT(FimiParams::scaled(0.1).txn.nTransactions,
              FimiParams::scaled(1.0).txn.nTransactions);
    EXPECT_LT(RsearchParams::scaled(0.1).dbLength,
              RsearchParams::scaled(1.0).dbLength);
    EXPECT_LE(ShotParams::scaled(0.1).video.width,
              ShotParams::scaled(1.0).video.width);
    EXPECT_LE(ViewtypeParams::scaled(0.1).video.width,
              ViewtypeParams::scaled(1.0).video.width);
}

TEST(ScaledInputs, DefaultReproductionFootprints)
{
    // The working-set engineering behind Figures 4-6 (see DESIGN.md).
    EXPECT_EQ(SnpParams::scaled(1.0).genotypeBytes(), 128 * MiB);
    EXPECT_NEAR(static_cast<double>(MdsParams::scaled(1.0).matrixBytes()),
                300.0 * MiB, 16.0 * MiB);
    // SHOT: two full-resolution frame buffers per thread ~ 3.3 MB.
    ShotParams shot = ShotParams::scaled(1.0);
    EXPECT_EQ(shot.video.width, 720u);
    EXPECT_EQ(shot.video.height, 576u);
    // VIEWTYPE: ~1.8 MB per thread -> the paper's 16/32/64 MB sequence.
    ViewtypeParams vt = ViewtypeParams::scaled(1.0);
    std::uint64_t per_thread =
        static_cast<std::uint64_t>(vt.video.width) * vt.video.height *
        (4 + 1 + 1 + 4);
    EXPECT_NEAR(static_cast<double>(per_thread), 1.8 * MiB, 0.3 * MiB);
}

TEST(ScaledInputs, TinyScaleStaysRunnable)
{
    // The smallest test scale must still satisfy every constructor.
    EXPECT_NO_THROW(SnpWorkload{SnpParams::scaled(0.01)});
    EXPECT_NO_THROW(SvmRfeWorkload{SvmRfeParams::scaled(0.01)});
    EXPECT_NO_THROW(MdsWorkload{MdsParams::scaled(0.01)});
    EXPECT_NO_THROW(ShotWorkload{ShotParams::scaled(0.01)});
    EXPECT_NO_THROW(FimiWorkload{FimiParams::scaled(0.01)});
    EXPECT_NO_THROW(ViewtypeWorkload{ViewtypeParams::scaled(0.01)});
    EXPECT_NO_THROW(PlsaWorkload{PlsaParams::scaled(0.01)});
    EXPECT_NO_THROW(RsearchWorkload{RsearchParams::scaled(0.01)});
}

} // namespace
} // namespace cosim
