/**
 * @file
 * Determinism suite for host-parallel emulation.
 *
 * The whole point of the AsyncEmulatorBank is that it changes *when* the
 * emulators run, never *what* they compute: emulation is passive and the
 * chunked bus preserves issue order, so every counter, MPKI value, and
 * ControlBlock 500 us sample window must be bit-identical to serial
 * inline snooping. These tests enforce that across 2 workloads x 3
 * emulator configs x several thread counts, plus the batched-FSB
 * delivery semantics and the parallel sweep harness.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "core/results.hh"
#include "harness/sweep_runner.hh"
#include "obs/host_profiler.hh"
#include "test_util.hh"

namespace cosim {
namespace {

PlatformParams
smallCmp(unsigned cores)
{
    PlatformParams p;
    p.name = "testCMP";
    p.nCores = cores;
    p.cpu.baseCpi = 1.0;
    p.cpu.caches.l1 = {"l1", 1 * KiB, 64, 2, ReplPolicy::LRU};
    p.cpu.caches.hasL2 = false;
    p.cpu.useDramLatency = false;
    p.cpu.beyondLatency = 50;
    p.cpu.emitFsbTraffic = true;
    p.dex.quantumInsts = 2000;
    return p;
}

DragonheadParams
llc(std::uint64_t size)
{
    DragonheadParams dh;
    dh.llc = {"llc", size, 64, 4, ReplPolicy::LRU};
    dh.nSlices = 4;
    dh.maxCores = 8;
    return dh;
}

/** The 3-config sweep every determinism case emulates. */
std::vector<DragonheadParams>
sweepConfigs()
{
    return {llc(8 * KiB), llc(64 * KiB), llc(256 * KiB)};
}

/**
 * Everything an emulation run produced, bit-exact: per-emulator LLC
 * counters, per-core counters, and the full CB 500 us sample series.
 */
struct Fingerprint
{
    std::vector<std::uint64_t> counters;
    std::vector<double> samples;

    bool operator==(const Fingerprint&) const = default;
};

Fingerprint
fingerprintOf(const CoSimulation& cosim, unsigned n_cores)
{
    Fingerprint fp;
    for (unsigned e = 0; e < cosim.nEmulators(); ++e) {
        const Dragonhead& dh = cosim.emulator(e);
        LlcResults r = dh.results();
        fp.counters.push_back(r.accesses);
        fp.counters.push_back(r.misses);
        fp.counters.push_back(r.insts);
        fp.counters.push_back(r.cycles);
        for (unsigned c = 0; c < n_cores; ++c) {
            CoreCounters cc = dh.coreResults(static_cast<CoreId>(c));
            fp.counters.push_back(cc.accesses);
            fp.counters.push_back(cc.misses);
        }
        for (const Sample& s : dh.samples()) {
            fp.samples.push_back(s.timeUs);
            fp.samples.push_back(static_cast<double>(s.insts));
            fp.samples.push_back(static_cast<double>(s.accesses));
            fp.samples.push_back(static_cast<double>(s.misses));
            fp.samples.push_back(s.mpki());
        }
    }
    return fp;
}

/** Run one workload with the given emulation mode and fingerprint it. */
Fingerprint
runOnce(unsigned emu_threads, std::size_t chunk_txns, bool shared_array)
{
    const unsigned cores = 4;
    CoSimParams params;
    params.platform = smallCmp(cores);
    params.emulators = sweepConfigs();
    params.emulationThreads = emu_threads;
    params.fsbBatchTxns = chunk_txns;
    CoSimulation cosim(params);

    test::LoopWorkload wl(16 * KiB, 4, shared_array);
    WorkloadConfig cfg;
    cfg.nThreads = cores;
    RunResult r = cosim.run(wl, cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(cosim.nEmulators(), 3u);
    EXPECT_EQ(cosim.emulationThreads(),
              emu_threads == 0 ? 0u : std::min(emu_threads, 3u));
    return fingerprintOf(cosim, cores);
}

TEST(ParallelEmulation, BitIdenticalToSerialAcrossThreadCounts)
{
    for (bool shared : {false, true}) {
        Fingerprint serial = runOnce(0, 0, shared);
        ASSERT_FALSE(serial.counters.empty());
        ASSERT_FALSE(serial.samples.empty());
        for (unsigned threads : {1u, 2u, 4u}) {
            // Small chunks force many batches through the queues.
            Fingerprint parallel = runOnce(threads, 256, shared);
            EXPECT_EQ(parallel, serial)
                << "threads=" << threads << " shared=" << shared;
        }
    }
}

TEST(ParallelEmulation, SerialBatchedDeliveryIsIdenticalToImmediate)
{
    // Batching alone (no worker threads) must not change anything: the
    // same transactions arrive in the same order, just chunk-deferred.
    for (bool shared : {false, true}) {
        Fingerprint immediate = runOnce(0, 0, shared);
        EXPECT_EQ(runOnce(0, 64, shared), immediate);
        EXPECT_EQ(runOnce(0, 4096, shared), immediate);
    }
}

TEST(ParallelEmulation, ChunkSizeDoesNotChangeResults)
{
    Fingerprint base = runOnce(2, 128, false);
    EXPECT_EQ(runOnce(2, 1, false), base);
    EXPECT_EQ(runOnce(2, 1024, false), base);
}

TEST(ParallelEmulation, BankReportsDeliveryStats)
{
    CoSimParams params;
    params.platform = smallCmp(2);
    params.emulators = sweepConfigs();
    params.emulationThreads = 2;
    params.fsbBatchTxns = 128;
    CoSimulation cosim(params);

    test::LoopWorkload wl(8 * KiB, 3);
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    cosim.run(wl, cfg);

    const AsyncEmulatorBank* bank = cosim.bank();
    ASSERT_NE(bank, nullptr);
    EXPECT_EQ(bank->nEmulators(), 3u);
    EXPECT_EQ(bank->nThreads(), 2u);

    const std::uint64_t fsb_txns =
        cosim.platform().fsb().txnCount();
    for (unsigned e = 0; e < bank->nEmulators(); ++e) {
        const EmulatorWorkerStats s = bank->emulatorStats(e);
        EXPECT_GT(s.batches, 1u) << "emulator " << e;
        // Every emulator saw the complete transaction stream.
        EXPECT_EQ(s.txns, fsb_txns) << "emulator " << e;
        EXPECT_GE(bank->queuePeak(e), 1u);
    }
    // The bus delivered in chunks: fewer batches than transactions.
    EXPECT_GT(cosim.platform().fsb().batchCount(), 0u);
    EXPECT_LT(cosim.platform().fsb().batchCount(), fsb_txns);
}

TEST(ParallelEmulation, RegistersWorkerStatsInRegistry)
{
    obs::StatsRegistry registry;
    CoSimParams params;
    params.platform = smallCmp(2);
    params.emulators = {llc(8 * KiB), llc(64 * KiB)};
    params.emulationThreads = 2;
    params.fsbBatchTxns = 64;
    CoSimulation cosim(params);

    test::LoopWorkload wl(4 * KiB, 2);
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    cosim.run(wl, cfg);
    cosim.registerStats(registry);

    const stats::Group* g = registry.find("dragonhead0");
    ASSERT_NE(g, nullptr);
    bool saw_batches = false;
    bool saw_peak = false;
    for (const auto& [name, value] : g->collect()) {
        if (name == "batches") {
            saw_batches = true;
            EXPECT_GT(value, 0.0);
        }
        if (name == "queue_peak") {
            saw_peak = true;
            EXPECT_GE(value, 1.0);
        }
    }
    EXPECT_TRUE(saw_batches);
    EXPECT_TRUE(saw_peak);
    EXPECT_GE(obs::HostProfiler::global().emulationThreads(), 2u);
}

TEST(FsbBatch, ChunksPreserveIssueOrderAndFlushOnCapacity)
{
    FrontSideBus fsb;

    struct Recorder : BusSnooper
    {
        void observe(const BusTransaction& txn) override
        {
            addrs.push_back(txn.addr);
        }
        void observeBatch(const BusTransaction* txns,
                          std::size_t n) override
        {
            batchSizes.push_back(n);
            BusSnooper::observeBatch(txns, n);
        }
        std::vector<Addr> addrs;
        std::vector<std::size_t> batchSizes;
    } rec;

    fsb.attach(&rec);
    fsb.setBatchCapacity(4);

    BusTransaction txn;
    txn.size = 64;
    txn.kind = TxnKind::ReadLine;
    for (Addr a = 0; a < 10; ++a) {
        txn.addr = a * 64;
        fsb.issue(txn);
    }
    // 10 issues, capacity 4: two full chunks delivered, 2 txns pending.
    EXPECT_EQ(rec.addrs.size(), 8u);
    EXPECT_EQ(fsb.pendingTxns(), 2u);
    fsb.flush();
    EXPECT_EQ(fsb.pendingTxns(), 0u);
    ASSERT_EQ(rec.addrs.size(), 10u);
    for (Addr a = 0; a < 10; ++a)
        EXPECT_EQ(rec.addrs[static_cast<std::size_t>(a)], a * 64);
    ASSERT_EQ(rec.batchSizes.size(), 3u);
    EXPECT_EQ(rec.batchSizes[0], 4u);
    EXPECT_EQ(rec.batchSizes[1], 4u);
    EXPECT_EQ(rec.batchSizes[2], 2u);
    EXPECT_EQ(fsb.batchCount(), 3u);
    // Counters accrue at issue time, not delivery time.
    EXPECT_EQ(fsb.txnCount(), 10u);

    fsb.detach(&rec);
}

TEST(FsbBatch, SwitchingCapacityFlushesFirst)
{
    FrontSideBus fsb;
    test::CountingSnooper snoop;
    fsb.attach(&snoop);
    fsb.setBatchCapacity(100);

    BusTransaction txn;
    txn.size = 64;
    txn.kind = TxnKind::WriteLine;
    fsb.issue(txn);
    fsb.issue(txn);
    EXPECT_EQ(snoop.total, 0u); // buffered
    fsb.setBatchCapacity(0);    // back to immediate: must flush
    EXPECT_EQ(snoop.total, 2u);
    fsb.issue(txn);
    EXPECT_EQ(snoop.total, 3u); // immediate again
    fsb.detach(&snoop);
}

TEST(FsbBatchDeathTest, DetachDuringBroadcastPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";

    struct Detacher : BusSnooper
    {
        FrontSideBus* bus = nullptr;
        void observe(const BusTransaction&) override { bus->detach(this); }
    };

    EXPECT_DEATH(
        {
            FrontSideBus fsb;
            Detacher d;
            d.bus = &fsb;
            fsb.attach(&d);
            BusTransaction txn;
            txn.kind = TxnKind::ReadLine;
            fsb.issue(txn);
        },
        "detach\\(\\) from inside a bus broadcast");
}

TEST(ParallelSweep, JobsProduceIdenticalFigures)
{
    // The miniature Figure-4 path, serial vs two parallel cells. The
    // figure series and the underlying integer counters must match
    // exactly; only host wall-clock may differ.
    BenchOptions opts;
    opts.scale = 0.02;
    opts.workloads = {"PLSA", "FIMI"};

    PlatformParams platform = presets::cmpPlatform("tiny", 2);

    BenchOptions serial_opts = opts;
    serial_opts.jobs = 1;
    FigureData serial =
        SweepRunner(serial_opts).runCacheSizeFigure("FigA", platform);

    BenchOptions parallel_opts = opts;
    parallel_opts.jobs = 2;
    parallel_opts.emuThreads = 2;
    FigureData parallel =
        SweepRunner(parallel_opts).runCacheSizeFigure("FigB", platform);

    ASSERT_EQ(serial.seriesNames(), parallel.seriesNames());
    for (const std::string& name : serial.seriesNames()) {
        EXPECT_EQ(serial.series(name), parallel.series(name)) << name;
        const auto& sp = serial.points(name);
        const auto& pp = parallel.points(name);
        ASSERT_EQ(sp.size(), pp.size());
        for (std::size_t i = 0; i < sp.size(); ++i) {
            EXPECT_EQ(sp[i].llcAccesses, pp[i].llcAccesses);
            EXPECT_EQ(sp[i].llcMisses, pp[i].llcMisses);
            EXPECT_EQ(sp[i].insts, pp[i].insts);
        }
    }
}

} // namespace
} // namespace cosim
