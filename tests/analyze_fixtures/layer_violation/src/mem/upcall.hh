/**
 * Seeded violation: mem (rank 1) must not include core (rank 8).
 * cosim_analyze --check-all --root=<this fixture> must fail with
 * layer-violation.
 */

#ifndef COSIM_MEM_UPCALL_HH
#define COSIM_MEM_UPCALL_HH

#include "core/cosim.hh"

namespace cosim {

inline int
memPeeksAtCore()
{
    return 1;
}

} // namespace cosim

#endif // COSIM_MEM_UPCALL_HH
