/**
 * Seeded violations (with mem/second.cc and the manifests next door):
 *   - "dup.metric" is registered here AND in mem/second.cc
 *     (duplicate-metric);
 *   - "not.in.registry" is a fault site missing from
 *     fault_sites.txt (unregistered-fault-site);
 *   - the manifests list "ghost.metric", which no code registers
 *     (stale-registry-entry).
 */

#include "base/fault.hh"
#include "obs/metrics.hh"

namespace cosim {

int
firstUser()
{
    static auto& c = metrics::counter("dup.metric", "seeded duplicate");
    COSIM_FAULT_POINT("not.in.registry");
    c.inc();
    return 0;
}

} // namespace cosim
