#include "obs/metrics.hh"

namespace cosim {

int
secondUser()
{
    static auto& c = metrics::counter("dup.metric", "seeded duplicate");
    c.inc();
    return 0;
}

} // namespace cosim
