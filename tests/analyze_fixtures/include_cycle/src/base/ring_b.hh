#ifndef COSIM_BASE_RING_B_HH
#define COSIM_BASE_RING_B_HH

#include "base/ring_a.hh"

namespace cosim {

struct RingB
{
    int b = 0;
};

} // namespace cosim

#endif // COSIM_BASE_RING_B_HH
