/**
 * Seeded violation (with ring_b.hh): a two-header include cycle
 * inside one module. Same-module edges pass the layering gate, so
 * only include-cycle catches this.
 */

#ifndef COSIM_BASE_RING_A_HH
#define COSIM_BASE_RING_A_HH

#include "base/ring_b.hh"

namespace cosim {

struct RingA
{
    int a = 0;
};

} // namespace cosim

#endif // COSIM_BASE_RING_A_HH
