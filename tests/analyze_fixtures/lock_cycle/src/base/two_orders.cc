/**
 * Seeded violation: two functions acquire the same pair of mutexes in
 * opposite orders -- the global acquisition graph has the cycle
 * Left::leftMutex_ -> Right::rightMutex_ -> Left::leftMutex_.
 */

#include "base/mutex.hh"

namespace cosim {

struct Left
{
    Mutex leftMutex_;
    int value = 0;
};

struct Right
{
    Mutex rightMutex_;
    int value = 0;
};

int
leftThenRight(Left& l, Right& r)
{
    LockGuard a(l.leftMutex_);
    LockGuard b(r.rightMutex_);
    return l.value + r.value;
}

int
rightThenLeft(Left& l, Right& r)
{
    LockGuard a(r.rightMutex_);
    LockGuard b(l.leftMutex_);
    return l.value - r.value;
}

} // namespace cosim
