/**
 * @file
 * Tests for base/subprocess.hh: exit/signal decoding, stdout/stderr
 * tail capture, the silence watchdog (a chatty child survives a budget
 * its wall time exceeds; a silent one is SIGKILLed), the heartbeat
 * pipe, and rusage decoding. Children are /bin/sh scripts so the tests
 * need no fixture binary.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <vector>

#include "base/subprocess.hh"

namespace cosim {
namespace {

SubprocessOptions
shell(const std::string& script)
{
    SubprocessOptions opts;
    opts.argv = {"/bin/sh", "-c", script};
    return opts;
}

TEST(Subprocess, DecodesExitCodes)
{
    SubprocessResult ok = runSubprocess(shell("exit 0"));
    EXPECT_EQ(ok.end, SubprocessResult::End::Exited);
    EXPECT_EQ(ok.exitCode, 0);
    EXPECT_TRUE(ok.ok());
    EXPECT_GT(ok.pid, 0);

    SubprocessResult fail = runSubprocess(shell("exit 3"));
    EXPECT_EQ(fail.end, SubprocessResult::End::Exited);
    EXPECT_EQ(fail.exitCode, 3);
    EXPECT_FALSE(fail.ok());
    EXPECT_EQ(fail.describe(), "exited 3");
}

TEST(Subprocess, DecodesSignals)
{
    SubprocessResult r = runSubprocess(shell("kill -SEGV $$"));
    EXPECT_EQ(r.end, SubprocessResult::End::Signaled);
    EXPECT_EQ(r.termSignal, SIGSEGV);
    EXPECT_EQ(r.signalName, "SIGSEGV");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.describe(), "killed by SIGSEGV");
}

TEST(Subprocess, ExecFailureIsExit127)
{
    SubprocessOptions opts;
    opts.argv = {"/no/such/binary/cosim-test"};
    SubprocessResult r = runSubprocess(opts);
    EXPECT_EQ(r.end, SubprocessResult::End::Exited);
    EXPECT_EQ(r.exitCode, 127);
}

TEST(Subprocess, CapturesStreamTails)
{
    SubprocessResult r =
        runSubprocess(shell("printf out-words; printf err-words >&2"));
    EXPECT_EQ(r.stdoutTail, "out-words");
    EXPECT_EQ(r.stderrTail, "err-words");
}

TEST(Subprocess, TailKeepsOnlyTheLastBytes)
{
    SubprocessOptions opts =
        shell("i=0; while [ $i -lt 200 ]; do printf 0123456789; "
              "i=$((i+1)); done; printf END");
    opts.tailBytes = 64;
    SubprocessResult r = runSubprocess(opts);
    EXPECT_EQ(r.stdoutTail.size(), 64u);
    EXPECT_EQ(r.stdoutTail.substr(r.stdoutTail.size() - 3), "END");
}

TEST(Subprocess, SilentChildIsKilledByTheWatchdog)
{
    SubprocessOptions opts = shell("sleep 30");
    opts.silenceTimeout = 0.2;
    SubprocessResult r = runSubprocess(opts);
    EXPECT_EQ(r.end, SubprocessResult::End::TimedOut);
    EXPECT_EQ(r.termSignal, SIGKILL);
    EXPECT_FALSE(r.ok());
    EXPECT_LT(r.wallSeconds, 10.0);
    EXPECT_NE(r.describe().find("SIGKILLed"), std::string::npos);
}

TEST(Subprocess, ChattyChildOutlivesASmallerSilenceBudget)
{
    // Total wall ~0.6s against a 0.3s *silence* budget: liveness, not
    // wall time, is what the watchdog meters.
    SubprocessOptions opts =
        shell("for i in 1 2 3 4 5 6; do printf .; sleep 0.1; done");
    opts.silenceTimeout = 0.3;
    SubprocessResult r = runSubprocess(opts);
    EXPECT_EQ(r.end, SubprocessResult::End::Exited);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.stdoutTail, "......");
}

TEST(Subprocess, HeartbeatPipeCountsBeatsAndFeedsTheCallback)
{
    // The fd number arrives as the appended final argument; $0 of the
    // inner script receives it, and one byte per beat goes down it.
    SubprocessOptions opts;
    opts.argv = {"/bin/sh", "-c",
                 "fd=${0#--heartbeat-fd=}; "
                 "eval \"printf x >&$fd\"; eval \"printf y >&$fd\""};
    opts.heartbeatPipe = true;
    std::vector<std::uint64_t> seen;
    opts.onHeartbeat = [&](std::uint64_t total) {
        seen.push_back(total);
    };
    SubprocessResult r = runSubprocess(opts);
    EXPECT_TRUE(r.ok()) << r.describe() << ": " << r.stderrTail;
    EXPECT_EQ(r.heartbeats, 2u);
    ASSERT_FALSE(seen.empty());
    EXPECT_EQ(seen.back(), 2u);
}

TEST(Subprocess, HeartbeatBytesCountAsWatchdogActivity)
{
    SubprocessOptions opts;
    opts.argv = {"/bin/sh", "-c",
                 "fd=${0#--heartbeat-fd=}; for i in 1 2 3 4 5 6; do "
                 "eval \"printf x >&$fd\"; sleep 0.1; done"};
    opts.heartbeatPipe = true;
    opts.silenceTimeout = 0.3;
    SubprocessResult r = runSubprocess(opts);
    EXPECT_EQ(r.end, SubprocessResult::End::Exited);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_GE(r.heartbeats, 6u);
}

TEST(Subprocess, ReportsSpawnPidAndRusage)
{
    int spawned_pid = 0;
    SubprocessOptions opts = shell("exit 0");
    opts.onSpawn = [&](int pid) { spawned_pid = pid; };
    SubprocessResult r = runSubprocess(opts);
    EXPECT_EQ(spawned_pid, r.pid);
    // Even /bin/sh has a resident set.
    EXPECT_GT(r.maxRssKb, 0u);
    EXPECT_GT(r.wallSeconds, 0.0);
}

TEST(SubprocessSignalName, KnownAndUnknownSignals)
{
    EXPECT_EQ(signalName(SIGSEGV), "SIGSEGV");
    EXPECT_EQ(signalName(SIGKILL), "SIGKILL");
    EXPECT_EQ(signalName(SIGABRT), "SIGABRT");
    EXPECT_EQ(signalName(63), "SIG63");
}

} // namespace
} // namespace cosim
