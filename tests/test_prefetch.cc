/**
 * @file
 * Tests for the stride and stream prefetchers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/stride_prefetcher.hh"
#include "prefetch/stream_prefetcher.hh"

namespace cosim {
namespace {

std::vector<Addr>
feed(Prefetcher& pf, const std::vector<Addr>& addrs, bool miss = true)
{
    std::vector<Addr> out;
    for (Addr a : addrs)
        pf.observe(a, miss, out);
    return out;
}

TEST(StridePrefetcher, DetectsForwardStride)
{
    StridePrefetcherParams p;
    p.threshold = 2;
    p.degree = 2;
    StridePrefetcher pf(p);

    // Four accesses with stride 64 inside one 4 KB region: the first
    // sets the entry, the second trains the stride, the third and
    // fourth reach confidence >= 2 and prefetch ahead.
    auto out = feed(pf, {0x1000, 0x1040, 0x1080, 0x10c0});
    ASSERT_GE(out.size(), 2u);
    EXPECT_EQ(out[0], 0x1100u);
    EXPECT_EQ(out[1], 0x1140u);
}

TEST(StridePrefetcher, DetectsBackwardStride)
{
    StridePrefetcher pf;
    auto out = feed(pf, {0x2f00, 0x2ec0, 0x2e80, 0x2e40, 0x2e00});
    ASSERT_FALSE(out.empty());
    // The first proposal comes one stride below the 4th access.
    EXPECT_EQ(out.front(), 0x2e00u);
}

TEST(StridePrefetcher, IgnoresRandomPattern)
{
    StridePrefetcher pf;
    auto out = feed(pf, {0x1000, 0x1038, 0x1090, 0x10a8, 0x1010});
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, RepeatedAddressDoesNotTrain)
{
    StridePrefetcher pf;
    auto out = feed(pf, {0x1000, 0x1000, 0x1000, 0x1000});
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, LargeStrideWithinRegion)
{
    StridePrefetcherParams p;
    p.regionBits = 16; // 64 KB regions so a 1 KB stride stays inside
    StridePrefetcher pf(p);
    auto out = feed(pf, {0x10000, 0x10400, 0x10800, 0x10c00});
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), 0x11000u);
}

TEST(StridePrefetcher, RegionChangeRetrains)
{
    StridePrefetcher pf;
    auto out = feed(pf, {0x1000, 0x1040, 0x1080}); // trained in region 1
    out.clear();
    // Jump to a new region: first two accesses must not prefetch.
    pf.observe(0x9000, true, out);
    pf.observe(0x9040, true, out);
    EXPECT_TRUE(out.empty());
    pf.observe(0x9080, true, out);
    pf.observe(0x90c0, true, out);
    EXPECT_FALSE(out.empty());
}

TEST(StridePrefetcher, NeverProposesNegativeAddresses)
{
    StridePrefetcher pf;
    auto out = feed(pf, {0x100, 0xc0, 0x80, 0x40, 0x0});
    for (Addr a : out)
        EXPECT_LT(a, 0x200u); // and implicitly nothing wrapped to huge
}

TEST(StridePrefetcher, StatsAccounting)
{
    StridePrefetcher pf;
    feed(pf, {0x1000, 0x1040, 0x1080, 0x10c0});
    EXPECT_EQ(pf.stats().observed, 4u);
    EXPECT_GT(pf.stats().trained, 0u);
    EXPECT_EQ(pf.stats().issued % pf.params().degree, 0u);

    pf.resetStats();
    EXPECT_EQ(pf.stats().observed, 0u);
}

TEST(StridePrefetcher, ResetForgetsTraining)
{
    StridePrefetcher pf;
    feed(pf, {0x1000, 0x1040, 0x1080});
    pf.reset();
    std::vector<Addr> out;
    pf.observe(0x10c0, true, out);
    EXPECT_TRUE(out.empty()); // must retrain after reset
}

TEST(StreamPrefetcher, AscendingMissStream)
{
    StreamPrefetcherParams p;
    p.depth = 2;
    StreamPrefetcher pf(p);
    std::vector<Addr> out;
    pf.observe(0x1000, true, out);
    pf.observe(0x1040, true, out); // direction set, no issue yet
    EXPECT_TRUE(out.empty());
    pf.observe(0x1080, true, out); // confirmed ascending
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x10c0u);
    EXPECT_EQ(out[1], 0x1100u);
}

TEST(StreamPrefetcher, DescendingMissStream)
{
    StreamPrefetcher pf;
    std::vector<Addr> out;
    pf.observe(0x2100, true, out);
    pf.observe(0x20c0, true, out);
    pf.observe(0x2080, true, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), 0x2040u);
}

TEST(StreamPrefetcher, HitsDoNotTrigger)
{
    StreamPrefetcher pf;
    std::vector<Addr> out;
    for (Addr a = 0x1000; a < 0x2000; a += 64)
        pf.observe(a, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcher, DirectionFlipSuppressesOneRound)
{
    StreamPrefetcher pf;
    std::vector<Addr> out;
    pf.observe(0x1000, true, out);
    pf.observe(0x1040, true, out);
    pf.observe(0x1080, true, out); // ascending confirmed
    out.clear();
    pf.observe(0x1040, true, out); // flip: no issue
    EXPECT_TRUE(out.empty());
    pf.observe(0x1000, true, out); // descending confirmed
    EXPECT_FALSE(out.empty());
}

} // namespace
} // namespace cosim
