/**
 * @file
 * Tests for trace capture, persistence and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "dragonhead/fsb_messages.hh"
#include "test_util.hh"
#include "trace/trace.hh"

namespace cosim {
namespace {

BusTransaction
txnAt(Addr a, TxnKind kind = TxnKind::ReadLine, CoreId core = 0)
{
    BusTransaction t;
    t.addr = a;
    t.size = 64;
    t.kind = kind;
    t.core = core;
    return t;
}

TEST(Trace, RecordTxnRoundTrip)
{
    BusTransaction t = txnAt(0xdeadbeef, TxnKind::WriteLine, 17);
    TraceRecord r = TraceRecord::fromTxn(t);
    BusTransaction back = r.toTxn();
    EXPECT_EQ(back.addr, t.addr);
    EXPECT_EQ(back.size, t.size);
    EXPECT_EQ(back.kind, t.kind);
    EXPECT_EQ(back.core, t.core);
}

TEST(Trace, CaptureRecordsBusStream)
{
    FrontSideBus bus;
    TraceCapture capture;
    bus.attach(&capture);
    bus.issue(txnAt(0x40));
    bus.issue(msg::encode(msg::Type::SetCoreId, 2));
    bus.issue(txnAt(0x80, TxnKind::Prefetch));
    ASSERT_EQ(capture.records().size(), 3u);
    EXPECT_EQ(capture.records()[0].addr, 0x40u);
    EXPECT_EQ(static_cast<TxnKind>(capture.records()[2].kind),
              TxnKind::Prefetch);
}

TEST(Trace, SaveLoadRoundTrip)
{
    std::string path = ::testing::TempDir() + "cosim_trace_test.bin";
    TraceCapture capture;
    for (int i = 0; i < 1000; ++i) {
        capture.observe(txnAt(static_cast<Addr>(i) * 64,
                              i % 3 == 0 ? TxnKind::WriteLine
                                         : TxnKind::ReadLine,
                              static_cast<CoreId>(i % 8)));
    }
    capture.save(path);

    auto loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), capture.records().size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, capture.records()[i].addr);
        EXPECT_EQ(loaded[i].kind, capture.records()[i].kind);
        EXPECT_EQ(loaded[i].core, capture.records()[i].core);
    }
    std::remove(path.c_str());
}

TEST(Trace, SaveLoadEmptyTrace)
{
    std::string path = ::testing::TempDir() + "cosim_trace_empty.bin";
    TraceCapture capture;
    capture.save(path);
    EXPECT_TRUE(loadTrace(path).empty());
    std::remove(path.c_str());
}

TEST(Trace, ReplayFullAndSliced)
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 100; ++i)
        records.push_back(TraceRecord::fromTxn(txnAt(i * 64)));

    test::CountingSnooper all;
    EXPECT_EQ(replayTrace(records, all), 100u);
    EXPECT_EQ(all.total, 100u);

    test::CountingSnooper slice;
    EXPECT_EQ(replayTrace(records, slice, 10, 20), 20u);
    EXPECT_EQ(slice.total, 20u);
    EXPECT_EQ(slice.last.addr, 29u * 64u);

    test::CountingSnooper past_end;
    EXPECT_EQ(replayTrace(records, past_end, 95, 50), 5u);
    EXPECT_EQ(replayTrace(records, past_end, 200, 1), 0u);
}

TEST(Trace, ClearResets)
{
    TraceCapture capture;
    capture.observe(txnAt(0));
    capture.clear();
    EXPECT_TRUE(capture.records().empty());
}

} // namespace
} // namespace cosim
