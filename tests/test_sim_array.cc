/**
 * @file
 * Tests for the instrumented containers and the cooperative
 * synchronization primitives.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "mem/address_space.hh"
#include "softsdv/core_context.hh"
#include "softsdv/cpu_model.hh"
#include "workloads/sim_array.hh"
#include "workloads/thread_sync.hh"

namespace cosim {
namespace {

CpuParams
tinyCpu()
{
    CpuParams p;
    p.baseCpi = 1.0;
    p.caches.l1 = {"l1", 1024, 64, 2, ReplPolicy::LRU};
    p.caches.hasL2 = false;
    p.useDramLatency = false;
    p.emitFsbTraffic = false;
    return p;
}

class SimArrayTest : public ::testing::Test
{
  protected:
    SimArrayTest() : cpu_(0, tinyCpu(), &dram_, nullptr), ctx_(&cpu_) {}

    SimAllocator alloc_;
    DramModel dram_;
    CpuModel cpu_;
    CoreContext ctx_;
};

TEST_F(SimArrayTest, AddressesAreContiguousAndAligned)
{
    SimArray<std::uint32_t> a;
    a.init(alloc_, "a", 100);
    EXPECT_EQ(a.base() % 64, 0u);
    EXPECT_EQ(a.addrOf(0), a.base());
    EXPECT_EQ(a.addrOf(7), a.base() + 28);
    EXPECT_TRUE(a.initialized());
    EXPECT_EQ(a.size(), 100u);
}

TEST_F(SimArrayTest, ReadWriteRoundTripAndInstrumentation)
{
    SimArray<std::uint64_t> a;
    a.init(alloc_, "a", 16);
    a.write(ctx_, 3, 42);
    EXPECT_EQ(a.read(ctx_, 3), 42u);
    EXPECT_EQ(a.host(3), 42u);
    EXPECT_EQ(cpu_.stores(), 1u);
    EXPECT_EQ(cpu_.loads(), 1u);
    // Both accesses touched the line holding element 3.
    EXPECT_EQ(cpu_.caches().l1().stats().accesses, 2u);
}

TEST_F(SimArrayTest, BlockAccessChargesPerElement)
{
    SimArray<std::uint8_t> bytes;
    bytes.init(alloc_, "bytes", 256);
    bytes.readBlock(ctx_, 0, 256);
    // 256 one-byte loads...
    EXPECT_EQ(cpu_.loads(), 256u);
    // ...over 4 cache lines.
    EXPECT_EQ(cpu_.caches().l1().stats().accesses, 4u);

    SimArray<std::uint64_t> words;
    words.init(alloc_, "words", 64);
    words.writeBlock(ctx_, 0, 64);
    EXPECT_EQ(cpu_.stores(), 64u);
}

TEST_F(SimArrayTest, BlockReturnsWritableHostPointer)
{
    SimArray<int> a;
    a.init(alloc_, "a", 8);
    int* p = a.writeBlock(ctx_, 2, 4);
    p[0] = 11;
    p[3] = 44;
    EXPECT_EQ(a.host(2), 11);
    EXPECT_EQ(a.host(5), 44);
    EXPECT_EQ(a.readBlock(ctx_, 2, 4)[3], 44);
}

TEST_F(SimArrayTest, DistinctArraysDoNotOverlap)
{
    SimArray<double> a;
    SimArray<double> b;
    a.init(alloc_, "a", 100);
    b.init(alloc_, "b", 100);
    EXPECT_GE(b.base(), a.addrOf(99) + sizeof(double));
}

TEST_F(SimArrayTest, MatrixRowMajorAddressing)
{
    SimMatrix<float> m;
    m.init(alloc_, "m", 4, 10);
    EXPECT_EQ(m.rows(), 4u);
    EXPECT_EQ(m.cols(), 10u);
    EXPECT_EQ(m.addrOf(1, 0), m.base() + 10 * sizeof(float));
    EXPECT_EQ(m.addrOf(2, 3), m.base() + 23 * sizeof(float));

    m.write(ctx_, 2, 3, 1.5f);
    EXPECT_FLOAT_EQ(m.read(ctx_, 2, 3), 1.5f);
    EXPECT_FLOAT_EQ(m.host(2, 3), 1.5f);

    const float* row = m.readBlock(ctx_, 2, 0, 10);
    EXPECT_FLOAT_EQ(row[3], 1.5f);
}

TEST_F(SimArrayTest, AllocatorRegionNamesSurvive)
{
    SimArray<int> a;
    a.init(alloc_, "workload.structure", 4);
    const SimRegion* r = alloc_.findRegion(a.addrOf(2));
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->name, "workload.structure");
}

// ------------------------------------------------------------ barriers

TEST(PhaseBarrier, LastArriverReleasesAndRunsCallback)
{
    PhaseBarrier barrier;
    barrier.init(3);
    int released = 0;
    barrier.setOnRelease([&] { ++released; });

    EXPECT_EQ(barrier.generation(), 0u);
    barrier.arrive();
    barrier.arrive();
    EXPECT_EQ(released, 0);
    EXPECT_EQ(barrier.generation(), 0u);
    barrier.arrive();
    EXPECT_EQ(released, 1);
    EXPECT_EQ(barrier.generation(), 1u);

    // Reusable for the next generation.
    barrier.arrive();
    barrier.arrive();
    barrier.arrive();
    EXPECT_EQ(released, 2);
    EXPECT_EQ(barrier.generation(), 2u);
}

TEST(PhaseBarrier, SinglePartyNeverBlocks)
{
    PhaseBarrier barrier;
    barrier.init(1);
    for (int i = 0; i < 5; ++i)
        barrier.arrive();
    EXPECT_EQ(barrier.generation(), 5u);
}

TEST(BarrierWaiter, WaitsUntilAllArriveAndYields)
{
    DramModel dram;
    CpuModel cpu(0, tinyCpu(), &dram, nullptr);
    CoreContext ctx(&cpu);

    PhaseBarrier barrier;
    barrier.init(2);
    BarrierWaiter w1;
    BarrierWaiter w2;

    // Party 1 arrives and must keep waiting (and yield each time).
    EXPECT_TRUE(w1.wait(barrier, ctx));
    EXPECT_TRUE(ctx.yielded());
    ctx.clearYield();
    EXPECT_TRUE(w1.wait(barrier, ctx)); // still waiting; no re-arrive
    ctx.clearYield();

    // Party 2's arrival releases the generation; both pass.
    EXPECT_FALSE(w2.wait(barrier, ctx));
    EXPECT_FALSE(w1.wait(barrier, ctx));

    // The waiter is reusable for the next phase.
    EXPECT_TRUE(w1.wait(barrier, ctx));
}

} // namespace
} // namespace cosim
