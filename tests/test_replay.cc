/**
 * @file
 * FSB replay determinism suite.
 *
 * The tentpole property: replaying a captured stream through any
 * emulator configuration is *bit-identical* to live snooping -- every
 * CacheController counter, per-core counter and ControlBlock 500 us
 * sample window -- in serial and in worker-thread emulation mode.
 * On top of that: replay provenance in RunResult, sweep cell-mode
 * equivalence (combined / exec / replay decompositions produce the same
 * figures), per-cell stats namespacing, and clean failure on corrupt
 * streams.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "core/results.hh"
#include "harness/sweep_runner.hh"
#include "obs/stats_registry.hh"
#include "trace/fsb_capture.hh"
#include "trace/fsb_replay.hh"
#include "test_util.hh"

namespace cosim {
namespace {

PlatformParams
smallCmp(unsigned cores)
{
    PlatformParams p;
    p.name = "testCMP";
    p.nCores = cores;
    p.cpu.baseCpi = 1.0;
    p.cpu.caches.l1 = {"l1", 1 * KiB, 64, 2, ReplPolicy::LRU};
    p.cpu.caches.hasL2 = false;
    p.cpu.useDramLatency = false;
    p.cpu.beyondLatency = 50;
    p.cpu.emitFsbTraffic = true;
    p.dex.quantumInsts = 2000;
    return p;
}

DragonheadParams
llc(std::uint64_t size)
{
    DragonheadParams dh;
    dh.llc = {"llc", size, 64, 4, ReplPolicy::LRU};
    dh.nSlices = 4;
    dh.maxCores = 8;
    return dh;
}

std::vector<DragonheadParams>
sweepConfigs()
{
    return {llc(8 * KiB), llc(64 * KiB), llc(256 * KiB)};
}

/** Emulator-side state, bit-exact (mirrors test_parallel.cc). */
struct Fingerprint
{
    std::vector<std::uint64_t> counters;
    std::vector<double> samples;

    bool operator==(const Fingerprint&) const = default;
};

Fingerprint
fingerprintOf(const CoSimulation& cosim, unsigned n_cores)
{
    Fingerprint fp;
    for (unsigned e = 0; e < cosim.nEmulators(); ++e) {
        const Dragonhead& dh = cosim.emulator(e);
        LlcResults r = dh.results();
        fp.counters.push_back(r.accesses);
        fp.counters.push_back(r.misses);
        fp.counters.push_back(r.insts);
        fp.counters.push_back(r.cycles);
        for (unsigned c = 0; c < n_cores; ++c) {
            CoreCounters cc = dh.coreResults(static_cast<CoreId>(c));
            fp.counters.push_back(cc.accesses);
            fp.counters.push_back(cc.misses);
        }
        for (const Sample& s : dh.samples()) {
            fp.samples.push_back(s.timeUs);
            fp.samples.push_back(static_cast<double>(s.insts));
            fp.samples.push_back(static_cast<double>(s.accesses));
            fp.samples.push_back(static_cast<double>(s.misses));
            fp.samples.push_back(s.mpki());
        }
    }
    return fp;
}

/** A live run with the capture snooper attached. */
struct LiveCapture
{
    Fingerprint fingerprint;
    RunResult result;
    std::shared_ptr<const std::vector<std::uint8_t>> stream;
    std::uint64_t digest = 0;
    std::uint64_t txns = 0;
};

LiveCapture
runLiveWithCapture(unsigned emu_threads)
{
    const unsigned cores = 4;
    CoSimParams params;
    params.platform = smallCmp(cores);
    params.emulators = sweepConfigs();
    params.emulationThreads = emu_threads;
    CoSimulation cosim(params);

    FsbStreamMeta meta;
    meta.workload = "loop";
    meta.platform = params.platform.name;
    meta.nCores = cores;
    FsbCaptureSnooper capture(meta, 256);
    cosim.platform().fsb().attach(&capture);

    test::LoopWorkload wl(16 * KiB, 4, true);
    WorkloadConfig cfg;
    cfg.nThreads = cores;

    LiveCapture live;
    live.result = cosim.run(wl, cfg);
    cosim.platform().fsb().detach(&capture);
    EXPECT_TRUE(live.result.verified);
    EXPECT_TRUE(live.result.replayedFrom.empty());

    capture.writer().setResult(live.result.totalInsts,
                               live.result.verified);
    live.digest = capture.writer().digest();
    live.txns = capture.writer().txnCount();
    live.stream = capture.writer().share();
    live.fingerprint = fingerprintOf(cosim, cores);
    return live;
}

/** Replay @p live through a fresh rig and fingerprint the emulators. */
Fingerprint
replayOnce(const LiveCapture& live, unsigned emu_threads,
           RunResult* out_result = nullptr)
{
    const unsigned cores = 4;
    CoSimParams params;
    params.platform = smallCmp(cores);
    params.emulators = sweepConfigs();
    params.emulationThreads = emu_threads;
    CoSimulation cosim(params);

    ReplayResult details;
    RunResult result = cosim.replayBuffer(live.stream, "memory:loop",
                                          &details);
    EXPECT_EQ(details.txns, live.txns);
    EXPECT_EQ(details.digest, live.digest);
    if (out_result)
        *out_result = result;
    return fingerprintOf(cosim, cores);
}

TEST(FsbReplay, BitIdenticalToLiveSnooping)
{
    LiveCapture live = runLiveWithCapture(0);
    ASSERT_FALSE(live.fingerprint.counters.empty());
    ASSERT_FALSE(live.fingerprint.samples.empty());
    ASSERT_GT(live.txns, 0u);

    EXPECT_EQ(replayOnce(live, 0), live.fingerprint);
}

TEST(FsbReplay, BitIdenticalUnderWorkerThreadEmulation)
{
    LiveCapture live = runLiveWithCapture(0);
    for (unsigned threads : {1u, 2u, 4u}) {
        EXPECT_EQ(replayOnce(live, threads), live.fingerprint)
            << "emu threads = " << threads;
    }
}

TEST(FsbReplay, CaptureUnderParallelEmulationMatchesSerialCapture)
{
    // The capture snooper rides the batched bus in parallel mode; the
    // encoded stream must still be the exact issue-order sequence.
    LiveCapture serial = runLiveWithCapture(0);
    LiveCapture parallel = runLiveWithCapture(2);
    EXPECT_EQ(parallel.digest, serial.digest);
    EXPECT_EQ(parallel.txns, serial.txns);
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint);
}

TEST(FsbReplay, ResultCarriesProvenanceAndCapturedOutcome)
{
    LiveCapture live = runLiveWithCapture(0);
    RunResult replayed;
    replayOnce(live, 0, &replayed);

    EXPECT_EQ(replayed.replayedFrom, "memory:loop");
    EXPECT_EQ(replayed.workload, "loop");
    EXPECT_EQ(replayed.totalInsts, live.result.totalInsts);
    EXPECT_EQ(replayed.verified, live.result.verified);
    EXPECT_EQ(replayed.nThreads, 4u);
    // The guest did not execute: CPU-side counters stay zero.
    EXPECT_EQ(replayed.totalCycles, 0u);
    EXPECT_EQ(replayed.l1.accesses, 0u);
}

TEST(FsbReplay, FileRoundTripIsIdenticalToBufferReplay)
{
    LiveCapture live = runLiveWithCapture(0);
    std::string path = testing::TempDir() + "replay_roundtrip.fsb";
    {
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(live.stream->data()),
                  static_cast<std::streamsize>(live.stream->size()));
    }

    const unsigned cores = 4;
    CoSimParams params;
    params.platform = smallCmp(cores);
    params.emulators = sweepConfigs();
    CoSimulation cosim(params);
    ReplayResult details;
    RunResult result = cosim.replayFile(path, &details);
    EXPECT_EQ(result.replayedFrom, "file:" + path);
    EXPECT_EQ(details.digest, live.digest);
    EXPECT_EQ(fingerprintOf(cosim, cores), live.fingerprint);
    std::remove(path.c_str());
}

TEST(FsbReplay, RigIsReusableAfterReplay)
{
    // replay -> live -> replay on one rig: each pass resets emulators,
    // so results must be independent of what ran before.
    LiveCapture live = runLiveWithCapture(0);

    const unsigned cores = 4;
    CoSimParams params;
    params.platform = smallCmp(cores);
    params.emulators = sweepConfigs();
    CoSimulation cosim(params);

    cosim.replayBuffer(live.stream, "memory:loop");
    Fingerprint first = fingerprintOf(cosim, cores);

    test::LoopWorkload wl(16 * KiB, 4, true);
    WorkloadConfig cfg;
    cfg.nThreads = cores;
    cosim.run(wl, cfg);
    EXPECT_EQ(fingerprintOf(cosim, cores), live.fingerprint);

    cosim.replayBuffer(live.stream, "memory:loop");
    EXPECT_EQ(fingerprintOf(cosim, cores), first);
    EXPECT_EQ(first, live.fingerprint);
}

TEST(FsbReplay, CorruptStreamReportsErrorThroughDriver)
{
    LiveCapture live = runLiveWithCapture(0);
    auto corrupt = std::make_shared<std::vector<std::uint8_t>>(
        live.stream->begin(), live.stream->end());
    (*corrupt)[corrupt->size() - 1] ^= 0xff; // trailer digest byte

    FrontSideBus bus;
    ReplayDriver driver;
    ReplayResult rr = driver.replayBuffer(corrupt, bus);
    EXPECT_FALSE(rr.ok);
    EXPECT_NE(rr.error.find("digest mismatch"), std::string::npos)
        << rr.error;
}

TEST(FsbReplay, CoSimulationRefusesCorruptStream)
{
    // Throws (instead of the old fatal()) so a sweep cell replaying a
    // bad capture can be isolated under --keep-going.
    CoSimParams params;
    params.platform = smallCmp(2);
    params.emulators = {llc(8 * KiB)};
    CoSimulation cosim(params);
    try {
        cosim.replayFile("/nonexistent/stream.fsb");
        FAIL() << "replayFile must throw on an unreadable stream";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("cannot replay FSB stream"),
                  std::string::npos)
            << e.what();
    }
}

// --- sweep cell modes ----------------------------------------------------

FigureData
runSweep(CellMode cells, unsigned jobs, unsigned emu_threads,
         const std::string& capture_base = "",
         const std::string& replay_base = "",
         const std::string& digest_file = "")
{
    BenchOptions opts;
    opts.scale = 0.02;
    opts.workloads = {"PLSA"};
    opts.cells = cells;
    opts.jobs = jobs;
    opts.emuThreads = emu_threads;
    opts.captureBase = capture_base;
    opts.replayBase = replay_base;
    opts.digestFile = digest_file;

    PlatformParams platform = presets::cmpPlatform("tiny", 2);
    return SweepRunner(opts).runLineSizeFigure("FigReplayTest", platform);
}

void
expectSameFigure(const FigureData& a, const FigureData& b)
{
    ASSERT_EQ(a.seriesNames(), b.seriesNames());
    for (const std::string& name : a.seriesNames()) {
        EXPECT_EQ(a.series(name), b.series(name)) << name;
        const auto& ap = a.points(name);
        const auto& bp = b.points(name);
        ASSERT_EQ(ap.size(), bp.size());
        for (std::size_t i = 0; i < ap.size(); ++i) {
            EXPECT_EQ(ap[i].llcAccesses, bp[i].llcAccesses) << i;
            EXPECT_EQ(ap[i].llcMisses, bp[i].llcMisses) << i;
            EXPECT_EQ(ap[i].insts, bp[i].insts) << i;
        }
    }
}

TEST(SweepCellModes, ExecAndReplayMatchCombined)
{
    FigureData combined = runSweep(CellMode::Combined, 1, 0);
    FigureData exec = runSweep(CellMode::Exec, 1, 0);
    FigureData replay = runSweep(CellMode::Replay, 1, 0);
    expectSameFigure(combined, exec);
    expectSameFigure(combined, replay);
}

TEST(SweepCellModes, ReplayCellsMatchUnderJobsAndEmuThreads)
{
    FigureData serial = runSweep(CellMode::Combined, 1, 0);
    FigureData parallel = runSweep(CellMode::Replay, 4, 2);
    expectSameFigure(serial, parallel);
}

TEST(SweepCellModes, CaptureThenFileReplayMatchesLive)
{
    std::string base = testing::TempDir() + "sweep_replay_test";
    std::string digest_live = testing::TempDir() + "sweep_live.digest";
    std::string digest_replay = testing::TempDir() + "sweep_replay.digest";

    FigureData live =
        runSweep(CellMode::Combined, 1, 0, base, "", digest_live);
    FigureData replayed =
        runSweep(CellMode::Combined, 1, 0, "", base, digest_replay);
    expectSameFigure(live, replayed);

    // The stream digest is invariant across capture and replay.
    DigestManifest a, b;
    std::string error;
    ASSERT_TRUE(DigestManifest::load(digest_live, a, &error)) << error;
    ASSERT_TRUE(DigestManifest::load(digest_replay, b, &error)) << error;
    std::string report;
    EXPECT_TRUE(DigestManifest::compare(a, b, report)) << report;
    ASSERT_EQ(a.entries.size(), 1u);
    EXPECT_EQ(a.entries[0].workload, "PLSA");
    EXPECT_GT(a.entries[0].txns, 0u);

    std::remove((base + ".PLSA.fsb").c_str());
    std::remove(digest_live.c_str());
    std::remove(digest_replay.c_str());
}

TEST(SweepCellModes, PerCellStatsAreNamespaced)
{
    obs::StatsRegistry& registry = obs::StatsRegistry::global();
    registry.clear();
    runSweep(CellMode::Combined, 1, 0);
    EXPECT_NE(registry.find("cell/PLSA/fsb"), nullptr);
    EXPECT_NE(registry.find("cell/PLSA/dragonhead0"), nullptr);

    registry.clear();
    runSweep(CellMode::Replay, 2, 0);
    // Replay mode: a capture namespace plus one per configuration tick.
    EXPECT_NE(registry.find("cell/PLSA/capture/fsb"), nullptr);
    EXPECT_NE(registry.find("cell/PLSA/64B/dragonhead0"), nullptr);
    EXPECT_NE(registry.find("cell/PLSA/4KB/dragonhead0"), nullptr);
    // The aggregate replay counters are published too.
    ASSERT_NE(registry.find("replay"), nullptr);
    registry.clear();
}

} // namespace
} // namespace cosim
