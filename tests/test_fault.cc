/**
 * @file
 * Robustness suite: deterministic fault injection (base/fault.hh),
 * atomic artifact writes (base/atomic_file.hh), SPSC queue poisoning,
 * worker-failure containment in the AsyncEmulatorBank, and sweep-cell
 * isolation (--keep-going / --retry-cells / --cell-timeout).
 *
 * The invariants under test: an injected failure never hangs the run,
 * never half-writes an artifact, surfaces exactly one clean error, and
 * with --keep-going leaves every healthy cell bit-identical to a
 * fault-free run.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/atomic_file.hh"
#include "base/csv.hh"
#include "base/fault.hh"
#include "base/spsc_queue.hh"
#include "base/units.hh"
#include "core/cosim.hh"
#include "core/emulator_bank.hh"
#include "core/experiment.hh"
#include "core/results.hh"
#include "harness/sweep_runner.hh"
#include "obs/host_profiler.hh"
#include "obs/run_manifest.hh"
#include "obs/stats_registry.hh"
#include "trace/fsb_capture.hh"
#include "test_util.hh"

namespace cosim {
namespace {

bool
fileExists(const std::string& path)
{
    std::ifstream in(path);
    return in.good();
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return body;
}

// ---------------------------------------------------------------------
// FaultPlan parsing.
// ---------------------------------------------------------------------

TEST(FaultPlan, ParsesNthAndProbabilityTriggers)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse(
        "emu.worker.crash:nth=3,io.write.fail:p=0.25", &plan, &error))
        << error;
    ASSERT_EQ(plan.sites.size(), 2u);
    EXPECT_EQ(plan.sites[0].site, "emu.worker.crash");
    EXPECT_EQ(plan.sites[0].trigger.kind, FaultTrigger::Kind::Nth);
    EXPECT_EQ(plan.sites[0].trigger.nth, 3u);
    EXPECT_EQ(plan.sites[1].site, "io.write.fail");
    EXPECT_EQ(plan.sites[1].trigger.kind,
              FaultTrigger::Kind::Probability);
    EXPECT_DOUBLE_EQ(plan.sites[1].trigger.probability, 0.25);
}

TEST(FaultPlan, ParsePreservesCallerSeed)
{
    FaultPlan plan;
    plan.seed = 777;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse("x:nth=1", &plan, &error)) << error;
    EXPECT_EQ(plan.seed, 777u);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    for (const char* spec :
         {"", "site", "site:", ":nth=1", "site:wat=1", "site:nth=0",
          "site:nth=x", "site:p=1.5", "site:p=-0.1", "site:p=x",
          "a:nth=1,,b:nth=2"}) {
        FaultPlan plan;
        std::string error;
        EXPECT_FALSE(FaultPlan::parse(spec, &plan, &error)) << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
}

// ---------------------------------------------------------------------
// FaultInjector semantics.
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, DisabledIsTheDefaultAndAfterScope)
{
    EXPECT_FALSE(FaultInjector::enabled());
    {
        ScopedFaultPlan plan("x:nth=1");
        EXPECT_TRUE(FaultInjector::enabled());
    }
    EXPECT_FALSE(FaultInjector::enabled());
    EXPECT_FALSE(faultPending("x"));
}

TEST(FaultInjectorTest, NthFiresExactlyOnceOnTheNthHit)
{
    ScopedFaultPlan plan("x:nth=3");
    FaultInjector& inj = FaultInjector::global();
    EXPECT_FALSE(inj.shouldFail("x"));
    EXPECT_FALSE(inj.shouldFail("x"));
    EXPECT_TRUE(inj.shouldFail("x"));  // 3rd hit
    EXPECT_FALSE(inj.shouldFail("x")); // once only
    EXPECT_EQ(inj.hits("x"), 4u);
    EXPECT_EQ(inj.fired("x"), 1u);
}

TEST(FaultInjectorTest, HitThrowsFaultInjectedWithSiteAndCount)
{
    ScopedFaultPlan plan("boom:nth=2");
    COSIM_FAULT_POINT("boom");
    try {
        COSIM_FAULT_POINT("boom");
        FAIL() << "second hit must throw";
    } catch (const FaultInjected& e) {
        EXPECT_EQ(e.site(), "boom");
        EXPECT_EQ(e.hit(), 2u);
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos);
    }
}

TEST(FaultInjectorTest, UnarmedSitesCountButNeverFire)
{
    ScopedFaultPlan plan("armed:nth=1");
    FaultInjector& inj = FaultInjector::global();
    EXPECT_FALSE(inj.shouldFail("other"));
    EXPECT_FALSE(inj.shouldFail("other"));
    EXPECT_EQ(inj.hits("other"), 2u);
    EXPECT_EQ(inj.fired("other"), 0u);
}

TEST(FaultInjectorTest, ProbabilityScheduleReplaysWithTheSeed)
{
    auto schedule = [](std::uint64_t seed) {
        ScopedFaultPlan plan("p.site:p=0.5", seed);
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(faultPending("p.site"));
        return fires;
    };
    std::vector<bool> a = schedule(42);
    std::vector<bool> b = schedule(42);
    EXPECT_EQ(a, b);
    std::size_t fired = 0;
    for (bool f : a)
        fired += f ? 1u : 0u;
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, a.size());
    // A different seed draws a different schedule.
    EXPECT_NE(schedule(43), a);
}

// ---------------------------------------------------------------------
// AtomicFile.
// ---------------------------------------------------------------------

TEST(AtomicFile, CommitPublishesAndRemovesTemp)
{
    const std::string path = testing::TempDir() + "atomic_commit.txt";
    std::remove(path.c_str());
    {
        AtomicFile file(path);
        file.write("hello ");
        file.stream() << "world";
        file.commit();
    }
    EXPECT_EQ(readFile(path), "hello world");
    EXPECT_FALSE(fileExists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(AtomicFile, UncommittedWriteLeavesNothingBehind)
{
    const std::string path = testing::TempDir() + "atomic_aborted.txt";
    std::remove(path.c_str());
    {
        AtomicFile file(path);
        file.write("half-written");
    }
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

TEST(AtomicFile, FailedCommitPreservesThePreviousFile)
{
    const std::string path = testing::TempDir() + "atomic_prev.txt";
    writeFileAtomic(path, "version 1");
    {
        ScopedFaultPlan plan("io.write.fail:nth=1");
        EXPECT_THROW(writeFileAtomic(path, "version 2"), IoError);
    }
    EXPECT_EQ(readFile(path), "version 1");
    EXPECT_FALSE(fileExists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(AtomicFile, MissingDirectoryThrowsIoErrorNamingThePath)
{
    try {
        AtomicFile file("/nonexistent-dir/sub/x.json");
        FAIL() << "constructor must throw";
    } catch (const IoError& e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent-dir/sub/"),
                  std::string::npos)
            << e.what();
    }
}

TEST(AtomicFile, InjectedWriteFaultNamesThePath)
{
    const std::string path = testing::TempDir() + "atomic_fault.txt";
    ScopedFaultPlan plan("io.write.fail:nth=1");
    try {
        writeFileAtomic(path, "body");
        FAIL() << "commit must throw";
    } catch (const IoError& e) {
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
            << e.what();
    }
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

// ---------------------------------------------------------------------
// SPSC queue poisoning (names start with SpscQueue so the TSan CI job
// picks these up).
// ---------------------------------------------------------------------

TEST(SpscQueuePoison, PoisonReleasesABlockedProducer)
{
    SpscQueue<int> q(1);
    EXPECT_TRUE(q.push(1)); // fills the queue
    std::thread killer([&q] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        q.poison();
    });
    // Would deadlock forever without the poison wakeup.
    EXPECT_FALSE(q.push(2));
    killer.join();
    EXPECT_TRUE(q.poisoned());
    // Later pushes fail immediately.
    EXPECT_FALSE(q.push(3));
}

TEST(SpscQueuePoison, PopFailsOncePoisoned)
{
    SpscQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    q.poison();
    int out = 0;
    EXPECT_FALSE(q.pop(out));
}

TEST(SpscQueuePoison, DrainNowReclaimsUndeliveredItems)
{
    SpscQueue<int> q(4);
    EXPECT_TRUE(q.push(7));
    EXPECT_TRUE(q.push(8));
    q.poison();
    std::vector<int> left = q.drainNow();
    ASSERT_EQ(left.size(), 2u);
    EXPECT_EQ(left[0], 7);
    EXPECT_EQ(left[1], 8);
    EXPECT_EQ(q.size(), 0u);
}

// ---------------------------------------------------------------------
// Worker-failure containment and sweep-cell isolation. (Suite name
// FaultInjection* is matched by the TSan and fault-injection CI jobs.)
// ---------------------------------------------------------------------

PlatformParams
smallCmp(unsigned cores)
{
    PlatformParams p;
    p.name = "testCMP";
    p.nCores = cores;
    p.cpu.baseCpi = 1.0;
    p.cpu.caches.l1 = {"l1", 1 * KiB, 64, 2, ReplPolicy::LRU};
    p.cpu.caches.hasL2 = false;
    p.cpu.useDramLatency = false;
    p.cpu.beyondLatency = 50;
    p.cpu.emitFsbTraffic = true;
    p.dex.quantumInsts = 2000;
    return p;
}

DragonheadParams
llc(std::uint64_t size)
{
    DragonheadParams dh;
    dh.llc = {"llc", size, 64, 4, ReplPolicy::LRU};
    dh.nSlices = 4;
    dh.maxCores = 8;
    return dh;
}

/** Per-emulator counters of @p cosim, bit-exact. */
std::vector<std::uint64_t>
countersOf(const CoSimulation& cosim)
{
    std::vector<std::uint64_t> out;
    for (unsigned e = 0; e < cosim.nEmulators(); ++e) {
        LlcResults r = cosim.emulator(e).results();
        out.push_back(r.accesses);
        out.push_back(r.misses);
        out.push_back(r.insts);
        out.push_back(r.cycles);
    }
    return out;
}

std::vector<BusTransaction>
syntheticTxns(std::size_t n)
{
    std::vector<BusTransaction> txns(n);
    for (std::size_t i = 0; i < n; ++i) {
        txns[i].addr = 0x1000 + 64 * i;
        txns[i].size = 64;
        txns[i].kind = TxnKind::ReadLine;
        txns[i].core = static_cast<CoreId>(i % 2);
    }
    return txns;
}

TEST(FaultInjection, WorkerCrashSurfacesOneCleanErrorAtSync)
{
    ScopedFaultPlan plan("emu.worker.crash:nth=1");

    EmulatorBankParams params;
    params.emulators = {llc(8 * KiB), llc(64 * KiB)};
    params.nThreads = 2;
    params.chunkTxns = 64;
    params.queueChunks = 2; // tiny: the producer WILL hit a full queue
    AsyncEmulatorBank bank(params);

    // Push far more chunks than the dead worker's queue holds: without
    // poisoning, the producer would deadlock right here.
    const std::vector<BusTransaction> txns = syntheticTxns(64 * 64);
    bank.observeBatch(txns.data(), txns.size());

    try {
        bank.sync();
        FAIL() << "sync() must rethrow the worker's exception";
    } catch (const FaultInjected& e) {
        EXPECT_EQ(e.site(), "emu.worker.crash");
    }
    EXPECT_EQ(bank.failedWorkers(), 1u);
    // The bank stays poisoned: the error is not silently forgotten.
    EXPECT_THROW(bank.sync(), FaultInjected);
}

TEST(FaultInjection, DegradeToSerialStaysBitIdentical)
{
    auto run = [](unsigned emu_threads, bool degrade) {
        CoSimParams params;
        params.platform = smallCmp(2);
        params.emulators = {llc(8 * KiB), llc(64 * KiB), llc(256 * KiB)};
        params.emulationThreads = emu_threads;
        params.fsbBatchTxns = 256;
        params.degradeToSerial = degrade;
        CoSimulation cosim(params);
        test::LoopWorkload wl(16 * KiB, 4);
        WorkloadConfig cfg;
        cfg.nThreads = 2;
        RunResult r = cosim.run(wl, cfg);
        EXPECT_TRUE(r.verified);
        return countersOf(cosim);
    };

    const std::vector<std::uint64_t> serial = run(0, false);
    ASSERT_FALSE(serial.empty());

    std::vector<std::uint64_t> degraded;
    {
        ScopedFaultPlan plan("emu.worker.crash:nth=1");
        CoSimParams params;
        params.platform = smallCmp(2);
        params.emulators = {llc(8 * KiB), llc(64 * KiB), llc(256 * KiB)};
        params.emulationThreads = 2;
        params.fsbBatchTxns = 256;
        params.degradeToSerial = true;
        CoSimulation cosim(params);
        test::LoopWorkload wl(16 * KiB, 4);
        WorkloadConfig cfg;
        cfg.nThreads = 2;
        RunResult r = cosim.run(wl, cfg);
        EXPECT_TRUE(r.verified);
        ASSERT_NE(cosim.bank(), nullptr);
        EXPECT_GE(cosim.bank()->failedWorkers(), 1u);
        EXPECT_GE(cosim.bank()->degradedWorkers(), 1u);
        degraded = countersOf(cosim);
    }
    // The injected crash fires at a chunk boundary, so the adopted
    // emulators replay the exact same transaction sequence.
    EXPECT_EQ(degraded, serial);
    EXPECT_GE(obs::HostProfiler::global().degradedToSerial(), 1u);
}

/** The miniature two-workload sweep the isolation tests run. */
BenchOptions
sweepOpts()
{
    BenchOptions opts;
    opts.scale = 0.02;
    opts.workloads = {"PLSA", "FIMI"};
    return opts;
}

TEST(FaultInjection, KeepGoingIsolatesThePoisonedCell)
{
    const PlatformParams platform = presets::cmpPlatform("tiny", 2);
    FigureData baseline =
        SweepRunner(sweepOpts()).runCacheSizeFigure("FigBase", platform);

    BenchOptions opts = sweepOpts();
    opts.keepGoing = true;
    FigureData faulted = [&] {
        // Each combined cell hits "cell.throw" once, in workload
        // order: hit 2 is FIMI's cell.
        ScopedFaultPlan plan("cell.throw:nth=2");
        return SweepRunner(opts).runCacheSizeFigure("FigFault",
                                                    platform);
    }();

    EXPECT_EQ(faulted.status("PLSA"), "ok");
    EXPECT_EQ(faulted.status("FIMI"), "failed");
    EXPECT_TRUE(faulted.series("FIMI").empty());
    // The healthy cell is bit-identical to the fault-free run.
    EXPECT_EQ(faulted.series("PLSA"), baseline.series("PLSA"));
    const auto& bp = baseline.points("PLSA");
    const auto& fp = faulted.points("PLSA");
    ASSERT_EQ(bp.size(), fp.size());
    for (std::size_t i = 0; i < bp.size(); ++i) {
        EXPECT_EQ(bp[i].llcAccesses, fp[i].llcAccesses);
        EXPECT_EQ(bp[i].llcMisses, fp[i].llcMisses);
        EXPECT_EQ(bp[i].insts, fp[i].insts);
    }
}

TEST(FaultInjection, RetriedCellMatchesTheBaseline)
{
    const PlatformParams platform = presets::cmpPlatform("tiny", 2);
    FigureData baseline =
        SweepRunner(sweepOpts()).runCacheSizeFigure("FigBase2", platform);

    BenchOptions opts = sweepOpts();
    opts.retryCells = 1;
    FigureData retried = [&] {
        // First attempt of the first cell dies; the retry (hit 2, nth
        // already fired) succeeds on a fresh rig.
        ScopedFaultPlan plan("cell.throw:nth=1");
        return SweepRunner(opts).runCacheSizeFigure("FigRetry",
                                                    platform);
    }();

    EXPECT_EQ(retried.status("PLSA"), "retried");
    EXPECT_EQ(retried.status("FIMI"), "ok");
    EXPECT_EQ(retried.series("PLSA"), baseline.series("PLSA"));
    EXPECT_EQ(retried.series("FIMI"), baseline.series("FIMI"));
}

TEST(FaultInjection, CellTimeoutMarksTheCellFailed)
{
    BenchOptions opts = sweepOpts();
    opts.workloads = {"PLSA"};
    opts.keepGoing = true;
    opts.cellTimeout = 0.05;
    ScopedFaultPlan plan("cell.hang:nth=1");
    FigureData fig = SweepRunner(opts).runCacheSizeFigure(
        "FigHang", presets::cmpPlatform("tiny", 2));
    EXPECT_EQ(fig.status("PLSA"), "failed");
    EXPECT_TRUE(fig.series("PLSA").empty());
}

TEST(FaultInjection, InjectedWriteFaultFailsTheCaptureCleanly)
{
    const std::string path = testing::TempDir() + "fault_capture.fsb";
    std::remove(path.c_str());

    FsbStreamMeta meta;
    meta.workload = "testwl";
    const std::vector<BusTransaction> txns = syntheticTxns(100);
    FsbStreamWriter writer(meta, 32);
    writer.appendBatch(txns.data(), txns.size());

    ScopedFaultPlan plan("io.write.fail:nth=1");
    EXPECT_THROW(writer.writeFile(path), IoError);
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

TEST(FaultInjectionDeathTest, FailedCellWithoutKeepGoingExitsNonzero)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ScopedFaultPlan plan("cell.throw:nth=1");
            BenchOptions opts = sweepOpts();
            opts.workloads = {"PLSA"};
            SweepRunner(opts).runCacheSizeFigure(
                "FigDie", presets::cmpPlatform("tiny", 2));
        },
        "cell failed.*keep-going");
}

// ---------------------------------------------------------------------
// Top-level artifact writers convert IoError to fatal() -- a failed
// write must exit nonzero and name the path.
// ---------------------------------------------------------------------

TEST(ArtifactWriterDeathTest, StatsWriteFailureIsFatalAndNamesThePath)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    obs::StatsRegistry registry;
    EXPECT_DEATH(registry.writeFile("/nonexistent-dir/stats.json"),
                 "stats:.*nonexistent-dir");
}

TEST(ArtifactWriterDeathTest, ManifestWriteFailureIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    obs::RunManifest manifest;
    EXPECT_DEATH(manifest.writeJson("/nonexistent-dir/run.json"),
                 "manifest:.*nonexistent-dir");
}

TEST(ArtifactWriterDeathTest, CsvOpenFailureIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(CsvWriter("/nonexistent-dir/x.csv"),
                 "csv:.*nonexistent-dir");
}

} // namespace
} // namespace cosim
