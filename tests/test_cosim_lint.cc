/**
 * @file
 * Unit tests for the cosim_lint core: every rule fires on a minimal bad
 * fixture and stays quiet on the idiomatic equivalent, suppressions work
 * at line/next-line/file granularity, per-directory rule selection
 * matches DESIGN.md, and --fix output is correct and idempotent.
 *
 * Fixtures are embedded strings linted through the pure lintContent()
 * entry point, so the tests never touch the file system.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/cosim_lint/linter.hh"

namespace cosim_lint {
namespace {

/** All findings for @p content linted as @p rel_path. */
std::vector<Finding>
lint(const std::string& rel_path, const std::string& content)
{
    return lintContent(rel_path, content, ruleSetFor(rel_path));
}

/** The rule names found, in reporting order. */
std::vector<std::string>
rulesHit(const std::string& rel_path, const std::string& content)
{
    std::vector<std::string> out;
    for (const Finding& f : lint(rel_path, content))
        out.push_back(f.rule);
    return out;
}

bool
hasRule(const std::vector<std::string>& rules, const std::string& rule)
{
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// ---------------------------------------------------------------------
// Determinism rules (simulation directories).
// ---------------------------------------------------------------------

TEST(CosimLintDeterminism, RandFamilyFlaggedInSimCode)
{
    auto rules = rulesHit("src/cache/x.cc",
                          "int f() { return rand(); }\n");
    EXPECT_TRUE(hasRule(rules, "no-rand"));

    rules = rulesHit("src/dragonhead/x.cc",
                     "void g() { srand(1); }\n");
    EXPECT_TRUE(hasRule(rules, "no-rand"));

    rules = rulesHit("src/mem/x.cc",
                     "double d = drand48();\n");
    EXPECT_TRUE(hasRule(rules, "no-rand"));

    // std::rand through the scope operator is still rand.
    rules = rulesHit("src/trace/x.cc",
                     "int v = std::rand();\n");
    EXPECT_TRUE(hasRule(rules, "no-rand"));
}

TEST(CosimLintDeterminism, IdentifiersContainingRandAreNotFlagged)
{
    // Substrings must not match: operand, random-looking member names.
    auto rules = rulesHit(
        "src/cache/x.cc",
        "int operand = 3;\nint myrand(int brand) { return brand; }\n");
    EXPECT_TRUE(rules.empty());
}

TEST(CosimLintDeterminism, WallClockFlaggedInSimCode)
{
    EXPECT_TRUE(hasRule(rulesHit("src/core/x.cc",
                                 "long t = time(nullptr);\n"),
                        "no-time"));
    EXPECT_TRUE(hasRule(rulesHit("src/softsdv/x.cc",
                                 "gettimeofday(&tv, nullptr);\n"),
                        "no-time"));
    EXPECT_TRUE(hasRule(
        rulesHit("src/workloads/x.cc",
                 "auto n = std::chrono::system_clock::now();\n"),
        "no-system-clock"));
    // steady_clock is the sanctioned monotonic clock.
    EXPECT_TRUE(
        rulesHit("src/workloads/x.cc",
                 "auto n = std::chrono::steady_clock::now();\n")
            .empty());
}

TEST(CosimLintDeterminism, RandomDeviceFlagged)
{
    EXPECT_TRUE(hasRule(rulesHit("src/prefetch/x.cc",
                                 "std::random_device rd;\n"),
                        "no-random-device"));
}

TEST(CosimLintDeterminism, UnorderedIterationFlagged)
{
    const std::string code =
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> table;\n"
        "int sum() {\n"
        "    int s = 0;\n"
        "    for (const auto& kv : table)\n"
        "        s += kv.second;\n"
        "    return s;\n"
        "}\n";
    auto findings = lint("src/cache/x.cc", code);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-iteration");
    EXPECT_EQ(findings[0].line, 5);
}

TEST(CosimLintDeterminism, OrderedIterationNotFlagged)
{
    const std::string code =
        "#include <map>\n"
        "std::map<int, int> table;\n"
        "int sum() {\n"
        "    int s = 0;\n"
        "    for (const auto& kv : table)\n"
        "        s += kv.second;\n"
        "    return s;\n"
        "}\n";
    EXPECT_TRUE(lint("src/cache/x.cc", code).empty());
}

TEST(CosimLintDeterminism, CommentsStringsAndIncludesExempt)
{
    // The tokens appear only in prose, literals, or #include lines;
    // none of them can perturb simulation behaviour.
    const std::string code =
        "#include <ctime>\n"
        "// rand() would break replay here\n"
        "/* time(nullptr) too */\n"
        "const char* kMsg = \"called rand()\";\n";
    EXPECT_TRUE(lint("src/cache/x.cc", code).empty());
}

TEST(CosimLintDeterminism, NotAppliedOutsideSimDirs)
{
    // tests/ and src/harness/ may use wall-clock time freely.
    EXPECT_TRUE(rulesHit("tests/x.cc", "long t = time(nullptr);\n")
                    .empty());
    EXPECT_TRUE(
        rulesHit("src/harness/x.cc", "long t = time(nullptr);\n")
            .empty());
}

// ---------------------------------------------------------------------
// Library hygiene rules.
// ---------------------------------------------------------------------

TEST(CosimLintHygiene, RawNewDeleteFlaggedInLibraryCode)
{
    EXPECT_TRUE(hasRule(rulesHit("src/obs/x.cc",
                                 "int* p = new int(3);\n"),
                        "no-raw-new"));
    EXPECT_TRUE(hasRule(rulesHit("src/obs/x.cc", "delete ptr;\n"),
                        "no-raw-delete"));
}

TEST(CosimLintHygiene, DeletedFunctionsAreNotRawDelete)
{
    EXPECT_TRUE(
        rulesHit("src/obs/x.cc",
                 "struct S { S(const S&) = delete; };\n")
            .empty());
}

TEST(CosimLintHygiene, PrintfFlaggedInLibraryButNotHarness)
{
    const std::string code = "void f() { printf(\"x\"); }\n";
    EXPECT_TRUE(hasRule(rulesHit("src/base/x.cc", code), "no-printf"));
    EXPECT_TRUE(rulesHit("src/harness/x.cc", code).empty());
    EXPECT_TRUE(rulesHit("tools/cosim_lint/x.cc", code).empty());
}

TEST(CosimLintHygiene, SnprintfIsDeterministicFormattingNotOutput)
{
    EXPECT_TRUE(
        rulesHit("src/base/x.cc",
                 "void f(char* b) { snprintf(b, 8, \"x\"); }\n")
            .empty());
}

TEST(CosimLintHygiene, IncludeOfNewHeaderIsNotRawNew)
{
    EXPECT_TRUE(rulesHit("src/base/x.cc", "#include <new>\n").empty());
}

TEST(CosimLintHygiene, RawOfstreamFlaggedOutsideBase)
{
    const std::string code =
        "void f() { std::ofstream out(\"x.csv\"); }\n";
    EXPECT_TRUE(hasRule(rulesHit("src/obs/x.cc", code),
                        "no-raw-ofstream"));
    EXPECT_TRUE(hasRule(rulesHit("src/trace/x.cc", code),
                        "no-raw-ofstream"));
    // base/ holds AtomicFile itself; non-src trees are CLI/test code.
    EXPECT_TRUE(rulesHit("src/base/x.cc", code).empty());
    EXPECT_TRUE(rulesHit("tools/cosim_lint/x.cc", code).empty());
    EXPECT_TRUE(rulesHit("tests/x.cc", code).empty());
}

TEST(CosimLintHygiene, OfstreamInCommentsAndIncludesNotFlagged)
{
    EXPECT_TRUE(rulesHit("src/obs/x.cc",
                         "#include <fstream>\n"
                         "// the old std::ofstream path is gone\n"
                         "int myofstream = 0;\n")
                    .empty());
}

// ---------------------------------------------------------------------
// FSB delivery discipline (src/softsdv/ only).
// ---------------------------------------------------------------------

TEST(CosimLintFsbIssue, DirectIssueFlaggedInSoftsdv)
{
    const std::string code = "void f() { fsb_->issue(txn); }\n";
    EXPECT_TRUE(hasRule(rulesHit("src/softsdv/cpu_model.cc", code),
                        "fsb-direct-issue"));
    EXPECT_TRUE(hasRule(rulesHit("src/softsdv/x.cc",
                                 "void g(FrontSideBus* fsb) { "
                                 "fsb->issue(t); }\n"),
                        "fsb-direct-issue"));
}

TEST(CosimLintFsbIssue, OtherTreesAndRecorderCallsAreFine)
{
    // The rule is softsdv/'s delivery discipline, not a repo-wide ban:
    // the bus's own code, tests and the harness issue directly.
    const std::string code = "void f() { fsb_->issue(txn); }\n";
    EXPECT_FALSE(hasRule(rulesHit("src/mem/fsb.cc", code),
                         "fsb-direct-issue"));
    EXPECT_FALSE(hasRule(rulesHit("tests/x.cc", code),
                         "fsb-direct-issue"));
    // Recording into the slot's sink is the sanctioned path.
    EXPECT_FALSE(hasRule(rulesHit("src/softsdv/x.cc",
                                  "void f() { sink_->issue(txn); }\n"),
                         "fsb-direct-issue"));
}

TEST(CosimLintFsbIssue, MergePathAllowSuppresses)
{
    EXPECT_FALSE(hasRule(
        rulesHit("src/softsdv/dex_scheduler.cc",
                 "// cosim-lint: allow(fsb-direct-issue)\n"
                 "void merge() { fsb_->issue(txn); }\n"),
        "fsb-direct-issue"));
}

// ---------------------------------------------------------------------
// Sampled-simulation rules (plan writers, interval selection).
// ---------------------------------------------------------------------

TEST(CosimLintSampledPlan, RawIoFlaggedInPlanWriters)
{
    // A file that names the plan schema is a plan writer; its file I/O
    // must go through AtomicFile.
    EXPECT_TRUE(hasRule(
        rulesHit("src/trace/x.cc",
                 "const char* kSchema = \"cosim-plan/1\";\n"
                 "void save() { std::ofstream out(path_); }\n"),
        "plan-atomic-write"));
    EXPECT_TRUE(hasRule(
        rulesHit("src/harness/x.cc",
                 "const char* kSchema = \"cosim-plan/1\";\n"
                 "void save() { std::FILE* f = std::fopen(p, \"w\"); }\n"),
        "plan-atomic-write"));
}

TEST(CosimLintSampledPlan, FilesOutsideThePlanBusinessAreFine)
{
    // ofstream without the schema mention is no-raw-ofstream's
    // business, not this rule's.
    EXPECT_FALSE(hasRule(
        rulesHit("src/trace/x.cc",
                 "void save() { std::ofstream out(path_); }\n"),
        "plan-atomic-write"));
    // Non-src trees (tests write fixture plans however they like).
    EXPECT_FALSE(hasRule(
        rulesHit("tests/x.cc",
                 "const char* kSchema = \"cosim-plan/1\";\n"
                 "void save() { std::ofstream out(path_); }\n"),
        "plan-atomic-write"));
}

TEST(CosimLintIntervalWallclock, HostClockFlaggedInSelectionCode)
{
    // steady_clock passes the determinism group but still breaks plan
    // reproducibility inside interval-selection code.
    EXPECT_TRUE(hasRule(
        rulesHit("src/trace/x.cc",
                 "void pick(SamplingPlan& plan) {\n"
                 "    auto t0 = std::chrono::steady_clock::now();\n"
                 "}\n"),
        "interval-wallclock"));
    EXPECT_TRUE(hasRule(
        rulesHit("src/trace/x.cc",
                 "void f(const PlanInterval& iv) { time(nullptr); }\n"),
        "interval-wallclock"));
}

TEST(CosimLintIntervalWallclock, TimingOutsideSelectionCodeIsFine)
{
    // trace/ files with no interval selection time their own passes
    // (fsb_replay.cc, fsb_capture.cc).
    EXPECT_FALSE(hasRule(
        rulesHit("src/trace/x.cc",
                 "auto t0 = std::chrono::steady_clock::now();\n"),
        "interval-wallclock"));
    // core/cosim.cc times the sampled pass around the selection code;
    // the rule is scoped to src/trace/.
    EXPECT_FALSE(hasRule(
        rulesHit("src/core/x.cc",
                 "void f(const SamplingPlan& p) {\n"
                 "    auto t0 = std::chrono::steady_clock::now();\n"
                 "}\n"),
        "interval-wallclock"));
}

// ---------------------------------------------------------------------
// Metric-name rule (obs::metrics registrations).
// ---------------------------------------------------------------------

TEST(CosimLintMetricName, WellFormedRegistrationsPass)
{
    EXPECT_TRUE(
        rulesHit("src/mem/x.cc",
                 "static const obs::metrics::Counter c =\n"
                 "    obs::metrics::counter(\"fsb.batch_txns\",\n"
                 "                          \"txns per batch\");\n"
                 "static const obs::metrics::Histogram h =\n"
                 "    obs::metrics::histogram(\n"
                 "        \"mem.miss_latency_cycles\", \"miss lat\");\n")
            .empty());
}

TEST(CosimLintMetricName, MalformedNamesFlagged)
{
    for (const char* bad :
         {"Bad.Name", "1starts.with.digit", "has-dash", "_lead"}) {
        auto findings =
            lint("src/core/x.cc",
                 std::string("auto c = obs::metrics::counter(\"") + bad +
                     "\", \"help\");\n");
        ASSERT_EQ(findings.size(), 1u) << bad;
        EXPECT_EQ(findings[0].rule, "metric-name") << bad;
        EXPECT_NE(findings[0].message.find("[a-z][a-z0-9_.]*"),
                  std::string::npos);
    }
}

TEST(CosimLintMetricName, NameOnTheLineAfterTheCallIsStillChecked)
{
    // Registration sites wrap: the literal often lands on the line
    // after counter(/histogram(. The finding points at the literal.
    auto findings = lint("src/harness/x.cc",
                         "auto h = obs::metrics::histogram(\n"
                         "    \"Sweep.Cell_Wall_Ms\", \"wall ms\");\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "metric-name");
    EXPECT_EQ(findings[0].line, 2);
}

TEST(CosimLintMetricName, DuplicateRegistrationInOneFileFlagged)
{
    auto findings =
        lint("src/mem/x.cc",
             "auto a = obs::metrics::counter(\"bus.reads\", \"r\");\n"
             "auto b = obs::metrics::counter(\"bus.reads\", \"r\");\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "metric-name");
    EXPECT_EQ(findings[0].line, 2);
    EXPECT_NE(findings[0].message.find("more than once"),
              std::string::npos);
}

TEST(CosimLintMetricName, ComputedNamesAndDeclarationsIgnored)
{
    // Non-literal first args can't be checked statically; declarations
    // of the registration API itself have a type, not a literal.
    EXPECT_TRUE(
        rulesHit("src/obs/x.hh",
                 "#ifndef COSIM_OBS_X_HH\n"
                 "#define COSIM_OBS_X_HH\n"
                 "Counter counter(const std::string& name,\n"
                 "                const std::string& help);\n"
                 "#endif // COSIM_OBS_X_HH\n")
            .empty());
    EXPECT_TRUE(rulesHit("src/core/x.cc",
                         "auto c = obs::metrics::counter(name(), h);\n")
                    .empty());
}

TEST(CosimLintMetricName, OnlySrcTreesAreChecked)
{
    // Tests register deliberately bad names in death tests.
    EXPECT_TRUE(
        rulesHit("tests/test_metrics.cc",
                 "auto c = obs::metrics::counter(\"Bad.Name\", \"\");\n")
            .empty());
}

TEST(CosimLintMetricName, AllowSuppresses)
{
    EXPECT_TRUE(
        rulesHit("src/core/x.cc",
                 "// cosim-lint: allow(metric-name)\n"
                 "auto c = obs::metrics::counter(\"Legacy.Name\", "
                 "\"h\");\n")
            .empty());
}

// ---------------------------------------------------------------------
// Mechanical rules.
// ---------------------------------------------------------------------

TEST(CosimLintMechanical, HeaderGuardMustBeCanonical)
{
    const std::string bad = "#ifndef WRONG_HH\n#define WRONG_HH\n"
                            "#endif // WRONG_HH\n";
    auto findings = lint("src/obs/widget.hh", bad);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "header-guard");

    const std::string good =
        "#ifndef COSIM_OBS_WIDGET_HH\n#define COSIM_OBS_WIDGET_HH\n"
        "#endif // COSIM_OBS_WIDGET_HH\n";
    EXPECT_TRUE(lint("src/obs/widget.hh", good).empty());
}

TEST(CosimLintMechanical, CanonicalGuardDropsSrcKeepsOtherTrees)
{
    EXPECT_EQ(canonicalGuard("src/obs/json.hh"), "COSIM_OBS_JSON_HH");
    EXPECT_EQ(canonicalGuard("tests/test_util.hh"),
              "COSIM_TESTS_TEST_UTIL_HH");
    EXPECT_EQ(canonicalGuard("tools/cosim_lint/linter.hh"),
              "COSIM_TOOLS_COSIM_LINT_LINTER_HH");
}

TEST(CosimLintMechanical, ProjectIncludesUseQuotes)
{
    EXPECT_TRUE(hasRule(rulesHit("src/mem/x.cc",
                                 "#include <cache/cache.hh>\n"),
                        "include-hygiene"));
    EXPECT_TRUE(hasRule(rulesHit("src/mem/x.cc",
                                 "#include \"../cache/cache.hh\"\n"),
                        "include-hygiene"));
    // System and project-quoted includes are fine.
    EXPECT_TRUE(rulesHit("src/mem/x.cc",
                         "#include <vector>\n"
                         "#include \"cache/cache.hh\"\n")
                    .empty());
}

TEST(CosimLintMechanical, TrailingWhitespaceFlagged)
{
    auto findings = lint("src/mem/x.cc", "int x;  \nint y;\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "trailing-whitespace");
    EXPECT_EQ(findings[0].line, 1);
}

// ---------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------

TEST(CosimLintSuppression, SameLineAllow)
{
    EXPECT_TRUE(
        lint("src/cache/x.cc",
             "long t = time(nullptr); // cosim-lint: allow(no-time)\n")
            .empty());
}

TEST(CosimLintSuppression, PrecedingLineAllow)
{
    EXPECT_TRUE(lint("src/cache/x.cc",
                     "// cosim-lint: allow(no-time)\n"
                     "long t = time(nullptr);\n")
                    .empty());
}

TEST(CosimLintSuppression, AllowDoesNotLeakToLaterLines)
{
    auto findings = lint("src/cache/x.cc",
                         "// cosim-lint: allow(no-time)\n"
                         "long t = time(nullptr);\n"
                         "long u = time(nullptr);\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 3);
}

TEST(CosimLintSuppression, AllowIsRuleSpecific)
{
    // allow(no-rand) must not silence the no-time finding.
    auto rules = rulesHit(
        "src/cache/x.cc",
        "long t = time(nullptr); // cosim-lint: allow(no-rand)\n");
    EXPECT_TRUE(hasRule(rules, "no-time"));
}

TEST(CosimLintSuppression, AllowFileCoversWholeFile)
{
    EXPECT_TRUE(lint("src/cache/x.cc",
                     "// cosim-lint: allow-file(no-time)\n"
                     "long t = time(nullptr);\n"
                     "long u = time(nullptr);\n")
                    .empty());
}

// ---------------------------------------------------------------------
// Rule-set selection.
// ---------------------------------------------------------------------

TEST(CosimLintRuleSets, SimulationDirsGetDeterminism)
{
    for (const char* dir : {"softsdv", "dragonhead", "cache", "mem",
                            "trace", "core", "workloads", "prefetch"}) {
        RuleSet rules =
            ruleSetFor(std::string("src/") + dir + "/x.cc");
        EXPECT_TRUE(rules.determinism) << dir;
        EXPECT_TRUE(rules.noRawNewDelete) << dir;
    }
}

TEST(CosimLintRuleSets, BaseAndObsAreLibraryNotSimulation)
{
    // base/ and obs/ host the timing/profiling utilities, so wall-clock
    // reads are legitimate there; library hygiene still applies.
    for (const char* path : {"src/base/x.cc", "src/obs/x.cc"}) {
        RuleSet rules = ruleSetFor(path);
        EXPECT_FALSE(rules.determinism) << path;
        EXPECT_TRUE(rules.noRawNewDelete) << path;
        EXPECT_TRUE(rules.noPrintf) << path;
    }
    EXPECT_FALSE(ruleSetFor("src/base/x.cc").noRawOfstream);
    EXPECT_TRUE(ruleSetFor("src/obs/x.cc").noRawOfstream);
}

TEST(CosimLintRuleSets, HarnessAndNonSrcTreesAreMechanicalOnly)
{
    for (const char* path :
         {"src/harness/x.cc", "tests/x.cc", "bench/x.cc",
          "examples/x.cc", "tools/cosim_lint/x.cc"}) {
        RuleSet rules = ruleSetFor(path);
        EXPECT_FALSE(rules.determinism) << path;
        EXPECT_FALSE(rules.noPrintf) << path;
        EXPECT_TRUE(rules.headerGuard) << path;
        EXPECT_TRUE(rules.trailingWhitespace) << path;
    }
}

TEST(CosimLintRuleSets, AllRulesListsEveryRule)
{
    auto all = allRules();
    for (const char* rule :
         {"no-rand", "no-time", "no-system-clock", "no-random-device",
          "unordered-iteration", "no-raw-new", "no-raw-delete",
          "no-printf", "no-raw-ofstream", "metric-name",
          "plan-atomic-write", "interval-wallclock",
          "header-guard", "include-hygiene", "trailing-whitespace"}) {
        EXPECT_TRUE(hasRule(all, rule)) << rule;
    }
}

// ---------------------------------------------------------------------
// Fixing.
// ---------------------------------------------------------------------

TEST(CosimLintFix, RewritesGuardIncludesAndWhitespace)
{
    const std::string before = "#ifndef WRONG_HH\n"
                               "#define WRONG_HH\n"
                               "#include <cache/cache.hh>\n"
                               "int x;  \n"
                               "#endif // WRONG_HH\n";
    const RuleSet rules = ruleSetFor("src/cache/probe.hh");
    const std::string after =
        fixContent("src/cache/probe.hh", before, rules);
    EXPECT_EQ(after, "#ifndef COSIM_CACHE_PROBE_HH\n"
                     "#define COSIM_CACHE_PROBE_HH\n"
                     "#include \"cache/cache.hh\"\n"
                     "int x;\n"
                     "#endif // COSIM_CACHE_PROBE_HH\n");
    EXPECT_TRUE(lint("src/cache/probe.hh", after).empty());
}

TEST(CosimLintFix, IsIdempotent)
{
    const std::string before = "#ifndef WRONG_HH\n"
                               "#define WRONG_HH\n"
                               "#include <mem/dram.hh>\n"
                               "#endif\n";
    const RuleSet rules = ruleSetFor("src/mem/probe.hh");
    const std::string once =
        fixContent("src/mem/probe.hh", before, rules);
    EXPECT_EQ(fixContent("src/mem/probe.hh", once, rules), once);
}

TEST(CosimLintFix, DoesNotTouchNonMechanicalFindings)
{
    const std::string before = "long t = time(nullptr);\n";
    const RuleSet rules = ruleSetFor("src/cache/x.cc");
    EXPECT_EQ(fixContent("src/cache/x.cc", before, rules), before);
}

TEST(CosimLintFindings, FormatIsFileLineRuleMessage)
{
    auto findings = lint("src/cache/x.cc", "int v = rand();\n");
    ASSERT_EQ(findings.size(), 1u);
    const std::string text = findings[0].format();
    EXPECT_EQ(text.rfind("src/cache/x.cc:1: no-rand: ", 0), 0u) << text;
}

} // namespace
} // namespace cosim_lint
