/**
 * @file
 * Tests for the live sweep telemetry (obs/progress.hh) and its
 * integration with the sweep runner's --cell-timeout watchdog:
 *
 *  - CellWatch gap logic with synthetic timestamps (no sleeping)
 *  - HeartbeatSlot accumulation
 *  - ProgressStream / SweepProgress JSONL output: every line is one
 *    well-formed JSON object with densely increasing seq
 *  - the watchdog semantics the heartbeat buys: a slow-but-beating
 *    cell is never killed, a cell that goes silent past the budget is,
 *    and a killed cell leaves postmortem.json naming the injected site
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/fault.hh"
#include "harness/sweep_runner.hh"
#include "obs/json.hh"
#include "obs/progress.hh"

namespace cosim {
namespace {

using obs::json::Value;

bool
fileExists(const std::string& path)
{
    std::ifstream in(path);
    return in.good();
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return body;
}

/** A scratch directory under the gtest temp root (shared per name). */
std::string
makeOutDir(const std::string& name)
{
    std::string dir = testing::TempDir() + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

/**
 * Parse @p path as JSONL: every line must be one well-formed JSON
 * object carrying "seq", "t_us", and "event", with seq densely
 * increasing from 0 -- the invariant `cosim_inspect progress` checks
 * in CI.
 */
std::vector<Value>
parseProgressJsonl(const std::string& path)
{
    std::vector<Value> events;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string line;
    while (std::getline(in, line)) {
        Value v;
        std::string error;
        EXPECT_TRUE(obs::json::parse(line, v, &error))
            << error << ": " << line;
        const Value* seq = v.find("seq");
        EXPECT_NE(seq, nullptr) << line;
        if (seq != nullptr) {
            EXPECT_DOUBLE_EQ(seq->num,
                             static_cast<double>(events.size()))
                << "seq must be dense: " << line;
        }
        EXPECT_NE(v.find("t_us"), nullptr) << line;
        EXPECT_NE(v.find("event"), nullptr) << line;
        events.push_back(std::move(v));
    }
    return events;
}

/** Those events whose "event" field equals @p name, in file order. */
std::vector<const Value*>
eventsNamed(const std::vector<Value>& events, const std::string& name)
{
    std::vector<const Value*> out;
    for (const Value& v : events) {
        const Value* e = v.find("event");
        if (e != nullptr && e->str == name)
            out.push_back(&v);
    }
    return out;
}

// ------------------------------------------------------------ CellWatch

TEST(CellWatch, TracksTheLargestGapIncludingTheOpenOne)
{
    obs::CellWatch w;
    w.beginAttempt(1000);
    EXPECT_EQ(w.beats(), 0u);
    w.beat(1500); // closes a 500us gap
    w.beat(1600); // closes a 100us gap
    EXPECT_EQ(w.beats(), 2u);
    // The largest closed gap dominates while the open one is smaller...
    EXPECT_EQ(w.maxGapUs(1700), 500u);
    // ...and the open gap (last beat to now) takes over once larger.
    EXPECT_EQ(w.maxGapUs(2500), 900u);
}

TEST(CellWatch, SteadyBeatsKeepTheGapSmallNoMatterTheTotal)
{
    // The property --cell-timeout relies on: a cell can run forever,
    // as long as it keeps beating its max gap stays one period.
    obs::CellWatch w;
    w.beginAttempt(0);
    std::uint64_t t = 0;
    for (int i = 0; i < 10000; ++i) {
        t += 1000;
        w.beat(t);
    }
    EXPECT_EQ(t, 10'000'000u); // ten simulated "seconds" of wall
    EXPECT_EQ(w.maxGapUs(t), 1000u);
}

TEST(CellWatch, SilenceShowsUpAsTheOpenGap)
{
    obs::CellWatch w;
    w.beginAttempt(0);
    w.beat(1000);
    // Wedged: no beats for 5ms. The watchdog sees it without waiting
    // for the cell to return.
    EXPECT_EQ(w.maxGapUs(6000), 5000u);
}

TEST(CellWatch, BeginAttemptResetsForARetry)
{
    obs::CellWatch w;
    w.beginAttempt(0);
    w.beat(9000); // a huge gap from the failed first attempt
    w.beginAttempt(10000);
    EXPECT_EQ(w.beats(), 0u);
    EXPECT_EQ(w.maxGapUs(10100), 100u);
}

// -------------------------------------------------------- HeartbeatSlot

TEST(HeartbeatSlot, AccumulatesQuantaInstsAndSimTime)
{
    obs::HeartbeatSlot slot;
    slot.beat(2000, 1'000'000, 100);
    slot.beat(2000, 1'000'000, 200);
    slot.beat(1000, 500'000, 300);
    EXPECT_EQ(slot.quanta(), 3u);
    EXPECT_EQ(slot.insts(), 5000u);
    EXPECT_EQ(slot.simNs(), 2'500'000u);
    EXPECT_EQ(slot.watch().beats(), 3u);

    slot.noteQueueDepth(3);
    slot.noteQueueDepth(7);
    slot.noteQueueDepth(5);
    EXPECT_EQ(slot.queuePeak(), 7u); // a running maximum, not the last
}

// ------------------------------------------------------- ProgressStream

TEST(ProgressStream, EmitsWellFormedDenselyNumberedJsonl)
{
    const std::string path =
        testing::TempDir() + "progress_stream_unit.jsonl";
    std::remove(path.c_str());
    {
        obs::ProgressStream stream(path);
        stream.emit("sweep_start", "\"figure\":\"Fig\",\"cells\":2");
        stream.emit("cell_start", "\"cell\":\"PLSA\",\"attempt\":1");
        stream.emit("cell_finish",
                    "\"cell\":\"PLSA\",\"status\":\"ok\","
                    "\"wall_s\":0.25");
    }
    std::vector<Value> events = parseProgressJsonl(path);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].find("event")->str, "sweep_start");
    EXPECT_EQ(events[0].find("figure")->str, "Fig");
    EXPECT_EQ(events[2].find("status")->str, "ok");
    // Timestamps ride the shared host clock: non-decreasing.
    EXPECT_LE(events[0].find("t_us")->num, events[2].find("t_us")->num);
    std::remove(path.c_str());
}

TEST(SweepProgress, LifecycleEventsReachTheFileInOrder)
{
    const std::string path =
        testing::TempDir() + "sweep_progress_unit.jsonl";
    std::remove(path.c_str());
    {
        obs::SweepProgress::Options popts;
        popts.file = path;
        obs::SweepProgress progress(popts);
        ASSERT_TRUE(progress.active());
        std::size_t idx = progress.addCell("PLSA");
        progress.event("sweep_start", "\"figure\":\"F\",\"cells\":1");
        progress.start();
        progress.cellStarted(idx, 1);
        progress.slot(idx)->beat(2000, 1'000'000);
        progress.cellFault(idx, "cell.throw", 1);
        progress.cellRetried(idx, 2, "injected");
        progress.cellStarted(idx, 2);
        progress.cellFinished(idx, true, 0.125, "");
        progress.event("sweep_finish", "\"ok\":1,\"failed\":0");
        progress.stop();
    }
    std::vector<Value> events = parseProgressJsonl(path);
    // Heartbeat samples may interleave; the lifecycle events must
    // appear exactly once each and in lifecycle order.
    std::vector<std::string> lifecycle;
    for (const Value& v : events) {
        const std::string& name = v.find("event")->str;
        if (name != "heartbeat")
            lifecycle.push_back(name);
    }
    EXPECT_EQ(lifecycle,
              (std::vector<std::string>{"sweep_start", "cell_start",
                                        "fault", "cell_retry",
                                        "cell_start", "cell_finish",
                                        "sweep_finish"}));
    const Value* fault = eventsNamed(events, "fault")[0];
    EXPECT_EQ(fault->find("site")->str, "cell.throw");
    EXPECT_EQ(fault->find("cell")->str, "PLSA");
    const Value* finish = eventsNamed(events, "cell_finish")[0];
    EXPECT_EQ(finish->find("status")->str, "ok");
    std::remove(path.c_str());
}

TEST(SweepProgress, CrashSafeEventsCarryPidReasonAndCell)
{
    const std::string path =
        testing::TempDir() + "sweep_progress_crash_unit.jsonl";
    std::remove(path.c_str());
    {
        obs::SweepProgress::Options popts;
        popts.file = path;
        obs::SweepProgress progress(popts);
        std::size_t a = progress.addCell("PLSA");
        std::size_t b = progress.addCell("SNP");
        progress.start();
        progress.cellResumeSkipped(a);
        progress.cellStarted(b, 1);
        progress.cellSpawned(b, 4242);
        progress.cellKilled(b, 4242, "killed by SIGSEGV");
        progress.cellFinished(b, false, 0.25, "crashed");
        progress.stop();
    }
    std::vector<Value> events = parseProgressJsonl(path);
    const Value* skip = eventsNamed(events, "resume_skip")[0];
    EXPECT_EQ(skip->find("cell")->str, "PLSA");
    const Value* spawn = eventsNamed(events, "cell_spawn")[0];
    EXPECT_EQ(spawn->find("cell")->str, "SNP");
    EXPECT_EQ(spawn->find("pid")->num, 4242.0);
    const Value* kill = eventsNamed(events, "cell_kill")[0];
    EXPECT_EQ(kill->find("pid")->num, 4242.0);
    EXPECT_EQ(kill->find("reason")->str, "killed by SIGSEGV");
    // The stream stays densely numbered with the new vocabulary mixed
    // in (parseProgressJsonl asserts seq density on load).
    std::remove(path.c_str());
}

TEST(SweepProgress, InactiveWithoutTtyOrFile)
{
    obs::SweepProgress::Options popts;
    obs::SweepProgress progress(popts);
    EXPECT_FALSE(progress.active());
    // start()/stop() are no-ops rather than errors.
    progress.start();
    progress.stop();
}

// --------------------------------------- watchdog integration (sweeps)

BenchOptions
sweepOpts()
{
    BenchOptions opts;
    opts.scale = 0.02;
    opts.workloads = {"PLSA"};
    return opts;
}

TEST(ProgressIntegration, HeartbeatingCellSurvivesATimeoutBelowItsWall)
{
    // Baseline without telemetry, for the bit-identical check.
    FigureData baseline = SweepRunner(sweepOpts())
                              .runCacheSizeFigure(
                                  "FigBeatBase",
                                  presets::cmpPlatform("tiny", 2));

    const std::string out_dir = makeOutDir("progress_beat_out");
    BenchOptions opts = sweepOpts();
    opts.outDir = out_dir;
    opts.progressFile = out_dir + "/progress.jsonl";
    opts.keepGoing = true;
    // Far below the cell's total wall time in practice, but the DEX
    // scheduler beats every quantum, so the watchdog measures silence,
    // not duration, and the cell must survive.
    opts.cellTimeout = 0.05;
    FigureData fig = SweepRunner(opts).runCacheSizeFigure(
        "FigBeat", presets::cmpPlatform("tiny", 2));

    EXPECT_EQ(fig.status("PLSA"), "ok");
    // Telemetry on, watchdog armed: results stay bit-identical.
    EXPECT_EQ(fig.series("PLSA"), baseline.series("PLSA"));
    // No failure -> no postmortem.
    EXPECT_FALSE(fileExists(out_dir + "/postmortem.json"));

    std::vector<Value> events =
        parseProgressJsonl(opts.progressFile);
    ASSERT_EQ(eventsNamed(events, "sweep_start").size(), 1u);
    ASSERT_EQ(eventsNamed(events, "cell_finish").size(), 1u);
    EXPECT_EQ(eventsNamed(events, "cell_finish")[0]->find("status")->str,
              "ok");
    ASSERT_EQ(eventsNamed(events, "sweep_finish").size(), 1u);
    EXPECT_DOUBLE_EQ(
        eventsNamed(events, "sweep_finish")[0]->find("ok")->num, 1.0);
}

TEST(ProgressIntegration, SilentCellIsKilledAndLeavesAPostmortem)
{
    const std::string out_dir = makeOutDir("progress_hang_out");
    std::remove((out_dir + "/postmortem.json").c_str());

    BenchOptions opts = sweepOpts();
    opts.outDir = out_dir;
    opts.progressFile = out_dir + "/progress.jsonl";
    opts.keepGoing = true;
    opts.cellTimeout = 0.05;
    // cell.hang naps 1.5x the budget before the workload starts
    // beating: the gap watchdog must catch the silence even though the
    // cell beats normally afterwards.
    ScopedFaultPlan plan("cell.hang:nth=1");
    FigureData fig = SweepRunner(opts).runCacheSizeFigure(
        "FigBeatHang", presets::cmpPlatform("tiny", 2));

    EXPECT_EQ(fig.status("PLSA"), "failed");
    EXPECT_TRUE(fig.series("PLSA").empty());

    // The corpse: postmortem.json names the failing cell and, via the
    // fault injector's report, the site that was injected.
    const std::string pm_path = out_dir + "/postmortem.json";
    ASSERT_TRUE(fileExists(pm_path));
    Value pm;
    std::string error;
    ASSERT_TRUE(obs::json::parse(readFile(pm_path), pm, &error))
        << error;
    EXPECT_EQ(pm.find("schema")->str, "cosim-postmortem/1");
    EXPECT_EQ(pm.find("reason")->str, "cell_failed");
    EXPECT_EQ(pm.find("cell")->str, "PLSA");
    EXPECT_NE(pm.find("error")->str.find("cell-timeout"),
              std::string::npos)
        << pm.find("error")->str;
    const Value* sites = pm.find("fault_sites");
    ASSERT_NE(sites, nullptr);
    bool named_hang = false;
    for (const Value& site : sites->arr) {
        if (site.find("site")->str == "cell.hang" &&
            site.find("fired")->num >= 1.0)
            named_hang = true;
    }
    EXPECT_TRUE(named_hang) << readFile(pm_path);

    // The stream records the failure too.
    std::vector<Value> events =
        parseProgressJsonl(opts.progressFile);
    ASSERT_EQ(eventsNamed(events, "cell_finish").size(), 1u);
    const Value* finish = eventsNamed(events, "cell_finish")[0];
    EXPECT_EQ(finish->find("status")->str, "failed");
    EXPECT_NE(finish->find("error"), nullptr);
}

TEST(ProgressIntegration, InjectedThrowEmitsAFaultEventNamingTheSite)
{
    const std::string out_dir = makeOutDir("progress_throw_out");
    std::remove((out_dir + "/postmortem.json").c_str());

    BenchOptions opts = sweepOpts();
    opts.outDir = out_dir;
    opts.progressFile = out_dir + "/progress.jsonl";
    opts.keepGoing = true;
    ScopedFaultPlan plan("cell.throw:nth=1");
    FigureData fig = SweepRunner(opts).runCacheSizeFigure(
        "FigThrowEvent", presets::cmpPlatform("tiny", 2));

    EXPECT_EQ(fig.status("PLSA"), "failed");
    std::vector<Value> events =
        parseProgressJsonl(opts.progressFile);
    std::vector<const Value*> faults = eventsNamed(events, "fault");
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0]->find("cell")->str, "PLSA");
    EXPECT_EQ(faults[0]->find("site")->str, "cell.throw");
    EXPECT_DOUBLE_EQ(faults[0]->find("hit")->num, 1.0);

    Value pm;
    ASSERT_TRUE(fileExists(out_dir + "/postmortem.json"));
    ASSERT_TRUE(
        obs::json::parse(readFile(out_dir + "/postmortem.json"), pm));
    EXPECT_EQ(pm.find("cell")->str, "PLSA");
    EXPECT_NE(pm.find("error")->str.find("cell.throw"),
              std::string::npos);
}

} // namespace
} // namespace cosim
