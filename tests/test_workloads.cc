/**
 * @file
 * Tests for the eight data-mining workloads: correctness of the mined
 * results against references, determinism, thread scaling, and the
 * memory-structure properties the figures rely on.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "softsdv/virtual_platform.hh"
#include "workloads/fimi.hh"
#include "workloads/mds.hh"
#include "workloads/plsa.hh"
#include "workloads/rsearch.hh"
#include "workloads/shot.hh"
#include "workloads/snp.hh"
#include "workloads/svm_rfe.hh"
#include "workloads/viewtype.hh"
#include "workloads/workload_factory.hh"

namespace cosim {
namespace {

constexpr double testScale = 0.02;

PlatformParams
testPlatform(unsigned cores)
{
    PlatformParams p;
    p.name = "wl-test";
    p.nCores = cores;
    p.cpu.baseCpi = 1.0;
    p.cpu.caches.l1 = {"l1", 8 * KiB, 64, 4, ReplPolicy::LRU};
    p.cpu.caches.hasL2 = false;
    p.cpu.useDramLatency = false;
    p.cpu.beyondLatency = 50;
    p.cpu.emitFsbTraffic = false;
    p.dex.quantumInsts = 20000;
    return p;
}

RunResult
runWorkload(const std::string& name, unsigned threads,
            double scale = testScale, std::uint64_t seed = 42)
{
    VirtualPlatform vp(testPlatform(threads));
    auto wl = createWorkload(name, scale);
    WorkloadConfig cfg;
    cfg.nThreads = threads;
    cfg.scale = scale;
    cfg.seed = seed;
    return vp.run(*wl, cfg);
}

// ------------------------------------------------------------- factory

TEST(WorkloadFactory, CatalogHasAllEight)
{
    EXPECT_EQ(workloadCatalog().size(), 8u);
    EXPECT_EQ(workloadNames().size(), 8u);
    for (const auto& info : workloadCatalog()) {
        EXPECT_FALSE(info.paperInput.empty());
        EXPECT_FALSE(info.substitution.empty());
        auto wl = createWorkload(info.name, testScale);
        EXPECT_EQ(wl->name(), info.name);
        EXPECT_FALSE(wl->description().empty());
    }
}

TEST(WorkloadFactory, NamesAreCaseInsensitive)
{
    EXPECT_EQ(createWorkload("fimi", testScale)->name(), "FIMI");
    EXPECT_EQ(createWorkload("SVM-RFE", testScale)->name(), "SVM-RFE");
    EXPECT_EQ(createWorkload("svm_rfe", testScale)->name(), "SVM-RFE");
}

// -------------------------------------------------- every workload runs

class AllWorkloads : public ::testing::TestWithParam<std::string>
{};

TEST_P(AllWorkloads, SingleThreadRunsAndVerifies)
{
    RunResult r = runWorkload(GetParam(), 1);
    EXPECT_TRUE(r.verified) << GetParam();
    EXPECT_GT(r.totalInsts, 10000u);
    EXPECT_GT(r.memInsts, 0u);
    EXPECT_GT(r.l1.accesses, 0u);
}

TEST_P(AllWorkloads, FourThreadsRunAndVerify)
{
    RunResult r = runWorkload(GetParam(), 4);
    EXPECT_TRUE(r.verified) << GetParam();
    EXPECT_EQ(r.nThreads, 4u);
}

TEST_P(AllWorkloads, DeterministicAcrossRuns)
{
    RunResult a = runWorkload(GetParam(), 2);
    RunResult b = runWorkload(GetParam(), 2);
    EXPECT_EQ(a.totalInsts, b.totalInsts) << GetParam();
    EXPECT_EQ(a.l1.misses, b.l1.misses) << GetParam();
    EXPECT_EQ(a.maxCoreCycles, b.maxCoreCycles) << GetParam();
}

TEST_P(AllWorkloads, MemoryInstructionShareIsPlausible)
{
    RunResult r = runWorkload(GetParam(), 1);
    // Table 2 reports 42-83%; allow generous slack for scaled inputs.
    EXPECT_GT(r.memInstPercent(), 25.0) << GetParam();
    EXPECT_LT(r.memInstPercent(), 95.0) << GetParam();
    // Reads dominate in every data-mining workload.
    EXPECT_GT(r.loads, r.stores) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AllWorkloads,
    ::testing::Values("SNP", "SVM-RFE", "MDS", "SHOT", "FIMI", "VIEWTYPE",
                      "PLSA", "RSEARCH"),
    [](const ::testing::TestParamInfo<std::string>& info) {
        std::string n = info.param;
        for (char& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ----------------------------------------------------------------- SNP

TEST(SnpWorkload, ChainEdgesScoreHigherThanRandomPairs)
{
    SnpParams p = SnpParams::scaled(testScale);
    SnpWorkload wl(p);
    VirtualPlatform vp(testPlatform(2));
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    vp.run(wl, cfg); // verify() inside run already checks the margin
    double chain = wl.referenceScore(1, 0);
    double random_pair = wl.referenceScore(1, 40);
    EXPECT_GT(chain, 5.0 * (random_pair + 1.0));
}

TEST(SnpWorkload, FootprintMatchesConfiguredMatrix)
{
    SnpParams p = SnpParams::scaled(testScale);
    SnpWorkload wl(p);
    VirtualPlatform vp(testPlatform(1));
    WorkloadConfig cfg;
    cfg.nThreads = 1;
    RunResult r = vp.run(wl, cfg);
    EXPECT_GE(r.footprintBytes, p.genotypeBytes());
}

// ------------------------------------------------------------- SVM-RFE

TEST(SvmRfeWorkload, KeepsInformativeGenes)
{
    SvmRfeParams p = SvmRfeParams::scaled(testScale);
    SvmRfeWorkload wl(p);
    VirtualPlatform vp(testPlatform(4));
    WorkloadConfig cfg;
    cfg.nThreads = 4;
    RunResult r = vp.run(wl, cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(wl.informativeSurvivalRate(), 0.4);
    EXPECT_GT(wl.trainingAccuracy(), 0.75);
}

// ------------------------------------------------------------- RSEARCH

TEST(RsearchWorkload, FindsPlantedHairpins)
{
    RsearchParams p = RsearchParams::scaled(testScale);
    RsearchWorkload wl(p);
    VirtualPlatform vp(testPlatform(2));
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    RunResult r = vp.run(wl, cfg);
    EXPECT_TRUE(r.verified);

    // Every even (hairpin-centred) window must be a hit.
    for (std::size_t w = 0; w < wl.totalWindows(); w += 2) {
        if (wl.windowScore(w) >= 0.0) {
            EXPECT_GE(wl.windowScore(w), p.scoreThreshold) << w;
        }
    }
}

TEST(RsearchWorkload, InstrumentedDpMatchesReference)
{
    RsearchParams p = RsearchParams::scaled(testScale);
    RsearchWorkload wl(p);
    VirtualPlatform vp(testPlatform(1));
    WorkloadConfig cfg;
    cfg.nThreads = 1;
    vp.run(wl, cfg);
    for (std::size_t w = 0; w < 4; ++w) {
        if (wl.windowScore(w) < 0.0)
            continue;
        EXPECT_NEAR(wl.windowScore(w),
                    wl.referenceFoldScore(wl.windowStart(w), p.window),
                    1e-3);
    }
}

// ---------------------------------------------------------------- PLSA

TEST(PlsaWorkload, WavefrontMatchesFullMatrixScore)
{
    PlsaParams p = PlsaParams::scaled(testScale);
    PlsaWorkload wl(p);
    VirtualPlatform vp(testPlatform(4));
    WorkloadConfig cfg;
    cfg.nThreads = 4;
    RunResult r = vp.run(wl, cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(wl.bestScore(), wl.referenceScore());
    EXPECT_GE(wl.bestScore(),
              p.matchScore * static_cast<int>(p.commonLen));
}

TEST(PlsaWorkload, ScoreIndependentOfThreadCount)
{
    PlsaParams p = PlsaParams::scaled(testScale);
    int score1, score4;
    {
        PlsaWorkload wl(p);
        VirtualPlatform vp(testPlatform(1));
        WorkloadConfig cfg;
        cfg.nThreads = 1;
        vp.run(wl, cfg);
        score1 = wl.bestScore();
    }
    {
        PlsaWorkload wl(p);
        VirtualPlatform vp(testPlatform(4));
        WorkloadConfig cfg;
        cfg.nThreads = 4;
        vp.run(wl, cfg);
        score4 = wl.bestScore();
    }
    EXPECT_EQ(score1, score4);
}

// ---------------------------------------------------------------- FIMI

TEST(FimiWorkload, MinedSupportsAreExact)
{
    FimiParams p = FimiParams::scaled(testScale);
    FimiWorkload wl(p);
    VirtualPlatform vp(testPlatform(4));
    WorkloadConfig cfg;
    cfg.nThreads = 4;
    RunResult r = vp.run(wl, cfg);
    EXPECT_TRUE(r.verified);
    ASSERT_FALSE(wl.results().empty());

    // Exhaustive brute-force check of a sample of mined itemsets.
    std::size_t checks = std::min<std::size_t>(20, wl.results().size());
    for (std::size_t i = 0; i < checks; ++i) {
        const FrequentItemset& fs =
            wl.results()[i * 7919 % wl.results().size()];
        EXPECT_EQ(wl.referenceSupport(fs.items, fs.arity), fs.support);
    }
}

TEST(FimiWorkload, TreeSupportsMatchFirstScan)
{
    FimiParams p = FimiParams::scaled(testScale);
    FimiWorkload wl(p);
    VirtualPlatform vp(testPlatform(2));
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    vp.run(wl, cfg);
    EXPECT_GT(wl.tree().nodesUsed(), 100u);
    EXPECT_LT(wl.tree().nodesUsed(), wl.tree().capacity());
}

TEST(FimiWorkload, SameResultsRegardlessOfThreads)
{
    FimiParams p = FimiParams::scaled(testScale);
    auto mine = [&](unsigned threads) {
        FimiWorkload wl(p);
        VirtualPlatform vp(testPlatform(threads));
        WorkloadConfig cfg;
        cfg.nThreads = threads;
        vp.run(wl, cfg);
        std::vector<std::uint64_t> keys;
        for (const auto& fs : wl.results()) {
            std::uint64_t key = fs.arity;
            for (int k = 0; k < fs.arity; ++k)
                key = key * 65536 + fs.items[k];
            keys.push_back(key * 100000 + fs.support);
        }
        std::sort(keys.begin(), keys.end());
        return keys;
    };
    EXPECT_EQ(mine(1), mine(4));
}

// ----------------------------------------------------------------- MDS

TEST(MdsWorkload, RankMatchesReferenceAndSummaryDistinct)
{
    MdsParams p = MdsParams::scaled(testScale);
    MdsWorkload wl(p);
    VirtualPlatform vp(testPlatform(4));
    WorkloadConfig cfg;
    cfg.nThreads = 4;
    RunResult r = vp.run(wl, cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(wl.summary().size(), p.summaryLength);
}

TEST(MdsWorkload, MatrixBytesMatchParams)
{
    MdsParams p = MdsParams::scaled(1.0);
    EXPECT_NEAR(static_cast<double>(p.matrixBytes()),
                300.0 * 1024 * 1024, 16.0 * 1024 * 1024);
}

// ---------------------------------------------------------------- SHOT

TEST(ShotWorkload, DetectsExactlyThePlantedCuts)
{
    ShotParams p = ShotParams::scaled(testScale);
    ShotWorkload wl(p);
    VirtualPlatform vp(testPlatform(2));
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    RunResult r = vp.run(wl, cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(wl.detectedCuts(), wl.expectedCuts());
    EXPECT_FALSE(wl.expectedCuts().empty());
}

TEST(ShotWorkload, WriteShareReflectsDecodeStage)
{
    RunResult r = runWorkload("SHOT", 1);
    // Decode writes whole frames: the store share must be substantial.
    double write_share = static_cast<double>(r.stores) /
                         static_cast<double>(r.memInsts);
    EXPECT_GT(write_share, 0.2);
    EXPECT_LT(write_share, 0.6);
}

// ------------------------------------------------------------ VIEWTYPE

TEST(ViewtypeWorkload, ClassifiesPlantedViews)
{
    ViewtypeParams p = ViewtypeParams::scaled(testScale);
    ViewtypeWorkload wl(p);
    VirtualPlatform vp(testPlatform(4));
    WorkloadConfig cfg;
    cfg.nThreads = 4;
    RunResult r = vp.run(wl, cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_GE(wl.accuracy(), 0.9);
    ASSERT_EQ(wl.classified().size(), p.nKeyframes);
}

TEST(ViewtypeWorkload, AllFourViewTypesAppear)
{
    ViewtypeParams p = ViewtypeParams::scaled(testScale);
    ViewtypeWorkload wl(p);
    VirtualPlatform vp(testPlatform(1));
    WorkloadConfig cfg;
    cfg.nThreads = 1;
    vp.run(wl, cfg);
    bool seen[4] = {false, false, false, false};
    for (auto v : wl.classified())
        seen[static_cast<int>(v)] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

// --------------------------------------- working-set scaling categories

TEST(WorkingSets, ShotFootprintScalesWithThreads)
{
    RunResult r2 = runWorkload("SHOT", 2);
    RunResult r8 = runWorkload("SHOT", 8);
    EXPECT_GT(static_cast<double>(r8.footprintBytes),
              3.0 * static_cast<double>(r2.footprintBytes));
}

TEST(WorkingSets, SnpFootprintInsensitiveToThreads)
{
    RunResult r2 = runWorkload("SNP", 2);
    RunResult r8 = runWorkload("SNP", 8);
    EXPECT_NEAR(static_cast<double>(r8.footprintBytes),
                static_cast<double>(r2.footprintBytes),
                0.05 * static_cast<double>(r2.footprintBytes));
}

TEST(WorkingSets, FimiSharedTreeDominatesPrivateData)
{
    FimiParams p = FimiParams::scaled(testScale);
    FimiWorkload wl(p);
    VirtualPlatform vp(testPlatform(8));
    WorkloadConfig cfg;
    cfg.nThreads = 8;
    vp.run(wl, cfg);
    std::uint64_t tree_bytes = wl.tree().usedBytes();
    std::uint64_t private_bytes =
        8ull * p.condTreeCapacity * sizeof(FpNode);
    // Shared tree is the larger structure, but private data is not
    // negligible -- the 20-30% miss growth of Figures 5-6.
    EXPECT_GT(tree_bytes, 0u);
    EXPECT_GT(private_bytes, tree_bytes / 20);
}

} // namespace
} // namespace cosim
