/**
 * @file
 * FSB stream format tests: encode/decode roundtrips over adversarial
 * transaction sequences, header patching, digest stability, the digest
 * manifest, and -- most importantly -- malformed-stream handling. A
 * truncated, tampered or wrong-format file must produce a clear error
 * through the reader API, never undefined behaviour or a crash.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "mem/access.hh"
#include "trace/fsb_capture.hh"

namespace cosim {
namespace {

FsbStreamMeta
testMeta()
{
    FsbStreamMeta meta;
    meta.workload = "testwl";
    meta.platform = "testCMP";
    meta.nCores = 4;
    meta.seed = 1234;
    meta.scale = 0.25;
    return meta;
}

BusTransaction
txn(Addr addr, std::uint32_t size, TxnKind kind, CoreId core)
{
    BusTransaction t;
    t.addr = addr;
    t.size = size;
    t.kind = kind;
    t.core = core;
    return t;
}

/** An adversarial sequence: address jumps in both directions, extreme
 * values, repeated and changing sizes/cores, every kind, messages with
 * payload encoded in high address bits. */
std::vector<BusTransaction>
adversarialStream()
{
    std::vector<BusTransaction> txns;
    txns.push_back(txn(0x1000, 64, TxnKind::ReadLine, 0));
    txns.push_back(txn(0x1040, 64, TxnKind::ReadLine, 0));  // +delta
    txns.push_back(txn(0x0fc0, 64, TxnKind::WriteLine, 0)); // -delta
    txns.push_back(txn(0, 64, TxnKind::ReadLine, 1));       // to zero
    txns.push_back(
        txn(0xffffffffffffffffull, 64, TxnKind::Prefetch, 1)); // max addr
    txns.push_back(txn(1, 4096, TxnKind::ReadLine, 1));     // huge size
    txns.push_back(txn(0xDA6D000000000001ull, 0, TxnKind::Message,
                       invalidCoreId));                     // message
    txns.push_back(txn(0xDA6D000000000002ull, 0, TxnKind::Message,
                       invalidCoreId));
    txns.push_back(txn(0x2000, 64, TxnKind::ReadLine, 3));
    for (unsigned i = 0; i < 100; ++i) {
        // A run with stable size/core exercising the repeat bits.
        txns.push_back(txn(0x4000 + 64ull * i, 64, TxnKind::ReadLine,
                           static_cast<CoreId>(i % 4)));
    }
    return txns;
}

std::vector<std::uint8_t>
encode(const std::vector<BusTransaction>& txns, std::size_t chunk_txns)
{
    FsbStreamWriter writer(testMeta(), chunk_txns);
    writer.appendBatch(txns.data(), txns.size());
    writer.setResult(777, true);
    writer.finish();
    return *writer.share();
}

/** Drain a reader to the end; returns the decoded stream. */
std::vector<BusTransaction>
drain(FsbStreamReader& reader)
{
    std::vector<BusTransaction> all, chunk;
    while (reader.nextChunk(chunk))
        all.insert(all.end(), chunk.begin(), chunk.end());
    return all;
}

std::unique_ptr<FsbStreamReader>
openBytes(std::vector<std::uint8_t> bytes)
{
    auto reader = std::make_unique<FsbStreamReader>();
    reader->openBuffer(
        std::make_shared<const std::vector<std::uint8_t>>(
            std::move(bytes)));
    return reader;
}

/** Decode @p bytes fully; returns the reader for error inspection. */
std::unique_ptr<FsbStreamReader>
decodeAll(std::vector<std::uint8_t> bytes,
          std::vector<BusTransaction>* out = nullptr)
{
    auto reader = openBytes(std::move(bytes));
    std::vector<BusTransaction> txns = drain(*reader);
    if (out)
        *out = std::move(txns);
    return reader;
}

TEST(FsbCapture, RoundTripIsExact)
{
    std::vector<BusTransaction> in = adversarialStream();
    std::vector<BusTransaction> out;
    auto reader = decodeAll(encode(in, 16), &out);

    EXPECT_TRUE(reader->ok()) << reader->error();
    EXPECT_TRUE(reader->atEnd());
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out[i].addr, in[i].addr) << "txn " << i;
        EXPECT_EQ(out[i].size, in[i].size) << "txn " << i;
        EXPECT_EQ(out[i].kind, in[i].kind) << "txn " << i;
        EXPECT_EQ(out[i].core, in[i].core) << "txn " << i;
    }
}

TEST(FsbCapture, ChunkSizeDoesNotChangeContentOrDigest)
{
    std::vector<BusTransaction> in = adversarialStream();
    std::vector<BusTransaction> a, b;
    auto ra = decodeAll(encode(in, 1), &a);
    auto rb = decodeAll(encode(in, 4096), &b);
    EXPECT_TRUE(ra->ok()) << ra->error();
    EXPECT_TRUE(rb->ok()) << rb->error();
    ASSERT_EQ(a.size(), in.size());
    ASSERT_EQ(b.size(), in.size());
    EXPECT_EQ(ra->contentDigest(), rb->contentDigest());
}

TEST(FsbCapture, DigestMatchesWriterReaderAndStandalone)
{
    std::vector<BusTransaction> in = adversarialStream();

    FsbDigest standalone;
    standalone.update(in.data(), in.size());

    FsbStreamWriter writer(testMeta(), 8);
    writer.appendBatch(in.data(), in.size());
    writer.finish();
    EXPECT_EQ(writer.digest(), standalone.value());
    EXPECT_EQ(writer.txnCount(), in.size());

    auto reader = openBytes(*writer.share());
    drain(*reader);
    EXPECT_TRUE(reader->ok()) << reader->error();
    EXPECT_EQ(reader->contentDigest(), standalone.value());
    EXPECT_EQ(reader->txnsDecoded(), in.size());
}

TEST(FsbCapture, HeaderCarriesMetaAndPatchedResult)
{
    auto reader = openBytes(encode(adversarialStream(), 64));
    const FsbStreamMeta& meta = reader->meta();
    EXPECT_EQ(meta.workload, "testwl");
    EXPECT_EQ(meta.platform, "testCMP");
    EXPECT_EQ(meta.nCores, 4u);
    EXPECT_EQ(meta.seed, 1234u);
    EXPECT_DOUBLE_EQ(meta.scale, 0.25);
    EXPECT_EQ(meta.totalInsts, 777u); // patched by setResult()
    EXPECT_TRUE(meta.verified);
}

TEST(FsbCapture, EmptyStreamRoundTrips)
{
    FsbStreamWriter writer(testMeta());
    writer.finish();
    std::vector<BusTransaction> out;
    auto reader = decodeAll(*writer.share(), &out);
    EXPECT_TRUE(reader->ok()) << reader->error();
    EXPECT_TRUE(reader->atEnd());
    EXPECT_TRUE(out.empty());
}

TEST(FsbCapture, FileRoundTripAndProbe)
{
    std::string path = testing::TempDir() + "fsb_capture_roundtrip.fsb";
    std::vector<BusTransaction> in = adversarialStream();
    FsbStreamWriter writer(testMeta(), 32);
    writer.appendBatch(in.data(), in.size());
    writer.setResult(42, false);
    writer.writeFile(path);

    FsbStreamInfo info;
    std::string error;
    ASSERT_TRUE(probeFsbStream(path, info, &error)) << error;
    EXPECT_EQ(info.meta.workload, "testwl");
    EXPECT_EQ(info.meta.totalInsts, 42u);
    EXPECT_FALSE(info.meta.verified);
    EXPECT_EQ(info.txns, in.size());
    EXPECT_EQ(info.digest, writer.digest());
    EXPECT_GT(info.fileBytes, 0u);

    std::vector<BusTransaction> out;
    FsbStreamMeta meta;
    ASSERT_TRUE(loadFsbStream(path, out, meta, &error)) << error;
    EXPECT_EQ(out.size(), in.size());
    std::remove(path.c_str());
}

TEST(FsbCapture, CompressionBeatsRawTuples)
{
    // The varint-delta encoding exists for a reason: the mostly-
    // sequential stream above must encode well below the 15-byte raw
    // tuple size.
    std::vector<BusTransaction> in = adversarialStream();
    std::vector<std::uint8_t> bytes = encode(in, 4096);
    EXPECT_LT(bytes.size(), in.size() * 15);
}

// --- malformed streams ---------------------------------------------------

TEST(FsbCaptureMalformed, BadMagic)
{
    std::vector<std::uint8_t> bytes = encode(adversarialStream(), 64);
    bytes[0] = 'X';
    auto reader = decodeAll(std::move(bytes));
    EXPECT_FALSE(reader->ok());
    EXPECT_NE(reader->error().find("bad magic"), std::string::npos)
        << reader->error();
}

TEST(FsbCaptureMalformed, UnsupportedVersion)
{
    std::vector<std::uint8_t> bytes = encode(adversarialStream(), 64);
    bytes[4] = 0x63; // version 99
    auto reader = decodeAll(std::move(bytes));
    EXPECT_FALSE(reader->ok());
    EXPECT_NE(reader->error().find("unsupported FSB stream version"),
              std::string::npos)
        << reader->error();
}

TEST(FsbCaptureMalformed, TruncationAtEveryPrefixIsAnError)
{
    // Cut the stream at every possible length -- which includes every
    // chunk boundary: no prefix may decode cleanly (the trailer is
    // mandatory), none may crash, and every error is positioned so the
    // corrupt byte can be found.
    std::vector<std::uint8_t> bytes = encode(adversarialStream(), 16);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() + cut);
        auto reader = decodeAll(std::move(prefix));
        EXPECT_FALSE(reader->ok() && reader->atEnd())
            << "prefix of " << cut << " bytes decoded cleanly";
        EXPECT_FALSE(reader->error().empty()) << "cut=" << cut;
        EXPECT_NE(reader->error().find("byte offset"),
                  std::string::npos)
            << "cut=" << cut << ": " << reader->error();
    }
}

TEST(FsbCaptureMalformed, EveryHeaderBitFlipIsHandled)
{
    // Flip every bit of the 48 fixed header bytes and the two length-
    // prefixed strings. Each mutation must either fail with a
    // positioned error or -- for fields that do not affect decoding,
    // like the seed or the result counters -- still decode the exact
    // original payload. Never a crash, hang, or silent short read.
    const std::vector<BusTransaction> in = adversarialStream();
    const std::vector<std::uint8_t> bytes = encode(in, 16);

    FsbDigest ref;
    ref.update(in.data(), in.size());

    const std::size_t header_end = 48 + 7 + 8; // fixed + strings
    ASSERT_LT(header_end, bytes.size());
    for (std::size_t byte = 0; byte < header_end; ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            std::vector<std::uint8_t> corrupt = bytes;
            corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
            std::vector<BusTransaction> out;
            auto reader = decodeAll(std::move(corrupt), &out);
            if (reader->ok() && reader->atEnd()) {
                EXPECT_EQ(out.size(), in.size())
                    << "byte " << byte << " bit " << bit
                    << ": silent short read";
                EXPECT_EQ(reader->contentDigest(), ref.value())
                    << "byte " << byte << " bit " << bit
                    << ": silent payload corruption";
            } else {
                EXPECT_FALSE(reader->error().empty())
                    << "byte " << byte << " bit " << bit;
                EXPECT_NE(reader->error().find("byte offset"),
                          std::string::npos)
                    << "byte " << byte << " bit " << bit << ": "
                    << reader->error();
            }
        }
    }
}

TEST(FsbCaptureMalformed, DigestMismatchDetected)
{
    std::vector<std::uint8_t> bytes = encode(adversarialStream(), 64);
    // The last 8 bytes are the trailer digest.
    bytes[bytes.size() - 1] ^= 0xff;
    auto reader = decodeAll(std::move(bytes));
    EXPECT_FALSE(reader->ok());
    EXPECT_NE(reader->error().find("digest mismatch"), std::string::npos)
        << reader->error();
}

TEST(FsbCaptureMalformed, TrailingGarbageDetected)
{
    std::vector<std::uint8_t> bytes = encode(adversarialStream(), 64);
    bytes.push_back(0x00);
    auto reader = decodeAll(std::move(bytes));
    EXPECT_FALSE(reader->ok());
    EXPECT_NE(reader->error().find("trailing garbage"),
              std::string::npos)
        << reader->error();
}

TEST(FsbCaptureMalformed, CorruptPayloadDetected)
{
    // Flip a bit somewhere in every chunk payload byte; each mutation
    // must end in a reported error (reserved-bit, framing, count or
    // digest), never a clean decode of wrong data. Header strings are
    // not digest-protected, so start at the first chunk byte: 48 fixed
    // header bytes plus the length-prefixed "testwl" and "testCMP".
    std::vector<std::uint8_t> bytes = encode(adversarialStream(), 4096);
    const std::size_t first_chunk = 48 + 7 + 8;
    for (std::size_t i = first_chunk; i + 16 < bytes.size(); i += 7) {
        std::vector<std::uint8_t> corrupt = bytes;
        corrupt[i] ^= 0x10;
        auto reader = decodeAll(std::move(corrupt));
        EXPECT_FALSE(reader->ok() && reader->atEnd())
            << "flip at byte " << i << " decoded cleanly";
    }
}

TEST(FsbCaptureMalformed, MissingFileHasClearError)
{
    FsbStreamInfo info;
    std::string error;
    EXPECT_FALSE(probeFsbStream("/nonexistent/stream.fsb", info, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(FsbCaptureMalformed, EmptyAndTinyFiles)
{
    for (std::size_t n : {0u, 1u, 3u, 4u, 16u}) {
        auto reader = decodeAll(std::vector<std::uint8_t>(n, 0));
        EXPECT_FALSE(reader->ok()) << n << " zero bytes decoded";
    }
}

// --- digest manifest -----------------------------------------------------

TEST(DigestManifest, TextRoundTrip)
{
    DigestManifest m;
    m.add("PLSA", 4854, 0x26c6594823e79495ull);
    m.add("FIMI", 412803, 0xe99d22909f31a207ull);

    std::string path = testing::TempDir() + "digest_manifest_test.txt";
    m.writeFile(path);

    DigestManifest loaded;
    std::string error;
    ASSERT_TRUE(DigestManifest::load(path, loaded, &error)) << error;
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[0].workload, "PLSA");
    EXPECT_EQ(loaded.entries[0].txns, 4854u);
    EXPECT_EQ(loaded.entries[0].digest, 0x26c6594823e79495ull);
    ASSERT_NE(loaded.find("FIMI"), nullptr);
    EXPECT_EQ(loaded.find("FIMI")->digest, 0xe99d22909f31a207ull);
    EXPECT_EQ(loaded.find("nope"), nullptr);
    std::remove(path.c_str());
}

TEST(DigestManifest, CompareReportsEveryDifference)
{
    DigestManifest golden, fresh;
    golden.add("A", 10, 1);
    golden.add("B", 20, 2);
    golden.add("C", 30, 3);
    fresh.add("A", 10, 1);      // match
    fresh.add("B", 21, 99);     // mismatch
    fresh.add("D", 40, 4);      // new; C missing

    std::string report;
    EXPECT_FALSE(DigestManifest::compare(golden, fresh, report));
    EXPECT_NE(report.find("B"), std::string::npos) << report;
    EXPECT_NE(report.find("C"), std::string::npos) << report;
    EXPECT_NE(report.find("D"), std::string::npos) << report;
    EXPECT_EQ(report.find("A "), std::string::npos) << report;

    std::string ok_report;
    EXPECT_TRUE(DigestManifest::compare(golden, golden, ok_report));
    EXPECT_TRUE(ok_report.empty());
}

TEST(DigestManifest, LoadRejectsBadSchema)
{
    std::string path = testing::TempDir() + "digest_bad_schema.txt";
    std::ofstream(path) << "# some-other-format/9\nA 1 2\n";
    DigestManifest m;
    std::string error;
    EXPECT_FALSE(DigestManifest::load(path, m, &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(FsbCapture, FormatDigestRendering)
{
    EXPECT_EQ(formatFsbDigest(0x26c6594823e79495ull),
              "26c6594823e79495");
    EXPECT_EQ(formatFsbDigest(0x1ull), "0000000000000001");
}

} // namespace
} // namespace cosim
