/**
 * @file
 * Tests for the private L1(+L2) hierarchy.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "base/units.hh"
#include "cache/hierarchy.hh"

namespace cosim {
namespace {

HierarchyParams
l1Only(std::uint64_t l1_size = 1 * KiB)
{
    HierarchyParams p;
    p.l1 = {"l1", l1_size, 64, 2, ReplPolicy::LRU};
    p.hasL2 = false;
    return p;
}

HierarchyParams
twoLevel(std::uint64_t l1_size = 1 * KiB, std::uint64_t l2_size = 8 * KiB)
{
    HierarchyParams p;
    p.l1 = {"l1", l1_size, 64, 2, ReplPolicy::LRU};
    p.hasL2 = true;
    p.l2 = {"l2", l2_size, 64, 4, ReplPolicy::LRU};
    return p;
}

TEST(Hierarchy, L1OnlyMissGoesBeyond)
{
    PrivateHierarchy h(l1Only());
    auto r = h.access(0x1000, false);
    EXPECT_EQ(r.servicedBy, ServiceLevel::Beyond);
    ASSERT_TRUE(r.fetchLine.has_value());
    EXPECT_EQ(*r.fetchLine, 0x1000u);
    EXPECT_EQ(r.nWritebacks, 0u);

    auto r2 = h.access(0x1008, false);
    EXPECT_EQ(r2.servicedBy, ServiceLevel::L1);
}

TEST(Hierarchy, L2CatchesL1Victims)
{
    PrivateHierarchy h(twoLevel());
    // L1 is 1 KB / 2-way / 8 sets; touch 3 lines mapping to set 0.
    Addr stride = 8 * 64;
    h.access(0 * stride, false);
    h.access(1 * stride, false);
    auto r = h.access(2 * stride, false); // L1 evicts line 0 (clean)
    EXPECT_EQ(r.servicedBy, ServiceLevel::Beyond);

    // Line 0 is gone from L1 but (clean eviction) it was filled into L2
    // on the original demand miss, so this is an L2 hit.
    auto r2 = h.access(0 * stride, false);
    EXPECT_EQ(r2.servicedBy, ServiceLevel::L2);
}

TEST(Hierarchy, DirtyL1VictimStaysOnChip)
{
    PrivateHierarchy h(twoLevel());
    Addr stride = 8 * 64;
    h.access(0, true); // dirty in L1
    h.access(1 * stride, false);
    auto r = h.access(2 * stride, false); // evicts dirty line 0 into L2
    // No writeback leaves the chip: the L2 absorbed it.
    EXPECT_EQ(r.nWritebacks, 0u);
    EXPECT_TRUE(h.l2().probe(0));
}

TEST(Hierarchy, WritebackLeavesChipWhenL2EvictsDirty)
{
    // Tiny L2 (same geometry as L1) so dirty lines cascade out.
    HierarchyParams p;
    p.l1 = {"l1", 256, 64, 1, ReplPolicy::LRU}; // 4 sets, direct mapped
    p.hasL2 = true;
    p.l2 = {"l2", 256, 64, 1, ReplPolicy::LRU};
    PrivateHierarchy h(p);

    Addr stride = 4 * 64; // same set in both levels
    h.access(0, true);
    h.access(1 * stride, true);  // L1 evicts dirty 0 -> L2 (dirty)
    auto r = h.access(2 * stride, true); // L1 evicts dirty 1*stride ->
                                         // L2 evicts dirty 0 -> bus
    bool saw_wb = false;
    for (unsigned i = 0; i < r.nWritebacks; ++i)
        saw_wb |= r.writebacks[i] == 0;
    EXPECT_TRUE(saw_wb);
}

TEST(Hierarchy, BusLineSizeFollowsOutermostLevel)
{
    PrivateHierarchy a(l1Only());
    EXPECT_EQ(a.busLineSize(), 64u);

    HierarchyParams p = twoLevel();
    p.l2.lineSize = 128;
    PrivateHierarchy b(p);
    EXPECT_EQ(b.busLineSize(), 128u);
}

TEST(Hierarchy, PrefetchFillsOutermostLevel)
{
    PrivateHierarchy h(twoLevel());
    EXPECT_TRUE(h.prefetchFill(0x4000));
    EXPECT_TRUE(h.l2().probe(0x4000));
    EXPECT_FALSE(h.l1().probe(0x4000));

    auto r = h.access(0x4000, false);
    EXPECT_EQ(r.servicedBy, ServiceLevel::L2);
    EXPECT_TRUE(r.l2PrefetchHit);
}

TEST(Hierarchy, FlushAndResetStats)
{
    PrivateHierarchy h(twoLevel());
    h.access(0, true);
    h.flush();
    EXPECT_EQ(h.l1().linesValid(), 0u);
    EXPECT_EQ(h.l2().linesValid(), 0u);
    h.resetStats();
    EXPECT_EQ(h.l1().stats().accesses, 0u);
}

TEST(Hierarchy, L2FilterReducesBeyondTraffic)
{
    PrivateHierarchy with_l2(twoLevel(1 * KiB, 64 * KiB));
    PrivateHierarchy without(l1Only(1 * KiB));

    Rng rng(7);
    std::uint64_t beyond_with = 0;
    std::uint64_t beyond_without = 0;
    for (int i = 0; i < 40000; ++i) {
        Addr a = rng.nextBounded(32 * KiB);
        if (with_l2.access(a, false).servicedBy == ServiceLevel::Beyond)
            ++beyond_with;
        if (without.access(a, false).servicedBy == ServiceLevel::Beyond)
            ++beyond_without;
    }
    EXPECT_LT(beyond_with, beyond_without / 4);
}

} // namespace
} // namespace cosim
