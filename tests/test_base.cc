/**
 * @file
 * Unit tests for the base utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

#include "base/bitops.hh"
#include "base/csv.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "base/str.hh"
#include "base/table.hh"
#include "base/units.hh"

namespace cosim {
namespace {

// ---------------------------------------------------------------- bitops

TEST(Bitops, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2((1ull << 33) + 5), 33u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(Bitops, Alignment)
{
    EXPECT_EQ(alignDown(0x12345, 0x1000), 0x12000u);
    EXPECT_EQ(alignUp(0x12345, 0x1000), 0x13000u);
    EXPECT_EQ(alignUp(0x12000, 0x1000), 0x12000u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
}

TEST(Bitops, BitExtract)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffull);
    EXPECT_EQ(bits(0xabcd, 3, 0), 0xdull);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

// ----------------------------------------------------------------- units

TEST(Units, Format)
{
    EXPECT_EQ(formatSize(64), "64B");
    EXPECT_EQ(formatSize(4 * KiB), "4KB");
    EXPECT_EQ(formatSize(32 * MiB), "32MB");
    EXPECT_EQ(formatSize(2 * GiB), "2GB");
    EXPECT_EQ(formatSize(1536), "1536B"); // not a whole KiB multiple
}

TEST(Units, Parse)
{
    EXPECT_EQ(parseSize("64"), 64u);
    EXPECT_EQ(parseSize("64B"), 64u);
    EXPECT_EQ(parseSize("4KB"), 4 * KiB);
    EXPECT_EQ(parseSize("4k"), 4 * KiB);
    EXPECT_EQ(parseSize("32MiB"), 32 * MiB);
    EXPECT_EQ(parseSize("2 GB"), 2 * GiB);
}

TEST(Units, RoundTrip)
{
    for (std::uint64_t v : {64ull, 4096ull, 4ull * MiB, 256ull * MiB})
        EXPECT_EQ(parseSize(formatSize(v)), v);
}

// ---------------------------------------------------------------- random

TEST(Random, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, RecordsConstructionSeed)
{
    Rng rng(123);
    EXPECT_EQ(rng.seed(), 123u);
    // Drawing values must not disturb the recorded provenance.
    rng.next();
    EXPECT_EQ(rng.seed(), 123u);
    EXPECT_EQ(Rng().seed(), 0x9e3779b97f4a7c15ull);
}

TEST(Random, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 16; ++i)
        differing += a.next() != b.next() ? 1 : 0;
    EXPECT_GT(differing, 12);
}

TEST(Random, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, DoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Random, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double v = rng.nextGaussian(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Random, ZipfIsSkewed)
{
    Rng rng(17);
    const std::uint64_t n = 100;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.nextZipf(n, 1.1)];
    // Rank 0 must dominate and the tail must still be reachable.
    EXPECT_GT(counts[0], counts[9] * 2);
    int tail = 0;
    for (std::uint64_t r = 50; r < n; ++r)
        tail += counts[r];
    EXPECT_GT(tail, 0);
}

TEST(Random, ZipfZeroExponentIsUniform)
{
    Rng rng(19);
    const std::uint64_t n = 10;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.nextZipf(n, 0.0)];
    for (std::uint64_t r = 0; r < n; ++r)
        EXPECT_NEAR(counts[r], 5000, 600);
}

TEST(Random, BoolProbability)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

// ----------------------------------------------------------------- stats

TEST(Stats, CounterBasics)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramBuckets)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(-1.0);
    h.sample(10.0);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(Stats, HistogramFirstSampleSetsMinAndMax)
{
    stats::Histogram h(0.0, 10.0, 10);
    // The first sample must establish both extremes, even when it is
    // above the zero-initialized min or below the zero-initialized max.
    h.sample(7.0);
    EXPECT_DOUBLE_EQ(h.min(), 7.0);
    EXPECT_DOUBLE_EQ(h.max(), 7.0);
    h.sample(3.0);
    EXPECT_DOUBLE_EQ(h.min(), 3.0);
    EXPECT_DOUBLE_EQ(h.max(), 7.0);

    // Same after a reset, including for a negative first sample.
    h.reset();
    h.sample(-2.0);
    EXPECT_DOUBLE_EQ(h.min(), -2.0);
    EXPECT_DOUBLE_EQ(h.max(), -2.0);
}

TEST(Stats, HistogramUnderflowOverflowAccounting)
{
    stats::Histogram h(10.0, 20.0, 5);
    h.sample(9.999);  // below lo
    h.sample(10.0);   // first bucket (lo is inclusive)
    h.sample(19.999); // last bucket
    h.sample(20.0);   // hi is exclusive -> overflow
    h.sample(25.0);   // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[4], 1u);
    // Out-of-range samples still count toward count/mean/min/max.
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.min(), 9.999);
    EXPECT_DOUBLE_EQ(h.max(), 25.0);
}

TEST(Stats, HistogramMeanAndReset)
{
    stats::Histogram h(0.0, 100.0, 4);
    h.sample(10.0);
    h.sample(30.0);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Stats, GroupCollectAndDump)
{
    stats::Counter hits;
    stats::Counter misses;
    hits += 90;
    misses += 10;

    stats::Group g("cache");
    g.add("hits", &hits);
    g.add("misses", &misses);
    g.add("miss_rate", [&] {
        return stats::safeRatio(static_cast<double>(misses.value()),
                                static_cast<double>(hits.value() +
                                                    misses.value()));
    });

    auto collected = g.collect();
    ASSERT_EQ(collected.size(), 3u);
    EXPECT_EQ(collected[0].first, "hits");
    EXPECT_DOUBLE_EQ(collected[2].second, 0.1);

    std::string dump = g.dump();
    EXPECT_NE(dump.find("cache.hits 90"), std::string::npos);
    EXPECT_NE(dump.find("cache.miss_rate 0.1"), std::string::npos);
}

TEST(Stats, Helpers)
{
    EXPECT_DOUBLE_EQ(stats::safeRatio(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(stats::perKiloInst(5, 1000), 5.0);
    EXPECT_DOUBLE_EQ(stats::perKiloInst(5, 0), 0.0);
}

// ------------------------------------------------------------------- str

TEST(Str, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Str, TrimAndLower)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(toLower("AbC-12"), "abc-12");
}

TEST(Str, FormatHelpers)
{
    EXPECT_EQ(strFormat("x=%d y=%s", 5, "z"), "x=5 y=z");
    EXPECT_TRUE(startsWith("--scale=2", "--scale="));
    EXPECT_FALSE(startsWith("-s", "--scale="));
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

// ------------------------------------------------------------------- csv

TEST(Csv, WritesAndEscapes)
{
    std::string path = ::testing::TempDir() + "cosim_csv_test.csv";
    {
        CsvWriter csv(path);
        csv.writeRow({"name", "va,lue", "quo\"te"});
        csv.writeNumericRow("row", {1.5, 2.0});
    }
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256];
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "name,\"va,lue\",\"quo\"\"te\"\n");
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "row,1.5,2\n");
    std::fclose(f);
    std::remove(path.c_str());
}

// ----------------------------------------------------------------- table

TEST(Table, AsciiLayout)
{
    TableWriter t("Title");
    t.setHeader({"Workload", "MPKI"});
    t.addRow({"FIMI", "3.76"});
    t.addRow({"MDS", "18.95"});
    std::string out = t.renderAscii();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("| FIMI"), std::string::npos);
    // Numeric columns are right-aligned.
    EXPECT_NE(out.find(" 3.76 |"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, Markdown)
{
    TableWriter t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::string md = t.renderMarkdown();
    EXPECT_NE(md.find("| a | b |"), std::string::npos);
    EXPECT_NE(md.find("|---|---|"), std::string::npos);
    EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

// --------------------------------------------------------------- logging

void
throwingHandler(LogLevel level, const std::string& msg)
{
    if (level == LogLevel::Panic || level == LogLevel::Fatal)
        throw std::runtime_error(msg);
}

TEST(Logging, PanicReachesHandler)
{
    LogHandler prev = setLogHandler(throwingHandler);
    EXPECT_THROW(panic("boom %d", 42), std::runtime_error);
    try {
        panic("boom %d", 42);
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("boom 42"),
                  std::string::npos);
    }
    setLogHandler(prev);
}

TEST(Logging, PanicIfConditionFalseIsQuiet)
{
    LogHandler prev = setLogHandler(throwingHandler);
    EXPECT_NO_THROW(panic_if(false, "never"));
    EXPECT_THROW(panic_if(1 + 1 == 2, "always"), std::runtime_error);
    setLogHandler(prev);
}

TEST(Logging, FatalIfReachesHandler)
{
    LogHandler prev = setLogHandler(throwingHandler);
    EXPECT_THROW(fatal_if(true, "bad config %s", "x"),
                 std::runtime_error);
    setLogHandler(prev);
}

namespace {
std::vector<std::pair<LogLevel, std::string>> captured_logs;
} // namespace

void
capturingHandler(LogLevel level, const std::string& msg)
{
    captured_logs.emplace_back(level, msg);
}

TEST(Logging, VerbosityFiltersBelowThreshold)
{
    LogHandler prev_handler = setLogHandler(capturingHandler);
    LogLevel prev_verbosity = setLogVerbosity(LogLevel::Info);
    captured_logs.clear();

    // Default (Info): debug dropped, info/warn delivered. Call
    // logMessage() directly so the check holds even in NDEBUG builds
    // where the debug() macro compiles to nothing.
    logMessage(LogLevel::Debug, "dropped %d", 1);
    logMessage(LogLevel::Info, "kept info");
    logMessage(LogLevel::Warn, "kept warn");
    ASSERT_EQ(captured_logs.size(), 2u);
    EXPECT_EQ(captured_logs[0].first, LogLevel::Info);
    EXPECT_EQ(captured_logs[1].first, LogLevel::Warn);

    // Raising to Warn drops info too.
    captured_logs.clear();
    setLogVerbosity(LogLevel::Warn);
    logMessage(LogLevel::Info, "now dropped");
    logMessage(LogLevel::Warn, "still kept");
    ASSERT_EQ(captured_logs.size(), 1u);
    EXPECT_EQ(captured_logs[0].second, "still kept");

    // Lowering to Debug delivers everything.
    captured_logs.clear();
    setLogVerbosity(LogLevel::Debug);
    logMessage(LogLevel::Debug, "debug %s", "visible");
    ASSERT_EQ(captured_logs.size(), 1u);
    EXPECT_EQ(captured_logs[0].first, LogLevel::Debug);
    EXPECT_EQ(captured_logs[0].second, "debug visible");

    setLogVerbosity(prev_verbosity);
    setLogHandler(prev_handler);
}

TEST(Logging, FatalAndPanicAreNeverFiltered)
{
    LogHandler prev_handler = setLogHandler(throwingHandler);
    LogLevel prev_verbosity = setLogVerbosity(LogLevel::Panic);
    // Even at the most restrictive verbosity, fatal/panic reach the
    // handler (here: throw instead of terminating).
    EXPECT_THROW(fatal("must not be filtered"), std::runtime_error);
    EXPECT_THROW(panic("must not be filtered"), std::runtime_error);
    setLogVerbosity(prev_verbosity);
    setLogHandler(prev_handler);
}

} // namespace
} // namespace cosim
