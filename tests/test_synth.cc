/**
 * @file
 * Tests for the synthetic data generators: distributions, planted
 * structure, and determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workloads/data/synth.hh"
#include "workloads/data/video.hh"

namespace cosim {
namespace {

TEST(GenotypeChain, ShapeAndValues)
{
    Rng rng(1);
    auto g = synth::genotypeChain(8, 1000, 0.9, rng);
    ASSERT_EQ(g.size(), 8000u);
    for (auto v : g)
        EXPECT_LT(v, 3);
}

TEST(GenotypeChain, AdjacentVariablesCorrelate)
{
    Rng rng(2);
    std::size_t n = 20000;
    auto g = synth::genotypeChain(4, n, 0.9, rng);
    std::size_t agree_adjacent = 0;
    std::size_t agree_far = 0;
    for (std::size_t s = 0; s < n; ++s) {
        agree_adjacent += g[0 * n + s] == g[1 * n + s] ? 1 : 0;
        agree_far += g[0 * n + s] == g[3 * n + s] ? 1 : 0;
    }
    // Dependence 0.9: adjacent agreement ~93%; at distance 3 it decays.
    EXPECT_GT(agree_adjacent, n * 85 / 100);
    EXPECT_LT(agree_far, agree_adjacent);
}

TEST(GenotypeChain, Deterministic)
{
    Rng a(7);
    Rng b(7);
    EXPECT_EQ(synth::genotypeChain(4, 100, 0.5, a),
              synth::genotypeChain(4, 100, 0.5, b));
}

TEST(GeneExpression, InformativeGenesSeparateClasses)
{
    Rng rng(3);
    std::vector<int> labels;
    auto x = synth::geneExpression(100, 50, 10, 1.0, rng, labels);
    ASSERT_EQ(labels.size(), 100u);

    // Mean difference between classes on an informative vs a noise gene.
    auto class_gap = [&](std::size_t gene) {
        double pos = 0.0;
        double neg = 0.0;
        int npos = 0;
        int nneg = 0;
        for (std::size_t i = 0; i < 100; ++i) {
            if (labels[i] > 0) {
                pos += x[i * 50 + gene];
                ++npos;
            } else {
                neg += x[i * 50 + gene];
                ++nneg;
            }
        }
        return pos / npos - neg / nneg;
    };
    EXPECT_GT(class_gap(0), 1.0);   // informative: ~2.0 apart
    EXPECT_LT(std::fabs(class_gap(40)), 0.8); // noise: ~0
}

TEST(NucleotideDatabase, PlantsReverseComplementStems)
{
    Rng rng(4);
    std::vector<std::size_t> planted;
    std::size_t stem = 6;
    auto db = synth::nucleotideDatabase(8192, stem, 1024, rng, planted);
    ASSERT_FALSE(planted.empty());
    std::size_t hp_len = 2 * stem + 4;
    for (std::size_t pos : planted) {
        for (std::size_t k = 0; k < stem; ++k) {
            EXPECT_EQ(db[pos + k] + db[pos + hp_len - 1 - k], 3)
                << "stem pair " << k << " at " << pos;
        }
    }
}

TEST(AlignmentPair, PlantsExactCommonRegion)
{
    Rng rng(5);
    std::vector<std::uint8_t> a;
    std::vector<std::uint8_t> b;
    synth::alignmentPair(1000, 1000, 100, 200, 500, rng, a, b);
    for (std::size_t k = 0; k < 100; ++k)
        EXPECT_EQ(a[200 + k], b[500 + k]);
}

TEST(Transactions, SortedDedupedAndSkewed)
{
    synth::TransactionParams p;
    p.nTransactions = 5000;
    p.nItems = 200;
    p.avgLength = 8;
    p.maxLength = 16;
    Rng rng(6);
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint16_t> items;
    synth::transactions(p, rng, offsets, items);

    ASSERT_EQ(offsets.size(), 5001u);
    std::vector<std::size_t> freq(p.nItems, 0);
    for (std::size_t t = 0; t + 1 < offsets.size(); ++t) {
        EXPECT_LE(offsets[t + 1] - offsets[t], p.maxLength);
        for (std::uint32_t k = offsets[t]; k < offsets[t + 1]; ++k) {
            if (k > offsets[t]) {
                EXPECT_LT(items[k - 1], items[k]); // sorted, deduped
            }
            ASSERT_LT(items[k], p.nItems);
            ++freq[items[k]];
        }
    }
    // Zipf head: item 0 far more popular than mid-tail items.
    EXPECT_GT(freq[0], 8 * std::max<std::size_t>(1, freq[100]));
}

TEST(SimilarityCsr, RowStructureAndNormalization)
{
    Rng rng(8);
    std::vector<std::uint32_t> row_ptr;
    std::vector<std::uint32_t> col;
    std::vector<float> val;
    synth::similarityCsr(64, 256, rng, row_ptr, col, val);

    ASSERT_EQ(row_ptr.size(), 65u);
    EXPECT_EQ(row_ptr.back(), 64u * 256u);
    for (std::size_t r = 0; r < 64; ++r) {
        double sum = 0.0;
        for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
            ASSERT_LT(col[k], 64u);
            ASSERT_GT(val[k], 0.0f);
            sum += val[k];
        }
        EXPECT_NEAR(sum, 1.0, 1e-4); // row-stochastic
    }
}

// ------------------------------------------------------------- video

TEST(Video, PixelFunctionIsPure)
{
    synth::VideoParams vp{64, 48, 20, 5};
    synth::FrameSynthesizer a(vp, 42);
    synth::FrameSynthesizer b(vp, 42);
    for (unsigned f : {0u, 7u, 19u})
        for (unsigned y = 0; y < 48; y += 7)
            for (unsigned x = 0; x < 64; x += 5)
                EXPECT_EQ(a.pixel(f, x, y), b.pixel(f, x, y));
}

TEST(Video, ShotIndexAndCuts)
{
    synth::VideoParams vp{64, 48, 20, 5};
    synth::FrameSynthesizer s(vp, 1);
    EXPECT_EQ(s.shotIndex(0), 0u);
    EXPECT_EQ(s.shotIndex(4), 0u);
    EXPECT_EQ(s.shotIndex(5), 1u);
    EXPECT_FALSE(s.isCut(0));
    EXPECT_TRUE(s.isCut(5));
    EXPECT_FALSE(s.isCut(6));
    EXPECT_TRUE(s.isCut(10));
}

TEST(Video, PlayfieldFractionMatchesPlantedViewType)
{
    synth::VideoParams vp{128, 96, 40, 5};
    synth::FrameSynthesizer s(vp, 9);
    for (unsigned f : {0u, 5u, 10u, 15u}) {
        synth::ViewType view = s.plannedView(f);
        std::size_t field = 0;
        for (unsigned y = 0; y < vp.height; ++y)
            for (unsigned x = 0; x < vp.width; ++x)
                field += synth::isPlayfieldHue(s.pixel(f, x, y)) ? 1 : 0;
        double frac = static_cast<double>(field) /
                      (static_cast<double>(vp.width) * vp.height);
        double expected = synth::FrameSynthesizer::playfieldFraction(view);
        EXPECT_NEAR(frac, expected, 0.08)
            << "frame " << f << " view " << synth::toString(view);
    }
}

TEST(Video, BackgroundIsNeverGreenDominant)
{
    // The playfield detector must only fire on playfield pixels; check
    // out-of-view frames (no field at all) across several shots/seeds.
    synth::VideoParams vp{96, 64, 80, 5};
    for (std::uint64_t seed : {1ull, 22ull, 333ull}) {
        synth::FrameSynthesizer s(vp, seed);
        for (unsigned f = 0; f < vp.nFrames; f += 5) {
            if (s.plannedView(f) != synth::ViewType::OutOfView)
                continue;
            for (unsigned y = 0; y < vp.height; y += 3)
                for (unsigned x = 0; x < vp.width; x += 3)
                    EXPECT_FALSE(synth::isPlayfieldHue(s.pixel(f, x, y)));
        }
    }
}

TEST(Video, CutChangesHistogramMoreThanDrift)
{
    synth::VideoParams vp{96, 64, 20, 5};
    synth::FrameSynthesizer s(vp, 77);

    auto histogram = [&](unsigned f) {
        std::vector<int> h(48, 0);
        for (unsigned y = 0; y < vp.height; ++y) {
            for (unsigned x = 0; x < vp.width; ++x) {
                synth::Pixel p = s.pixel(f, x, y);
                ++h[synth::pixelR(p) >> 4];
                ++h[16 + (synth::pixelG(p) >> 4)];
                ++h[32 + (synth::pixelB(p) >> 4)];
            }
        }
        return h;
    };
    auto dist = [](const std::vector<int>& a, const std::vector<int>& b) {
        long d = 0;
        for (std::size_t k = 0; k < a.size(); ++k)
            d += std::labs(a[k] - b[k]);
        return d;
    };

    auto h1 = histogram(1);
    auto h2 = histogram(2); // same shot: drift only
    auto h5 = histogram(5); // new shot: planted cut
    EXPECT_GT(dist(h2, h5), 4 * dist(h1, h2));
}

TEST(Video, HueMath)
{
    // Pure green has hue ~85/256; red ~0; blue ~170.
    synth::Pixel green = 0x0000ff00 >> 0; // g=255
    EXPECT_NEAR(synth::hueOf(0x00ff00u << 0), 85, 3); // packed g byte
    EXPECT_EQ(synth::hueOf(0x000000ffu), 0);          // pure red
    EXPECT_NEAR(synth::hueOf(0x00ff0000u), 170, 3);   // pure blue
    (void)green;
}

TEST(Video, ViewTypeNames)
{
    EXPECT_STREQ(synth::toString(synth::ViewType::Global), "global");
    EXPECT_STREQ(synth::toString(synth::ViewType::OutOfView),
                 "out-of-view");
}

} // namespace
} // namespace cosim
