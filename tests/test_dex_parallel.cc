/**
 * @file
 * Determinism suite for sharded guest (DEX) execution.
 *
 * The contract of --dex-threads is the same as the emulation bank's:
 * it may change *when* guest quanta run on the host, never *what* they
 * compute or emit. Per-slot transaction recorders merged in slot order
 * at the round barrier must reproduce the serial scheduler's FSB
 * stream bit-exactly, so every guest counter, cache stat, FSB digest
 * and stats-registry dump has to match across shard counts -- for all
 * eight paper workloads, not just the friendly ones (the unsafe ones
 * exercise the serial-fallback rounds instead). Plus the fault path: a
 * cleanly dying DEX worker must either fail loudly, naming its shard,
 * or -- under --degrade-serial -- finish the run bit-identically.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/fault.hh"
#include "base/units.hh"
#include "obs/stats_registry.hh"
#include "softsdv/virtual_platform.hh"
#include "trace/fsb_capture.hh"
#include "workloads/workload_factory.hh"
#include "test_util.hh"

namespace cosim {
namespace {

constexpr double kScale = 0.02;

PlatformParams
dexPlatform(unsigned cores, unsigned dex_threads,
            bool degrade_serial = false)
{
    PlatformParams p;
    p.name = "dex-test";
    p.nCores = cores;
    p.cpu.baseCpi = 1.0;
    p.cpu.caches.l1 = {"l1", 8 * KiB, 64, 4, ReplPolicy::LRU};
    p.cpu.caches.hasL2 = false;
    p.cpu.useDramLatency = false;
    p.cpu.beyondLatency = 50;
    p.cpu.emitFsbTraffic = true;
    // Small quanta force many rounds (and many merges) per run.
    p.dex.quantumInsts = 5000;
    p.dex.hostThreads = dex_threads;
    p.dex.degradeSerial = degrade_serial;
    return p;
}

/** Everything one guest execution produced, bit-exact. */
struct Fingerprint
{
    std::vector<std::uint64_t> counters;
    std::uint64_t fsbDigest = 0;
    std::uint64_t fsbTxns = 0;
    std::string statsDump;

    bool operator==(const Fingerprint&) const = default;
};

Fingerprint
fingerprintOf(VirtualPlatform& vp, const RunResult& r,
              const FsbDigestSnooper& digest)
{
    Fingerprint fp;
    fp.counters = {r.totalInsts,
                   r.memInsts,
                   r.loads,
                   r.stores,
                   r.totalCycles,
                   r.maxCoreCycles,
                   r.l1.accesses,
                   r.l1.misses,
                   r.l1.writebacks,
                   r.l1.evictions,
                   r.schedulerRounds,
                   r.schedulerSlices,
                   r.footprintBytes,
                   static_cast<std::uint64_t>(r.verified)};
    fp.fsbDigest = digest.digest();
    fp.fsbTxns = digest.txnCount();
    obs::StatsRegistry local;
    vp.registerStats(local);
    fp.statsDump = local.dumpText();
    return fp;
}

/** Run one factory workload under the given shard count. */
Fingerprint
runWorkload(const std::string& name, unsigned dex_threads,
            RunResult* out = nullptr)
{
    const unsigned cores = 4;
    VirtualPlatform vp(dexPlatform(cores, dex_threads));
    FsbDigestSnooper digest;
    vp.fsb().attach(&digest);
    auto wl = createWorkload(name, kScale);
    WorkloadConfig cfg;
    cfg.nThreads = cores;
    cfg.scale = kScale;
    RunResult r = vp.run(*wl, cfg);
    EXPECT_TRUE(r.verified) << name << " dex_threads=" << dex_threads;
    if (out != nullptr)
        *out = r;
    return fingerprintOf(vp, r, digest);
}

/** Run the trivially-safe loop workload (fault / diagnostics cases). */
Fingerprint
runLoop(const PlatformParams& platform, RunResult* out = nullptr)
{
    VirtualPlatform vp(platform);
    FsbDigestSnooper digest;
    vp.fsb().attach(&digest);
    test::LoopWorkload wl(16 * KiB, 4, /*shared_array=*/true);
    WorkloadConfig cfg;
    cfg.nThreads = platform.nCores;
    RunResult r = vp.run(wl, cfg);
    EXPECT_TRUE(r.verified);
    if (out != nullptr)
        *out = r;
    return fingerprintOf(vp, r, digest);
}

// ------------------------------------------------- determinism sweep

TEST(DexParallelWorkloads, AllEightBitIdenticalAcrossShardCounts)
{
    for (const std::string& name : workloadNames()) {
        Fingerprint serial = runWorkload(name, 0);
        ASSERT_FALSE(serial.counters.empty());
        ASSERT_GT(serial.fsbTxns, 0u) << name;
        for (unsigned shards : {2u, 3u, 4u}) {
            Fingerprint sharded = runWorkload(name, shards);
            EXPECT_EQ(sharded, serial)
                << name << " diverged at dex_threads=" << shards;
        }
    }
}

TEST(DexParallelWorkloads, ShardCountAboveSlotCountClamps)
{
    Fingerprint serial = runWorkload("MDS", 0);
    // 16 requested shards over 4 slots: width clamps to the slot
    // count; results must not care.
    EXPECT_EQ(runWorkload("MDS", 16), serial);
}

// --------------------------------------------- scheduler diagnostics

TEST(DexParallelScheduler, ClassicModeReportsNoParallelRounds)
{
    RunResult r;
    runLoop(dexPlatform(4, 0), &r);
    EXPECT_EQ(r.dexParallelRounds, 0u);
    EXPECT_EQ(r.dexSerialFallbackRounds, 0u);
    EXPECT_EQ(r.dexFencedSlices, 0u);
    EXPECT_EQ(r.dexDegradedWorkers, 0u);
}

TEST(DexParallelScheduler, SafeWorkloadRunsParallelRounds)
{
    RunResult r;
    runLoop(dexPlatform(4, 2), &r);
    EXPECT_GT(r.dexParallelRounds, 0u);
    EXPECT_EQ(r.dexSerialFallbackRounds, 0u);
    EXPECT_EQ(r.dexDegradedWorkers, 0u);
}

TEST(DexParallelScheduler, UnsafeWorkloadFallsBackToSerialRounds)
{
    // SVM-RFE deliberately does not implement the parallel-step-safety
    // contract: every round must take the serial path, and the run
    // still completes (bit-identity is covered by the sweep above).
    RunResult r;
    const unsigned cores = 4;
    VirtualPlatform vp(dexPlatform(cores, 2));
    auto wl = createWorkload("SVM-RFE", kScale);
    WorkloadConfig cfg;
    cfg.nThreads = cores;
    cfg.scale = kScale;
    r = vp.run(*wl, cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.dexParallelRounds, 0u);
    EXPECT_GT(r.dexSerialFallbackRounds, 0u);
}

TEST(DexParallelScheduler, BarrierWaitsSuspendAsFencedSlices)
{
    // FIMI is phase-barrier heavy: under concurrent rounds its tasks
    // must hit the sync fence (zero instructions charged) and be
    // resumed serially in pass 2 -- visible as fenced slices.
    RunResult r;
    const unsigned cores = 4;
    VirtualPlatform vp(dexPlatform(cores, 2));
    auto wl = createWorkload("FIMI", kScale);
    WorkloadConfig cfg;
    cfg.nThreads = cores;
    cfg.scale = kScale;
    r = vp.run(*wl, cfg);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.dexFencedSlices, 0u);
}

// ------------------------------------------------------- fault paths

TEST(DexParallelFault, DeadWorkerFailsLoudlyNamingItsShard)
{
    ScopedFaultPlan plan("dex.worker.crash:nth=1");
    try {
        runLoop(dexPlatform(4, 2));
        FAIL() << "a dead DEX worker must fail the run without "
                  "--degrade-serial";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("DEX worker 1"), std::string::npos) << what;
        EXPECT_NE(what.find("shard: cores"), std::string::npos) << what;
        EXPECT_NE(what.find("died at round"), std::string::npos) << what;
    }
}

TEST(DexParallelFault, DegradeSerialRecoversBitIdentically)
{
    Fingerprint baseline = runLoop(dexPlatform(4, 0));
    RunResult r;
    Fingerprint degraded;
    {
        ScopedFaultPlan plan("dex.worker.crash:nth=1");
        degraded =
            runLoop(dexPlatform(4, 2, /*degrade_serial=*/true), &r);
    }
    EXPECT_EQ(degraded, baseline);
    EXPECT_EQ(r.dexDegradedWorkers, 1u);
}

} // namespace
} // namespace cosim
