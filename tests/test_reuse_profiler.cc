/**
 * @file
 * Tests for the configuration-independent reuse-distance profiler.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "cache/cache.hh"
#include "trace/reuse_profiler.hh"

namespace cosim {
namespace {

TEST(ReuseProfiler, ColdAccountingAndFootprint)
{
    ReuseDistanceProfiler prof(64, 1 << 16);
    for (Addr a = 0; a < 64 * 64; a += 64)
        prof.access(a);
    EXPECT_EQ(prof.accesses(), 64u);
    EXPECT_EQ(prof.coldAccesses(), 64u);
    EXPECT_EQ(prof.footprintLines(), 64u);
    // Everything is cold: the miss ratio is 1 at every capacity.
    EXPECT_DOUBLE_EQ(prof.missRatioAt(1024), 1.0);
}

TEST(ReuseProfiler, ImmediateReuseHasDistanceZero)
{
    ReuseDistanceProfiler prof(64, 1 << 16);
    prof.access(0x100);
    prof.access(0x100);
    prof.access(0x108); // same line
    EXPECT_EQ(prof.coldAccesses(), 1u);
    EXPECT_EQ(prof.histogram()[0], 2u);
    // A 1-line cache would capture both reuses.
    EXPECT_DOUBLE_EQ(prof.missRatioAt(1), 1.0 / 3.0);
}

TEST(ReuseProfiler, CyclicSweepDistanceEqualsFootprint)
{
    // Sweeping N lines cyclically gives every reuse distance N-1.
    ReuseDistanceProfiler prof(64, 1 << 16);
    const int n = 16;
    for (int pass = 0; pass < 3; ++pass)
        for (int l = 0; l < n; ++l)
            prof.access(static_cast<Addr>(l) * 64);

    // LRU with >= n lines hits all reuses; with < n lines, none.
    double cold_floor = static_cast<double>(n) / (3.0 * n);
    EXPECT_NEAR(prof.missRatioAt(n), cold_floor, 1e-9);
    EXPECT_DOUBLE_EQ(prof.missRatioAt(n - 1), 1.0);
    EXPECT_EQ(prof.workingSetLines(0.01), 16u);
}

TEST(ReuseProfiler, MixedHotColdCurveHasTwoLevels)
{
    // A 4-line hot set touched between strides of a long stream: the
    // miss-ratio curve steps down at capacity ~5.
    ReuseDistanceProfiler prof(64, 1 << 18);
    Addr stream = 1 << 20;
    for (int i = 0; i < 2000; ++i) {
        prof.access(static_cast<Addr>(i % 4) * 64); // hot
        prof.access(stream);                        // cold stream
        stream += 64;
    }
    double small = prof.missRatioAt(2);
    double medium = prof.missRatioAt(8);
    EXPECT_GT(small, 0.9);
    // The hot half of the accesses hit once capacity covers hot+1.
    EXPECT_NEAR(medium, 0.5, 0.02);
}

TEST(ReuseProfiler, MissRatioIsMonotoneInCapacity)
{
    ReuseDistanceProfiler prof(64, 1 << 18);
    Rng rng(3);
    for (int i = 0; i < 50000; ++i)
        prof.access(rng.nextBounded(1 << 19));
    double prev = 1.1;
    for (std::uint64_t cap = 1; cap <= (1 << 14); cap <<= 1) {
        double mr = prof.missRatioAt(cap);
        EXPECT_LE(mr, prev + 1e-9);
        prev = mr;
    }
}

TEST(ReuseProfiler, MatchesFullyAssociativeLruSimulation)
{
    // Ground truth: the profiler's miss ratio at capacity C must equal
    // an actual C-line fully-associative LRU cache on the same stream.
    const std::uint64_t cap = 32;
    ReuseDistanceProfiler prof(64, 1 << 18);
    CacheParams p{"ref", cap * 64, 64, static_cast<std::uint32_t>(cap),
                  ReplPolicy::LRU};
    Cache ref(p);

    Rng rng(9);
    std::uint64_t misses = 0;
    std::uint64_t n = 20000;
    for (std::uint64_t i = 0; i < n; ++i) {
        // Skewed stream: hot region + occasional far touches.
        Addr a = rng.nextBool(0.7) ? rng.nextBounded(40) * 64
                                   : rng.nextBounded(1 << 16);
        prof.access(a);
        if (!ref.access(a, false).hit)
            ++misses;
    }
    double simulated = static_cast<double>(misses) / static_cast<double>(n);
    EXPECT_NEAR(prof.missRatioAt(cap), simulated, 1e-9);
}

TEST(ReuseProfiler, RespectsAccessBudget)
{
    ReuseDistanceProfiler prof(64, 100);
    for (int i = 0; i < 500; ++i)
        prof.access(static_cast<Addr>(i) * 64);
    EXPECT_EQ(prof.accesses(), 100u);
    EXPECT_TRUE(prof.saturated());
}

TEST(ReuseProfiler, IgnoresBusMessages)
{
    ReuseDistanceProfiler prof;
    BusTransaction msg;
    msg.kind = TxnKind::Message;
    msg.addr = 0xDA6D000000000000ull;
    prof.observe(msg);
    EXPECT_EQ(prof.accesses(), 0u);

    BusTransaction rd;
    rd.kind = TxnKind::ReadLine;
    rd.addr = 0x40;
    prof.observe(rd);
    EXPECT_EQ(prof.accesses(), 1u);
}

} // namespace
} // namespace cosim
