/**
 * @file
 * Unit tests for the host-parallelism primitives: ThreadPool (FIFO
 * dispatch, future results, exception propagation, drain-on-destruction)
 * and the bounded SpscQueue (ordering, backpressure, close semantics).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "base/mutex.hh"
#include "base/spsc_queue.hh"
#include "base/thread_pool.hh"

namespace cosim {
namespace {

TEST(ThreadPool, SubmitReturnsResultsThroughFutures)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    auto good = pool.submit([] { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // One task throwing must not take the pool down.
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder)
{
    std::vector<int> order;
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([i, &order] { order.push_back(i); });
        pool.wait();
    }
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 8; ++i) {
            pool.submit([&ran] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                ++ran;
            });
        }
        // Destroy while most tasks are still queued.
    }
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, WaitBlocksUntilEveryTaskFinished)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 24; ++i) {
        pool.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            ++ran;
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 24);
    EXPECT_EQ(pool.queuedTasks(), 0u);
    // wait() on an idle pool returns immediately.
    pool.wait();
}

TEST(ThreadPool, SizeAndHardwareThreads)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPoolDeathTest, ZeroWorkersIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT({ ThreadPool pool(0); }, ::testing::ExitedWithCode(1),
                "at least one worker");
}

TEST(SpscQueue, PreservesFifoOrder)
{
    SpscQueue<int> q(64);
    for (int i = 0; i < 32; ++i)
        q.push(i);
    int out = -1;
    for (int i = 0; i < 32; ++i) {
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(SpscQueue, CloseWakesConsumerAndDrains)
{
    SpscQueue<int> q(8);
    q.push(1);
    q.push(2);
    q.close();
    int out = 0;
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 2);
    // Closed and drained: pop reports end-of-stream.
    EXPECT_FALSE(q.pop(out));
}

TEST(SpscQueue, BackpressureBlocksProducerUntilConsumed)
{
    SpscQueue<int> q(2);
    std::atomic<int> pushed{0};
    std::thread producer([&] {
        for (int i = 0; i < 6; ++i) {
            q.push(i);
            ++pushed;
        }
    });
    // Capacity 2: the producer cannot get far ahead of the consumer.
    while (pushed.load() < 2)
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_LE(pushed.load(), 3); // 2 queued + 1 possibly mid-push
    int out = -1;
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
    producer.join();
    EXPECT_EQ(pushed.load(), 6);
    EXPECT_LE(q.peakDepth(), q.capacity());
}

TEST(SpscQueue, PeakDepthTracksHighWater)
{
    SpscQueue<int> q(16);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.peakDepth(), 3u);
    int out = 0;
    q.pop(out);
    q.pop(out);
    EXPECT_EQ(q.peakDepth(), 3u); // high water survives pops
    q.resetPeak();
    EXPECT_EQ(q.peakDepth(), 1u); // resets to current depth
}

TEST(Mutex, TryLockReportsContention)
{
    Mutex m;
    ASSERT_TRUE(m.tryLock());
    std::thread other([&] { EXPECT_FALSE(m.tryLock()); });
    other.join();
    m.unlock();
    ASSERT_TRUE(m.tryLock());
    m.unlock();
}

TEST(CondVar, WaitReleasesAndReacquiresTheMutex)
{
    Mutex m;
    CondVar cv;
    bool ready = false; // guarded by m (by convention in this test)
    std::thread signaller([&] {
        LockGuard lock(m);
        ready = true;
        cv.notifyOne();
    });
    {
        LockGuard lock(m);
        // The signaller can only make progress if wait() releases m.
        while (!ready)
            cv.wait(lock);
        EXPECT_TRUE(ready);
    }
    signaller.join();
}

} // namespace
} // namespace cosim
