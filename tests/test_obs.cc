/**
 * @file
 * Unit and integration tests for the observability layer: JSON
 * utilities, stats registry, trace session (including the Chrome-trace
 * round trip), host profiler, and run manifest.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "base/units.hh"
#include "core/cosim.hh"
#include "obs/host_profiler.hh"
#include "obs/json.hh"
#include "obs/run_manifest.hh"
#include "obs/stats_registry.hh"
#include "obs/trace_session.hh"
#include "test_util.hh"

namespace cosim {
namespace {

using obs::json::Value;

// ------------------------------------------------------------------ json

TEST(Json, QuoteEscapes)
{
    EXPECT_EQ(obs::json::quote("plain"), "\"plain\"");
    EXPECT_EQ(obs::json::quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(obs::json::quote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(obs::json::quote("a\nb"), "\"a\\nb\"");
    EXPECT_EQ(obs::json::quote(std::string("a\x01") + "b"),
              "\"a\\u0001b\"");
}

TEST(Json, NumberFormatting)
{
    EXPECT_EQ(obs::json::number(0.0), "0");
    EXPECT_EQ(obs::json::number(42.0), "42");
    EXPECT_EQ(obs::json::number(-3.0), "-3");
    // Non-integral values round-trip through strtod.
    Value v;
    ASSERT_TRUE(obs::json::parse(obs::json::number(2.5), v));
    EXPECT_DOUBLE_EQ(v.num, 2.5);
    ASSERT_TRUE(obs::json::parse(obs::json::number(1.0 / 3.0), v));
    EXPECT_DOUBLE_EQ(v.num, 1.0 / 3.0);
}

TEST(Json, ParsesScalars)
{
    Value v;
    ASSERT_TRUE(obs::json::parse("true", v));
    EXPECT_TRUE(v.isBool());
    EXPECT_TRUE(v.boolean);
    ASSERT_TRUE(obs::json::parse("null", v));
    EXPECT_TRUE(v.isNull());
    ASSERT_TRUE(obs::json::parse("-12.5e2", v));
    EXPECT_TRUE(v.isNumber());
    EXPECT_DOUBLE_EQ(v.num, -1250.0);
    ASSERT_TRUE(obs::json::parse("\"hi\\tthere\"", v));
    EXPECT_TRUE(v.isString());
    EXPECT_EQ(v.str, "hi\tthere");
}

TEST(Json, ParsesNestedStructure)
{
    Value v;
    ASSERT_TRUE(obs::json::parse(
        "{\"a\": [1, 2, {\"b\": false}], \"c\": {\"d\": \"e\"}}", v));
    ASSERT_TRUE(v.isObject());
    const Value* a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->size(), 3u);
    EXPECT_DOUBLE_EQ(a->arr[0].num, 1.0);
    const Value* b = a->arr[2].find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->boolean);
    const Value* c = v.find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->find("d")->str, "e");
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput)
{
    Value v;
    std::string error;
    EXPECT_FALSE(obs::json::parse("", v, &error));
    EXPECT_FALSE(obs::json::parse("{", v, &error));
    EXPECT_FALSE(obs::json::parse("[1, 2", v, &error));
    EXPECT_FALSE(obs::json::parse("{\"a\" 1}", v, &error));
    EXPECT_FALSE(obs::json::parse("tru", v, &error));
    EXPECT_FALSE(obs::json::parse("\"unterminated", v, &error));
    EXPECT_FALSE(obs::json::parse("{} trailing", v, &error));
    EXPECT_FALSE(error.empty());
}

// -------------------------------------------------------- stats registry

TEST(StatsRegistry, RegistersAndDumpsText)
{
    obs::StatsRegistry registry;
    stats::Counter hits;
    hits += 7;

    stats::Group g("llc");
    g.add("hits", &hits);
    g.add("ratio", [] { return 0.5; });
    registry.add(std::move(g));

    EXPECT_EQ(registry.size(), 1u);
    std::string text = registry.dumpText();
    EXPECT_NE(text.find("llc.hits 7"), std::string::npos);
    EXPECT_NE(text.find("llc.ratio 0.5"), std::string::npos);
}

TEST(StatsRegistry, ReplacesGroupsByName)
{
    obs::StatsRegistry registry;
    registry.makeGroup("a").add("x", [] { return 1.0; });
    registry.makeGroup("b").add("y", [] { return 2.0; });
    // Re-registering "a" replaces the old group instead of duplicating.
    registry.makeGroup("a").add("x", [] { return 3.0; });

    EXPECT_EQ(registry.size(), 2u);
    std::string text = registry.dumpText();
    EXPECT_EQ(text.find("a.x 1"), std::string::npos);
    EXPECT_NE(text.find("a.x 3"), std::string::npos);
    ASSERT_NE(registry.find("b"), nullptr);
    EXPECT_EQ(registry.find("zzz"), nullptr);
}

TEST(StatsRegistry, JsonDumpParses)
{
    obs::StatsRegistry registry;
    stats::Group g("cpu0.l1");
    g.add("misses", [] { return 41.0; });
    g.add("rate \"q\"", [] { return 0.25; }); // name needing escaping
    registry.add(std::move(g));

    Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(registry.dumpJson(), doc, &error))
        << error;
    const Value* group = doc.find("cpu0.l1");
    ASSERT_NE(group, nullptr);
    EXPECT_DOUBLE_EQ(group->find("misses")->num, 41.0);
    EXPECT_DOUBLE_EQ(group->find("rate \"q\"")->num, 0.25);
}

TEST(StatsRegistry, CsvDump)
{
    obs::StatsRegistry registry;
    registry.makeGroup("dex").add("rounds", [] { return 12.0; });
    std::string csv = registry.dumpCsv();
    EXPECT_NE(csv.find("stat,value\n"), std::string::npos);
    EXPECT_NE(csv.find("dex.rounds,12"), std::string::npos);
}

// --------------------------------------------------------- trace session

class TraceSessionTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::TraceSession::global().stop();
        obs::TraceSession::global().clear();
    }

    void TearDown() override
    {
        obs::TraceSession::global().stop();
        obs::TraceSession::global().clear();
    }
};

TEST_F(TraceSessionTest, InactiveSessionRecordsNothing)
{
    obs::TraceSession& s = obs::TraceSession::global();
    EXPECT_FALSE(s.active());
    s.recordCounter(obs::TraceDomain::Host, "x", 1.0, 2.0);
    {
        TRACE_SPAN("test", "scope");
        TRACE_COUNTER("c", 1);
        TRACE_INSTANT("test", "marker");
    }
    EXPECT_EQ(s.eventCount(), 0u);
}

TEST_F(TraceSessionTest, MacrosRecordWhileActive)
{
    obs::TraceSession& s = obs::TraceSession::global();
    s.start();
    {
        TRACE_SPAN("test", "scope");
        TRACE_COUNTER("gauge", 5);
        TRACE_INSTANT("test", "marker");
    }
    s.stop();
    EXPECT_EQ(s.eventCount(), 3u);

    bool saw_span = false, saw_counter = false, saw_instant = false;
    for (const obs::TraceEvent& e : s.events()) {
        switch (e.phase) {
          case obs::TraceEvent::Phase::Complete:
            saw_span = e.name == "scope" && e.durUs >= 0.0;
            break;
          case obs::TraceEvent::Phase::Counter:
            saw_counter = e.name == "gauge" && e.value == 5.0;
            break;
          case obs::TraceEvent::Phase::Instant:
            saw_instant = e.name == "marker";
            break;
        }
    }
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_instant);
}

TEST_F(TraceSessionTest, StartClearsPreviousEvents)
{
    obs::TraceSession& s = obs::TraceSession::global();
    s.start();
    s.recordCounter(obs::TraceDomain::Host, "x", 1.0, 1.0);
    s.stop();
    EXPECT_EQ(s.eventCount(), 1u);
    s.start();
    EXPECT_EQ(s.eventCount(), 0u);
}

TEST_F(TraceSessionTest, ExportRoundTripsThroughJsonParser)
{
    obs::TraceSession& s = obs::TraceSession::global();
    s.start();
    // Record simulated-domain events deliberately out of time order;
    // the exporter must order each process's events by timestamp.
    s.recordComplete(obs::TraceDomain::Simulated, 2, "dex", "quantum",
                     300.0, 50.0, 1000.0, true);
    s.recordComplete(obs::TraceDomain::Simulated, 0, "dex", "quantum",
                     100.0, 40.0, 900.0, true);
    s.recordCounter(obs::TraceDomain::Simulated, "llc.mpki", 500.0, 3.5);
    s.recordInstant(obs::TraceDomain::Host, 0, "sweep", "start", 1.0);
    s.stop();

    Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(s.exportJson(), doc, &error)) << error;

    const Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // 2 process-name metadata + 4 recorded events.
    ASSERT_EQ(events->size(), 6u);

    // Timestamps must be monotonically non-decreasing within each pid.
    std::map<double, double> last_ts;
    for (const Value& e : events->arr) {
        if (e.find("ph")->str == "M")
            continue;
        double pid = e.find("pid")->num;
        double ts = e.find("ts")->num;
        if (last_ts.count(pid)) {
            EXPECT_GE(ts, last_ts[pid]);
        }
        last_ts[pid] = ts;
    }

    // Spot-check the counter event's shape.
    bool found_counter = false;
    for (const Value& e : events->arr) {
        if (e.find("ph")->str != "C")
            continue;
        found_counter = true;
        EXPECT_EQ(e.find("name")->str, "llc.mpki");
        EXPECT_DOUBLE_EQ(e.find("ts")->num, 500.0);
        EXPECT_DOUBLE_EQ(e.find("args")->find("value")->num, 3.5);
    }
    EXPECT_TRUE(found_counter);
}

TEST_F(TraceSessionTest, CoSimulationRunEmitsQuantumSpansAndCbCounters)
{
    PlatformParams p;
    p.nCores = 4;
    p.cpu.baseCpi = 1.0;
    p.cpu.caches.l1 = {"l1", 1 * KiB, 64, 2, ReplPolicy::LRU};
    p.cpu.caches.hasL2 = false;
    p.cpu.useDramLatency = false;
    p.cpu.emitFsbTraffic = true;
    p.dex.quantumInsts = 2000;

    CoSimParams params;
    params.platform = p;
    DragonheadParams dh;
    dh.llc = {"llc", 64 * KiB, 64, 4, ReplPolicy::LRU};
    dh.nSlices = 4;
    dh.maxCores = 8;
    // 1 GHz, 500 us windows -> one window per 500k emulated cycles.
    dh.cb.coreFreqGhz = 1.0;
    params.emulators = {dh};
    CoSimulation cosim(params);

    obs::TraceSession& s = obs::TraceSession::global();
    s.start();
    test::LoopWorkload wl(64 * KiB, 8);
    WorkloadConfig cfg;
    cfg.nThreads = 4;
    RunResult r = cosim.run(wl, cfg);
    s.stop();
    EXPECT_TRUE(r.verified);

    // Every virtual core must contribute at least one DEX quantum span,
    // and the spans must carry positive durations on the simulated axis.
    std::map<std::uint32_t, std::uint64_t> spans_per_core;
    std::size_t cb_counters = 0;
    for (const obs::TraceEvent& e : s.events()) {
        if (e.phase == obs::TraceEvent::Phase::Complete &&
            e.category == "dex") {
            EXPECT_EQ(e.domain, obs::TraceDomain::Simulated);
            EXPECT_GE(e.durUs, 0.0);
            ++spans_per_core[e.tid];
        }
        if (e.phase == obs::TraceEvent::Phase::Counter &&
            e.name.find(".mpki") != std::string::npos)
            ++cb_counters;
    }
    EXPECT_EQ(spans_per_core.size(), 4u);
    for (const auto& [core, n] : spans_per_core) {
        EXPECT_GE(n, 1u) << "core " << core;
    }

    // One counter sample per closed CB window (incl. the flushed tail).
    EXPECT_EQ(cb_counters, cosim.emulator(0).samples().size());
    EXPECT_GT(cb_counters, 0u);

    // And the whole trace must still be valid, ordered JSON.
    Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(s.exportJson(), doc, &error)) << error;
}

// ---------------------------------------------------------- host profiler

TEST(HostProfiler, AccumulatesPhasesAndMips)
{
    obs::HostProfiler prof;
    prof.accumulate("setup", 0.5);
    prof.accumulate("setup", 0.25);
    prof.accumulate("report", 1.0);
    prof.addSimulated(30'000'000, 1.5);

    EXPECT_DOUBLE_EQ(prof.seconds("setup"), 0.75);
    EXPECT_EQ(prof.calls("setup"), 2u);
    EXPECT_DOUBLE_EQ(prof.seconds("report"), 1.0);
    EXPECT_DOUBLE_EQ(prof.seconds("missing"), 0.0);
    EXPECT_DOUBLE_EQ(prof.simulatedMips(), 20.0);

    stats::Group g = prof.statsGroup("host");
    std::string dump = g.dump();
    EXPECT_NE(dump.find("host.setup.seconds 0.75"), std::string::npos);
    EXPECT_NE(dump.find("host.sim_mips 20"), std::string::npos);

    prof.reset();
    EXPECT_EQ(prof.calls("setup"), 0u);
    EXPECT_DOUBLE_EQ(prof.simulatedMips(), 0.0);
}

TEST(HostProfiler, ScopeMeasuresWallClock)
{
    obs::HostProfiler prof;
    {
        obs::ProfileScope scope("busy", prof);
    }
    EXPECT_EQ(prof.calls("busy"), 1u);
    EXPECT_GE(prof.seconds("busy"), 0.0);
}

TEST(HostProfiler, MipsSampleTimestampsStayMonotoneAcrossReset)
{
    obs::HostProfiler prof;
    prof.addSimulated(1'000'000, 0.5);
    std::vector<obs::HostProfiler::MipsSample> before =
        prof.mipsSamples();
    ASSERT_EQ(before.size(), 1u);
    EXPECT_DOUBLE_EQ(before[0].mips, 2.0);

    // reset() clears the ring but must not move the clock origin:
    // samples fed afterwards still compare against pre-reset telemetry.
    prof.reset();
    EXPECT_TRUE(prof.mipsSamples().empty());
    prof.addSimulated(2'000'000, 0.5);
    std::vector<obs::HostProfiler::MipsSample> after =
        prof.mipsSamples();
    ASSERT_EQ(after.size(), 1u);
    EXPECT_DOUBLE_EQ(after[0].mips, 4.0);
    EXPECT_GE(after[0].tUs, before[0].tUs);
}

TEST(HostProfiler, MipsSampleRingKeepsTheNewestSamples)
{
    obs::HostProfiler prof;
    for (std::size_t i = 0; i < obs::HostProfiler::kMaxMipsSamples + 10;
         ++i) {
        prof.addSimulated(i * 1'000'000, 1.0);
    }
    // Only the newest kMaxMipsSamples survive, in feed order.
    std::vector<obs::HostProfiler::MipsSample> samples =
        prof.mipsSamples();
    ASSERT_EQ(samples.size(), obs::HostProfiler::kMaxMipsSamples);
    EXPECT_DOUBLE_EQ(samples.back().mips,
                     static_cast<double>(
                         obs::HostProfiler::kMaxMipsSamples + 9));
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GE(samples[i].tUs, samples[i - 1].tUs);
}

TEST_F(TraceSessionTest, HostTimestampsDoNotRezeroAcrossRestart)
{
    obs::TraceSession& s = obs::TraceSession::global();
    s.start();
    double t0 = s.hostNowUs();
    s.stop();
    s.start();
    // A restart used to re-capture the origin, re-zeroing host spans
    // against everything stamped with the process-wide clock.
    double t1 = s.hostNowUs();
    s.stop();
    EXPECT_GE(t1, t0);
}

// ----------------------------------------------------------- run manifest

TEST(RunManifest, JsonRoundTrip)
{
    obs::RunManifest m;
    m.figureId = "Figure 4 (SCMP)";
    m.platform = "SCMP";
    m.nCores = 8;
    m.scale = 0.05;
    m.seed = 42;
    m.seedSource = "cli";
    m.configTicks = {"4MB", "8MB"};
    m.hostSimMips = 33.5;
    m.hostPhases.push_back({"run", 1.25, 8});

    obs::ManifestWorkload w;
    w.name = "FIMI";
    w.totalInsts = 123456789;
    w.hostSeconds = 3.5;
    w.simMips = 35.3;
    w.verified = true;
    w.mpkiPerConfig = {4.5, 1.25};
    w.seriesTimeUs = {500.0, 1000.0};
    w.seriesMpki = {5.0, 4.0};
    m.workloads.push_back(w);

    Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(m.toJson(), doc, &error)) << error;

    EXPECT_EQ(doc.find("schema")->str, obs::kManifestSchema);
    EXPECT_FALSE(doc.find("git")->str.empty());
    EXPECT_EQ(doc.find("figure")->str, "Figure 4 (SCMP)");
    EXPECT_DOUBLE_EQ(doc.find("platform")->find("cores")->num, 8.0);
    EXPECT_DOUBLE_EQ(doc.find("config")->find("scale")->num, 0.05);
    EXPECT_DOUBLE_EQ(doc.find("config")->find("seed")->num, 42.0);
    EXPECT_EQ(doc.find("config")->find("seed_source")->str, "cli");
    ASSERT_EQ(doc.find("config")->find("ticks")->size(), 2u);

    const Value* workloads = doc.find("workloads");
    ASSERT_EQ(workloads->size(), 1u);
    const Value& wl = workloads->arr[0];
    EXPECT_EQ(wl.find("name")->str, "FIMI");
    EXPECT_DOUBLE_EQ(wl.find("insts")->num, 123456789.0);
    EXPECT_TRUE(wl.find("verified")->boolean);
    ASSERT_EQ(wl.find("mpki_per_config")->size(), 2u);
    EXPECT_DOUBLE_EQ(wl.find("mpki_per_config")->arr[1].num, 1.25);
    const Value* series = wl.find("mpki_series");
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->find("time_us")->size(), 2u);
    EXPECT_DOUBLE_EQ(series->find("mpki")->arr[0].num, 5.0);

    const Value* host = doc.find("host");
    EXPECT_DOUBLE_EQ(host->find("sim_mips")->num, 33.5);
    ASSERT_EQ(host->find("phases")->size(), 1u);
    EXPECT_EQ(host->find("phases")->arr[0].find("name")->str, "run");
}

TEST(RunManifest, WritesFile)
{
    obs::RunManifest m;
    m.figureId = "test";
    std::string path = ::testing::TempDir() + "cosim_manifest_test.json";
    m.writeJson(path);

    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    buf[n] = '\0';

    Value doc;
    ASSERT_TRUE(obs::json::parse(buf, doc));
    EXPECT_EQ(doc.find("figure")->str, "test");
}

} // namespace
} // namespace cosim
