/**
 * @file
 * Tests for the bench harness: option parsing, output dirs, and a tiny
 * end-to-end sweep through the SweepRunner path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>

#include "base/fault.hh"
#include "base/units.hh"
#include "harness/report.hh"
#include "harness/sweep_runner.hh"
#include "obs/json.hh"

namespace cosim {
namespace {

BenchOptions
parse(std::vector<std::string> args)
{
    std::vector<char*> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (auto& a : args)
        argv.push_back(a.data());
    return parseBenchArgs(static_cast<int>(argv.size()), argv.data(),
                          "test");
}

TEST(BenchOptions, Defaults)
{
    BenchOptions o = parse({});
    EXPECT_DOUBLE_EQ(o.scale, 1.0);
    EXPECT_EQ(o.seed, 42u);
    EXPECT_EQ(o.workloads.size(), 8u);
    EXPECT_EQ(o.outDir, "results");
    EXPECT_TRUE(o.strictVerify);
}

TEST(BenchOptions, ScaleAndQuick)
{
    EXPECT_DOUBLE_EQ(parse({"--scale=0.25"}).scale, 0.25);
    EXPECT_DOUBLE_EQ(parse({"--quick"}).scale, 0.05);
}

TEST(BenchOptions, WorkloadSubset)
{
    BenchOptions o = parse({"--workloads=FIMI, MDS"});
    ASSERT_EQ(o.workloads.size(), 2u);
    EXPECT_EQ(o.workloads[0], "FIMI");
    EXPECT_EQ(o.workloads[1], "MDS");
}

TEST(BenchOptions, SeedOutAndVerify)
{
    BenchOptions o =
        parse({"--seed=7", "--out=/tmp/x", "--no-verify"});
    EXPECT_EQ(o.seed, 7u);
    EXPECT_EQ(o.outDir, "/tmp/x");
    EXPECT_FALSE(o.strictVerify);
}

TEST(BenchOptions, RobustnessFlags)
{
    BenchOptions o = parse({"--keep-going", "--retry-cells=2",
                            "--cell-timeout=1.5", "--degrade-serial"});
    EXPECT_TRUE(o.keepGoing);
    EXPECT_EQ(o.retryCells, 2u);
    EXPECT_DOUBLE_EQ(o.cellTimeout, 1.5);
    EXPECT_TRUE(o.degradeSerial);

    BenchOptions d = parse({});
    EXPECT_FALSE(d.keepGoing);
    EXPECT_EQ(d.retryCells, 0u);
    EXPECT_DOUBLE_EQ(d.cellTimeout, 0.0);
    EXPECT_FALSE(d.degradeSerial);
    EXPECT_TRUE(d.faults.empty());
}

TEST(BenchOptions, FaultsFlagArmsThePlanWithTheRunSeed)
{
    BenchOptions o = parse({"--faults=cell.throw:nth=5", "--seed=9"});
    EXPECT_EQ(o.faults, "cell.throw:nth=5");
    EXPECT_TRUE(FaultInjector::enabled());
    FaultInjector& inj = FaultInjector::global();
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(inj.shouldFail("cell.throw")) << i;
    EXPECT_TRUE(inj.shouldFail("cell.throw"));
    // Disarm so the plan cannot leak into later tests.
    inj.disarm();
    EXPECT_FALSE(FaultInjector::enabled());
}

TEST(BenchOptions, EnsureOutputDirCreates)
{
    std::string dir = ::testing::TempDir() + "cosim_outdir_test";
    std::remove(dir.c_str());
    ensureOutputDir(dir);
    struct stat st{};
    ASSERT_EQ(stat(dir.c_str(), &st), 0);
    EXPECT_TRUE(S_ISDIR(st.st_mode));
    ensureOutputDir(dir); // idempotent
    rmdir(dir.c_str());
}

TEST(SweepRunner, TinyEndToEndFigure)
{
    // A miniature version of the Figure 4 path: 2 cores, the real LLC
    // sweep emulators, one small workload.
    BenchOptions opts;
    opts.scale = 0.02;
    opts.workloads = {"PLSA"};

    PlatformParams platform = presets::cmpPlatform("tiny", 2);
    SweepRunner runner(opts);
    FigureData fig = runner.runCacheSizeFigure("FigTest", platform);

    ASSERT_EQ(fig.seriesNames().size(), 1u);
    const auto& series = fig.series("PLSA");
    ASSERT_EQ(series.size(), 7u);
    // MPKI must be non-increasing along the size sweep.
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_LE(series[i], series[i - 1] + 1e-9);

    const auto& points = fig.points("PLSA");
    ASSERT_EQ(points.size(), 7u);
    EXPECT_EQ(points[0].llcSize, 4 * MiB);
    EXPECT_EQ(points[0].nCores, 2u);
    EXPECT_GT(points[0].insts, 0u);
}

TEST(SweepRunner, SampledCellRetryRebuildsTheSamplingRecord)
{
    // An injected throw fails the sampled cell's first attempt (hit 1
    // is the profile cell, hit 2 the sampled cell); --retry-cells=1
    // re-runs it on a fresh rig, and the retried attempt must rebuild
    // the full sampled-simulation record -- estimates, error-vs-full
    // baseline, coverage -- not just the figure row.
    std::string dir = ::testing::TempDir() + "cosim_sampled_retry";
    ensureOutputDir(dir);
    BenchOptions opts;
    opts.scale = 0.02;
    opts.workloads = {"PLSA"};
    opts.cells = CellMode::Sampled;
    opts.retryCells = 1;
    opts.samplePeriodUs = 50; // quick-style: enough windows to cluster
    opts.outDir = dir;
    opts.manifestFile = dir + "/run.json";

    PlatformParams platform = presets::cmpPlatform("tiny", 2);
    FigureData fig = [&] {
        ScopedFaultPlan plan("cell.throw:nth=2");
        SweepRunner runner(opts);
        return runner.runCacheSizeFigure("FigRetry", platform);
    }();

    // The figure row is real data, tagged with the attempt history.
    EXPECT_EQ(fig.status("PLSA"), "retried");
    ASSERT_EQ(fig.series("PLSA").size(), 7u);

    std::ifstream in(dir + "/run.json");
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(text, doc, &error)) << error;
    const obs::json::Value* workloads = doc.find("workloads");
    ASSERT_NE(workloads, nullptr);
    ASSERT_EQ(workloads->arr.size(), 1u);
    const obs::json::Value& w = workloads->arr[0];
    EXPECT_EQ(w.find("status")->str, "retried");
    EXPECT_EQ(w.find("attempts")->num, 2.0);
    const obs::json::Value* sampling = w.find("sampling");
    ASSERT_NE(sampling, nullptr)
        << "retry dropped the sampling record";
    EXPECT_GE(sampling->find("intervals")->num, 1.0);
    EXPECT_GT(sampling->find("coverage")->num, 0.0);
    // The profile pass succeeded (hit 1 did not fire), so the error
    // baseline must be present too.
    EXPECT_NE(sampling->find("error"), nullptr);
}

} // namespace
} // namespace cosim
