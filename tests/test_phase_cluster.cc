/**
 * @file
 * Phase clustering and sampled-simulation suite.
 *
 * The tentpole property: a sampling plan is a pure function of the CB
 * sample series and the seed -- the same inputs produce byte-identical
 * plan JSON on every run and on every thread -- and a --cells=sampled
 * sweep built from such a plan reproduces the full run's figures within
 * the accuracy gate's tolerance, deterministically (same plan + seed
 * means byte-identical figure CSVs).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/atomic_file.hh"
#include "core/experiment.hh"
#include "core/results.hh"
#include "harness/sweep_runner.hh"
#include "trace/phase_cluster.hh"
#include "test_util.hh"

namespace cosim {
namespace {

/** One CB window with round numbers derived from a phase shape. */
Sample
window(std::size_t index, std::uint64_t insts, std::uint64_t accesses,
       std::uint64_t misses)
{
    Sample s;
    s.timeUs = 500.0 * static_cast<double>(index + 1);
    s.insts = insts;
    s.cycles = 2 * insts;
    s.accesses = accesses;
    s.misses = misses;
    return s;
}

/**
 * A three-phase synthetic series: a streaming prefix (high MPKI), a
 * compute body (low MPKI, higher IPC) and a mixed tail, 30 windows.
 */
std::vector<Sample>
threePhaseSeries()
{
    std::vector<Sample> s;
    for (std::size_t i = 0; i < 10; ++i)
        s.push_back(window(s.size(), 10000, 900, 600));
    for (std::size_t i = 0; i < 15; ++i)
        s.push_back(window(s.size(), 40000, 400, 20));
    for (std::size_t i = 0; i < 5; ++i)
        s.push_back(window(s.size(), 20000, 700, 250));
    return s;
}

PhaseClusterParams
defaultParams()
{
    PhaseClusterParams p;
    p.maxPhases = 4;
    p.seed = 42;
    p.warmupWindows = 2;
    return p;
}

// ---------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------

TEST(PhaseCluster, SameSeriesAndSeedYieldByteIdenticalPlans)
{
    const std::vector<Sample> series = threePhaseSeries();
    const std::string a =
        clusterPhases(series, "synth", defaultParams()).toJson();
    const std::string b =
        clusterPhases(series, "synth", defaultParams()).toJson();
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(PhaseCluster, DeterministicAcrossHostThreads)
{
    // Interval selection must not depend on host scheduling: the same
    // clustering run concurrently on several threads produces the same
    // bytes as the serial reference.
    const std::vector<Sample> series = threePhaseSeries();
    const std::string reference =
        clusterPhases(series, "synth", defaultParams()).toJson();

    std::vector<std::string> produced(4);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < produced.size(); ++t) {
        threads.emplace_back([&, t] {
            produced[t] =
                clusterPhases(series, "synth", defaultParams()).toJson();
        });
    }
    for (std::thread& th : threads)
        th.join();
    for (const std::string& p : produced)
        EXPECT_EQ(p, reference);
}

TEST(PhaseCluster, SeedSelectsTheClustering)
{
    const std::vector<Sample> series = threePhaseSeries();
    PhaseClusterParams a = defaultParams();
    PhaseClusterParams b = defaultParams();
    b.seed = 43;
    // Different seeds may legitimately converge to the same optimum;
    // what matters is that the seed is recorded so the plan's
    // provenance is reproducible.
    EXPECT_EQ(clusterPhases(series, "synth", a).seed, 42u);
    EXPECT_EQ(clusterPhases(series, "synth", b).seed, 43u);
}

// ---------------------------------------------------------------------
// Plan structure.
// ---------------------------------------------------------------------

TEST(PhaseCluster, EmptySeriesYieldsEmptyValidPlan)
{
    SamplingPlan plan =
        clusterPhases({}, "empty", defaultParams());
    EXPECT_TRUE(plan.intervals.empty());
    EXPECT_EQ(plan.totalWindows, 0u);
    EXPECT_EQ(plan.coverage(), 0.0);
    EXPECT_TRUE(plan.validate().empty()) << plan.validate();
}

TEST(PhaseCluster, AllIdenticalSeriesIsOnePhaseWithWeightOne)
{
    std::vector<Sample> flat;
    for (std::size_t i = 0; i < 20; ++i)
        flat.push_back(window(i, 10000, 500, 100));
    SamplingPlan plan = clusterPhases(flat, "flat", defaultParams());
    ASSERT_EQ(plan.intervals.size(), 1u);
    EXPECT_EQ(plan.intervals[0].windows, 20u);
    EXPECT_DOUBLE_EQ(plan.intervals[0].weight, 1.0);
    EXPECT_DOUBLE_EQ(plan.intervals[0].instWeight, 1.0);
    EXPECT_TRUE(plan.validate().empty()) << plan.validate();
}

TEST(PhaseCluster, WeightsAndInstWeightsSumToOne)
{
    SamplingPlan plan =
        clusterPhases(threePhaseSeries(), "synth", defaultParams());
    ASSERT_GE(plan.intervals.size(), 2u);
    double weight_sum = 0.0;
    double inst_sum = 0.0;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < plan.intervals.size(); ++i) {
        const PlanInterval& iv = plan.intervals[i];
        EXPECT_LT(iv.window, plan.totalWindows);
        if (i > 0)
            EXPECT_GT(iv.window, prev);
        prev = iv.window;
        EXPECT_EQ(iv.phase, i); // dense ids in window order
        weight_sum += iv.weight;
        inst_sum += iv.instWeight;
    }
    EXPECT_NEAR(weight_sum, 1.0, 1e-12);
    EXPECT_NEAR(inst_sum, 1.0, 1e-12);
    EXPECT_TRUE(plan.validate().empty()) << plan.validate();
}

TEST(PhaseCluster, InstWeightTracksWorkNotTime)
{
    // The compute body retires 4x the instructions of the streaming
    // prefix per window; its interval's instWeight must exceed its
    // window-count weight (CB windows are equal time, not equal work).
    SamplingPlan plan =
        clusterPhases(threePhaseSeries(), "synth", defaultParams());
    bool saw_compute = false;
    for (const PlanInterval& iv : plan.intervals) {
        if (iv.window >= 10 && iv.window < 25) {
            EXPECT_GT(iv.instWeight, iv.weight);
            saw_compute = true;
        }
    }
    EXPECT_TRUE(saw_compute);
}

TEST(PhaseCluster, CoverageMergesOverlappingWarmupRanges)
{
    // Two intervals whose warm-up prefixes overlap: windows 2 and 3
    // with 2 warm-up windows each cover the union [0, 3], four
    // windows -- not 3 + 3 = 6.
    SamplingPlan plan;
    plan.workload = "hand";
    plan.totalWindows = 10;
    plan.warmupWindows = 2;
    PlanInterval a;
    a.window = 2;
    a.phase = 0;
    a.windows = 5;
    a.weight = 0.5;
    a.instWeight = 0.5;
    PlanInterval b = a;
    b.window = 3;
    b.phase = 1;
    plan.intervals = {a, b};
    EXPECT_DOUBLE_EQ(plan.coverage(), 0.4);

    // Disjoint ranges add; warm-up clamps at window 0.
    plan.intervals[1].window = 8; // [6, 8] after [0, 2]
    EXPECT_DOUBLE_EQ(plan.coverage(), 0.6);
    EXPECT_TRUE(plan.validate().empty()) << plan.validate();
}

// ---------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------

TEST(SamplingPlanJson, RoundTripIsByteIdentical)
{
    SamplingPlan plan =
        clusterPhases(threePhaseSeries(), "synth", defaultParams());
    const std::string text = plan.toJson();

    SamplingPlan parsed;
    std::string error;
    ASSERT_TRUE(SamplingPlan::parse(text, parsed, &error)) << error;
    EXPECT_EQ(parsed.toJson(), text);
    EXPECT_EQ(parsed.workload, plan.workload);
    EXPECT_EQ(parsed.intervals.size(), plan.intervals.size());
}

TEST(SamplingPlanJson, ParseRejectsDefects)
{
    SamplingPlan plan =
        clusterPhases(threePhaseSeries(), "synth", defaultParams());
    SamplingPlan out;
    std::string error;

    // Wrong schema.
    std::string text = plan.toJson();
    std::size_t pos = text.find("cosim-plan/1");
    ASSERT_NE(pos, std::string::npos);
    std::string bad = text;
    bad.replace(pos, 12, "cosim-plan/9");
    EXPECT_FALSE(SamplingPlan::parse(bad, out, &error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;

    // Weights that no longer sum to 1.
    SamplingPlan tampered = plan;
    tampered.intervals[0].weight += 0.25;
    EXPECT_FALSE(
        SamplingPlan::parse(tampered.toJson(), out, &error));
    EXPECT_NE(error.find("sum"), std::string::npos) << error;

    // A window outside the profiled series.
    tampered = plan;
    tampered.intervals.back().window = tampered.totalWindows + 3;
    EXPECT_FALSE(
        SamplingPlan::parse(tampered.toJson(), out, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;

    // Out-of-order windows.
    tampered = plan;
    std::swap(tampered.intervals.front().window,
              tampered.intervals.back().window);
    EXPECT_FALSE(
        SamplingPlan::parse(tampered.toJson(), out, &error));
    EXPECT_NE(error.find("ascending"), std::string::npos) << error;

    EXPECT_FALSE(SamplingPlan::parse("not json", out, &error));
}

TEST(SamplingPlanIo, WriteFileLoadRoundTripAndErrors)
{
    SamplingPlan plan =
        clusterPhases(threePhaseSeries(), "synth", defaultParams());
    const std::string path =
        planPath(testing::TempDir() + "phase_cluster_io", "synth");
    plan.writeFile(path);

    SamplingPlan loaded;
    std::string error;
    ASSERT_TRUE(SamplingPlan::load(path, loaded, &error)) << error;
    EXPECT_EQ(loaded.toJson(), plan.toJson());
    std::remove(path.c_str());

    // A bad directory throws IoError (isolatable under --keep-going).
    EXPECT_THROW(plan.writeFile("/nonexistent-dir/x.plan.json"),
                 IoError);
    // load() reports unreadable paths instead of throwing.
    EXPECT_FALSE(SamplingPlan::load("/nonexistent/x.plan.json", loaded,
                                    &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(SamplingPlanIo, PlanPathMirrorsStreamPathConvention)
{
    EXPECT_EQ(planPath("results/fig4.plan.json", "PLSA"),
              "results/fig4.PLSA.plan.json");
    EXPECT_EQ(planPath("results/fig4", "PLSA"),
              "results/fig4.PLSA.plan.json");
}

// ---------------------------------------------------------------------
// End to end: sampled sweep vs the full run.
// ---------------------------------------------------------------------

FigureData
runSweep(CellMode cells, const std::string& plan_out = "",
         const std::string& plan = "")
{
    BenchOptions opts;
    opts.scale = 0.02;
    opts.workloads = {"PLSA", "FIMI"};
    opts.cells = cells;
    opts.planOutBase = plan_out;
    opts.planBase = plan;

    PlatformParams platform = presets::cmpPlatform("tiny", 2);
    return SweepRunner(opts).runLineSizeFigure("FigSampledTest",
                                               platform);
}

TEST(SampledSweep, MatchesFullRunWithinToleranceAndRecordsError)
{
    FigureData full = runSweep(CellMode::Combined);
    FigureData sampled = runSweep(CellMode::Sampled);
    ASSERT_EQ(full.seriesNames(), sampled.seriesNames());

    // The accuracy gate's default bound: every per-configuration MPKI
    // estimate within 5% of the full run's measurement.
    for (const std::string& name : full.seriesNames()) {
        const std::vector<double>& ref = full.series(name);
        const std::vector<double>& est = sampled.series(name);
        ASSERT_EQ(ref.size(), est.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            const double denom = ref[i] != 0.0 ? std::abs(ref[i]) : 1.0;
            EXPECT_LE(std::abs(est[i] - ref[i]) / denom, 0.05)
                << name << " config " << i << ": full " << ref[i]
                << " vs sampled " << est[i];
        }
        // The sweep measured its own error against the in-cell
        // reference and recorded it for the CSV's sampling_err column.
        EXPECT_GE(sampled.samplingError(name), 0.0) << name;
        EXPECT_LE(sampled.samplingError(name), 0.05) << name;
        EXPECT_LT(full.samplingError(name), 0.0) << name;
    }
}

TEST(SampledSweep, SamePlanAndSeedYieldByteIdenticalCsvs)
{
    const std::string plan_base =
        testing::TempDir() + "sampled_det.plan.json";
    FigureData first = runSweep(CellMode::Sampled, plan_base);
    FigureData second =
        runSweep(CellMode::Sampled, "", plan_base);

    auto csv_bytes = [](const FigureData& fig, const std::string& tag) {
        const std::string path =
            testing::TempDir() + "sampled_det_" + tag + ".csv";
        fig.writeCsv(path);
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        std::remove(path.c_str());
        return buf.str();
    };
    const std::string a = csv_bytes(first, "a");
    const std::string b = csv_bytes(second, "b");
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);

    for (const std::string& w : {std::string("PLSA"),
                                 std::string("FIMI")})
        std::remove(planPath(plan_base, w).c_str());
}

} // namespace
} // namespace cosim
