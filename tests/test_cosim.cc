/**
 * @file
 * Integration tests for the assembled co-simulation and the experiment
 * presets.
 */

#include <gtest/gtest.h>

#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "core/results.hh"
#include "test_util.hh"

namespace cosim {
namespace {

PlatformParams
smallCmp(unsigned cores)
{
    PlatformParams p;
    p.name = "testCMP";
    p.nCores = cores;
    p.cpu.baseCpi = 1.0;
    p.cpu.caches.l1 = {"l1", 1 * KiB, 64, 2, ReplPolicy::LRU};
    p.cpu.caches.hasL2 = false;
    p.cpu.useDramLatency = false;
    p.cpu.beyondLatency = 50;
    p.cpu.emitFsbTraffic = true;
    p.dex.quantumInsts = 2000;
    return p;
}

DragonheadParams
llc(std::uint64_t size)
{
    DragonheadParams dh;
    dh.llc = {"llc", size, 64, 4, ReplPolicy::LRU};
    dh.nSlices = 4;
    dh.maxCores = 8;
    return dh;
}

TEST(CoSimulation, MpkiShrinksWithCacheSize)
{
    CoSimParams params;
    params.platform = smallCmp(4);
    // Per-thread arrays of 16 KB -> 64 KB total working set. LRU thrashes
    // cyclic sweeps for any capacity below the working set, so the
    // interesting comparison is thrash vs exactly-fits vs ample.
    params.emulators = {llc(8 * KiB), llc(64 * KiB), llc(256 * KiB)};
    CoSimulation cosim(params);

    test::LoopWorkload wl(16 * KiB, 6);
    WorkloadConfig cfg;
    cfg.nThreads = 4;
    RunResult r = cosim.run(wl, cfg);
    EXPECT_TRUE(r.verified);

    std::vector<double> mpki = cosim.mpkis();
    ASSERT_EQ(mpki.size(), 3u);
    EXPECT_GT(mpki[0], 2.0 * mpki[1]);
    EXPECT_GE(mpki[1], mpki[2]);
    // A capture-everything LLC leaves essentially only cold misses.
    EXPECT_LT(mpki[2], mpki[0] / 4.0);
}

TEST(CoSimulation, EmulatorsSeeTheSameExecution)
{
    CoSimParams params;
    params.platform = smallCmp(2);
    params.emulators = {llc(32 * KiB), llc(32 * KiB)};
    CoSimulation cosim(params);

    test::LoopWorkload wl(8 * KiB, 3);
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    cosim.run(wl, cfg);

    LlcResults a = cosim.emulator(0).results();
    LlcResults b = cosim.emulator(1).results();
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.insts, b.insts);
}

TEST(CoSimulation, EmulatorInstsMatchPlatform)
{
    CoSimParams params;
    params.platform = smallCmp(2);
    params.emulators = {llc(32 * KiB)};
    CoSimulation cosim(params);

    test::LoopWorkload wl(8 * KiB, 2);
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    RunResult r = cosim.run(wl, cfg);
    EXPECT_EQ(cosim.emulator(0).results().insts, r.totalInsts);
}

TEST(CoSimulation, RepeatRunsResetEmulators)
{
    CoSimParams params;
    params.platform = smallCmp(2);
    params.emulators = {llc(32 * KiB)};
    CoSimulation cosim(params);

    test::LoopWorkload wl(8 * KiB, 2);
    WorkloadConfig cfg;
    cfg.nThreads = 2;
    cosim.run(wl, cfg);
    LlcResults first = cosim.emulator(0).results();
    cosim.run(wl, cfg);
    LlcResults second = cosim.emulator(0).results();
    EXPECT_EQ(first.accesses, second.accesses);
    EXPECT_EQ(first.misses, second.misses);
}

TEST(CoSimulation, SharedWorkloadInsensitiveToThreads)
{
    // All threads hammer one shared array: LLC misses barely change
    // with the thread count (the paper's MDS/SVM-RFE/SNP category).
    auto run_mpki = [](unsigned threads) {
        CoSimParams params;
        params.platform = smallCmp(threads);
        params.emulators = {llc(16 * KiB)};
        CoSimulation cosim(params);
        test::LoopWorkload wl(64 * KiB, 4, /*shared=*/true);
        WorkloadConfig cfg;
        cfg.nThreads = threads;
        cosim.run(wl, cfg);
        return cosim.emulator(0).results().mpki();
    };
    double m2 = run_mpki(2);
    double m8 = run_mpki(8);
    EXPECT_NEAR(m8 / m2, 1.0, 0.25);
}

TEST(CoSimulation, PrivateWorkloadScalesWithThreads)
{
    // Private per-thread arrays: the total working set grows with the
    // thread count and a fixed-size LLC sees more misses (the paper's
    // SHOT/VIEWTYPE category).
    auto run_miss_rate = [](unsigned threads) {
        CoSimParams params;
        params.platform = smallCmp(threads);
        params.emulators = {llc(64 * KiB)};
        CoSimulation cosim(params);
        test::LoopWorkload wl(32 * KiB, 4, /*shared=*/false);
        WorkloadConfig cfg;
        cfg.nThreads = threads;
        cosim.run(wl, cfg);
        return cosim.emulator(0).results().missRate();
    };
    double r1 = run_miss_rate(1); // 32 KB fits in 64 KB
    double r4 = run_miss_rate(4); // 128 KB thrashes it
    EXPECT_GT(r4, 2.0 * r1);
}

// ----------------------------------------------------------- experiments

TEST(Presets, CmpScales)
{
    EXPECT_EQ(presets::scmp().nCores, 8u);
    EXPECT_EQ(presets::mcmp().nCores, 16u);
    EXPECT_EQ(presets::lcmp().nCores, 32u);
    EXPECT_TRUE(presets::scmp().cpu.emitFsbTraffic);
    EXPECT_FALSE(presets::scmp().cpu.caches.hasL2);
}

TEST(Presets, SweepShapes)
{
    auto sizes = presets::llcSizeSweep();
    ASSERT_EQ(sizes.size(), 7u);
    EXPECT_EQ(sizes.front(), 4 * MiB);
    EXPECT_EQ(sizes.back(), 256 * MiB);

    auto lines = presets::lineSizeSweep();
    ASSERT_EQ(lines.size(), 7u);
    EXPECT_EQ(lines.front(), 64u);
    EXPECT_EQ(lines.back(), 4096u);
}

TEST(Presets, EmulatorConfigsAreConstructible)
{
    for (const auto& dh_params : presets::llcSizeSweepEmulators()) {
        Dragonhead dh(dh_params);
        EXPECT_EQ(dh.nSlices(), 4u);
    }
    for (const auto& dh_params : presets::lineSizeSweepEmulators()) {
        Dragonhead dh(dh_params);
        EXPECT_EQ(dh.params().llc.size, 32 * MiB);
    }
}

TEST(Presets, TimingCpus)
{
    CpuParams p4 = presets::pentium4Cpu();
    EXPECT_EQ(p4.caches.l1.size, 8 * KiB);
    EXPECT_TRUE(p4.caches.hasL2);
    EXPECT_EQ(p4.caches.l2.size, 512 * KiB);
    EXPECT_FALSE(p4.prefetchEnabled);

    CpuParams xeon = presets::xeonCpu(true);
    EXPECT_TRUE(xeon.prefetchEnabled);
    EXPECT_TRUE(xeon.useDramLatency);
}

// --------------------------------------------------------------- results

TEST(FigureData, RenderAndSeries)
{
    FigureData fig("Fig X", "cache size", {"4MB", "8MB"});
    fig.addSeries("FIMI", {3.5, 1.25});
    fig.addSeries("MDS", {19.0, 19.0});

    EXPECT_EQ(fig.seriesNames().size(), 2u);
    EXPECT_DOUBLE_EQ(fig.series("FIMI")[1], 1.25);

    std::string out = fig.render("MPKI");
    EXPECT_NE(out.find("Fig X"), std::string::npos);
    EXPECT_NE(out.find("FIMI"), std::string::npos);
    EXPECT_NE(out.find("19.000"), std::string::npos);
}

TEST(FigureData, CsvOutput)
{
    std::string path = ::testing::TempDir() + "cosim_fig_test.csv";
    FigureData fig("FigY", "line size", {"64B", "128B"});
    fig.addSeries("SHOT", {10.0, 5.0});
    fig.addFailedSeries("MDS");
    fig.writeCsv(path);

    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[128];
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "workload,64B,128B,status\n");
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "SHOT,10,5,ok\n");
    // A failed cell keeps its row: empty value fields, status "failed".
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "MDS,,,failed\n");
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(SweepPointMetrics, Mpki)
{
    SweepPoint p;
    p.llcMisses = 42;
    p.insts = 84000;
    EXPECT_DOUBLE_EQ(p.mpki(), 0.5);
    SweepPoint zero;
    EXPECT_DOUBLE_EQ(zero.mpki(), 0.0);
}

} // namespace
} // namespace cosim
