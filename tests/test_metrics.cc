/**
 * @file
 * Tests for obs/metrics.hh: log2 bucketing, the enabled gate,
 * cross-thread merge-on-snapshot, delta snapshots, the OpenMetrics
 * exposition, the stats::Group bridge, and the naming contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace cosim {
namespace {

namespace metrics = obs::metrics;

// ------------------------------------------------------------ bucketing

TEST(MetricsBuckets, Log2EdgesMatchTheContract)
{
    // v == 0 -> bucket 0; else bucket 1 + floor(log2(v)), so bucket i
    // (i >= 1) spans [2^(i-1), 2^i - 1].
    EXPECT_EQ(metrics::bucketIndex(0), 0u);
    EXPECT_EQ(metrics::bucketIndex(1), 1u);
    EXPECT_EQ(metrics::bucketIndex(2), 2u);
    EXPECT_EQ(metrics::bucketIndex(3), 2u);
    EXPECT_EQ(metrics::bucketIndex(4), 3u);
    EXPECT_EQ(metrics::bucketIndex(7), 3u);
    EXPECT_EQ(metrics::bucketIndex(8), 4u);
    EXPECT_EQ(metrics::bucketIndex(1023), 10u);
    EXPECT_EQ(metrics::bucketIndex(1024), 11u);
    // The last bucket absorbs everything too large to index.
    EXPECT_EQ(metrics::bucketIndex(~std::uint64_t{0}),
              static_cast<unsigned>(metrics::kHistBuckets - 1));
}

TEST(MetricsBuckets, UpperBoundsAreInclusiveBucketEdges)
{
    EXPECT_EQ(metrics::bucketUpperBound(0), 0u);
    EXPECT_EQ(metrics::bucketUpperBound(1), 1u);
    EXPECT_EQ(metrics::bucketUpperBound(2), 3u);
    EXPECT_EQ(metrics::bucketUpperBound(10), 1023u);
    // Every value indexes into the bucket whose bound covers it.
    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 4096ull}) {
        unsigned b = metrics::bucketIndex(v);
        EXPECT_LE(v, metrics::bucketUpperBound(b)) << v;
        if (b > 0)
            EXPECT_GT(v, metrics::bucketUpperBound(b - 1)) << v;
    }
}

// --------------------------------------------------------- enabled gate

TEST(MetricsRegistry, DisabledHandlesRecordNothing)
{
    metrics::Registry reg;
    metrics::Counter c = reg.counter("gate.count", "gated counter");
    metrics::Histogram h = reg.histogram("gate.hist", "gated histogram");
    ASSERT_FALSE(reg.enabled());

    c.add(5);
    h.record(7);
    metrics::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 0u);
    EXPECT_EQ(snap.histograms[0].count, 0u);

    reg.setEnabled(true);
    c.add(5);
    h.record(7);
    snap = reg.snapshot();
    EXPECT_EQ(snap.counters[0].value, 5u);
    EXPECT_EQ(snap.histograms[0].count, 1u);
    EXPECT_EQ(snap.histograms[0].sum, 7u);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreInertNoOps)
{
    // Record sites hold handles in function-local statics; a handle
    // that was never registered (e.g. declared but not yet bound) must
    // be safe to use.
    metrics::Counter c;
    metrics::Histogram h;
    c.inc();
    h.record(42);
}

// ------------------------------------------------- merge and snapshots

TEST(MetricsRegistry, MergesShardsAcrossThreads)
{
    metrics::Registry reg;
    reg.setEnabled(true);
    metrics::Counter c = reg.counter("merge.count", "");
    metrics::Histogram h = reg.histogram("merge.hist", "");

    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 1000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                c.add(1);
                h.record(i % 16);
            }
        });
    }
    for (std::thread& t : threads)
        t.join();

    metrics::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters[0].value, kThreads * kPerThread);
    EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : snap.histograms[0].buckets)
        bucket_total += b;
    EXPECT_EQ(bucket_total, snap.histograms[0].count);
}

TEST(MetricsSnapshot, DeltaSubtractsMatchedByName)
{
    metrics::Registry reg;
    reg.setEnabled(true);
    metrics::Counter c = reg.counter("d.count", "");
    metrics::Histogram h = reg.histogram("d.hist", "");

    c.add(10);
    h.record(4);
    metrics::Snapshot prev = reg.snapshot();

    c.add(3);
    h.record(4);
    h.record(100);
    metrics::Snapshot now = reg.snapshot();

    metrics::Snapshot d = metrics::Snapshot::delta(now, prev);
    ASSERT_EQ(d.counters.size(), 1u);
    EXPECT_EQ(d.counters[0].value, 3u);
    ASSERT_EQ(d.histograms.size(), 1u);
    EXPECT_EQ(d.histograms[0].count, 2u);
    EXPECT_EQ(d.histograms[0].sum, 104u);
    EXPECT_EQ(d.histograms[0].buckets[metrics::bucketIndex(4)], 1u);
    EXPECT_EQ(d.histograms[0].buckets[metrics::bucketIndex(100)], 1u);
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations)
{
    metrics::Registry reg;
    reg.setEnabled(true);
    metrics::Counter c = reg.counter("r.count", "");
    c.add(7);
    reg.resetValues();
    EXPECT_EQ(reg.size(), 1u);
    metrics::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 0u);
    // The handle keeps working after a reset.
    c.add(2);
    EXPECT_EQ(reg.snapshot().counters[0].value, 2u);
}

// ----------------------------------------------------------- exposition

TEST(MetricsOpenMetrics, RendersCountersAndHistograms)
{
    metrics::Registry reg;
    reg.setEnabled(true);
    metrics::Counter c = reg.counter("emu.chunks", "chunks emulated");
    metrics::Histogram h = reg.histogram("mem.lat", "miss latency");
    c.add(3);
    h.record(0); // bucket 0
    h.record(1); // bucket 1
    h.record(5); // bucket 3 (le=7)

    std::string text = metrics::renderOpenMetrics(reg.snapshot());
    // Dots map to underscores under a cosim_ prefix.
    EXPECT_NE(text.find("# TYPE cosim_emu_chunks counter"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("# HELP cosim_emu_chunks chunks emulated"),
              std::string::npos);
    EXPECT_NE(text.find("cosim_emu_chunks_total 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE cosim_mem_lat histogram"),
              std::string::npos);
    // Buckets are cumulative and end with the +Inf total.
    EXPECT_NE(text.find("cosim_mem_lat_bucket{le=\"0\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("cosim_mem_lat_bucket{le=\"1\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("cosim_mem_lat_bucket{le=\"7\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("cosim_mem_lat_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("cosim_mem_lat_count 3"), std::string::npos);
    EXPECT_NE(text.find("cosim_mem_lat_sum 6"), std::string::npos);
    // The exposition terminates with the OpenMetrics EOF marker.
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(MetricsRegistry, StatsGroupBridgesFrozenTotals)
{
    metrics::Registry reg;
    reg.setEnabled(true);
    metrics::Counter c = reg.counter("b.count", "");
    metrics::Histogram h = reg.histogram("b.hist", "");
    c.add(4);
    h.record(10);
    h.record(20);

    std::string dump = reg.statsGroup("metrics").dump();
    EXPECT_NE(dump.find("metrics.b.count 4"), std::string::npos) << dump;
    EXPECT_NE(dump.find("metrics.b.hist.count 2"), std::string::npos);
    EXPECT_NE(dump.find("metrics.b.hist.sum 30"), std::string::npos);
    EXPECT_NE(dump.find("metrics.b.hist.mean 15"), std::string::npos);
}

// -------------------------------------------------------- naming rules

TEST(MetricsNamingDeathTest, InvalidCharactersPanic)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    metrics::Registry reg;
    EXPECT_DEATH(reg.counter("Bad.Name", ""), "invalid metric name");
    EXPECT_DEATH(reg.counter("", ""), "invalid metric name");
    EXPECT_DEATH(reg.counter("1starts.with.digit", ""),
                 "invalid metric name");
    EXPECT_DEATH(reg.histogram("has-dash", ""), "invalid metric name");
}

TEST(MetricsNamingDeathTest, DuplicateRegistrationPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    metrics::Registry reg;
    reg.counter("dup.name", "");
    EXPECT_DEATH(reg.counter("dup.name", ""), "registered twice");
    EXPECT_DEATH(reg.histogram("dup.name", ""), "registered twice");
}

} // namespace
} // namespace cosim
