#include "dragonhead/dragonhead.hh"

#include "base/bitops.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/units.hh"

namespace cosim {

namespace {

/** CB trace label: distinct per configuration ("llc.32MB.64B"). */
ControlBlockParams
labeledCb(const DragonheadParams& params)
{
    ControlBlockParams cb = params.cb;
    if (cb.traceLabel == "cb") {
        cb.traceLabel = params.llc.name + "." +
                        formatSize(params.llc.size) + "." +
                        formatSize(params.llc.lineSize);
    }
    return cb;
}

} // namespace

Dragonhead::Dragonhead(const DragonheadParams& params)
    : params_(params), cb_(labeledCb(params))
{
    fatal_if(params_.nSlices == 0, "Dragonhead needs at least one CC");
    fatal_if(!isPowerOf2(params_.nSlices),
             "slice count %u must be a power of two", params_.nSlices);

    const CacheParams& llc = params_.llc;
    fatal_if(llc.size % params_.nSlices != 0,
             "LLC size %llu not divisible across %u slices",
             static_cast<unsigned long long>(llc.size), params_.nSlices);

    CacheParams slice = llc;
    slice.size = llc.size / params_.nSlices;
    fatal_if(slice.sets() == 0,
             "LLC too small: a slice has no complete set");

    for (unsigned i = 0; i < params_.nSlices; ++i) {
        slice.name = llc.name + ".cc" + std::to_string(i);
        ccs_.push_back(std::make_unique<CacheController>(
            i, slice, params_.maxCores));
    }

    std::vector<CacheController*> raw;
    raw.reserve(ccs_.size());
    for (auto& cc : ccs_)
        raw.push_back(cc.get());
    cb_.attachControllers(raw);

    lineBits_ = floorLog2(llc.lineSize);
    sliceBits_ = floorLog2(params_.nSlices);
}

Dragonhead::~Dragonhead() = default;

void
Dragonhead::observe(const BusTransaction& txn)
{
    CoreId core = 0;
    msg::Message m{};
    switch (af_.process(txn, core, m)) {
      case FilterAction::Dropped:
        return;
      case FilterAction::Consumed:
        cb_.onMessage(m);
        return;
      case FilterAction::Forward:
        break;
    }

    // Prefetch fills brought lines into *private* caches; the shared LLC
    // still observes them as line reads. WriteLine transactions install
    // the line dirty.
    bool write = txn.kind == TxnKind::WriteLine;
    if (params_.partitioning == LlcPartitioning::PerCore) {
        // Private partitions: the slice is the issuing core's, and the
        // full address indexes it.
        unsigned slice = static_cast<unsigned>(core) %
                         static_cast<unsigned>(ccs_.size());
        ccs_[slice]->handleDemand(txn.addr, write, core);
        return;
    }
    Addr line = txn.addr >> lineBits_;
    unsigned slice = static_cast<unsigned>(line & (ccs_.size() - 1));
    // Fold the slice-select bits out of the address the slice cache
    // indexes with, exactly as the physical interleave does -- otherwise
    // each CC would only ever touch 1/nSlices of its sets.
    Addr folded = ((line >> sliceBits_) << lineBits_) |
                  (txn.addr & (params_.llc.lineSize - 1));
    ccs_[slice]->handleDemand(folded, write, core);
}

void
Dragonhead::observeBatch(const BusTransaction* txns, std::size_t n)
{
    // Qualified call: no virtual dispatch inside the chunk loop.
    for (std::size_t i = 0; i < n; ++i)
        Dragonhead::observe(txns[i]);
}

LlcResults
Dragonhead::results() const
{
    LlcResults r;
    for (const auto& cc : ccs_) {
        r.accesses += cc->stats().accesses;
        r.misses += cc->stats().misses;
    }
    r.insts = cb_.totalInsts();
    r.cycles = cb_.totalCycles();
    return r;
}

CoreCounters
Dragonhead::coreResults(CoreId core) const
{
    CoreCounters out;
    for (const auto& cc : ccs_) {
        const CoreCounters& c = cc->coreCounters(core);
        out.accesses += c.accesses;
        out.misses += c.misses;
    }
    return out;
}

const CacheController&
Dragonhead::slice(unsigned i) const
{
    panic_if(i >= ccs_.size(), "slice index %u out of range", i);
    return *ccs_[i];
}

stats::Group&
Dragonhead::registerStats(obs::StatsRegistry& registry,
                          const std::string& prefix) const
{
    stats::Group agg(prefix);
    agg.add("accesses", [this] { return double(results().accesses); });
    agg.add("misses", [this] { return double(results().misses); });
    agg.add("insts", [this] { return double(cb_.totalInsts()); });
    agg.add("cycles", [this] { return double(cb_.totalCycles()); });
    agg.add("mpki", [this] { return results().mpki(); });
    agg.add("miss_rate", [this] { return results().missRate(); });
    agg.add("samples",
            [this] { return double(cb_.samples().size()); });
    stats::Group& stored = registry.add(std::move(agg));

    for (unsigned i = 0; i < nSlices(); ++i) {
        stats::Group g(prefix + ".cc" + std::to_string(i));
        ccs_[i]->addStats(g);
        registry.add(std::move(g));
    }
    return stored;
}

void
Dragonhead::reset()
{
    af_.reset();
    cb_.reset();
    for (auto& cc : ccs_)
        cc->reset();
}

} // namespace cosim
