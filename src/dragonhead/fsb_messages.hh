/**
 * @file
 * The SoftSDV -> Dragonhead message protocol.
 *
 * Section 3.3 of the paper: "Some memory transactions are predefined as
 * messages from SoftSDV to Dragonhead", carrying (1) start emulation,
 * (2) stop emulation, (3) core-ID, (4) instructions retired and
 * (5) cycles completed. A message is an ordinary bus transaction whose
 * address falls inside a reserved window; the message type and payload
 * are encoded in the address bits, so a passive snooper that only sees
 * addresses can decode everything.
 *
 * Layout of a message address:
 *
 *   [63:48] window tag (0xDA6D, "Dragonhead")
 *   [47:40] message type
 *   [39:0]  payload (counts are sent as deltas so 40 bits suffice)
 */

#ifndef COSIM_DRAGONHEAD_FSB_MESSAGES_HH
#define COSIM_DRAGONHEAD_FSB_MESSAGES_HH

#include <cstdint>

#include "base/types.hh"
#include "mem/access.hh"

namespace cosim {
namespace msg {

/** The five message types of Section 3.3. */
enum class Type : std::uint8_t {
    StartEmulation = 1,
    StopEmulation = 2,
    SetCoreId = 3,
    InstRetired = 4,
    CyclesCompleted = 5,
};

/** Reserved address window tag in bits [63:48]. */
constexpr std::uint64_t windowTag = 0xDA6D;

/** Largest payload a message can carry. */
constexpr std::uint64_t maxPayload = (std::uint64_t{1} << 40) - 1;

/** A decoded message. */
struct Message
{
    Type type;
    std::uint64_t payload;
};

/** True iff @p addr lies in the message window. */
constexpr bool
isMessageAddr(Addr addr)
{
    return (addr >> 48) == windowTag;
}

/** Encode a message into an address. Payload must fit in 40 bits. */
Addr encodeAddr(Type type, std::uint64_t payload);

/** Wrap an encoded message in a bus transaction. */
BusTransaction encode(Type type, std::uint64_t payload);

/** Decode a message address; panics if it is not in the window. */
Message decode(Addr addr);

/** Stable name of a message type. */
const char* toString(Type t);

} // namespace msg
} // namespace cosim

#endif // COSIM_DRAGONHEAD_FSB_MESSAGES_HH
