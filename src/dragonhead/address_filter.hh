/**
 * @file
 * The AF (address filter) FPGA of Dragonhead.
 *
 * "AF gets FSB transactions from LAI and sends them to CC after
 * regulation" (Section 3.1). Regulation means: decode message
 * transactions and track the emulation window and active core, drop
 * everything observed outside the window (host OS and simulator noise),
 * and annotate forwarded demand transactions with the core that owns the
 * current DEX slice.
 */

#ifndef COSIM_DRAGONHEAD_ADDRESS_FILTER_HH
#define COSIM_DRAGONHEAD_ADDRESS_FILTER_HH

#include <cstdint>

#include "dragonhead/fsb_messages.hh"
#include "mem/access.hh"

namespace cosim {

/** What the AF decided about one bus transaction. */
enum class FilterAction : std::uint8_t {
    Dropped, ///< outside the emulation window, not emulated
    Forward, ///< demand/prefetch traffic to pass to the cache controllers
    Consumed ///< a message; state updated, nothing forwarded
};

/** Statistics of the filter itself. */
struct FilterStats
{
    std::uint64_t observed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t messages = 0;

    void reset() { *this = FilterStats(); }
};

/** See file comment. */
class AddressFilter
{
  public:
    AddressFilter() = default;

    /**
     * Regulate one transaction.
     * On Forward, @p core_out is the core that owns the current slice.
     * On Consumed, @p msg_out is the decoded message.
     */
    FilterAction process(const BusTransaction& txn, CoreId& core_out,
                         msg::Message& msg_out);

    bool emulating() const { return emulating_; }
    CoreId currentCore() const { return currentCore_; }
    const FilterStats& stats() const { return stats_; }

    void reset();

  private:
    bool emulating_ = false;
    CoreId currentCore_ = 0;
    FilterStats stats_;
};

} // namespace cosim

#endif // COSIM_DRAGONHEAD_ADDRESS_FILTER_HH
