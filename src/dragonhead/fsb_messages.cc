#include "dragonhead/fsb_messages.hh"

#include "base/logging.hh"

namespace cosim {
namespace msg {

Addr
encodeAddr(Type type, std::uint64_t payload)
{
    panic_if(payload > maxPayload,
             "message payload %llu exceeds 40 bits; send deltas",
             static_cast<unsigned long long>(payload));
    return (windowTag << 48) |
           (static_cast<std::uint64_t>(type) << 40) | payload;
}

BusTransaction
encode(Type type, std::uint64_t payload)
{
    BusTransaction txn;
    txn.addr = encodeAddr(type, payload);
    txn.size = 0;
    txn.kind = TxnKind::Message;
    txn.core = invalidCoreId;
    return txn;
}

Message
decode(Addr addr)
{
    panic_if(!isMessageAddr(addr),
             "decoding non-message address %#llx",
             static_cast<unsigned long long>(addr));
    Message m;
    m.type = static_cast<Type>((addr >> 40) & 0xff);
    m.payload = addr & maxPayload;
    return m;
}

const char*
toString(Type t)
{
    switch (t) {
      case Type::StartEmulation:
        return "start-emulation";
      case Type::StopEmulation:
        return "stop-emulation";
      case Type::SetCoreId:
        return "set-core-id";
      case Type::InstRetired:
        return "inst-retired";
      case Type::CyclesCompleted:
        return "cycles-completed";
    }
    return "?";
}

} // namespace msg
} // namespace cosim
