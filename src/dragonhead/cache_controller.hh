/**
 * @file
 * One CC (cache controller) FPGA of Dragonhead.
 *
 * The four CC FPGAs (CC0..CC3) each emulate an address-interleaved slice
 * of the shared last-level cache: line addresses are distributed
 * round-robin across the slices, and each slice is a set-associative
 * cache holding 1/nSlices of the total capacity. The controller keeps
 * per-core access/miss counters so the data-sharing behaviour across the
 * CMP's cores can be analyzed.
 */

#ifndef COSIM_DRAGONHEAD_CACHE_CONTROLLER_HH
#define COSIM_DRAGONHEAD_CACHE_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"

namespace cosim {

/** Per-core counters kept by a cache controller. */
struct CoreCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** See file comment. */
class CacheController
{
  public:
    /**
     * @param index which CC this is (0-based)
     * @param slice_params geometry of this slice (already divided)
     * @param max_cores number of per-core counter rows
     */
    CacheController(unsigned index, const CacheParams& slice_params,
                    unsigned max_cores);

    /**
     * Emulate one demand access.
     * @param addr full byte address
     * @param write whether the line should be installed/marked dirty
     * @param core the core the AF attributed this access to
     * @return true on hit
     */
    bool handleDemand(Addr addr, bool write, CoreId core);

    unsigned index() const { return index_; }
    const Cache& cache() const { return cache_; }

    const CoreCounters& coreCounters(CoreId core) const;
    const CacheStats& stats() const { return cache_.stats(); }

    /** Register this slice's cache counters into @p group. */
    void addStats(stats::Group& group) const { cache_.addStats(group); }

    void reset();

  private:
    unsigned index_;
    Cache cache_;
    std::vector<CoreCounters> perCore_;
};

} // namespace cosim

#endif // COSIM_DRAGONHEAD_CACHE_CONTROLLER_HH
