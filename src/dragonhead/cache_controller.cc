#include "dragonhead/cache_controller.hh"

#include "base/logging.hh"

namespace cosim {

CacheController::CacheController(unsigned index,
                                 const CacheParams& slice_params,
                                 unsigned max_cores)
    : index_(index), cache_(slice_params), perCore_(max_cores)
{
    fatal_if(max_cores == 0, "CC%u: need at least one core counter row",
             index);
}

bool
CacheController::handleDemand(Addr addr, bool write, CoreId core)
{
    Cache::Outcome out = cache_.access(addr, write);
    if (core < perCore_.size()) {
        ++perCore_[core].accesses;
        if (!out.hit)
            ++perCore_[core].misses;
    }
    return out.hit;
}

const CoreCounters&
CacheController::coreCounters(CoreId core) const
{
    panic_if(core >= perCore_.size(), "CC%u: core %u out of range", index_,
             core);
    return perCore_[core];
}

void
CacheController::reset()
{
    cache_.flush();
    cache_.resetStats();
    for (auto& row : perCore_)
        row = CoreCounters();
}

} // namespace cosim
