#include "dragonhead/control_block.hh"

#include "base/logging.hh"
#include "obs/trace_session.hh"

namespace cosim {

ControlBlock::ControlBlock(const ControlBlockParams& params)
    : params_(params)
{
    fatal_if(params_.samplePeriodUs == 0, "sample period must be nonzero");
    fatal_if(params_.coreFreqGhz <= 0.0, "core frequency must be positive");
    cyclesPerWindow_ = static_cast<Cycles>(
        static_cast<double>(params_.samplePeriodUs) * 1000.0 *
        params_.coreFreqGhz);
    fatal_if(cyclesPerWindow_ == 0, "sample window shorter than a cycle");
}

void
ControlBlock::attachControllers(const std::vector<CacheController*>& ccs)
{
    for (CacheController* cc : ccs)
        panic_if(cc == nullptr, "null cache controller attached to CB");
    ccs_ = ccs;
}

void
ControlBlock::traceSample(const Sample& s) const
{
    obs::TraceSession& trace = obs::TraceSession::global();
    if (!trace.active())
        return;
    // One counter track per CB: the host-visible real-time MPKI series,
    // on the simulated-time axis.
    trace.recordCounter(obs::TraceDomain::Simulated,
                        params_.traceLabel + ".mpki", s.timeUs, s.mpki());
}

void
ControlBlock::pollControllers(std::uint64_t& accesses,
                              std::uint64_t& misses) const
{
    accesses = 0;
    misses = 0;
    for (const CacheController* cc : ccs_) {
        accesses += cc->stats().accesses;
        misses += cc->stats().misses;
    }
}

void
ControlBlock::onMessage(const msg::Message& m)
{
    switch (m.type) {
      case msg::Type::StartEmulation:
        // Window accounting restarts at the emulation window boundary.
        windowCycleMark_ = totalCycles_;
        windowInstMark_ = totalInsts_;
        pollControllers(windowAccessMark_, windowMissMark_);
        break;
      case msg::Type::StopEmulation:
        flushWindow();
        break;
      case msg::Type::SetCoreId:
        break;
      case msg::Type::InstRetired:
        totalInsts_ += m.payload;
        break;
      case msg::Type::CyclesCompleted:
        totalCycles_ += m.payload;
        // Emulated time advances with cycles; close any windows the
        // advance completed. In the physical rig the host polled on its
        // own clock; cycle-synchronized windows are the deterministic
        // equivalent.
        while (totalCycles_ - windowCycleMark_ >= cyclesPerWindow_) {
            windowCycleMark_ += cyclesPerWindow_;
            ++windowsClosed_;

            std::uint64_t acc = 0;
            std::uint64_t mis = 0;
            pollControllers(acc, mis);

            Sample s;
            s.timeUs = static_cast<double>(windowsClosed_) *
                       static_cast<double>(params_.samplePeriodUs);
            s.cycles = cyclesPerWindow_;
            s.insts = totalInsts_ - windowInstMark_;
            s.accesses = acc - windowAccessMark_;
            s.misses = mis - windowMissMark_;
            traceSample(s);
            samples_.push_back(s);

            windowInstMark_ = totalInsts_;
            windowAccessMark_ = acc;
            windowMissMark_ = mis;
        }
        break;
    }
}

void
ControlBlock::flushWindow()
{
    std::uint64_t acc = 0;
    std::uint64_t mis = 0;
    pollControllers(acc, mis);

    Cycles partial = totalCycles_ - windowCycleMark_;
    InstCount insts = totalInsts_ - windowInstMark_;
    std::uint64_t accesses = acc - windowAccessMark_;
    std::uint64_t misses = mis - windowMissMark_;
    if (partial == 0 && insts == 0 && accesses == 0)
        return;

    Sample s;
    s.timeUs = static_cast<double>(windowsClosed_) *
                   static_cast<double>(params_.samplePeriodUs) +
               static_cast<double>(partial) /
                   (params_.coreFreqGhz * 1000.0);
    s.cycles = partial;
    s.insts = insts;
    s.accesses = accesses;
    s.misses = misses;
    traceSample(s);
    samples_.push_back(s);

    windowCycleMark_ = totalCycles_;
    windowInstMark_ = totalInsts_;
    windowAccessMark_ = acc;
    windowMissMark_ = mis;
}

void
ControlBlock::reset()
{
    totalInsts_ = 0;
    totalCycles_ = 0;
    windowCycleMark_ = 0;
    windowInstMark_ = 0;
    windowAccessMark_ = 0;
    windowMissMark_ = 0;
    windowsClosed_ = 0;
    samples_.clear();
}

} // namespace cosim
