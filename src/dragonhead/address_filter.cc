#include "dragonhead/address_filter.hh"

namespace cosim {

FilterAction
AddressFilter::process(const BusTransaction& txn, CoreId& core_out,
                       msg::Message& msg_out)
{
    ++stats_.observed;

    if (txn.kind == TxnKind::Message || msg::isMessageAddr(txn.addr)) {
        ++stats_.messages;
        msg_out = msg::decode(txn.addr);
        switch (msg_out.type) {
          case msg::Type::StartEmulation:
            emulating_ = true;
            break;
          case msg::Type::StopEmulation:
            emulating_ = false;
            break;
          case msg::Type::SetCoreId:
            currentCore_ = static_cast<CoreId>(msg_out.payload);
            break;
          case msg::Type::InstRetired:
          case msg::Type::CyclesCompleted:
            // Bookkeeping messages are consumed here and interpreted by
            // the control block.
            break;
        }
        return FilterAction::Consumed;
    }

    if (!emulating_) {
        ++stats_.dropped;
        return FilterAction::Dropped;
    }

    ++stats_.forwarded;
    core_out = currentCore_;
    return FilterAction::Forward;
}

void
AddressFilter::reset()
{
    emulating_ = false;
    currentCore_ = 0;
    stats_.reset();
}

} // namespace cosim
