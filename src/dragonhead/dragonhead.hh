/**
 * @file
 * The assembled Dragonhead cache emulator.
 *
 * Six FPGAs on the physical board: AF (address filter), CC0..CC3 (cache
 * controller slices) and CB (control block). This class wires the
 * software models of those blocks together and exposes the host-computer
 * view: configure a cache, snoop the bus, read performance data.
 *
 * Like the FPGA, the emulator is *passive*: it never affects what the
 * cores do, so any number of Dragonhead instances with different cache
 * configurations can snoop the same bus simultaneously -- that is how the
 * benches evaluate a whole cache-size sweep in a single workload run.
 */

#ifndef COSIM_DRAGONHEAD_DRAGONHEAD_HH
#define COSIM_DRAGONHEAD_DRAGONHEAD_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "dragonhead/address_filter.hh"
#include "dragonhead/cache_controller.hh"
#include "dragonhead/control_block.hh"
#include "mem/fsb.hh"
#include "obs/stats_registry.hh"

namespace cosim {

/** How the LLC capacity is divided among the CC slices. */
enum class LlcPartitioning : std::uint8_t
{
    /** One shared LLC, line addresses interleaved across slices (the
     * physical Dragonhead board). */
    Interleaved,
    /** Equal private per-core partitions: slice = core id. The FPGA
     * could be programmed this way too; it answers the shared-vs-
     * private LLC question of the related work (PHA$E, Liu et al.). */
    PerCore,
};

/** Host-side configuration of the emulator. */
struct DragonheadParams
{
    /** Geometry of the emulated LLC (total capacity, not per slice). */
    CacheParams llc{"llc", 32 * 1024 * 1024, 64, 16, ReplPolicy::LRU};

    /** Number of cache-controller slices (the physical board had 4).
     * In PerCore mode this is the number of cores/partitions. */
    unsigned nSlices = 4;

    /** Capacity division policy. */
    LlcPartitioning partitioning = LlcPartitioning::Interleaved;

    /** Rows of per-core counters. */
    unsigned maxCores = 64;

    /** CB sampling configuration. */
    ControlBlockParams cb;
};

/** Aggregated LLC results, the host-computer view. */
struct LlcResults
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    InstCount insts = 0;
    Cycles cycles = 0;

    double mpki() const
    {
        return insts == 0 ? 0.0
                          : 1000.0 * static_cast<double>(misses) /
                                static_cast<double>(insts);
    }

    double missRate() const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) /
                                   static_cast<double>(accesses);
    }
};

/** See file comment. */
class Dragonhead : public BusSnooper
{
  public:
    explicit Dragonhead(const DragonheadParams& params);
    ~Dragonhead() override;

    /** BusSnooper: regulate and emulate one transaction. */
    void observe(const BusTransaction& txn) override;

    /**
     * BusSnooper: emulate a chunk. Semantically identical to observing
     * each transaction in turn, but pays the virtual dispatch once per
     * chunk instead of once per transaction.
     */
    void observeBatch(const BusTransaction* txns, std::size_t n) override;

    /** Aggregated results over the whole emulation window. */
    LlcResults results() const;

    /** Per-core accesses/misses summed over slices. */
    CoreCounters coreResults(CoreId core) const;

    /** The 500 us sample series. */
    const std::vector<Sample>& samples() const { return cb_.samples(); }

    const DragonheadParams& params() const { return params_; }
    const AddressFilter& addressFilter() const { return af_; }
    const CacheController& slice(unsigned i) const;
    unsigned nSlices() const
    {
        return static_cast<unsigned>(ccs_.size());
    }

    /** Return the board to power-on state. */
    void reset();

    /**
     * Register this emulator's stats into @p registry under
     * "<prefix>" (aggregate) and "<prefix>.cc<i>" (per slice).
     * @return the stored aggregate group, so callers can append stats
     * of their own (the AsyncEmulatorBank adds delivery counters).
     */
    stats::Group& registerStats(obs::StatsRegistry& registry,
                                const std::string& prefix) const;

  private:
    DragonheadParams params_;
    AddressFilter af_;
    std::vector<std::unique_ptr<CacheController>> ccs_;
    ControlBlock cb_;
    unsigned lineBits_;
    unsigned sliceBits_;
};

} // namespace cosim

#endif // COSIM_DRAGONHEAD_DRAGONHEAD_HH
