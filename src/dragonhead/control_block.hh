/**
 * @file
 * The CB (control block) FPGA of Dragonhead.
 *
 * "CB is responsible for configuring AF, CC, and collecting cache
 * performance data. A host computer reads performance data from CB every
 * 500 microseconds" (Section 3.1). The CB tracks instruction- and
 * time-synchronized statistics from the InstRetired / CyclesCompleted
 * messages, and closes a sample window every 500 us of emulated time so
 * the host sees a real-time MPKI series (this is what makes full-run
 * phase behaviour visible).
 */

#ifndef COSIM_DRAGONHEAD_CONTROL_BLOCK_HH
#define COSIM_DRAGONHEAD_CONTROL_BLOCK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "dragonhead/cache_controller.hh"
#include "dragonhead/fsb_messages.hh"

namespace cosim {

/** CB configuration. */
struct ControlBlockParams
{
    /** Host poll period in microseconds of emulated time. */
    std::uint64_t samplePeriodUs = 500;

    /** Emulated core frequency used to turn cycles into time. */
    double coreFreqGhz = 3.0;

    /**
     * Counter-track name this CB samples under when a trace session is
     * active ("<label>.mpki"). Dragonhead derives a distinct label per
     * emulated configuration so sweep traces get one track each.
     */
    std::string traceLabel = "cb";
};

/** One host-visible sample (one 500 us window). */
struct Sample
{
    /** End of this window, in emulated microseconds. */
    double timeUs = 0.0;
    InstCount insts = 0;
    Cycles cycles = 0;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    /** Misses per kilo-instruction within this window. */
    double mpki() const
    {
        return insts == 0 ? 0.0
                          : 1000.0 * static_cast<double>(misses) /
                                static_cast<double>(insts);
    }
};

/** See file comment. */
class ControlBlock
{
  public:
    explicit ControlBlock(const ControlBlockParams& params);

    /** Tell the CB which controllers to poll for access/miss counts. */
    void attachControllers(const std::vector<CacheController*>& ccs);

    /** Feed a consumed message (forwarded by the AF). */
    void onMessage(const msg::Message& m);

    /** Totals within the emulation window. @{ */
    InstCount totalInsts() const { return totalInsts_; }
    Cycles totalCycles() const { return totalCycles_; }
    /** @} */

    /** The 500 us sample series collected so far. */
    const std::vector<Sample>& samples() const { return samples_; }

    /**
     * Flush the currently accumulating partial window into the series
     * (called on StopEmulation; may leave a short final sample).
     */
    void flushWindow();

    void reset();

  private:
    /** Sum of (accesses, misses) over all attached controllers. */
    void pollControllers(std::uint64_t& accesses,
                         std::uint64_t& misses) const;

    /** Publish a just-closed window to an active trace session. */
    void traceSample(const Sample& s) const;

    ControlBlockParams params_;
    std::vector<CacheController*> ccs_;

    InstCount totalInsts_ = 0;
    Cycles totalCycles_ = 0;

    Cycles cyclesPerWindow_ = 0;
    Cycles windowCycleMark_ = 0;
    InstCount windowInstMark_ = 0;
    std::uint64_t windowAccessMark_ = 0;
    std::uint64_t windowMissMark_ = 0;
    std::uint64_t windowsClosed_ = 0;

    std::vector<Sample> samples_;
};

} // namespace cosim

#endif // COSIM_DRAGONHEAD_CONTROL_BLOCK_HH
