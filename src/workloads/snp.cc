#include "workloads/snp.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"
#include "workloads/data/synth.hh"

namespace cosim {

namespace {

/** G-statistic of a 3x3 contingency table (log-likelihood ratio). */
double
gStatistic(const std::uint64_t counts[3][3], std::uint64_t total)
{
    if (total == 0)
        return 0.0;
    std::uint64_t row[3] = {0, 0, 0};
    std::uint64_t col[3] = {0, 0, 0};
    for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
            row[a] += counts[a][b];
            col[b] += counts[a][b];
        }
    }
    double g = 0.0;
    double n = static_cast<double>(total);
    for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
            if (counts[a][b] == 0 || row[a] == 0 || col[b] == 0)
                continue;
            double observed = static_cast<double>(counts[a][b]);
            double expected = static_cast<double>(row[a]) *
                              static_cast<double>(col[b]) / n;
            g += 2.0 * observed * std::log(observed / expected);
        }
    }
    return g;
}

} // namespace

SnpParams
SnpParams::scaled(double scale)
{
    fatal_if(scale <= 0.0, "SNP scale must be positive");
    SnpParams p;
    // Scale shrinks the sample dimension; variables keep the structure.
    double samples = static_cast<double>(p.nSamples) * scale;
    p.nSamples = std::max<std::size_t>(
        4096, (static_cast<std::size_t>(samples) / 4096) * 4096);
    if (scale < 0.1) {
        p.nVars = 128;
        p.hotVars = 16;
    }
    return p;
}

SnpWorkload::SnpWorkload(const SnpParams& params) : params_(params)
{
    fatal_if(params_.hotVars == 0 || params_.hotVars > params_.nVars,
             "SNP: hotVars must be in [1, nVars]");
    fatal_if(params_.nSamples % params_.blockSamples != 0,
             "SNP: nSamples must be a multiple of blockSamples");
    fatal_if(params_.blockSamples % 8 != 0,
             "SNP: blockSamples must be a multiple of 8");
}

std::size_t
SnpWorkload::hotPartner(std::size_t v, unsigned iter) const
{
    std::size_t h;
    if (iter == 0) {
        // First iteration scores the chain edges (v-1 -> v) for every v
        // whose predecessor is a hot variable; others get a rotation.
        h = (v == 0) ? params_.hotVars - 1 : (v - 1) % params_.hotVars;
    } else {
        h = (v * 7 + iter * 13) % params_.hotVars;
    }
    if (h == v)
        h = (h + 1) % params_.hotVars;
    return h;
}

void
SnpWorkload::setUp(const WorkloadConfig& cfg, SimAllocator& alloc)
{
    nThreads_ = cfg.nThreads;
    seed_ = cfg.seed;

    Rng rng(cfg.seed * 0x51ab1e5eedull + 1);
    std::vector<std::uint8_t> data = synth::genotypeChain(
        params_.nVars, params_.nSamples, params_.dependence, rng);

    geno_.init(alloc, "snp.genotype", data.size());
    geno_.hostData() = std::move(data);

    scoreCache_.init(alloc, "snp.score-cache", params_.nVars,
                     params_.hotVars);
    for (std::size_t v = 0; v < params_.nVars; ++v)
        for (std::size_t h = 0; h < params_.hotVars; ++h)
            scoreCache_.host(v, h) = -1.0f;

    bestScore_.assign(nThreads_, -1.0);
    bestVar_.assign(nThreads_, 0);
}

double
SnpWorkload::referenceScore(std::size_t v, std::size_t h) const
{
    std::uint64_t counts[3][3] = {};
    const auto& g = geno_.hostData();
    for (std::size_t s = 0; s < params_.nSamples; ++s) {
        std::uint8_t a = g[v * params_.nSamples + s];
        std::uint8_t b = g[h * params_.nSamples + s];
        ++counts[a][b];
    }
    return gStatistic(counts, params_.nSamples);
}

/** Hill-climbing worker: scores its share of the candidate edges. */
class SnpTask : public ThreadTask
{
  public:
    SnpTask(SnpWorkload& wl, unsigned tid) : wl_(wl), tid_(tid)
    {
        v_ = tid;
        resetCandidate();
    }

    /** Concurrent-safe: geno_ is read-only, scoreCache_ rows and the
     *  bestScore_/bestVar_ cells are indexed by tid (disjoint), and the
     *  tasks never synchronize. */
    bool parallelStepSafe() const override { return true; }

    bool
    step(CoreContext& ctx) override
    {
        const SnpParams& p = wl_.params_;
        if (iter_ >= p.iterations)
            return false;

        // Scan one block of samples of (v, hot partner) columns.
        std::size_t h = wl_.hotPartner(v_, iter_);
        const std::uint8_t* col_v =
            wl_.geno_.readBlock(ctx, v_ * p.nSamples + sample_,
                                p.blockSamples);
        const std::uint8_t* col_h =
            wl_.geno_.readBlock(ctx, h * p.nSamples + sample_,
                                p.blockSamples);
        for (std::size_t k = 0; k < p.blockSamples; ++k)
            ++counts_[col_v[k]][col_h[k]];
        // Counting work: index arithmetic and table updates per sample
        // pair (one compute op per genotype read).
        ctx.compute(2 * p.blockSamples);

        sample_ += p.blockSamples;
        if (sample_ < p.nSamples)
            return true;

        // Candidate finished: score it, memoize, track the best move.
        double score = gStatistic(counts_, p.nSamples);
        ctx.compute(64); // the log-likelihood arithmetic
        wl_.scoreCache_.write(ctx, v_, h, static_cast<float>(score));
        if (score > wl_.bestScore_[tid_]) {
            wl_.bestScore_[tid_] = score;
            wl_.bestVar_[tid_] = v_;
        }

        // Next candidate for this thread; then next hill-climbing pass.
        v_ += wl_.nThreads_;
        if (v_ >= p.nVars) {
            v_ = tid_;
            ++iter_;
        }
        resetCandidate();
        return iter_ < p.iterations;
    }

  private:
    void
    resetCandidate()
    {
        sample_ = 0;
        for (auto& row : counts_)
            for (auto& c : row)
                c = 0;
    }

    SnpWorkload& wl_;
    unsigned tid_;
    unsigned iter_ = 0;
    std::size_t v_;
    std::size_t sample_ = 0;
    std::uint64_t counts_[3][3] = {};
};

std::unique_ptr<ThreadTask>
SnpWorkload::createThread(unsigned tid)
{
    fatal_if(tid >= nThreads_, "SNP: thread id out of range");
    return std::make_unique<SnpTask>(*this, tid);
}

bool
SnpWorkload::verify()
{
    // Planted chain: edges scored in iteration 0 pair variable v with
    // hot variable v-1 for v in [1, hotVars]; those scores must dominate
    // the rotated (mostly unrelated) pairs by a wide margin.
    double chain_sum = 0.0;
    std::size_t chain_n = 0;
    double other_sum = 0.0;
    std::size_t other_n = 0;

    for (std::size_t v = 0; v < params_.nVars; ++v) {
        std::size_t h0 = hotPartner(v, 0);
        float s = scoreCache_.host(v, h0);
        if (s < 0.0f)
            continue; // not evaluated (fewer threads than candidates)
        bool chain_edge = (v >= 1 && v <= params_.hotVars && h0 == v - 1);
        if (chain_edge) {
            chain_sum += s;
            ++chain_n;
        } else {
            other_sum += s;
            ++other_n;
        }
    }

    if (chain_n == 0 || other_n == 0) {
        warn("SNP: verification did not see both edge classes");
        return false;
    }

    double chain_mean = chain_sum / static_cast<double>(chain_n);
    double other_mean = other_sum / static_cast<double>(other_n);

    // Sanity: a memoized score matches a host-side recomputation.
    std::size_t v_probe = 1;
    double ref = referenceScore(v_probe, hotPartner(v_probe, 0));
    double cached = scoreCache_.host(v_probe, hotPartner(v_probe, 0));
    bool consistent = std::fabs(ref - cached) <=
                      1e-3 * std::max(1.0, std::fabs(ref));

    return consistent && chain_mean > 2.0 * (other_mean + 1.0);
}

void
SnpWorkload::tearDown()
{
    // Keep results for post-run inspection; data is freed with the object.
}

} // namespace cosim
