#include "workloads/svm_rfe.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"
#include "workloads/data/synth.hh"
#include "workloads/thread_sync.hh"

namespace cosim {

namespace {

constexpr double ascentRate = 0.05;
constexpr double alphaCap = 2.0;

} // namespace

SvmRfeParams
SvmRfeParams::scaled(double scale)
{
    fatal_if(scale <= 0.0, "SVM-RFE scale must be positive");
    SvmRfeParams p;
    if (scale < 1.0) {
        double genes = static_cast<double>(p.nGenes) * scale;
        p.nGenes = std::max<std::size_t>(
            1024, (static_cast<std::size_t>(genes) / 512) * 512);
        p.blockGenes = std::min<std::size_t>(p.blockGenes, p.nGenes);
        p.nInformative = std::max<std::size_t>(64, p.nGenes / 20);
        if (scale < 0.1) {
            p.nSamples = 64;
            p.pairsPerBlock = 256;
        }
    }
    return p;
}

/**
 * Thread task: cooperates through the workload's phase machine.
 * All heavy per-step work is bounded (one kernel pair, one ascent
 * sample, one weight-accumulation sample, one compaction row).
 */
class SvmRfeTask : public ThreadTask
{
  public:
    SvmRfeTask(SvmRfeWorkload& wl, unsigned tid) : wl_(wl), tid_(tid) {}

    bool step(CoreContext& ctx) override;

  private:
    void kernelPair(CoreContext& ctx, std::size_t p);
    void ascentSample(CoreContext& ctx, std::size_t i);
    void weightSample(CoreContext& ctx, std::size_t i);
    void compactRow(CoreContext& ctx, std::size_t i);

    /** Reset per-phase iteration state when a new phase generation
     * starts. */
    void
    syncPhase()
    {
        if (seenGen_ != wl_.phaseGen_) {
            seenGen_ = wl_.phaseGen_;
            // Weight accumulation partitions genes per thread, so every
            // thread walks every sample; the other phases stride the
            // sample/pair space across threads.
            cursor_ = (wl_.phase_ == SvmRfeWorkload::Phase::Weights)
                ? 0
                : tid_;
            ascentIter_ = 0;
        }
    }

    SvmRfeWorkload& wl_;
    unsigned tid_;
    std::uint64_t seenGen_ = ~std::uint64_t{0};
    std::size_t cursor_ = 0;
    unsigned ascentIter_ = 0;
    BarrierWaiter waiter_;
};

SvmRfeWorkload::SvmRfeWorkload(const SvmRfeParams& params) : params_(params)
{
    fatal_if(params_.blockGenes == 0 ||
                 params_.blockGenes > params_.nGenes,
             "SVM-RFE: bad gene block size");
    fatal_if(params_.rfeRounds == 0, "SVM-RFE: need at least one round");
    fatal_if(params_.nInformative >= params_.nGenes,
             "SVM-RFE: all genes informative leaves nothing to eliminate");
}

void
SvmRfeWorkload::setUp(const WorkloadConfig& cfg, SimAllocator& alloc)
{
    nThreads_ = cfg.nThreads;
    seed_ = cfg.seed;

    Rng rng(cfg.seed * 0xc0ffee123ull + 7);
    std::vector<float> data = synth::geneExpression(
        params_.nSamples, params_.nGenes, params_.nInformative,
        params_.shift, rng, labels_);

    x_.init(alloc, "svm.expression", params_.nSamples, params_.nGenes);
    x_.flat().hostData() = std::move(data);

    kernel_.init(alloc, "svm.kernel", params_.nSamples, params_.nSamples);
    alpha_.init(alloc, "svm.alpha", params_.nSamples);
    weights_.init(alloc, "svm.weights", params_.nGenes);

    geneIds_.resize(params_.nGenes);
    for (std::size_t g = 0; g < params_.nGenes; ++g)
        geneIds_[g] = static_cast<std::uint32_t>(g);

    for (std::size_t i = 0; i < params_.nSamples; ++i)
        alpha_.host(i) = static_cast<float>(1.0 / params_.nSamples);

    phase_ = Phase::Kernel;
    round_ = 0;
    block_ = 0;
    activeGenes_ = params_.nGenes;
    phaseGen_ = 0;
    keepIdx_.clear();

    barrier_.init(nThreads_);
    barrier_.setOnRelease([this] { advancePhase(); });
}

std::size_t
SvmRfeWorkload::nBlocks() const
{
    return (activeGenes_ + params_.blockGenes - 1) / params_.blockGenes;
}

void
SvmRfeWorkload::advancePhase()
{
    switch (phase_) {
      case Phase::Kernel:
        ++block_;
        if (block_ >= nBlocks())
            phase_ = Phase::Ascent;
        break;

      case Phase::Ascent:
        phase_ = Phase::Weights;
        // Weight accumulation starts from zero.
        for (std::size_t g = 0; g < activeGenes_; ++g)
            weights_.host(g) = 0.0f;
        break;

      case Phase::Weights: {
        // Rank |w| and pick the surviving half (host-side bookkeeping;
        // the ranking scan itself is tiny next to the data passes).
        std::size_t keep = activeGenes_ / 2;
        std::vector<std::pair<float, std::uint32_t>> ranked(activeGenes_);
        for (std::size_t g = 0; g < activeGenes_; ++g)
            ranked[g] = {std::fabs(weights_.host(g)),
                         static_cast<std::uint32_t>(g)};
        std::nth_element(
            ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(keep),
            ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
        keepIdx_.assign(keep, 0);
        for (std::size_t k = 0; k < keep; ++k)
            keepIdx_[k] = ranked[k].second;
        std::sort(keepIdx_.begin(), keepIdx_.end());
        phase_ = Phase::Eliminate;
        break;
      }

      case Phase::Eliminate: {
        // Apply the halving: compact the weight vector alongside the
        // matrix columns, remap gene ids, and reset the kernel and dual
        // coefficients for the next round.
        for (std::size_t k = 0; k < keepIdx_.size(); ++k)
            weights_.host(k) = weights_.host(keepIdx_[k]);
        std::vector<std::uint32_t> new_ids(keepIdx_.size());
        for (std::size_t k = 0; k < keepIdx_.size(); ++k)
            new_ids[k] = geneIds_[keepIdx_[k]];
        geneIds_.swap(new_ids);
        activeGenes_ = keepIdx_.size();

        for (std::size_t i = 0; i < params_.nSamples; ++i)
            for (std::size_t j = 0; j < params_.nSamples; ++j)
                kernel_.host(i, j) = 0.0f;
        for (std::size_t i = 0; i < params_.nSamples; ++i)
            alpha_.host(i) = static_cast<float>(1.0 / params_.nSamples);

        ++round_;
        block_ = 0;
        phase_ = (round_ >= params_.rfeRounds) ? Phase::Done
                                               : Phase::Kernel;
        break;
      }

      case Phase::Done:
        break;
    }
    ++phaseGen_;
}

void
SvmRfeTask::kernelPair(CoreContext& ctx, std::size_t p)
{
    const SvmRfeParams& prm = wl_.params_;
    std::size_t n = prm.nSamples;
    std::size_t i, j;
    if (p < n) {
        i = j = p; // the diagonal is always sampled
    } else {
        i = p % n;
        j = (p * 7919 + 13 + wl_.round_) % n;
    }

    std::size_t start = wl_.block_ * prm.blockGenes;
    std::size_t len = std::min(prm.blockGenes, wl_.activeGenes_ - start);

    const float* xi = wl_.x_.readBlock(ctx, i, start, len);
    const float* xj = wl_.x_.readBlock(ctx, j, start, len);
    double dot = 0.0;
    for (std::size_t g = 0; g < len; ++g)
        dot += static_cast<double>(xi[g]) * static_cast<double>(xj[g]);
    ctx.compute(5 * len / 2); // multiply-accumulate chain per gene

    float k = wl_.kernel_.read(ctx, i, j);
    wl_.kernel_.write(ctx, i, j, k + static_cast<float>(dot));
}

void
SvmRfeTask::ascentSample(CoreContext& ctx, std::size_t i)
{
    std::size_t n = wl_.params_.nSamples;
    const float* krow = wl_.kernel_.readBlock(ctx, i, 0, n);
    double margin = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        margin += static_cast<double>(krow[j]) *
                  static_cast<double>(wl_.alpha_.host(j)) *
                  wl_.labels_[j];
    }
    ctx.load(wl_.alpha_.base(), static_cast<std::uint32_t>(n * 4));
    ctx.compute(3 * n);

    double a = wl_.alpha_.host(i);
    a += ascentRate * (1.0 - wl_.labels_[i] * margin);
    a = std::clamp(a, 0.0, alphaCap);
    wl_.alpha_.write(ctx, i, static_cast<float>(a));
}

void
SvmRfeTask::weightSample(CoreContext& ctx, std::size_t i)
{
    // This thread owns a contiguous gene range; accumulate sample i's
    // contribution to w over that range.
    std::size_t chunk =
        (wl_.activeGenes_ + wl_.nThreads_ - 1) / wl_.nThreads_;
    std::size_t lo = tid_ * chunk;
    if (lo >= wl_.activeGenes_)
        return;
    std::size_t len = std::min(chunk, wl_.activeGenes_ - lo);

    double coef = static_cast<double>(wl_.alpha_.read(ctx, i)) *
                  wl_.labels_[i];
    const float* row = wl_.x_.readBlock(ctx, i, lo, len);
    float* w = wl_.weights_.writeBlock(ctx, lo, len);
    ctx.load(wl_.weights_.addrOf(lo), static_cast<std::uint32_t>(len * 4));
    for (std::size_t g = 0; g < len; ++g)
        w[g] += static_cast<float>(coef * row[g]);
    ctx.compute(3 * len);
}

void
SvmRfeTask::compactRow(CoreContext& ctx, std::size_t i)
{
    std::size_t keep = wl_.keepIdx_.size();
    const float* row = wl_.x_.readBlock(ctx, i, 0, wl_.activeGenes_);
    // Gather the survivors to the row prefix (ascending -> in-place safe).
    std::vector<float> packed(keep);
    for (std::size_t k = 0; k < keep; ++k)
        packed[k] = row[wl_.keepIdx_[k]];
    float* dst = wl_.x_.writeBlock(ctx, i, 0, keep);
    std::copy(packed.begin(), packed.end(), dst);
    ctx.compute(2 * keep);
}

bool
SvmRfeTask::step(CoreContext& ctx)
{
    syncPhase();
    const SvmRfeParams& prm = wl_.params_;

    switch (wl_.phase_) {
      case SvmRfeWorkload::Phase::Kernel:
        if (cursor_ < prm.pairsPerBlock) {
            kernelPair(ctx, cursor_);
            cursor_ += wl_.nThreads_;
            return true;
        }
        waiter_.wait(wl_.barrier_, ctx);
        return true;

      case SvmRfeWorkload::Phase::Ascent:
        if (cursor_ < prm.nSamples) {
            ascentSample(ctx, cursor_);
            cursor_ += wl_.nThreads_;
            return true;
        }
        if (ascentIter_ + 1 < prm.ascentIters) {
            ++ascentIter_;
            cursor_ = tid_;
            return true;
        }
        waiter_.wait(wl_.barrier_, ctx);
        return true;

      case SvmRfeWorkload::Phase::Weights:
        if (cursor_ < prm.nSamples) {
            weightSample(ctx, cursor_);
            ++cursor_;
            return true;
        }
        waiter_.wait(wl_.barrier_, ctx);
        return true;

      case SvmRfeWorkload::Phase::Eliminate:
        if (cursor_ < prm.nSamples) {
            compactRow(ctx, cursor_);
            cursor_ += wl_.nThreads_;
            return true;
        }
        waiter_.wait(wl_.barrier_, ctx);
        return true;

      case SvmRfeWorkload::Phase::Done:
        return false;
    }
    return false;
}

std::unique_ptr<ThreadTask>
SvmRfeWorkload::createThread(unsigned tid)
{
    fatal_if(tid >= nThreads_, "SVM-RFE: thread id out of range");
    return std::make_unique<SvmRfeTask>(*this, tid);
}

double
SvmRfeWorkload::informativeSurvivalRate() const
{
    std::size_t informative_kept = 0;
    for (std::uint32_t id : geneIds_)
        if (id < params_.nInformative)
            ++informative_kept;
    return static_cast<double>(informative_kept) /
           static_cast<double>(params_.nInformative);
}

double
SvmRfeWorkload::trainingAccuracy() const
{
    // Score each sample with the surviving genes' final weights.
    std::size_t correct = 0;
    for (std::size_t i = 0; i < params_.nSamples; ++i) {
        double score = 0.0;
        for (std::size_t g = 0; g < activeGenes_; ++g) {
            score += static_cast<double>(weights_.host(g)) *
                     static_cast<double>(x_.host(i, g));
        }
        if ((score >= 0.0 ? 1 : -1) == labels_[i])
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(params_.nSamples);
}

bool
SvmRfeWorkload::verify()
{
    if (phase_ != Phase::Done) {
        warn("SVM-RFE: run ended before the RFE rounds completed");
        return false;
    }
    double survived = informativeSurvivalRate();
    double chance =
        static_cast<double>(activeGenes_) /
        static_cast<double>(params_.nGenes);
    double accuracy = trainingAccuracy();
    return survived > 1.5 * chance && accuracy > 0.75;
}

} // namespace cosim
