#include "workloads/fimi.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/random.hh"

namespace cosim {

FimiParams
FimiParams::scaled(double scale)
{
    fatal_if(scale <= 0.0, "FIMI scale must be positive");
    FimiParams p;
    p.txn.nTransactions = 140000;
    p.txn.nItems = 4000;
    p.txn.avgLength = 10;
    p.txn.maxLength = 24;
    p.txn.zipfS = 1.05;
    p.minSupport = 300;
    if (scale < 1.0) {
        p.txn.nTransactions = std::max<std::size_t>(
            2000, static_cast<std::size_t>(140000 * scale));
        p.minSupport = std::max<std::uint32_t>(
            8, static_cast<std::uint32_t>(300 * scale));
        if (scale < 0.1) {
            p.txn.nItems = 512;
            p.condTreeCapacity = 8192;
        }
    }
    return p;
}

/** FP-growth worker: scan, build (thread 0), then mine its items. */
class FimiTask : public ThreadTask
{
  public:
    FimiTask(FimiWorkload& wl, unsigned tid) : wl_(wl), tid_(tid) {}

    bool step(CoreContext& ctx) override;

    /**
     * Concurrent-safe: the first scan's counters take relaxed atomic
     * adds (commutative, exact); the tree build is thread-0-only while
     * the rest are fenced at the barrier; mining state is per-tid
     * (mineBuf_[tid], minedByTid_[tid]) over a by-then-immutable tree;
     * every phase change happens in the barrier release callback
     * behind the sync fence.
     */
    bool parallelStepSafe() const override { return true; }

  private:
    void scanBlock(CoreContext& ctx, std::size_t block);
    void buildBatch(CoreContext& ctx);
    bool mineStep(CoreContext& ctx);
    void finishItem();

    void
    syncPhase()
    {
        if (seenGen_ != wl_.phaseGen_) {
            seenGen_ = wl_.phaseGen_;
            cursor_ = tid_;
            mineStage_ = 0;
        }
    }

    FimiWorkload& wl_;
    unsigned tid_;
    std::uint64_t seenGen_ = ~std::uint64_t{0};
    std::size_t cursor_ = 0;
    BarrierWaiter waiter_;

    // Build cursor (thread 0 only).
    std::size_t buildTxn_ = 0;

    // Mining sub-state for the current item.
    unsigned mineStage_ = 0;
    std::uint32_t chainNode_ = FpTree::nil;
    std::vector<std::uint16_t> condItems_; ///< J, ascending rank
    std::vector<std::uint16_t> touched_;
    std::vector<std::uint16_t> touchedCond_;
    std::size_t mineJ_ = 0;
    std::uint32_t condChain_ = FpTree::nil;
    bool condOverflow_ = false;
};

FimiWorkload::FimiWorkload(const FimiParams& params) : params_(params)
{
    fatal_if(params_.minSupport == 0, "FIMI: minSupport must be nonzero");
    fatal_if(params_.txn.nItems == 0, "FIMI: empty item universe");
}

void
FimiWorkload::setUp(const WorkloadConfig& cfg, SimAllocator& alloc)
{
    nThreads_ = cfg.nThreads;

    Rng rng(cfg.seed * 0xf131f131ull + 17);
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint16_t> items;
    synth::transactions(params_.txn, rng, offsets, items);

    offsets_.init(alloc, "fimi.offsets", offsets.size());
    offsets_.hostData() = std::move(offsets);
    items_.init(alloc, "fimi.items", items.size());
    items_.hostData() = std::move(items);

    counts_.init(alloc, "fimi.item-counts", params_.txn.nItems);

    // Upper bound: every item instance could create a node.
    std::uint32_t cap =
        static_cast<std::uint32_t>(items_.size()) + 2;
    tree_.init(alloc, "fimi.tree", cap, params_.txn.nItems);

    mineBuf_.resize(nThreads_);
    for (unsigned t = 0; t < nThreads_; ++t) {
        std::string prefix = "fimi.t" + std::to_string(t);
        mineBuf_[t].condTree.init(alloc, prefix + ".cond",
                                  params_.condTreeCapacity,
                                  params_.txn.nItems);
        mineBuf_[t].condCount.init(alloc, prefix + ".condCount",
                                   params_.txn.nItems);
        mineBuf_[t].cond2Count.init(alloc, prefix + ".cond2Count",
                                    params_.txn.nItems);
    }

    rank_.assign(params_.txn.nItems, ~std::uint32_t{0});
    mineOrder_.clear();
    mined_.clear();
    minedByTid_.assign(nThreads_, {});

    phase_ = Phase::FirstScan;
    phaseGen_ = 0;
    barrier_.init(nThreads_);
    barrier_.setOnRelease([this] { advancePhase(); });
}

void
FimiWorkload::advancePhase()
{
    switch (phase_) {
      case Phase::FirstScan: {
        // Rank items by descending frequency; frequent ones get ranks.
        std::vector<std::uint16_t> freq;
        for (std::size_t i = 0; i < params_.txn.nItems; ++i) {
            if (counts_.host(i) >= params_.minSupport)
                freq.push_back(static_cast<std::uint16_t>(i));
        }
        std::sort(freq.begin(), freq.end(),
                  [this](std::uint16_t a, std::uint16_t b) {
                      if (counts_.host(a) != counts_.host(b))
                          return counts_.host(a) > counts_.host(b);
                      return a < b;
                  });
        for (std::size_t r = 0; r < freq.size(); ++r)
            rank_[freq[r]] = static_cast<std::uint32_t>(r);
        // Mining proceeds least-frequent first.
        mineOrder_.assign(freq.rbegin(), freq.rend());
        phase_ = Phase::Build;
        break;
      }
      case Phase::Build:
        phase_ = Phase::Mine;
        break;
      case Phase::Mine:
      case Phase::Done:
        // Fold the per-thread mining emissions in tid order; runs in
        // the barrier's release callback, i.e. on the scheduling
        // thread, after every miner arrived.
        for (std::vector<FrequentItemset>& staged : minedByTid_) {
            mined_.insert(mined_.end(), staged.begin(), staged.end());
            staged.clear();
        }
        phase_ = Phase::Done;
        break;
    }
    ++phaseGen_;
}

void
FimiTask::scanBlock(CoreContext& ctx, std::size_t block)
{
    const FimiParams& p = wl_.params_;
    std::size_t lo = block * p.scanBlockItems;
    std::size_t n =
        std::min(p.scanBlockItems, wl_.items_.size() - lo);

    const std::uint16_t* items = wl_.items_.readBlock(ctx, lo, n);
    for (std::size_t k = 0; k < n; ++k) {
        // Relaxed atomic add: scan blocks run concurrently under
        // --dex-threads and integer increments commute exactly, so the
        // final counts match the serial scan bit for bit.
        __atomic_fetch_add(&wl_.counts_.host(items[k]), 1u,
                           __ATOMIC_RELAXED);
    }
    // Each item is a read-modify-write of its counter.
    ctx.load(wl_.counts_.base(),
             static_cast<std::uint32_t>(wl_.counts_.size() * 4));
    ctx.store(wl_.counts_.base(),
              static_cast<std::uint32_t>(wl_.counts_.size() * 4));
    ctx.compute(2 * n);
}

void
FimiTask::buildBatch(CoreContext& ctx)
{
    const FimiParams& p = wl_.params_;
    std::size_t end =
        std::min(buildTxn_ + p.buildBatch, p.txn.nTransactions);

    std::vector<std::uint16_t> path;
    for (; buildTxn_ < end; ++buildTxn_) {
        std::uint32_t lo = wl_.offsets_.read(ctx, buildTxn_);
        std::uint32_t hi = wl_.offsets_.host(buildTxn_ + 1);
        if (hi == lo)
            continue;
        const std::uint16_t* items =
            wl_.items_.readBlock(ctx, lo, hi - lo);

        path.clear();
        for (std::uint32_t k = 0; k < hi - lo; ++k) {
            if (wl_.rank_[items[k]] != ~std::uint32_t{0})
                path.push_back(items[k]);
        }
        std::sort(path.begin(), path.end(),
                  [this](std::uint16_t a, std::uint16_t b) {
                      return wl_.rank_[a] < wl_.rank_[b];
                  });
        ctx.compute(8 * path.size() + 8);
        if (!path.empty()) {
            bool ok = wl_.tree_.insert(ctx, path.data(), path.size(), 1);
            panic_if(!ok, "FIMI: global tree pool exhausted");
        }
    }
}

bool
FimiTask::mineStep(CoreContext& ctx)
{
    const FimiParams& p = wl_.params_;
    auto& buf = wl_.mineBuf_[tid_];

    if (cursor_ >= wl_.mineOrder_.size())
        return false;
    std::uint16_t item = wl_.mineOrder_[cursor_];

    switch (mineStage_) {
      case 0: {
        // Start this item: clear only the conditional counters the
        // previous item touched (FP-growth's standard trick -- a full
        // memset per mined item would dominate the runtime), then find
        // the head of this item's node-link chain.
        for (std::uint16_t t : touchedCond_)
            buf.condCount.write(ctx, t, 0);
        touchedCond_.clear();
        chainNode_ = wl_.tree_.headerLink(ctx, item);
        mineStage_ = 1;
        return true;
      }

      case 1: {
        // First chain walk: accumulate the conditional pattern base.
        std::size_t budget = p.chainNodesPerStep;
        std::uint64_t visited = 0;
        while (chainNode_ != FpTree::nil && budget-- > 0) {
            FpNode node = wl_.tree_.readNode(ctx, chainNode_);
            std::uint32_t anc = node.parent;
            while (anc != FpTree::nil && anc != 0) {
                FpNode a = wl_.tree_.readNode(ctx, anc);
                std::uint32_t cc = buf.condCount.read(ctx, a.item);
                if (cc == 0)
                    touchedCond_.push_back(a.item);
                buf.condCount.write(ctx, a.item, cc + node.count);
                anc = a.parent;
                ++visited;
            }
            chainNode_ = node.nodeLink;
        }
        // Pointer arithmetic, compares and branches per visited node.
        ctx.compute(6 * visited + 8);
        if (chainNode_ != FpTree::nil)
            return true;

        // Conditional-frequent items: emit pairs, set up the triple
        // mining pass. Only touched counters can be frequent.
        condItems_.clear();
        std::sort(touchedCond_.begin(), touchedCond_.end());
        for (std::uint16_t j : touchedCond_) {
            std::uint32_t support = buf.condCount.host(j);
            if (support >= p.minSupport) {
                condItems_.push_back(static_cast<std::uint16_t>(j));
                FrequentItemset fs;
                fs.items[0] = item;
                fs.items[1] = static_cast<std::uint16_t>(j);
                fs.items[2] = 0;
                fs.arity = 2;
                fs.support = support;
                wl_.minedByTid_[tid_].push_back(fs);
            }
        }
        ctx.compute(2 * touchedCond_.size() + 8);
        std::sort(condItems_.begin(), condItems_.end(),
                  [this](std::uint16_t a, std::uint16_t b) {
                      return wl_.rank_[a] < wl_.rank_[b];
                  });

        if (condItems_.empty()) {
            finishItem();
            return true;
        }
        buf.condTree.reset(ctx);
        condOverflow_ = false;
        chainNode_ = wl_.tree_.headerLink(ctx, item);
        mineStage_ = 2;
        return true;
      }

      case 2: {
        // Second chain walk: build the private conditional tree from
        // the paths, filtered to the conditional-frequent items.
        std::size_t budget = p.chainNodesPerStep;
        std::vector<std::uint16_t> path;
        std::uint64_t walked = 0;
        while (chainNode_ != FpTree::nil && budget-- > 0) {
            FpNode node = wl_.tree_.readNode(ctx, chainNode_);
            path.clear();
            std::uint32_t anc = node.parent;
            while (anc != FpTree::nil && anc != 0) {
                FpNode a = wl_.tree_.readNode(ctx, anc);
                ++walked;
                if (wl_.rank_[a.item] != ~std::uint32_t{0} &&
                    buf.condCount.host(a.item) >= p.minSupport) {
                    path.push_back(a.item);
                }
                anc = a.parent;
            }
            // The upward walk yields ascending frequency; inserts want
            // descending.
            std::reverse(path.begin(), path.end());
            ctx.compute(4 * walked + 7 * path.size() + 4);
            walked = 0;
            if (!path.empty()) {
                if (!buf.condTree.insert(ctx, path.data(), path.size(),
                                         node.count)) {
                    condOverflow_ = true;
                }
            }
            chainNode_ = node.nodeLink;
        }
        if (chainNode_ != FpTree::nil)
            return true;

        if (condOverflow_) {
            // The memory bound was hit; triple supports would be
            // inexact, so skip them for this item.
            finishItem();
            return true;
        }
        mineJ_ = 0;
        mineStage_ = 3;
        return true;
      }

      case 3: {
        // Mine the conditional tree: one conditional item per step.
        if (mineJ_ >= condItems_.size()) {
            finishItem();
            return true;
        }
        // Ascending frequency within the conditional tree.
        std::uint16_t j =
            condItems_[condItems_.size() - 1 - mineJ_];
        ++mineJ_;

        // Clear only the counters touched last time.
        for (std::uint16_t t : touched_)
            buf.cond2Count.write(ctx, t, 0);
        touched_.clear();

        std::uint32_t node_idx = buf.condTree.headerLink(ctx, j);
        std::uint64_t visited = 0;
        while (node_idx != FpTree::nil) {
            FpNode node = buf.condTree.readNode(ctx, node_idx);
            std::uint32_t anc = node.parent;
            while (anc != FpTree::nil && anc != 0) {
                FpNode a = buf.condTree.readNode(ctx, anc);
                std::uint32_t cc = buf.cond2Count.read(ctx, a.item);
                if (cc == 0)
                    touched_.push_back(a.item);
                buf.cond2Count.write(ctx, a.item, cc + node.count);
                anc = a.parent;
                ++visited;
            }
            node_idx = node.nodeLink;
        }
        ctx.compute(6 * visited + 8);

        std::uint16_t item_i = wl_.mineOrder_[cursor_];
        for (std::uint16_t k : touched_) {
            std::uint32_t support = buf.cond2Count.host(k);
            if (support >= p.minSupport) {
                FrequentItemset fs;
                fs.items[0] = item_i;
                fs.items[1] = j;
                fs.items[2] = k;
                fs.arity = 3;
                fs.support = support;
                wl_.minedByTid_[tid_].push_back(fs);
            }
        }
        ctx.compute(touched_.size() + 8);
        return true;
      }

      default:
        panic("FIMI: bad mining stage");
    }
}

void
FimiTask::finishItem()
{
    cursor_ += wl_.nThreads_;
    mineStage_ = 0;
    chainNode_ = FpTree::nil;
}

bool
FimiTask::step(CoreContext& ctx)
{
    syncPhase();
    const FimiParams& p = wl_.params_;

    switch (wl_.phase_) {
      case FimiWorkload::Phase::FirstScan: {
        std::size_t blocks = (wl_.items_.size() + p.scanBlockItems - 1) /
                             p.scanBlockItems;
        if (cursor_ < blocks) {
            scanBlock(ctx, cursor_);
            cursor_ += wl_.nThreads_;
            return true;
        }
        waiter_.wait(wl_.barrier_, ctx);
        return true;
      }

      case FimiWorkload::Phase::Build:
        // The reference FP-growth builds the global tree serially.
        if (tid_ == 0 && buildTxn_ < p.txn.nTransactions) {
            buildBatch(ctx);
            return true;
        }
        waiter_.wait(wl_.barrier_, ctx);
        return true;

      case FimiWorkload::Phase::Mine:
        if (mineStep(ctx))
            return true;
        waiter_.wait(wl_.barrier_, ctx);
        return true;

      case FimiWorkload::Phase::Done:
        return false;
    }
    return false;
}

std::unique_ptr<ThreadTask>
FimiWorkload::createThread(unsigned tid)
{
    fatal_if(tid >= nThreads_, "FIMI: thread id out of range");
    return std::make_unique<FimiTask>(*this, tid);
}

std::uint32_t
FimiWorkload::referenceSupport(const std::uint16_t* items,
                               std::size_t n) const
{
    std::uint32_t support = 0;
    const auto& offs = offsets_.hostData();
    const auto& data = items_.hostData();
    for (std::size_t t = 0; t + 1 < offs.size(); ++t) {
        std::size_t found = 0;
        for (std::uint32_t k = offs[t]; k < offs[t + 1]; ++k) {
            for (std::size_t m = 0; m < n; ++m) {
                if (data[k] == items[m]) {
                    ++found;
                    break;
                }
            }
        }
        if (found == n)
            ++support;
    }
    return support;
}

bool
FimiWorkload::verify()
{
    if (mineOrder_.empty()) {
        warn("FIMI: no frequent items at this support threshold");
        return false;
    }

    // (1) Tree consistency: an item's node-link chain carries exactly
    // its first-scan count.
    for (std::size_t s = 0; s < std::min<std::size_t>(16,
                                                      mineOrder_.size());
         ++s) {
        std::uint16_t item =
            mineOrder_[s * 131 % mineOrder_.size()];
        if (tree_.hostChainSupport(item) != counts_.host(item))
            return false;
    }

    // (2) All mined supports respect the threshold and monotonicity.
    for (const FrequentItemset& fs : mined_) {
        if (fs.support < params_.minSupport)
            return false;
        for (std::uint8_t k = 0; k < fs.arity; ++k) {
            if (fs.support > counts_.host(fs.items[k]))
                return false;
        }
    }

    // (3) Spot-check mined supports against a brute-force recount.
    std::size_t checks = std::min<std::size_t>(8, mined_.size());
    for (std::size_t s = 0; s < checks; ++s) {
        const FrequentItemset& fs =
            mined_[s * 2654435761u % mined_.size()];
        if (referenceSupport(fs.items, fs.arity) != fs.support)
            return false;
    }
    return true;
}

} // namespace cosim
