#include "workloads/shot.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

#include "base/logging.hh"

namespace cosim {

namespace {

/** 48-bin histogram index of a pixel: 16 bins per RGB channel. */
inline void
histBins(synth::Pixel p, unsigned& r, unsigned& g, unsigned& b)
{
    r = synth::pixelR(p) >> 4;
    g = 16 + (synth::pixelG(p) >> 4);
    b = 32 + (synth::pixelB(p) >> 4);
}

} // namespace

ShotParams
ShotParams::scaled(double scale)
{
    fatal_if(scale <= 0.0, "SHOT scale must be positive");
    ShotParams p;
    if (scale < 1.0) {
        p.video.width = 360;
        p.video.height = 288;
        if (scale < 0.1) {
            p.video.width = 176;
            p.video.height = 144;
            p.video.nFrames = 32;
            p.video.shotLength = 5;
        }
    }
    return p;
}

/** Processes one thread's video segment frame by frame. */
class ShotTask : public ThreadTask
{
  public:
    ShotTask(ShotWorkload& wl, unsigned tid) : wl_(wl), tid_(tid)
    {
        unsigned total = wl_.params_.video.nFrames;
        unsigned per = (total + wl_.nThreads_ - 1) / wl_.nThreads_;
        first_ = std::min(tid * per, total);
        last_ = std::min(first_ + per, total);
        frame_ = first_;
    }

    /** Concurrent-safe: each task owns its frame range, histogram and
     *  cut buffers (buffers_[tid], cutsPerThread_[tid]); the synthetic
     *  video is a pure function of (frame, pixel). */
    bool parallelStepSafe() const override { return true; }

    bool
    step(CoreContext& ctx) override
    {
        if (frame_ >= last_)
            return false;
        processRows(ctx);
        return frame_ < last_;
    }

  private:
    SimArray<synth::Pixel>&
    curBuf()
    {
        auto& b = wl_.buffers_[tid_];
        return (frame_ % 2 == 0) ? b.frameA : b.frameB;
    }

    SimArray<synth::Pixel>&
    prevBuf()
    {
        auto& b = wl_.buffers_[tid_];
        return (frame_ % 2 == 0) ? b.frameB : b.frameA;
    }

    /**
     * Slice-based processing: decode a row into the private frame
     * buffer and, while its pixels are still register/L1-hot, fold them
     * into the colour histogram and the pixel difference against the
     * previous frame's row (the only re-read that touches memory).
     */
    void
    processRows(CoreContext& ctx)
    {
        const synth::VideoParams& v = wl_.params_.video;
        std::size_t end = std::min<std::size_t>(
            row_ + wl_.params_.rowsPerStep, v.height);
        bool have_prev = frame_ > first_;

        // Compressed bits consumed per decoded row (~2 bits/pixel).
        std::size_t row_bits = v.width / 4;
        for (; row_ < end; ++row_) {
            wl_.bitstream_.readBlock(
                ctx,
                (static_cast<std::size_t>(frame_) * v.height + row_) *
                    row_bits,
                row_bits);
            synth::Pixel* out =
                curBuf().writeBlock(ctx, row_ * v.width, v.width);
            const synth::Pixel* prev =
                have_prev
                    ? prevBuf().readBlock(ctx, row_ * v.width, v.width)
                    : nullptr;
            for (unsigned x = 0; x < v.width; ++x) {
                synth::Pixel px = wl_.synth_->pixel(frame_, x, row_);
                out[x] = px;
                unsigned r, g, b;
                histBins(px, r, g, b);
                ++hist_[r];
                ++hist_[g];
                ++hist_[b];
                if (prev != nullptr) {
                    int dr = static_cast<int>(synth::pixelR(px)) -
                             synth::pixelR(prev[x]);
                    int dg = static_cast<int>(synth::pixelG(px)) -
                             synth::pixelG(prev[x]);
                    int db = static_cast<int>(synth::pixelB(px)) -
                             synth::pixelB(prev[x]);
                    pixelDiff_ += static_cast<std::uint64_t>(
                        std::abs(dr) + std::abs(dg) + std::abs(db));
                }
            }
            // Decode arithmetic + binning + difference math.
            ctx.compute(v.width * 5 / 3);
        }
        if (row_ < v.height)
            return;

        finishFrame(ctx);
    }

    void
    finishFrame(CoreContext& ctx)
    {
        const synth::VideoParams& v = wl_.params_.video;
        auto& buf = wl_.buffers_[tid_];

        // Persist the histogram and compare with the previous frame's.
        std::uint32_t* hist = buf.hist.writeBlock(ctx, 0, 48);
        std::copy(hist_.begin(), hist_.end(), hist);

        if (frame_ > first_) {
            const std::uint32_t* ph = buf.prevHist.readBlock(ctx, 0, 48);
            std::uint64_t dist = 0;
            std::uint64_t total = 0;
            for (unsigned k = 0; k < 48; ++k) {
                dist += static_cast<std::uint64_t>(
                    std::abs(static_cast<long>(hist_[k]) -
                             static_cast<long>(ph[k])));
                total += hist_[k];
            }
            double hist_metric =
                static_cast<double>(dist) / (2.0 * static_cast<double>(total));
            double pix_metric =
                static_cast<double>(pixelDiff_) /
                (3.0 * 255.0 * static_cast<double>(v.width) * v.height);
            ctx.compute(48 * 3);

            // A cut when either feature jumps (the pixel difference
            // supplements the histogram, as in the paper).
            if (hist_metric > wl_.params_.cutThreshold ||
                pix_metric > 2.0 * wl_.params_.cutThreshold) {
                wl_.cutsPerThread_[tid_].push_back(frame_);
            }
        }

        std::uint32_t* ph = buf.prevHist.writeBlock(ctx, 0, 48);
        std::copy(hist_.begin(), hist_.end(), ph);

        ++frame_;
        row_ = 0;
        std::fill(hist_.begin(), hist_.end(), 0);
        pixelDiff_ = 0;
    }

    ShotWorkload& wl_;
    unsigned tid_;
    unsigned first_ = 0;
    unsigned last_ = 0;
    unsigned frame_ = 0;
    std::size_t row_ = 0;
    std::array<std::uint32_t, 48> hist_{};
    std::uint64_t pixelDiff_ = 0;
};

ShotWorkload::ShotWorkload(const ShotParams& params) : params_(params)
{
    fatal_if(params_.video.nFrames < 2, "SHOT: need at least two frames");
    fatal_if(params_.video.width % 16 != 0,
             "SHOT: frame width must be 16-aligned");
}

void
ShotWorkload::setUp(const WorkloadConfig& cfg, SimAllocator& alloc)
{
    nThreads_ = cfg.nThreads;
    seed_ = cfg.seed;
    synth_ = std::make_unique<synth::FrameSynthesizer>(params_.video,
                                                       cfg.seed);

    std::size_t pixels =
        static_cast<std::size_t>(params_.video.width) *
        params_.video.height;

    // The shared compressed input clip (~2 bits per pixel), streamed by
    // every thread's decoder.
    bitstream_.init(alloc, "shot.bitstream",
                    static_cast<std::size_t>(params_.video.nFrames) *
                        pixels / 4);

    buffers_.resize(nThreads_);
    for (unsigned t = 0; t < nThreads_; ++t) {
        std::string prefix = "shot.t" + std::to_string(t);
        buffers_[t].frameA.init(alloc, prefix + ".frameA", pixels);
        buffers_[t].frameB.init(alloc, prefix + ".frameB", pixels);
        buffers_[t].hist.init(alloc, prefix + ".hist", 48);
        buffers_[t].prevHist.init(alloc, prefix + ".prevHist", 48);
    }

    cutsPerThread_.assign(nThreads_, {});
}

std::unique_ptr<ThreadTask>
ShotWorkload::createThread(unsigned tid)
{
    fatal_if(tid >= nThreads_, "SHOT: thread id out of range");
    return std::make_unique<ShotTask>(*this, tid);
}

std::vector<unsigned>
ShotWorkload::detectedCuts() const
{
    std::vector<unsigned> all;
    for (const auto& cuts : cutsPerThread_)
        all.insert(all.end(), cuts.begin(), cuts.end());
    std::sort(all.begin(), all.end());
    return all;
}

std::vector<unsigned>
ShotWorkload::expectedCuts() const
{
    // A planted cut is detectable unless it is the first frame of its
    // thread's segment (no previous frame to compare against).
    unsigned total = params_.video.nFrames;
    unsigned per = (total + nThreads_ - 1) / nThreads_;
    std::vector<unsigned> expected;
    for (unsigned f = 1; f < total; ++f) {
        if (f % params_.video.shotLength != 0)
            continue;
        bool segment_first = (f % per) == 0;
        if (!segment_first)
            expected.push_back(f);
    }
    return expected;
}

bool
ShotWorkload::verify()
{
    return detectedCuts() == expectedCuts();
}

} // namespace cosim
