/**
 * @file
 * SVM-RFE: linear support-vector training with recursive feature
 * elimination (Section 2.2), as used for gene selection in disease
 * studies.
 *
 * Each RFE round:
 *   1. computes a (subsampled) kernel matrix over the active genes,
 *      processed in 4 MB gene blocks -- the data-blocking optimization
 *      the paper's footnote credits for the small 4 MB working set;
 *   2. trains the dual coefficients with kernel coordinate ascent;
 *   3. computes the primal weight |w_g| per gene and eliminates the
 *      lowest-ranked half, physically compacting the matrix.
 *
 * The expression matrix is shared and all threads cooperate on the same
 * gene block, so cache behaviour is insensitive to thread count.
 */

#ifndef COSIM_WORKLOADS_SVM_RFE_HH
#define COSIM_WORKLOADS_SVM_RFE_HH

#include <cstdint>
#include <vector>

#include "softsdv/guest.hh"
#include "workloads/sim_array.hh"
#include "workloads/thread_sync.hh"

namespace cosim {

/** Scaled input description. */
struct SvmRfeParams
{
    std::size_t nSamples = 253;   ///< tissue samples (paper's count)
    std::size_t nGenes = 15360;   ///< ~15 MB matrix at scale 1
    std::size_t blockGenes = 3072; ///< 253 x 3072 x 4 B ~ 3 MB hot block
    std::size_t nInformative = 768;
    double shift = 0.8;
    std::size_t pairsPerBlock = 2048; ///< kernel pairs sampled per block
    unsigned rfeRounds = 2;
    unsigned ascentIters = 10;

    static SvmRfeParams scaled(double scale);
};

/** See file comment. */
class SvmRfeWorkload : public Workload
{
  public:
    explicit SvmRfeWorkload(
        const SvmRfeParams& params = SvmRfeParams::scaled(1.0));

    std::string name() const override { return "SVM-RFE"; }
    std::string description() const override
    {
        return "SVM recursive feature elimination on a gene-expression "
               "matrix (blocked kernel computation)";
    }

    void setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override;
    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;
    bool verify() override;

    const SvmRfeParams& params() const { return params_; }

    /** Fraction of surviving genes that are informative (post-run). */
    double informativeSurvivalRate() const;

    /** Training accuracy of the final weight vector (post-run). */
    double trainingAccuracy() const;

  private:
    friend class SvmRfeTask;

    /** Cooperative phase machine the threads march through. */
    enum class Phase { Kernel, Ascent, Weights, Eliminate, Done };

    /** Run by the last thread to reach each barrier. */
    void advancePhase();

    /** Gene blocks in the current active set. */
    std::size_t nBlocks() const;

    SvmRfeParams params_;
    unsigned nThreads_ = 1;
    std::uint64_t seed_ = 0;

    SimMatrix<float> x_;          ///< samples x genes, row-major (shared)
    SimMatrix<float> kernel_;     ///< samples x samples (shared)
    SimArray<float> alpha_;       ///< dual coefficients
    SimArray<float> weights_;     ///< w_g per active gene

    std::vector<int> labels_;
    std::vector<std::uint32_t> geneIds_; ///< original id of each column
    std::vector<std::uint32_t> keepIdx_; ///< survivors of the last ranking

    Phase phase_ = Phase::Kernel;
    unsigned round_ = 0;
    std::size_t block_ = 0;
    std::size_t activeGenes_ = 0;
    std::uint64_t phaseGen_ = 0;
    PhaseBarrier barrier_;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_SVM_RFE_HH
