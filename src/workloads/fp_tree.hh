/**
 * @file
 * FP-tree: the prefix-tree structure at the heart of FP-growth
 * (Section 2.3, the FP-Zhu package's three stages: first scan, FP-tree
 * construction, mining).
 *
 * Nodes live in an instrumented pool (index-linked, 24 bytes each) so
 * that every pointer chase during construction and mining is visible to
 * the cache models: the global tree built from the transaction database
 * is the FIMI workload's shared ~16 MB working set, and the small
 * conditional trees rebuilt per mined item are its private per-thread
 * data.
 */

#ifndef COSIM_WORKLOADS_FP_TREE_HH
#define COSIM_WORKLOADS_FP_TREE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "softsdv/guest.hh"
#include "workloads/sim_array.hh"

namespace cosim {

/** One FP-tree node (index-linked; nil = no link). */
struct FpNode
{
    std::uint16_t item = 0xffff;
    std::uint16_t pad = 0;
    std::uint32_t count = 0;
    std::uint32_t parent = 0xffffffff;
    std::uint32_t firstChild = 0xffffffff;
    std::uint32_t nextSibling = 0xffffffff;
    std::uint32_t nodeLink = 0xffffffff;
};

static_assert(sizeof(FpNode) == 24, "FpNode must stay 24 bytes");

/** See file comment. */
class FpTree
{
  public:
    static constexpr std::uint32_t nil = 0xffffffff;

    FpTree() = default;

    /**
     * Allocate the node pool and header table in simulated memory.
     * @param capacity maximum nodes (including the root)
     * @param n_items header-table width
     */
    void init(SimAllocator& alloc, const std::string& name,
              std::uint32_t capacity, std::uint32_t n_items);

    /**
     * Drop all nodes and headers back to an empty tree (instrumented:
     * clearing the header table is real work conditional trees redo for
     * every mined item).
     */
    void reset(CoreContext& ctx);

    /**
     * Insert a transaction path (items must be pre-filtered and sorted
     * in descending global frequency) with multiplicity @p count.
     * @return false if the pool is exhausted (the caller skips the
     * insert; conditional trees use this as their memory bound)
     */
    bool insert(CoreContext& ctx, const std::uint16_t* items,
                std::size_t n, std::uint32_t count);

    /** Instrumented node read (24 B -> three 8 B loads). */
    FpNode
    readNode(CoreContext& ctx, std::uint32_t idx) const
    {
        return nodes_.read(ctx, idx);
    }

    /** Instrumented header-table read. */
    std::uint32_t
    headerLink(CoreContext& ctx, std::uint16_t item) const
    {
        return headers_.read(ctx, item);
    }

    std::uint32_t nodesUsed() const { return used_; }
    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }
    std::uint32_t nItems() const
    {
        return static_cast<std::uint32_t>(headers_.size());
    }

    /** Bytes of simulated memory the used nodes occupy. */
    std::uint64_t usedBytes() const
    {
        return static_cast<std::uint64_t>(used_) * sizeof(FpNode);
    }

    /** @name Host-side (uninstrumented) access for verification @{ */
    const FpNode& hostNode(std::uint32_t idx) const
    {
        return nodes_.host(idx);
    }
    std::uint32_t hostHeader(std::uint16_t item) const
    {
        return headers_.host(item);
    }
    /** Sum of counts along an item's node-link chain. */
    std::uint64_t hostChainSupport(std::uint16_t item) const;
    /** @} */

  private:
    SimArray<FpNode> nodes_;
    SimArray<std::uint32_t> headers_;
    std::uint32_t used_ = 0;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_FP_TREE_HH
