/**
 * @file
 * SNP: Bayesian-network structure learning by hill climbing.
 *
 * Section 2.1: the SNP workload learns the statistical relationships
 * between single-nucleotide-polymorphism sites with a hill-climbing
 * search; each candidate structure move is scored against the genotype
 * data. Our implementation plants a Markov chain over the variables,
 * scores candidate parent edges with a G-statistic (a log-likelihood
 * ratio over the 3x3 genotype contingency table, the core of BIC/K2
 * family scores), memoizes scores in a score cache, and hill-climbs on
 * the best-scoring edges.
 *
 * Memory structure (matching the paper's two working-set knees):
 *  - the full genotype matrix (shared, ~128 MB at scale 1, streamed
 *    column-wise during scoring), and
 *  - the "hot" candidate-parent columns + score cache (~16 MB at scale
 *    1, re-touched by every candidate evaluation).
 * All threads share both structures, so cache behaviour is insensitive
 * to the thread count, as Figures 4-6 report.
 */

#ifndef COSIM_WORKLOADS_SNP_HH
#define COSIM_WORKLOADS_SNP_HH

#include <cstdint>
#include <vector>

#include "softsdv/guest.hh"
#include "workloads/sim_array.hh"

namespace cosim {

/** Scaled input description. */
struct SnpParams
{
    std::size_t nVars = 512;
    std::size_t nSamples = 256 * 1024; ///< per variable; 128 MB total
    std::size_t hotVars = 24;          ///< ~6 MB of hot parent columns
    unsigned iterations = 3;
    double dependence = 0.9;
    std::size_t blockSamples = 4096;   ///< samples scanned per step()

    /** Derive the reproduction input at @p scale (1.0 = paper-like). */
    static SnpParams scaled(double scale);

    std::uint64_t genotypeBytes() const { return nVars * nSamples; }
};

/** See file comment. */
class SnpWorkload : public Workload
{
  public:
    explicit SnpWorkload(const SnpParams& params = SnpParams::scaled(1.0));

    std::string name() const override { return "SNP"; }
    std::string description() const override
    {
        return "Bayesian network structure learning (hill climbing) over "
               "a genotype matrix";
    }

    void setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override;
    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;
    bool verify() override;
    void tearDown() override;

    const SnpParams& params() const { return params_; }

    /** Host-side score recomputation (used by verify and tests). */
    double referenceScore(std::size_t v, std::size_t h) const;

  private:
    friend class SnpTask;

    /** Hot column paired with @p v in @p iter (iter 0 pairs the chain). */
    std::size_t hotPartner(std::size_t v, unsigned iter) const;

    SnpParams params_;
    unsigned nThreads_ = 1;
    std::uint64_t seed_ = 0;

    /** Variable-major genotype matrix: column v = samples of variable v. */
    SimArray<std::uint8_t> geno_;
    /** Memoized G-scores, nVars x hotVars. */
    SimMatrix<float> scoreCache_;

    /** Best (score, v, h) found per thread, for verification. */
    std::vector<double> bestScore_;
    std::vector<std::size_t> bestVar_;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_SNP_HH
