/**
 * @file
 * Creation of the eight data-mining workloads by name.
 */

#ifndef COSIM_WORKLOADS_WORKLOAD_FACTORY_HH
#define COSIM_WORKLOADS_WORKLOAD_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "softsdv/guest.hh"

namespace cosim {

/** Table 1 information for one workload. */
struct WorkloadInfo
{
    std::string name;
    std::string paperParameters; ///< Table 1 "Parameters" column
    std::string paperInput;      ///< Table 1 "Size of Data Input" column
    std::string substitution;    ///< what this reproduction uses instead
};

/** The eight workloads in the paper's Table 2 order. */
const std::vector<WorkloadInfo>& workloadCatalog();

/** Names only, in the same order. */
std::vector<std::string> workloadNames();

/**
 * Instantiate a workload by (case-insensitive) name with inputs derived
 * from @p scale (1.0 = the default reproduction input). fatal() on an
 * unknown name.
 */
std::unique_ptr<Workload> createWorkload(const std::string& name,
                                         double scale = 1.0);

} // namespace cosim

#endif // COSIM_WORKLOADS_WORKLOAD_FACTORY_HH
