/**
 * @file
 * Instrumented containers: real host data + simulated addresses.
 *
 * Workloads compute on ordinary memory, but every element access is also
 * reported to the virtual core's memory model (and from there to the
 * private caches, the FSB and Dragonhead). Access sizes are the element
 * sizes, so the cache models see exactly the reference stream the
 * algorithm generates.
 *
 * Host-only accessors (host()/hostAt()) bypass instrumentation; they are
 * for setUp()-time data generation and verify()-time checking, i.e. work
 * that the paper's rig would have excluded via the start/stop emulation
 * messages.
 */

#ifndef COSIM_WORKLOADS_SIM_ARRAY_HH
#define COSIM_WORKLOADS_SIM_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "mem/address_space.hh"
#include "softsdv/core_context.hh"

namespace cosim {

/** A fixed-size instrumented array of trivially copyable elements. */
template <typename T>
class SimArray
{
  public:
    SimArray() = default;

    /** Allocate @p n elements named @p name in simulated memory. */
    void
    init(SimAllocator& alloc, const std::string& name, std::size_t n)
    {
        data_.assign(n, T{});
        base_ = alloc.allocate(name, n * sizeof(T), 64);
    }

    bool initialized() const { return base_ != 0; }
    std::size_t size() const { return data_.size(); }
    Addr base() const { return base_; }

    /** Simulated address of element @p i. */
    Addr
    addrOf(std::size_t i) const
    {
        return base_ + i * sizeof(T);
    }

    /** Instrumented read. */
    T
    read(CoreContext& ctx, std::size_t i) const
    {
        ctx.load(addrOf(i), sizeof(T));
        return data_[i];
    }

    /** Instrumented write. */
    void
    write(CoreContext& ctx, std::size_t i, const T& v)
    {
        ctx.store(addrOf(i), sizeof(T));
        data_[i] = v;
    }

    /**
     * Instrumented read of @p count consecutive elements: the caches see
     * the whole span, and the core retires one load instruction per
     * element (scalar-walk accounting). Returns the host data pointer
     * for the caller to consume.
     */
    const T*
    readBlock(CoreContext& ctx, std::size_t i, std::size_t count) const
    {
        ctx.load(addrOf(i), static_cast<std::uint32_t>(count * sizeof(T)),
                 count);
        return data_.data() + i;
    }

    /** Instrumented write of @p count consecutive elements. */
    T*
    writeBlock(CoreContext& ctx, std::size_t i, std::size_t count)
    {
        ctx.store(addrOf(i),
                  static_cast<std::uint32_t>(count * sizeof(T)), count);
        return data_.data() + i;
    }

    /** Uninstrumented host access (setUp / verify only). */
    T& host(std::size_t i) { return data_[i]; }
    const T& host(std::size_t i) const { return data_[i]; }
    std::vector<T>& hostData() { return data_; }
    const std::vector<T>& hostData() const { return data_; }

  private:
    std::vector<T> data_;
    Addr base_ = 0;
};

/** A row-major instrumented 2-D matrix. */
template <typename T>
class SimMatrix
{
  public:
    SimMatrix() = default;

    void
    init(SimAllocator& alloc, const std::string& name, std::size_t rows,
         std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        flat_.init(alloc, name, rows * cols);
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    Addr base() const { return flat_.base(); }

    Addr
    addrOf(std::size_t r, std::size_t c) const
    {
        return flat_.addrOf(r * cols_ + c);
    }

    T
    read(CoreContext& ctx, std::size_t r, std::size_t c) const
    {
        return flat_.read(ctx, r * cols_ + c);
    }

    void
    write(CoreContext& ctx, std::size_t r, std::size_t c, const T& v)
    {
        flat_.write(ctx, r * cols_ + c, v);
    }

    /** One wide instrumented read of @p count elements within row @p r. */
    const T*
    readBlock(CoreContext& ctx, std::size_t r, std::size_t c,
              std::size_t count) const
    {
        return flat_.readBlock(ctx, r * cols_ + c, count);
    }

    T*
    writeBlock(CoreContext& ctx, std::size_t r, std::size_t c,
               std::size_t count)
    {
        return flat_.writeBlock(ctx, r * cols_ + c, count);
    }

    T& host(std::size_t r, std::size_t c) { return flat_.host(r * cols_ + c); }
    const T&
    host(std::size_t r, std::size_t c) const
    {
        return flat_.host(r * cols_ + c);
    }

    SimArray<T>& flat() { return flat_; }
    const SimArray<T>& flat() const { return flat_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    SimArray<T> flat_;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_SIM_ARRAY_HH
