/**
 * @file
 * SHOT: video shot-boundary detection (Section 2.6).
 *
 * Each thread owns a segment of the clip and, frame by frame, "decodes"
 * (synthesizes) the frame into its private buffer, computes the 48-bin
 * RGB colour histogram (16 bins per channel) and the pixel-wise
 * difference against the previous frame, and declares a cut when the
 * histogram distance jumps -- the two features the paper's shot detector
 * uses.
 *
 * Memory structure: two ~1.7 MB frame buffers per thread plus scratch
 * (~3.5 MB private per thread; "about 4MB per thread" in the paper), and
 * almost no shared data -- so the working set scales linearly with the
 * core count (32 -> 64 -> 128 MB), the behaviour Figures 4-6 report.
 */

#ifndef COSIM_WORKLOADS_SHOT_HH
#define COSIM_WORKLOADS_SHOT_HH

#include <cstdint>
#include <vector>

#include "softsdv/guest.hh"
#include "workloads/data/video.hh"
#include "workloads/sim_array.hh"

namespace cosim {

/** Scaled input description. */
struct ShotParams
{
    synth::VideoParams video{720, 576, 64, 9};
    std::size_t rowsPerStep = 48;
    double cutThreshold = 0.30; ///< normalized histogram distance

    static ShotParams scaled(double scale);
};

/** See file comment. */
class ShotWorkload : public Workload
{
  public:
    explicit ShotWorkload(
        const ShotParams& params = ShotParams::scaled(1.0));

    std::string name() const override { return "SHOT"; }
    std::string description() const override
    {
        return "shot-boundary detection: colour histogram + pixel "
               "difference over synthesized video";
    }

    void setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override;
    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;
    bool verify() override;

    const ShotParams& params() const { return params_; }

    /** Frames detected as cuts (post-run, ascending). */
    std::vector<unsigned> detectedCuts() const;

    /** Frames that should be detected given the segmentation. */
    std::vector<unsigned> expectedCuts() const;

  private:
    friend class ShotTask;

    ShotParams params_;
    unsigned nThreads_ = 1;
    std::uint64_t seed_ = 0;

    std::unique_ptr<synth::FrameSynthesizer> synth_;

    /** The compressed input stream (shared, read during decode). */
    SimArray<std::uint8_t> bitstream_;

    /** Private per-thread buffers. */
    struct ThreadBuffers
    {
        SimArray<synth::Pixel> frameA;
        SimArray<synth::Pixel> frameB;
        SimArray<std::uint32_t> hist;     ///< 48-bin RGB histogram
        SimArray<std::uint32_t> prevHist;
    };
    std::vector<ThreadBuffers> buffers_;

    std::vector<std::vector<unsigned>> cutsPerThread_;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_SHOT_HH
