/**
 * @file
 * Cooperative synchronization for DEX-scheduled workload threads.
 *
 * These primitives are plain state machines -- no atomics: in the serial
 * scheduler all virtual cores share one host thread, and the sharded
 * scheduler fences every task at wait() entry (see CoreContext::syncFence)
 * so barrier state is only ever touched from the scheduling thread. A
 * blocked task calls ctx.yield() so the scheduler donates the rest of
 * its slice instead of letting it spin, which keeps barrier idling from
 * polluting the instruction counts that MPKI is normalized by.
 */

#ifndef COSIM_WORKLOADS_THREAD_SYNC_HH
#define COSIM_WORKLOADS_THREAD_SYNC_HH

#include <cstdint>
#include <functional>

#include "base/logging.hh"
#include "softsdv/core_context.hh"

namespace cosim {

/**
 * A generational barrier. The last task to arrive runs the release
 * callback (typically "advance the shared phase") and bumps the
 * generation, releasing everyone.
 */
class PhaseBarrier
{
  public:
    PhaseBarrier() = default;

    /** Configure for @p parties tasks; clears all state. */
    void
    init(unsigned parties)
    {
        fatal_if(parties == 0, "barrier needs at least one party");
        parties_ = parties;
        arrived_ = 0;
        generation_ = 0;
    }

    /** Callback run by the last arriver, before release. */
    void setOnRelease(std::function<void()> fn) { onRelease_ = std::move(fn); }

    std::uint64_t generation() const { return generation_; }

    /** Register one arrival; the last arrival releases the barrier. */
    void
    arrive()
    {
        panic_if(parties_ == 0, "barrier used before init()");
        if (++arrived_ == parties_) {
            arrived_ = 0;
            if (onRelease_)
                onRelease_();
            ++generation_;
        }
    }

  private:
    unsigned parties_ = 0;
    unsigned arrived_ = 0;
    std::uint64_t generation_ = 0;
    std::function<void()> onRelease_;
};

/**
 * Per-task barrier client. Call wait() once per step() while it returns
 * true (the caller should charge a few idle instructions, yield, and
 * return); when it returns false the barrier has released this task.
 */
class BarrierWaiter
{
  public:
    /** @return true while the task must keep waiting. */
    bool
    wait(PhaseBarrier& barrier, CoreContext& ctx)
    {
        // Under --dex-threads the concurrent pass must not touch the
        // shared barrier; the fence pauses this task (charging nothing)
        // and the scheduler re-runs it on the scheduling thread. The
        // caller's contract -- nothing charged before wait() in the
        // waiting step -- makes the re-run exact.
        if (ctx.syncFence())
            return true;
        if (!arrived_) {
            waitGen_ = barrier.generation();
            barrier.arrive();
            arrived_ = true;
        }
        if (barrier.generation() == waitGen_) {
            ctx.compute(16); // the check-and-pause instructions
            ctx.yield();
            return true;
        }
        arrived_ = false;
        return false;
    }

  private:
    bool arrived_ = false;
    std::uint64_t waitGen_ = 0;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_THREAD_SYNC_HH
