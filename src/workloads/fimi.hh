/**
 * @file
 * FIMI: frequent-itemset mining with FP-growth (Section 2.3).
 *
 * Three stages, as in the FP-Zhu package the paper used:
 *  1. first scan -- count item frequencies over the transaction stream;
 *  2. FP-tree construction -- insert every transaction (filtered to
 *     frequent items, sorted by descending frequency) into the shared
 *     prefix tree (built serially, as in the reference implementation);
 *  3. mining -- per frequent item (partitioned across threads,
 *     least-frequent first), walk its node-link chain, accumulate the
 *     conditional pattern base, emit frequent pairs, and build a small
 *     private conditional FP-tree to mine frequent triples.
 *
 * Memory structure: the global tree (~16 MB at scale 1) is shared and
 * read-only during mining; each thread's conditional tree and counters
 * are private and small -- which is why the paper sees only a 20-30%
 * miss increase when scaling threads.
 */

#ifndef COSIM_WORKLOADS_FIMI_HH
#define COSIM_WORKLOADS_FIMI_HH

#include <cstdint>
#include <vector>

#include "softsdv/guest.hh"
#include "workloads/data/synth.hh"
#include "workloads/fp_tree.hh"
#include "workloads/thread_sync.hh"

namespace cosim {

/** Scaled input description. */
struct FimiParams
{
    synth::TransactionParams txn;
    std::uint32_t minSupport = 300;
    std::size_t scanBlockItems = 2048;  ///< first-scan step granularity
    std::size_t buildBatch = 32;        ///< transactions per build step
    std::size_t chainNodesPerStep = 256;
    std::uint32_t condTreeCapacity = 65536; ///< per-thread bound

    static FimiParams scaled(double scale);
};

/** A mined frequent itemset (1-3 items) with its support. */
struct FrequentItemset
{
    std::uint16_t items[3];
    std::uint8_t arity;
    std::uint32_t support;
};

/** See file comment. */
class FimiWorkload : public Workload
{
  public:
    explicit FimiWorkload(
        const FimiParams& params = FimiParams::scaled(1.0));

    std::string name() const override { return "FIMI"; }
    std::string description() const override
    {
        return "FP-growth frequent itemset mining over Kosarak-like "
               "transactions";
    }

    void setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override;
    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;
    bool verify() override;

    const FimiParams& params() const { return params_; }

    /** All mined itemsets (post-run). */
    const std::vector<FrequentItemset>& results() const { return mined_; }

    /** The shared FP-tree (post-run inspection / tests). */
    const FpTree& tree() const { return tree_; }

    /** Host-side brute-force support count of a 1-3 itemset. */
    std::uint32_t referenceSupport(const std::uint16_t* items,
                                   std::size_t n) const;

  private:
    friend class FimiTask;

    enum class Phase { FirstScan, Build, Mine, Done };

    void advancePhase();

    FimiParams params_;
    unsigned nThreads_ = 1;

    /** Flattened transaction database (shared, streamed). */
    SimArray<std::uint32_t> offsets_;
    SimArray<std::uint16_t> items_;

    /** First-scan output. */
    SimArray<std::uint32_t> counts_;

    /** Frequency-descending order: rank[item]; ~0 if infrequent. */
    std::vector<std::uint32_t> rank_;
    /** Frequent items in ascending frequency (mining order). */
    std::vector<std::uint16_t> mineOrder_;

    FpTree tree_; ///< the shared global tree

    /** Per-thread private mining state. */
    struct MineBuffers
    {
        FpTree condTree;
        SimArray<std::uint32_t> condCount;
        SimArray<std::uint32_t> cond2Count;
    };
    std::vector<MineBuffers> mineBuf_;

    Phase phase_ = Phase::FirstScan;
    std::uint64_t phaseGen_ = 0;
    PhaseBarrier barrier_;

    /**
     * Mining emissions staged per thread (disjoint under concurrent
     * quanta) and folded into mined_ in tid order when the Mine phase's
     * barrier releases. Every run -- serial or --dex-threads -- goes
     * through the same staging, so the final order is identical too.
     */
    std::vector<std::vector<FrequentItemset>> minedByTid_;
    std::vector<FrequentItemset> mined_;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_FIMI_HH
