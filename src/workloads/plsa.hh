/**
 * @file
 * PLSA: parallel linear-space sequence alignment (Section 2.4).
 *
 * Smith-Waterman local alignment of two DNA sequences, organized the way
 * the PLSA paper [15] parallelizes it: the DP grid is cut into strips of
 * rows (one per thread) and blocks of columns; block (t, c) can start
 * once block (t-1, c) has produced the strip-boundary row, giving a
 * wavefront across threads. Space is linear: only rolling row buffers
 * are kept, plus a checkpoint buffer holding every K-th DP row that the
 * divide-and-conquer traceback re-reads to recover the alignment without
 * the O(n^2) matrix.
 *
 * Memory structure: row buffers and block edges are small and private;
 * the checkpoint grid (~4 MB at scale 1) is shared, so the working set
 * is nearly insensitive to the thread count, and the access pattern is
 * almost purely sequential -- the paper's PLSA row: 83% memory
 * instructions, tiny L2 miss ratio, highest IPC.
 */

#ifndef COSIM_WORKLOADS_PLSA_HH
#define COSIM_WORKLOADS_PLSA_HH

#include <cstdint>
#include <vector>

#include "softsdv/guest.hh"
#include "workloads/sim_array.hh"

namespace cosim {

/** Scaled input description. */
struct PlsaParams
{
    std::size_t seqLen = 4096;     ///< both sequences (paper: 30k)
    std::size_t blockWidth = 512;  ///< wavefront block columns
    std::size_t checkpointStride = 16; ///< keep every K-th DP row
    std::size_t commonLen = 512;   ///< planted exact common subsequence
    std::size_t rowsPerStep = 4;   ///< DP rows advanced per step()
    std::size_t tracebackBands = 64;
    // BLAST-flavoured DNA scoring: the expected score of extending a
    // random alignment is firmly negative, so the local-alignment
    // background stays logarithmic and the planted region dominates.
    int matchScore = 2;
    int mismatchScore = -3;
    int gapPenalty = 5;

    static PlsaParams scaled(double scale);
};

/** See file comment. */
class PlsaWorkload : public Workload
{
  public:
    explicit PlsaWorkload(
        const PlsaParams& params = PlsaParams::scaled(1.0));

    std::string name() const override { return "PLSA"; }
    std::string description() const override
    {
        return "linear-space Smith-Waterman alignment with block "
               "wavefront parallelism and checkpointed traceback";
    }

    void setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override;
    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;
    bool verify() override;

    const PlsaParams& params() const { return params_; }

    /** Best local-alignment score found (post-run). */
    int bestScore() const { return bestScore_; }

    /** Host-side full-matrix Smith-Waterman (verify and tests). */
    int referenceScore() const;

  private:
    friend class PlsaTask;

    std::size_t stripRows() const;
    std::size_t nBlocks() const;

    /** Substitution score of sequence characters. */
    int sub(std::uint8_t x, std::uint8_t y) const
    {
        return x == y ? params_.matchScore : params_.mismatchScore;
    }

    void recordBest(int score, std::size_t row, std::size_t col);

    PlsaParams params_;
    unsigned nThreads_ = 1;

    SimArray<std::uint8_t> a_; ///< vertical sequence (rows)
    SimArray<std::uint8_t> b_; ///< horizontal sequence (columns)
    SimMatrix<std::int32_t> boundary_;   ///< strip-bottom rows (shared)
    SimMatrix<std::int32_t> checkpoint_; ///< every K-th DP row (shared)

    /** Private per-thread rolling state. */
    struct ThreadBuffers
    {
        SimArray<std::int32_t> prevRow; ///< block width + 1
        SimArray<std::int32_t> curRow;  ///< block width + 1
        SimArray<std::int32_t> leftIn;  ///< per-local-row left edge (read)
        SimArray<std::int32_t> leftOut; ///< per-local-row left edge (write)
    };
    std::vector<ThreadBuffers> buffers_;

    /** Wavefront progress: block-columns completed per thread. */
    std::vector<std::size_t> progress_;

    /** Traceback scratch rows (used by thread 0's traceback). */
    SimArray<std::int32_t> tbPrev_;
    SimArray<std::int32_t> tbCur_;

    int bestScore_ = 0;
    std::size_t bestRow_ = 0;
    std::size_t bestCol_ = 0;
    std::uint64_t tracebackCellsVisited_ = 0;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_PLSA_HH
