#include "workloads/mds.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/random.hh"
#include "workloads/data/synth.hh"

namespace cosim {

MdsParams
MdsParams::scaled(double scale)
{
    fatal_if(scale <= 0.0, "MDS scale must be positive");
    MdsParams p;
    if (scale < 1.0) {
        double nnz = static_cast<double>(p.nnzPerRow) * scale;
        p.nnzPerRow = std::max<std::size_t>(
            64, (static_cast<std::size_t>(nnz) / 64) * 64);
        if (scale < 0.1)
            p.nSentences = 1024;
    }
    return p;
}

/**
 * Power-iteration worker; thread 0 also runs the MMR selection once the
 * rank vector converged.
 */
class MdsTask : public ThreadTask
{
  public:
    MdsTask(MdsWorkload& wl, unsigned tid) : wl_(wl), tid_(tid) {}

    bool step(CoreContext& ctx) override;

    /**
     * Concurrent-safe: powerRows writes rankNext_ rows strided by tid
     * (disjoint) against a stable rank_; the rank_/rankNext_ swap runs
     * in the barrier's release callback, i.e. on the scheduling thread
     * behind the sync fence; Mmr runs on thread 0 only while the rest
     * are fenced at the barrier.
     */
    bool parallelStepSafe() const override { return true; }

  private:
    void powerRows(CoreContext& ctx, std::size_t count);
    void mmrRound(CoreContext& ctx);

    void
    syncPhase()
    {
        if (seenGen_ != wl_.phaseGen_) {
            seenGen_ = wl_.phaseGen_;
            cursor_ = tid_;
        }
    }

    MdsWorkload& wl_;
    unsigned tid_;
    std::uint64_t seenGen_ = ~std::uint64_t{0};
    std::size_t cursor_ = 0;
    BarrierWaiter waiter_;

    std::vector<float> penalty_; ///< MMR redundancy penalty (thread 0)
};

MdsWorkload::MdsWorkload(const MdsParams& params) : params_(params)
{
    fatal_if(params_.powerIters == 0, "MDS: need at least one iteration");
    fatal_if(params_.summaryLength == 0, "MDS: empty summary");
    fatal_if(params_.summaryLength > params_.nSentences,
             "MDS: summary longer than the corpus");
}

void
MdsWorkload::setUp(const WorkloadConfig& cfg, SimAllocator& alloc)
{
    nThreads_ = cfg.nThreads;

    Rng rng(cfg.seed * 0x3d5a11ull + 23);
    std::vector<std::uint32_t> row_ptr;
    std::vector<std::uint32_t> col;
    std::vector<float> val;
    synth::similarityCsr(params_.nSentences, params_.nnzPerRow, rng,
                         row_ptr, col, val);

    entries_.init(alloc, "mds.matrix", col.size());
    for (std::size_t i = 0; i < col.size(); ++i)
        entries_.host(i) = packEntry(col[i], val[i]);

    rowPtr_.init(alloc, "mds.rowptr", row_ptr.size());
    rowPtr_.hostData() = std::move(row_ptr);

    rank_.init(alloc, "mds.rank", params_.nSentences);
    rankNext_.init(alloc, "mds.rank-next", params_.nSentences);
    queryAffinity_.init(alloc, "mds.query-affinity", params_.nSentences);

    float uniform = 1.0f / static_cast<float>(params_.nSentences);
    for (std::size_t i = 0; i < params_.nSentences; ++i) {
        rank_.host(i) = uniform;
        queryAffinity_.host(i) =
            static_cast<float>(0.1 + 0.9 * rng.nextDouble());
    }

    phase_ = Phase::Power;
    iter_ = 0;
    phaseGen_ = 0;
    summary_.clear();

    barrier_.init(nThreads_);
    barrier_.setOnRelease([this] { advancePhase(); });
}

void
MdsWorkload::advancePhase()
{
    switch (phase_) {
      case Phase::Power:
        // The freshly computed vector becomes the current one.
        rank_.hostData().swap(rankNext_.hostData());
        ++iter_;
        if (iter_ >= params_.powerIters)
            phase_ = Phase::Mmr;
        break;
      case Phase::Mmr:
        phase_ = Phase::Done;
        break;
      case Phase::Done:
        break;
    }
    ++phaseGen_;
}

void
MdsTask::powerRows(CoreContext& ctx, std::size_t count)
{
    const MdsParams& p = wl_.params_;
    for (std::size_t r = 0; r < count && cursor_ < p.nSentences; ++r) {
        std::size_t row = cursor_;
        std::uint32_t lo = wl_.rowPtr_.read(ctx, row);
        std::uint32_t hi = wl_.rowPtr_.host(row + 1);
        std::size_t nnz = hi - lo;

        // Stream the packed (column, weight) pairs of this row and
        // gather the rank entries they reference; the columns sweep the
        // corpus in ascending order, so the gather is one pass over the
        // rank vector.
        const std::uint64_t* entries = wl_.entries_.readBlock(ctx, lo, nnz);
        // The gather retires one load per entry; its cache footprint is
        // one ascending sweep of the rank vector (or less, for sparse
        // rows).
        std::uint64_t gather_bytes =
            std::min<std::uint64_t>(wl_.rank_.size() * 4, nnz * 8);
        ctx.load(wl_.rank_.base(),
                 static_cast<std::uint32_t>(gather_bytes), nnz);

        double acc = 0.0;
        for (std::size_t k = 0; k < nnz; ++k) {
            acc += static_cast<double>(
                       MdsWorkload::entryWeight(entries[k])) *
                   wl_.rank_.host(MdsWorkload::entryCol(entries[k]));
        }
        ctx.compute(2 * nnz);

        float out = static_cast<float>(
            (1.0 - p.damping) / static_cast<double>(p.nSentences) +
            p.damping * acc);
        wl_.rankNext_.write(ctx, row, out);

        cursor_ += wl_.nThreads_;
    }
}

void
MdsTask::mmrRound(CoreContext& ctx)
{
    const MdsParams& p = wl_.params_;
    std::size_t n = p.nSentences;

    if (penalty_.empty())
        penalty_.assign(n, 0.0f);

    // Score every candidate: relevance (query affinity x rank) traded
    // against redundancy with the already selected sentences.
    ctx.load(wl_.rank_.base(), static_cast<std::uint32_t>(n * 4));
    ctx.load(wl_.queryAffinity_.base(), static_cast<std::uint32_t>(n * 4));
    double best = -1e300;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < n; ++i) {
        bool taken = std::find(wl_.summary_.begin(), wl_.summary_.end(),
                               static_cast<std::uint32_t>(i)) !=
                     wl_.summary_.end();
        if (taken)
            continue;
        double score =
            p.mmrLambda * static_cast<double>(wl_.queryAffinity_.host(i)) *
                wl_.rank_.host(i) -
            (1.0 - p.mmrLambda) * static_cast<double>(penalty_[i]);
        if (score > best) {
            best = score;
            best_i = i;
        }
    }
    ctx.compute(n / 2);

    wl_.summary_.push_back(static_cast<std::uint32_t>(best_i));

    // Update redundancy penalties with the chosen sentence's similarity
    // row (stream it once).
    std::uint32_t lo = wl_.rowPtr_.read(ctx, best_i);
    std::uint32_t hi = wl_.rowPtr_.host(best_i + 1);
    const std::uint64_t* entries =
        wl_.entries_.readBlock(ctx, lo, hi - lo);
    for (std::uint32_t k = 0; k < hi - lo; ++k) {
        penalty_[MdsWorkload::entryCol(entries[k])] +=
            MdsWorkload::entryWeight(entries[k]);
    }
    ctx.compute((hi - lo) / 4);
}

bool
MdsTask::step(CoreContext& ctx)
{
    syncPhase();
    const MdsParams& p = wl_.params_;

    switch (wl_.phase_) {
      case MdsWorkload::Phase::Power:
        if (cursor_ < p.nSentences) {
            powerRows(ctx, p.rowsPerStep);
            return true;
        }
        waiter_.wait(wl_.barrier_, ctx);
        return true;

      case MdsWorkload::Phase::Mmr:
        if (tid_ == 0 && wl_.summary_.size() < p.summaryLength) {
            mmrRound(ctx);
            return true;
        }
        waiter_.wait(wl_.barrier_, ctx);
        return true;

      case MdsWorkload::Phase::Done:
        return false;
    }
    return false;
}

std::unique_ptr<ThreadTask>
MdsWorkload::createThread(unsigned tid)
{
    fatal_if(tid >= nThreads_, "MDS: thread id out of range");
    return std::make_unique<MdsTask>(*this, tid);
}

const std::vector<float>
MdsWorkload::rankVector() const
{
    return rank_.hostData();
}

std::vector<float>
MdsWorkload::referenceRank() const
{
    std::size_t n = params_.nSentences;
    std::vector<float> r(n, 1.0f / static_cast<float>(n));
    std::vector<float> next(n, 0.0f);

    for (unsigned it = 0; it < params_.powerIters; ++it) {
        for (std::size_t row = 0; row < n; ++row) {
            std::uint32_t lo = rowPtr_.host(row);
            std::uint32_t hi = rowPtr_.host(row + 1);
            double acc = 0.0;
            for (std::uint32_t k = lo; k < hi; ++k) {
                std::uint64_t e = entries_.host(k);
                acc += static_cast<double>(entryWeight(e)) *
                       r[entryCol(e)];
            }
            next[row] = static_cast<float>(
                (1.0 - params_.damping) / static_cast<double>(n) +
                params_.damping * acc);
        }
        r.swap(next);
    }
    return r;
}

bool
MdsWorkload::verify()
{
    if (summary_.size() != params_.summaryLength)
        return false;

    // Summary sentences must be distinct.
    std::vector<std::uint32_t> sorted = summary_;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        return false;

    // The parallel rank vector must match the host reference.
    std::vector<float> ref = referenceRank();
    double max_err = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        max_err = std::max(
            max_err, std::fabs(static_cast<double>(ref[i]) -
                               static_cast<double>(rank_.host(i))));
    }
    if (max_err > 1e-6)
        return false;

    // The first selected sentence maximizes relevance (no penalty yet).
    double best = -1e300;
    std::uint32_t best_i = 0;
    for (std::size_t i = 0; i < params_.nSentences; ++i) {
        double score = params_.mmrLambda *
                       static_cast<double>(queryAffinity_.host(i)) *
                       rank_.host(i);
        if (score > best) {
            best = score;
            best_i = static_cast<std::uint32_t>(i);
        }
    }
    return summary_[0] == best_i;
}

} // namespace cosim
