/**
 * @file
 * RSEARCH: RNA secondary-structure homology search with a CYK parser
 * over a stochastic context-free grammar (Section 2.2).
 *
 * The grammar is the classic Nussinov-style folding SCFG
 * (S -> a S a' | a S | S a | S S | e) evaluated with two banded dynamic
 * programming matrices per thread -- V (best score with (i, j) paired)
 * and W (best score of the subsequence), the structure of Zuker-style
 * folding codes. Each thread scans its share of windows of the shared
 * nucleotide database; the planted hairpins give verify() a ground
 * truth.
 *
 * Memory structure: the DP matrices are private (~0.5 MB per thread at
 * scale 1, the paper's per-thread working set), the database is shared
 * and effectively streamed, so the aggregate working set scales with
 * the thread count (4 / 8 / 16 MB at 8 / 16 / 32 cores).
 */

#ifndef COSIM_WORKLOADS_RSEARCH_HH
#define COSIM_WORKLOADS_RSEARCH_HH

#include <cstdint>
#include <vector>

#include "softsdv/guest.hh"
#include "workloads/sim_array.hh"

namespace cosim {

/** Scaled input description. */
struct RsearchParams
{
    std::size_t dbLength = 8 * 1024 * 1024; ///< shared database (bases)
    std::size_t window = 256;   ///< bases per scanned window
    std::size_t band = 128;     ///< max pairing span (banded DP)
    std::size_t maxSplit = 16;  ///< bifurcation split candidates per cell
    std::size_t windowsPerThread = 4;
    std::size_t stemLen = 16;   ///< planted hairpin stem length
    std::size_t hairpinSpacing = 4096;
    double scoreThreshold = 58.0; ///< hit if helix score exceeds this

    static RsearchParams scaled(double scale);
};

/** See file comment. */
class RsearchWorkload : public Workload
{
  public:
    explicit RsearchWorkload(
        const RsearchParams& params = RsearchParams::scaled(1.0));

    std::string name() const override { return "RSEARCH"; }
    std::string description() const override
    {
        return "SCFG / CYK RNA homology search over a nucleotide "
               "database (banded folding DP)";
    }

    void setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override;
    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;
    bool verify() override;

    const RsearchParams& params() const { return params_; }

    /**
     * Windows whose fold score crossed the threshold (post-run).
     * Derived from the per-window scores on demand: the scores are the
     * only result tasks record, each into its own disjoint slot, which
     * is what lets RsearchTask run concurrently under --dex-threads.
     */
    std::vector<std::size_t> hits() const;

    /** Total windows scanned per run (fixed at the SCMP work size). */
    std::size_t totalWindows() const;

    /** Score of scanned window @p w, or -1 if it was not scanned. */
    double windowScore(std::size_t w) const { return windowScores_.at(w); }

    /**
     * Host-side reference: banded Nussinov fold score of db[start,
     * start+len). Used by verify() and the unit tests.
     */
    double referenceFoldScore(std::size_t start, std::size_t len) const;

    /** Database offset of window @p w. */
    std::size_t windowStart(std::size_t w) const;

  private:
    friend class RsearchTask;

    /** Record a finished window's score (called by the tasks). */
    void recordScore(std::size_t window, double score);

    RsearchParams params_;
    unsigned nThreads_ = 1;

    SimArray<std::uint8_t> db_;   ///< shared nucleotide database
    std::vector<std::size_t> planted_;

    /** Private DP state, allocated per thread at setUp. */
    struct ThreadBuffers
    {
        SimArray<float> v; ///< V matrix, band x window
        SimArray<float> w; ///< W matrix, band x window
        SimArray<float> h; ///< helix matrix, band x window
        SimArray<std::uint8_t> seq; ///< private copy of the window
    };
    std::vector<ThreadBuffers> buffers_;

    std::vector<double> windowScores_;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_RSEARCH_HH
