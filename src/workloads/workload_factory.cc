#include "workloads/workload_factory.hh"

#include "base/logging.hh"
#include "base/str.hh"
#include "workloads/fimi.hh"
#include "workloads/mds.hh"
#include "workloads/plsa.hh"
#include "workloads/rsearch.hh"
#include "workloads/shot.hh"
#include "workloads/snp.hh"
#include "workloads/svm_rfe.hh"
#include "workloads/viewtype.hh"

namespace cosim {

const std::vector<WorkloadInfo>&
workloadCatalog()
{
    static const std::vector<WorkloadInfo> catalog = {
        {"SNP", "600k sequences, each with length 50",
         "30MB, real datasets from HGBASE",
         "synthetic genotype matrix from a planted Markov chain "
         "(hot candidate columns + full matrix)"},
        {"SVM-RFE", "253 tissue samples, each with 15k genes",
         "30MB, real micro-array dataset on Cancer",
         "synthetic two-class expression matrix with planted "
         "informative genes"},
        {"MDS", "220 pages with 25k sequences",
         "4.1M, synthetic dataset from web search document",
         "synthetic sentence-similarity CSR matrix (~300MB compressed) "
         "+ query affinities"},
        {"SHOT", "10-min MPEG-2 video", "200MB, 720x576 resolution",
         "procedurally synthesized 720x576 clip with planted cuts "
         "every 9 frames"},
        {"FIMI", "990k transactions and mini-support=800",
         "30MB, real dataset Kosarak",
         "Zipf-distributed synthetic transactions (Kosarak-like skew)"},
        {"VIEWTYPE", "10-min MPEG-2 video", "200MB, 720x576 resolution",
         "procedurally synthesized clip with planted view types per "
         "shot"},
        {"PLSA", "two sequences in 30k length",
         "60KB, real DNA sequences from Gene bank",
         "synthetic DNA pair with a planted exact common subsequence"},
        {"RSEARCH", "100MB database, search sequence size 100",
         "100MB, real datasets from Gene bank",
         "synthetic nucleotide database with planted RNA hairpins"},
    };
    return catalog;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto& info : workloadCatalog())
        names.push_back(info.name);
    return names;
}

std::unique_ptr<Workload>
createWorkload(const std::string& name, double scale)
{
    std::string n = toLower(name);
    if (n == "snp")
        return std::make_unique<SnpWorkload>(SnpParams::scaled(scale));
    if (n == "svm-rfe" || n == "svmrfe" || n == "svm_rfe")
        return std::make_unique<SvmRfeWorkload>(
            SvmRfeParams::scaled(scale));
    if (n == "mds")
        return std::make_unique<MdsWorkload>(MdsParams::scaled(scale));
    if (n == "shot")
        return std::make_unique<ShotWorkload>(ShotParams::scaled(scale));
    if (n == "fimi")
        return std::make_unique<FimiWorkload>(FimiParams::scaled(scale));
    if (n == "viewtype")
        return std::make_unique<ViewtypeWorkload>(
            ViewtypeParams::scaled(scale));
    if (n == "plsa")
        return std::make_unique<PlsaWorkload>(PlsaParams::scaled(scale));
    if (n == "rsearch")
        return std::make_unique<RsearchWorkload>(
            RsearchParams::scaled(scale));
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace cosim
