/**
 * @file
 * Procedural MPEG-2 stand-in: deterministic synthetic video frames with
 * planted shot cuts and view types.
 *
 * The SHOT and VIEWTYPE workloads consumed 10-minute 720x576 MPEG-2
 * clips. The synthesizer plays the decoder's role: pixel(f, x, y) is a
 * pure function, so any thread can "decode" any frame of its segment
 * into its private frame buffer, and the planted ground truth (cut
 * positions, per-frame view type) lets verify() check the mining result.
 *
 * Frames within a shot share a palette and drift slowly (global motion +
 * a moving blob); a new shot re-seeds the palette, which makes both the
 * color histogram and the pixel-difference signal jump, exactly the two
 * features the shot-detection workload uses. For view-type frames the
 * bottom region of the image is a "playfield" (a narrow green hue band)
 * whose area fraction encodes the view type.
 */

#ifndef COSIM_WORKLOADS_DATA_VIDEO_HH
#define COSIM_WORKLOADS_DATA_VIDEO_HH

#include <cstdint>

namespace cosim {
namespace synth {

/** The four view types of the VIEWTYPE workload (Section 2.6). */
enum class ViewType : std::uint8_t {
    Global = 0,
    Medium = 1,
    CloseUp = 2,
    OutOfView = 3,
};

const char* toString(ViewType v);

/** Static description of a synthetic clip. */
struct VideoParams
{
    unsigned width = 720;
    unsigned height = 576;
    unsigned nFrames = 48;
    /** A planted cut starts a new shot every this many frames. */
    unsigned shotLength = 9;
};

/** Pixels are packed RGBX (R in the low byte). */
using Pixel = std::uint32_t;

inline std::uint8_t pixelR(Pixel p) { return static_cast<std::uint8_t>(p); }
inline std::uint8_t pixelG(Pixel p)
{
    return static_cast<std::uint8_t>(p >> 8);
}
inline std::uint8_t pixelB(Pixel p)
{
    return static_cast<std::uint8_t>(p >> 16);
}

/** Approximate hue in [0, 255] of a pixel (for HSV dominant color). */
std::uint8_t hueOf(Pixel p);

/** True iff the pixel falls in the playfield's green hue band. */
bool isPlayfieldHue(Pixel p);

/** See file comment. */
class FrameSynthesizer
{
  public:
    FrameSynthesizer(const VideoParams& params, std::uint64_t seed);

    const VideoParams& params() const { return params_; }

    /** Deterministic pixel value of frame @p f at (@p x, @p y). */
    Pixel pixel(unsigned f, unsigned x, unsigned y) const;

    /** Index of the shot containing frame @p f. */
    unsigned shotIndex(unsigned f) const { return f / params_.shotLength; }

    /** True iff frame @p f is the first frame of a (non-initial) shot. */
    bool
    isCut(unsigned f) const
    {
        return f != 0 && f % params_.shotLength == 0;
    }

    /** Planted view type of frame @p f (cycles through all four). */
    ViewType plannedView(unsigned f) const;

    /** Playfield area fraction implied by a view type. */
    static double playfieldFraction(ViewType v);

  private:
    std::uint64_t shotSeed(unsigned shot) const;

    VideoParams params_;
    std::uint64_t seed_;
};

} // namespace synth
} // namespace cosim

#endif // COSIM_WORKLOADS_DATA_VIDEO_HH
