#include "workloads/data/synth.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace cosim {
namespace synth {

std::vector<std::uint8_t>
genotypeChain(std::size_t n_vars, std::size_t n_samples, double dependence,
              Rng& rng)
{
    fatal_if(n_vars == 0 || n_samples == 0, "empty genotype matrix");
    std::vector<std::uint8_t> geno(n_vars * n_samples);

    // Generate sample-by-sample down the chain, storing variable-major.
    for (std::size_t s = 0; s < n_samples; ++s) {
        std::uint8_t prev = static_cast<std::uint8_t>(rng.nextBounded(3));
        geno[s] = prev;
        for (std::size_t v = 1; v < n_vars; ++v) {
            std::uint8_t g = rng.nextBool(dependence)
                ? prev
                : static_cast<std::uint8_t>(rng.nextBounded(3));
            geno[v * n_samples + s] = g;
            prev = g;
        }
    }
    return geno;
}

std::vector<float>
geneExpression(std::size_t n_samples, std::size_t n_genes,
               std::size_t n_informative, double shift, Rng& rng,
               std::vector<int>& labels_out)
{
    fatal_if(n_informative > n_genes,
             "more informative genes than genes");
    std::vector<float> x(n_samples * n_genes);
    labels_out.resize(n_samples);

    for (std::size_t i = 0; i < n_samples; ++i) {
        int label = (i % 2 == 0) ? 1 : -1;
        labels_out[i] = label;
        for (std::size_t g = 0; g < n_genes; ++g) {
            double v = rng.nextGaussian(0.0, 1.0);
            if (g < n_informative)
                v += label * shift;
            x[i * n_genes + g] = static_cast<float>(v);
        }
    }
    return x;
}

std::vector<std::uint8_t>
nucleotideDatabase(std::size_t length, std::size_t stem_len,
                   std::size_t hairpin_spacing, Rng& rng,
                   std::vector<std::size_t>& planted_out)
{
    fatal_if(length == 0, "empty database");
    std::vector<std::uint8_t> db(length);
    for (auto& base : db)
        base = static_cast<std::uint8_t>(rng.nextBounded(4));

    // Plant hairpins: stem (s), loop of 4, reverse complement of stem.
    std::size_t hp_len = 2 * stem_len + 4;
    if (hairpin_spacing == 0 || hp_len == 0 || hp_len >= length)
        return db;
    for (std::size_t pos = hairpin_spacing / 2;
         pos + hp_len < length; pos += hairpin_spacing) {
        for (std::size_t k = 0; k < stem_len; ++k) {
            std::uint8_t b = db[pos + k];
            // complement: A<->U (0<->3), C<->G (1<->2)
            db[pos + hp_len - 1 - k] = static_cast<std::uint8_t>(3 - b);
        }
        planted_out.push_back(pos);
    }
    return db;
}

void
alignmentPair(std::size_t len_a, std::size_t len_b, std::size_t common_len,
              std::size_t pos_a, std::size_t pos_b, Rng& rng,
              std::vector<std::uint8_t>& a_out,
              std::vector<std::uint8_t>& b_out)
{
    fatal_if(pos_a + common_len > len_a || pos_b + common_len > len_b,
             "planted common subsequence does not fit");
    a_out.resize(len_a);
    b_out.resize(len_b);
    for (auto& c : a_out)
        c = static_cast<std::uint8_t>(rng.nextBounded(4));
    for (auto& c : b_out)
        c = static_cast<std::uint8_t>(rng.nextBounded(4));
    for (std::size_t k = 0; k < common_len; ++k)
        b_out[pos_b + k] = a_out[pos_a + k];
}

void
transactions(const TransactionParams& params, Rng& rng,
             std::vector<std::uint32_t>& offsets_out,
             std::vector<std::uint16_t>& items_out)
{
    fatal_if(params.nItems == 0 || params.nItems > 65536,
             "item universe must fit in uint16");
    fatal_if(params.avgLength == 0 || params.maxLength < params.avgLength,
             "bad transaction lengths");

    offsets_out.clear();
    items_out.clear();
    offsets_out.reserve(params.nTransactions + 1);
    items_out.reserve(params.nTransactions * params.avgLength);
    offsets_out.push_back(0);

    std::vector<std::uint16_t> txn;
    for (std::size_t t = 0; t < params.nTransactions; ++t) {
        // Length in [1, maxLength], mean ~ avgLength.
        std::size_t len = 1 + rng.nextBounded(2 * params.avgLength - 1);
        len = std::min(len, params.maxLength);

        txn.clear();
        for (std::size_t k = 0; k < len; ++k) {
            txn.push_back(static_cast<std::uint16_t>(
                rng.nextZipf(params.nItems, params.zipfS)));
        }
        std::sort(txn.begin(), txn.end());
        txn.erase(std::unique(txn.begin(), txn.end()), txn.end());

        items_out.insert(items_out.end(), txn.begin(), txn.end());
        offsets_out.push_back(
            static_cast<std::uint32_t>(items_out.size()));
    }
}

void
similarityCsr(std::size_t n_rows, std::size_t nnz_per_row, Rng& rng,
              std::vector<std::uint32_t>& row_ptr_out,
              std::vector<std::uint32_t>& col_out,
              std::vector<float>& val_out)
{
    fatal_if(n_rows == 0 || nnz_per_row == 0, "empty similarity matrix");

    row_ptr_out.assign(n_rows + 1, 0);
    col_out.clear();
    val_out.clear();
    col_out.reserve(n_rows * nnz_per_row);
    val_out.reserve(n_rows * nnz_per_row);

    for (std::size_t r = 0; r < n_rows; ++r) {
        // Ascending columns spread evenly across the corpus (with a
        // per-row rotation): text similarity links a sentence to
        // sentences everywhere in the document set. Exactly nnz_per_row
        // entries per row keeps the compressed layout constant-stride,
        // the access property Section 4.3 calls out for MDS.
        std::size_t offset =
            (r * 2654435761ull + rng.nextBounded(97)) % n_rows;
        for (std::size_t k = 0; k < nnz_per_row; ++k) {
            std::size_t col = (offset + k * n_rows / nnz_per_row) % n_rows;
            col_out.push_back(static_cast<std::uint32_t>(col));
            val_out.push_back(
                static_cast<float>(0.05 + 0.95 * rng.nextDouble()));
        }
        row_ptr_out[r + 1] = static_cast<std::uint32_t>(col_out.size());
    }

    // Row-normalize so power iteration is stable (stochastic-ish matrix).
    for (std::size_t r = 0; r < n_rows; ++r) {
        double sum = 0.0;
        for (std::uint32_t i = row_ptr_out[r]; i < row_ptr_out[r + 1]; ++i)
            sum += val_out[i];
        if (sum <= 0.0)
            continue;
        for (std::uint32_t i = row_ptr_out[r]; i < row_ptr_out[r + 1]; ++i)
            val_out[i] = static_cast<float>(val_out[i] / sum);
    }
}

} // namespace synth
} // namespace cosim
