/**
 * @file
 * Synthetic dataset generators.
 *
 * The paper's inputs (HGBASE SNP sequences, cancer micro-arrays, GenBank
 * sequences, the Kosarak click-stream, web-search documents) are not
 * redistributable; these generators produce deterministic synthetic
 * equivalents that preserve the memory-relevant structure of each input:
 * value distributions, planted signal for verification, and footprints
 * that put working-set knees where the paper reports them.
 */

#ifndef COSIM_WORKLOADS_DATA_SYNTH_HH
#define COSIM_WORKLOADS_DATA_SYNTH_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"

namespace cosim {
namespace synth {

/**
 * Genotype matrix for SNP: @p n_vars variables x @p n_samples samples of
 * values {0,1,2}, generated from a planted Markov chain: variable v
 * copies variable v-1 with probability @p dependence, else is uniform.
 * Stored variable-major (one contiguous column of samples per variable).
 */
std::vector<std::uint8_t> genotypeChain(std::size_t n_vars,
                                        std::size_t n_samples,
                                        double dependence, Rng& rng);

/**
 * Two-class gene expression matrix for SVM-RFE (@p n_samples rows x
 * @p n_genes columns, row-major floats). The first @p n_informative genes
 * are shifted by +/- @p shift according to the sample's class; the rest
 * are pure noise. Returns the matrix; @p labels_out receives +/-1 labels.
 */
std::vector<float> geneExpression(std::size_t n_samples,
                                  std::size_t n_genes,
                                  std::size_t n_informative, double shift,
                                  Rng& rng, std::vector<int>& labels_out);

/**
 * A random nucleotide database (values 0..3) for RSEARCH, with hairpin
 * structures (a stem of @p stem_len reverse-complement pairs) planted
 * every @p hairpin_spacing bases. Planted positions are appended to
 * @p planted_out.
 */
std::vector<std::uint8_t> nucleotideDatabase(
    std::size_t length, std::size_t stem_len, std::size_t hairpin_spacing,
    Rng& rng, std::vector<std::size_t>& planted_out);

/**
 * A pair of DNA sequences for PLSA with a shared (exactly common)
 * subsequence of @p common_len planted at @p pos_a / @p pos_b.
 */
void alignmentPair(std::size_t len_a, std::size_t len_b,
                   std::size_t common_len, std::size_t pos_a,
                   std::size_t pos_b, Rng& rng,
                   std::vector<std::uint8_t>& a_out,
                   std::vector<std::uint8_t>& b_out);

/** Transaction database parameters for FIMI. */
struct TransactionParams
{
    std::size_t nTransactions = 100000;
    std::size_t nItems = 4000;
    std::size_t avgLength = 10;
    std::size_t maxLength = 24;
    double zipfS = 1.05; ///< Kosarak-like popularity skew
};

/**
 * Kosarak-like transactions: Zipf-distributed item popularity, variable
 * transaction lengths, items within a transaction sorted ascending and
 * de-duplicated. Flattened: @p offsets_out[i] .. offsets_out[i+1] indexes
 * @p items_out.
 */
void transactions(const TransactionParams& params, Rng& rng,
                  std::vector<std::uint32_t>& offsets_out,
                  std::vector<std::uint16_t>& items_out);

/**
 * CSR sentence-similarity matrix for MDS: @p n_rows sentences, @p
 * nnz_per_row similar sentences each (band-limited random columns,
 * ascending), float weights in (0, 1).
 */
void similarityCsr(std::size_t n_rows, std::size_t nnz_per_row, Rng& rng,
                   std::vector<std::uint32_t>& row_ptr_out,
                   std::vector<std::uint32_t>& col_out,
                   std::vector<float>& val_out);

} // namespace synth
} // namespace cosim

#endif // COSIM_WORKLOADS_DATA_SYNTH_HH
