#include "workloads/data/video.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cosim {
namespace synth {

namespace {

/** Cheap stateless 64 -> 32 bit mix (for per-pixel noise). */
inline std::uint32_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return static_cast<std::uint32_t>(x);
}

constexpr std::uint8_t playfieldHueLo = 75;
constexpr std::uint8_t playfieldHueHi = 95;

} // namespace

const char*
toString(ViewType v)
{
    switch (v) {
      case ViewType::Global:
        return "global";
      case ViewType::Medium:
        return "medium";
      case ViewType::CloseUp:
        return "close-up";
      case ViewType::OutOfView:
        return "out-of-view";
    }
    return "?";
}

std::uint8_t
hueOf(Pixel p)
{
    int r = pixelR(p);
    int g = pixelG(p);
    int b = pixelB(p);
    int mx = std::max({r, g, b});
    int mn = std::min({r, g, b});
    int d = mx - mn;
    if (d == 0)
        return 0;
    int h;
    if (mx == r)
        h = (256 * (g - b) / d) / 6;
    else if (mx == g)
        h = (256 * 2 + 256 * (b - r) / d) / 6;
    else
        h = (256 * 4 + 256 * (r - g) / d) / 6;
    if (h < 0)
        h += 256;
    return static_cast<std::uint8_t>(h);
}

bool
isPlayfieldHue(Pixel p)
{
    std::uint8_t h = hueOf(p);
    // Require green dominance too so dark noise does not qualify.
    return h >= playfieldHueLo && h <= playfieldHueHi &&
           pixelG(p) > pixelR(p) && pixelG(p) > pixelB(p);
}

FrameSynthesizer::FrameSynthesizer(const VideoParams& params,
                                   std::uint64_t seed)
    : params_(params), seed_(seed)
{
    fatal_if(params_.width == 0 || params_.height == 0,
             "empty video frame");
    fatal_if(params_.shotLength == 0, "shot length must be nonzero");
}

std::uint64_t
FrameSynthesizer::shotSeed(unsigned shot) const
{
    return seed_ * 0x9e3779b97f4a7c15ull + shot * 0xbf58476d1ce4e5b9ull;
}

ViewType
FrameSynthesizer::plannedView(unsigned f) const
{
    return static_cast<ViewType>(shotIndex(f) % 4);
}

double
FrameSynthesizer::playfieldFraction(ViewType v)
{
    switch (v) {
      case ViewType::Global:
        return 0.70;
      case ViewType::Medium:
        return 0.40;
      case ViewType::CloseUp:
        return 0.12;
      case ViewType::OutOfView:
        return 0.0;
    }
    return 0.0;
}

Pixel
FrameSynthesizer::pixel(unsigned f, unsigned x, unsigned y) const
{
    unsigned shot = shotIndex(f);
    std::uint64_t ss = shotSeed(shot);

    // Per-shot palette.
    std::uint32_t pal = mix(ss);
    std::uint8_t base_r = static_cast<std::uint8_t>(pal);
    std::uint8_t base_b = static_cast<std::uint8_t>(pal >> 16);

    // Playfield region: the bottom fraction of the frame, green band.
    double field_frac = playfieldFraction(plannedView(f));
    unsigned field_top = static_cast<unsigned>(
        static_cast<double>(params_.height) * (1.0 - field_frac));
    if (y >= field_top) {
        std::uint32_t n = mix(ss ^ (static_cast<std::uint64_t>(y) << 32 |
                                    x));
        std::uint8_t g = static_cast<std::uint8_t>(150 + (n & 63));
        std::uint8_t r = static_cast<std::uint8_t>(30 + (n >> 8 & 31));
        std::uint8_t b = static_cast<std::uint8_t>(30 + (n >> 16 & 31));
        return static_cast<Pixel>(r) | (static_cast<Pixel>(g) << 8) |
               (static_cast<Pixel>(b) << 16);
    }

    // Background: palette gradient with slow per-frame drift. Green is
    // kept strictly below the other channels so only the playfield is
    // ever green-dominant (real crowds/stands are not grass-coloured).
    unsigned drift = (f % params_.shotLength) * 3;
    std::uint8_t r = static_cast<std::uint8_t>(
        64 + (base_r % 160) + ((x + drift) * 31 / params_.width));
    std::uint8_t b = static_cast<std::uint8_t>(
        64 + (base_b % 160) + (y * 31 / params_.height));
    std::uint8_t g = static_cast<std::uint8_t>(std::min(r, b) / 2);

    // A moving blob (a "player"): brightens a disc that tracks the frame
    // index, giving the pixel-difference feature something to see inside
    // a shot.
    int blob_x = static_cast<int>(
        (mix(ss ^ 0x1234) % params_.width + f * 7) % params_.width);
    int blob_y = static_cast<int>(
        (mix(ss ^ 0x5678) % (field_top > 0 ? field_top : 1)));
    int dx = static_cast<int>(x) - blob_x;
    int dy = static_cast<int>(y) - blob_y;
    if (dx * dx + dy * dy < 400) {
        r = static_cast<std::uint8_t>(std::min(255, r + 90));
        g = static_cast<std::uint8_t>(std::min(255, g + 90));
        b = static_cast<std::uint8_t>(std::min(255, b + 90));
    }

    return static_cast<Pixel>(r) | (static_cast<Pixel>(g) << 8) |
           (static_cast<Pixel>(b) << 16);
}

} // namespace synth
} // namespace cosim
