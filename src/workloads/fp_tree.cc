#include "workloads/fp_tree.hh"

#include <cstddef>

#include "base/logging.hh"

namespace cosim {

void
FpTree::init(SimAllocator& alloc, const std::string& name,
             std::uint32_t capacity, std::uint32_t n_items)
{
    fatal_if(capacity < 2, "FP-tree needs room for a root and a node");
    nodes_.init(alloc, name + ".nodes", capacity);
    headers_.init(alloc, name + ".headers", n_items);
    for (std::size_t i = 0; i < headers_.size(); ++i)
        headers_.host(i) = nil;
    nodes_.host(0) = FpNode(); // the item-less root
    used_ = 1;
}

void
FpTree::reset(CoreContext& ctx)
{
    std::uint32_t* hdr =
        headers_.writeBlock(ctx, 0, headers_.size());
    std::fill_n(hdr, headers_.size(), nil);
    nodes_.write(ctx, 0, FpNode());
    used_ = 1;
}

bool
FpTree::insert(CoreContext& ctx, const std::uint16_t* items,
               std::size_t n, std::uint32_t count)
{
    std::uint32_t cur = 0;
    std::uint64_t scanned = 0;
    for (std::size_t k = 0; k < n; ++k) {
        std::uint16_t item = items[k];

        // Search the child list for this item.
        FpNode cur_node = nodes_.read(ctx, cur);
        std::uint32_t child = cur_node.firstChild;
        std::uint32_t found = nil;
        std::uint32_t prev = nil;
        while (child != nil) {
            FpNode c = nodes_.read(ctx, child);
            ++scanned;
            if (c.item == item) {
                found = child;
                break;
            }
            prev = child;
            child = c.nextSibling;
        }

        if (found != nil) {
            // Bump the shared-prefix count in place.
            FpNode& host = nodes_.host(found);
            host.count += count;
            ctx.store(nodes_.addrOf(found) + offsetof(FpNode, count), 4);
            // Move-to-front: frequent children (which Zipf-skewed
            // transactions revisit constantly) stay at the head of the
            // sibling list.
            if (prev != nil) {
                nodes_.host(prev).nextSibling = host.nextSibling;
                host.nextSibling = nodes_.host(cur).firstChild;
                nodes_.host(cur).firstChild = found;
                ctx.store(nodes_.addrOf(prev) +
                              offsetof(FpNode, nextSibling), 4);
                ctx.store(nodes_.addrOf(found) +
                              offsetof(FpNode, nextSibling), 4);
                ctx.store(nodes_.addrOf(cur) +
                              offsetof(FpNode, firstChild), 4);
            }
            cur = found;
            continue;
        }

        // Allocate and splice a new node at the head of the child list
        // and of the item's node-link chain.
        if (used_ >= nodes_.size())
            return false;
        std::uint32_t idx = used_++;

        FpNode fresh;
        fresh.item = item;
        fresh.count = count;
        fresh.parent = cur;
        fresh.nextSibling = cur_node.firstChild;
        fresh.nodeLink = headers_.read(ctx, item);
        nodes_.write(ctx, idx, fresh);

        nodes_.host(cur).firstChild = idx;
        ctx.store(nodes_.addrOf(cur) + offsetof(FpNode, firstChild), 4);
        headers_.write(ctx, item, idx);

        cur = idx;
    }
    ctx.compute(5 * scanned + 10 * n + 4);
    return true;
}

std::uint64_t
FpTree::hostChainSupport(std::uint16_t item) const
{
    std::uint64_t total = 0;
    std::uint32_t node = headers_.host(item);
    while (node != nil) {
        total += nodes_.host(node).count;
        node = nodes_.host(node).nodeLink;
    }
    return total;
}

} // namespace cosim
