/**
 * @file
 * MDS: multi-document summarization (Section 2.5).
 *
 * Graph-based sentence ranking (power iteration over a row-stochastic
 * sentence-similarity matrix, LexRank-style) followed by Maximum
 * Marginal Relevance selection of the summary. The similarity matrix is
 * stored compressed (CSR with packed (column, weight) pairs), ~300 MB at
 * scale 1 -- the paper's "frequently referenced ... sparse matrix of
 * 300MB" that makes MDS insensitive to every simulated cache size, while
 * its constant-stride streaming makes it one of the biggest winners from
 * larger cache lines.
 *
 * Threads partition matrix rows and share everything; cache behaviour is
 * insensitive to the thread count.
 */

#ifndef COSIM_WORKLOADS_MDS_HH
#define COSIM_WORKLOADS_MDS_HH

#include <cstdint>
#include <vector>

#include "softsdv/guest.hh"
#include "workloads/sim_array.hh"
#include "workloads/thread_sync.hh"

namespace cosim {

/** Scaled input description. */
struct MdsParams
{
    std::size_t nSentences = 2048;
    std::size_t nnzPerRow = 18432;  ///< ~302 MB of packed CSR pairs
    unsigned powerIters = 2;
    std::size_t summaryLength = 8;  ///< sentences selected by MMR
    double damping = 0.85;
    double mmrLambda = 0.7;
    std::size_t rowsPerStep = 2;

    static MdsParams scaled(double scale);

    std::uint64_t matrixBytes() const
    {
        return static_cast<std::uint64_t>(nSentences) * nnzPerRow * 8;
    }
};

/** See file comment. */
class MdsWorkload : public Workload
{
  public:
    explicit MdsWorkload(const MdsParams& params = MdsParams::scaled(1.0));

    std::string name() const override { return "MDS"; }
    std::string description() const override
    {
        return "multi-document summarization: LexRank power iteration "
               "over a compressed similarity matrix + MMR selection";
    }

    void setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override;
    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;
    bool verify() override;

    const MdsParams& params() const { return params_; }

    /** The selected summary (post-run), in selection order. */
    const std::vector<std::uint32_t>& summary() const { return summary_; }

    /** Final rank vector (post-run). */
    const std::vector<float> rankVector() const;

    /** Host-side reference power iteration (verify and tests). */
    std::vector<float> referenceRank() const;

  private:
    friend class MdsTask;

    /** A packed CSR entry: column in the low 32 bits, weight above. */
    static std::uint64_t
    packEntry(std::uint32_t col, float w)
    {
        std::uint32_t wb;
        static_assert(sizeof(wb) == sizeof(w), "float packs into u32");
        __builtin_memcpy(&wb, &w, 4);
        return static_cast<std::uint64_t>(wb) << 32 | col;
    }

    static std::uint32_t entryCol(std::uint64_t e)
    {
        return static_cast<std::uint32_t>(e);
    }

    static float
    entryWeight(std::uint64_t e)
    {
        std::uint32_t wb = static_cast<std::uint32_t>(e >> 32);
        float w;
        __builtin_memcpy(&w, &wb, 4);
        return w;
    }

    void advancePhase();

    MdsParams params_;
    unsigned nThreads_ = 1;

    SimArray<std::uint64_t> entries_;   ///< packed CSR pairs (shared)
    SimArray<std::uint32_t> rowPtr_;
    SimArray<float> rank_;              ///< current rank vector
    SimArray<float> rankNext_;
    SimArray<float> queryAffinity_;     ///< per-sentence query relevance

    enum class Phase { Power, Mmr, Done };
    Phase phase_ = Phase::Power;
    unsigned iter_ = 0;
    std::uint64_t phaseGen_ = 0;
    PhaseBarrier barrier_;

    std::vector<std::uint32_t> summary_;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_MDS_HH
