#include "workloads/rsearch.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "base/random.hh"
#include "workloads/data/synth.hh"

namespace cosim {

namespace {

constexpr float negInf = -1e30f;
constexpr float stackBonus = 2.0f;
constexpr std::size_t minLoop = 4; ///< smallest span that may pair

/** RIBOSUM-flavoured pair scores: GC=3, AU=2, GU=1, else no pair. */
inline float
pairScore(std::uint8_t a, std::uint8_t b)
{
    // Encoding: A=0, C=1, G=2, U=3.
    if (a + b == 3)
        return (a == 1 || a == 2) ? 3.0f : 2.0f;
    if (a + b == 5)
        return 1.0f; // GU wobble
    return 0.0f;
}

/**
 * One d-level of the banded folding DP over row-major-by-d matrices.
 * Shared by the host reference and the instrumented task (which charges
 * the corresponding accesses around it).
 *
 * Three matrices: V (span folds with (i, i+d) paired), W (best fold of
 * the span, with bifurcation), and H (contiguous stacked helix ending at
 * the pair (i, i+d)). W drives the grammar; H is the homology statistic
 * -- on random sequence W grows with span length, while a long stacked
 * helix is exactly what the planted (and biological) signal looks like.
 */
void
foldLevel(const std::uint8_t* s, std::size_t n, std::size_t d,
          std::size_t max_split, const float* w_prev, const float* w_prev2,
          const float* v_prev2, const float* h_prev2,
          const float* const* w_low, float* v_out, float* w_out,
          float* h_out, float& best)
{
    for (std::size_t i = 0; i + d < n; ++i) {
        float v = negInf;
        float h = 0.0f;
        float pair = pairScore(s[i], s[i + d]);
        if (pair > 0.0f && d >= minLoop) {
            float inner = std::max(w_prev2[i + 1],
                                   v_prev2[i + 1] + stackBonus);
            v = pair + inner;
            h = pair;
            if (h_prev2[i + 1] > 0.0f)
                h += h_prev2[i + 1] + stackBonus;
        }
        float w = std::max({v, w_prev[i], w_prev[i + 1]});
        std::size_t splits = std::min(max_split, d - 1);
        for (std::size_t k = 0; k < splits; ++k)
            w = std::max(w, w_low[k][i] + w_low[d - k - 1][i + k + 1]);
        v_out[i] = v;
        w_out[i] = w;
        h_out[i] = h;
        if (h > best)
            best = h;
    }
}

} // namespace

RsearchParams
RsearchParams::scaled(double scale)
{
    fatal_if(scale <= 0.0, "RSEARCH scale must be positive");
    RsearchParams p;
    p.window = 512;
    p.band = 64;
    p.maxSplit = 8;
    p.stemLen = 16;
    p.scoreThreshold = 58.0;
    if (scale < 1.0) {
        double db = static_cast<double>(p.dbLength) * scale;
        p.dbLength = std::max<std::size_t>(
            64 * 1024, static_cast<std::size_t>(db));
        if (scale < 0.1) {
            p.window = 192;
            p.band = 48;
            p.windowsPerThread = 2;
            p.hairpinSpacing = 2048;
        }
    }
    return p;
}

/** Scans this thread's share of database windows with the folding DP. */
class RsearchTask : public ThreadTask
{
  public:
    RsearchTask(RsearchWorkload& wl, unsigned tid) : wl_(wl), tid_(tid)
    {
        std::size_t total = wl_.totalWindows();
        std::size_t per =
            (total + wl_.nThreads_ - 1) / wl_.nThreads_;
        first_ = std::min<std::size_t>(tid * per, total);
        last_ = std::min<std::size_t>(first_ + per, total);
        cur_ = first_;
    }

    /** Concurrent-safe: the DP state is per-thread (buffers_[tid]), the
     *  database is read-only, and each window's score slot is written
     *  by exactly one task (windows are range-partitioned). */
    bool parallelStepSafe() const override { return true; }

    bool
    step(CoreContext& ctx) override
    {
        if (cur_ >= last_)
            return false;

        const RsearchParams& p = wl_.params_;
        auto& buf = wl_.buffers_[tid_];

        if (d_ == 0) {
            loadWindow(ctx);
            d_ = minLoop;
            return true;
        }

        // One d-level of the DP.
        std::size_t n = p.window;
        const std::uint8_t* s = buf.seq.hostData().data();

        // Instrumented reads: the three neighbouring rows plus the split
        // rows this level consults.
        buf.w.readBlock(ctx, (d_ - 1) * n, n);
        buf.w.readBlock(ctx, (d_ - 2) * n, n);
        buf.v.readBlock(ctx, (d_ - 2) * n, n);
        buf.h.readBlock(ctx, (d_ - 2) * n, n);
        std::size_t splits = std::min(p.maxSplit, d_ - 1);
        for (std::size_t k = 0; k < splits; ++k) {
            buf.w.readBlock(ctx, k * n, n);
            buf.w.readBlock(ctx, (d_ - k - 1) * n, n);
        }
        buf.seq.readBlock(ctx, 0, n);

        const float* wd = buf.w.hostData().data();
        std::vector<const float*> w_low(p.band);
        for (std::size_t k = 0; k < p.band; ++k)
            w_low[k] = wd + k * n;

        float* v_out = buf.v.writeBlock(ctx, d_ * n, n);
        float* w_out = buf.w.writeBlock(ctx, d_ * n, n);
        float* h_out = buf.h.writeBlock(ctx, d_ * n, n);
        foldLevel(s, n, d_, p.maxSplit, wd + (d_ - 1) * n,
                  wd + (d_ - 2) * n,
                  buf.v.hostData().data() + (d_ - 2) * n,
                  buf.h.hostData().data() + (d_ - 2) * n, w_low.data(),
                  v_out, w_out, h_out, best_);
        // The split search and max chains dominate: ~4 ALU ops
        // per consulted DP entry.
        ctx.compute(n * 33);

        ++d_;
        if (d_ < p.band)
            return true;

        // Window finished.
        wl_.recordScore(cur_, best_);
        ++cur_;
        d_ = 0;
        best_ = 0.0f;
        return cur_ < last_;
    }

  private:
    void
    loadWindow(CoreContext& ctx)
    {
        const RsearchParams& p = wl_.params_;
        std::size_t start = wl_.windowStart(cur_);
        const std::uint8_t* src = wl_.db_.readBlock(ctx, start, p.window);
        std::uint8_t* dst = buf().seq.writeBlock(ctx, 0, p.window);
        std::copy(src, src + p.window, dst);

        // Base rows: spans too short to pair.
        for (std::size_t d = 0; d < minLoop; ++d) {
            float* v = buf().v.writeBlock(ctx, d * p.window, p.window);
            float* w = buf().w.writeBlock(ctx, d * p.window, p.window);
            float* h = buf().h.writeBlock(ctx, d * p.window, p.window);
            std::fill_n(v, p.window, negInf);
            std::fill_n(w, p.window, 0.0f);
            std::fill_n(h, p.window, 0.0f);
        }
        ctx.compute(p.window / 4);
        best_ = 0.0f;
    }

    RsearchWorkload::ThreadBuffers& buf() { return wl_.buffers_[tid_]; }

    RsearchWorkload& wl_;
    unsigned tid_;
    std::size_t first_ = 0;
    std::size_t last_ = 0;
    std::size_t cur_ = 0;
    std::size_t d_ = 0;
    float best_ = 0.0f;
};

RsearchWorkload::RsearchWorkload(const RsearchParams& params)
    : params_(params)
{
    fatal_if(params_.band < minLoop + 2, "RSEARCH: band too narrow");
    fatal_if(params_.band > params_.window,
             "RSEARCH: band wider than the window");
    fatal_if(params_.window % 8 != 0, "RSEARCH: window must be 8-aligned");
}

std::size_t
RsearchWorkload::totalWindows() const
{
    // The paper's run scans a fixed database regardless of thread count;
    // we fix the window count at the 8-thread (SCMP) work size.
    return 8 * params_.windowsPerThread;
}

std::size_t
RsearchWorkload::windowStart(std::size_t w) const
{
    // Even windows centre a planted hairpin; odd windows sit between
    // hairpins (background). Both stay inside the database.
    std::size_t hp = w / 2;
    panic_if(hp >= planted_.size(), "window %zu beyond planted hairpins",
             w);
    std::size_t hp_len = 2 * params_.stemLen + 4;
    std::size_t centre = planted_[hp] + hp_len / 2;
    if (w % 2 == 1)
        centre += params_.hairpinSpacing / 2;
    std::size_t start =
        centre >= params_.window / 2 ? centre - params_.window / 2 : 0;
    return std::min(start, params_.dbLength - params_.window);
}

void
RsearchWorkload::setUp(const WorkloadConfig& cfg, SimAllocator& alloc)
{
    nThreads_ = cfg.nThreads;

    Rng rng(cfg.seed * 0xdbdbdbull + 3);
    planted_.clear();
    std::vector<std::uint8_t> db = synth::nucleotideDatabase(
        params_.dbLength, params_.stemLen, params_.hairpinSpacing, rng,
        planted_);
    fatal_if(planted_.size() < (totalWindows() + 1) / 2,
             "RSEARCH: database too small for the scanned windows");

    db_.init(alloc, "rsearch.database", db.size());
    db_.hostData() = std::move(db);

    buffers_.resize(nThreads_);
    for (unsigned t = 0; t < nThreads_; ++t) {
        std::string prefix = "rsearch.t" + std::to_string(t);
        buffers_[t].v.init(alloc, prefix + ".V",
                           params_.band * params_.window);
        buffers_[t].w.init(alloc, prefix + ".W",
                           params_.band * params_.window);
        buffers_[t].h.init(alloc, prefix + ".H",
                           params_.band * params_.window);
        buffers_[t].seq.init(alloc, prefix + ".seq", params_.window);
    }

    windowScores_.assign(totalWindows(), -1.0);
}

void
RsearchWorkload::recordScore(std::size_t window, double score)
{
    // One disjoint slot per window (windows are partitioned across
    // tasks), so concurrent tasks never write the same element.
    windowScores_[window] = score;
}

std::vector<std::size_t>
RsearchWorkload::hits() const
{
    std::vector<std::size_t> hits;
    for (std::size_t w = 0; w < windowScores_.size(); ++w) {
        if (windowScores_[w] >= params_.scoreThreshold)
            hits.push_back(w);
    }
    return hits;
}

double
RsearchWorkload::referenceFoldScore(std::size_t start, std::size_t len) const
{
    const std::uint8_t* s = db_.hostData().data() + start;
    std::size_t n = len;
    std::size_t b = params_.band;

    std::vector<float> v(b * n, negInf);
    std::vector<float> w(b * n, 0.0f);
    std::vector<float> h(b * n, 0.0f);
    float best = 0.0f;

    std::vector<const float*> w_low(b);
    for (std::size_t k = 0; k < b; ++k)
        w_low[k] = w.data() + k * n;

    for (std::size_t d = minLoop; d < b; ++d) {
        foldLevel(s, n, d, params_.maxSplit, w.data() + (d - 1) * n,
                  w.data() + (d - 2) * n, v.data() + (d - 2) * n,
                  h.data() + (d - 2) * n, w_low.data(), v.data() + d * n,
                  w.data() + d * n, h.data() + d * n, best);
    }
    return best;
}

std::unique_ptr<ThreadTask>
RsearchWorkload::createThread(unsigned tid)
{
    fatal_if(tid >= nThreads_, "RSEARCH: thread id out of range");
    return std::make_unique<RsearchTask>(*this, tid);
}

bool
RsearchWorkload::verify()
{
    std::size_t planted_seen = 0;
    std::size_t planted_hit = 0;
    std::size_t background_seen = 0;
    std::size_t background_hit = 0;

    for (std::size_t w = 0; w < windowScores_.size(); ++w) {
        if (windowScores_[w] < 0.0)
            continue; // not scanned (more windows than thread capacity)
        bool hit = windowScores_[w] >= params_.scoreThreshold;
        if (w % 2 == 0) {
            ++planted_seen;
            planted_hit += hit ? 1 : 0;
        } else {
            ++background_seen;
            background_hit += hit ? 1 : 0;
        }
    }

    if (planted_seen == 0 || background_seen == 0) {
        warn("RSEARCH: verification needs both window classes scanned");
        return false;
    }

    // Consistency: the instrumented DP matches the host reference.
    double ref = referenceFoldScore(windowStart(0), params_.window);
    bool consistent =
        std::fabs(ref - windowScores_[0]) <= 1e-4 * std::max(1.0, ref);

    double planted_rate = static_cast<double>(planted_hit) /
                          static_cast<double>(planted_seen);
    double background_rate = static_cast<double>(background_hit) /
                             static_cast<double>(background_seen);
    return consistent && planted_rate >= 0.8 &&
           background_rate <= 0.5 && planted_rate > background_rate;
}

} // namespace cosim
