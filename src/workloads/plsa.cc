#include "workloads/plsa.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/random.hh"
#include "workloads/data/synth.hh"

namespace cosim {

PlsaParams
PlsaParams::scaled(double scale)
{
    fatal_if(scale <= 0.0, "PLSA scale must be positive");
    PlsaParams p;
    if (scale < 1.0) {
        double len = static_cast<double>(p.seqLen) * scale;
        p.seqLen = std::max<std::size_t>(
            512, (static_cast<std::size_t>(len) / 256) * 256);
        p.blockWidth = std::min<std::size_t>(p.blockWidth, p.seqLen / 2);
        p.commonLen = p.seqLen / 8;
        p.tracebackBands = 16;
    }
    return p;
}

/**
 * One strip of the wavefront. Thread t sweeps its rows block-column by
 * block-column, publishing its bottom boundary row for thread t+1.
 * Thread 0 additionally runs the checkpointed traceback at the end.
 */
class PlsaTask : public ThreadTask
{
  public:
    PlsaTask(PlsaWorkload& wl, unsigned tid) : wl_(wl), tid_(tid) {}

    bool step(CoreContext& ctx) override;

  private:
    void startBlock(CoreContext& ctx);
    void doRows(CoreContext& ctx, std::size_t count);
    bool tracebackStep(CoreContext& ctx);

    PlsaWorkload& wl_;
    unsigned tid_;

    std::size_t block_ = 0;
    std::size_t localRow_ = 0;
    bool blockActive_ = false;
    bool stripDone_ = false;

    int best_ = 0;
    std::size_t bestRow_ = 0;
    std::size_t bestCol_ = 0;

    // Traceback state (thread 0 only).
    bool tracebackInit_ = false;
    std::size_t tbBand_ = 0;
    std::size_t tbBandsLeft_ = 0;
    std::size_t tbColLo_ = 0;
    std::size_t tbColHi_ = 0;
};

std::size_t
PlsaWorkload::stripRows() const
{
    return params_.seqLen / nThreads_;
}

std::size_t
PlsaWorkload::nBlocks() const
{
    return params_.seqLen / params_.blockWidth;
}

void
PlsaWorkload::recordBest(int score, std::size_t row, std::size_t col)
{
    if (score > bestScore_) {
        bestScore_ = score;
        bestRow_ = row;
        bestCol_ = col;
    }
}

void
PlsaTask::startBlock(CoreContext& ctx)
{
    const PlsaParams& p = wl_.params_;
    auto& buf = wl_.buffers_[tid_];
    std::size_t wb = p.blockWidth;
    std::size_t col0 = block_ * wb;

    // Previous row entering the block: the strip above's boundary row
    // (plus its corner), or zeros for the top strip.
    std::int32_t* prev = buf.prevRow.writeBlock(ctx, 0, wb + 1);
    if (tid_ == 0) {
        std::fill_n(prev, wb + 1, 0);
    } else {
        std::size_t lo = col0 == 0 ? 0 : col0 - 1;
        std::size_t n = col0 == 0 ? wb : wb + 1;
        const std::int32_t* above =
            wl_.boundary_.readBlock(ctx, tid_ - 1, lo, n);
        if (col0 == 0) {
            prev[0] = 0;
            std::copy(above, above + wb, prev + 1);
        } else {
            std::copy(above, above + wb + 1, prev);
        }
    }

    // Left edges entering the block come from the previous block.
    if (block_ == 0) {
        std::int32_t* left =
            buf.leftIn.writeBlock(ctx, 0, wl_.stripRows());
        std::fill_n(left, wl_.stripRows(), 0);
    } else {
        buf.leftIn.hostData().swap(buf.leftOut.hostData());
        buf.leftIn.readBlock(ctx, 0, wl_.stripRows());
    }

    ctx.compute(16);
    localRow_ = 0;
    blockActive_ = true;
}

void
PlsaTask::doRows(CoreContext& ctx, std::size_t count)
{
    const PlsaParams& p = wl_.params_;
    auto& buf = wl_.buffers_[tid_];
    std::size_t wb = p.blockWidth;
    std::size_t col0 = block_ * wb;
    std::size_t strip_rows = wl_.stripRows();

    for (std::size_t r = 0; r < count && localRow_ < strip_rows; ++r) {
        std::size_t grow = tid_ * strip_rows + localRow_;

        std::uint8_t ai = wl_.a_.read(ctx, grow);
        const std::uint8_t* bseg = wl_.b_.readBlock(ctx, col0, wb);
        const std::int32_t* prev = buf.prevRow.readBlock(ctx, 0, wb + 1);
        std::int32_t* cur = buf.curRow.writeBlock(ctx, 0, wb + 1);

        // Left edge of this row (last column of the previous block) and
        // the diagonal corner (same, one row up).
        std::int32_t left = buf.leftIn.read(ctx, localRow_);
        std::int32_t diag_corner =
            localRow_ == 0 ? buf.prevRow.host(0)
                           : buf.leftIn.host(localRow_ - 1);
        if (localRow_ > 0)
            buf.leftIn.read(ctx, localRow_ - 1);
        if (block_ == 0) {
            left = 0;
            diag_corner = 0;
        }

        cur[0] = left;
        std::int32_t row_best = 0;
        std::size_t row_best_col = 0;
        for (std::size_t j = 0; j < wb; ++j) {
            std::int32_t diag = (j == 0) ? diag_corner : prev[j];
            std::int32_t up = prev[j + 1];
            std::int32_t lf = cur[j];
            std::int32_t score = std::max(
                {0, diag + wl_.sub(ai, bseg[j]), up - p.gapPenalty,
                 lf - p.gapPenalty});
            cur[j + 1] = score;
            if (score > row_best) {
                row_best = score;
                row_best_col = col0 + j;
            }
        }
        ctx.compute(3 * wb / 5);

        if (row_best > best_) {
            best_ = row_best;
            bestRow_ = grow;
            bestCol_ = row_best_col;
        }

        // Publish edges and boundary/checkpoint rows.
        buf.leftOut.write(ctx, localRow_, cur[wb]);
        if (localRow_ == strip_rows - 1) {
            std::int32_t* out =
                wl_.boundary_.writeBlock(ctx, tid_, col0, wb);
            std::copy(cur + 1, cur + 1 + wb, out);
        }
        if ((grow + 1) % p.checkpointStride == 0) {
            std::int32_t* ck = wl_.checkpoint_.writeBlock(
                ctx, grow / p.checkpointStride, col0, wb);
            std::copy(cur + 1, cur + 1 + wb, ck);
        }

        buf.prevRow.hostData().swap(buf.curRow.hostData());
        ++localRow_;
    }

    if (localRow_ >= strip_rows) {
        blockActive_ = false;
        ++block_;
        wl_.progress_[tid_] = block_;
        if (block_ >= wl_.nBlocks()) {
            stripDone_ = true;
            wl_.recordBest(best_, bestRow_, bestCol_);
        }
    }
}

bool
PlsaTask::tracebackStep(CoreContext& ctx)
{
    const PlsaParams& p = wl_.params_;

    if (!tracebackInit_) {
        // Wait for the whole grid (the last strip publishes last).
        if (wl_.progress_[wl_.nThreads_ - 1] < wl_.nBlocks()) {
            ctx.compute(16);
            ctx.yield();
            return true;
        }
        std::size_t best_band = wl_.bestRow_ / p.checkpointStride;
        tbBandsLeft_ = std::min<std::size_t>(p.tracebackBands,
                                             best_band + 1);
        tbBand_ = best_band;
        std::size_t win = 2 * p.blockWidth;
        tbColLo_ = wl_.bestCol_ >= win ? wl_.bestCol_ - win : 0;
        tbColHi_ = wl_.bestCol_ + 1;
        tracebackInit_ = true;
        return true;
    }

    if (tbBandsLeft_ == 0)
        return false;

    // Recompute one K-row band from its checkpoint row, over the column
    // window around the optimum -- the divide-and-conquer re-read that
    // linear-space alignment pays instead of storing the full matrix.
    std::size_t n = tbColHi_ - tbColLo_;
    std::size_t row0 = tbBand_ * p.checkpointStride;

    std::int32_t* prev = wl_.tbPrev_.writeBlock(ctx, 0, n + 1);
    std::fill_n(prev, n + 1, 0);
    if (tbBand_ > 0) {
        const std::int32_t* ck = wl_.checkpoint_.readBlock(
            ctx, tbBand_ - 1, tbColLo_, n);
        std::copy(ck, ck + n, prev + 1);
    }

    std::size_t rows =
        std::min(p.checkpointStride, p.seqLen - row0);
    for (std::size_t r = 0; r < rows; ++r) {
        std::uint8_t ai = wl_.a_.read(ctx, row0 + r);
        const std::uint8_t* bseg = wl_.b_.readBlock(ctx, tbColLo_, n);
        const std::int32_t* prow = wl_.tbPrev_.readBlock(ctx, 0, n + 1);
        std::int32_t* cur = wl_.tbCur_.writeBlock(ctx, 0, n + 1);
        cur[0] = 0;
        for (std::size_t j = 0; j < n; ++j) {
            std::int32_t score = std::max(
                {0, prow[j] + wl_.sub(ai, bseg[j]),
                 prow[j + 1] - p.gapPenalty, cur[j] - p.gapPenalty});
            cur[j + 1] = score;
        }
        ctx.compute(n / 2);
        wl_.tracebackCellsVisited_ += n;
        wl_.tbPrev_.hostData().swap(wl_.tbCur_.hostData());
    }

    --tbBandsLeft_;
    if (tbBand_ == 0)
        tbBandsLeft_ = 0;
    else
        --tbBand_;
    return tbBandsLeft_ > 0;
}

bool
PlsaTask::step(CoreContext& ctx)
{
    if (!stripDone_) {
        if (!blockActive_) {
            // Wavefront dependency: the strip above must have finished
            // this block column.
            if (tid_ != 0 && wl_.progress_[tid_ - 1] <= block_) {
                ctx.compute(16);
                ctx.yield();
                return true;
            }
            startBlock(ctx);
            return true;
        }
        doRows(ctx, wl_.params_.rowsPerStep);
        return !stripDone_ || tid_ == 0;
    }

    if (tid_ != 0)
        return false;
    return tracebackStep(ctx);
}

PlsaWorkload::PlsaWorkload(const PlsaParams& params) : params_(params)
{
    fatal_if(params_.seqLen % params_.blockWidth != 0,
             "PLSA: sequence length must be a multiple of the block "
             "width");
    fatal_if(params_.seqLen % params_.checkpointStride != 0,
             "PLSA: sequence length must be a multiple of the "
             "checkpoint stride");
    fatal_if(params_.commonLen >= params_.seqLen / 2,
             "PLSA: planted region too long");
}

void
PlsaWorkload::setUp(const WorkloadConfig& cfg, SimAllocator& alloc)
{
    nThreads_ = cfg.nThreads;
    fatal_if(params_.seqLen % nThreads_ != 0,
             "PLSA: thread count must divide the sequence length");

    Rng rng(cfg.seed * 0xa119all + 11);
    std::vector<std::uint8_t> a;
    std::vector<std::uint8_t> b;
    synth::alignmentPair(params_.seqLen, params_.seqLen, params_.commonLen,
                         params_.seqLen / 4, params_.seqLen / 2, rng, a, b);

    a_.init(alloc, "plsa.seqA", a.size());
    a_.hostData() = std::move(a);
    b_.init(alloc, "plsa.seqB", b.size());
    b_.hostData() = std::move(b);

    boundary_.init(alloc, "plsa.boundary", nThreads_, params_.seqLen);
    checkpoint_.init(alloc, "plsa.checkpoint",
                     params_.seqLen / params_.checkpointStride,
                     params_.seqLen);

    buffers_.resize(nThreads_);
    for (unsigned t = 0; t < nThreads_; ++t) {
        std::string prefix = "plsa.t" + std::to_string(t);
        buffers_[t].prevRow.init(alloc, prefix + ".prev",
                                 params_.blockWidth + 1);
        buffers_[t].curRow.init(alloc, prefix + ".cur",
                                params_.blockWidth + 1);
        buffers_[t].leftIn.init(alloc, prefix + ".leftIn", stripRows());
        buffers_[t].leftOut.init(alloc, prefix + ".leftOut", stripRows());
    }

    tbPrev_.init(alloc, "plsa.tbPrev", 2 * params_.blockWidth + 2);
    tbCur_.init(alloc, "plsa.tbCur", 2 * params_.blockWidth + 2);

    progress_.assign(nThreads_, 0);
    bestScore_ = 0;
    bestRow_ = bestCol_ = 0;
    tracebackCellsVisited_ = 0;
}

std::unique_ptr<ThreadTask>
PlsaWorkload::createThread(unsigned tid)
{
    fatal_if(tid >= nThreads_, "PLSA: thread id out of range");
    return std::make_unique<PlsaTask>(*this, tid);
}

int
PlsaWorkload::referenceScore() const
{
    std::size_t n = params_.seqLen;
    const auto& a = a_.hostData();
    const auto& b = b_.hostData();

    std::vector<std::int32_t> prev(n + 1, 0);
    std::vector<std::int32_t> cur(n + 1, 0);
    int best = 0;
    for (std::size_t i = 0; i < n; ++i) {
        cur[0] = 0;
        for (std::size_t j = 0; j < n; ++j) {
            std::int32_t score = std::max(
                {0, prev[j] + sub(a[i], b[j]),
                 prev[j + 1] - params_.gapPenalty,
                 cur[j] - params_.gapPenalty});
            cur[j + 1] = score;
            if (score > best)
                best = score;
        }
        std::swap(prev, cur);
    }
    return best;
}

bool
PlsaWorkload::verify()
{
    // The planted exact common subsequence guarantees a local alignment
    // of at least matchScore * commonLen; random extensions add only a
    // bounded amount.
    int expected_min =
        params_.matchScore * static_cast<int>(params_.commonLen);
    int slack = static_cast<int>(params_.commonLen) / 2 + 64;
    if (bestScore_ < expected_min || bestScore_ > expected_min + slack)
        return false;
    // The wavefront's score must equal the full-matrix reference.
    return bestScore_ == referenceScore();
}

} // namespace cosim
