#include "workloads/viewtype.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cosim {

namespace {

/** Field-colour prior: dominant-hue training searches the green band. */
constexpr unsigned fieldHueLo = 60;
constexpr unsigned fieldHueHi = 110;
constexpr std::uint32_t maxLabels = 4096;

/** Classify from the largest playfield component's area fraction. */
synth::ViewType
classifyFraction(double frac)
{
    if (frac >= 0.55)
        return synth::ViewType::Global;
    if (frac >= 0.25)
        return synth::ViewType::Medium;
    if (frac >= 0.03)
        return synth::ViewType::CloseUp;
    return synth::ViewType::OutOfView;
}

} // namespace

ViewtypeParams
ViewtypeParams::scaled(double scale)
{
    fatal_if(scale <= 0.0, "VIEWTYPE scale must be positive");
    ViewtypeParams p;
    p.video.shotLength = 9;
    p.video.width = 480;
    p.video.height = 360;
    if (scale < 1.0) {
        p.video.width = 240;
        p.video.height = 192;
        if (scale < 0.1) {
            p.video.width = 120;
            p.video.height = 96;
            p.nKeyframes = 16;
        }
    }
    p.video.nFrames = p.nKeyframes * p.video.shotLength;
    return p;
}

/** Processes one thread's share of key frames through the full chain. */
class ViewtypeTask : public ThreadTask
{
  public:
    ViewtypeTask(ViewtypeWorkload& wl, unsigned tid) : wl_(wl), tid_(tid)
    {
        unsigned total = wl_.params_.nKeyframes;
        unsigned per = (total + wl_.nThreads_ - 1) / wl_.nThreads_;
        first_ = std::min(tid * per, total);
        last_ = std::min(first_ + per, total);
        kf_ = first_;
    }

    bool
    step(CoreContext& ctx) override
    {
        if (kf_ >= last_)
            return false;

        switch (stage_) {
          case 0:
            decodeRows(ctx);
            break;
          case 1:
            hueRows(ctx);
            break;
          case 2:
            maskRows(ctx);
            break;
          case 3:
            cclRows(ctx);
            break;
          case 4:
            countRows(ctx);
            break;
          default:
            panic("VIEWTYPE: bad stage");
        }
        return kf_ < last_;
    }

  private:
    void
    decodeRows(CoreContext& ctx)
    {
        const synth::VideoParams& v = wl_.params_.video;
        unsigned f = wl_.frameOf(kf_);
        std::size_t end = rowEnd();
        auto& buf = wl_.buffers_[tid_];
        for (; row_ < end; ++row_) {
            synth::Pixel* out =
                buf.frame.writeBlock(ctx, row_ * v.width, v.width);
            for (unsigned x = 0; x < v.width; ++x)
                out[x] = wl_.synth_->pixel(f, x, row_);
            ctx.compute(v.width);
        }
        nextStageIfDone(1);
    }

    void
    hueRows(CoreContext& ctx)
    {
        const synth::VideoParams& v = wl_.params_.video;
        std::size_t end = rowEnd();
        auto& buf = wl_.buffers_[tid_];
        for (; row_ < end; ++row_) {
            const synth::Pixel* in =
                buf.frame.readBlock(ctx, row_ * v.width, v.width);
            std::uint8_t* out =
                buf.hue.writeBlock(ctx, row_ * v.width, v.width);
            for (unsigned x = 0; x < v.width; ++x) {
                std::uint8_t h = synth::hueOf(in[x]);
                // Only colour-dominant-green pixels may train the field
                // model; grey/red/blue pixels hash to hue 0ish anyway.
                bool greenish = synth::pixelG(in[x]) > synth::pixelR(in[x]) &&
                                synth::pixelG(in[x]) > synth::pixelB(in[x]);
                out[x] = greenish ? h : 0;
                ++wl_.hueHist_.host(out[x]);
            }
            ctx.compute(2 * v.width); // the RGB->HSV arithmetic
        }
        // The accumulation is a read-modify-write of the shared
        // histogram.
        ctx.load(wl_.hueHist_.base(), 256 * 4);
        ctx.store(wl_.hueHist_.base(), 256 * 4);
        if (row_ >= wl_.params_.video.height) {
            // Adaptive training: dominant field hue so far.
            std::uint32_t best = 0;
            dominant_ = fieldHueLo;
            for (unsigned h = fieldHueLo; h <= fieldHueHi; ++h) {
                if (wl_.hueHist_.host(h) > best) {
                    best = wl_.hueHist_.host(h);
                    dominant_ = h;
                }
            }
            ctx.compute(fieldHueHi - fieldHueLo + 1);
        }
        nextStageIfDone(2);
    }

    void
    maskRows(CoreContext& ctx)
    {
        const synth::VideoParams& v = wl_.params_.video;
        std::size_t end = rowEnd();
        auto& buf = wl_.buffers_[tid_];
        unsigned tol = wl_.params_.hueTolerance;
        for (; row_ < end; ++row_) {
            const std::uint8_t* hue =
                buf.hue.readBlock(ctx, row_ * v.width, v.width);
            std::uint8_t* mask =
                buf.mask.writeBlock(ctx, row_ * v.width, v.width);
            for (unsigned x = 0; x < v.width; ++x) {
                unsigned h = hue[x];
                mask[x] = (h != 0 && h + tol >= dominant_ &&
                           h <= dominant_ + tol)
                              ? 1
                              : 0;
            }
            ctx.compute(v.width);
        }
        if (row_ >= v.height) {
            nLabels_ = 1;
            std::uint32_t* par = buf.parent.writeBlock(ctx, 0, maxLabels);
            for (std::uint32_t i = 0; i < maxLabels; ++i)
                par[i] = i;
        }
        nextStageIfDone(3);
    }

    std::uint32_t
    findRoot(std::uint32_t l, ViewtypeWorkload::ThreadBuffers& buf)
    {
        while (buf.parent.host(l) != l) {
            buf.parent.host(l) = buf.parent.host(buf.parent.host(l));
            l = buf.parent.host(l);
        }
        return l;
    }

    void
    cclRows(CoreContext& ctx)
    {
        const synth::VideoParams& v = wl_.params_.video;
        std::size_t end = rowEnd();
        auto& buf = wl_.buffers_[tid_];
        for (; row_ < end; ++row_) {
            const std::uint8_t* mask =
                buf.mask.readBlock(ctx, row_ * v.width, v.width);
            const std::uint32_t* up =
                row_ > 0
                    ? buf.labels.readBlock(ctx, (row_ - 1) * v.width,
                                           v.width)
                    : nullptr;
            std::uint32_t* cur =
                buf.labels.writeBlock(ctx, row_ * v.width, v.width);

            for (unsigned x = 0; x < v.width; ++x) {
                if (mask[x] == 0) {
                    cur[x] = 0;
                    continue;
                }
                std::uint32_t left = x > 0 ? cur[x - 1] : 0;
                std::uint32_t above = up != nullptr ? up[x] : 0;
                if (left == 0 && above == 0) {
                    if (nLabels_ < maxLabels) {
                        cur[x] = nLabels_++;
                    } else {
                        cur[x] = maxLabels - 1;
                    }
                } else if (left == 0) {
                    cur[x] = above;
                } else if (above == 0) {
                    cur[x] = left;
                } else {
                    std::uint32_t rl = findRoot(left, buf);
                    std::uint32_t ra = findRoot(above, buf);
                    std::uint32_t m = std::min(rl, ra);
                    buf.parent.host(rl) = m;
                    buf.parent.host(ra) = m;
                    cur[x] = m;
                }
            }
            // Union-find traffic: the hot head of the parent array.
            ctx.load(buf.parent.base(), 1024);
            ctx.store(buf.parent.base(), 256);
            ctx.compute(2 * v.width); // neighbour tests + union-find
        }
        if (row_ >= v.height) {
            std::uint32_t* sizes =
                buf.compSize.writeBlock(ctx, 0, maxLabels);
            std::fill_n(sizes, maxLabels, 0u);
        }
        nextStageIfDone(4);
    }

    void
    countRows(CoreContext& ctx)
    {
        const synth::VideoParams& v = wl_.params_.video;
        std::size_t end = rowEnd();
        auto& buf = wl_.buffers_[tid_];
        for (; row_ < end; ++row_) {
            const std::uint32_t* lab =
                buf.labels.readBlock(ctx, row_ * v.width, v.width);
            for (unsigned x = 0; x < v.width; ++x) {
                if (lab[x] != 0)
                    ++buf.compSize.host(findRoot(lab[x], buf));
            }
            ctx.load(buf.compSize.base(), 1024);
            ctx.store(buf.compSize.base(), 256);
            ctx.compute(3 * v.width / 2);
        }
        if (row_ < v.height)
            return;

        // Classify from the dominant component's area.
        std::uint32_t largest = 0;
        for (std::uint32_t l = 0; l < nLabels_; ++l)
            largest = std::max(largest, buf.compSize.host(l));
        ctx.compute(nLabels_);
        double frac = static_cast<double>(largest) /
                      (static_cast<double>(v.width) * v.height);
        wl_.classified_[kf_] = classifyFraction(frac);

        ++kf_;
        row_ = 0;
        stage_ = 0;
    }

    std::size_t
    rowEnd() const
    {
        return std::min<std::size_t>(row_ + wl_.params_.rowsPerStep,
                                     wl_.params_.video.height);
    }

    void
    nextStageIfDone(unsigned next)
    {
        if (row_ >= wl_.params_.video.height) {
            row_ = 0;
            stage_ = next;
        }
    }

    ViewtypeWorkload& wl_;
    unsigned tid_;
    unsigned first_ = 0;
    unsigned last_ = 0;
    unsigned kf_ = 0;
    unsigned stage_ = 0;
    std::size_t row_ = 0;
    unsigned dominant_ = fieldHueLo;
    std::uint32_t nLabels_ = 1;
};

ViewtypeWorkload::ViewtypeWorkload(const ViewtypeParams& params)
    : params_(params)
{
    fatal_if(params_.nKeyframes == 0, "VIEWTYPE: no key frames");
    fatal_if(params_.video.nFrames <
                 params_.nKeyframes * params_.video.shotLength,
             "VIEWTYPE: clip too short for the key frames");
}

void
ViewtypeWorkload::setUp(const WorkloadConfig& cfg, SimAllocator& alloc)
{
    nThreads_ = cfg.nThreads;
    synth_ = std::make_unique<synth::FrameSynthesizer>(params_.video,
                                                       cfg.seed);

    hueHist_.init(alloc, "viewtype.hue-hist", 256);

    std::size_t pixels =
        static_cast<std::size_t>(params_.video.width) *
        params_.video.height;
    buffers_.resize(nThreads_);
    for (unsigned t = 0; t < nThreads_; ++t) {
        std::string prefix = "viewtype.t" + std::to_string(t);
        buffers_[t].frame.init(alloc, prefix + ".frame", pixels);
        buffers_[t].hue.init(alloc, prefix + ".hue", pixels);
        buffers_[t].mask.init(alloc, prefix + ".mask", pixels);
        buffers_[t].labels.init(alloc, prefix + ".labels", pixels);
        buffers_[t].parent.init(alloc, prefix + ".parent", maxLabels);
        buffers_[t].compSize.init(alloc, prefix + ".compSize", maxLabels);
    }

    classified_.assign(params_.nKeyframes, synth::ViewType::OutOfView);
}

std::unique_ptr<ThreadTask>
ViewtypeWorkload::createThread(unsigned tid)
{
    fatal_if(tid >= nThreads_, "VIEWTYPE: thread id out of range");
    return std::make_unique<ViewtypeTask>(*this, tid);
}

synth::ViewType
ViewtypeWorkload::plantedView(unsigned keyframe) const
{
    return synth_->plannedView(frameOf(keyframe));
}

double
ViewtypeWorkload::accuracy() const
{
    std::size_t correct = 0;
    for (unsigned k = 0; k < params_.nKeyframes; ++k) {
        if (classified_[k] == plantedView(k))
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(params_.nKeyframes);
}

bool
ViewtypeWorkload::verify()
{
    return accuracy() >= 0.9;
}

} // namespace cosim
