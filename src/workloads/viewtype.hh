/**
 * @file
 * VIEWTYPE: sports-video view-type classification (Section 2.6).
 *
 * For each key frame: decode, convert to HSV hue, adaptively train the
 * playfield's dominant colour by accumulating the hue histogram across
 * frames, segment the playfield mask by that dominant colour, run
 * connected-component analysis on the mask, and classify the frame as
 * global / medium / close-up / out-of-view from the dominant playfield
 * component's area -- the processing chain the paper describes.
 *
 * Memory structure: each thread's frame, hue and label buffers are
 * private (~1 MB per thread, the paper's figure); only the accumulated
 * training histogram is shared. The working set therefore scales
 * linearly with the core count.
 */

#ifndef COSIM_WORKLOADS_VIEWTYPE_HH
#define COSIM_WORKLOADS_VIEWTYPE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "softsdv/guest.hh"
#include "workloads/data/video.hh"
#include "workloads/sim_array.hh"

namespace cosim {

/** Scaled input description. */
struct ViewtypeParams
{
    synth::VideoParams video{360, 288, 0, 1};
    unsigned nKeyframes = 48;
    std::size_t rowsPerStep = 48;
    unsigned hueTolerance = 10;

    static ViewtypeParams scaled(double scale);
};

/** See file comment. */
class ViewtypeWorkload : public Workload
{
  public:
    explicit ViewtypeWorkload(
        const ViewtypeParams& params = ViewtypeParams::scaled(1.0));

    std::string name() const override { return "VIEWTYPE"; }
    std::string description() const override
    {
        return "view-type classification: HSV dominant-colour playfield "
               "segmentation + connected components";
    }

    void setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override;
    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;
    bool verify() override;

    const ViewtypeParams& params() const { return params_; }

    /** Classified view type per key frame (post-run). */
    const std::vector<synth::ViewType>& classified() const
    {
        return classified_;
    }

    /** Ground truth per key frame. */
    synth::ViewType plantedView(unsigned keyframe) const;

    /** Fraction of key frames classified correctly (post-run). */
    double accuracy() const;

  private:
    friend class ViewtypeTask;

    /** Video frame index sampled by key frame @p k. */
    unsigned frameOf(unsigned k) const
    {
        return k * params_.video.shotLength;
    }

    ViewtypeParams params_;
    unsigned nThreads_ = 1;

    std::unique_ptr<synth::FrameSynthesizer> synth_;

    /** Shared adaptive training histogram (256 hue bins). */
    SimArray<std::uint32_t> hueHist_;

    /** Private per-thread buffers. */
    struct ThreadBuffers
    {
        SimArray<synth::Pixel> frame;
        SimArray<std::uint8_t> hue;
        SimArray<std::uint8_t> mask;
        SimArray<std::uint32_t> labels;
        SimArray<std::uint32_t> parent; ///< union-find forest
        SimArray<std::uint32_t> compSize;
    };
    std::vector<ThreadBuffers> buffers_;

    std::vector<synth::ViewType> classified_;
};

} // namespace cosim

#endif // COSIM_WORKLOADS_VIEWTYPE_HH
