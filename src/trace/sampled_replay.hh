/**
 * @file
 * Sampled FSB replay: feed only a plan's representative intervals (plus
 * their warm-up prefixes) through the bus in detail, fast-forwarding
 * past everything else.
 *
 * The driver decodes the whole recorded stream but gates what reaches
 * the snoopers: *message* transactions (fsb_messages.hh) are always
 * delivered, so the CB's instruction/cycle totals and its 500 us window
 * clock stay exact, while *data* transactions are classified against
 * the plan's delivery windows -- each representative interval preceded
 * by warmup_windows of discarded-detail cache warm-up. The current
 * window is derived purely from the CyclesCompleted payloads in the
 * stream (the same clock the CB runs on), so interval boundaries align
 * exactly with the CB sample windows the plan was clustered from, and
 * the whole pass is a function of the stream and the plan alone -- no
 * wall-clock anywhere (cosim_analyze's interval-wallclock rule).
 *
 * Data outside the delivery windows is *functionally warmed* by
 * default: still fed through the bus so the emulated LLC's tag and
 * replacement state track the full run, but attributed to windows the
 * estimator never reads. SMARTS-style always-on warming is what makes
 * the representative deltas trustworthy -- a line whose last use fell
 * in a fast-forwarded span would otherwise phantom-miss in a later
 * measured window (reuse distances in the LLC routinely span many 500
 * us windows). Passing warming=false drops those transactions instead,
 * trading that cold-start bias for a lighter pass.
 *
 * Warming can also be *diluted*: with warm_stride = N, fast-forwarded
 * data transactions whose 64 B line a novelty filter has seen recently
 * are thinned to every Nth, while first-touch lines are always issued
 * -- the LLC keeps every distinct line of the span, so dilution cannot
 * starve a reuse-heavy working set into phantom misses; it only
 * coarsens replacement order, which the detailed warm-up windows ahead
 * of each interval repair before any sample the estimator reads. The
 * filter and stride counter are plain functions of the stream, part of
 * the pass's deterministic state: same stream + plan + stride => same
 * delivery.
 *
 * Because every window still closes, the emulator's sample series keeps
 * one entry per window: fast-forwarded windows' deltas land in samples
 * the estimator ignores, detail windows carry exact warm-started ones.
 * Whole-run metrics are then reconstructed as weight-extrapolated sums
 * over the representative windows (harness/sweep_runner.cc).
 */

#ifndef COSIM_TRACE_SAMPLED_REPLAY_HH
#define COSIM_TRACE_SAMPLED_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/fsb_replay.hh"
#include "trace/phase_cluster.hh"

namespace cosim {

class FrontSideBus;

/** What the delivery gate did during one sampled pass. */
struct SampledReplayStats
{
    /** Data transactions delivered inside warm-up/detail windows. */
    std::uint64_t dataDelivered = 0;
    /** Data transactions delivered warm-only (outside the detail
     * windows, with warming on; they update LLC state but land in
     * samples the estimator never reads). */
    std::uint64_t dataWarmed = 0;
    /** Data transactions dropped entirely (warming off, or diluted
     * out by warm_stride > 1). */
    std::uint64_t dataSkipped = 0;
    /** Message transactions (always delivered). */
    std::uint64_t messages = 0;
    /** Plan intervals whose window the stream actually reached. */
    std::uint64_t intervalsReached = 0;
    /** Contiguous fast-forwarded (warmed or skipped) window spans. */
    std::uint64_t skippedSpans = 0;
    /** Windows the stream covered (full windows closed + the tail). */
    std::uint64_t windowsSeen = 0;
};

/** See file comment. */
class SampledReplayDriver
{
  public:
    /**
     * Sampled-replay the stream at @p path through @p bus under
     * @p plan. Stream decode errors surface exactly as in ReplayDriver
     * (error in the result, already-decoded windows delivered); the
     * result's `seconds` is left 0 for the caller to fill -- this
     * translation unit deliberately never reads the host clock.
     * @p warming selects functional warming of the fast-forwarded
     * spans (see the file comment); leave it on unless measuring the
     * cold-start bias itself. @p warm_stride dilutes that warming to
     * every Nth fast-forwarded data transaction (0 and 1 both mean
     * every one).
     */
    ReplayResult replayFile(const std::string& path,
                            const SamplingPlan& plan, FrontSideBus& bus,
                            SampledReplayStats* stats = nullptr,
                            bool warming = true,
                            unsigned warm_stride = 1);

    /** Sampled-replay an in-memory stream (a capture writer's share()). */
    ReplayResult replayBuffer(
        std::shared_ptr<const std::vector<std::uint8_t>> stream,
        const SamplingPlan& plan, FrontSideBus& bus,
        SampledReplayStats* stats = nullptr, bool warming = true,
        unsigned warm_stride = 1);

  private:
    ReplayResult replay(FsbStreamReader& reader, const SamplingPlan& plan,
                        FrontSideBus& bus, SampledReplayStats* stats,
                        bool warming, unsigned warm_stride);
};

} // namespace cosim

#endif // COSIM_TRACE_SAMPLED_REPLAY_HH
