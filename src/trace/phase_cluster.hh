/**
 * @file
 * Phase clustering over the CB 500 us sample series, producing a
 * sampling plan of representative intervals.
 *
 * The full-run co-simulations are the throughput ceiling on every sweep:
 * each (workload, configuration) cell pays for emulating the whole bus
 * stream. Bueno et al. ("Improving the Representativeness of Simulation
 * Intervals for the Cache Memory System") show that carefully chosen
 * intervals preserve cache behaviour at a fraction of the cost -- and the
 * CB already records the raw material: one sample per 500 us of emulated
 * time, with per-window instruction, cycle, access and miss counts.
 *
 * clusterPhases() normalizes each window into a feature vector (MPKI,
 * APKI, miss rate, IPC), clusters the windows into phases with a
 * deterministic seeded k-means, and picks representative windows per
 * phase: one for a homogeneous phase, several -- one per contiguous
 * stratum of its members -- when the phase's spread would otherwise
 * exceed a predicted error bound (PhaseClusterParams::errorTarget).
 * Each interval is weighted by the fraction of windows its stratum
 * covers. The result serializes as a
 * "cosim-plan/1" JSON file that `--cells=sampled` sweeps consume
 * (trace/sampled_replay.hh) and `cosim_inspect plan` validates.
 *
 * Everything here is a pure function of the sample series and the seed:
 * no wall-clock, no host entropy (cosim_analyze's interval-wallclock rule
 * keeps it that way), so the same profiling run always yields the same
 * plan, byte for byte.
 */

#ifndef COSIM_TRACE_PHASE_CLUSTER_HH
#define COSIM_TRACE_PHASE_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dragonhead/control_block.hh"

namespace cosim {

/** Plan schema identifier (bump on incompatible change). */
inline constexpr const char* kPlanSchema = "cosim-plan/1";

/** One representative interval: a single CB sample window. */
struct PlanInterval
{
    /** Index of the representative window in the CB sample series. */
    std::uint64_t window = 0;

    /** Stratum this interval represents (dense, 0-based, in window
     * order). A homogeneous k-means phase is one stratum; a phase
     * whose windows spread gets carved into several, each with its
     * own representative (see PhaseClusterParams::errorTarget). */
    std::uint64_t phase = 0;

    /** Windows assigned to the stratum (the weight's numerator). */
    std::uint64_t windows = 0;

    /** Fraction of all windows this stratum covers; sums to 1 over a
     * plan's intervals. The estimator extrapolates each representative
     * window's raw counts by this share and takes metric ratios at the
     * end (harness/sweep_runner.cc). */
    double weight = 0.0;

    /**
     * Fraction of all retired instructions in the stratum's windows;
     * sums to 1 over a plan's intervals. Kept for consumers that
     * average per-window *ratios* (CB windows are equal time, not
     * equal work, so a window-count weight would overstate low-IPC
     * strata there); the count-ratio estimator above needs only
     * weight.
     */
    double instWeight = 0.0;
};

/** A workload's sampling plan; see the file comment. */
struct SamplingPlan
{
    std::string workload;
    std::uint64_t seed = 0;

    /** CB window geometry the plan's window indices are defined over.
     * Replays recompute the same emulated-time windows from these. @{ */
    double samplePeriodUs = 500.0;
    double coreFreqGhz = 3.0;
    /** @} */

    /** Windows in the profiled series (the coverage denominator). */
    std::uint64_t totalWindows = 0;

    /** Detail-delivery windows replayed before each interval, with
     * their stats discarded, to warm the emulated cache. */
    std::uint64_t warmupWindows = 1;

    /** Representative intervals, ascending by window index. */
    std::vector<PlanInterval> intervals;

    /** Fraction of windows simulated in detail (intervals + warm-up
     * over totalWindows; the headline cost figure). */
    double coverage() const;

    /**
     * Structural validation: schema-level invariants a consumer relies
     * on (ordered unique windows in range, weights normalized, window
     * geometry positive). @return an empty string when valid, else a
     * human-readable defect description.
     */
    std::string validate() const;

    /** Serialize as pretty-printed "cosim-plan/1" JSON. */
    std::string toJson() const;

    /**
     * Write toJson() to @p path atomically (write-temp + rename).
     * @throws IoError on failure, so a sweep cell writing to a bad
     * path is isolatable under --keep-going.
     */
    void writeFile(const std::string& path) const;

    /** Parse plan JSON; false with @p error on malformed or
     * schema-invalid input (validate() is applied). */
    static bool parse(const std::string& text, SamplingPlan& out,
                      std::string* error = nullptr);

    /** Load and parse @p path; false with @p error on failure. */
    static bool load(const std::string& path, SamplingPlan& out,
                     std::string* error = nullptr);
};

/** Clustering knobs. */
struct PhaseClusterParams
{
    /** Upper bound on phases; the effective k is also capped by the
     * number of distinct feature vectors in the series. */
    unsigned maxPhases = 6;

    /** Lloyd iterations (fixed count keeps runtime deterministic even
     * when assignments oscillate between equal-cost optima). */
    unsigned iterations = 24;

    /** Seed for the k-means++ style initialization (cosim::Rng). */
    std::uint64_t seed = 42;

    /** Warm-up prefix recorded into the plan (windows per interval). */
    std::uint64_t warmupWindows = 1;

    /** Target predicted relative error of the estimator's count totals
     * (insts/accesses/misses): heterogeneous phases are granted extra
     * representatives -- one per contiguous stratum of their member
     * windows -- until the stratified-sampling prediction meets this,
     * or the interval budget runs out. */
    double errorTarget = 0.02;

    /** Hard cap on intervals across all phases, for callers that must
     * bound coverage (0 = only the series length bounds it; the error
     * target is the intended stop). */
    unsigned maxIntervals = 0;
};

/**
 * Cluster @p samples into phases and select representatives; see the
 * file comment. Degenerate inputs stay well-formed: an empty series
 * yields a plan with no intervals, and an all-identical series yields a
 * single phase with weight 1.
 */
SamplingPlan clusterPhases(const std::vector<Sample>& samples,
                           const std::string& workload,
                           const PhaseClusterParams& params);

/**
 * Resolve the per-workload plan file for a --plan/--plan-out base path:
 * "results/fig4.plan.json" + "PLSA" -> "results/fig4.PLSA.plan.json"
 * (the ".plan.json" suffix is appended when the base does not end in
 * it), mirroring fsbStreamPath().
 */
std::string planPath(const std::string& base, const std::string& workload);

} // namespace cosim

#endif // COSIM_TRACE_PHASE_CLUSTER_HH
