/**
 * @file
 * Bus-transaction trace capture and replay.
 *
 * Run-to-completion co-simulation is what makes choosing representative
 * regions possible (Section 1); traces are the mechanism: capture the
 * regulated bus stream once, then replay slices of it through any cache
 * configuration offline.
 *
 * The format is a little-endian binary stream: a 16-byte header
 * ("DHTRACE1", version, record count) followed by fixed 16-byte records.
 */

#ifndef COSIM_TRACE_TRACE_HH
#define COSIM_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/fsb.hh"

namespace cosim {

/** One serialized bus transaction. */
struct TraceRecord
{
    Addr addr = 0;
    std::uint32_t size = 0;
    std::uint16_t core = 0;
    std::uint8_t kind = 0; ///< TxnKind
    std::uint8_t pad = 0;

    static TraceRecord fromTxn(const BusTransaction& txn);
    BusTransaction toTxn() const;
};

static_assert(sizeof(TraceRecord) == 16, "trace records must be 16 bytes");

/** A snooper that records every transaction it sees into memory. */
class TraceCapture : public BusSnooper
{
  public:
    void observe(const BusTransaction& txn) override;

    const std::vector<TraceRecord>& records() const { return records_; }
    void clear() { records_.clear(); }

    /** Persist to @p path; fatal() on I/O failure. */
    void save(const std::string& path) const;

  private:
    std::vector<TraceRecord> records_;
};

/** Load a trace written by TraceCapture::save; fatal() on bad files. */
std::vector<TraceRecord> loadTrace(const std::string& path);

/**
 * Replay records [first, first+count) through @p snooper (a Dragonhead,
 * a sweep bank adapter, ...). count == 0 means "to the end".
 * @return number of records replayed
 */
std::size_t replayTrace(const std::vector<TraceRecord>& records,
                        BusSnooper& snooper, std::size_t first = 0,
                        std::size_t count = 0);

} // namespace cosim

#endif // COSIM_TRACE_TRACE_HH
