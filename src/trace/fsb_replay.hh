/**
 * @file
 * FSB stream replay: drive a recorded transaction stream back through a
 * front-side bus, so every attached snooper -- inline Dragonheads or an
 * AsyncEmulatorBank -- sees the exact sequence a live run broadcast.
 *
 * Replay re-issues each decoded transaction through
 * FrontSideBus::issue(), which is the same entry point the CPU models
 * use. The bus therefore keeps its own traffic counters, applies its
 * configured batching, and hands chunks to BusSnooper::observeBatch()
 * exactly as in a live run: CacheController counters and CB sample
 * series come out bit-identical (tests/test_replay.cc enforces this),
 * only the guest execution is gone.
 */

#ifndef COSIM_TRACE_FSB_REPLAY_HH
#define COSIM_TRACE_FSB_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/fsb_capture.hh"

namespace cosim {

class FrontSideBus;

/** What one replay pass did. */
struct ReplayResult
{
    bool ok = false;
    std::string error; ///< set when !ok (corrupt/unreadable stream)

    FsbStreamMeta meta;
    std::uint64_t txns = 0;
    std::uint64_t chunks = 0;
    std::uint64_t streamBytes = 0;
    std::uint64_t digest = 0;
    /** Host wall-clock of decode + bus delivery + snooper emulation. */
    double seconds = 0.0;
};

/** See file comment. */
class ReplayDriver
{
  public:
    /**
     * Replay the stream at @p path through @p bus. On a corrupt stream
     * the error is reported in the result; transactions decoded before
     * the damage was detected have already been delivered.
     */
    ReplayResult replayFile(const std::string& path, FrontSideBus& bus);

    /** Replay an in-memory stream (a capture-run writer's share()). */
    ReplayResult replayBuffer(
        std::shared_ptr<const std::vector<std::uint8_t>> stream,
        FrontSideBus& bus);

  private:
    ReplayResult replay(FsbStreamReader& reader, FrontSideBus& bus);
};

} // namespace cosim

#endif // COSIM_TRACE_FSB_REPLAY_HH
