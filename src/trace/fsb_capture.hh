/**
 * @file
 * FSB stream capture: a compact, versioned on-disk format for the exact
 * transaction sequence a live run broadcasts on the front-side bus.
 *
 * The paper's Dragonhead board is passive -- it snoops the FSB without
 * timing feedback -- so one guest execution can drive any number of LLC
 * configurations. Capturing the regulated bus stream once makes that
 * reuse durable: a recorded stream replays bit-identically through any
 * emulator configuration without re-executing the guest (fsb_replay.hh),
 * and its content digest is a stable fingerprint of "what the workload
 * put on the bus" that CI gates on (tests/golden/).
 *
 * Format "FSBC", version 1, little-endian throughout:
 *
 *   header (fixed 48 bytes, then two length-prefixed strings):
 *     [0..3]   magic "FSBC"
 *     [4..7]   u32 version (kFsbStreamVersion)
 *     [8..11]  u32 flags (reserved, 0)
 *     [12..15] u32 nCores
 *     [16..23] u64 seed
 *     [24..31] f64 scale
 *     [32..39] u64 totalInsts of the captured run (patched at finish)
 *     [40..43] u32 verified flag of the captured run (patched at finish)
 *     [44..47] u32 reserved
 *     varint workload-name length + bytes
 *     varint platform-name length + bytes
 *
 *   chunks (any number):
 *     u8 'C', varint txnCount, varint payloadBytes, payload
 *
 *     The payload packs each transaction as a lead byte -- TxnKind in
 *     bits [1:0], "size repeats" in bit 2, "core repeats" in bit 3 --
 *     followed by varint core (when not repeating), varint size (when
 *     not repeating) and the ZigZag varint delta from the previous
 *     transaction's address. Predictor state (prev addr/size/core)
 *     carries across chunk boundaries; chunks exist so capture and
 *     replay stream in bounded memory.
 *
 *   trailer:
 *     u8 'E', u64 total txnCount, u64 FNV-1a content digest
 *
 * The digest hashes the *decoded* canonical tuples (addr, size, kind,
 * core), not the encoded bytes, so a digest-only snooper on a live bus,
 * a capture writer and a replay reader all derive the same value.
 */

#ifndef COSIM_TRACE_FSB_CAPTURE_HH
#define COSIM_TRACE_FSB_CAPTURE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/fsb.hh"

namespace cosim {

/** Format version this build writes and reads. */
constexpr std::uint32_t kFsbStreamVersion = 1;

/** Provenance recorded in a stream header. */
struct FsbStreamMeta
{
    std::string workload;
    std::string platform;
    std::uint32_t nCores = 0;
    std::uint64_t seed = 0;
    double scale = 1.0;

    /** Result of the captured run, for replay provenance. @{ */
    std::uint64_t totalInsts = 0;
    bool verified = false;
    /** @} */
};

/** Incremental FNV-1a over canonical transaction tuples. */
class FsbDigest
{
  public:
    void update(const BusTransaction& txn);

    void
    update(const BusTransaction* txns, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            update(txns[i]);
    }

    std::uint64_t value() const { return hash_; }
    std::uint64_t txnCount() const { return txns_; }
    void reset();

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull; ///< FNV offset basis
    std::uint64_t txns_ = 0;
};

/** Render a digest the way digest manifests and tools print it. */
std::string formatFsbDigest(std::uint64_t digest);

/**
 * Encodes a transaction stream into an in-memory buffer in the format
 * above. finish() (or writeFile()) seals the trailer; appending after
 * that is a hard error.
 */
class FsbStreamWriter
{
  public:
    explicit FsbStreamWriter(const FsbStreamMeta& meta,
                             std::size_t chunkTxns = 4096);

    void append(const BusTransaction& txn);
    void appendBatch(const BusTransaction* txns, std::size_t n);

    /**
     * Record the captured run's outcome into the header (any time
     * before finish()).
     */
    void setResult(std::uint64_t total_insts, bool verified);

    /** Flush the open chunk and write the trailer (idempotent). */
    void finish();

    /**
     * finish(), then write the buffer to @p path atomically
     * (write-temp + rename). @throws IoError on failure, so a sweep
     * cell capturing to a bad path is isolatable under --keep-going.
     */
    void writeFile(const std::string& path);

    /** finish(), then hand the encoded stream off without copying. */
    std::shared_ptr<const std::vector<std::uint8_t>> share();

    /** Encoded bytes so far (header + sealed chunks [+ trailer]). */
    std::size_t encodedBytes() const { return buffer_.size(); }

    std::uint64_t txnCount() const { return digest_.txnCount(); }
    std::uint64_t digest() const { return digest_.value(); }
    const FsbStreamMeta& meta() const { return meta_; }

  private:
    void flushChunk();

    FsbStreamMeta meta_;
    std::size_t chunkTxns_;
    std::vector<std::uint8_t> buffer_;  ///< sealed stream prefix
    std::vector<std::uint8_t> chunk_;   ///< open chunk payload
    std::size_t chunkCount_ = 0;        ///< txns in the open chunk
    FsbDigest digest_;
    /** Encoder prediction state. @{ */
    Addr prevAddr_ = 0;
    std::uint32_t prevSize_ = 0;
    CoreId prevCore_ = 0;
    /** @} */
    bool finished_ = false;
};

/**
 * Decodes a stream chunk-at-a-time with full validation: bad magic,
 * unsupported version, truncation, framing damage and digest mismatch
 * all surface as a false return plus a human-readable error() -- never
 * as undefined behaviour.
 */
class FsbStreamReader
{
  public:
    /** Open @p path; false (with error()) when the header is bad. */
    bool openFile(const std::string& path, std::string* error = nullptr);

    /** Open an in-memory stream (shares ownership of the buffer). */
    bool openBuffer(std::shared_ptr<const std::vector<std::uint8_t>> buf,
                    std::string* error = nullptr);

    /**
     * Decode the next chunk into @p out (replaced, not appended).
     * Returns false at the end of the stream -- which is only *clean*
     * once the trailer's count and digest have been verified -- or on
     * corruption; ok() distinguishes the two.
     */
    bool nextChunk(std::vector<BusTransaction>& out);

    /** True while no error has been detected. */
    bool ok() const { return error_.empty(); }

    /** True once the trailer has been read and verified. */
    bool atEnd() const { return atEnd_; }

    const std::string& error() const { return error_; }
    const FsbStreamMeta& meta() const { return meta_; }

    std::uint64_t txnsDecoded() const { return digest_.txnCount(); }

    /** Content digest over everything decoded so far. */
    std::uint64_t contentDigest() const { return digest_.value(); }

    std::size_t streamBytes() const { return data_ ? data_->size() : 0; }

  private:
    bool fail(const std::string& what);
    bool parseHeader();

    std::shared_ptr<const std::vector<std::uint8_t>> data_;
    std::size_t pos_ = 0;
    FsbStreamMeta meta_;
    FsbDigest digest_;
    /** Decoder prediction state (mirrors the writer). @{ */
    Addr prevAddr_ = 0;
    std::uint32_t prevSize_ = 0;
    CoreId prevCore_ = 0;
    /** @} */
    bool atEnd_ = false;
    std::string error_;
};

/** Everything `cosim_replay info` prints about a stream file. */
struct FsbStreamInfo
{
    FsbStreamMeta meta;
    std::uint64_t txns = 0;
    std::uint64_t digest = 0;
    std::uint64_t fileBytes = 0;
};

/**
 * Fully decode and validate @p path without materializing the stream.
 * @return true and fill @p info, or false with a description in @p
 *         error.
 */
bool probeFsbStream(const std::string& path, FsbStreamInfo& info,
                    std::string* error = nullptr);

/**
 * Decode and validate @p path into a transaction vector (tests and the
 * diff tool; replay streams chunk-wise instead).
 */
bool loadFsbStream(const std::string& path,
                   std::vector<BusTransaction>& txns, FsbStreamMeta& meta,
                   std::string* error = nullptr);

/** A BusSnooper that encodes everything it sees through a writer. */
class FsbCaptureSnooper : public BusSnooper
{
  public:
    explicit FsbCaptureSnooper(const FsbStreamMeta& meta,
                               std::size_t chunkTxns = 4096)
        : writer_(meta, chunkTxns)
    {
    }

    void observe(const BusTransaction& txn) override;
    void observeBatch(const BusTransaction* txns, std::size_t n) override;

    FsbStreamWriter& writer() { return writer_; }

    /** Host wall-clock spent encoding (the capture-overhead gauge). */
    double encodeSeconds() const { return encodeSeconds_; }

  private:
    FsbStreamWriter writer_;
    double encodeSeconds_ = 0.0;
};

/**
 * A BusSnooper that only fingerprints the stream -- no encoding, no
 * storage -- for cheap golden-digest checks on live runs.
 */
class FsbDigestSnooper : public BusSnooper
{
  public:
    void observe(const BusTransaction& txn) override
    {
        digest_.update(txn);
    }

    void observeBatch(const BusTransaction* txns, std::size_t n) override
    {
        digest_.update(txns, n);
    }

    std::uint64_t digest() const { return digest_.value(); }
    std::uint64_t txnCount() const { return digest_.txnCount(); }

  private:
    FsbDigest digest_;
};

/**
 * The per-figure digest manifest committed under tests/golden/: one
 * line per workload stream, "workload txns fnv64", under a schema
 * header line. Text so golden diffs stay reviewable.
 */
struct DigestManifest
{
    struct Entry
    {
        std::string workload;
        std::uint64_t txns = 0;
        std::uint64_t digest = 0;
    };

    std::vector<Entry> entries;

    void add(const std::string& workload, std::uint64_t txns,
             std::uint64_t digest);

    /** Entry lookup; nullptr when absent. */
    const Entry* find(const std::string& workload) const;

    std::string toText() const;

    /** Write toText() to @p path; fatal() on I/O error. */
    void writeFile(const std::string& path) const;

    /** Parse @p path; false with @p error on malformed input. */
    static bool load(const std::string& path, DigestManifest& out,
                     std::string* error = nullptr);

    /**
     * Compare a freshly computed manifest against a golden one.
     * @return true when identical; otherwise false with a reviewable
     *         per-workload report in @p report.
     */
    static bool compare(const DigestManifest& golden,
                        const DigestManifest& fresh, std::string& report);
};

} // namespace cosim

#endif // COSIM_TRACE_FSB_CAPTURE_HH
