#include "trace/reuse_profiler.hh"

#include <algorithm>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace cosim {

namespace {

constexpr std::uint64_t exactLimit = 4096;

} // namespace

ReuseDistanceProfiler::ReuseDistanceProfiler(std::uint32_t line_size,
                                             std::uint64_t max_accesses)
    : maxAccesses_(max_accesses)
{
    fatal_if(!isPowerOf2(line_size), "line size must be a power of two");
    fatal_if(max_accesses == 0, "need a nonzero access budget");
    lineBits_ = floorLog2(line_size);
    fenwick_.assign(max_accesses + 1, 0);
    hist_.assign(64, 0);
    exact_.assign(exactLimit, 0);
}

void
ReuseDistanceProfiler::fenwickAdd(std::uint64_t pos, int delta)
{
    for (; pos < fenwick_.size(); pos += pos & (~pos + 1))
        fenwick_[pos] = static_cast<std::uint32_t>(
            static_cast<int64_t>(fenwick_[pos]) + delta);
}

std::uint64_t
ReuseDistanceProfiler::fenwickSum(std::uint64_t pos) const
{
    std::uint64_t sum = 0;
    for (; pos > 0; pos -= pos & (~pos + 1))
        sum += fenwick_[pos];
    return sum;
}

void
ReuseDistanceProfiler::observe(const BusTransaction& txn)
{
    if (txn.kind == TxnKind::Message)
        return;
    access(txn.addr);
}

void
ReuseDistanceProfiler::access(Addr addr)
{
    if (time_ >= maxAccesses_)
        return; // budget exhausted; ignore the tail

    Addr line = addr >> lineBits_;
    std::uint64_t now = ++time_; // 1-indexed position

    auto it = lastUse_.find(line);
    if (it == lastUse_.end()) {
        ++cold_;
        lastUse_.emplace(line, now);
        fenwickAdd(now, +1);
        return;
    }

    std::uint64_t prev = it->second;
    // Distinct lines touched strictly after prev: their last-use marks
    // all lie in (prev, now).
    std::uint64_t distance = fenwickSum(now - 1) - fenwickSum(prev);

    if (distance < exactLimit)
        ++exact_[distance];
    ++hist_[distance == 0 ? 0 : floorLog2(distance)];

    fenwickAdd(prev, -1);
    fenwickAdd(now, +1);
    it->second = now;
}

double
ReuseDistanceProfiler::missRatioAt(std::uint64_t capacity_lines) const
{
    if (time_ == 0)
        return 0.0;

    // Hits = reuses with stack distance < capacity.
    std::uint64_t hits = 0;
    if (capacity_lines <= exactLimit) {
        for (std::uint64_t d = 0; d < capacity_lines; ++d)
            hits += exact_[d];
    } else {
        for (std::uint64_t d = 0; d < exactLimit; ++d)
            hits += exact_[d];
        // Above the exact range, interpolate within log2 buckets.
        for (unsigned b = floorLog2(exactLimit); b < hist_.size(); ++b) {
            std::uint64_t lo = std::uint64_t{1} << b;
            std::uint64_t hi = lo << 1;
            if (lo < exactLimit)
                continue; // already counted exactly
            if (hi <= capacity_lines) {
                hits += hist_[b];
            } else if (lo < capacity_lines) {
                double frac = static_cast<double>(capacity_lines - lo) /
                              static_cast<double>(hi - lo);
                hits += static_cast<std::uint64_t>(
                    frac * static_cast<double>(hist_[b]));
            }
        }
    }
    return 1.0 - static_cast<double>(hits) / static_cast<double>(time_);
}

std::uint64_t
ReuseDistanceProfiler::workingSetLines(double slack) const
{
    double floor = time_ == 0
        ? 0.0
        : static_cast<double>(cold_) / static_cast<double>(time_);
    std::uint64_t cap = 1;
    while (cap < footprintLines() * 2) {
        if (missRatioAt(cap) <= floor + slack)
            return cap;
        cap <<= 1;
    }
    return cap;
}

} // namespace cosim
