/**
 * @file
 * Configuration-independent working-set analysis via LRU stack
 * distances.
 *
 * The paper's related work (Abandah & Davidson) analyzes shared-memory
 * applications independently of any concrete cache configuration; the
 * classic tool is the LRU stack-distance histogram: for each access,
 * the number of *distinct* lines touched since the previous access to
 * the same line. Because a fully-associative LRU cache of C lines hits
 * exactly when the stack distance is < C, one profiling pass yields the
 * complete miss-ratio-vs-capacity curve -- the envelope of a whole
 * Figure-4 sweep.
 *
 * Implementation: timestamp per line + a Fenwick tree over access time
 * marking which timestamps are the *most recent* use of their line;
 * each lookup/update is O(log n).
 */

#ifndef COSIM_TRACE_REUSE_PROFILER_HH
#define COSIM_TRACE_REUSE_PROFILER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/fsb.hh"

namespace cosim {

/** See file comment. */
class ReuseDistanceProfiler : public BusSnooper
{
  public:
    /**
     * @param line_size granularity of the analysis
     * @param max_accesses profiling stops (and further traffic is
     *        ignored) after this many line accesses, bounding memory
     */
    explicit ReuseDistanceProfiler(std::uint32_t line_size = 64,
                                   std::uint64_t max_accesses = 1 << 24);

    /** Snoop a bus transaction (messages are ignored). */
    void observe(const BusTransaction& txn) override;

    /** Record one line access directly (for trace-free use). */
    void access(Addr addr);

    /** Line accesses profiled (excludes those past the cap). */
    std::uint64_t accesses() const { return time_; }

    /** First-touch (infinite-distance) accesses. */
    std::uint64_t coldAccesses() const { return cold_; }

    /** Distinct lines seen (the total footprint). */
    std::uint64_t footprintLines() const { return lastUse_.size(); }

    /**
     * Histogram over log2 buckets: bucket b counts accesses with stack
     * distance in [2^b, 2^(b+1)); bucket 0 also holds distance 0.
     */
    const std::vector<std::uint64_t>& histogram() const { return hist_; }

    /**
     * Miss ratio of a fully-associative LRU cache with @p capacity_lines
     * lines, computed exactly from the recorded distances (cold misses
     * count as misses).
     */
    double missRatioAt(std::uint64_t capacity_lines) const;

    /**
     * The smallest power-of-two capacity (in lines) whose LRU miss
     * ratio is within @p slack of the cold-miss floor -- a working-set
     * size estimate.
     */
    std::uint64_t workingSetLines(double slack = 0.02) const;

    bool saturated() const { return time_ >= maxAccesses_; }

  private:
    void fenwickAdd(std::uint64_t pos, int delta);
    std::uint64_t fenwickSum(std::uint64_t pos) const;

    std::uint32_t lineBits_;
    std::uint64_t maxAccesses_;

    std::uint64_t time_ = 0;
    std::uint64_t cold_ = 0;
    std::unordered_map<Addr, std::uint64_t> lastUse_;
    std::vector<std::uint32_t> fenwick_;
    std::vector<std::uint64_t> hist_;
    /** Exact counts for small distances (lines 0..4095). */
    std::vector<std::uint64_t> exact_;
};

} // namespace cosim

#endif // COSIM_TRACE_REUSE_PROFILER_HH
