#include "trace/sampled_replay.hh"

#include <algorithm>

#include "base/logging.hh"
#include "dragonhead/fsb_messages.hh"
#include "mem/fsb.hh"

namespace cosim {

namespace {

/** A merged, inclusive window range data is delivered inside. */
struct DeliveryRange
{
    std::uint64_t first = 0;
    std::uint64_t last = 0;
};

/**
 * Per-interval [window - warmup, window] ranges, merged where warm-up
 * prefixes overlap a neighbouring interval. Plans are validated to have
 * strictly ascending windows, so a single sorted pass suffices.
 */
std::vector<DeliveryRange>
deliveryRanges(const SamplingPlan& plan)
{
    std::vector<DeliveryRange> ranges;
    for (const PlanInterval& iv : plan.intervals) {
        const std::uint64_t warm =
            std::min<std::uint64_t>(plan.warmupWindows, iv.window);
        DeliveryRange r{iv.window - warm, iv.window};
        if (!ranges.empty() && r.first <= ranges.back().last + 1)
            ranges.back().last = std::max(ranges.back().last, r.last);
        else
            ranges.push_back(r);
    }
    return ranges;
}

/** The delivery gate: tracks the current CB window and whether data
 * transactions currently pass. */
class Gate
{
  public:
    Gate(const SamplingPlan& plan, SampledReplayStats& stats)
        : ranges_(deliveryRanges(plan)), stats_(stats)
    {
        cyclesPerWindow_ = static_cast<std::uint64_t>(
            plan.samplePeriodUs * 1000.0 * plan.coreFreqGhz);
        fatal_if(cyclesPerWindow_ == 0,
                 "sampling plan window shorter than a cycle");
        for (const PlanInterval& iv : plan.intervals)
            intervalWindows_.push_back(iv.window);
        refresh();
        // Spans are counted on delivering -> fast-forward transitions;
        // a run that *starts* fast-forwarded is the first span.
        if (!delivering_)
            ++stats_.skippedSpans;
    }

    /** Feed one decoded message; advances the window clock. */
    void
    onMessage(const msg::Message& m)
    {
        if (m.type != msg::Type::CyclesCompleted)
            return;
        cycles_ += m.payload;
        const std::uint64_t w = cycles_ / cyclesPerWindow_;
        if (w != window_) {
            window_ = w;
            refresh();
        }
    }

    bool delivering() const { return delivering_; }

    std::uint64_t
    windowsSeen() const
    {
        // Full windows closed, plus the partial tail if any cycles ran.
        return window_ + (cycles_ % cyclesPerWindow_ != 0 ? 1 : 0);
    }

  private:
    void
    refresh()
    {
        while (range_ < ranges_.size() && ranges_[range_].last < window_)
            ++range_;
        const bool now = range_ < ranges_.size() &&
                         window_ >= ranges_[range_].first;
        if (!now && delivering_)
            ++stats_.skippedSpans;
        delivering_ = now;
        while (interval_ < intervalWindows_.size() &&
               intervalWindows_[interval_] <= window_) {
            ++stats_.intervalsReached;
            ++interval_;
        }
    }

    std::vector<DeliveryRange> ranges_;
    std::vector<std::uint64_t> intervalWindows_;
    SampledReplayStats& stats_;
    std::uint64_t cyclesPerWindow_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t window_ = 0;
    std::size_t range_ = 0;
    std::size_t interval_ = 0;
    bool delivering_ = false;
};

/** Reuse-filter geometry: a direct-mapped table of recently seen line
 * tags, sized past the largest swept LLC's line count so a resident
 * working set fits. 64 B lines are the finest any sweep configuration
 * uses, so tracking at that grain can only over-deliver into a
 * coarser-lined LLC, never starve it. */
constexpr std::size_t kSeenSlotBits = 17;
constexpr std::uint64_t kNoLine = ~std::uint64_t{0};

/** Fibonacci hash: strided address sequences alias in the low bits. */
inline std::size_t
seenSlot(std::uint64_t line)
{
    return static_cast<std::size_t>((line * 0x9E3779B97F4A7C15ull) >>
                                    (64 - kSeenSlotBits));
}

} // namespace

ReplayResult
SampledReplayDriver::replayFile(const std::string& path,
                                const SamplingPlan& plan,
                                FrontSideBus& bus,
                                SampledReplayStats* stats, bool warming,
                                unsigned warm_stride)
{
    FsbStreamReader reader;
    ReplayResult result;
    if (!reader.openFile(path, &result.error))
        return result;
    return replay(reader, plan, bus, stats, warming, warm_stride);
}

ReplayResult
SampledReplayDriver::replayBuffer(
    std::shared_ptr<const std::vector<std::uint8_t>> stream,
    const SamplingPlan& plan, FrontSideBus& bus,
    SampledReplayStats* stats, bool warming, unsigned warm_stride)
{
    FsbStreamReader reader;
    ReplayResult result;
    if (!reader.openBuffer(std::move(stream), &result.error))
        return result;
    return replay(reader, plan, bus, stats, warming, warm_stride);
}

ReplayResult
SampledReplayDriver::replay(FsbStreamReader& reader,
                            const SamplingPlan& plan, FrontSideBus& bus,
                            SampledReplayStats* stats, bool warming,
                            unsigned warm_stride)
{
    ReplayResult result;
    SampledReplayStats local;
    SampledReplayStats& s = stats != nullptr ? *stats : local;
    s = SampledReplayStats{};
    Gate gate(plan, s);

    // Dilution: a line the novelty filter has not seen (first touch,
    // or re-touch after its slot was reclaimed) is always issued, so
    // the LLC keeps every distinct line of the fast-forwarded span and
    // a reuse-heavy working set cannot be starved into phantom misses.
    // Only *repeat* traffic is thinned, to every Nth candidate; what
    // that costs is replacement-order fidelity, which the detailed
    // warm-up windows ahead of each interval repair. The tick counter
    // and filter are plain functions of the stream, so the pass stays
    // deterministic across chunk boundaries.
    const std::uint64_t stride = warm_stride > 1 ? warm_stride : 1;
    std::uint64_t warm_tick = 0;
    std::vector<std::uint64_t> seen;
    if (warming && stride > 1)
        seen.assign(std::size_t{1} << kSeenSlotBits, kNoLine);

    std::vector<BusTransaction> chunk;
    while (reader.nextChunk(chunk)) {
        for (const BusTransaction& txn : chunk) {
            if (msg::isMessageAddr(txn.addr)) {
                bus.issue(txn);
                ++s.messages;
                gate.onMessage(msg::decode(txn.addr));
                continue;
            }
            if (gate.delivering()) {
                bus.issue(txn);
                ++s.dataDelivered;
            } else {
                bool issue = warming;
                if (warming && stride > 1) {
                    std::uint64_t& tag = seen[seenSlot(txn.addr >> 6)];
                    if (tag != txn.addr >> 6) {
                        tag = txn.addr >> 6;
                    } else {
                        issue = warm_tick++ % stride == 0;
                    }
                }
                if (issue) {
                    // Functional warming: the LLC state keeps tracking
                    // the full run; the delta lands in an unread window.
                    bus.issue(txn);
                    ++s.dataWarmed;
                } else {
                    ++s.dataSkipped;
                }
            }
        }
        ++result.chunks;
    }
    // A batched bus may hold a partial chunk, exactly as at the end of
    // a live run; snoopers must see the complete delivered stream.
    bus.flush();
    s.windowsSeen = gate.windowsSeen();

    result.meta = reader.meta();
    result.txns = reader.txnsDecoded();
    result.streamBytes = reader.streamBytes();
    result.digest = reader.contentDigest();
    result.ok = reader.ok();
    if (!result.ok)
        result.error = reader.error();
    return result;
}

} // namespace cosim
