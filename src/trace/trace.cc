#include "trace/trace.hh"

#include <cstdio>
#include <cstring>

#include "base/logging.hh"

namespace cosim {

namespace {

constexpr char traceMagic[8] = {'D', 'H', 'T', 'R', 'A', 'C', 'E', '1'};

struct TraceHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t count;
};

static_assert(sizeof(TraceHeader) == 24, "unexpected header layout");

} // namespace

TraceRecord
TraceRecord::fromTxn(const BusTransaction& txn)
{
    TraceRecord r;
    r.addr = txn.addr;
    r.size = txn.size;
    r.core = txn.core;
    r.kind = static_cast<std::uint8_t>(txn.kind);
    return r;
}

BusTransaction
TraceRecord::toTxn() const
{
    BusTransaction txn;
    txn.addr = addr;
    txn.size = size;
    txn.core = core;
    txn.kind = static_cast<TxnKind>(kind);
    return txn;
}

void
TraceCapture::observe(const BusTransaction& txn)
{
    records_.push_back(TraceRecord::fromTxn(txn));
}

void
TraceCapture::save(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    fatal_if(f == nullptr, "cannot open trace file '%s' for writing",
             path.c_str());

    TraceHeader hdr{};
    std::memcpy(hdr.magic, traceMagic, sizeof(traceMagic));
    hdr.version = 1;
    hdr.count = records_.size();

    bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1;
    if (ok && !records_.empty()) {
        ok = std::fwrite(records_.data(), sizeof(TraceRecord),
                         records_.size(), f) == records_.size();
    }
    std::fclose(f);
    fatal_if(!ok, "short write to trace file '%s'", path.c_str());
}

std::vector<TraceRecord>
loadTrace(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    fatal_if(f == nullptr, "cannot open trace file '%s'", path.c_str());

    TraceHeader hdr{};
    bool ok = std::fread(&hdr, sizeof(hdr), 1, f) == 1;
    if (!ok || std::memcmp(hdr.magic, traceMagic, sizeof(traceMagic)) != 0 ||
        hdr.version != 1) {
        std::fclose(f);
        fatal("'%s' is not a version-1 Dragonhead trace", path.c_str());
    }

    std::vector<TraceRecord> records(hdr.count);
    if (hdr.count > 0) {
        ok = std::fread(records.data(), sizeof(TraceRecord), hdr.count,
                        f) == hdr.count;
    }
    std::fclose(f);
    fatal_if(!ok, "trace file '%s' is truncated", path.c_str());
    return records;
}

std::size_t
replayTrace(const std::vector<TraceRecord>& records, BusSnooper& snooper,
            std::size_t first, std::size_t count)
{
    if (first >= records.size())
        return 0;
    std::size_t last = count == 0 ? records.size()
                                  : std::min(records.size(), first + count);
    for (std::size_t i = first; i < last; ++i)
        snooper.observe(records[i].toTxn());
    return last - first;
}

} // namespace cosim
