#include "trace/phase_cluster.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "base/atomic_file.hh"
#include "base/random.hh"
#include "obs/json.hh"

namespace cosim {

namespace {

/** Feature-space dimensionality: MPKI, APKI, miss rate, IPC. */
constexpr std::size_t kDims = 4;

struct Features
{
    double v[kDims];
};

double
apki(const Sample& s)
{
    return s.insts == 0 ? 0.0
                        : 1000.0 * static_cast<double>(s.accesses) /
                              static_cast<double>(s.insts);
}

double
missRate(const Sample& s)
{
    return s.accesses == 0 ? 0.0
                           : static_cast<double>(s.misses) /
                                 static_cast<double>(s.accesses);
}

double
ipc(const Sample& s)
{
    return s.cycles == 0 ? 0.0
                         : static_cast<double>(s.insts) /
                               static_cast<double>(s.cycles);
}

/** Min-max normalize each dimension to [0, 1] (flat dims collapse to
 * 0 so they cannot dominate the distance). */
std::vector<Features>
extractFeatures(const std::vector<Sample>& samples)
{
    std::vector<Features> f(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        f[i].v[0] = samples[i].mpki();
        f[i].v[1] = apki(samples[i]);
        f[i].v[2] = missRate(samples[i]);
        f[i].v[3] = ipc(samples[i]);
    }
    for (std::size_t d = 0; d < kDims; ++d) {
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (const Features& x : f) {
            lo = std::min(lo, x.v[d]);
            hi = std::max(hi, x.v[d]);
        }
        const double range = hi - lo;
        for (Features& x : f)
            x.v[d] = range > 0.0 ? (x.v[d] - lo) / range : 0.0;
    }
    return f;
}

double
dist2(const Features& a, const Features& b)
{
    double d2 = 0.0;
    for (std::size_t d = 0; d < kDims; ++d) {
        const double diff = a.v[d] - b.v[d];
        d2 += diff * diff;
    }
    return d2;
}

bool
sameFeatures(const Features& a, const Features& b)
{
    for (std::size_t d = 0; d < kDims; ++d) {
        if (a.v[d] != b.v[d])
            return false;
    }
    return true;
}

/** Distinct feature vectors, capped at @p cap (the effective k bound). */
std::size_t
countDistinct(const std::vector<Features>& f, std::size_t cap)
{
    std::vector<std::size_t> reps;
    for (std::size_t i = 0; i < f.size() && reps.size() < cap; ++i) {
        bool seen = false;
        for (std::size_t r : reps) {
            if (sameFeatures(f[i], f[r])) {
                seen = true;
                break;
            }
        }
        if (!seen)
            reps.push_back(i);
    }
    return reps.size();
}

/**
 * k-means++ style seeding: the first centroid is a seeded draw, each
 * further one the window farthest from its nearest chosen centroid
 * (deterministic tie-break on the lowest index). The Rng is the only
 * randomness and is constructed from the plan seed, so the same series
 * and seed always initialize identically.
 */
std::vector<Features>
initCentroids(const std::vector<Features>& f, std::size_t k, Rng& rng)
{
    std::vector<Features> centroids;
    centroids.reserve(k);
    centroids.push_back(f[rng.nextBounded(f.size())]);
    while (centroids.size() < k) {
        std::size_t best = 0;
        double best_d2 = -1.0;
        for (std::size_t i = 0; i < f.size(); ++i) {
            double nearest = std::numeric_limits<double>::infinity();
            for (const Features& c : centroids)
                nearest = std::min(nearest, dist2(f[i], c));
            if (nearest > best_d2) {
                best_d2 = nearest;
                best = i;
            }
        }
        centroids.push_back(f[best]);
    }
    return centroids;
}

std::string
formatUnsigned(std::uint64_t v)
{
    return std::to_string(v);
}

bool
getNumber(const obs::json::Value& obj, const char* key, double& out)
{
    const obs::json::Value* v = obj.find(key);
    if (v == nullptr || !v->isNumber())
        return false;
    out = v->num;
    return true;
}

} // namespace

double
SamplingPlan::coverage() const
{
    if (totalWindows == 0)
        return 0.0;
    // Union of the merged [window - warmup, window] delivery ranges:
    // overlapping warm-up prefixes must not double-count, or a plan
    // could claim full coverage while windows go undelivered. Windows
    // are validated strictly ascending, so one sorted pass merges.
    std::uint64_t detail = 0;
    std::uint64_t first = 0, last = 0;
    bool open = false;
    for (const PlanInterval& iv : intervals) {
        const std::uint64_t warm =
            std::min<std::uint64_t>(warmupWindows, iv.window);
        const std::uint64_t lo = iv.window - warm;
        if (open && lo <= last + 1) {
            last = std::max(last, iv.window);
        } else {
            if (open)
                detail += last - first + 1;
            first = lo;
            last = iv.window;
            open = true;
        }
    }
    if (open)
        detail += last - first + 1;
    const double c = static_cast<double>(detail) /
                     static_cast<double>(totalWindows);
    return c > 1.0 ? 1.0 : c;
}

std::string
SamplingPlan::validate() const
{
    if (samplePeriodUs <= 0.0)
        return "sample_period_us must be positive";
    if (coreFreqGhz <= 0.0)
        return "core_freq_ghz must be positive";
    if (intervals.empty())
        return totalWindows == 0 ? std::string()
                                 : "no intervals for a non-empty series";
    double weight_sum = 0.0;
    double inst_sum = 0.0;
    std::uint64_t prev_window = 0;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const PlanInterval& iv = intervals[i];
        if (iv.window >= totalWindows) {
            return "interval window " + formatUnsigned(iv.window) +
                   " out of range (total_windows " +
                   formatUnsigned(totalWindows) + ")";
        }
        if (i > 0 && iv.window <= prev_window)
            return "interval windows must be strictly ascending";
        prev_window = iv.window;
        if (iv.phase >= intervals.size())
            return "interval phase id out of range";
        if (iv.windows == 0)
            return "interval covers zero windows";
        if (!(iv.weight > 0.0) || iv.weight > 1.0)
            return "interval weight outside (0, 1]";
        if (iv.instWeight < 0.0 || iv.instWeight > 1.0)
            return "interval inst_weight outside [0, 1]";
        weight_sum += iv.weight;
        inst_sum += iv.instWeight;
    }
    if (std::abs(weight_sum - 1.0) > 1e-9)
        return "interval weights sum to " +
               obs::json::number(weight_sum) + ", expected 1";
    if (std::abs(inst_sum - 1.0) > 1e-9)
        return "interval inst_weights sum to " +
               obs::json::number(inst_sum) + ", expected 1";
    return std::string();
}

std::string
SamplingPlan::toJson() const
{
    using obs::json::number;
    using obs::json::quote;
    std::string out = "{\n";
    out += "  \"schema\": " + quote(kPlanSchema) + ",\n";
    out += "  \"workload\": " + quote(workload) + ",\n";
    out += "  \"seed\": " + formatUnsigned(seed) + ",\n";
    out += "  \"sample_period_us\": " + number(samplePeriodUs) + ",\n";
    out += "  \"core_freq_ghz\": " + number(coreFreqGhz) + ",\n";
    out += "  \"total_windows\": " + formatUnsigned(totalWindows) + ",\n";
    out += "  \"warmup_windows\": " + formatUnsigned(warmupWindows) +
           ",\n";
    out += "  \"coverage\": " + number(coverage()) + ",\n";
    out += "  \"intervals\": [";
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const PlanInterval& iv = intervals[i];
        if (i)
            out += ",";
        out += "\n    {\"window\": " + formatUnsigned(iv.window) +
               ", \"phase\": " + formatUnsigned(iv.phase) +
               ", \"windows\": " + formatUnsigned(iv.windows) +
               ", \"weight\": " + number(iv.weight) +
               ", \"inst_weight\": " + number(iv.instWeight) + "}";
    }
    out += intervals.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void
SamplingPlan::writeFile(const std::string& path) const
{
    writeFileAtomic(path, toJson());
}

bool
SamplingPlan::parse(const std::string& text, SamplingPlan& out,
                    std::string* error)
{
    auto fail = [&](const std::string& what) {
        if (error != nullptr)
            *error = what;
        return false;
    };

    obs::json::Value root;
    std::string perr;
    if (!obs::json::parse(text, root, &perr))
        return fail("plan JSON: " + perr);
    if (!root.isObject())
        return fail("plan JSON: top level is not an object");

    const obs::json::Value* schema = root.find("schema");
    if (schema == nullptr || !schema->isString())
        return fail("plan JSON: missing schema");
    if (schema->str != kPlanSchema) {
        return fail("plan schema '" + schema->str + "', expected '" +
                    kPlanSchema + "'");
    }

    SamplingPlan plan;
    const obs::json::Value* workload = root.find("workload");
    if (workload == nullptr || !workload->isString())
        return fail("plan JSON: missing workload");
    plan.workload = workload->str;

    double num = 0.0;
    if (!getNumber(root, "seed", num))
        return fail("plan JSON: missing seed");
    plan.seed = static_cast<std::uint64_t>(num);
    if (!getNumber(root, "sample_period_us", num))
        return fail("plan JSON: missing sample_period_us");
    plan.samplePeriodUs = num;
    if (!getNumber(root, "core_freq_ghz", num))
        return fail("plan JSON: missing core_freq_ghz");
    plan.coreFreqGhz = num;
    if (!getNumber(root, "total_windows", num))
        return fail("plan JSON: missing total_windows");
    plan.totalWindows = static_cast<std::uint64_t>(num);
    if (!getNumber(root, "warmup_windows", num))
        return fail("plan JSON: missing warmup_windows");
    plan.warmupWindows = static_cast<std::uint64_t>(num);

    const obs::json::Value* intervals = root.find("intervals");
    if (intervals == nullptr || !intervals->isArray())
        return fail("plan JSON: missing intervals array");
    for (const obs::json::Value& elem : intervals->arr) {
        if (!elem.isObject())
            return fail("plan JSON: interval is not an object");
        PlanInterval iv;
        if (!getNumber(elem, "window", num))
            return fail("plan JSON: interval missing window");
        iv.window = static_cast<std::uint64_t>(num);
        if (!getNumber(elem, "phase", num))
            return fail("plan JSON: interval missing phase");
        iv.phase = static_cast<std::uint64_t>(num);
        if (!getNumber(elem, "windows", num))
            return fail("plan JSON: interval missing windows");
        iv.windows = static_cast<std::uint64_t>(num);
        if (!getNumber(elem, "weight", num))
            return fail("plan JSON: interval missing weight");
        iv.weight = num;
        // Hand-written plans may omit inst_weight; window-count
        // weights are the honest fallback.
        iv.instWeight =
            getNumber(elem, "inst_weight", num) ? num : iv.weight;
        plan.intervals.push_back(iv);
    }

    const std::string defect = plan.validate();
    if (!defect.empty())
        return fail("plan invalid: " + defect);
    out = std::move(plan);
    return true;
}

bool
SamplingPlan::load(const std::string& path, SamplingPlan& out,
                   std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!SamplingPlan::parse(text.str(), out, error)) {
        if (error != nullptr)
            *error = path + ": " + *error;
        return false;
    }
    return true;
}

SamplingPlan
clusterPhases(const std::vector<Sample>& samples,
              const std::string& workload,
              const PhaseClusterParams& params)
{
    SamplingPlan plan;
    plan.workload = workload;
    plan.seed = params.seed;
    plan.totalWindows = samples.size();
    plan.warmupWindows = params.warmupWindows;
    if (samples.empty())
        return plan;

    const std::vector<Features> f = extractFeatures(samples);
    const std::size_t k_cap =
        std::max<unsigned>(params.maxPhases, 1);
    const std::size_t k =
        std::min(countDistinct(f, k_cap), f.size());

    Rng rng(params.seed);
    std::vector<Features> centroids = initCentroids(f, k, rng);
    std::vector<std::size_t> assign(f.size(), 0);
    for (unsigned it = 0; it < params.iterations; ++it) {
        // Assignment: nearest centroid, ties to the lowest cluster id.
        bool moved = false;
        for (std::size_t i = 0; i < f.size(); ++i) {
            std::size_t best = 0;
            double best_d2 = dist2(f[i], centroids[0]);
            for (std::size_t c = 1; c < k; ++c) {
                const double d2 = dist2(f[i], centroids[c]);
                if (d2 < best_d2) {
                    best_d2 = d2;
                    best = c;
                }
            }
            if (assign[i] != best) {
                assign[i] = best;
                moved = true;
            }
        }
        // Update: mean of assigned windows; an emptied cluster keeps
        // its centroid (it can re-acquire members later).
        std::vector<Features> sums(k, Features{{0, 0, 0, 0}});
        std::vector<std::uint64_t> counts(k, 0);
        for (std::size_t i = 0; i < f.size(); ++i) {
            for (std::size_t d = 0; d < kDims; ++d)
                sums[assign[i]].v[d] += f[i].v[d];
            ++counts[assign[i]];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            for (std::size_t d = 0; d < kDims; ++d)
                centroids[c].v[d] =
                    sums[c].v[d] / static_cast<double>(counts[c]);
        }
        if (!moved)
            break;
    }

    // Phase membership, in ascending window order (i ascends).
    std::vector<std::vector<std::size_t>> members(k);
    for (std::size_t i = 0; i < f.size(); ++i)
        members[assign[i]].push_back(i);

    // Error-bound-driven representative allocation. One representative
    // per phase suffices only when the phase is homogeneous; a large
    // phase with spread (a miss burst clustered among quiet windows)
    // makes the single window's counts stand for a mean they do not
    // match. Treat each phase as a stratum: predict the stratified-
    // sampling variance of every count the estimator integrates
    // (insts, accesses, misses) from the profile series itself, then
    // grant extra representatives to whichever phase most reduces the
    // worst predicted relative error, until that error meets
    // params.errorTarget or the interval budget runs out. Homogeneous
    // phases never pay for extras.
    constexpr std::size_t kMetrics = 3;
    auto metric = [&samples](std::size_t i, std::size_t m) {
        const Sample& s = samples[i];
        return static_cast<double>(m == 0   ? s.insts
                                   : m == 1 ? s.accesses
                                            : s.misses);
    };
    std::vector<std::array<double, kMetrics>> var(
        k, std::array<double, kMetrics>{});
    std::array<double, kMetrics> totals{};
    for (std::size_t c = 0; c < k; ++c) {
        const double n = static_cast<double>(members[c].size());
        if (n == 0.0)
            continue;
        for (std::size_t m = 0; m < kMetrics; ++m) {
            double sum = 0.0;
            for (std::size_t i : members[c])
                sum += metric(i, m);
            const double mean = sum / n;
            double ss = 0.0;
            for (std::size_t i : members[c]) {
                const double d = metric(i, m) - mean;
                ss += d * d;
            }
            var[c][m] = ss / n;
            totals[m] += sum;
        }
    }

    std::vector<std::size_t> nreps(k);
    std::size_t total_reps = 0;
    for (std::size_t c = 0; c < k; ++c) {
        nreps[c] = members[c].empty() ? 0 : 1;
        total_reps += nreps[c];
    }
    // Variance of a stratum's estimated total shrinks as 1/n and hits
    // zero when every member is simulated (the 1/count term).
    auto predictedRelErr = [&](std::size_t m) {
        double v = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            const double cnt = static_cast<double>(members[c].size());
            if (cnt == 0.0)
                continue;
            v += cnt * cnt * var[c][m] *
                 (1.0 / static_cast<double>(nreps[c]) - 1.0 / cnt);
        }
        return totals[m] > 0.0 ? std::sqrt(v) / totals[m] : 0.0;
    };
    // The error target is the intended stop; the budget only exists so
    // a caller can hard-cap coverage (0 = the series itself bounds it).
    const std::size_t budget = std::min<std::size_t>(
        params.maxIntervals != 0 ? params.maxIntervals : f.size(),
        f.size());
    while (total_reps < budget) {
        std::size_t worst_m = 0;
        double worst = 0.0;
        for (std::size_t m = 0; m < kMetrics; ++m) {
            const double e = predictedRelErr(m);
            if (e > worst) {
                worst = e;
                worst_m = m;
            }
        }
        if (worst <= params.errorTarget)
            break;
        std::size_t best_c = k;
        double best_gain = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            const double cnt = static_cast<double>(members[c].size());
            if (nreps[c] == 0 || nreps[c] >= members[c].size())
                continue;
            const double n = static_cast<double>(nreps[c]);
            const double gain =
                cnt * cnt * var[c][worst_m] * (1.0 / n - 1.0 / (n + 1.0));
            if (gain > best_gain) {
                best_gain = gain;
                best_c = c;
            }
        }
        if (best_c == k)
            break; // every heterogeneous phase is fully simulated
        ++nreps[best_c];
        ++total_reps;
    }

    // Carve each phase's members into nreps contiguous strata and pick
    // each stratum's representative: the member closest to the
    // stratum's feature mean (ties to the lowest window index, so
    // selection is deterministic even among identical windows).
    double total_insts = 0.0;
    for (const Sample& s : samples)
        total_insts += static_cast<double>(s.insts);
    for (std::size_t c = 0; c < k; ++c) {
        const std::vector<std::size_t>& mem = members[c];
        for (std::size_t r = 0; r < nreps[c]; ++r) {
            const std::size_t lo = mem.size() * r / nreps[c];
            const std::size_t hi = mem.size() * (r + 1) / nreps[c];
            Features fm{};
            double stratum_insts = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
                for (std::size_t d = 0; d < kDims; ++d)
                    fm.v[d] += f[mem[i]].v[d];
                stratum_insts +=
                    static_cast<double>(samples[mem[i]].insts);
            }
            for (std::size_t d = 0; d < kDims; ++d)
                fm.v[d] /= static_cast<double>(hi - lo);
            std::size_t best = lo;
            double best_d2 = dist2(f[mem[lo]], fm);
            for (std::size_t i = lo + 1; i < hi; ++i) {
                const double d2 = dist2(f[mem[i]], fm);
                if (d2 < best_d2) {
                    best_d2 = d2;
                    best = i;
                }
            }
            PlanInterval iv;
            iv.window = mem[best];
            iv.windows = hi - lo;
            iv.weight = static_cast<double>(hi - lo) /
                        static_cast<double>(f.size());
            // An all-idle series (no retired instructions) falls back
            // to window-count weights so the plan stays well-formed.
            iv.instWeight = total_insts > 0.0
                ? stratum_insts / total_insts
                : iv.weight;
            plan.intervals.push_back(iv);
        }
    }

    // Emit in window order with dense phase ids (an interval's "phase"
    // is its stratum; heterogeneous k-means phases span several).
    std::sort(plan.intervals.begin(), plan.intervals.end(),
              [](const PlanInterval& a, const PlanInterval& b) {
                  return a.window < b.window;
              });
    for (std::size_t p = 0; p < plan.intervals.size(); ++p)
        plan.intervals[p].phase = p;
    return plan;
}

std::string
planPath(const std::string& base, const std::string& workload)
{
    const std::string ext = ".plan.json";
    std::string stem = base;
    if (stem.size() >= ext.size() &&
        stem.compare(stem.size() - ext.size(), ext.size(), ext) == 0) {
        stem.resize(stem.size() - ext.size());
    }
    return stem + "." + workload + ext;
}

} // namespace cosim
