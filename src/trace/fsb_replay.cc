#include "trace/fsb_replay.hh"

#include <chrono>

#include "mem/fsb.hh"
#include "obs/host_profiler.hh"

namespace cosim {

ReplayResult
ReplayDriver::replayFile(const std::string& path, FrontSideBus& bus)
{
    FsbStreamReader reader;
    ReplayResult result;
    if (!reader.openFile(path, &result.error))
        return result;
    return replay(reader, bus);
}

ReplayResult
ReplayDriver::replayBuffer(
    std::shared_ptr<const std::vector<std::uint8_t>> stream,
    FrontSideBus& bus)
{
    FsbStreamReader reader;
    ReplayResult result;
    if (!reader.openBuffer(std::move(stream), &result.error))
        return result;
    return replay(reader, bus);
}

ReplayResult
ReplayDriver::replay(FsbStreamReader& reader, FrontSideBus& bus)
{
    ReplayResult result;
    auto t0 = std::chrono::steady_clock::now();

    std::vector<BusTransaction> chunk;
    while (reader.nextChunk(chunk)) {
        for (const BusTransaction& txn : chunk)
            bus.issue(txn);
        ++result.chunks;
    }
    // A batched bus may hold a partial chunk, exactly as at the end of a
    // live run; snoopers must see the complete stream.
    bus.flush();

    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    result.meta = reader.meta();
    result.txns = reader.txnsDecoded();
    result.streamBytes = reader.streamBytes();
    result.digest = reader.contentDigest();
    result.ok = reader.ok();
    if (!result.ok)
        result.error = reader.error();

    obs::HostProfiler::global().accumulate("replay", result.seconds);
    return result;
}

} // namespace cosim
