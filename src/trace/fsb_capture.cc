#include "trace/fsb_capture.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/atomic_file.hh"
#include "base/logging.hh"
#include "base/str.hh"

namespace cosim {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'S', 'B', 'C'};
constexpr std::uint8_t kChunkMarker = 'C';
constexpr std::uint8_t kTrailerMarker = 'E';
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** Fixed header bytes before the two length-prefixed strings. */
constexpr std::size_t kFixedHeaderBytes = 48;
constexpr std::size_t kTotalInstsOffset = 32;
constexpr std::size_t kVerifiedOffset = 40;

/** Sanity cap: no workload/platform name is this long. */
constexpr std::uint64_t kMaxHeaderString = 4096;

/** Lead-byte layout. @{ */
constexpr std::uint8_t kKindMask = 0x03;
constexpr std::uint8_t kSameSizeBit = 0x04;
constexpr std::uint8_t kSameCoreBit = 0x08;
constexpr std::uint8_t kLeadReservedMask = 0xf0;
/** @} */

void
putU32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
putU64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
patchU64(std::vector<std::uint8_t>& buf, std::size_t off, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putVarint(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Interpret a double's bits for endian-stable serialization. */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
}

} // namespace

void
FsbDigest::update(const BusTransaction& txn)
{
    // Canonical tuple: addr (8B LE), size (4B LE), kind (1B), core
    // (2B LE), hashed byte-at-a-time so the value is host-independent.
    std::uint8_t bytes[15];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(txn.addr >> (8 * i));
    for (int i = 0; i < 4; ++i)
        bytes[8 + i] = static_cast<std::uint8_t>(txn.size >> (8 * i));
    bytes[12] = static_cast<std::uint8_t>(txn.kind);
    bytes[13] = static_cast<std::uint8_t>(txn.core);
    bytes[14] = static_cast<std::uint8_t>(txn.core >> 8);
    for (std::uint8_t b : bytes) {
        hash_ ^= b;
        hash_ *= kFnvPrime;
    }
    ++txns_;
}

void
FsbDigest::reset()
{
    hash_ = 0xcbf29ce484222325ull;
    txns_ = 0;
}

std::string
formatFsbDigest(std::uint64_t digest)
{
    return strFormat("%016llx", static_cast<unsigned long long>(digest));
}

FsbStreamWriter::FsbStreamWriter(const FsbStreamMeta& meta,
                                 std::size_t chunkTxns)
    : meta_(meta), chunkTxns_(chunkTxns == 0 ? 4096 : chunkTxns)
{
    buffer_.reserve(kFixedHeaderBytes + meta_.workload.size() +
                    meta_.platform.size() + 16);
    for (std::uint8_t b : kMagic)
        buffer_.push_back(b);
    putU32(buffer_, kFsbStreamVersion);
    putU32(buffer_, 0); // flags
    putU32(buffer_, meta_.nCores);
    putU64(buffer_, meta_.seed);
    putU64(buffer_, doubleBits(meta_.scale));
    putU64(buffer_, meta_.totalInsts);
    putU32(buffer_, meta_.verified ? 1 : 0);
    putU32(buffer_, 0); // reserved
    panic_if(buffer_.size() != kFixedHeaderBytes,
             "fixed stream header is %zu bytes, expected %zu",
             buffer_.size(), kFixedHeaderBytes);
    putVarint(buffer_, meta_.workload.size());
    buffer_.insert(buffer_.end(), meta_.workload.begin(),
                   meta_.workload.end());
    putVarint(buffer_, meta_.platform.size());
    buffer_.insert(buffer_.end(), meta_.platform.begin(),
                   meta_.platform.end());
}

void
FsbStreamWriter::append(const BusTransaction& txn)
{
    panic_if(finished_, "appending to a finished FSB stream");

    std::uint8_t lead = static_cast<std::uint8_t>(txn.kind) & kKindMask;
    const bool same_size = txn.size == prevSize_;
    const bool same_core = txn.core == prevCore_;
    if (same_size)
        lead |= kSameSizeBit;
    if (same_core)
        lead |= kSameCoreBit;
    chunk_.push_back(lead);
    if (!same_core)
        putVarint(chunk_, txn.core);
    if (!same_size)
        putVarint(chunk_, txn.size);
    putVarint(chunk_, zigzag(static_cast<std::int64_t>(txn.addr) -
                             static_cast<std::int64_t>(prevAddr_)));

    prevAddr_ = txn.addr;
    prevSize_ = txn.size;
    prevCore_ = txn.core;
    digest_.update(txn);
    if (++chunkCount_ >= chunkTxns_)
        flushChunk();
}

void
FsbStreamWriter::appendBatch(const BusTransaction* txns, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        append(txns[i]);
}

void
FsbStreamWriter::setResult(std::uint64_t total_insts, bool verified)
{
    panic_if(finished_, "setResult() on a finished FSB stream");
    meta_.totalInsts = total_insts;
    meta_.verified = verified;
    patchU64(buffer_, kTotalInstsOffset, total_insts);
    buffer_[kVerifiedOffset] = verified ? 1 : 0;
}

void
FsbStreamWriter::flushChunk()
{
    if (chunkCount_ == 0)
        return;
    buffer_.push_back(kChunkMarker);
    putVarint(buffer_, chunkCount_);
    putVarint(buffer_, chunk_.size());
    buffer_.insert(buffer_.end(), chunk_.begin(), chunk_.end());
    chunk_.clear();
    chunkCount_ = 0;
}

void
FsbStreamWriter::finish()
{
    if (finished_)
        return;
    flushChunk();
    buffer_.push_back(kTrailerMarker);
    putU64(buffer_, digest_.txnCount());
    putU64(buffer_, digest_.value());
    finished_ = true;
}

void
FsbStreamWriter::writeFile(const std::string& path)
{
    finish();
    AtomicFile file(path, /*binary=*/true);
    file.stream().write(
        reinterpret_cast<const char*>(buffer_.data()),
        static_cast<std::streamsize>(buffer_.size()));
    file.commit();
}

std::shared_ptr<const std::vector<std::uint8_t>>
FsbStreamWriter::share()
{
    finish();
    return std::make_shared<const std::vector<std::uint8_t>>(
        std::move(buffer_));
}

bool
FsbStreamReader::fail(const std::string& what)
{
    // Every decode error is positioned: the byte offset pins the
    // corruption for fuzz tests and for anyone hexdumping the stream.
    if (error_.empty()) {
        error_ = what + " (byte offset " + std::to_string(pos_) + " of " +
                 std::to_string(data_ ? data_->size() : 0) + ")";
    }
    return false;
}

bool
FsbStreamReader::openFile(const std::string& path, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        fail("cannot open FSB stream file '" + path + "'");
        if (error)
            *error = error_;
        return false;
    }
    auto buf = std::make_shared<std::vector<std::uint8_t>>(
        std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
        fail("error reading FSB stream file '" + path + "'");
        if (error)
            *error = error_;
        return false;
    }
    return openBuffer(std::move(buf), error);
}

bool
FsbStreamReader::openBuffer(
    std::shared_ptr<const std::vector<std::uint8_t>> buf,
    std::string* error)
{
    data_ = std::move(buf);
    pos_ = 0;
    digest_.reset();
    prevAddr_ = 0;
    prevSize_ = 0;
    prevCore_ = 0;
    atEnd_ = false;
    error_.clear();
    const bool ok = parseHeader();
    if (!ok && error)
        *error = error_;
    return ok;
}

namespace {

/** Bounds-checked varint read; false on truncation or overlong value. */
bool
readVarint(const std::vector<std::uint8_t>& data, std::size_t& pos,
           std::uint64_t& out)
{
    out = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos >= data.size())
            return false;
        const std::uint8_t byte = data[pos++];
        out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            // Reject non-canonical bits that would be shifted out.
            if (shift == 63 && (byte & 0x7e) != 0)
                return false;
            return true;
        }
    }
    return false;
}

bool
readU32(const std::vector<std::uint8_t>& data, std::size_t& pos,
        std::uint32_t& out)
{
    if (pos + 4 > data.size())
        return false;
    out = 0;
    for (int i = 0; i < 4; ++i)
        out |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return true;
}

bool
readU64(const std::vector<std::uint8_t>& data, std::size_t& pos,
        std::uint64_t& out)
{
    if (pos + 8 > data.size())
        return false;
    out = 0;
    for (int i = 0; i < 8; ++i)
        out |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return true;
}

bool
readString(const std::vector<std::uint8_t>& data, std::size_t& pos,
           std::string& out)
{
    std::uint64_t len = 0;
    if (!readVarint(data, pos, len) || len > kMaxHeaderString ||
        pos + len > data.size()) {
        return false;
    }
    out.assign(reinterpret_cast<const char*>(data.data()) + pos,
               static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
}

} // namespace

bool
FsbStreamReader::parseHeader()
{
    const std::vector<std::uint8_t>& d = *data_;
    if (d.size() < kFixedHeaderBytes)
        return fail("truncated FSB stream: no header");
    for (int i = 0; i < 4; ++i) {
        if (d[static_cast<std::size_t>(i)] != kMagic[i]) {
            return fail("bad magic: not an FSB stream file "
                        "(expected \"FSBC\")");
        }
    }
    pos_ = 4;
    std::uint32_t version = 0, flags = 0, verified = 0, reserved = 0;
    std::uint64_t scale_bits = 0;
    readU32(d, pos_, version);
    if (version != kFsbStreamVersion) {
        return fail(strFormat("unsupported FSB stream version %u "
                              "(this build reads version %u)",
                              version, kFsbStreamVersion));
    }
    readU32(d, pos_, flags);
    readU32(d, pos_, meta_.nCores);
    readU64(d, pos_, meta_.seed);
    readU64(d, pos_, scale_bits);
    meta_.scale = bitsDouble(scale_bits);
    readU64(d, pos_, meta_.totalInsts);
    readU32(d, pos_, verified);
    readU32(d, pos_, reserved);
    meta_.verified = verified != 0;
    if (!readString(d, pos_, meta_.workload) ||
        !readString(d, pos_, meta_.platform)) {
        return fail("truncated FSB stream: bad header strings");
    }
    return true;
}

bool
FsbStreamReader::nextChunk(std::vector<BusTransaction>& out)
{
    out.clear();
    if (!ok() || atEnd_)
        return false;
    const std::vector<std::uint8_t>& d = *data_;

    if (pos_ >= d.size())
        return fail("truncated FSB stream: missing trailer");

    const std::uint8_t marker = d[pos_++];
    if (marker == kTrailerMarker) {
        std::uint64_t count = 0, digest = 0;
        if (!readU64(d, pos_, count) || !readU64(d, pos_, digest))
            return fail("truncated FSB stream: short trailer");
        if (count != digest_.txnCount()) {
            return fail(strFormat(
                "FSB stream transaction count mismatch: trailer says "
                "%llu, decoded %llu",
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(digest_.txnCount())));
        }
        if (digest != digest_.value()) {
            return fail("FSB stream digest mismatch: trailer says " +
                        formatFsbDigest(digest) + ", content is " +
                        formatFsbDigest(digest_.value()) +
                        " (corrupt or tampered stream)");
        }
        if (pos_ != d.size())
            return fail("trailing garbage after FSB stream trailer");
        atEnd_ = true;
        return false;
    }
    if (marker != kChunkMarker) {
        return fail(strFormat("corrupt FSB stream: unknown section "
                              "marker 0x%02x", marker));
    }

    std::uint64_t n_txns = 0, payload_bytes = 0;
    if (!readVarint(d, pos_, n_txns) ||
        !readVarint(d, pos_, payload_bytes)) {
        return fail("truncated FSB stream: bad chunk frame");
    }
    if (payload_bytes > d.size() - pos_)
        return fail("truncated FSB stream: chunk payload cut short");
    const std::size_t chunk_end =
        pos_ + static_cast<std::size_t>(payload_bytes);

    out.reserve(static_cast<std::size_t>(n_txns));
    for (std::uint64_t i = 0; i < n_txns; ++i) {
        if (pos_ >= chunk_end)
            return fail("corrupt FSB stream: chunk payload underruns "
                        "its transaction count");
        const std::uint8_t lead = d[pos_++];
        if ((lead & kLeadReservedMask) != 0) {
            return fail(strFormat("corrupt FSB stream: reserved lead-"
                                  "byte bits set (0x%02x)", lead));
        }
        BusTransaction txn;
        txn.kind = static_cast<TxnKind>(lead & kKindMask);
        if ((lead & kSameCoreBit) != 0) {
            txn.core = prevCore_;
        } else {
            std::uint64_t core = 0;
            if (!readVarint(d, pos_, core) || pos_ > chunk_end ||
                core > 0xffff) {
                return fail("corrupt FSB stream: bad core id");
            }
            txn.core = static_cast<CoreId>(core);
        }
        if ((lead & kSameSizeBit) != 0) {
            txn.size = prevSize_;
        } else {
            std::uint64_t size = 0;
            if (!readVarint(d, pos_, size) || pos_ > chunk_end ||
                size > 0xffffffffull) {
                return fail("corrupt FSB stream: bad transaction size");
            }
            txn.size = static_cast<std::uint32_t>(size);
        }
        std::uint64_t delta = 0;
        if (!readVarint(d, pos_, delta) || pos_ > chunk_end)
            return fail("corrupt FSB stream: bad address delta");
        txn.addr = static_cast<Addr>(static_cast<std::int64_t>(prevAddr_) +
                                     unzigzag(delta));

        prevAddr_ = txn.addr;
        prevSize_ = txn.size;
        prevCore_ = txn.core;
        digest_.update(txn);
        out.push_back(txn);
    }
    if (pos_ != chunk_end) {
        return fail("corrupt FSB stream: chunk payload overruns its "
                    "transaction count");
    }
    return true;
}

bool
probeFsbStream(const std::string& path, FsbStreamInfo& info,
               std::string* error)
{
    FsbStreamReader reader;
    if (!reader.openFile(path, error))
        return false;
    std::vector<BusTransaction> chunk;
    while (reader.nextChunk(chunk)) {
    }
    if (!reader.ok()) {
        if (error)
            *error = reader.error();
        return false;
    }
    info.meta = reader.meta();
    info.txns = reader.txnsDecoded();
    info.digest = reader.contentDigest();
    info.fileBytes = reader.streamBytes();
    return true;
}

bool
loadFsbStream(const std::string& path, std::vector<BusTransaction>& txns,
              FsbStreamMeta& meta, std::string* error)
{
    FsbStreamReader reader;
    if (!reader.openFile(path, error))
        return false;
    txns.clear();
    std::vector<BusTransaction> chunk;
    while (reader.nextChunk(chunk))
        txns.insert(txns.end(), chunk.begin(), chunk.end());
    if (!reader.ok()) {
        if (error)
            *error = reader.error();
        return false;
    }
    meta = reader.meta();
    return true;
}

void
FsbCaptureSnooper::observe(const BusTransaction& txn)
{
    writer_.append(txn);
}

void
FsbCaptureSnooper::observeBatch(const BusTransaction* txns, std::size_t n)
{
    // Timing per chunk keeps the overhead gauge honest without paying a
    // clock read per transaction on the immediate-delivery path.
    auto t0 = std::chrono::steady_clock::now();
    writer_.appendBatch(txns, n);
    encodeSeconds_ += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
}

void
DigestManifest::add(const std::string& workload, std::uint64_t txns,
                    std::uint64_t digest)
{
    entries.push_back({workload, txns, digest});
}

const DigestManifest::Entry*
DigestManifest::find(const std::string& workload) const
{
    for (const Entry& e : entries) {
        if (e.workload == workload)
            return &e;
    }
    return nullptr;
}

/** Schema header line of the digest-manifest text format. */
constexpr const char* kDigestManifestSchema = "# cosim-fsb-digest/1";

std::string
DigestManifest::toText() const
{
    std::string out = std::string(kDigestManifestSchema) + "\n";
    for (const Entry& e : entries) {
        out += strFormat("%s %llu %s\n", e.workload.c_str(),
                         static_cast<unsigned long long>(e.txns),
                         formatFsbDigest(e.digest).c_str());
    }
    return out;
}

void
DigestManifest::writeFile(const std::string& path) const
{
    try {
        writeFileAtomic(path, toText());
    } catch (const IoError& e) {
        fatal("digest manifest: %s", e.what());
    }
}

bool
DigestManifest::load(const std::string& path, DigestManifest& out,
                     std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open digest manifest '" + path + "'";
        return false;
    }
    out.entries.clear();
    std::string line;
    std::size_t line_no = 0;
    bool saw_schema = false;
    while (std::getline(in, line)) {
        ++line_no;
        line = trim(line);
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // The first comment line is the schema marker; reject files
            // some other tool wrote.
            if (!saw_schema && line != kDigestManifestSchema) {
                if (error) {
                    *error = strFormat(
                        "%s:%zu: not a digest manifest (expected \"%s\","
                        " got \"%s\")", path.c_str(), line_no,
                        kDigestManifestSchema, line.c_str());
                }
                return false;
            }
            saw_schema = true;
            continue;
        }
        std::istringstream fields(line);
        Entry e;
        std::string digest_hex;
        if (!(fields >> e.workload >> e.txns >> digest_hex)) {
            if (error) {
                *error = strFormat("%s:%zu: expected \"workload txns "
                                   "digest\"", path.c_str(), line_no);
            }
            return false;
        }
        char* end = nullptr;
        e.digest = std::strtoull(digest_hex.c_str(), &end, 16);
        if (end == nullptr || *end != '\0' || digest_hex.empty()) {
            if (error) {
                *error = strFormat("%s:%zu: bad digest '%s'",
                                   path.c_str(), line_no,
                                   digest_hex.c_str());
            }
            return false;
        }
        out.entries.push_back(std::move(e));
    }
    return true;
}

bool
DigestManifest::compare(const DigestManifest& golden,
                        const DigestManifest& fresh, std::string& report)
{
    bool identical = true;
    report.clear();
    for (const Entry& g : golden.entries) {
        const Entry* f = fresh.find(g.workload);
        if (f == nullptr) {
            report += strFormat("  %-10s missing from the fresh run\n",
                                g.workload.c_str());
            identical = false;
        } else if (f->digest != g.digest || f->txns != g.txns) {
            report += strFormat(
                "  %-10s golden %llu txns %s, fresh %llu txns %s\n",
                g.workload.c_str(),
                static_cast<unsigned long long>(g.txns),
                formatFsbDigest(g.digest).c_str(),
                static_cast<unsigned long long>(f->txns),
                formatFsbDigest(f->digest).c_str());
            identical = false;
        }
    }
    for (const Entry& f : fresh.entries) {
        if (golden.find(f.workload) == nullptr) {
            report += strFormat("  %-10s not in the golden manifest\n",
                                f.workload.c_str());
            identical = false;
        }
    }
    return identical;
}

} // namespace cosim
