/**
 * @file
 * Minimal JSON support for the observability layer: an escaping writer
 * used by the stats/trace/manifest exporters, and a small recursive-
 * descent parser used by `cosim-inspect` and the round-trip tests.
 *
 * Deliberately tiny (no external dependency): the only producers are our
 * own exporters, so the parser handles standard JSON and nothing more.
 */

#ifndef COSIM_OBS_JSON_HH
#define COSIM_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cosim {
namespace obs {
namespace json {

/** Quote and escape @p text as a JSON string literal (with quotes). */
std::string quote(const std::string& text);

/** Format a double the way our exporters do (shortest round-trip-safe). */
std::string number(double v);

/** A parsed JSON value (tagged union, object keys kept in file order). */
struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value* find(const std::string& key) const;

    /** Number of array elements / object members. */
    std::size_t size() const
    {
        return type == Type::Array ? arr.size() : obj.size();
    }
};

/**
 * Parse @p text into @p out.
 * @return true on success; on failure @p error (if non-null) describes
 *         what went wrong and where.
 */
bool parse(const std::string& text, Value& out,
           std::string* error = nullptr);

} // namespace json
} // namespace obs
} // namespace cosim

#endif // COSIM_OBS_JSON_HH
