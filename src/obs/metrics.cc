#include "obs/metrics.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"

namespace cosim {
namespace obs {
namespace metrics {

namespace {

std::atomic<std::uint64_t> g_next_uid{1};

/**
 * Per-thread pointer cache: maps a registry uid to the shard this
 * thread records into. Four entries cover the realistic case (the
 * global registry plus a couple of test-local ones); an evicted entry
 * just means the thread lazily creates another shard for that
 * registry, which is harmless -- snapshots sum across all shards.
 */
struct TlsCacheEntry
{
    std::uint64_t uid = 0; // 0 = empty
    void* shard = nullptr;
};

thread_local TlsCacheEntry tls_cache[4];
thread_local unsigned tls_cache_next = 0;

} // namespace

/** One thread's private slice of every metric: plain relaxed atomics,
 * written by the owning thread, summed by snapshot(). */
struct Registry::Shard
{
    std::atomic<std::uint64_t> counters[kMaxCounters];

    struct Hist
    {
        std::atomic<std::uint64_t> count;
        std::atomic<std::uint64_t> sum;
        std::atomic<std::uint64_t> buckets[kHistBuckets];
    };

    Hist hists[kMaxHistograms];

    Shard() { zero(); }

    void
    zero()
    {
        for (auto& c : counters)
            c.store(0, std::memory_order_relaxed);
        for (auto& h : hists) {
            h.count.store(0, std::memory_order_relaxed);
            h.sum.store(0, std::memory_order_relaxed);
            for (auto& b : h.buckets)
                b.store(0, std::memory_order_relaxed);
        }
    }
};

Registry&
Registry::global()
{
    static Registry instance;
    return instance;
}

Registry::Registry()
    : uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed))
{
}

Registry::~Registry() = default;

void
Registry::validateName(const std::string& name) const
{
    bool ok = !name.empty() && name[0] >= 'a' && name[0] <= 'z';
    for (char c : name) {
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_' || c == '.'))
            ok = false;
    }
    panic_if(!ok,
             "metrics: invalid metric name '%s' "
             "(want [a-z][a-z0-9_.]*)",
             name.c_str());
    for (const Meta& m : counters_)
        panic_if(m.name == name, "metrics: metric '%s' registered twice",
                 name.c_str());
    for (const Meta& m : histograms_)
        panic_if(m.name == name, "metrics: metric '%s' registered twice",
                 name.c_str());
}

Counter
Registry::counter(const std::string& name, const std::string& help)
{
    LockGuard lock(mutex_);
    validateName(name);
    panic_if(counters_.size() >= kMaxCounters,
             "metrics: counter capacity (%zu) exhausted",
             kMaxCounters);
    counters_.push_back(Meta{name, help});
    return Counter(this,
                   static_cast<std::uint32_t>(counters_.size() - 1));
}

Histogram
Registry::histogram(const std::string& name, const std::string& help)
{
    LockGuard lock(mutex_);
    validateName(name);
    panic_if(histograms_.size() >= kMaxHistograms,
             "metrics: histogram capacity (%zu) exhausted",
             kMaxHistograms);
    histograms_.push_back(Meta{name, help});
    return Histogram(this,
                     static_cast<std::uint32_t>(histograms_.size() - 1));
}

Registry::Shard&
Registry::localShard()
{
    for (const TlsCacheEntry& e : tls_cache) {
        if (e.uid == uid_)
            return *static_cast<Shard*>(e.shard);
    }
    return localShardSlow();
}

Registry::Shard&
Registry::localShardSlow()
{
    auto shard = std::make_unique<Shard>();
    Shard* raw = shard.get();
    {
        LockGuard lock(mutex_);
        shards_.push_back(std::move(shard));
    }
    TlsCacheEntry& slot = tls_cache[tls_cache_next % 4];
    ++tls_cache_next;
    slot.uid = uid_;
    slot.shard = raw;
    return *raw;
}

void
Counter::add(std::uint64_t n) const
{
    if (reg_ == nullptr || !reg_->enabled())
        return;
    reg_->localShard().counters[id_].fetch_add(
        n, std::memory_order_relaxed);
}

void
Histogram::record(std::uint64_t value) const
{
    if (reg_ == nullptr || !reg_->enabled())
        return;
    Registry::Shard::Hist& h = reg_->localShard().hists[id_];
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);
    h.buckets[bucketIndex(value)].fetch_add(1,
                                            std::memory_order_relaxed);
}

Snapshot
Registry::snapshot() const
{
    LockGuard lock(mutex_);
    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const Meta& m : counters_)
        snap.counters.push_back(Snapshot::CounterValue{m.name, m.help, 0});
    snap.histograms.reserve(histograms_.size());
    for (const Meta& m : histograms_) {
        Snapshot::HistogramValue h;
        h.name = m.name;
        h.help = m.help;
        snap.histograms.push_back(std::move(h));
    }
    for (const auto& shard : shards_) {
        for (std::size_t i = 0; i < snap.counters.size(); ++i) {
            snap.counters[i].value +=
                shard->counters[i].load(std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
            const Shard::Hist& sh = shard->hists[i];
            Snapshot::HistogramValue& h = snap.histograms[i];
            h.count += sh.count.load(std::memory_order_relaxed);
            h.sum += sh.sum.load(std::memory_order_relaxed);
            for (std::size_t b = 0; b < kHistBuckets; ++b) {
                h.buckets[b] +=
                    sh.buckets[b].load(std::memory_order_relaxed);
            }
        }
    }
    return snap;
}

void
Registry::resetValues()
{
    LockGuard lock(mutex_);
    for (const auto& shard : shards_)
        shard->zero();
}

std::size_t
Registry::size() const
{
    LockGuard lock(mutex_);
    return counters_.size() + histograms_.size();
}

stats::Group
Registry::statsGroup(const std::string& name) const
{
    Snapshot snap = snapshot();
    stats::Group group(name);
    for (const Snapshot::CounterValue& c : snap.counters) {
        double v = static_cast<double>(c.value);
        group.add(c.name, [v] { return v; });
    }
    for (const Snapshot::HistogramValue& h : snap.histograms) {
        double count = static_cast<double>(h.count);
        double sum = static_cast<double>(h.sum);
        group.add(h.name + ".count", [count] { return count; });
        group.add(h.name + ".sum", [sum] { return sum; });
        group.add(h.name + ".mean",
                  [count, sum] { return stats::safeRatio(sum, count); });
    }
    return group;
}

Snapshot
Snapshot::delta(const Snapshot& now, const Snapshot& prev)
{
    std::map<std::string, const CounterValue*> prev_counters;
    for (const CounterValue& c : prev.counters)
        prev_counters[c.name] = &c;
    std::map<std::string, const HistogramValue*> prev_hists;
    for (const HistogramValue& h : prev.histograms)
        prev_hists[h.name] = &h;

    Snapshot out = now;
    for (CounterValue& c : out.counters) {
        auto it = prev_counters.find(c.name);
        if (it != prev_counters.end())
            c.value -= std::min(c.value, it->second->value);
    }
    for (HistogramValue& h : out.histograms) {
        auto it = prev_hists.find(h.name);
        if (it == prev_hists.end())
            continue;
        const HistogramValue& p = *it->second;
        h.count -= std::min(h.count, p.count);
        h.sum -= std::min(h.sum, p.sum);
        for (std::size_t b = 0; b < kHistBuckets; ++b)
            h.buckets[b] -= std::min(h.buckets[b], p.buckets[b]);
    }
    return out;
}

Counter
counter(const std::string& name, const std::string& help)
{
    return Registry::global().counter(name, help);
}

Histogram
histogram(const std::string& name, const std::string& help)
{
    return Registry::global().histogram(name, help);
}

namespace {

std::string
expositionName(const std::string& name)
{
    std::string out = "cosim_";
    for (char c : name)
        out += c == '.' ? '_' : c;
    return out;
}

} // namespace

std::string
renderOpenMetrics(const Snapshot& snap)
{
    std::string out;
    for (const Snapshot::CounterValue& c : snap.counters) {
        const std::string n = expositionName(c.name);
        out += "# TYPE " + n + " counter\n";
        if (!c.help.empty())
            out += "# HELP " + n + " " + c.help + "\n";
        out += n + "_total " + std::to_string(c.value) + "\n";
    }
    for (const Snapshot::HistogramValue& h : snap.histograms) {
        const std::string n = expositionName(h.name);
        out += "# TYPE " + n + " histogram\n";
        if (!h.help.empty())
            out += "# HELP " + n + " " + h.help + "\n";
        // Cumulative buckets up to the highest occupied one; the +Inf
        // bucket carries the total, as the format requires.
        std::size_t top = 0;
        for (std::size_t b = 0; b < kHistBuckets; ++b) {
            if (h.buckets[b] != 0)
                top = b;
        }
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= top && b + 1 < kHistBuckets; ++b) {
            cumulative += h.buckets[b];
            out += n + "_bucket{le=\"" +
                   std::to_string(
                       bucketUpperBound(static_cast<unsigned>(b))) +
                   "\"} " + std::to_string(cumulative) + "\n";
        }
        out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) +
               "\n";
        out += n + "_count " + std::to_string(h.count) + "\n";
        out += n + "_sum " + std::to_string(h.sum) + "\n";
    }
    out += "# EOF\n";
    return out;
}

} // namespace metrics
} // namespace obs
} // namespace cosim
