#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cosim {
namespace obs {
namespace json {

std::string
quote(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
number(double v)
{
    // JSON has no NaN/Inf; our exporters clamp them to null-ish zero.
    if (!std::isfinite(v))
        return "0";
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const Value*
Value::find(const std::string& key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto& [k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

/** Recursive-descent parser over a borrowed string. */
class Parser
{
  public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error) {}

    bool parseDocument(Value& out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool fail(const std::string& what)
    {
        if (error_) {
            *error_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool literal(const char* word, Value& out, Value::Type type, bool b)
    {
        std::size_t n = 0;
        while (word[n])
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return fail("bad literal");
        pos_ += n;
        out.type = type;
        out.boolean = b;
        return true;
    }

    bool parseString(std::string& out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Encode as UTF-8 (surrogate pairs not needed by our
                // exporters; lone surrogates pass through as-is).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(Value& out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
            digits = true;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (!digits)
            return fail("bad number");
        out.type = Value::Type::Number;
        out.num = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
        return true;
    }

    bool parseValue(Value& out)
    {
        if (++depth_ > maxDepth_)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        bool ok;
        switch (text_[pos_]) {
          case '{': ok = parseObject(out); break;
          case '[': ok = parseArray(out); break;
          case '"':
            out.type = Value::Type::String;
            ok = parseString(out.str);
            break;
          case 't': ok = literal("true", out, Value::Type::Bool, true); break;
          case 'f':
            ok = literal("false", out, Value::Type::Bool, false);
            break;
          case 'n': ok = literal("null", out, Value::Type::Null, false); break;
          default: ok = parseNumber(out); break;
        }
        --depth_;
        return ok;
    }

    bool parseArray(Value& out)
    {
        out.type = Value::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Value elem;
            if (!parseValue(elem))
                return false;
            out.arr.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parseObject(Value& out)
    {
        out.type = Value::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            Value val;
            if (!parseValue(val))
                return false;
            out.obj.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    static constexpr int maxDepth_ = 64;
};

} // namespace

bool
parse(const std::string& text, Value& out, std::string* error)
{
    out = Value();
    return Parser(text, error).parseDocument(out);
}

} // namespace json
} // namespace obs
} // namespace cosim
