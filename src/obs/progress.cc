#include "obs/progress.hh"

#include <chrono>
#include <iostream>

#include <fcntl.h>
#include <unistd.h>

#include "base/logging.hh"
#include "base/str.hh"
#include "obs/json.hh"

namespace cosim {
namespace obs {

void
HeartbeatSlot::bindPipe(int fd, std::uint64_t min_interval_us)
{
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    pipeIntervalUs_.store(min_interval_us, std::memory_order_relaxed);
    lastPipeUs_.store(0, std::memory_order_relaxed);
    pipeFd_.store(fd, std::memory_order_relaxed);
}

void
HeartbeatSlot::maybePipe(std::uint64_t now_us)
{
    const int fd = pipeFd_.load(std::memory_order_relaxed);
    if (fd < 0)
        return;
    std::uint64_t last = lastPipeUs_.load(std::memory_order_relaxed);
    if (now_us - last <
        pipeIntervalUs_.load(std::memory_order_relaxed)) {
        return;
    }
    // CAS claims this interval; losers skip the write, so concurrent
    // beaters emit at most one byte per interval between them.
    if (!lastPipeUs_.compare_exchange_strong(last, now_us,
                                             std::memory_order_relaxed)) {
        return;
    }
    const char byte = 1;
    ssize_t rc = ::write(fd, &byte, 1); // non-blocking: a full pipe drops it
    (void)rc;
}

ProgressStream::ProgressStream(const std::string& path) : file_(path) {}

void
ProgressStream::emit(const std::string& event,
                     const std::string& json_fields)
{
    LockGuard lock(mutex_);
    if (failed_)
        return;
    std::string line = "{\"seq\":" + std::to_string(seq_) +
                       ",\"t_us\":" + std::to_string(hostClockNowUs()) +
                       ",\"event\":" + json::quote(event);
    if (!json_fields.empty())
        line += "," + json_fields;
    line += "}";
    if (!file_.appendLine(line)) {
        failed_ = true;
        warn("progress: write to '%s' failed; stream disabled",
             file_.path().c_str());
        return;
    }
    ++seq_;
}

SweepProgress::SweepProgress(const Options& opts) : opts_(opts)
{
    if (!opts_.file.empty())
        stream_ = std::make_unique<ProgressStream>(opts_.file);
}

SweepProgress::~SweepProgress()
{
    stop();
}

std::size_t
SweepProgress::addCell(const std::string& label)
{
    LockGuard lock(mutex_);
    cells_.emplace_back();
    cells_.back().label = label;
    return cells_.size() - 1;
}

HeartbeatSlot*
SweepProgress::slot(std::size_t idx)
{
    LockGuard lock(mutex_);
    return &cells_[idx].slot;
}

void
SweepProgress::enqueue(const std::string& event,
                       const std::string& fields)
{
    if (stream_ == nullptr)
        return;
    LockGuard lock(mutex_);
    pending_.push_back(PendingEvent{event, fields});
}

void
SweepProgress::cellStarted(std::size_t idx, unsigned attempt)
{
    {
        LockGuard lock(mutex_);
        CellEntry& cell = cells_[idx];
        cell.state.store(CellState::Running, std::memory_order_relaxed);
        cell.slot.watch().beginAttempt();
        enqueueLocked("cell_start",
                      "\"cell\":" + json::quote(cell.label) +
                          ",\"attempt\":" + std::to_string(attempt));
    }
}

void
SweepProgress::cellSpawned(std::size_t idx, int pid)
{
    LockGuard lock(mutex_);
    CellEntry& cell = cells_[idx];
    enqueueLocked("cell_spawn",
                  "\"cell\":" + json::quote(cell.label) +
                      ",\"pid\":" + std::to_string(pid));
}

void
SweepProgress::cellKilled(std::size_t idx, int pid,
                          const std::string& reason)
{
    LockGuard lock(mutex_);
    CellEntry& cell = cells_[idx];
    enqueueLocked("cell_kill",
                  "\"cell\":" + json::quote(cell.label) +
                      ",\"pid\":" + std::to_string(pid) +
                      ",\"reason\":" + json::quote(reason));
}

void
SweepProgress::cellResumeSkipped(std::size_t idx)
{
    LockGuard lock(mutex_);
    CellEntry& cell = cells_[idx];
    cell.state.store(CellState::Ok, std::memory_order_relaxed);
    enqueueLocked("resume_skip", "\"cell\":" + json::quote(cell.label));
}

void
SweepProgress::cellRetried(std::size_t idx, unsigned attempt,
                           const std::string& error)
{
    LockGuard lock(mutex_);
    CellEntry& cell = cells_[idx];
    enqueueLocked("cell_retry",
                  "\"cell\":" + json::quote(cell.label) +
                      ",\"attempt\":" + std::to_string(attempt) +
                      ",\"error\":" + json::quote(error));
}

void
SweepProgress::cellFault(std::size_t idx, const std::string& site,
                         std::uint64_t hit)
{
    LockGuard lock(mutex_);
    CellEntry& cell = cells_[idx];
    enqueueLocked("fault", "\"cell\":" + json::quote(cell.label) +
                               ",\"site\":" + json::quote(site) +
                               ",\"hit\":" + std::to_string(hit));
}

void
SweepProgress::cellFinished(std::size_t idx, bool ok,
                            double wall_seconds,
                            const std::string& error)
{
    LockGuard lock(mutex_);
    CellEntry& cell = cells_[idx];
    cell.state.store(ok ? CellState::Ok : CellState::Failed,
                     std::memory_order_relaxed);
    std::string fields = "\"cell\":" + json::quote(cell.label) +
                         ",\"status\":" + json::quote(ok ? "ok" : "failed") +
                         ",\"wall_s\":" + json::number(wall_seconds);
    if (!error.empty())
        fields += ",\"error\":" + json::quote(error);
    enqueueLocked("cell_finish", fields);
}

void
SweepProgress::event(const std::string& event, const std::string& fields)
{
    enqueue(event, fields);
}

void
SweepProgress::start()
{
    if (!active() || started_)
        return;
    started_ = true;
    stop_.store(false, std::memory_order_relaxed);
    sampler_ = std::thread([this] { samplerLoop(); });
}

void
SweepProgress::stop()
{
    if (started_) {
        stop_.store(true, std::memory_order_relaxed);
        sampler_.join();
        started_ = false;
    }
    // Final drain + view so cell_finish events written after the last
    // sampler tick still reach the stream.
    drainEvents();
    if (opts_.tty)
        tick(/*emit_heartbeats=*/false);
}

std::size_t
SweepProgress::cellCount() const
{
    LockGuard lock(mutex_);
    return cells_.size();
}

void
SweepProgress::samplerLoop()
{
    using namespace std::chrono;
    const auto period = duration_cast<steady_clock::duration>(
        duration<double>(opts_.periodSeconds));
    while (!stop_.load(std::memory_order_relaxed)) {
        // CondVar has no timed wait, so nap in small slices and check
        // the stop flag between them to keep shutdown prompt.
        const auto deadline = steady_clock::now() + period;
        while (!stop_.load(std::memory_order_relaxed) &&
               steady_clock::now() < deadline) {
            std::this_thread::sleep_for(milliseconds(10));
        }
        if (stop_.load(std::memory_order_relaxed))
            break;
        drainEvents();
        tick(/*emit_heartbeats=*/true);
    }
}

void
SweepProgress::drainEvents()
{
    if (stream_ == nullptr)
        return;
    std::vector<PendingEvent> batch;
    {
        LockGuard lock(mutex_);
        batch.swap(pending_);
    }
    for (const PendingEvent& ev : batch)
        stream_->emit(ev.event, ev.fields);
}

void
SweepProgress::tick(bool emit_heartbeats)
{
    struct Row
    {
        std::string label;
        CellState state = CellState::Pending;
        std::uint64_t quanta = 0;
        std::uint64_t insts = 0;
        std::uint64_t simNs = 0;
        std::uint64_t queuePeak = 0;
        double mips = 0.0;
    };

    const std::uint64_t now_us = hostClockNowUs();
    std::vector<Row> rows;
    {
        LockGuard lock(mutex_);
        rows.reserve(cells_.size());
        for (CellEntry& cell : cells_) {
            Row row;
            row.label = cell.label;
            row.state = cell.state.load(std::memory_order_relaxed);
            row.quanta = cell.slot.quanta();
            row.insts = cell.slot.insts();
            row.simNs = cell.slot.simNs();
            row.queuePeak = cell.slot.queuePeak();
            if (row.state == CellState::Running) {
                std::uint64_t d_insts = row.insts - cell.lastInsts;
                std::uint64_t d_us = now_us - cell.lastTickUs;
                if (cell.lastTickUs != 0 && d_us > 0) {
                    // insts per microsecond == millions per second.
                    cell.lastMips = static_cast<double>(d_insts) /
                                    static_cast<double>(d_us);
                }
                cell.lastInsts = row.insts;
                cell.lastTickUs = now_us;
            }
            row.mips = cell.lastMips;
            rows.push_back(std::move(row));
        }
    }

    if (emit_heartbeats && stream_ != nullptr) {
        for (const Row& row : rows) {
            if (row.state != CellState::Running)
                continue;
            stream_->emit(
                "heartbeat",
                "\"cell\":" + json::quote(row.label) +
                    ",\"quanta\":" + std::to_string(row.quanta) +
                    ",\"insts\":" + std::to_string(row.insts) +
                    ",\"sim_ms\":" +
                    json::number(static_cast<double>(row.simNs) / 1e6) +
                    ",\"mips\":" + json::number(row.mips) +
                    ",\"queue_peak\":" + std::to_string(row.queuePeak));
        }
    }

    if (!opts_.tty)
        return;
    std::string view;
    if (renderedLines_ > 0 && isatty(STDERR_FILENO))
        view += "\x1b[" + std::to_string(renderedLines_) + "A";
    for (const Row& row : rows) {
        const char* state = "wait";
        switch (row.state) {
          case CellState::Pending:
            state = "wait";
            break;
          case CellState::Running:
            state = "run ";
            break;
          case CellState::Ok:
            state = "ok  ";
            break;
          case CellState::Failed:
            state = "FAIL";
            break;
        }
        if (isatty(STDERR_FILENO))
            view += "\x1b[2K";
        view += strFormat("%-32s %s  q=%-8llu sim=%9.1f ms  "
                          "%6.1f MIPS  queue<=%llu\n",
                          row.label.c_str(), state,
                          static_cast<unsigned long long>(row.quanta),
                          static_cast<double>(row.simNs) / 1e6, row.mips,
                          static_cast<unsigned long long>(row.queuePeak));
    }
    std::cerr << view << std::flush;
    renderedLines_ = static_cast<unsigned>(rows.size());
}

} // namespace obs
} // namespace cosim
