#include "obs/host_profiler.hh"

#include "base/host_clock.hh"
#include "base/str.hh"

namespace cosim {
namespace obs {

namespace {

double
mipsOf(std::uint64_t insts, double seconds)
{
    return seconds <= 0.0
        ? 0.0
        : static_cast<double>(insts) / 1e6 / seconds;
}

} // namespace

HostProfiler&
HostProfiler::global()
{
    static HostProfiler instance;
    return instance;
}

HostProfiler::PhaseTotal&
HostProfiler::phase(const std::string& name)
{
    // REQUIRES(mutex_) in the declaration: -Wthread-safety rejects any
    // call site that has not already locked.
    for (PhaseTotal& p : phases_) {
        if (p.name == name)
            return p;
    }
    phases_.push_back(PhaseTotal{name, 0.0, 0});
    return phases_.back();
}

void
HostProfiler::accumulate(const std::string& name, double seconds)
{
    LockGuard lock(mutex_);
    PhaseTotal& p = phase(name);
    p.seconds += seconds;
    ++p.calls;
}

void
HostProfiler::addSimulated(std::uint64_t insts, double seconds)
{
    // Stamp before taking the lock: the stamp is the feed time, not
    // the time the (possibly contended) lock was granted.
    std::uint64_t t_us = hostClockNowUs();
    LockGuard lock(mutex_);
    simInsts_ += insts;
    simSeconds_ += seconds;
    if (seconds > 0.0) {
        mipsSamples_.push_back(MipsSample{t_us, mipsOf(insts, seconds)});
        if (mipsSamples_.size() > kMaxMipsSamples)
            mipsSamples_.pop_front();
    }
}

std::vector<HostProfiler::MipsSample>
HostProfiler::mipsSamples() const
{
    LockGuard lock(mutex_);
    return std::vector<MipsSample>(mipsSamples_.begin(),
                                   mipsSamples_.end());
}

void
HostProfiler::noteEmulationThreads(unsigned n)
{
    LockGuard lock(mutex_);
    if (n > emuThreads_)
        emuThreads_ = n;
}

unsigned
HostProfiler::emulationThreads() const
{
    LockGuard lock(mutex_);
    return emuThreads_;
}

void
HostProfiler::noteDegradedToSerial(unsigned n)
{
    LockGuard lock(mutex_);
    degradedToSerial_ += n;
}

unsigned
HostProfiler::degradedToSerial() const
{
    LockGuard lock(mutex_);
    return degradedToSerial_;
}

double
HostProfiler::seconds(const std::string& name) const
{
    LockGuard lock(mutex_);
    for (const PhaseTotal& p : phases_) {
        if (p.name == name)
            return p.seconds;
    }
    return 0.0;
}

std::uint64_t
HostProfiler::calls(const std::string& name) const
{
    LockGuard lock(mutex_);
    for (const PhaseTotal& p : phases_) {
        if (p.name == name)
            return p.calls;
    }
    return 0;
}

std::vector<HostProfiler::PhaseTotal>
HostProfiler::phases() const
{
    LockGuard lock(mutex_);
    return phases_;
}

std::uint64_t
HostProfiler::simulatedInsts() const
{
    LockGuard lock(mutex_);
    return simInsts_;
}

double
HostProfiler::simulatedSeconds() const
{
    LockGuard lock(mutex_);
    return simSeconds_;
}

double
HostProfiler::simulatedMips() const
{
    LockGuard lock(mutex_);
    return mipsOf(simInsts_, simSeconds_);
}

std::string
HostProfiler::report() const
{
    LockGuard lock(mutex_);
    std::string out = "host profile:\n";
    for (const PhaseTotal& p : phases_) {
        out += strFormat("  %-24s %9.3fs  %8llu calls\n", p.name.c_str(),
                         p.seconds,
                         static_cast<unsigned long long>(p.calls));
    }
    if (emuThreads_ > 0)
        out += strFormat("  emulation threads        %9u\n", emuThreads_);
    if (degradedToSerial_ > 0) {
        out += strFormat("  degraded to serial       %9u worker(s)\n",
                         degradedToSerial_);
    }
    if (simSeconds_ > 0.0) {
        out += strFormat("  simulated %.1fM insts in %.3fs -> %.1f MIPS\n",
                         static_cast<double>(simInsts_) / 1e6, simSeconds_,
                         mipsOf(simInsts_, simSeconds_));
    }
    return out;
}

stats::Group
HostProfiler::statsGroup(const std::string& name) const
{
    LockGuard lock(mutex_);
    stats::Group g(name);
    for (const PhaseTotal& p : phases_) {
        double secs = p.seconds;
        std::uint64_t n = p.calls;
        g.add(p.name + ".seconds", [secs] { return secs; });
        g.add(p.name + ".calls",
              [n] { return static_cast<double>(n); });
    }
    std::uint64_t insts = simInsts_;
    double mips = mipsOf(simInsts_, simSeconds_);
    unsigned emu_threads = emuThreads_;
    unsigned degraded = degradedToSerial_;
    g.add("sim_insts", [insts] { return static_cast<double>(insts); });
    g.add("sim_mips", [mips] { return mips; });
    g.add("emulation_threads",
          [emu_threads] { return static_cast<double>(emu_threads); });
    g.add("degraded_to_serial",
          [degraded] { return static_cast<double>(degraded); });
    return g;
}

void
HostProfiler::reset()
{
    LockGuard lock(mutex_);
    phases_.clear();
    // Clearing the ring does not move the clock: samples fed after a
    // reset still carry process-origin timestamps, so they compare
    // correctly against trace spans recorded before it.
    mipsSamples_.clear();
    simInsts_ = 0;
    simSeconds_ = 0.0;
    emuThreads_ = 0;
    degradedToSerial_ = 0;
}

} // namespace obs
} // namespace cosim
