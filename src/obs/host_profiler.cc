#include "obs/host_profiler.hh"

#include "base/str.hh"

namespace cosim {
namespace obs {

HostProfiler&
HostProfiler::global()
{
    static HostProfiler instance;
    return instance;
}

HostProfiler::PhaseTotal&
HostProfiler::phase(const std::string& name)
{
    for (PhaseTotal& p : phases_) {
        if (p.name == name)
            return p;
    }
    phases_.push_back(PhaseTotal{name, 0.0, 0});
    return phases_.back();
}

void
HostProfiler::accumulate(const std::string& name, double seconds)
{
    PhaseTotal& p = phase(name);
    p.seconds += seconds;
    ++p.calls;
}

void
HostProfiler::addSimulated(std::uint64_t insts, double seconds)
{
    simInsts_ += insts;
    simSeconds_ += seconds;
}

double
HostProfiler::seconds(const std::string& name) const
{
    for (const PhaseTotal& p : phases_) {
        if (p.name == name)
            return p.seconds;
    }
    return 0.0;
}

std::uint64_t
HostProfiler::calls(const std::string& name) const
{
    for (const PhaseTotal& p : phases_) {
        if (p.name == name)
            return p.calls;
    }
    return 0;
}

double
HostProfiler::simulatedMips() const
{
    return simSeconds_ <= 0.0
        ? 0.0
        : static_cast<double>(simInsts_) / 1e6 / simSeconds_;
}

std::string
HostProfiler::report() const
{
    std::string out = "host profile:\n";
    for (const PhaseTotal& p : phases_) {
        out += strFormat("  %-24s %9.3fs  %8llu calls\n", p.name.c_str(),
                         p.seconds,
                         static_cast<unsigned long long>(p.calls));
    }
    if (simSeconds_ > 0.0) {
        out += strFormat("  simulated %.1fM insts in %.3fs -> %.1f MIPS\n",
                         static_cast<double>(simInsts_) / 1e6, simSeconds_,
                         simulatedMips());
    }
    return out;
}

stats::Group
HostProfiler::statsGroup(const std::string& name) const
{
    stats::Group g(name);
    for (const PhaseTotal& p : phases_) {
        double secs = p.seconds;
        std::uint64_t n = p.calls;
        g.add(p.name + ".seconds", [secs] { return secs; });
        g.add(p.name + ".calls",
              [n] { return static_cast<double>(n); });
    }
    std::uint64_t insts = simInsts_;
    double mips = simulatedMips();
    g.add("sim_insts", [insts] { return static_cast<double>(insts); });
    g.add("sim_mips", [mips] { return mips; });
    return g;
}

void
HostProfiler::reset()
{
    phases_.clear();
    simInsts_ = 0;
    simSeconds_ = 0.0;
}

} // namespace obs
} // namespace cosim
