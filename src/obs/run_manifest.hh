/**
 * @file
 * Machine-readable per-run manifest.
 *
 * The figure CSVs record *results*; the manifest records the *run*: what
 * configuration produced the numbers, from which source revision, how
 * long each workload took on the host, and the full CB 500 us MPKI
 * series that used to be computed and dropped. One `run.json` is written
 * next to the figure CSVs so results stay self-describing and diffable
 * across revisions. `examples/cosim_inspect.cpp` pretty-prints one.
 */

#ifndef COSIM_OBS_RUN_MANIFEST_HH
#define COSIM_OBS_RUN_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cosim {
namespace obs {

/** Manifest schema identifier (bump on incompatible change). */
inline constexpr const char* kManifestSchema = "cosim-run-manifest/1";

/** The source revision this binary was built from ("unknown" outside git). */
std::string buildRevision();

/**
 * Sampled-simulation record for one workload (--cells=sampled): what
 * the plan covered and how far the weight-extrapolated estimates landed
 * from the full-run reference (relative error per gated metric).
 */
struct ManifestSampling
{
    bool active = false;

    /** Representative intervals simulated in detail. */
    std::uint64_t intervals = 0;
    /** CB windows in the profiled series. */
    std::uint64_t totalWindows = 0;
    /** Warm-up windows (discarded stats) before each interval. */
    std::uint64_t warmupQuanta = 0;
    /** Fraction of windows simulated in detail (intervals + warm-up). */
    double coverage = 0.0;

    /** A full-run reference existed, so the errors below are real
     * measurements (false for a pure --replay + --plan run, which has
     * no reference to compare against). */
    bool hasError = false;

    /** Relative error of the estimates vs the full-run reference. @{ */
    double errCpi = 0.0;
    double errMpki = 0.0;
    double errApki = 0.0;
    double errDram = 0.0;
    /** @} */

    /** Estimate / reference pairs behind the errors. @{ */
    double estCpi = 0.0, fullCpi = 0.0;
    double estMpki = 0.0, fullMpki = 0.0;
    double estApki = 0.0, fullApki = 0.0;
    /** @} */
};

/** One workload execution within a run. */
struct ManifestWorkload
{
    std::string name;
    std::uint64_t totalInsts = 0;
    double hostSeconds = 0.0;
    double simMips = 0.0;
    bool verified = false;

    /** Stream provenance: empty for a live execution, otherwise the
     * source the cell's emulator results were replayed from. */
    std::string replayedFrom;

    /** @name Cell outcome (sweep isolation, see --keep-going) @{ */
    /** "ok", "retried" (succeeded after retry), or "failed". */
    std::string status = "ok";
    /** Attempts spent on the cell (> 1 under --retry-cells). */
    std::uint64_t attempts = 1;
    /** The last attempt's error; empty unless status is "failed". */
    std::string error;
    /** @} */

    /** Final MPKI of every emulated configuration, in sweep order. */
    std::vector<double> mpkiPerConfig;

    /** CB 500 us sample series of the first emulated configuration. */
    std::vector<double> seriesTimeUs;
    std::vector<double> seriesMpki;

    /** Sampled-simulation record (active only under --cells=sampled). */
    ManifestSampling sampling;
};

/** One phase of the host-profiler snapshot embedded in the manifest. */
struct ManifestHostPhase
{
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
};

/** See file comment. */
struct RunManifest
{
    std::string figureId;
    std::string platform;
    unsigned nCores = 0;
    double scale = 1.0;
    std::uint64_t seed = 0;
    /** Seed provenance ("default", "cli", ...); see base/random.hh. */
    std::string seedSource = "default";

    /** Sweep axis labels, one per emulated configuration. */
    std::vector<std::string> configTicks;

    std::vector<ManifestWorkload> workloads;

    std::vector<ManifestHostPhase> hostPhases;
    double hostSimMips = 0.0;

    /** @name Host-parallelism record @{ */
    /** Sweep cells run on this many parallel host threads. */
    unsigned hostJobs = 1;
    /** Dragonhead emulation worker threads per rig (0 = inline). */
    unsigned emulationThreads = 0;
    /** Guest (DEX) execution shards per rig (0 = classic scheduler). */
    unsigned dexThreads = 0;
    /** Wall-clock of the whole sweep phase. */
    double wallSeconds = 0.0;
    /** Sum of per-workload host seconds over wallSeconds (>= ~1). */
    double hostSpeedup = 0.0;
    /** @} */

    /** @name FSB capture / replay record @{ */
    /** Sweep cell decomposition ("combined" / "exec" / "replay"). */
    std::string cellMode = "combined";
    /** Times the guest actually executed during the sweep (a pure
     * file-backed replay reports 0). */
    std::uint64_t guestExecutions = 0;
    /** Transactions and encoded bytes recorded by --capture. */
    std::uint64_t captureTxns = 0;
    std::uint64_t captureBytes = 0;
    /** Host wall-clock spent encoding captures (overhead gauge). */
    double captureSeconds = 0.0;
    /** Transactions and stream bytes fed back by replay cells. */
    std::uint64_t replayTxns = 0;
    std::uint64_t replayBytes = 0;
    double replaySeconds = 0.0;
    /** @} */

    /** @name Crash-safe sweep record (--isolate-cells / --resume) @{ */
    /** Cells ran in forked child processes. */
    bool isolatedCells = false;
    /** This run resumed an interrupted sweep from its journal. */
    bool resumed = false;
    /** Cells whose journaled artifacts verified and were not re-run. */
    std::uint64_t resumeSkipped = 0;
    /** Write-ahead journal path ("" when journaling was off). */
    std::string journalPath;
    /** @} */

    /** Serialize (pretty-printed JSON, schema + buildRevision included). */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal() on I/O error. */
    void writeJson(const std::string& path) const;
};

} // namespace obs
} // namespace cosim

#endif // COSIM_OBS_RUN_MANIFEST_HH
