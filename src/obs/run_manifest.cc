#include "obs/run_manifest.hh"

#include "base/atomic_file.hh"
#include "base/logging.hh"
#include "obs/json.hh"

#ifndef COSIM_GIT_DESCRIBE
#define COSIM_GIT_DESCRIBE "unknown"
#endif

namespace cosim {
namespace obs {

std::string
buildRevision()
{
    return COSIM_GIT_DESCRIBE;
}

namespace {

std::string
numberArray(const std::vector<double>& values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ",";
        out += json::number(values[i]);
    }
    out += "]";
    return out;
}

std::string
stringArray(const std::vector<std::string>& values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ",";
        out += json::quote(values[i]);
    }
    out += "]";
    return out;
}

} // namespace

std::string
RunManifest::toJson() const
{
    std::string out = "{\n";
    out += "  \"schema\": " + json::quote(kManifestSchema) + ",\n";
    out += "  \"git\": " + json::quote(buildRevision()) + ",\n";
    out += "  \"figure\": " + json::quote(figureId) + ",\n";
    out += "  \"platform\": {\"name\": " + json::quote(platform) +
           ", \"cores\": " + json::number(nCores) + "},\n";
    out += "  \"config\": {\"scale\": " + json::number(scale) +
           ", \"seed\": " + json::number(static_cast<double>(seed)) +
           ", \"seed_source\": " + json::quote(seedSource) +
           ", \"ticks\": " + stringArray(configTicks) + "},\n";

    out += "  \"host\": {\"sim_mips\": " + json::number(hostSimMips) +
           ", \"jobs\": " + json::number(hostJobs) +
           ", \"emulation_threads\": " + json::number(emulationThreads) +
           ", \"dex_threads\": " + json::number(dexThreads) +
           ", \"isolated_cells\": " +
           (isolatedCells ? "true" : "false") +
           ", \"wall_seconds\": " + json::number(wallSeconds) +
           ", \"speedup\": " + json::number(hostSpeedup) +
           ", \"phases\": [";
    for (std::size_t i = 0; i < hostPhases.size(); ++i) {
        const ManifestHostPhase& p = hostPhases[i];
        if (i)
            out += ",";
        out += "\n    {\"name\": " + json::quote(p.name) +
               ", \"seconds\": " + json::number(p.seconds) +
               ", \"calls\": " +
               json::number(static_cast<double>(p.calls)) + "}";
    }
    out += hostPhases.empty() ? "]},\n" : "\n  ]},\n";

    out += "  \"stream\": {\"cells\": " + json::quote(cellMode) +
           ", \"guest_executions\": " +
           json::number(static_cast<double>(guestExecutions)) +
           ",\n    \"capture\": {\"txns\": " +
           json::number(static_cast<double>(captureTxns)) +
           ", \"bytes\": " +
           json::number(static_cast<double>(captureBytes)) +
           ", \"seconds\": " + json::number(captureSeconds) +
           "},\n    \"replay\": {\"txns\": " +
           json::number(static_cast<double>(replayTxns)) +
           ", \"bytes\": " +
           json::number(static_cast<double>(replayBytes)) +
           ", \"seconds\": " + json::number(replaySeconds) + "}},\n";

    // Present only when journaling was on: which journal, whether this
    // run resumed one, and how many cells the resume skipped. Dropped
    // by normalized comparisons (cosim_inspect diff-run) because a
    // resumed run legitimately differs here from its baseline.
    if (!journalPath.empty()) {
        out += "  \"resume\": {\"journal\": " + json::quote(journalPath) +
               ", \"resumed\": " + (resumed ? "true" : "false") +
               ", \"skipped\": " +
               json::number(static_cast<double>(resumeSkipped)) + "},\n";
    }

    out += "  \"workloads\": [";
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const ManifestWorkload& w = workloads[i];
        if (i)
            out += ",";
        out += "\n    {\"name\": " + json::quote(w.name) +
               ",\n     \"insts\": " +
               json::number(static_cast<double>(w.totalInsts)) +
               ", \"host_seconds\": " + json::number(w.hostSeconds) +
               ", \"sim_mips\": " + json::number(w.simMips) +
               ", \"verified\": " + (w.verified ? "true" : "false") +
               ",\n     \"status\": " + json::quote(w.status) +
               ", \"attempts\": " +
               json::number(static_cast<double>(w.attempts)) +
               ", \"error\": " + json::quote(w.error) +
               ",\n     \"replayed_from\": " + json::quote(w.replayedFrom) +
               ",\n     \"mpki_per_config\": " +
               numberArray(w.mpkiPerConfig) +
               ",\n     \"mpki_series\": {\"time_us\": " +
               numberArray(w.seriesTimeUs) + ", \"mpki\": " +
               numberArray(w.seriesMpki) + "}";
        if (w.sampling.active) {
            const ManifestSampling& s = w.sampling;
            out += ",\n     \"sampling\": {\"intervals\": " +
                   json::number(static_cast<double>(s.intervals)) +
                   ", \"total_windows\": " +
                   json::number(static_cast<double>(s.totalWindows)) +
                   ", \"warmup_quanta\": " +
                   json::number(static_cast<double>(s.warmupQuanta)) +
                   ", \"coverage\": " + json::number(s.coverage);
            if (s.hasError) {
                out += ",\n      \"error\": {\"cpi\": " +
                       json::number(s.errCpi) +
                       ", \"mpki\": " + json::number(s.errMpki) +
                       ", \"apki\": " + json::number(s.errApki) +
                       ", \"dram\": " + json::number(s.errDram) + "}";
            }
            out += ",\n      \"est\": {\"cpi\": " +
                   json::number(s.estCpi) +
                   ", \"mpki\": " + json::number(s.estMpki) +
                   ", \"apki\": " + json::number(s.estApki) +
                   "},\n      \"full\": {\"cpi\": " +
                   json::number(s.fullCpi) +
                   ", \"mpki\": " + json::number(s.fullMpki) +
                   ", \"apki\": " + json::number(s.fullApki) + "}}";
        }
        out += "}";
    }
    out += workloads.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void
RunManifest::writeJson(const std::string& path) const
{
    // Atomic write-temp + rename: a crash or full disk leaves either
    // the previous manifest or the complete new one, never a torn
    // file. A failed write is fatal (nonzero exit) with the path.
    try {
        writeFileAtomic(path, toJson());
    } catch (const IoError& e) {
        fatal("manifest: %s", e.what());
    }
}

} // namespace obs
} // namespace cosim
