#include "obs/stats_registry.hh"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "base/atomic_file.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "obs/json.hh"

namespace cosim {
namespace obs {

StatsRegistry&
StatsRegistry::global()
{
    static StatsRegistry instance;
    return instance;
}

StatsRegistry::Shard&
StatsRegistry::shardFor(const std::string& name)
{
    return shards_[std::hash<std::string>{}(name) % kShards];
}

const StatsRegistry::Shard&
StatsRegistry::shardFor(const std::string& name) const
{
    return shards_[std::hash<std::string>{}(name) % kShards];
}

stats::Group&
StatsRegistry::add(stats::Group group)
{
    Shard& shard = shardFor(group.name());
    LockGuard lock(shard.mutex);
    for (Entry& e : shard.groups) {
        if (e.group.name() == group.name()) {
            // Replacement keeps its original sequence number, so
            // per-run re-registration is idempotent in dump order too.
            e.group = std::move(group);
            return e.group;
        }
    }
    shard.groups.push_back(
        Entry{nextOrder_.fetch_add(1, std::memory_order_relaxed),
              std::move(group)});
    return shard.groups.back().group;
}

stats::Group&
StatsRegistry::makeGroup(const std::string& name)
{
    return add(stats::Group(name));
}

void
StatsRegistry::addSnapshotOf(const StatsRegistry& src,
                             const std::string& prefix)
{
    // Freeze outside our own locks: evaluating src's formulas may take
    // arbitrary time, and src may be *this in odd call patterns. The
    // sort keeps the destination's relative order equal to src's.
    std::vector<FrozenGroup> frozen = src.collectAll();
    for (const FrozenGroup& fg : frozen) {
        // Build the whole frozen copy before add() takes a shard lock:
        // parallel cells snapshotting at once then only contend for the
        // final push, not for each formula allocation.
        stats::Group copy(prefix + fg.name);
        copy.reserve(0, fg.stats.size());
        for (const auto& [stat_name, value] : fg.stats)
            copy.add(stat_name, [value = value] { return value; });
        add(std::move(copy));
    }
}

void
StatsRegistry::clear()
{
    for (Shard& shard : shards_) {
        LockGuard lock(shard.mutex);
        shard.groups.clear();
    }
}

std::size_t
StatsRegistry::removePrefix(const std::string& prefix)
{
    std::size_t removed = 0;
    for (Shard& shard : shards_) {
        LockGuard lock(shard.mutex);
        for (auto it = shard.groups.begin(); it != shard.groups.end();) {
            if (it->group.name().compare(0, prefix.size(), prefix) == 0) {
                it = shard.groups.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
    }
    return removed;
}

std::size_t
StatsRegistry::size() const
{
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
        LockGuard lock(shard.mutex);
        n += shard.groups.size();
    }
    return n;
}

std::vector<StatsRegistry::FrozenGroup>
StatsRegistry::collectAll() const
{
    std::vector<FrozenGroup> out;
    out.reserve(size());
    for (const Shard& shard : shards_) {
        LockGuard lock(shard.mutex);
        for (const Entry& e : shard.groups) {
            FrozenGroup fg;
            fg.order = e.order;
            fg.name = e.group.name();
            fg.stats = e.group.collect();
            out.push_back(std::move(fg));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const FrozenGroup& a, const FrozenGroup& b) {
                  return a.order < b.order;
              });
    return out;
}

std::vector<std::string>
StatsRegistry::groupNames() const
{
    std::vector<std::string> out;
    std::vector<std::pair<std::uint64_t, std::string>> named;
    named.reserve(size());
    for (const Shard& shard : shards_) {
        LockGuard lock(shard.mutex);
        for (const Entry& e : shard.groups)
            named.emplace_back(e.order, e.group.name());
    }
    std::sort(named.begin(), named.end());
    out.reserve(named.size());
    for (auto& [order, name] : named)
        out.push_back(std::move(name));
    return out;
}

const stats::Group*
StatsRegistry::find(const std::string& name) const
{
    const Shard& shard = shardFor(name);
    LockGuard lock(shard.mutex);
    for (const Entry& e : shard.groups) {
        if (e.group.name() == name)
            return &e.group;
    }
    return nullptr;
}

std::string
StatsRegistry::dumpText() const
{
    std::string out;
    for (const FrozenGroup& fg : collectAll()) {
        for (const auto& [stat_name, value] : fg.stats) {
            char line[256];
            std::snprintf(line, sizeof(line), "%s.%s %.6g\n",
                          fg.name.c_str(), stat_name.c_str(), value);
            out += line;
        }
    }
    return out;
}

std::string
StatsRegistry::dumpJson() const
{
    std::string out = "{";
    bool first_group = true;
    for (const FrozenGroup& fg : collectAll()) {
        if (!first_group)
            out += ",";
        first_group = false;
        out += "\n  " + json::quote(fg.name) + ": {";
        bool first_stat = true;
        for (const auto& [stat_name, value] : fg.stats) {
            if (!first_stat)
                out += ",";
            first_stat = false;
            out += "\n    " + json::quote(stat_name) + ": " +
                   json::number(value);
        }
        out += "\n  }";
    }
    out += "\n}\n";
    return out;
}

std::string
StatsRegistry::dumpCsv() const
{
    std::string out = "stat,value\n";
    for (const FrozenGroup& fg : collectAll()) {
        for (const auto& [stat_name, value] : fg.stats) {
            out += fg.name + "." + stat_name + "," + json::number(value) +
                   "\n";
        }
    }
    return out;
}

void
StatsRegistry::writeFile(const std::string& path) const
{
    std::string body;
    if (path.size() >= 5 && path.substr(path.size() - 5) == ".json")
        body = dumpJson();
    else if (path.size() >= 4 && path.substr(path.size() - 4) == ".csv")
        body = dumpCsv();
    else
        body = dumpText();

    // Atomic write so a crash or full disk never leaves a truncated
    // dump that looks complete; a failed write exits nonzero with the
    // path instead of printing success over a torn file.
    try {
        writeFileAtomic(path, body);
    } catch (const IoError& e) {
        fatal("stats: %s", e.what());
    }
}

} // namespace obs
} // namespace cosim
